/**
 * @file
 * Capacity planner: the Section IV-G question -- how many SSDs per
 * CPU core can an AFA host carry before I/O latency degrades? Sweeps
 * the Table II geometries (and an extreme oversubscription point) and
 * recommends a balance.
 *
 * Usage: capacity_planner [--ssds N] [--runtime-ms M] [--seed S]
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/report.hh"
#include "sim/config.hh"

using namespace afa::core;

int
main(int argc, char **argv)
{
    afa::sim::Config cfg;
    cfg.parseArgs(argc - 1, argv + 1);

    ExperimentParams params;
    params.ssds = static_cast<unsigned>(cfg.getUint("ssds", 64));
    params.runtime = afa::sim::msec(
        static_cast<double>(cfg.getUint("runtime_ms", 1500)));
    params.seed = cfg.getUint("seed", 3);
    params.profile = TuningProfile::IrqAffinity;

    std::printf("AFA capacity planner: %u SSDs on a %s host\n\n",
                params.ssds,
                afa::host::CpuTopology{}.describe().c_str());

    struct Row
    {
        GeometryVariant variant;
        afa::stats::LadderAggregate agg;
        std::uint64_t ios;
        unsigned runs;
    };
    std::vector<Row> rows;
    for (GeometryVariant variant :
         {GeometryVariant::FourPerCore, GeometryVariant::TwoPerCore,
          GeometryVariant::OnePerCore}) {
        params.variant = variant;
        auto result = ExperimentRunner::run(params);
        rows.push_back(Row{variant, result.aggregate,
                           result.totalIos, result.runs});
    }

    afa::stats::Table table({"ssds/phys-core", "runs", "avg_us",
                             "p99.99_us", "p99.9999_us", "max_us"});
    for (const auto &row : rows) {
        table.addRow({geometryVariantName(row.variant),
                      afa::stats::Table::num(std::uint64_t(row.runs)),
                      afa::stats::Table::num(row.agg.meanUs[0], 1),
                      afa::stats::Table::num(row.agg.meanUs[3], 1),
                      afa::stats::Table::num(row.agg.meanUs[5], 1),
                      afa::stats::Table::num(row.agg.meanUs[6], 1)});
    }
    table.print();

    // Recommendation: densest geometry whose 6-nines stays within
    // 15% of the sparsest geometry's.
    double reference = rows.back().agg.meanUs[5];
    const Row *pick = &rows.back();
    for (const auto &row : rows) {
        if (row.agg.meanUs[5] <= reference * 1.15) {
            pick = &row;
            break; // rows are ordered densest first
        }
    }
    std::printf("\nrecommendation: %s\n",
                geometryVariantName(pick->variant));
    std::printf(
        "  densest packing whose 6-nines latency stays within 15%% "
        "of\n  the 1-SSD-per-core baseline (%.1f vs %.1f us). "
        "Denser packing\n  maximises capacity per host; the paper "
        "(Sec. IV-G) reaches the\n  same conclusion: latency "
        "profiles stay similar while CPU\n  utilisation is low, so "
        "pack SSDs -- but watch the 6-nines.\n",
        pick->agg.meanUs[5], reference);
    return 0;
}
