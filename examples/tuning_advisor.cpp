/**
 * @file
 * Tuning advisor: walks the paper's tuning ladder step by step on
 * your (simulated) array, quantifies what each step buys, and prints
 * the exact knobs to apply on a real host -- the chrt command, the
 * Section IV-C boot line, and the IRQ pinning recipe.
 *
 * Usage: tuning_advisor [--ssds N] [--runtime-ms M] [--seed S]
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/report.hh"
#include "sim/config.hh"

using namespace afa::core;

int
main(int argc, char **argv)
{
    afa::sim::Config cfg;
    cfg.parseArgs(argc - 1, argv + 1);

    ExperimentParams params;
    params.ssds = static_cast<unsigned>(cfg.getUint("ssds", 32));
    params.runtime = afa::sim::msec(
        static_cast<double>(cfg.getUint("runtime_ms", 2000)));
    params.seed = cfg.getUint("seed", 11);

    const std::size_t kMax = afa::stats::NinesLadder::kPoints - 1;

    struct Step
    {
        TuningProfile profile;
        const char *recipe;
    };
    const Step steps[] = {
        {TuningProfile::Default, "(baseline, no changes)"},
        {TuningProfile::Chrt,
         "chrt -f -p 99 $(pidof fio)   # per FIO process"},
        {TuningProfile::Isolcpus,
         "add to the kernel boot line (then reboot):\n"
         "    isolcpus=<fio-cpus> nohz_full=<fio-cpus> "
         "rcu_nocbs=<fio-cpus>\n"
         "    processor.max_cstate=1 idle=poll"},
        {TuningProfile::IrqAffinity,
         "systemctl stop irqbalance; for each nvme queue vector:\n"
         "    echo <queue-cpu-mask> > "
         "/proc/irq/<vector>/smp_affinity  # or use tuna"},
        {TuningProfile::ExpFirmware,
         "vendor firmware with SMART data update/save disabled\n"
         "    (engineering builds only -- do not ship; see paper "
         "Sec. V)"},
    };

    std::printf("AFA tuning advisor: %u SSDs, 4k randread QD1, "
                "%.1fs per step\n\n",
                params.ssds, afa::sim::toSec(params.runtime));

    double prev_max = 0.0, prev_std = 0.0;
    for (const Step &step : steps) {
        params.profile = step.profile;
        auto result = ExperimentRunner::run(params);
        double max_us = result.aggregate.meanUs[kMax];
        double std_us = result.aggregate.stddevUs[kMax];
        std::printf("== step: %s ==\n",
                    tuningProfileName(step.profile));
        std::printf("   mean(max latency) %8.1f us   "
                    "stddev(max) %8.1f us",
                    max_us, std_us);
        if (prev_max > 0.0)
            std::printf("   [max x%.1f, stddev x%.1f vs previous]",
                        prev_max / max_us,
                        std_us > 0 ? prev_std / std_us : 0.0);
        std::printf("\n   apply: %s\n", step.recipe);
        if (!result.bootCmdline.empty())
            std::printf("   (this host's boot line: %s)\n",
                        result.bootCmdline.c_str());
        std::printf("\n");
        prev_max = max_us;
        prev_std = std_us;
    }
    std::printf("Notes: steps are cumulative, as in the paper "
                "(ISPASS'18, Sec. IV).\n");
    return 0;
}
