/**
 * @file
 * SSD profiling framework example (Section I / VI): profile a batch
 * of NVMe SSDs in parallel on a tuned AFA host, versus one at a time,
 * and show the wall-clock advantage of parallel profiling -- the
 * paper's "finish the same task x10 or even x100 faster while still
 * using a single host server" claim.
 *
 * Also demonstrates the span-tracing facility (the LTTng analogue):
 * with --trace, every profiled IO is decomposed into typed latency
 * stages and the per-stage attribution table is printed -- the same
 * diagnosis loop the paper ran with LTTng + blktrace, without
 * re-running anything.
 *
 * With --faults, a fault plan (see src/fault/fault_plan.hh) is
 * injected into the profiled batch: the outlier screen catches the
 * misbehaving device and the attribution table shows the new fault
 * stages (fault_stall / retry_wait) carrying the inflated tail --
 * profiling as fault triage.
 *
 * With --telemetry W (window in simulated ms), the profile is also
 * sliced into a windowed timeline: per-stage latency histograms with
 * ACT-style exceed counters, driver/fabric series, and the simulator
 * self-profile. --telemetry-out / --telemetry-csv write it out; the
 * profile tables above stay byte-identical either way.
 *
 * Usage: ssd_profiler [--ssds N] [--runtime-ms M] [--trace]
 *                     [--trace-out FILE] [--faults PLAN]
 *                     [--telemetry W] [--telemetry-out FILE]
 *                     [--telemetry-csv FILE]
 */

#include <cstdio>
#include <memory>

#include "core/experiment.hh"
#include "core/report.hh"
#include "fault/fault_plan.hh"
#include "obs/perfetto.hh"
#include "sim/config.hh"

using namespace afa::core;

namespace {

double
simulatedHours(afa::sim::Tick per_device, unsigned devices,
               unsigned parallel)
{
    unsigned batches = (devices + parallel - 1) / parallel;
    return afa::sim::toSec(per_device) * batches / 3600.0;
}

} // namespace

int
main(int argc, char **argv)
{
    afa::sim::Config cfg;
    cfg.parseArgs(argc - 1, argv + 1);

    ExperimentParams params;
    params.ssds = static_cast<unsigned>(cfg.getUint("ssds", 32));
    params.runtime = afa::sim::msec(
        static_cast<double>(cfg.getUint("runtime_ms", 1500)));
    params.seed = cfg.getUint("seed", 7);
    params.profile = TuningProfile::IrqAffinity;
    params.smartPeriod = afa::sim::msec(500);
    params.backgroundLoad = false;

    const bool trace = cfg.getBool("trace", false);
    const std::string trace_out = cfg.getString("trace_out", "");
    if (trace || !trace_out.empty()) {
        params.traceMask = afa::obs::kAllCategories;
        params.keepSpans = !trace_out.empty();
    }

    const std::string telemetry_out =
        cfg.getString("telemetry_out", "");
    const std::string telemetry_csv =
        cfg.getString("telemetry_csv", "");
    params.telemetryWindow = afa::sim::msec(
        static_cast<double>(cfg.getUint("telemetry", 0)));
    if ((!telemetry_out.empty() || !telemetry_csv.empty()) &&
        params.telemetryWindow == 0)
        params.telemetryWindow = afa::sim::msec(100);

    const std::string fault_path = cfg.getString("faults", "");
    if (!fault_path.empty()) {
        params.faults = std::make_shared<afa::fault::FaultPlan>(
            afa::fault::FaultPlan::parseFile(fault_path));
        std::printf("injecting fault plan %s:\n%s\n",
                    fault_path.c_str(),
                    params.faults->summary().c_str());
    }

    std::printf("SSD profiler: %u devices, %.1fs profile per device\n\n",
                params.ssds, afa::sim::toSec(params.runtime));

    // Parallel profile: every SSD at once (Fig. 5 geometry).
    auto parallel = ExperimentRunner::run(params);
    std::printf("parallel profile (all %u SSDs at once):\n",
                params.ssds);
    perDeviceTable(parallel).print();

    // Flag outliers: devices whose p99.9 deviates from the batch.
    const auto &agg = parallel.aggregate;
    std::printf("\noutlier screen (p99.9 beyond 3 stddev of batch):\n");
    unsigned outliers = 0;
    for (const auto &dev : parallel.perDevice) {
        double limit = agg.meanUs[2] + 3.0 * agg.stddevUs[2] + 1.0;
        if (dev.ladderUs[2] > limit) {
            std::printf("  %s: p99.9 %.1f us (batch %.1f +/- %.1f)\n",
                        dev.device.c_str(), dev.ladderUs[2],
                        agg.meanUs[2], agg.stddevUs[2]);
            ++outliers;
        }
    }
    if (outliers == 0)
        std::printf("  none -- batch is healthy\n");

    // With --trace: where inside the stack the profile time went.
    if (!parallel.attribution.empty()) {
        std::printf("\nlatency attribution across the batch:\n%s",
                    parallel.attribution.toText().c_str());
        std::printf("smart stalls hit %llu commands for %.1f ms "
                    "total\n",
                    (unsigned long long)parallel.attribution
                        .stage(afa::obs::Stage::SmartStall)
                        .count,
                    parallel.attribution
                            .stage(afa::obs::Stage::SmartStall)
                            .totalTicks /
                        1e6);
        if (params.faults) {
            const auto &stall = parallel.attribution.stage(
                afa::obs::Stage::FaultStall);
            const auto &retry = parallel.attribution.stage(
                afa::obs::Stage::RetryWait);
            std::printf("fault stalls hit %llu commands for %.1f ms; "
                        "%llu retry backoffs for %.1f ms\n",
                        (unsigned long long)stall.count,
                        stall.totalTicks / 1e6,
                        (unsigned long long)retry.count,
                        retry.totalTicks / 1e6);
        }
    }
    if (!trace_out.empty() &&
        afa::obs::writePerfettoJson(
            trace_out, parallel.spans,
            parallel.telemetry.empty() ? nullptr
                                       : &parallel.telemetry))
        std::printf("perfetto trace written to %s\n",
                    trace_out.c_str());

    // Windowed timeline artifacts (--telemetry-out / --telemetry-csv).
    if (!parallel.telemetry.empty()) {
        auto write_file = [](const std::string &path,
                             const std::string &text) {
            std::FILE *f = std::fopen(path.c_str(), "wb");
            if (!f) {
                std::fprintf(stderr, "cannot write %s\n",
                             path.c_str());
                return false;
            }
            std::fwrite(text.data(), 1, text.size(), f);
            std::fclose(f);
            return true;
        };
        if (!telemetry_out.empty() &&
            write_file(telemetry_out,
                       parallel.telemetry.toJsonLines()))
            std::printf("telemetry timeline written to %s\n",
                        telemetry_out.c_str());
        if (!telemetry_csv.empty() &&
            write_file(telemetry_csv, parallel.telemetry.toCsv()))
            std::printf("telemetry CSV written to %s\n",
                        telemetry_csv.c_str());
    }

    // The serial-vs-parallel arithmetic of the paper's claim.
    std::printf("\nprofiling wall-clock comparison (per SNIA-style "
                "120 s profile):\n");
    auto profile_time = afa::sim::sec(120);
    double serial_h = simulatedHours(profile_time, params.ssds, 1);
    double par_h = simulatedHours(profile_time, params.ssds,
                                  params.ssds);
    std::printf("  one at a time : %.2f h\n", serial_h);
    std::printf("  all in parallel: %.2f h  (x%.0f faster)\n", par_h,
                serial_h / par_h);
    return 0;
}
