/**
 * @file
 * Quickstart: build a small all-flash array, run the paper's 4 KiB
 * random-read QD1 workload under two tuning profiles, and print the
 * latency ladders side by side.
 *
 * Usage: quickstart [--ssds N] [--runtime-ms M] [--seed S]
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/report.hh"
#include "sim/config.hh"

using namespace afa::core;

int
main(int argc, char **argv)
{
    afa::sim::Config cfg;
    cfg.parseArgs(argc - 1, argv + 1);

    ExperimentParams params;
    params.ssds =
        static_cast<unsigned>(cfg.getUint("ssds", 8));
    params.runtime =
        afa::sim::msec(double(cfg.getUint("runtime_ms", 1000)));
    params.seed = cfg.getUint("seed", 42);
    params.job = afa::workload::FioJob::parse(
        "rw=randread bs=4k iodepth=1");

    std::printf("AFASim quickstart: %u NVMe SSDs, 4k randread QD1\n\n",
                params.ssds);

    for (TuningProfile profile :
         {TuningProfile::Default, TuningProfile::IrqAffinity}) {
        params.profile = profile;
        auto result = ExperimentRunner::run(params);
        std::printf("=== %s ===\n", tuningProfileName(profile));
        std::printf("%s\n", describeExperiment(result).c_str());
        envelopeTable(result).print();
        std::printf("\n");
    }
    std::printf(
        "The tuned profile (chrt + isolcpus + pinned IRQs) shows the\n"
        "converged, low-tail distribution of the paper's Fig. 9;\n"
        "the default profile shows the Fig. 6 pathology.\n");
    return 0;
}
