/**
 * @file
 * FTL tests: mapping lifecycle, write buffering and backpressure,
 * flush, format, preconditioning, die striping, and garbage
 * collection.
 */

#include <gtest/gtest.h>

#include "nand/nand_array.hh"
#include "nvme/ftl.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using afa::nand::NandArray;
using afa::nand::NandParams;
using afa::nvme::Ftl;
using afa::nvme::FtlParams;
using afa::sim::Simulator;

namespace {

NandParams
smallNand()
{
    NandParams p;
    p.channels = 2;
    p.diesPerChannel = 2;
    p.pagesPerBlock = 4;
    p.blocksPerDie = 16;
    p.readSigma = 0.0;
    p.programSigma = 0.0;
    p.eraseSigma = 0.0;
    return p;
}

FtlParams
smallFtl()
{
    FtlParams p;
    // 4 dies * 16 blocks * 4 pages * 4 slots = 1024 phys slots.
    p.logicalBlocks = 512;
    p.overProvision = 1.5;
    p.gcFreeBlockThreshold = 4;
    p.gcFreeBlockTarget = 6;
    p.writeBufferEntries = 64;
    return p;
}

class FtlTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        afa::sim::setThrowOnError(true);
        sim = std::make_unique<Simulator>(5);
        nand = std::make_unique<NandArray>(*sim, "nand", smallNand());
        ftl = std::make_unique<Ftl>(*sim, "ftl", *nand, smallFtl());
    }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<NandArray> nand;
    std::unique_ptr<Ftl> ftl;
};

TEST_F(FtlTest, FreshDriveIsUnmapped)
{
    for (std::uint64_t lba = 0; lba < 512; lba += 37)
        EXPECT_FALSE(ftl->isMapped(lba));
}

TEST_F(FtlTest, WriteMapsBlock)
{
    bool buffered = false;
    ftl->write(7, [&] { buffered = true; });
    sim->run();
    EXPECT_TRUE(buffered);
    EXPECT_TRUE(ftl->isMapped(7));
    EXPECT_FALSE(ftl->isMapped(8));
    EXPECT_EQ(ftl->stats().hostWrites, 1u);
}

TEST_F(FtlTest, OutOfRangeLbaPanics)
{
    EXPECT_THROW(ftl->isMapped(512), afa::sim::SimError);
    EXPECT_THROW(ftl->write(512, [] {}), afa::sim::SimError);
}

TEST_F(FtlTest, ReadMappedGoesToNand)
{
    ftl->write(3, [] {});
    sim->run();
    auto reads_before = nand->stats().reads;
    bool done = false;
    ftl->readMapped(3, [&] { done = true; });
    sim->run();
    EXPECT_TRUE(done);
    EXPECT_EQ(nand->stats().reads, reads_before + 1);
    EXPECT_EQ(ftl->stats().hostReadsMapped, 1u);
}

TEST_F(FtlTest, ReadUnmappedPanics)
{
    EXPECT_THROW(ftl->readMapped(9, [] {}), afa::sim::SimError);
}

TEST_F(FtlTest, OverwriteInvalidatesOldSlot)
{
    ftl->write(5, [] {});
    ftl->write(5, [] {});
    sim->run();
    EXPECT_TRUE(ftl->isMapped(5));
    EXPECT_EQ(ftl->stats().hostWrites, 2u);
}

TEST_F(FtlTest, FullPagesProgramAutomatically)
{
    // 4 slots per 16 KiB page: 8 writes = 2 programmed pages.
    for (std::uint64_t lba = 0; lba < 8; ++lba)
        ftl->write(lba, [] {});
    sim->run();
    EXPECT_EQ(ftl->stats().programs, 2u);
    EXPECT_EQ(ftl->buffered(), 0u);
}

TEST_F(FtlTest, PartialPageStaysBufferedUntilFlush)
{
    ftl->write(0, [] {});
    ftl->write(1, [] {});
    sim->run();
    EXPECT_EQ(ftl->stats().programs, 0u);
    EXPECT_EQ(ftl->buffered(), 2u);
    bool flushed = false;
    ftl->flush([&] { flushed = true; });
    sim->run();
    EXPECT_TRUE(flushed);
    EXPECT_EQ(ftl->stats().programs, 1u);
    EXPECT_EQ(ftl->buffered(), 0u);
}

TEST_F(FtlTest, FlushOnCleanDriveIsImmediate)
{
    bool flushed = false;
    ftl->flush([&] { flushed = true; });
    sim->run();
    EXPECT_TRUE(flushed);
}

TEST_F(FtlTest, PageStreamStripesAcrossDies)
{
    // 16 writes = 4 full pages; with per-page die rotation each die
    // should receive exactly one program.
    for (std::uint64_t lba = 0; lba < 16; ++lba)
        ftl->write(lba, [] {});
    sim->run();
    EXPECT_EQ(ftl->stats().programs, 4u);
    // All four dies saw traffic: per-die busy horizons are non-zero.
    unsigned busy_dies = 0;
    for (unsigned ch = 0; ch < 2; ++ch)
        for (unsigned d = 0; d < 2; ++d)
            if (nand->dieFreeAt(ch, d) > 0)
                ++busy_dies;
    EXPECT_EQ(busy_dies, 4u);
}

TEST_F(FtlTest, BufferBackpressureDelaysWrites)
{
    // Capacity is 64 entries; issue 100 writes back to back. The
    // overflow writes must wait for programs to complete, which takes
    // simulated time (tProg ~ 1.3 ms).
    unsigned accepted = 0;
    for (std::uint64_t lba = 0; lba < 100; ++lba)
        ftl->write(lba % 512, [&] { ++accepted; });
    sim->run(afa::sim::usec(1));
    EXPECT_LT(accepted, 100u);
    sim->run();
    EXPECT_EQ(accepted, 100u);
}

TEST_F(FtlTest, FormatDropsEverything)
{
    for (std::uint64_t lba = 0; lba < 20; ++lba)
        ftl->write(lba, [] {});
    sim->run();
    ftl->format();
    for (std::uint64_t lba = 0; lba < 20; ++lba)
        EXPECT_FALSE(ftl->isMapped(lba));
    // Drive is usable again after format.
    ftl->write(3, [] {});
    sim->run();
    EXPECT_TRUE(ftl->isMapped(3));
}

TEST_F(FtlTest, PreconditionMapsFraction)
{
    ftl->precondition(0.5);
    unsigned mapped = 0;
    for (std::uint64_t lba = 0; lba < 512; ++lba)
        if (ftl->isMapped(lba))
            ++mapped;
    EXPECT_EQ(mapped, 256u);
    // Preconditioning is instant: no NAND programs.
    EXPECT_EQ(ftl->stats().programs, 0u);
    // And the preconditioned data is readable.
    bool done = false;
    ftl->readMapped(0, [&] { done = true; });
    sim->run();
    EXPECT_TRUE(done);
}

TEST_F(FtlTest, PreconditionFullDrive)
{
    ftl->precondition(1.0);
    for (std::uint64_t lba = 0; lba < 512; lba += 31)
        EXPECT_TRUE(ftl->isMapped(lba));
}

TEST_F(FtlTest, PreconditionBadFractionFatal)
{
    EXPECT_THROW(ftl->precondition(1.5), afa::sim::SimError);
    EXPECT_THROW(ftl->precondition(-0.1), afa::sim::SimError);
}

TEST_F(FtlTest, GcReclaimsSpaceUnderOverwrite)
{
    // Fill the logical space, then overwrite repeatedly: the free
    // pool shrinks until GC kicks in and erases emptied blocks.
    ftl->precondition(1.0);
    for (int pass = 0; pass < 4; ++pass)
        for (std::uint64_t lba = 0; lba < 512; ++lba)
            ftl->write(lba, [] {});
    sim->run();
    EXPECT_GT(ftl->stats().gcRuns, 0u);
    EXPECT_GT(ftl->stats().erases, 0u);
    EXPECT_GE(ftl->freeBlocks(), 4u);
    // Every logical block must still be mapped after GC churn.
    for (std::uint64_t lba = 0; lba < 512; ++lba)
        EXPECT_TRUE(ftl->isMapped(lba));
}

TEST_F(FtlTest, GcRelocatesValidData)
{
    // A nearly full drive with little over-provisioning and scattered
    // overwrites: no block ever becomes fully invalid, so every GC
    // victim still holds valid data and must relocate it.
    FtlParams p = smallFtl();
    p.logicalBlocks = 900;   // of 1024 physical slots
    p.overProvision = 1.05;
    Ftl tight(*sim, "ftl.tight", *nand, p);
    tight.precondition(1.0);
    for (std::uint64_t i = 0; i < 1200; ++i)
        tight.write((i * 389) % 900, [] {});
    sim->run();
    EXPECT_GT(tight.stats().gcRuns, 0u);
    EXPECT_GT(tight.stats().gcSlotWrites, 0u);
    EXPECT_GT(tight.stats().gcPageReads, 0u);
    // Every logical block remains mapped and readable after GC churn.
    for (std::uint64_t lba = 0; lba < 900; lba += 101) {
        EXPECT_TRUE(tight.isMapped(lba));
        bool done = false;
        tight.readMapped(lba, [&] { done = true; });
        sim->run();
        EXPECT_TRUE(done);
    }
}

TEST_F(FtlTest, TooSmallNandIsFatal)
{
    FtlParams p = smallFtl();
    p.logicalBlocks = 100000; // exceeds 1024 phys slots
    EXPECT_THROW(Ftl(*sim, "ftl2", *nand, p), afa::sim::SimError);
}

} // namespace
