/**
 * @file
 * SMART engine tests: periodicity, stall horizons, save cadence, and
 * the disabled (experimental firmware) mode.
 */

#include <gtest/gtest.h>

#include "nvme/smart.hh"
#include "sim/simulator.hh"
#include "sim/trace.hh"

using afa::nvme::SmartConfig;
using afa::nvme::SmartEngine;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::sim::msec;
using afa::sim::sec;
using afa::sim::usec;

namespace {

TEST(SmartEngineTest, DisabledEngineNeverStalls)
{
    Simulator sim(1);
    SmartConfig cfg;
    cfg.enabled = false;
    cfg.period = msec(1);
    SmartEngine smart(sim, "smart", cfg);
    smart.start();
    sim.run(sec(1));
    EXPECT_EQ(smart.collections(), 0u);
    EXPECT_EQ(smart.stalledUntil(), 0u);
}

TEST(SmartEngineTest, CollectsOncePerPeriod)
{
    Simulator sim(1);
    SmartConfig cfg;
    cfg.period = msec(10);
    SmartEngine smart(sim, "smart", cfg);
    smart.start();
    sim.run(msec(105));
    // Phase offset is random in [0, period): expect 10 +/- 1.
    EXPECT_GE(smart.collections(), 9u);
    EXPECT_LE(smart.collections(), 11u);
}

TEST(SmartEngineTest, SaveCadence)
{
    Simulator sim(1);
    SmartConfig cfg;
    cfg.period = msec(1);
    cfg.saveEvery = 4;
    SmartEngine smart(sim, "smart", cfg);
    smart.start();
    sim.run(msec(40));
    EXPECT_GT(smart.collections(), 30u);
    EXPECT_NEAR(static_cast<double>(smart.saves()),
                smart.collections() / 4.0, 2.0);
}

TEST(SmartEngineTest, SaveEveryZeroMeansNeverSave)
{
    Simulator sim(1);
    SmartConfig cfg;
    cfg.period = msec(1);
    cfg.saveEvery = 0;
    SmartEngine smart(sim, "smart", cfg);
    smart.start();
    sim.run(msec(20));
    EXPECT_GT(smart.collections(), 10u);
    EXPECT_EQ(smart.saves(), 0u);
}

TEST(SmartEngineTest, StallHorizonRaisedDuringCollection)
{
    Simulator sim(1);
    SmartConfig cfg;
    cfg.period = msec(5);
    cfg.updateDuration = usec(500);
    cfg.durationSigma = 0.0;
    cfg.saveEvery = 0;
    SmartEngine smart(sim, "smart", cfg);
    smart.start();
    sim.run(msec(30));
    // After several collections the horizon is in the past but > 0.
    EXPECT_GT(smart.stalledUntil(), 0u);
    EXPECT_GT(smart.collections(), 3u);
}

TEST(SmartEngineTest, AdHocStallExtendsHorizon)
{
    Simulator sim(1);
    SmartConfig cfg;
    cfg.enabled = false;
    SmartEngine smart(sim, "smart", cfg);
    smart.stallFor(usec(100));
    EXPECT_EQ(smart.stalledUntil(), usec(100));
    // A shorter stall never shrinks the horizon.
    smart.stallFor(usec(10));
    EXPECT_EQ(smart.stalledUntil(), usec(100));
}

TEST(SmartEngineTest, PhaseOffsetsDifferAcrossEngines)
{
    Simulator sim(7);
    SmartConfig cfg;
    cfg.period = sec(30);
    SmartEngine a(sim, "smart.a", cfg);
    SmartEngine b(sim, "smart.b", cfg);
    a.start();
    b.start();
    // Track when each first collects by polling collections().
    Tick first_a = 0, first_b = 0;
    while (sim.pendingEvents() && (first_a == 0 || first_b == 0)) {
        sim.runSteps(1);
        if (first_a == 0 && a.collections() > 0)
            first_a = sim.now();
        if (first_b == 0 && b.collections() > 0)
            first_b = sim.now();
    }
    EXPECT_NE(first_a, first_b);
}

TEST(SmartEngineTest, TraceRecordsEmitted)
{
    Simulator sim(1);
    afa::sim::Tracer tracer;
    tracer.enable("nvme.smart");
    SmartConfig cfg;
    cfg.period = msec(1);
    SmartEngine smart(sim, "smart", cfg, &tracer);
    smart.start();
    sim.run(msec(10));
    EXPECT_FALSE(tracer.filtered("nvme.smart").empty());
}

} // namespace
