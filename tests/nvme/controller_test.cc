/**
 * @file
 * Controller tests: FOB fast path latency, SMART stalls, experimental
 * firmware, command pipeline serialisation, writes, flush, format,
 * log pages, and error handling.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "nand/nand_array.hh"
#include "nvme/controller.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace afa::nvme;
using afa::nand::NandArray;
using afa::nand::NandParams;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::sim::msec;
using afa::sim::sec;
using afa::sim::usec;

namespace {

NandParams
testNand()
{
    NandParams p;
    p.channels = 4;
    p.diesPerChannel = 4;
    p.pagesPerBlock = 16;
    p.blocksPerDie = 64;
    return p;
}

FtlParams
testFtl()
{
    FtlParams p;
    p.logicalBlocks = 8192;
    p.overProvision = 1.25;
    return p;
}

/** Harness: a controller with a fixed-delay loopback transport. */
class ControllerTest : public ::testing::Test
{
  protected:
    /**
     * Default test firmware: SMART off so unbounded sim->run() calls
     * terminate (the periodic SMART schedule never drains the queue).
     * Tests exercising SMART configure it explicitly and use bounded
     * runs.
     */
    static FirmwareConfig
    quietFirmware()
    {
        FirmwareConfig fw;
        fw.smart.enabled = false;
        return fw;
    }

    void SetUp() override
    {
        afa::sim::setThrowOnError(true);
        rebuild(quietFirmware());
    }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    void
    rebuild(const FirmwareConfig &fw)
    {
        completions.clear();
        completionTimes.clear();
        sim = std::make_unique<Simulator>(11);
        nand = std::make_unique<NandArray>(*sim, "nand", testNand());
        ctrl = std::make_unique<Controller>(*sim, "nvme0", fw, *nand,
                                            testFtl());
        ctrl->setTransport(
            [this](std::uint32_t bytes, std::uint64_t io,
                   afa::sim::EventFn fn) {
                (void)bytes;
                (void)io;
                sim->scheduleAfter(transportDelay, std::move(fn));
            });
        ctrl->setCompletionHandler([this](const NvmeCompletion &c) {
            completions.push_back(c);
            completionTimes.push_back(sim->now());
        });
        ctrl->start();
    }

    /** Submit a command and run until it completes; returns latency. */
    Tick
    roundTrip(const NvmeCommand &cmd)
    {
        Tick begin = sim->now();
        std::size_t before = completions.size();
        ctrl->submit(cmd);
        while (completions.size() == before) {
            if (sim->pendingEvents() == 0)
                ADD_FAILURE() << "command never completed";
            if (sim->runSteps(1) == 0)
                break;
        }
        return sim->now() - begin;
    }

    Tick transportDelay = usec(2);
    std::unique_ptr<Simulator> sim;
    std::unique_ptr<NandArray> nand;
    std::unique_ptr<Controller> ctrl;
    std::vector<NvmeCompletion> completions;
    std::vector<Tick> completionTimes;
};

TEST_F(ControllerTest, FobReadLatencyNearSpec)
{
    // FOB fast path: proc (6 us) + media (~10 us) + xfer (~2.4 us) +
    // transport (2 us) ~ 20 us device-side.
    Tick lat = roundTrip(NvmeCommand{Op::Read, 100, 4096, 0, 1, 0});
    EXPECT_GT(lat, usec(14));
    EXPECT_LT(lat, usec(30));
    EXPECT_EQ(completions[0].cmdId, 1u);
    EXPECT_EQ(completions[0].status, Status::Success);
    EXPECT_EQ(ctrl->stats().readsCompleted, 1u);
}

TEST_F(ControllerTest, FobReadsDoNotTouchNand)
{
    roundTrip(NvmeCommand{Op::Read, 0, 4096, 0, 1, 0});
    roundTrip(NvmeCommand{Op::Read, 4000, 4096, 0, 2, 0});
    EXPECT_EQ(nand->stats().reads, 0u);
}

TEST_F(ControllerTest, MappedReadGoesThroughNand)
{
    roundTrip(NvmeCommand{Op::Write, 50, 4096, 0, 1, 0});
    auto reads_before = nand->stats().reads;
    Tick lat = roundTrip(NvmeCommand{Op::Read, 50, 4096, 0, 2, 0});
    EXPECT_EQ(nand->stats().reads, reads_before + 1);
    // NAND tR (~50 us) makes mapped reads slower than FOB reads.
    EXPECT_GT(lat, usec(50));
}

TEST_F(ControllerTest, WriteCompletesViaBuffer)
{
    Tick lat = roundTrip(NvmeCommand{Op::Write, 10, 4096, 0, 1, 0});
    // Buffered write: no tProg (1.3 ms) in the host latency.
    EXPECT_LT(lat, usec(100));
    EXPECT_TRUE(ctrl->ftl().isMapped(10));
    EXPECT_EQ(ctrl->stats().writesCompleted, 1u);
}

TEST_F(ControllerTest, SequentialWritesFasterThanRandom)
{
    // Issue a sequential stream and a random stream; compare average
    // completion spacing (the write pipe service differs).
    FirmwareConfig fw = quietFirmware();
    rebuild(fw);
    Tick t0 = sim->now();
    for (int i = 0; i < 32; ++i)
        ctrl->submit(NvmeCommand{Op::Write,
                                 static_cast<std::uint64_t>(i), 4096, 0,
                                 static_cast<std::uint64_t>(i), t0});
    sim->run();
    Tick seq_done = completionTimes.back() - t0;

    rebuild(fw);
    t0 = sim->now();
    for (int i = 0; i < 32; ++i)
        ctrl->submit(NvmeCommand{Op::Write,
                                 static_cast<std::uint64_t>(
                                     (i * 97) % 8192),
                                 4096, 0,
                                 static_cast<std::uint64_t>(i), t0});
    sim->run();
    Tick rand_done = completionTimes.back() - t0;
    EXPECT_GT(rand_done, 2 * seq_done);
}

TEST_F(ControllerTest, SmartStallDelaysReads)
{
    FirmwareConfig fw;
    fw.smart.period = msec(5);
    fw.smart.updateDuration = usec(500);
    fw.smart.saveEvery = 0; // updates only
    rebuild(fw);
    // Issue a read every 50 us for 20 ms; at least one lands in a
    // SMART stall window and pays ~hundreds of us.
    Tick worst = 0;
    for (Tick t = 0; t < msec(20); t += usec(50)) {
        sim->run(t);
        std::size_t before = completions.size();
        ctrl->submit(NvmeCommand{Op::Read, 0, 4096, 0, t, sim->now()});
        Tick begin = sim->now();
        while (completions.size() == before && sim->pendingEvents())
            sim->runSteps(1);
        worst = std::max(worst, sim->now() - begin);
    }
    EXPECT_GT(worst, usec(300));
    EXPECT_GT(ctrl->stats().smartStallDelay, 0u);
    EXPECT_GT(ctrl->smart().collections(), 2u);
}

TEST_F(ControllerTest, ExperimentalFirmwareHasNoSmartStalls)
{
    FirmwareConfig fw = FirmwareConfig::experimental();
    fw.smart.period = msec(5); // would fire often if enabled
    fw.hiccupProbability = 0.0;
    rebuild(fw);
    Tick worst = 0;
    for (Tick t = 0; t < msec(20); t += usec(50)) {
        sim->run(t);
        std::size_t before = completions.size();
        ctrl->submit(NvmeCommand{Op::Read, 0, 4096, 0, t, sim->now()});
        Tick begin = sim->now();
        while (completions.size() == before && sim->pendingEvents())
            sim->runSteps(1);
        worst = std::max(worst, sim->now() - begin);
    }
    EXPECT_LT(worst, usec(40));
    EXPECT_EQ(ctrl->smart().collections(), 0u);
    EXPECT_EQ(ctrl->stats().smartStallDelay, 0u);
}

TEST_F(ControllerTest, PipelineSerialisesBackToBackReads)
{
    // Two reads submitted at once: completions spaced by at least the
    // per-command processing time.
    ctrl->submit(NvmeCommand{Op::Read, 0, 4096, 0, 1, 0});
    ctrl->submit(NvmeCommand{Op::Read, 8, 4096, 0, 2, 0});
    sim->run();
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_GE(completionTimes[1] - completionTimes[0],
              ctrl->firmware().readProcTime / 2);
}

TEST_F(ControllerTest, FlushWaitsForBufferedData)
{
    ctrl->submit(NvmeCommand{Op::Write, 0, 4096, 0, 1, 0});
    ctrl->submit(NvmeCommand{Op::Flush, 0, 0, 0, 2, 0});
    sim->run();
    ASSERT_EQ(completions.size(), 2u);
    // Flush completes after the program (tProg ~ 1.3 ms).
    EXPECT_GT(completionTimes[1], msec(1));
    EXPECT_EQ(ctrl->stats().flushesCompleted, 1u);
}

TEST_F(ControllerTest, FormatReturnsDriveToFob)
{
    roundTrip(NvmeCommand{Op::Write, 42, 4096, 0, 1, 0});
    EXPECT_TRUE(ctrl->ftl().isMapped(42));
    Tick lat = roundTrip(NvmeCommand{Op::Format, 0, 0, 0, 2, 0});
    EXPECT_GE(lat, ctrl->firmware().formatDuration);
    EXPECT_FALSE(ctrl->ftl().isMapped(42));
    EXPECT_EQ(ctrl->stats().formatsCompleted, 1u);
}

TEST_F(ControllerTest, LogPageStallsIoWhenConfigured)
{
    FirmwareConfig fw;
    fw.logPageStallsIo = true;
    fw.logPageProcTime = usec(200);
    fw.smart.period = sec(1000); // keep periodic SMART out of the way
    rebuild(fw);
    ctrl->submit(NvmeCommand{Op::GetLogPage, 0, 512, 0, 1, 0});
    Tick lat = roundTrip(NvmeCommand{Op::Read, 0, 4096, 0, 2, 0});
    EXPECT_GT(lat, usec(150));
    EXPECT_EQ(ctrl->stats().logPagesCompleted, 1u);
}

TEST_F(ControllerTest, LogPageQuietWhenStallDisabled)
{
    FirmwareConfig fw = quietFirmware();
    fw.logPageStallsIo = false;
    fw.logPageProcTime = usec(200);
    fw.hiccupProbability = 0.0;
    rebuild(fw);
    ctrl->submit(NvmeCommand{Op::GetLogPage, 0, 512, 0, 1, 0});
    sim->run();
    Tick lat = roundTrip(NvmeCommand{Op::Read, 0, 4096, 0, 2, 0});
    EXPECT_LT(lat, usec(40));
}

TEST_F(ControllerTest, InvalidSizesRejected)
{
    Tick lat = roundTrip(NvmeCommand{Op::Read, 0, 1000, 0, 1, 0});
    (void)lat;
    EXPECT_EQ(completions[0].status, Status::InvalidField);
    roundTrip(NvmeCommand{Op::Write, 0, 0, 0, 2, 0});
    EXPECT_EQ(completions[1].status, Status::InvalidField);
}

TEST_F(ControllerTest, MultiBlockReadCompletesOnce)
{
    Tick lat = roundTrip(NvmeCommand{Op::Read, 0, 131072, 0, 1, 0});
    EXPECT_EQ(completions.size(), 1u);
    // 128 KiB at 1.7 GB/s internal ~ 77 us of transfer.
    EXPECT_GT(lat, usec(70));
    EXPECT_EQ(ctrl->stats().bytesRead, 131072u);
}

TEST_F(ControllerTest, UnwiredControllerIsFatal)
{
    Simulator s2(1);
    NandArray n2(s2, "nand2", testNand());
    Controller c2(s2, "nvme1", FirmwareConfig{}, n2, testFtl());
    EXPECT_THROW(c2.submit(NvmeCommand{}), afa::sim::SimError);
}

TEST_F(ControllerTest, HiccupsAppearAtConfiguredRate)
{
    FirmwareConfig fw;
    fw.hiccupProbability = 0.5; // exaggerate for the test
    fw.smart.enabled = false;
    rebuild(fw);
    for (int i = 0; i < 100; ++i)
        roundTrip(NvmeCommand{Op::Read, 0, 4096, 0,
                              static_cast<std::uint64_t>(i), 0});
    EXPECT_GT(ctrl->stats().hiccups, 20u);
    EXPECT_LT(ctrl->stats().hiccups, 80u);
}

} // namespace
