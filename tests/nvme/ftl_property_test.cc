/**
 * @file
 * Property test: the FTL against a trivial reference model.
 *
 * A reference std::map tracks which LBAs have been written; after any
 * interleaving of writes, overwrites, flushes, formats and
 * preconditions, the FTL must agree on mapped-ness, every mapped LBA
 * must be readable, and the block accounting (valid slots vs mapped
 * LBAs) must balance. Parameterised over several FTL geometries and
 * operation mixes.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "nand/nand_array.hh"
#include "nvme/ftl.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using afa::nand::NandArray;
using afa::nand::NandParams;
using afa::nvme::Ftl;
using afa::nvme::FtlParams;
using afa::sim::Rng;
using afa::sim::Simulator;

namespace {

struct GeometryCase
{
    const char *name;
    unsigned channels;
    unsigned dies;
    unsigned pagesPerBlock;
    unsigned blocksPerDie;
    std::uint64_t logicalBlocks;
    double overProvision;
    double formatWeight; ///< relative chance of a format op
};

class FtlPropertyTest : public ::testing::TestWithParam<GeometryCase>
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }
};

TEST_P(FtlPropertyTest, AgreesWithReferenceModel)
{
    const GeometryCase &gc = GetParam();
    Simulator sim(afa::sim::hashTag(gc.name));
    NandParams np;
    np.channels = gc.channels;
    np.diesPerChannel = gc.dies;
    np.pagesPerBlock = gc.pagesPerBlock;
    np.blocksPerDie = gc.blocksPerDie;
    NandArray nand(sim, "nand", np);
    FtlParams fp;
    fp.logicalBlocks = gc.logicalBlocks;
    fp.overProvision = gc.overProvision;
    fp.writeBufferEntries = 32;
    Ftl ftl(sim, "ftl", nand, fp);

    std::map<std::uint64_t, bool> reference;
    Rng rng(99);

    for (int step = 0; step < 400; ++step) {
        double dice = rng.uniform();
        if (dice < 0.70) {
            // Write (often an overwrite).
            std::uint64_t lba =
                rng.uniformInt(0, gc.logicalBlocks - 1);
            ftl.write(lba, nullptr);
            reference[lba] = true;
        } else if (dice < 0.80) {
            // Flush and drain.
            bool flushed = false;
            ftl.flush([&] { flushed = true; });
            sim.run();
            ASSERT_TRUE(flushed);
        } else if (dice < 0.80 + gc.formatWeight) {
            sim.run(); // settle outstanding NAND work first
            ftl.format();
            reference.clear();
        } else {
            // Read something mapped, if anything is.
            if (!reference.empty()) {
                auto it = reference.lower_bound(
                    rng.uniformInt(0, gc.logicalBlocks - 1));
                if (it == reference.end())
                    it = reference.begin();
                bool done = false;
                ftl.readMapped(it->first, [&] { done = true; });
                sim.run();
                ASSERT_TRUE(done);
            }
        }
        // Let queued work make progress occasionally.
        if (step % 16 == 0)
            sim.run();
    }
    sim.run();

    // Mapped-ness agrees everywhere.
    for (std::uint64_t lba = 0; lba < gc.logicalBlocks; ++lba)
        ASSERT_EQ(ftl.isMapped(lba), reference.count(lba) != 0)
            << "lba " << lba;

    // Every mapped LBA is readable after the churn.
    unsigned checked = 0;
    for (const auto &[lba, mapped] : reference) {
        (void)mapped;
        bool done = false;
        ftl.readMapped(lba, [&] { done = true; });
        sim.run();
        ASSERT_TRUE(done);
        if (++checked >= 64)
            break;
    }

    // Buffer fully drains on a final flush.
    bool flushed = false;
    ftl.flush([&] { flushed = true; });
    sim.run();
    EXPECT_TRUE(flushed);
    EXPECT_EQ(ftl.buffered(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FtlPropertyTest,
    ::testing::Values(
        GeometryCase{"small", 2, 2, 4, 16, 512, 1.5, 0.05},
        GeometryCase{"tight_op", 2, 2, 4, 16, 900, 1.05, 0.05},
        GeometryCase{"one_die", 1, 1, 8, 64, 1024, 1.5, 0.05},
        GeometryCase{"format_heavy", 2, 2, 4, 16, 512, 1.5, 0.15},
        GeometryCase{"wide", 4, 4, 8, 8, 3072, 1.3, 0.02}),
    [](const ::testing::TestParamInfo<GeometryCase> &info) {
        return info.param.name;
    });

} // namespace
