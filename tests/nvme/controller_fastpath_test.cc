/**
 * @file
 * Device command fast-path differential tests (DESIGN.md §9).
 *
 * Two identically seeded controller stacks replay the same scripted
 * command stream -- one with the single-event fast path (the
 * default), one forced onto the chained event model via
 * setFastPath(false). Everything observable must match to the tick:
 * completion times and statuses, controller/FTL/NAND counters, NAND
 * horizon state, span attribution, and the post-run position of
 * every RNG stream. Only the executed-event count may differ.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "nand/nand_array.hh"
#include "nvme/controller.hh"
#include "obs/span_log.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace afa::nvme;
using afa::nand::NandArray;
using afa::nand::NandParams;
using afa::sim::Rng;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::sim::msec;
using afa::sim::usec;

namespace {

NandParams
testNand()
{
    NandParams p;
    p.channels = 4;
    p.diesPerChannel = 4;
    p.pagesPerBlock = 16;
    p.blocksPerDie = 64;
    return p;
}

FtlParams
testFtl()
{
    FtlParams p;
    p.logicalBlocks = 8192;
    p.overProvision = 1.25;
    return p;
}

/**
 * Test firmware: SMART off so unbounded run() terminates, hiccup
 * probability cranked from 4e-6 to 5% so a few-hundred-op script
 * actually exercises the hiccup draw on both models.
 */
FirmwareConfig
spicyFirmware()
{
    FirmwareConfig fw;
    fw.smart.enabled = false;
    fw.hiccupProbability = 0.05;
    return fw;
}

/** One scripted action, replayed identically into both stacks. */
struct ScriptOp
{
    enum Kind { Submit, LimpOn, LimpOff, Stall, FastOff, FastOn };
    Kind kind = Submit;
    Tick when = 0;
    NvmeCommand cmd; ///< Submit only
    Tick stallFor = 0; ///< Stall only
};

/** One full device stack under a loopback transport. */
struct Stack
{
    std::unique_ptr<Simulator> sim;
    std::unique_ptr<NandArray> nand;
    std::unique_ptr<Controller> ctrl;
    std::unique_ptr<afa::obs::SpanLog> spans;
    std::vector<NvmeCompletion> completions;
    std::vector<Tick> completionTimes;

    void
    build(bool fast_path, bool with_spans)
    {
        sim = std::make_unique<Simulator>(11);
        nand = std::make_unique<NandArray>(*sim, "nand", testNand());
        ctrl = std::make_unique<Controller>(
            *sim, "nvme0", spicyFirmware(), *nand, testFtl());
        ctrl->setFastPath(fast_path);
        if (with_spans) {
            afa::obs::TraceParams tp;
            tp.mask = ~0u;
            spans = std::make_unique<afa::obs::SpanLog>(tp);
            ctrl->setSpanLog(spans.get(), 0);
        }
        ctrl->setTransport([this](std::uint32_t bytes,
                                  std::uint64_t io,
                                  afa::sim::EventFn fn) {
            (void)bytes;
            (void)io;
            sim->scheduleAfter(usec(2), std::move(fn));
        });
        ctrl->setCompletionHandler([this](const NvmeCompletion &c) {
            completions.push_back(c);
            completionTimes.push_back(sim->now());
        });
        ctrl->start();
    }

    void
    replay(const std::vector<ScriptOp> &script)
    {
        ctrl->ftl().precondition(0.5);
        for (const ScriptOp &op : script) {
            switch (op.kind) {
            case ScriptOp::Submit:
                sim->scheduleAt(op.when, [this, cmd = op.cmd] {
                    ctrl->submit(cmd);
                });
                break;
            case ScriptOp::LimpOn:
                sim->scheduleAt(op.when,
                                [this] { ctrl->setLimpFactor(4.0); });
                break;
            case ScriptOp::LimpOff:
                sim->scheduleAt(op.when,
                                [this] { ctrl->setLimpFactor(1.0); });
                break;
            case ScriptOp::Stall:
                sim->scheduleAt(op.when, [this, d = op.stallFor] {
                    ctrl->stallUntil(sim->now() + d);
                });
                break;
            case ScriptOp::FastOff:
                // No-op on the reference stack (already off).
                sim->scheduleAt(op.when, [this] {
                    if (ctrl->fastPath())
                        ctrl->setFastPath(false);
                });
                break;
            case ScriptOp::FastOn:
                sim->scheduleAt(op.when, [this] {
                    if (this->fastOnIsFast)
                        ctrl->setFastPath(true);
                });
                break;
            }
        }
        sim->run();
    }

    /** True on the fast stack: FastOn script ops re-enable there. */
    bool fastOnIsFast = false;
};

/**
 * A randomized mixed script: bursty QD>1 reads and writes over a
 * half-preconditioned drive, salted with flushes and invalid
 * commands. @p with_admin adds log pages and the odd format -- a
 * format's 500 ms pipeline stall queues the rest of the script
 * behind it, demoting essentially every fast dispatch, so tests
 * asserting fast-path *counts* keep admin commands off. @p
 * with_faults adds limp windows and firmware stalls; @p with_toggle
 * flips the fast path off and back on mid-run (on the fast stack
 * only).
 *
 * @p light trades intensity for idleness: short bursts, small reads,
 * few writes, gaps longer than a burst's full drain time. The heavy
 * default keeps the tiny test NAND saturated, which means some
 * chained command is nearly always in flight and the chain-depth
 * guard (correctly) keeps almost everything chained -- great for
 * exactness coverage, useless for asserting fast-path *counts*. The
 * light profile drains between bursts, so most bursts start from an
 * idle device and take the fast path.
 */
std::vector<ScriptOp>
makeScript(std::uint64_t seed, std::size_t ops, bool with_admin,
           bool with_faults, bool with_toggle, bool light = false)
{
    Rng rng(seed);
    std::vector<ScriptOp> script;
    Tick when = usec(5);
    std::uint64_t cmd_id = 1;
    while (script.size() < ops) {
        // Bursts land back-to-back on the same tick (QD > 1).
        std::uint64_t burst =
            1 + rng.uniformInt(0, light ? 1 : 4);
        for (std::uint64_t b = 0; b < burst; ++b) {
            ScriptOp op;
            op.when = when;
            NvmeCommand &cmd = op.cmd;
            cmd.cmdId = cmd_id;
            cmd.tag = cmd_id++;
            std::uint64_t kind = rng.uniformInt(0, 99);
            if (kind < (light ? 75 : 65)) {
                cmd.op = Op::Read;
                std::uint64_t nb =
                    1 + rng.uniformInt(0, light ? 1 : 7);
                cmd.lba = rng.uniformInt(0, 8192 - nb);
                cmd.bytes =
                    kLogicalBlockBytes * std::uint32_t(nb);
            } else if (kind < (light ? 85 : 80)) {
                cmd.op = Op::Write;
                cmd.lba = rng.uniformInt(0, 511);
                cmd.bytes = kLogicalBlockBytes *
                            std::uint32_t(
                                light
                                    ? 1
                                    : 1 + rng.uniformInt(0, 3));
            } else if (kind < (light ? 88 : 85)) {
                cmd.op = Op::Flush;
            } else if (kind < 90) {
                cmd.op = with_admin ? Op::GetLogPage : Op::Read;
            } else if (kind < 92) {
                cmd.op = with_admin ? Op::Format : Op::Read;
            } else if (kind < 95) {
                cmd.op = Op::Read;
                cmd.lba = rng.uniformInt(0, 8191);
            } else {
                // Validation path: a byte count that is not a
                // whole number of logical blocks.
                cmd.op = rng.uniformInt(0, 1) ? Op::Read : Op::Write;
                cmd.lba = rng.uniformInt(0, 511);
                cmd.bytes = rng.uniformInt(0, 1) ? 1000u : 0u;
            }
            script.push_back(op);
        }
        when += light ? usec(80 + rng.uniformInt(0, 160))
                      : usec(rng.uniformInt(0, 60));
        if (with_faults && rng.uniformInt(0, 19) == 0) {
            ScriptOp fault;
            fault.when = when;
            std::uint64_t f = rng.uniformInt(0, 2);
            if (f == 0) {
                fault.kind = ScriptOp::LimpOn;
                script.push_back(fault);
                fault.kind = ScriptOp::LimpOff;
                fault.when = when + usec(200);
                script.push_back(fault);
            } else if (f == 1) {
                fault.kind = ScriptOp::Stall;
                fault.stallFor = usec(50 + rng.uniformInt(0, 100));
                script.push_back(fault);
            }
            when += usec(5);
        }
        if (with_toggle && rng.uniformInt(0, 24) == 0) {
            ScriptOp t;
            t.kind = ScriptOp::FastOff;
            t.when = when;
            script.push_back(t);
            t.kind = ScriptOp::FastOn;
            t.when = when + usec(100);
            script.push_back(t);
            when += usec(5);
        }
    }
    return script;
}

/** Everything observable must match; event counts may not. */
void
expectSameObservables(Stack &fast, Stack &ref)
{
    ASSERT_EQ(fast.completions.size(), ref.completions.size());
    for (std::size_t i = 0; i < fast.completions.size(); ++i) {
        EXPECT_EQ(fast.completions[i].cmdId, ref.completions[i].cmdId)
            << "completion order diverged at index " << i;
        EXPECT_EQ(int(fast.completions[i].status),
                  int(ref.completions[i].status))
            << "status diverged for cmd "
            << fast.completions[i].cmdId;
        EXPECT_EQ(fast.completionTimes[i], ref.completionTimes[i])
            << "completion tick diverged for cmd "
            << fast.completions[i].cmdId;
    }

    const ControllerStats &fc = fast.ctrl->stats();
    const ControllerStats &rc = ref.ctrl->stats();
    EXPECT_EQ(fc.readsCompleted, rc.readsCompleted);
    EXPECT_EQ(fc.writesCompleted, rc.writesCompleted);
    EXPECT_EQ(fc.flushesCompleted, rc.flushesCompleted);
    EXPECT_EQ(fc.formatsCompleted, rc.formatsCompleted);
    EXPECT_EQ(fc.logPagesCompleted, rc.logPagesCompleted);
    EXPECT_EQ(fc.bytesRead, rc.bytesRead);
    EXPECT_EQ(fc.bytesWritten, rc.bytesWritten);
    EXPECT_EQ(fc.hiccups, rc.hiccups);
    EXPECT_EQ(fc.smartStallDelay, rc.smartStallDelay);
    EXPECT_EQ(fc.droppedCommands, rc.droppedCommands);
    EXPECT_EQ(fc.faultStallDelay, rc.faultStallDelay);

    const FtlStats &ff = fast.ctrl->ftl().stats();
    const FtlStats &rf = ref.ctrl->ftl().stats();
    EXPECT_EQ(ff.hostWrites, rf.hostWrites);
    EXPECT_EQ(ff.hostReadsMapped, rf.hostReadsMapped);
    EXPECT_EQ(ff.gcPageReads, rf.gcPageReads);
    EXPECT_EQ(ff.gcSlotWrites, rf.gcSlotWrites);
    EXPECT_EQ(ff.erases, rf.erases);
    EXPECT_EQ(ff.programs, rf.programs);
    EXPECT_EQ(ff.gcRuns, rf.gcRuns);
    EXPECT_EQ(fast.ctrl->ftl().buffered(),
              ref.ctrl->ftl().buffered());
    EXPECT_EQ(fast.ctrl->ftl().freeBlocks(),
              ref.ctrl->ftl().freeBlocks());

    const afa::nand::NandStats &fn = fast.nand->stats();
    const afa::nand::NandStats &rn = ref.nand->stats();
    EXPECT_EQ(fn.reads, rn.reads);
    EXPECT_EQ(fn.programs, rn.programs);
    EXPECT_EQ(fn.erases, rn.erases);
    EXPECT_EQ(fn.dieBusyTime, rn.dieBusyTime);
    EXPECT_EQ(fn.channelBusyTime, rn.channelBusyTime);
    const NandParams &np = fast.nand->params();
    for (unsigned c = 0; c < np.channels; ++c)
        for (unsigned d = 0; d < np.diesPerChannel; ++d)
            EXPECT_EQ(fast.nand->dieFreeAt(c, d),
                      ref.nand->dieFreeAt(c, d))
                << "die " << c << "/" << d;

    // The fast path must not change any stream's draw count: probe
    // the post-run position of every stream the device draws from.
    EXPECT_EQ(fast.ctrl->rng().uniformInt(0, 1u << 30),
              ref.ctrl->rng().uniformInt(0, 1u << 30))
        << "controller RNG stream diverged";
    EXPECT_EQ(fast.nand->rng().uniformInt(0, 1u << 30),
              ref.nand->rng().uniformInt(0, 1u << 30))
        << "NAND RNG stream diverged";
    EXPECT_EQ(fast.ctrl->ftl().rng().uniformInt(0, 1u << 30),
              ref.ctrl->ftl().rng().uniformInt(0, 1u << 30))
        << "FTL RNG stream diverged";
}

class ControllerFastPathTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    void
    runDifferential(std::uint64_t seed, std::size_t ops,
                    bool with_admin, bool with_faults,
                    bool with_toggle, bool with_spans = false,
                    bool light = false)
    {
        auto script = makeScript(seed, ops, with_admin, with_faults,
                                 with_toggle, light);
        fast.build(true, with_spans);
        fast.fastOnIsFast = true;
        ref.build(false, with_spans);
        fast.replay(script);
        ref.replay(script);
        ASSERT_GT(fast.completions.size(), ops / 2);
        expectSameObservables(fast, ref);
    }

    Stack fast;
    Stack ref;
};

TEST_F(ControllerFastPathTest, MixedWorkloadReplaysTickIdentical)
{
    // Heavy profile: pure exactness under saturation (the chain-depth
    // guard keeps nearly everything chained while the device is
    // backlogged, so no fast-count assertion is meaningful here).
    runDifferential(1234, 450, false, false, false);
    EXPECT_EQ(ref.ctrl->stats().fastPathCommands, 0u);
    EXPECT_GT(ref.ctrl->stats().fallbackCommands, 400u);
}

TEST_F(ControllerFastPathTest, LightWorkloadTakesFastPath)
{
    // Light profile: bursts drain before the next one arrives, so
    // most commands find an idle device and dispatch as one event.
    runDifferential(1234, 450, false, false, false,
                    /*with_spans=*/false, /*light=*/true);
    EXPECT_GT(fast.ctrl->stats().fastPathCommands, 50u);
    EXPECT_EQ(ref.ctrl->stats().fastPathCommands, 0u);
    EXPECT_GT(ref.ctrl->stats().fallbackCommands, 400u);
}

TEST_F(ControllerFastPathTest, AdminCommandsReplayTickIdentical)
{
    // Formats and log pages are always chained; a format's 500 ms
    // stall also parks the whole script behind the pipeline, so this
    // is purely an exactness check (no count assertions).
    runDifferential(1234, 450, true, false, false);
    EXPECT_GT(fast.ctrl->stats().fallbackCommands, 0u);
}

TEST_F(ControllerFastPathTest, FaultHooksDemoteAndStayExact)
{
    runDifferential(987, 450, false, true, false,
                    /*with_spans=*/false, /*light=*/true);
    // Limp windows and stalls force the chained model; between the
    // windows the light load fast-paths.
    EXPECT_GT(fast.ctrl->stats().fallbackCommands, 0u);
    EXPECT_GT(fast.ctrl->stats().fastPathCommands, 0u);
}

TEST_F(ControllerFastPathTest, MidRunToggleStaysExact)
{
    runDifferential(555, 420, false, true, true,
                    /*with_spans=*/false, /*light=*/true);
    EXPECT_GT(fast.ctrl->stats().fastPathCommands, 0u);
    EXPECT_GT(fast.ctrl->stats().fallbackCommands, 0u);
}

TEST_F(ControllerFastPathTest, MoreSeedsReplayTickIdentical)
{
    for (std::uint64_t seed : {7u, 42u, 20260808u}) {
        fast = Stack{};
        ref = Stack{};
        runDifferential(seed, 150, seed % 3 == 0, seed % 2 == 0,
                        false);
    }
}

TEST_F(ControllerFastPathTest, SpanValuesAndAttributionMatch)
{
    runDifferential(31337, 400, true, true, false,
                    /*with_spans=*/true);

    // Ring recording *order* may differ (fast reads record their
    // media/xfer spans at completion); values and attribution totals
    // may not.
    ASSERT_TRUE(fast.spans && ref.spans);
    EXPECT_EQ(fast.spans->recorded(), ref.spans->recorded());
    EXPECT_EQ(fast.spans->dropped(), ref.spans->dropped());
    afa::obs::Attribution fa = fast.spans->attribution();
    afa::obs::Attribution ra = ref.spans->attribution();
    for (std::size_t s = 0; s < afa::obs::kStageCount; ++s) {
        EXPECT_EQ(fa.stages[s].count, ra.stages[s].count)
            << "stage " << s;
        EXPECT_EQ(fa.stages[s].totalTicks, ra.stages[s].totalTicks)
            << "stage " << s;
        EXPECT_EQ(fa.stages[s].maxTicks, ra.stages[s].maxTicks)
            << "stage " << s;
    }
}

TEST_F(ControllerFastPathTest, OfflineWindowDropsIdentically)
{
    auto script = makeScript(99, 300, false, false, false);
    fast.build(true, false);
    ref.build(false, false);
    for (Stack *s : {&fast, &ref}) {
        s->sim->scheduleAt(usec(400),
                           [s] { s->ctrl->setOffline(true); });
        s->sim->scheduleAt(usec(900),
                           [s] { s->ctrl->setOffline(false); });
    }
    fast.replay(script);
    ref.replay(script);
    EXPECT_GT(fast.ctrl->stats().droppedCommands, 0u);
    expectSameObservables(fast, ref);
}

} // namespace
