/**
 * @file
 * Background-load tests: the CentOS 7 zoo spawns, runs bursts through
 * the fair class, respects isolcpus, and actually interferes with a
 * pinned I/O-style task when allowed to share its CPU.
 */

#include <gtest/gtest.h>

#include <memory>

#include "host/background.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace afa::host;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::sim::msec;
using afa::sim::sec;
using afa::sim::usec;

namespace {

class BackgroundTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    void
    build(KernelConfig cfg = {},
          BackgroundParams bp = BackgroundParams::centos7Defaults())
    {
        cfg.sched.rcuCallbackInterval = sec(10000);
        sim = std::make_unique<Simulator>(44);
        sched = std::make_unique<Scheduler>(*sim, "sched",
                                            CpuTopology{}, cfg);
        bg = std::make_unique<BackgroundLoad>(*sim, "bg", *sched, bp);
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<Scheduler> sched;
    std::unique_ptr<BackgroundLoad> bg;
};

TEST_F(BackgroundTest, Centos7MixSpawns)
{
    build();
    // 4 llvmpipe + 2 lttng + 2 sshd + 4 kworkers.
    EXPECT_EQ(bg->taskIds().size(), 12u);
}

TEST_F(BackgroundTest, BurstsExecute)
{
    build();
    sched->start();
    bg->start();
    sim->run(msec(500));
    EXPECT_GT(bg->bursts(), 50u);
    Tick total_cpu = 0;
    for (TaskId t : bg->taskIds())
        total_cpu += sched->taskStats(t).cpuTime;
    EXPECT_GT(total_cpu, msec(20));
}

TEST_F(BackgroundTest, NoneMeansSilence)
{
    build({}, BackgroundParams::none());
    sched->start();
    bg->start();
    sim->run(msec(200));
    EXPECT_EQ(bg->bursts(), 0u);
}

TEST_F(BackgroundTest, IsolcpusKeepsBackgroundOut)
{
    KernelConfig cfg;
    cfg.isolcpus = parseCpuList("4-19,24-39");
    build(cfg);
    sched->start();
    bg->start();
    sim->run(msec(500));
    EXPECT_GT(bg->bursts(), 10u);
    for (TaskId t : bg->taskIds()) {
        unsigned cpu = sched->taskCpu(t);
        EXPECT_EQ(cfg.isolcpus.count(cpu), 0u)
            << "background task on isolated cpu" << cpu;
    }
}

TEST_F(BackgroundTest, BackgroundLandsOnIoCpusWithoutIsolation)
{
    // Default kernel: background tasks spread everywhere, including
    // the CPUs an operator intended for I/O -- Section IV-C's finding.
    build();
    sched->start();
    bg->start();
    sim->run(sec(2));
    std::set<unsigned> used;
    for (TaskId t : bg->taskIds())
        used.insert(sched->taskCpu(t));
    // The zoo has wandered across several CPUs, not just one or two.
    EXPECT_GE(used.size(), 4u);
    bool beyond_reserved = false;
    for (unsigned cpu : used)
        if ((cpu >= 4 && cpu <= 19) || (cpu >= 24 && cpu <= 39))
            beyond_reserved = true;
    EXPECT_TRUE(beyond_reserved);
}

} // namespace
