/**
 * @file
 * IRQ subsystem tests: vector bookkeeping (2,560 handlers), default
 * driver spread, irqbalance misplacement, manual pinning, and the
 * delivery cost model.
 */

#include <gtest/gtest.h>

#include <memory>

#include "host/irq.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace afa::host;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::sim::msec;
using afa::sim::sec;
using afa::sim::usec;

namespace {

class IrqTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    void
    build(unsigned devices, KernelConfig cfg = {})
    {
        cfg.sched.rcuCallbackInterval = sec(10000);
        sim = std::make_unique<Simulator>(33);
        sched = std::make_unique<Scheduler>(*sim, "sched",
                                            CpuTopology{}, cfg);
        irq = std::make_unique<IrqSubsystem>(*sim, "irq", *sched,
                                             devices);
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<Scheduler> sched;
    std::unique_ptr<IrqSubsystem> irq;
};

TEST_F(IrqTest, PaperVectorCount)
{
    build(64);
    // 64 SSDs x 40 logical CPUs = 2,560 IRQ handlers (Section III-C).
    EXPECT_EQ(irq->vectors(), 2560u);
}

TEST_F(IrqTest, DriverDefaultSpreadMapsQueueToCpu)
{
    build(4);
    for (unsigned d = 0; d < 4; ++d)
        for (unsigned q = 0; q < 40; ++q)
            EXPECT_EQ(irq->effectiveCpu(d, q), q);
}

TEST_F(IrqTest, RaiseRunsHandlerOnAffinityCpu)
{
    build(2);
    unsigned handler_cpu = 99;
    Tick when = 0;
    irq->raise(0, 4, [&](unsigned cpu) {
        handler_cpu = cpu;
        when = sim->now();
    });
    sim->run();
    EXPECT_EQ(handler_cpu, 4u);
    const auto &cfg = sched->config().irq;
    // cpu4 is on socket 0; the AFA uplink is socket 1: pays crossing.
    EXPECT_EQ(when, cfg.hardirqCost + cfg.softirqCost +
                        cfg.crossSocketPenalty);
    EXPECT_EQ(irq->vectorCount(0, 4), 1u);
    EXPECT_EQ(irq->stats().delivered, 1u);
    EXPECT_EQ(irq->stats().crossSocket, 1u);
}

TEST_F(IrqTest, UplinkSocketDeliveryHasNoCrossing)
{
    build(2);
    Tick when = 0;
    irq->raise(0, 14, [&](unsigned) { when = sim->now(); });
    sim->run();
    const auto &cfg = sched->config().irq;
    EXPECT_EQ(when, cfg.hardirqCost + cfg.softirqCost);
    EXPECT_EQ(irq->stats().crossSocket, 0u);
}

TEST_F(IrqTest, ManualAffinityMoves)
{
    build(2);
    irq->setAffinity(1, 4, 30);
    EXPECT_EQ(irq->effectiveCpu(1, 4), 30u);
    unsigned handler_cpu = 99;
    irq->raise(1, 4, [&](unsigned cpu) { handler_cpu = cpu; });
    sim->run();
    EXPECT_EQ(handler_cpu, 30u);
    EXPECT_EQ(irq->stats().remoteDeliveries, 1u);
}

TEST_F(IrqTest, BalancerMovesBusyVectorsWithinUplinkSocket)
{
    build(4);
    irq->start();
    // Make vector (0, 4) busy across balancer scans.
    for (int i = 0; i < 50; ++i)
        sim->scheduleAt(msec(i * 10), [&] {
            irq->raise(0, 4, [](unsigned) {});
        });
    sim->run(sec(21));
    EXPECT_GT(irq->stats().rebalances, 1u);
    EXPECT_GT(irq->stats().vectorMoves, 0u);
    // The moved handler lives on the uplink socket (cpu 10-19/30-39),
    // not on the submitting cpu4 -- the paper's LTTng observation.
    unsigned cpu = irq->effectiveCpu(0, 4);
    EXPECT_NE(cpu, 4u);
    EXPECT_EQ(sched->topology().socketOf(cpu), 1u);
}

TEST_F(IrqTest, BalancerIgnoresIdleVectors)
{
    build(4);
    irq->start();
    sim->run(sec(25));
    // No traffic: every vector keeps the driver-default mapping.
    for (unsigned d = 0; d < 4; ++d)
        for (unsigned q = 0; q < 40; ++q)
            EXPECT_EQ(irq->effectiveCpu(d, q), q);
    EXPECT_EQ(irq->stats().vectorMoves, 0u);
}

TEST_F(IrqTest, PinAllDefeatsBalancer)
{
    build(4);
    irq->pinAllToQueueCpus();
    irq->start();
    for (int i = 0; i < 50; ++i)
        sim->scheduleAt(msec(i * 10), [&] {
            irq->raise(0, 4, [](unsigned) {});
        });
    sim->run(sec(21));
    EXPECT_EQ(irq->effectiveCpu(0, 4), 4u);
    EXPECT_EQ(irq->stats().vectorMoves, 0u);
    EXPECT_EQ(irq->stats().remoteDeliveries, 0u);
}

TEST_F(IrqTest, DisabledBalancerNeverScans)
{
    KernelConfig cfg;
    cfg.irq.irqBalanceEnabled = false;
    build(4, cfg);
    irq->start();
    sim->run(sec(25));
    EXPECT_EQ(irq->stats().rebalances, 0u);
}

TEST_F(IrqTest, BadVectorPanics)
{
    build(2);
    EXPECT_THROW(irq->raise(2, 0, [](unsigned) {}),
                 afa::sim::SimError);
    EXPECT_THROW(irq->raise(0, 40, [](unsigned) {}),
                 afa::sim::SimError);
    EXPECT_THROW(irq->setAffinity(0, 0, 41), afa::sim::SimError);
}

TEST_F(IrqTest, RemoteDeliveryCounted)
{
    build(2);
    irq->setAffinity(0, 4, 30);
    irq->raise(0, 4, [](unsigned) {});
    irq->raise(0, 14, [](unsigned) {});
    sim->run();
    EXPECT_EQ(irq->stats().remoteDeliveries, 1u);
}

} // namespace
