/**
 * @file
 * Kernel config tests: cpu-list parsing/formatting and the paper's
 * boot command line round trip.
 */

#include <gtest/gtest.h>

#include "host/kernel_config.hh"
#include "host/scheduler.hh"
#include "sim/logging.hh"

using namespace afa::host;

namespace {

TEST(CpuListTest, ParseSingle)
{
    auto s = parseCpuList("5");
    EXPECT_EQ(s, (CpuSet{5}));
}

TEST(CpuListTest, ParseRange)
{
    auto s = parseCpuList("4-7");
    EXPECT_EQ(s, (CpuSet{4, 5, 6, 7}));
}

TEST(CpuListTest, ParseMixed)
{
    auto s = parseCpuList("0,4-6,9");
    EXPECT_EQ(s, (CpuSet{0, 4, 5, 6, 9}));
}

TEST(CpuListTest, ParsePaperIsolcpusList)
{
    auto s = parseCpuList("4-19,24-39");
    EXPECT_EQ(s.size(), 32u);
    EXPECT_TRUE(s.count(4));
    EXPECT_TRUE(s.count(19));
    EXPECT_FALSE(s.count(20));
    EXPECT_TRUE(s.count(24));
    EXPECT_TRUE(s.count(39));
}

TEST(CpuListTest, FormatRoundTrip)
{
    EXPECT_EQ(formatCpuList(parseCpuList("4-19,24-39")), "4-19,24-39");
    EXPECT_EQ(formatCpuList(parseCpuList("1")), "1");
    EXPECT_EQ(formatCpuList(parseCpuList("1,3,5")), "1,3,5");
    EXPECT_EQ(formatCpuList(CpuSet{}), "");
}

TEST(CpuListTest, BadInputIsFatal)
{
    afa::sim::setThrowOnError(true);
    EXPECT_THROW(parseCpuList("7-3"), afa::sim::SimError);
    EXPECT_THROW(parseCpuList("abc"), afa::sim::SimError);
    afa::sim::setThrowOnError(false);
}

TEST(KernelConfigTest, DefaultBootLineIsEmpty)
{
    KernelConfig cfg;
    EXPECT_EQ(cfg.bootCommandLine(), "");
}

TEST(KernelConfigTest, PaperBootLine)
{
    // The exact Section IV-C configuration.
    KernelConfig cfg;
    cfg.isolcpus = parseCpuList("4-19,24-39");
    cfg.nohzFull = cfg.isolcpus;
    cfg.rcuNocbs = cfg.isolcpus;
    cfg.cstate.maxCstate = 1;
    cfg.cstate.idlePoll = true;
    EXPECT_EQ(cfg.bootCommandLine(),
              "isolcpus=4-19,24-39 nohz_full=4-19,24-39 "
              "rcu_nocbs=4-19,24-39 processor.max_cstate=1 idle=poll");
}

TEST(KernelConfigTest, BootLineRoundTrip)
{
    std::string line =
        "isolcpus=4-19,24-39 nohz_full=4-19,24-39 "
        "rcu_nocbs=4-19,24-39 processor.max_cstate=1 idle=poll";
    KernelConfig cfg = KernelConfig::fromBootCommandLine(line);
    EXPECT_EQ(cfg.isolcpus.size(), 32u);
    EXPECT_EQ(cfg.nohzFull.size(), 32u);
    EXPECT_EQ(cfg.rcuNocbs.size(), 32u);
    EXPECT_EQ(cfg.cstate.maxCstate, 1u);
    EXPECT_TRUE(cfg.cstate.idlePoll);
    EXPECT_EQ(cfg.bootCommandLine(), line);
}

TEST(KernelConfigTest, UnknownOptionsIgnored)
{
    KernelConfig cfg =
        KernelConfig::fromBootCommandLine("quiet splash isolcpus=1-2");
    EXPECT_EQ(cfg.isolcpus.size(), 2u);
}

TEST(MaskTest, MaskFromSet)
{
    CpuMask m = maskFromSet(CpuSet{0, 3, 63});
    EXPECT_EQ(m, (CpuMask(1) << 0) | (CpuMask(1) << 3) |
                  (CpuMask(1) << 63));
    EXPECT_EQ(maskFromSet(CpuSet{}), 0u);
}

TEST(MaskTest, MaskBeyond64IsFatal)
{
    afa::sim::setThrowOnError(true);
    EXPECT_THROW(maskFromSet(CpuSet{64}), afa::sim::SimError);
    afa::sim::setThrowOnError(false);
}

} // namespace
