/**
 * @file
 * CPU topology tests against the paper's dual Xeon E5-2690 v2 layout.
 */

#include <gtest/gtest.h>

#include "host/cpu_topology.hh"
#include "sim/logging.hh"

using afa::host::CpuTopology;
using afa::host::CpuTopologyParams;

namespace {

TEST(CpuTopologyTest, PaperHostShape)
{
    CpuTopology topo;
    EXPECT_EQ(topo.logicalCpus(), 40u);
    EXPECT_EQ(topo.physicalCores(), 20u);
    EXPECT_EQ(topo.describe(), "2 x 10c/20t");
}

TEST(CpuTopologyTest, LinuxNumbering)
{
    // cpu0-19 are the physical cores, cpu20-39 their HT siblings.
    CpuTopology topo;
    EXPECT_EQ(topo.physicalCoreOf(0), 0u);
    EXPECT_EQ(topo.physicalCoreOf(19), 19u);
    EXPECT_EQ(topo.physicalCoreOf(20), 0u);
    EXPECT_EQ(topo.physicalCoreOf(39), 19u);
    EXPECT_EQ(topo.threadOf(4), 0u);
    EXPECT_EQ(topo.threadOf(24), 1u);
}

TEST(CpuTopologyTest, Sockets)
{
    CpuTopology topo;
    EXPECT_EQ(topo.socketOf(0), 0u);
    EXPECT_EQ(topo.socketOf(9), 0u);
    EXPECT_EQ(topo.socketOf(10), 1u);
    EXPECT_EQ(topo.socketOf(19), 1u);
    EXPECT_EQ(topo.socketOf(29), 0u); // sibling of cpu9
    EXPECT_EQ(topo.socketOf(30), 1u); // sibling of cpu10
    EXPECT_TRUE(topo.sameSocket(4, 24));
    EXPECT_FALSE(topo.sameSocket(4, 14));
}

TEST(CpuTopologyTest, Siblings)
{
    CpuTopology topo;
    auto sib = topo.siblingsOf(4);
    ASSERT_EQ(sib.size(), 1u);
    EXPECT_EQ(sib[0], 24u);
    auto sib2 = topo.siblingsOf(24);
    ASSERT_EQ(sib2.size(), 1u);
    EXPECT_EQ(sib2[0], 4u);
}

TEST(CpuTopologyTest, LogicalCpuInverse)
{
    CpuTopology topo;
    for (unsigned cpu = 0; cpu < topo.logicalCpus(); ++cpu)
        EXPECT_EQ(topo.logicalCpu(topo.physicalCoreOf(cpu),
                                  topo.threadOf(cpu)),
                  cpu);
}

TEST(CpuTopologyTest, SocketCpuLists)
{
    CpuTopology topo;
    auto s1 = topo.cpusOnSocket(1);
    ASSERT_EQ(s1.size(), 20u);
    EXPECT_EQ(s1.front(), 10u);
    EXPECT_EQ(s1.back(), 39u);
    EXPECT_EQ(topo.uplinkSocket(), 1u);
}

TEST(CpuTopologyTest, CustomShape)
{
    CpuTopologyParams p;
    p.sockets = 1;
    p.coresPerSocket = 4;
    p.threadsPerCore = 1;
    p.uplinkSocket = 0;
    CpuTopology topo(p);
    EXPECT_EQ(topo.logicalCpus(), 4u);
    EXPECT_TRUE(topo.siblingsOf(0).empty());
}

TEST(CpuTopologyTest, InvalidShapesFatal)
{
    afa::sim::setThrowOnError(true);
    CpuTopologyParams p;
    p.sockets = 0;
    EXPECT_THROW(CpuTopology topo(p), afa::sim::SimError);
    CpuTopologyParams q;
    q.uplinkSocket = 5;
    EXPECT_THROW(CpuTopology topo(q), afa::sim::SimError);
    afa::sim::setThrowOnError(false);
}

} // namespace
