/**
 * @file
 * Scheduler tests: execution/accounting, CFS fairness and wakeup
 * granularity (the paper's core pathology), RT preemption, isolcpus,
 * load balancing, ticks/nohz_full, c-states, HT sharing, interrupts.
 */

#include <gtest/gtest.h>

#include <memory>

#include "host/scheduler.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace afa::host;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::sim::msec;
using afa::sim::sec;
using afa::sim::usec;

namespace {

CpuMask
cpuBit(unsigned cpu)
{
    return CpuMask(1) << cpu;
}

class SchedulerTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    /** Small deterministic host: 1 socket x N cores, no HT. */
    void
    build(unsigned cores, KernelConfig cfg = {}, unsigned threads = 1)
    {
        CpuTopologyParams tp;
        tp.sockets = 1;
        tp.coresPerSocket = cores;
        tp.threadsPerCore = threads;
        tp.uplinkSocket = 0;
        // Quiet RCU unless a test wants it.
        cfg.sched.rcuCallbackInterval = sec(10000);
        sim = std::make_unique<Simulator>(21);
        sched = std::make_unique<Scheduler>(*sim, "sched",
                                            CpuTopology(tp), cfg);
    }

    TaskId
    spawn(const std::string &name, CpuMask affinity = kAllCpus,
          SchedClass klass = SchedClass::Fair, int prio = 0)
    {
        TaskParams p;
        p.name = name;
        p.affinity = affinity;
        p.klass = klass;
        if (klass == SchedClass::RealTime)
            p.rtPriority = prio;
        else
            p.nice = prio;
        return sched->createTask(p);
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<Scheduler> sched;
};

TEST_F(SchedulerTest, SingleTaskRunsItsWork)
{
    build(1);
    TaskId t = spawn("t");
    Tick done = 0;
    sched->runFor(t, usec(100), [&] { done = sim->now(); });
    sim->run();
    // Work + one context switch, nothing else on an idle host.
    EXPECT_EQ(done,
              usec(100) + sched->config().sched.contextSwitchCost);
    EXPECT_EQ(sched->taskStats(t).cpuTime, usec(100));
    EXPECT_EQ(sched->taskState(t), TaskState::Blocked);
}

TEST_F(SchedulerTest, SequentialSegmentsAccumulate)
{
    build(1);
    TaskId t = spawn("t");
    int finished = 0;
    std::function<void()> chain = [&] {
        if (++finished < 5)
            sched->runFor(t, usec(10), chain);
    };
    sched->runFor(t, usec(10), chain);
    sim->run();
    EXPECT_EQ(finished, 5);
    EXPECT_EQ(sched->taskStats(t).cpuTime, usec(50));
    EXPECT_EQ(sched->taskStats(t).segments, 5u);
}

TEST_F(SchedulerTest, RunForOnRunningTaskPanics)
{
    build(1);
    TaskId t = spawn("t");
    sched->runFor(t, usec(100), [] {});
    EXPECT_THROW(sched->runFor(t, usec(1), [] {}),
                 afa::sim::SimError);
}

TEST_F(SchedulerTest, ZeroWorkPanics)
{
    build(1);
    TaskId t = spawn("t");
    EXPECT_THROW(sched->runFor(t, 0, [] {}), afa::sim::SimError);
}

TEST_F(SchedulerTest, TwoFairHogsShareACpu)
{
    build(1);
    sched->start();
    TaskId a = spawn("a", cpuBit(0));
    TaskId b = spawn("b", cpuBit(0));
    Tick done_a = 0, done_b = 0;
    sched->runFor(a, msec(20), [&] { done_a = sim->now(); });
    sched->runFor(b, msec(20), [&] { done_b = sim->now(); });
    sim->run(msec(100));
    ASSERT_GT(done_a, 0u);
    ASSERT_GT(done_b, 0u);
    // Interleaved fairly: both finish near 40 ms, within a slice or
    // two of each other.
    Tick diff = done_a > done_b ? done_a - done_b : done_b - done_a;
    EXPECT_LT(diff, msec(8));
    EXPECT_GT(std::max(done_a, done_b), msec(38));
}

TEST_F(SchedulerTest, NiceWeightsShiftShares)
{
    build(1);
    sched->start();
    TaskId fast = spawn("fast", cpuBit(0), SchedClass::Fair, -5);
    TaskId slow = spawn("slow", cpuBit(0), SchedClass::Fair, 5);
    Tick done_fast = 0, done_slow = 0;
    sched->runFor(fast, msec(20), [&] { done_fast = sim->now(); });
    sched->runFor(slow, msec(20), [&] { done_slow = sim->now(); });
    sim->run(msec(200));
    ASSERT_GT(done_fast, 0u);
    ASSERT_GT(done_slow, 0u);
    EXPECT_LT(done_fast, done_slow);
}

TEST_F(SchedulerTest, RealTimePreemptsFairImmediately)
{
    build(1);
    TaskId hog = spawn("hog", cpuBit(0));
    TaskId rt = spawn("rt", cpuBit(0), SchedClass::RealTime, 99);
    sched->runFor(hog, msec(50), [] {});
    sim->run(msec(1)); // hog is mid-burst
    Tick woke = sim->now();
    Tick done = 0;
    sched->runFor(rt, usec(5), [&] { done = sim->now(); });
    sim->run(msec(2));
    ASSERT_GT(done, 0u);
    // Preempted instantly: only switch + pollution + work.
    EXPECT_LT(done - woke, usec(15));
    EXPECT_GT(sched->taskStats(hog).preemptions, 0u);
}

TEST_F(SchedulerTest, HigherRtPriorityWins)
{
    build(1);
    TaskId lo = spawn("rt-lo", cpuBit(0), SchedClass::RealTime, 10);
    TaskId hi = spawn("rt-hi", cpuBit(0), SchedClass::RealTime, 90);
    sched->runFor(lo, msec(5), [] {});
    sim->run(usec(100));
    Tick done_hi = 0;
    sched->runFor(hi, usec(10), [&] { done_hi = sim->now(); });
    sim->run(msec(1));
    EXPECT_GT(done_hi, 0u);
    EXPECT_LT(done_hi - usec(100), usec(20));
}

TEST_F(SchedulerTest, RtDoesNotPreemptHigherRt)
{
    build(1);
    TaskId hi = spawn("rt-hi", cpuBit(0), SchedClass::RealTime, 90);
    TaskId lo = spawn("rt-lo", cpuBit(0), SchedClass::RealTime, 10);
    Tick done_hi = 0, done_lo = 0;
    sched->runFor(hi, msec(1), [&] { done_hi = sim->now(); });
    sim->run(usec(10));
    sched->runFor(lo, usec(10), [&] { done_lo = sim->now(); });
    sim->run(msec(5));
    EXPECT_GT(done_lo, done_hi); // FIFO: lo waits for hi
}

TEST_F(SchedulerTest, WakeupGranularityDelaysIoTaskBehindFreshHog)
{
    // The paper's central default-config pathology: a CPU hog whose
    // vruntime is still close to the I/O task's blocks wakeup
    // preemption; the I/O task waits for the tick/slice machinery.
    build(1);
    sched->start();
    TaskId hog = spawn("hog", cpuBit(0));
    TaskId io = spawn("io", cpuBit(0));
    sched->runFor(hog, sec(1), [] {});
    sim->run(usec(50)); // hog fresh: tiny vruntime lead
    Tick woke = sim->now();
    Tick done = 0;
    sched->runFor(io, usec(3), [&] { done = sim->now(); });
    sim->run(msec(20));
    ASSERT_GT(done, 0u);
    Tick delay = done - woke;
    // Must NOT have preempted instantly; the wait is slice-scale
    // (milliseconds), the Fig. 6 tail.
    EXPECT_GT(delay, msec(1));
    EXPECT_LT(delay, msec(10));
    EXPECT_GT(sched->taskStats(io).worstWait, msec(1));
}

TEST_F(SchedulerTest, MatureHogIsPreemptedInstantly)
{
    // Once the hog's vruntime leads by more than the granularity, a
    // woken I/O task preempts immediately -- the steady state.
    build(1);
    sched->start();
    TaskId hog = spawn("hog", cpuBit(0));
    TaskId io = spawn("io", cpuBit(0));
    sched->runFor(hog, sec(1), [] {});
    // Let the hog accumulate several ms of vruntime, much more than
    // the 1 ms wakeup granularity.
    sim->run(msec(10));
    Tick woke = sim->now();
    Tick done = 0;
    sched->runFor(io, usec(3), [&] { done = sim->now(); });
    sim->run(msec(15));
    ASSERT_GT(done, 0u);
    EXPECT_LT(done - woke, usec(20));
}

TEST_F(SchedulerTest, PlacementAvoidsIsolatedCpus)
{
    KernelConfig cfg;
    cfg.isolcpus = CpuSet{1};
    build(2, cfg);
    sched->start();
    // Both generic tasks must crowd onto cpu0 even though cpu1 idles.
    TaskId a = spawn("a");
    TaskId b = spawn("b");
    sched->runFor(a, msec(5), [] {});
    sched->runFor(b, msec(5), [] {});
    sim->run(usec(100));
    EXPECT_EQ(sched->taskCpu(a), 0u);
    EXPECT_EQ(sched->taskCpu(b), 0u);
    EXPECT_TRUE(sched->cpuIdle(1));
}

TEST_F(SchedulerTest, ExplicitAffinityReachesIsolatedCpu)
{
    KernelConfig cfg;
    cfg.isolcpus = CpuSet{1};
    build(2, cfg);
    sched->start();
    TaskId pinned = spawn("pinned", cpuBit(1));
    Tick done = 0;
    sched->runFor(pinned, usec(50), [&] { done = sim->now(); });
    sim->run(msec(1));
    EXPECT_GT(done, 0u);
    EXPECT_EQ(sched->taskCpu(pinned), 1u);
}

TEST_F(SchedulerTest, IdleBalancePullsQueuedTask)
{
    build(2);
    sched->start();
    TaskId long1 = spawn("long1");
    TaskId short1 = spawn("short1");
    TaskId long2 = spawn("long2");
    sched->runFor(long1, msec(50), [] {});
    sched->runFor(short1, msec(1), [] {});
    // long2 queues behind one of the running tasks...
    sched->runFor(long2, msec(50), [] {});
    // ...when short1 finishes, its CPU idle-balances and steals long2.
    sim->run(msec(10));
    EXPECT_GT(sched->taskStats(long2).migrations +
                  sched->cpuStats(0).pulls + sched->cpuStats(1).pulls,
              0u);
    // Both CPUs are busy now.
    EXPECT_FALSE(sched->cpuIdle(0));
    EXPECT_FALSE(sched->cpuIdle(1));
}

TEST_F(SchedulerTest, IsolatedCpuNeverPulls)
{
    KernelConfig cfg;
    cfg.isolcpus = CpuSet{1};
    build(2, cfg);
    sched->start();
    // Three hogs on cpu0; isolated cpu1 must not steal any.
    for (int i = 0; i < 3; ++i) {
        TaskId t = spawn(afa::sim::strfmt("hog%d", i));
        sched->runFor(t, msec(20), [] {});
    }
    sim->run(msec(10));
    EXPECT_TRUE(sched->cpuIdle(1));
    EXPECT_EQ(sched->cpuStats(1).pulls, 0u);
}

TEST_F(SchedulerTest, TickCountsRespectNohzFull)
{
    KernelConfig cfg;
    cfg.nohzFull = CpuSet{1};
    build(2, cfg);
    sched->start();
    TaskId a = spawn("a", cpuBit(0));
    TaskId b = spawn("b", cpuBit(1));
    sched->runFor(a, sec(1), [] {});
    sched->runFor(b, sec(1), [] {});
    sim->run(sec(1));
    // cpu0 ticks at 1000 Hz, cpu1 at ~1 Hz.
    EXPECT_GT(sched->cpuStats(0).ticks, 900u);
    EXPECT_LT(sched->cpuStats(1).ticks, 20u);
}

TEST_F(SchedulerTest, InterruptStealsCpuFromRunningTask)
{
    build(1);
    TaskId t = spawn("t");
    Tick done = 0;
    sched->runFor(t, usec(100), [&] { done = sim->now(); });
    sim->run(usec(20));
    bool handled = false;
    sched->interrupt(0, usec(30), [&] { handled = true; });
    sim->run();
    EXPECT_TRUE(handled);
    // Completion pushed out by the 30 us the irq stole.
    EXPECT_GE(done,
              usec(130) + sched->config().sched.contextSwitchCost);
    EXPECT_EQ(sched->cpuStats(0).interrupts, 1u);
}

TEST_F(SchedulerTest, InterruptOnIdleCpuPaysC1Exit)
{
    build(1);
    // Run a task so the cpu enters idle through the governor.
    TaskId t = spawn("t");
    sched->runFor(t, usec(10), [] {});
    sim->run();
    Tick begin = sim->now();
    Tick handled_at = 0;
    sched->interrupt(0, usec(1), [&] { handled_at = sim->now(); });
    sim->run();
    EXPECT_EQ(handled_at - begin,
              usec(1) + sched->config().cstate.c1ExitLatency);
    EXPECT_GT(sched->cpuStats(0).cstateWakes, 0u);
}

TEST_F(SchedulerTest, LongIdlePredictsC6)
{
    build(1);
    TaskId t = spawn("t");
    // First idle period: 1 ms (recorded by the governor).
    sched->runFor(t, usec(10), [] {});
    sim->run();
    sim->scheduleAfter(msec(1), [&] {
        sched->runFor(t, usec(10), [] {});
    });
    sim->run();
    // Second idle: predicted long, C6 chosen; interrupt pays 40 us.
    Tick begin = sim->now();
    Tick handled_at = 0;
    sched->interrupt(0, usec(1), [&] { handled_at = sim->now(); });
    sim->run();
    EXPECT_EQ(handled_at - begin,
              usec(1) + sched->config().cstate.c6ExitLatency);
}

TEST_F(SchedulerTest, IdlePollEliminatesExitLatency)
{
    KernelConfig cfg;
    cfg.cstate.idlePoll = true;
    build(1, cfg);
    TaskId t = spawn("t");
    sched->runFor(t, usec(10), [] {});
    sim->run();
    Tick begin = sim->now();
    Tick handled_at = 0;
    sched->interrupt(0, usec(1), [&] { handled_at = sim->now(); });
    sim->run();
    EXPECT_EQ(handled_at - begin, usec(1));
}

TEST_F(SchedulerTest, MaxCstate1CapsExitLatency)
{
    KernelConfig cfg;
    cfg.cstate.maxCstate = 1;
    build(1, cfg);
    TaskId t = spawn("t");
    sched->runFor(t, usec(10), [] {});
    sim->run();
    sim->scheduleAfter(msec(1), [] {}); // long idle
    sim->run();
    Tick begin = sim->now();
    Tick handled_at = 0;
    sched->interrupt(0, usec(1), [&] { handled_at = sim->now(); });
    sim->run();
    EXPECT_EQ(handled_at - begin,
              usec(1) + sched->config().cstate.c1ExitLatency);
}

TEST_F(SchedulerTest, HyperThreadSiblingSlowsExecution)
{
    build(1, {}, 2); // one physical core, two logical
    TaskId a = spawn("a", cpuBit(0));
    TaskId b = spawn("b", cpuBit(1));
    Tick done_a = 0, done_b = 0;
    sched->runFor(a, msec(1), [&] { done_a = sim->now(); });
    sched->runFor(b, msec(1), [&] { done_b = sim->now(); });
    sim->run();
    // b started while a was running: pays the HT slowdown.
    EXPECT_GT(done_b, done_a);
    double ratio = static_cast<double>(done_b) /
        static_cast<double>(done_a);
    EXPECT_GT(ratio, 1.2);
}

TEST_F(SchedulerTest, CachePollutionChargedOnCrossSwitch)
{
    build(1);
    sched->start();
    TaskId a = spawn("a", cpuBit(0));
    TaskId b = spawn("b", cpuBit(0));
    Tick done_a = 0, done_b = 0;
    sched->runFor(a, msec(10), [&] { done_a = sim->now(); });
    sched->runFor(b, msec(10), [&] { done_b = sim->now(); });
    sim->run(msec(60));
    ASSERT_GT(done_a, 0u);
    ASSERT_GT(done_b, 0u);
    // a's wall time far exceeds its own work: it shared the CPU.
    EXPECT_GT(done_a, msec(14));
    // The pair takes strictly longer than the 20 ms of pure work:
    // context switches and cache pollution are real costs.
    EXPECT_GT(std::max(done_a, done_b), msec(20));
}

TEST_F(SchedulerTest, WaitTimeAccounted)
{
    build(1);
    TaskId a = spawn("a", cpuBit(0));
    TaskId b = spawn("b", cpuBit(0));
    sched->runFor(a, usec(100), [] {});
    sched->runFor(b, usec(10), [] {});
    sim->run();
    // b waited for a to finish (no ticks running -> no preemption).
    EXPECT_GE(sched->taskStats(b).waitTime, usec(90));
    EXPECT_GE(sched->taskStats(b).worstWait, usec(90));
}

TEST_F(SchedulerTest, EmptyAffinityIsFatal)
{
    build(1);
    TaskParams p;
    p.name = "bad";
    p.affinity = 0;
    EXPECT_THROW(sched->createTask(p), afa::sim::SimError);
}

TEST_F(SchedulerTest, ChrtChangesClass)
{
    build(1);
    TaskId t = spawn("t", cpuBit(0));
    sched->setRealTime(t, 99);
    TaskId hog = spawn("hog", cpuBit(0));
    sched->runFor(hog, msec(10), [] {});
    sim->run(usec(100));
    Tick done = 0;
    sched->runFor(t, usec(5), [&] { done = sim->now(); });
    sim->run(msec(1));
    EXPECT_GT(done, 0u);
    EXPECT_LT(done - usec(100), usec(15));
}

TEST_F(SchedulerTest, RcuNoiseInterruptsBusyCpu)
{
    KernelConfig cfg;
    build(1, cfg);
    sched->mutableConfig().sched.rcuCallbackInterval = msec(1);
    sched->start();
    TaskId t = spawn("t", cpuBit(0));
    sched->runFor(t, msec(50), [] {});
    sim->run(msec(50));
    EXPECT_GT(sched->cpuStats(0).interrupts, 10u);
}

TEST_F(SchedulerTest, RcuNocbsOffloadsToHousekeeping)
{
    KernelConfig cfg;
    cfg.isolcpus = CpuSet{1};
    cfg.rcuNocbs = CpuSet{1};
    build(2, cfg);
    sched->mutableConfig().sched.rcuCallbackInterval = msec(1);
    sched->start();
    TaskId t = spawn("t", cpuBit(1));
    sched->runFor(t, msec(50), [] {});
    sim->run(msec(50));
    // The isolated cpu's callbacks ran on cpu0 instead.
    EXPECT_GT(sched->cpuStats(0).interrupts, 10u);
    EXPECT_EQ(sched->cpuStats(1).interrupts, 0u);
}

} // namespace
