/**
 * @file
 * OpenLoopEngine and arrival-generator tests: Poisson/bursty gap
 * statistics, zipfian device skew, exact backlog/drop accounting at
 * and below saturation against a mock I/O engine, mixed-op request
 * streams, and same-seed determinism.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <vector>

#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "workload/openloop.hh"

using namespace afa::workload;
using afa::host::CpuTopology;
using afa::host::CpuTopologyParams;
using afa::host::KernelConfig;
using afa::host::Scheduler;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::sim::msec;
using afa::sim::sec;
using afa::sim::usec;

namespace {

/** Mean and coefficient of variation of a gap sample. */
struct GapStats
{
    double mean = 0.0;
    double cv = 0.0;
};

GapStats
drawGaps(const ArrivalParams &params, std::size_t n,
         std::uint64_t seed)
{
    // Tests may own an Rng directly; production arrival code must
    // not (the detlint arrival-rng rule covers src/ and bench/).
    afa::sim::Rng rng(seed);
    ArrivalProcess proc(params);
    double sum = 0.0, sumsq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double gap = static_cast<double>(proc.nextGap(rng));
        sum += gap;
        sumsq += gap * gap;
    }
    GapStats out;
    out.mean = sum / static_cast<double>(n);
    const double var =
        sumsq / static_cast<double>(n) - out.mean * out.mean;
    out.cv = std::sqrt(std::max(var, 0.0)) / out.mean;
    return out;
}

TEST(ArrivalProcessTest, PoissonGapsMatchRateWithUnitCv)
{
    ArrivalParams p;
    p.kind = ArrivalKind::Poisson;
    p.ratePerSec = 100000.0;
    const auto s = drawGaps(p, 200000, 42);
    // Mean gap = 1e9 / rate ns; exponential gaps have CV 1.
    EXPECT_NEAR(s.mean, 10000.0, 200.0);
    EXPECT_NEAR(s.cv, 1.0, 0.03);
}

TEST(ArrivalProcessTest, BurstyKeepsMeanRateWithHigherCv)
{
    ArrivalParams p;
    p.kind = ArrivalKind::Bursty;
    p.ratePerSec = 100000.0;
    p.burstFactor = 8.0;
    p.onMean = msec(1);
    const auto s = drawGaps(p, 200000, 42);
    // Duty cycling preserves the long-run rate but the on/off
    // modulation spreads the gap distribution well past exponential.
    EXPECT_NEAR(s.mean, 10000.0, 500.0);
    EXPECT_GT(s.cv, 1.3);
}

TEST(ArrivalProcessTest, BurstFactorOneDegeneratesToPoisson)
{
    ArrivalParams p;
    p.kind = ArrivalKind::Bursty;
    p.ratePerSec = 100000.0;
    p.burstFactor = 1.0;
    const auto s = drawGaps(p, 100000, 7);
    EXPECT_NEAR(s.mean, 10000.0, 300.0);
    EXPECT_NEAR(s.cv, 1.0, 0.05);
}

TEST(ZipfGeneratorTest, ThetaZeroIsUniform)
{
    afa::sim::Rng rng(99);
    ZipfGenerator zipf(16, 0.0);
    std::array<std::uint64_t, 16> counts{};
    for (int i = 0; i < 160000; ++i) {
        const std::uint64_t v = zipf.next(rng);
        ASSERT_LT(v, 16u);
        ++counts[v];
    }
    for (std::uint64_t c : counts) {
        EXPECT_GT(c, 8000u);
        EXPECT_LT(c, 12000u);
    }
}

TEST(ZipfGeneratorTest, HighThetaFavoursRankZero)
{
    afa::sim::Rng rng(99);
    ZipfGenerator zipf(16, 0.99);
    std::array<std::uint64_t, 16> counts{};
    for (int i = 0; i < 100000; ++i) {
        const std::uint64_t v = zipf.next(rng);
        ASSERT_LT(v, 16u);
        ++counts[v];
    }
    for (std::size_t r = 1; r < counts.size(); ++r)
        EXPECT_GT(counts[0], counts[r]) << "rank " << r;
    EXPECT_GT(counts[0], 5 * counts[15]);
}

/** A device that completes after a fixed latency on a fixed CPU. */
class MockEngine : public IoEngine
{
  public:
    MockEngine(Simulator &simulator, Tick latency,
               unsigned handler_cpu)
        : sim(simulator), deviceLatency(latency),
          handlerCpu(handler_cpu)
    {
    }

    void
    submit(unsigned cpu, const IoRequest &request,
           CompleteFn on_complete) override
    {
        (void)cpu;
        requests.push_back(request);
        sim.scheduleAfter(deviceLatency,
                          [this, fn = std::move(on_complete)] {
                              fn(IoResult{handlerCpu,
                                          afa::nvme::Status::Success});
                          });
    }

    std::uint64_t
    deviceBlocks(unsigned) const override
    {
        return 262144; // 1 GiB
    }

    Simulator &sim;
    Tick deviceLatency;
    unsigned handlerCpu;
    std::vector<IoRequest> requests;
};

class OpenLoopEngineTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    void
    build(Tick device_latency = usec(20), unsigned handler_cpu = 0,
          std::uint64_t seed = 7)
    {
        CpuTopologyParams tp;
        tp.sockets = 1;
        tp.coresPerSocket = 2;
        tp.threadsPerCore = 1;
        tp.uplinkSocket = 0;
        KernelConfig cfg;
        cfg.sched.rcuCallbackInterval = sec(10000);
        sim = std::make_unique<Simulator>(seed);
        sched = std::make_unique<Scheduler>(*sim, "sched",
                                            CpuTopology(tp), cfg);
        mock = std::make_unique<MockEngine>(*sim, device_latency,
                                            handler_cpu);
    }

    OpenLoopEngine &
    spawn(const OpenLoopParams &params, unsigned devices = 8)
    {
        engine = std::make_unique<OpenLoopEngine>(
            *sim, "ol0", *sched, *mock, devices, params);
        return *engine;
    }

    static OpenLoopParams
    baseParams()
    {
        OpenLoopParams p;
        p.arrival.ratePerSec = 50000.0;
        p.streams = 2;
        p.cpus = {0, 1};
        p.duration = msec(20);
        return p;
    }

    static void
    expectExactAccounting(const OpenLoopStreamStats &s)
    {
        EXPECT_EQ(s.arrivals,
                  s.submitted + s.dropped + s.finalBacklog);
        EXPECT_EQ(s.submitted, s.completed + s.inflightAtEnd);
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<Scheduler> sched;
    std::unique_ptr<MockEngine> mock;
    std::unique_ptr<OpenLoopEngine> engine;
};

TEST_F(OpenLoopEngineTest, AccountingExactAfterDrain)
{
    build(usec(20));
    auto &eng = spawn(baseParams());
    eng.start(0);
    sim->run(msec(200));

    EXPECT_TRUE(eng.finished());
    const auto totals = eng.totals();
    // 50k ops/s over 20 ms ~ 1000 arrivals.
    EXPECT_GT(totals.arrivals, 700u);
    EXPECT_LT(totals.arrivals, 1300u);
    EXPECT_EQ(totals.dropped, 0u);
    EXPECT_EQ(totals.inflightAtEnd, 0u);
    expectExactAccounting(totals);
    for (const auto &s : eng.streamStats())
        expectExactAccounting(s);
    // Successful completions all land in the response histogram.
    EXPECT_EQ(totals.errors, 0u);
    EXPECT_EQ(eng.histogram().count(), totals.completed);
}

TEST_F(OpenLoopEngineTest, SaturationShedsLoadWithExactCounts)
{
    build(usec(20));
    auto p = baseParams();
    // One stream whose submit path can only clear ~1/20 of the
    // offered rate: the backlog caps at maxBacklog and the rest of
    // the arrivals must be counted as drops, never lost.
    p.streams = 1;
    p.cpus = {0};
    p.arrival.ratePerSec = 100000.0;
    p.submitCost = usec(200);
    p.maxBacklog = 4;
    auto &eng = spawn(p);
    eng.start(0);
    sim->run(msec(400));

    EXPECT_TRUE(eng.finished());
    const auto totals = eng.totals();
    EXPECT_GT(totals.dropped, 0u);
    EXPECT_GT(totals.arrivals, totals.submitted);
    EXPECT_LE(totals.finalBacklog, 4u);
    EXPECT_EQ(totals.backlogPeak, 4u);
    EXPECT_EQ(totals.inflightAtEnd, 0u);
    expectExactAccounting(totals);
}

TEST_F(OpenLoopEngineTest, MixedOpsFollowReadFraction)
{
    build(usec(20));
    auto p = baseParams();
    p.readFraction = 0.7;
    auto &eng = spawn(p);
    eng.start(0);
    sim->run(msec(200));

    unsigned reads = 0, writes = 0;
    for (const auto &req : mock->requests) {
        if (req.op == afa::nvme::Op::Read)
            ++reads;
        else
            ++writes;
    }
    EXPECT_GT(reads, writes);
    EXPECT_GT(writes, 0u);
    const auto totals = eng.totals();
    EXPECT_EQ(totals.readBytes, reads * 4096ull);
    EXPECT_EQ(totals.writeBytes, writes * 4096ull);
}

TEST_F(OpenLoopEngineTest, ZipfSkewsDeviceSelection)
{
    build(usec(20));
    auto p = baseParams();
    p.zipfTheta = 0.9;
    auto &eng = spawn(p, 8);
    eng.start(0);
    sim->run(msec(200));

    std::array<unsigned, 8> perDevice{};
    for (const auto &req : mock->requests) {
        ASSERT_LT(req.device, 8u);
        ++perDevice[req.device];
    }
    // Rank 0 is the hot spot under theta 0.9.
    EXPECT_GT(perDevice[0], 2 * perDevice[7]);
    EXPECT_GT(eng.deviceHistogram(0).count(),
              eng.deviceHistogram(7).count());
    (void)eng;
}

TEST_F(OpenLoopEngineTest, SameSeedIsBitIdentical)
{
    const auto run = [this] {
        build(usec(20), 1, 20260808);
        auto p = baseParams();
        p.arrival.kind = ArrivalKind::Bursty;
        p.readFraction = 0.7;
        p.zipfTheta = 0.9;
        auto &eng = spawn(p);
        eng.start(0);
        sim->run(msec(200));
        return eng.result();
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.totals.arrivals, b.totals.arrivals);
    EXPECT_EQ(a.totals.submitted, b.totals.submitted);
    EXPECT_EQ(a.totals.completed, b.totals.completed);
    EXPECT_EQ(a.totals.readBytes, b.totals.readBytes);
    EXPECT_EQ(a.totals.writeBytes, b.totals.writeBytes);
    ASSERT_EQ(a.perStream.size(), b.perStream.size());
    for (std::size_t s = 0; s < a.perStream.size(); ++s) {
        EXPECT_EQ(a.perStream[s].arrivals, b.perStream[s].arrivals);
        EXPECT_EQ(a.perStream[s].completed,
                  b.perStream[s].completed);
    }
    EXPECT_EQ(a.responseHist.count(), b.responseHist.count());
    EXPECT_EQ(a.responseHist.min(), b.responseHist.min());
    EXPECT_EQ(a.responseHist.max(), b.responseHist.max());
    EXPECT_EQ(a.responseHist.quantile(0.99),
              b.responseHist.quantile(0.99));
}

TEST_F(OpenLoopEngineTest, ResultMergeAddsReplicas)
{
    build(usec(20));
    auto &eng = spawn(baseParams());
    eng.start(0);
    sim->run(msec(200));
    const auto one = eng.result();

    auto merged = one;
    merged.merge(one);
    EXPECT_EQ(merged.totals.arrivals, 2 * one.totals.arrivals);
    EXPECT_EQ(merged.totals.completed, 2 * one.totals.completed);
    EXPECT_EQ(merged.responseHist.count(),
              2 * one.responseHist.count());
    EXPECT_EQ(merged.measuredTicks, 2 * one.measuredTicks);
    // Rates are per merged second, so they stay comparable.
    EXPECT_NEAR(merged.offeredPerSec(), one.offeredPerSec(), 1e-9);
}

TEST_F(OpenLoopEngineTest, DoubleStartPanics)
{
    build();
    auto &eng = spawn(baseParams());
    eng.start(0);
    EXPECT_THROW(eng.start(0), afa::sim::SimError);
}

TEST_F(OpenLoopEngineTest, RejectsBrokenConfigs)
{
    build();
    auto noStreams = baseParams();
    noStreams.streams = 0;
    EXPECT_THROW(spawn(noStreams), afa::sim::SimError);

    auto noCpus = baseParams();
    noCpus.cpus.clear();
    EXPECT_THROW(spawn(noCpus), afa::sim::SimError);

    auto oddBlock = baseParams();
    oddBlock.blockSize = 1000;
    EXPECT_THROW(spawn(oddBlock), afa::sim::SimError);

    auto badMix = baseParams();
    badMix.readFraction = 1.5;
    EXPECT_THROW(spawn(badMix), afa::sim::SimError);
}

} // namespace
