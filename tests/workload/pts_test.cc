/**
 * @file
 * SNIA PTS-E steady-state tests: the detection arithmetic on crafted
 * series (parameterised), the slope fit, and the round runner end to
 * end against a mock engine.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "workload/pts.hh"

using namespace afa::workload;
using afa::sim::Simulator;
using afa::sim::msec;
using afa::sim::usec;

namespace {

TEST(SlopeTest, FlatSeriesHasZeroSlope)
{
    double flat[] = {5.0, 5.0, 5.0, 5.0};
    EXPECT_DOUBLE_EQ(bestFitSlope(flat, 4), 0.0);
}

TEST(SlopeTest, LinearSeriesRecovered)
{
    double line[] = {1.0, 3.0, 5.0, 7.0};
    EXPECT_NEAR(bestFitSlope(line, 4), 2.0, 1e-9);
}

TEST(SlopeTest, TooShortSeries)
{
    double one[] = {3.0};
    EXPECT_DOUBLE_EQ(bestFitSlope(one, 1), 0.0);
}

struct SeriesCase
{
    const char *name;
    std::vector<double> series;
    bool expectSteady;
    std::size_t expectAtRound; // when steady
};

class SteadyStateCases : public ::testing::TestWithParam<SeriesCase>
{
};

TEST_P(SteadyStateCases, Verdict)
{
    const auto &tc = GetParam();
    auto result = detectSteadyState(tc.series, SteadyStateParams{});
    EXPECT_EQ(result.steady, tc.expectSteady) << tc.name;
    if (tc.expectSteady) {
        EXPECT_EQ(result.steadyAtRound, tc.expectAtRound) << tc.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Series, SteadyStateCases,
    ::testing::Values(
        SeriesCase{"flat", {100, 100, 100, 100, 100}, true, 4},
        SeriesCase{"too_short", {100, 100, 100}, false, 0},
        SeriesCase{"small_noise",
                   {100, 103, 98, 101, 99}, true, 4},
        // 30% excursion breaks the 20% band.
        SeriesCase{"big_excursion",
                   {100, 130, 100, 100, 100}, false, 0},
        // Strong drift breaks the slope band even inside the band.
        SeriesCase{"drift",
                   {100, 105, 110, 115, 120}, false, 0},
        // Settles after a ramp: first qualifying window ends at 7.
        // The window {90,100,101,100,99} already qualifies: both
        // bands are generous enough once the ramp flattens.
        SeriesCase{"ramp_then_flat",
                   {50, 70, 90, 100, 101, 100, 99, 100}, true, 6},
        SeriesCase{"zeroes", {0, 0, 0, 0, 0}, false, 0}),
    [](const ::testing::TestParamInfo<SeriesCase> &info) {
        return info.param.name;
    });

TEST(SteadyStateTest, WindowParameterRespected)
{
    SteadyStateParams p;
    p.window = 3;
    auto r = detectSteadyState({100, 101, 99}, p);
    EXPECT_TRUE(r.steady);
    EXPECT_EQ(r.steadyAtRound, 2u);
}

TEST(SteadyStateTest, DegenerateWindowFatal)
{
    afa::sim::setThrowOnError(true);
    SteadyStateParams p;
    p.window = 1;
    EXPECT_THROW(detectSteadyState({1, 2}, p), afa::sim::SimError);
    afa::sim::setThrowOnError(false);
}

/** Mock engine with a latency that settles after a few rounds. */
class SettlingEngine : public IoEngine
{
  public:
    explicit SettlingEngine(Simulator &simulator) : sim(simulator) {}

    void
    submit(unsigned, const IoRequest &, CompleteFn fn) override
    {
        // Latency decays toward 20 us as the device "settles".
        afa::sim::Tick latency =
            usec(20) + usec(30) / (1 + completed / 500);
        ++completed;
        sim.scheduleAfter(latency,
                          [fn = std::move(fn)] { fn(IoResult{}); });
    }

    std::uint64_t deviceBlocks(unsigned) const override
    {
        return 262144;
    }

    Simulator &sim;
    std::uint64_t completed = 0;
};

TEST(PtsRunnerTest, RunsRoundsAndDetectsSteadyState)
{
    afa::sim::setThrowOnError(true);
    Simulator sim(31);
    afa::host::KernelConfig cfg;
    cfg.sched.rcuCallbackInterval = afa::sim::sec(10000);
    afa::host::Scheduler sched(sim, "sched",
                               afa::host::CpuTopology{}, cfg);
    SettlingEngine engine(sim);

    FioJob job = FioJob::parse(
        "rw=randread bs=4k iodepth=1 runtime=50ms");
    job.cpusAllowed = afa::host::CpuMask(1) << 4;
    PtsRunner runner(sim, "pts", sched, engine, 0, job, 10);
    runner.start();
    sim.run(afa::sim::sec(2));
    ASSERT_TRUE(runner.finished());
    ASSERT_EQ(runner.rounds().size(), 10u);

    // Early rounds are slower than late rounds (the settling).
    EXPECT_GT(runner.rounds().front().meanLatencyUs,
              runner.rounds().back().meanLatencyUs + 5.0);
    // IOPS correspondingly rise and reach steady state.
    auto iops = runner.iopsSteadyState();
    EXPECT_TRUE(iops.steady);
    EXPECT_GT(iops.windowAverage, 0.0);
    auto lat = runner.latencySteadyState();
    EXPECT_TRUE(lat.steady);
    afa::sim::setThrowOnError(false);
}

TEST(PtsRunnerTest, ZeroRoundsFatal)
{
    afa::sim::setThrowOnError(true);
    Simulator sim(1);
    afa::host::Scheduler sched(sim, "sched",
                               afa::host::CpuTopology{}, {});
    SettlingEngine engine(sim);
    FioJob job;
    EXPECT_THROW(PtsRunner(sim, "pts", sched, engine, 0, job, 0),
                 afa::sim::SimError);
    afa::sim::setThrowOnError(false);
}

} // namespace
