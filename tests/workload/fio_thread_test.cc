/**
 * @file
 * FioThread tests against a mock I/O engine: closed-loop behaviour,
 * latency accounting, queue depth, runtime stop, request patterns,
 * IPI cost for remote completions, and scatter logging.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "workload/fio_thread.hh"

using namespace afa::workload;
using afa::host::CpuMask;
using afa::host::CpuTopology;
using afa::host::CpuTopologyParams;
using afa::host::KernelConfig;
using afa::host::Scheduler;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::sim::msec;
using afa::sim::sec;
using afa::sim::usec;

namespace {

/** A device that completes after a fixed latency on a fixed CPU. */
class MockEngine : public IoEngine
{
  public:
    MockEngine(Simulator &simulator, Tick latency,
               unsigned handler_cpu)
        : sim(simulator), deviceLatency(latency),
          handlerCpu(handler_cpu)
    {
    }

    void
    submit(unsigned cpu, const IoRequest &request,
           CompleteFn on_complete) override
    {
        (void)cpu;
        requests.push_back(request);
        ++outstanding;
        maxOutstanding = std::max(maxOutstanding, outstanding);
        sim.scheduleAfter(deviceLatency,
                          [this, fn = std::move(on_complete)] {
                              --outstanding;
                              fn(IoResult{handlerCpu,
                                          afa::nvme::Status::Success});
                          });
    }

    std::uint64_t
    deviceBlocks(unsigned) const override
    {
        return 262144; // 1 GiB
    }

    Simulator &sim;
    Tick deviceLatency;
    unsigned handlerCpu;
    unsigned outstanding = 0;
    unsigned maxOutstanding = 0;
    std::vector<IoRequest> requests;
};

class FioThreadTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    void
    build(Tick device_latency = usec(20), unsigned handler_cpu = 0)
    {
        CpuTopologyParams tp;
        tp.sockets = 1;
        tp.coresPerSocket = 2;
        tp.threadsPerCore = 1;
        tp.uplinkSocket = 0;
        KernelConfig cfg;
        cfg.sched.rcuCallbackInterval = sec(10000);
        sim = std::make_unique<Simulator>(7);
        sched = std::make_unique<Scheduler>(*sim, "sched",
                                            CpuTopology(tp), cfg);
        engine = std::make_unique<MockEngine>(*sim, device_latency,
                                              handler_cpu);
    }

    FioThread &
    spawn(const std::string &jobspec)
    {
        FioJob job = FioJob::parse(jobspec);
        job.cpusAllowed = CpuMask(1) << 0;
        threads.push_back(std::make_unique<FioThread>(
            *sim, "fio0", *sched, *engine, 0, job));
        return *threads.back();
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<Scheduler> sched;
    std::unique_ptr<MockEngine> engine;
    std::vector<std::unique_ptr<FioThread>> threads;
};

TEST_F(FioThreadTest, ClosedLoopCompletesManyIos)
{
    build(usec(20));
    auto &t = spawn("rw=randread bs=4k iodepth=1 runtime=50ms");
    t.start(0);
    sim->run(msec(60));
    // Per IO: ~20 us device + submit/reap work + switches ~ 27 us.
    EXPECT_GT(t.stats().completed, 1500u);
    EXPECT_LT(t.stats().completed, 2600u);
    EXPECT_EQ(t.stats().completed, t.histogram().count());
    EXPECT_TRUE(t.finished());
}

TEST_F(FioThreadTest, LatencyIsDevicePlusHostPath)
{
    build(usec(20));
    auto &t = spawn("rw=randread bs=4k iodepth=1 runtime=10ms");
    t.start(0);
    sim->run(msec(20));
    double mean_us = t.histogram().mean() / afa::sim::kUsec;
    // 20 us device + reap work + context switch, no queueing.
    EXPECT_GT(mean_us, 21.0);
    EXPECT_LT(mean_us, 28.0);
    // Tight distribution: nothing else runs.
    EXPECT_LT(afa::sim::toUsec(t.histogram().max()), 35.0);
}

TEST_F(FioThreadTest, RemoteHandlerCpuPaysIpi)
{
    build(usec(20), 0);
    auto &local = spawn("rw=randread bs=4k iodepth=1 runtime=10ms");
    local.start(0);
    sim->run(msec(20));

    build(usec(20), 1); // handler on cpu1, thread pinned to cpu0
    auto &remote = spawn("rw=randread bs=4k iodepth=1 runtime=10ms");
    remote.start(0);
    sim->run(msec(20));

    double local_us = local.histogram().mean() / afa::sim::kUsec;
    double remote_us = remote.histogram().mean() / afa::sim::kUsec;
    EXPECT_GT(remote_us, local_us + 0.5);
}

TEST_F(FioThreadTest, QueueDepthIsRespected)
{
    build(usec(100));
    auto &t = spawn("rw=randread bs=4k iodepth=8 runtime=20ms");
    t.start(0);
    sim->run(msec(40));
    EXPECT_EQ(engine->maxOutstanding, 8u);
    EXPECT_TRUE(t.finished());
}

TEST_F(FioThreadTest, Qd1NeverOverlaps)
{
    build(usec(50));
    auto &t = spawn("rw=randread bs=4k iodepth=1 runtime=10ms");
    t.start(0);
    sim->run(msec(20));
    EXPECT_EQ(engine->maxOutstanding, 1u);
}

TEST_F(FioThreadTest, StopsSubmittingAtRuntime)
{
    build(usec(20));
    auto &t = spawn("rw=randread bs=4k iodepth=1 runtime=5ms");
    t.start(0);
    sim->run(msec(100));
    auto completed = t.stats().completed;
    sim->run(msec(200));
    EXPECT_EQ(t.stats().completed, completed);
    EXPECT_TRUE(t.finished());
}

TEST_F(FioThreadTest, StartDelayHonoured)
{
    build(usec(20));
    auto &t = spawn("rw=randread bs=4k iodepth=1 runtime=5ms");
    t.start(msec(10));
    sim->run(msec(5));
    EXPECT_EQ(t.stats().submitted, 0u);
    sim->run(msec(30));
    EXPECT_GT(t.stats().submitted, 0u);
}

TEST_F(FioThreadTest, SequentialLbasAdvance)
{
    build(usec(20));
    auto &t = spawn("rw=read bs=128k iodepth=1 runtime=2ms");
    t.start(0);
    sim->run(msec(10));
    ASSERT_GT(engine->requests.size(), 3u);
    for (std::size_t i = 1; i < engine->requests.size(); ++i)
        EXPECT_EQ(engine->requests[i].lba,
                  engine->requests[i - 1].lba + 32);
    (void)t;
}

TEST_F(FioThreadTest, RandomLbasStayInRange)
{
    build(usec(20));
    auto &t = spawn(
        "rw=randread bs=4k iodepth=1 runtime=5ms offset=4m size=8m");
    t.start(0);
    sim->run(msec(10));
    ASSERT_GT(engine->requests.size(), 10u);
    bool varied = false;
    for (const auto &req : engine->requests) {
        EXPECT_GE(req.lba, 1024u);
        EXPECT_LT(req.lba, 1024u + 2048u);
        if (req.lba != engine->requests[0].lba)
            varied = true;
    }
    EXPECT_TRUE(varied);
    (void)t;
}

TEST_F(FioThreadTest, MixedModeIssuesBothOps)
{
    build(usec(20));
    auto &t = spawn(
        "rw=randrw rwmixread=70 bs=4k iodepth=1 runtime=20ms");
    t.start(0);
    sim->run(msec(40));
    unsigned reads = 0, writes = 0;
    for (const auto &req : engine->requests) {
        if (req.op == afa::nvme::Op::Read)
            ++reads;
        else
            ++writes;
    }
    EXPECT_GT(reads, writes);
    EXPECT_GT(writes, 0u);
    EXPECT_EQ(t.stats().readBytes, reads * 4096u);
    EXPECT_EQ(t.stats().writeBytes, writes * 4096u);
}

TEST_F(FioThreadTest, ThinkTimeThrottles)
{
    build(usec(20));
    auto &fast = spawn("rw=randread bs=4k iodepth=1 runtime=20ms");
    fast.start(0);
    sim->run(msec(50));
    auto fast_count = fast.stats().completed;

    build(usec(20));
    auto &slow = spawn(
        "rw=randread bs=4k iodepth=1 runtime=20ms thinktime=100us");
    slow.start(0);
    sim->run(msec(50));
    EXPECT_LT(slow.stats().completed, fast_count / 2);
}

TEST_F(FioThreadTest, ScatterLogCollectsSamples)
{
    build(usec(20));
    auto &t = spawn("rw=randread bs=4k iodepth=1 runtime=5ms");
    afa::stats::ScatterLog log;
    t.attachScatterLog(&log);
    t.start(0);
    sim->run(msec(10));
    EXPECT_EQ(log.size(), t.stats().completed);
}

TEST_F(FioThreadTest, RangeBeyondDeviceIsFatal)
{
    build();
    EXPECT_THROW(
        spawn("rw=randread bs=4k iodepth=1 offset=2g size=1m"),
        afa::sim::SimError);
}

TEST_F(FioThreadTest, DoubleStartPanics)
{
    build();
    auto &t = spawn("rw=randread bs=4k iodepth=1 runtime=1ms");
    t.start(0);
    EXPECT_THROW(t.start(0), afa::sim::SimError);
}

} // namespace
