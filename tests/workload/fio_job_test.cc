/**
 * @file
 * FIO job parsing tests: the paper's workload line, size/duration
 * suffixes, and error handling.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "workload/fio_job.hh"

using namespace afa::workload;
using afa::sim::msec;
using afa::sim::sec;
using afa::sim::usec;

namespace {

class FioJobTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }
};

TEST_F(FioJobTest, Defaults)
{
    FioJob job;
    EXPECT_EQ(job.rw, RwMode::RandRead);
    EXPECT_EQ(job.blockSize, 4096u);
    EXPECT_EQ(job.ioDepth, 1u);
    EXPECT_EQ(job.runtime, sec(120));
}

TEST_F(FioJobTest, PaperWorkloadLine)
{
    // The Section III-B workload (direct/ioengine accepted, ignored).
    FioJob job = FioJob::parse(
        "name=afa rw=randread bs=4k iodepth=1 runtime=120 direct=1 "
        "ioengine=libaio");
    EXPECT_EQ(job.name, "afa");
    EXPECT_EQ(job.rw, RwMode::RandRead);
    EXPECT_EQ(job.blockSize, 4096u);
    EXPECT_EQ(job.ioDepth, 1u);
    EXPECT_EQ(job.runtime, sec(120));
}

TEST_F(FioJobTest, CommaSeparatedForm)
{
    FioJob job = FioJob::parse("rw=read,bs=128k,iodepth=8");
    EXPECT_EQ(job.rw, RwMode::Read);
    EXPECT_EQ(job.blockSize, 128u * 1024);
    EXPECT_EQ(job.ioDepth, 8u);
}

TEST_F(FioJobTest, SizeSuffixes)
{
    EXPECT_EQ(FioJob::parse("bs=8k").blockSize, 8192u);
    EXPECT_EQ(FioJob::parse("bs=1m").blockSize, 1048576u);
    EXPECT_EQ(FioJob::parse("bs=4096").blockSize, 4096u);
}

TEST_F(FioJobTest, DurationSuffixes)
{
    EXPECT_EQ(FioJob::parse("runtime=500ms").runtime, msec(500));
    EXPECT_EQ(FioJob::parse("runtime=30s").runtime, sec(30));
    EXPECT_EQ(FioJob::parse("runtime=2m").runtime, sec(120));
    EXPECT_EQ(FioJob::parse("runtime=250us").runtime, usec(250));
    EXPECT_EQ(FioJob::parse("runtime=7").runtime, sec(7));
}

TEST_F(FioJobTest, CpusAllowed)
{
    FioJob job = FioJob::parse("cpus_allowed=4-5,24");
    EXPECT_EQ(job.cpusAllowed,
              (afa::host::CpuMask(1) << 4) |
                  (afa::host::CpuMask(1) << 5) |
                  (afa::host::CpuMask(1) << 24));
}

TEST_F(FioJobTest, OffsetAndSizeInBlocks)
{
    FioJob job = FioJob::parse("offset=1m size=8m");
    EXPECT_EQ(job.offsetBlocks, 256u);
    EXPECT_EQ(job.sizeBlocks, 2048u);
}

TEST_F(FioJobTest, RwModes)
{
    EXPECT_EQ(parseRwMode("read"), RwMode::Read);
    EXPECT_EQ(parseRwMode("write"), RwMode::Write);
    EXPECT_EQ(parseRwMode("randread"), RwMode::RandRead);
    EXPECT_EQ(parseRwMode("randwrite"), RwMode::RandWrite);
    EXPECT_EQ(parseRwMode("randrw"), RwMode::RandRw);
    EXPECT_STREQ(rwModeName(RwMode::RandRead), "randread");
}

TEST_F(FioJobTest, Errors)
{
    EXPECT_THROW(FioJob::parse("rw=bogus"), afa::sim::SimError);
    EXPECT_THROW(FioJob::parse("bs=1000"), afa::sim::SimError);
    EXPECT_THROW(FioJob::parse("bs=0"), afa::sim::SimError);
    EXPECT_THROW(FioJob::parse("iodepth=0"), afa::sim::SimError);
    EXPECT_THROW(FioJob::parse("runtime=5lightyears"),
                 afa::sim::SimError);
    EXPECT_THROW(FioJob::parse("rwmixread=150"), afa::sim::SimError);
    EXPECT_THROW(FioJob::parse("unknown_key=1"), afa::sim::SimError);
    EXPECT_THROW(FioJob::parse("notkeyvalue"), afa::sim::SimError);
}

TEST_F(FioJobTest, RtPriority)
{
    FioJob job = FioJob::parse("rtprio=99");
    EXPECT_EQ(job.rtPriority, 99);
}

} // namespace
