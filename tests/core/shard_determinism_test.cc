/**
 * @file
 * Differential bit-identity suite for the sharded event core: a
 * figure-style experiment rendered to its canonical report strings
 * must be byte-for-byte identical at every shard count, with and
 * without span tracing, and with a fault plan whose events land on
 * SSDs across shard boundaries. These are the reduced-scale twins of
 * the fig06/fig09/fig14 bench comparisons in EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/experiment.hh"
#include "core/report.hh"
#include "core/run_plan.hh"
#include "fault/fault_plan.hh"
#include "obs/span.hh"
#include "sim/logging.hh"

using namespace afa::core;
using afa::sim::msec;

namespace {

class ShardDeterminismTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    /**
     * A reduced fig-style config: 8 SSDs over a short run keeps each
     * execution around a second while still crossing every shard
     * boundary of a 4-way partition (devices 0-2 / 3-5 / 6-7).
     */
    static ExperimentParams
    baseParams(TuningProfile profile)
    {
        ExperimentParams p;
        p.profile = profile;
        p.ssds = 8;
        p.runtime = msec(100);
        p.smartPeriod = msec(40);
        p.irqBalanceInterval = msec(40);
        p.seed = 20260808;
        return p;
    }

    /**
     * Everything the figures print, plus the event count: any
     * divergence between shard counts must show up here. Wall-clock
     * rates are intentionally absent -- they are the only output the
     * determinism contract excludes.
     */
    static std::string
    canonical(const ExperimentResult &r)
    {
        std::ostringstream os;
        os << describeExperiment(r) << perDeviceTable(r).toString()
           << '\n'
           << envelopeTable(r).toString() << '\n'
           << "runs=" << r.runs << " events=" << r.simulatedEvents
           << " spanDrops=" << r.spanDrops << '\n'
           << r.attribution.toText();
        return os.str();
    }

    static std::string
    runCanonical(ExperimentParams p, unsigned shards)
    {
        p.shards = shards;
        return canonical(ExperimentRunner::run(p));
    }

    /** The frontier bench's base config at test scale: open-loop
     *  mixed bursty traffic with a zipfian hot spot, exercising every
     *  Rng fork the engine owns. */
    static ExperimentParams
    openLoopParams()
    {
        auto p = baseParams(TuningProfile::Default);
        afa::workload::OpenLoopParams ol;
        ol.arrival.kind = afa::workload::ArrivalKind::Bursty;
        ol.arrival.ratePerSec = 100000.0;
        ol.streams = 2;
        ol.readFraction = 0.7;
        ol.zipfTheta = 0.9;
        p.openLoop = ol;
        return p;
    }

    /** Everything the frontier figure prints from the open-loop
     *  slice, plus the event count: counters, per-stream accounting
     *  and the response-histogram shape. */
    static std::string
    openLoopCanonical(const ExperimentResult &r)
    {
        std::ostringstream os;
        const auto stream = [&os](const char *tag,
                                  const afa::workload::
                                      OpenLoopStreamStats &s) {
            os << tag << " arrivals=" << s.arrivals << " submitted="
               << s.submitted << " completed=" << s.completed
               << " dropped=" << s.dropped << " errors=" << s.errors
               << " rd=" << s.readBytes << " wr=" << s.writeBytes
               << " peak=" << s.backlogPeak << " backlog="
               << s.finalBacklog << " inflight=" << s.inflightAtEnd
               << " gt1ms=" << s.exceed[0] << '\n';
        };
        stream("totals", r.openLoop.totals);
        for (std::size_t i = 0; i < r.openLoop.perStream.size(); ++i)
            stream(afa::sim::strfmt("s%zu", i).c_str(),
                   r.openLoop.perStream[i]);
        const auto &h = r.openLoop.responseHist;
        os << "hist n=" << h.count() << " min=" << h.min() << " max="
           << h.max() << " p50=" << h.quantile(0.50) << " p99="
           << h.quantile(0.99) << '\n'
           << "events=" << r.simulatedEvents << '\n';
        return os.str();
    }
};

TEST_F(ShardDeterminismTest, Fig06DefaultProfileBitIdentical)
{
    const auto params = baseParams(TuningProfile::Default);
    const std::string serial = runCanonical(params, 1);
    EXPECT_EQ(runCanonical(params, 2), serial);
    EXPECT_EQ(runCanonical(params, 4), serial);
}

TEST_F(ShardDeterminismTest, Fig09IrqAffinityTracedBitIdentical)
{
    auto params = baseParams(TuningProfile::IrqAffinity);
    params.traceMask = afa::obs::kAllCategories;
    const std::string serial = runCanonical(params, 1);
    EXPECT_EQ(runCanonical(params, 4), serial);
}

TEST_F(ShardDeterminismTest, TracingDoesNotPerturbTheShardedModel)
{
    // The traced and untraced shards=4 runs must agree on everything
    // but the attribution section (absent when untraced).
    auto params = baseParams(TuningProfile::IrqAffinity);
    params.shards = 4;
    auto untraced = ExperimentRunner::run(params);
    params.traceMask = afa::obs::kAllCategories;
    auto traced = ExperimentRunner::run(params);
    EXPECT_EQ(describeExperiment(traced), describeExperiment(untraced));
    EXPECT_EQ(perDeviceTable(traced).toString(),
              perDeviceTable(untraced).toString());
    EXPECT_EQ(traced.simulatedEvents, untraced.simulatedEvents);
}

TEST_F(ShardDeterminismTest, Fig14GeometryVariantBitIdentical)
{
    auto params = baseParams(TuningProfile::IrqAffinity);
    params.variant = GeometryVariant::OnePerCore;
    const std::string serial = runCanonical(params, 1);
    EXPECT_EQ(runCanonical(params, 2), serial);
    EXPECT_EQ(runCanonical(params, 4), serial);
}

TEST_F(ShardDeterminismTest, FaultPlanAcrossShardBoundariesBitIdentical)
{
    // Faults on devices 0,1,2 (shard 1), 4 (shard 2) and 6 (shard 3)
    // under a 4-way partition: limp/dropout/stall arrive as mailbox
    // control posts, link errors draw from per-link RNG streams.
    auto plan = std::make_shared<afa::fault::FaultPlan>(
        afa::fault::FaultPlan::parseText(
            "timeout_ms 10\n"
            "max_retries 3\n"
            "retry_backoff_ms 1\n"
            "limp       ssd=1 at_ms=20 dur_ms=60 factor=6\n"
            "link_error ssd=2 at_ms=10 dur_ms=80 rate=0.15\n"
            "link_error ssd=6 at_ms=30 dur_ms=50 rate=0.10\n"
            "dropout    ssd=4 at_ms=50 dur_ms=12\n"
            "ctrl_stall ssd=0 at_ms=40 dur_ms=3\n",
            "<shard_determinism_test>"));
    auto params = baseParams(TuningProfile::IrqAffinity);
    params.faults = plan;
    const std::string serial = runCanonical(params, 1);
    EXPECT_EQ(runCanonical(params, 4), serial);

    // And with tracing stacked on top of the faulted run.
    params.traceMask = afa::obs::kAllCategories;
    const std::string traced_serial = runCanonical(params, 1);
    EXPECT_EQ(runCanonical(params, 4), traced_serial);
}

TEST_F(ShardDeterminismTest, TelemetryOnOffBitIdenticalAcrossShards)
{
    // The telemetry contract (DESIGN.md §14): sampling rides internal
    // shard-0 events, so enabling --telemetry must leave every
    // canonical report byte-identical, serial and sharded alike.
    const auto params = baseParams(TuningProfile::Default);
    for (unsigned shards : {1u, 4u}) {
        auto off = params;
        off.shards = shards;
        const std::string base = canonical(ExperimentRunner::run(off));
        auto on = off;
        on.telemetryWindow = msec(10);
        const auto result = ExperimentRunner::run(on);
        EXPECT_EQ(canonical(result), base) << "shards=" << shards;
        // And the run actually produced a timeline.
        EXPECT_FALSE(result.telemetry.empty()) << "shards=" << shards;
        EXPECT_FALSE(result.telemetry.stages.empty())
            << "shards=" << shards;
    }
}

TEST_F(ShardDeterminismTest, TelemetryModelRowsShardCountInvariant)
{
    // Stage histograms and counter/gauge series are model output:
    // bit-identical at any shard count. The sim self-profile rows
    // describe the engine (per-shard event counts) and are the one
    // part of the timeline that legitimately differs, so they are
    // stripped before comparing.
    auto params = baseParams(TuningProfile::Default);
    params.telemetryWindow = msec(10);
    const auto model_rows = [](ExperimentResult r) {
        r.telemetry.sim.clear();
        return r.telemetry.toJsonLines();
    };
    auto p1 = params;
    p1.shards = 1;
    auto p4 = params;
    p4.shards = 4;
    const std::string serial = model_rows(ExperimentRunner::run(p1));
    EXPECT_NE(serial.find("\"kind\":\"stage\""), std::string::npos);
    EXPECT_EQ(model_rows(ExperimentRunner::run(p4)), serial);
}

TEST_F(ShardDeterminismTest, TelemetryOnOffBitIdenticalAcrossJobs)
{
    // The parallel sweep runner: 2 seed replicas rendered at jobs
    // {1,4}, telemetry on and off — all four executions must agree
    // on every canonical report, independent of worker count.
    auto params = baseParams(TuningProfile::Default);
    params.shards = 2;
    const auto render = [&params](afa::sim::Tick window,
                                  unsigned jobs) {
        auto base = params;
        base.telemetryWindow = window;
        RunPlan plan(base);
        plan.seeds(2);
        ParallelExperimentRunner runner(jobs);
        std::string out;
        for (const auto &r : runner.run(plan.expand()))
            out += canonical(r);
        return out;
    };
    const std::string serial_off = render(0, 1);
    EXPECT_EQ(render(0, 4), serial_off);
    EXPECT_EQ(render(msec(10), 1), serial_off);
    EXPECT_EQ(render(msec(10), 4), serial_off);
}

TEST_F(ShardDeterminismTest, OpenLoopBitIdenticalAcrossShards)
{
    // The open-loop contract (DESIGN.md §15): the engine lives on
    // shard 0 and every draw comes from named per-stream forks, so
    // the frontier-style canonical output is shard-count-invariant
    // and unmoved by telemetry sampling.
    const auto params = openLoopParams();
    auto p1 = params;
    p1.shards = 1;
    const auto serial = ExperimentRunner::run(p1);
    const std::string base = openLoopCanonical(serial);
    // The run did real open-loop work with exact accounting.
    EXPECT_FALSE(serial.openLoop.empty());
    const auto &t = serial.openLoop.totals;
    EXPECT_GT(t.completed, 1000u);
    EXPECT_EQ(t.arrivals, t.submitted + t.dropped + t.finalBacklog);
    EXPECT_EQ(t.submitted, t.completed + t.inflightAtEnd);

    for (unsigned shards : {2u, 4u}) {
        auto p = params;
        p.shards = shards;
        EXPECT_EQ(openLoopCanonical(ExperimentRunner::run(p)), base)
            << "shards=" << shards;
    }
    auto telem = params;
    telem.shards = 4;
    telem.telemetryWindow = msec(10);
    const auto result = ExperimentRunner::run(telem);
    EXPECT_EQ(openLoopCanonical(result), base);
    EXPECT_FALSE(result.telemetry.empty());
}

TEST_F(ShardDeterminismTest, OpenLoopBitIdenticalAcrossJobs)
{
    // Seed replicas of the open-loop run through the parallel sweep
    // runner: worker count and telemetry must not move a byte of the
    // merged open-loop slice.
    auto params = openLoopParams();
    params.shards = 2;
    const auto render = [&params](afa::sim::Tick window,
                                  unsigned jobs) {
        auto base = params;
        base.telemetryWindow = window;
        RunPlan plan(base);
        plan.seeds(2);
        ParallelExperimentRunner runner(jobs);
        std::string out;
        for (const auto &r : runner.run(plan.expand()))
            out += openLoopCanonical(r);
        return out;
    };
    const std::string serial_off = render(0, 1);
    EXPECT_EQ(render(0, 4), serial_off);
    EXPECT_EQ(render(msec(10), 1), serial_off);
    EXPECT_EQ(render(msec(10), 4), serial_off);
}

TEST_F(ShardDeterminismTest, EventCountSumsAcrossShards)
{
    // simulatedEvents aggregates per-shard counters minus plumbing;
    // the sum must be shard-count-invariant and non-trivial.
    const auto params = baseParams(TuningProfile::Default);
    auto p1 = params;
    p1.shards = 1;
    auto serial = ExperimentRunner::run(p1);
    auto p4 = params;
    p4.shards = 4;
    auto sharded = ExperimentRunner::run(p4);
    EXPECT_GT(serial.simulatedEvents, 100000u);
    EXPECT_EQ(sharded.simulatedEvents, serial.simulatedEvents);
}

} // namespace
