/**
 * @file
 * Cross-module integration tests: fabric saturation under aggregate
 * load, throughput sanity at QD1, polled completions end to end, the
 * system report, and metamorphic checks (longer runs collect more
 * samples; disabling mechanisms removes their signatures).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.hh"
#include "core/system_report.hh"
#include "raid/volume.hh"
#include "sim/logging.hh"
#include "workload/fio_thread.hh"

using namespace afa::core;
using afa::sim::Simulator;
using afa::sim::msec;
using afa::sim::sec;
using afa::sim::usec;

namespace {

class IntegrationTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    ExperimentParams
    baseParams()
    {
        ExperimentParams p;
        p.profile = TuningProfile::IrqAffinity;
        p.ssds = 8;
        p.runtime = msec(400);
        p.smartPeriod = msec(200);
        p.seed = 77;
        return p;
    }
};

TEST_F(IntegrationTest, Qd1ThroughputMatchesLatency)
{
    auto params = baseParams();
    auto result = ExperimentRunner::run(params);
    // Closed loop: per-device IOPS ~ 1 / mean latency.
    double mean_s = result.aggregate.meanUs[0] * 1e-6;
    double expect_ios = afa::sim::toSec(params.runtime) / mean_s *
        params.ssds;
    EXPECT_NEAR(static_cast<double>(result.totalIos), expect_ios,
                expect_ios * 0.1);
}

TEST_F(IntegrationTest, UplinkBoundsAggregateSequentialThroughput)
{
    // 16 SSDs of sequential 128 KiB reads at QD4 deliver far more
    // than one x16 uplink carries; the fabric must cap the aggregate
    // near the link's effective rate (16 lanes x 800 MB/s = 12.8
    // GB/s) and never exceed it.
    Simulator sim(5);
    AfaSystemParams sys_params;
    sys_params.ssds = 16;
    sys_params.background = afa::host::BackgroundParams::none();
    sys_params.firmware.smart.enabled = false;
    AfaSystem system(sim, sys_params);
    for (unsigned d = 0; d < 16; ++d)
        system.ssd(d).ftl().precondition(1.0);

    Geometry geometry(afa::host::CpuTopology{}, 16);
    std::vector<std::unique_ptr<afa::workload::FioThread>> threads;
    for (unsigned d = 0; d < 16; ++d) {
        afa::workload::FioJob job =
            afa::workload::FioJob::parse("rw=read bs=128k iodepth=4");
        job.runtime = msec(300);
        job.cpusAllowed = afa::host::CpuMask(1)
            << geometry.cpuForDevice(d);
        job.name = afa::sim::strfmt("fio%u", d);
        threads.push_back(std::make_unique<afa::workload::FioThread>(
            sim, job.name, system.scheduler(), system.ioEngine(), d,
            job));
    }
    system.start();
    for (auto &t : threads)
        t->start(0);
    sim.run(msec(500));

    double bytes = 0;
    for (auto &t : threads)
        bytes += static_cast<double>(t->stats().readBytes);
    double gbps = bytes / 0.3 / 1e9;
    EXPECT_GT(gbps, 8.0);   // the uplink is really being used
    EXPECT_LT(gbps, 12.9);  // and really is the bottleneck
}

TEST_F(IntegrationTest, PolledCompletionsBeatInterruptLatency)
{
    auto intr = baseParams();
    intr.profile = TuningProfile::ExpFirmware;
    auto base = ExperimentRunner::run(intr);

    auto polled = intr;
    polled.polledCompletions = true;
    auto poll = ExperimentRunner::run(polled);

    EXPECT_LT(poll.aggregate.meanUs[0], base.aggregate.meanUs[0]);
    EXPECT_GT(poll.aggregate.meanUs[0],
              base.aggregate.meanUs[0] - 10.0);
}

TEST_F(IntegrationTest, SystemReportCoversAllSections)
{
    auto params = baseParams();
    params.captureSystemReport = true;
    auto result = ExperimentRunner::run(params);
    const std::string &report = result.systemReportText;
    EXPECT_NE(report.find("CPU utilisation"), std::string::npos);
    EXPECT_NE(report.find("IRQ subsystem"), std::string::npos);
    EXPECT_NE(report.find("PCIe fabric"), std::string::npos);
    EXPECT_NE(report.find("SMART collections"), std::string::npos);
}

TEST_F(IntegrationTest, LongerRunsCollectMoreSamples)
{
    auto short_params = baseParams();
    auto long_params = baseParams();
    long_params.runtime = msec(800);
    auto short_result = ExperimentRunner::run(short_params);
    auto long_result = ExperimentRunner::run(long_params);
    EXPECT_GT(long_result.totalIos,
              short_result.totalIos * 3 / 2);
}

TEST_F(IntegrationTest, SmartPeriodScalesSpikeCount)
{
    auto fast = baseParams();
    fast.scatterDevices = 8;
    fast.smartPeriod = msec(100);
    auto fast_result = ExperimentRunner::run(fast);
    auto slow = baseParams();
    slow.scatterDevices = 8;
    slow.smartPeriod = msec(400);
    auto slow_result = ExperimentRunner::run(slow);
    auto fast_clusters =
        fast_result.scatter.clusters(usec(150), msec(10)).size();
    auto slow_clusters =
        slow_result.scatter.clusters(usec(150), msec(10)).size();
    EXPECT_GT(fast_clusters, slow_clusters);
}

TEST_F(IntegrationTest, StripedVolumeOverRealArray)
{
    // End to end: FIO drives a RAID-0 over 4 simulated SSDs.
    Simulator sim(3);
    AfaSystemParams sys_params;
    sys_params.ssds = 4;
    sys_params.background = afa::host::BackgroundParams::none();
    sys_params.firmware.smart.enabled = false;
    sys_params.pinIrqAffinity = true;
    AfaSystem system(sim, sys_params);
    afa::raid::StripedVolume volume(sim, "vol",
                                    system.ioEngine(), {0, 1, 2, 3},
                                    1);
    afa::workload::FioJob job =
        afa::workload::FioJob::parse("rw=randread bs=16k iodepth=1");
    job.runtime = msec(200);
    job.cpusAllowed = afa::host::CpuMask(1) << 14;
    afa::workload::FioThread client(sim, "client",
                                    system.scheduler(), volume, 0,
                                    job);
    system.start();
    client.start(0);
    sim.run(msec(400));
    EXPECT_GT(client.stats().completed, 1000u);
    EXPECT_EQ(volume.stats().clientIos, client.stats().submitted);
    EXPECT_EQ(volume.stats().memberIos,
              client.stats().submitted * 4);
    // Each SSD saw a quarter of the member traffic.
    for (unsigned d = 0; d < 4; ++d)
        EXPECT_NEAR(
            static_cast<double>(
                system.ssd(d).stats().readsCompleted),
            static_cast<double>(volume.stats().memberIos) / 4.0,
            static_cast<double>(volume.stats().memberIos) * 0.05);
}

TEST_F(IntegrationTest, BackgroundLoadOnlyHurtsDefaultProfile)
{
    // Metamorphic: removing the zoo shrinks the default config's
    // tail but barely moves the tuned one.
    auto def_with = baseParams();
    def_with.profile = TuningProfile::Default;
    def_with.runtime = msec(600);
    auto def_without = def_with;
    def_without.backgroundLoad = false;
    auto with_bg = ExperimentRunner::run(def_with);
    auto without_bg = ExperimentRunner::run(def_without);
    EXPECT_GE(with_bg.aggregate.maxUs[6],
              without_bg.aggregate.maxUs[6]);
}

} // namespace
