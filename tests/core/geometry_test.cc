/**
 * @file
 * Geometry tests: the exact Fig. 5 CPU-SSD map and the Table II run
 * decomposition.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/geometry.hh"
#include "sim/logging.hh"

using namespace afa::core;
using afa::host::CpuTopology;

namespace {

class GeometryTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    Geometry geo{CpuTopology{}, 64, 4};
};

TEST_F(GeometryTest, ReservedCpusMatchPaper)
{
    // cpu(0)..cpu(3) and cpu(20)..cpu(23) are reserved.
    afa::host::CpuSet expect{0, 1, 2, 3, 20, 21, 22, 23};
    EXPECT_EQ(geo.reservedCpus(), expect);
}

TEST_F(GeometryTest, FioCpusInFigureOrder)
{
    const auto &fio = geo.fioCpus();
    ASSERT_EQ(fio.size(), 32u);
    EXPECT_EQ(fio.front(), 4u);
    EXPECT_EQ(fio[15], 19u);
    EXPECT_EQ(fio[16], 24u);
    EXPECT_EQ(fio.back(), 39u);
}

TEST_F(GeometryTest, Figure5Mapping)
{
    // nvme(0) and nvme(32) share cpu(4); nvme(31)/nvme(63) cpu(39).
    EXPECT_EQ(geo.cpuForDevice(0), 4u);
    EXPECT_EQ(geo.cpuForDevice(32), 4u);
    EXPECT_EQ(geo.cpuForDevice(31), 39u);
    EXPECT_EQ(geo.cpuForDevice(63), 39u);
    EXPECT_EQ(geo.cpuForDevice(16), 24u);
}

TEST_F(GeometryTest, IsolationSetIsPaperBootList)
{
    auto set = geo.isolationSet();
    EXPECT_EQ(afa::host::formatCpuList(set), "4-19,24-39");
}

TEST_F(GeometryTest, TableIIThreadCounts)
{
    EXPECT_EQ(geo.threadsPerRun(GeometryVariant::FourPerCore), 64u);
    EXPECT_EQ(geo.threadsPerRun(GeometryVariant::TwoPerCore), 32u);
    EXPECT_EQ(geo.threadsPerRun(GeometryVariant::OnePerCore), 16u);
    EXPECT_EQ(geo.threadsPerRun(GeometryVariant::SingleThread), 1u);
}

TEST_F(GeometryTest, TableIIRunCounts)
{
    EXPECT_EQ(geo.runsFor(GeometryVariant::FourPerCore).size(), 1u);
    EXPECT_EQ(geo.runsFor(GeometryVariant::TwoPerCore).size(), 2u);
    EXPECT_EQ(geo.runsFor(GeometryVariant::OnePerCore).size(), 4u);
    EXPECT_EQ(geo.runsFor(GeometryVariant::SingleThread).size(), 64u);
}

TEST_F(GeometryTest, RunsCoverAllDevicesDisjointly)
{
    for (auto variant :
         {GeometryVariant::FourPerCore, GeometryVariant::TwoPerCore,
          GeometryVariant::OnePerCore,
          GeometryVariant::SingleThread}) {
        std::set<unsigned> seen;
        for (const auto &run : geo.runsFor(variant))
            for (const auto &p : run)
                EXPECT_TRUE(seen.insert(p.device).second)
                    << "device duplicated";
        EXPECT_EQ(seen.size(), 64u);
    }
}

TEST_F(GeometryTest, OnePerCoreUsesDistinctPhysicalCores)
{
    CpuTopology topo;
    for (const auto &run : geo.runsFor(GeometryVariant::OnePerCore)) {
        std::set<unsigned> cores;
        for (const auto &p : run)
            EXPECT_TRUE(cores.insert(topo.physicalCoreOf(p.cpu)).second)
                << "physical core shared in 1-per-core variant";
    }
}

TEST_F(GeometryTest, TwoPerCoreUsesEachLogicalOnce)
{
    for (const auto &run : geo.runsFor(GeometryVariant::TwoPerCore)) {
        std::set<unsigned> cpus;
        for (const auto &p : run)
            EXPECT_TRUE(cpus.insert(p.cpu).second);
    }
}

TEST_F(GeometryTest, FourPerCorePairsDevices32Apart)
{
    auto runs = geo.runsFor(GeometryVariant::FourPerCore);
    ASSERT_EQ(runs.size(), 1u);
    const auto &run = runs[0];
    for (const auto &p : run)
        EXPECT_EQ(p.cpu, geo.cpuForDevice(p.device));
}

TEST_F(GeometryTest, VariantNames)
{
    EXPECT_STREQ(geometryVariantName(GeometryVariant::FourPerCore),
                 "4-ssds-per-core");
    EXPECT_STREQ(geometryVariantName(GeometryVariant::SingleThread),
                 "single-fio-thread");
}

TEST_F(GeometryTest, SmallerArrays)
{
    Geometry g8(CpuTopology{}, 8, 4);
    EXPECT_EQ(g8.runsFor(GeometryVariant::FourPerCore).size(), 1u);
    EXPECT_EQ(g8.runsFor(GeometryVariant::SingleThread).size(), 8u);
}

TEST_F(GeometryTest, InvalidConfigurationsFatal)
{
    EXPECT_THROW(Geometry(CpuTopology{}, 0, 4), afa::sim::SimError);
    EXPECT_THROW(Geometry(CpuTopology{}, 64, 20), afa::sim::SimError);
}

} // namespace
