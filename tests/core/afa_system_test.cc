/**
 * @file
 * AfaSystem assembly tests: component counts, driver round trips
 * through fabric + controller + IRQ, and profile wiring.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/afa_system.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace afa::core;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::sim::msec;
using afa::sim::usec;

namespace {

class AfaSystemTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    void
    build(unsigned ssds, bool pin_irq = false)
    {
        sim = std::make_unique<Simulator>(55);
        AfaSystemParams params;
        params.ssds = ssds;
        params.pinIrqAffinity = pin_irq;
        params.background = afa::host::BackgroundParams::none();
        params.firmware.smart.enabled = false;
        system = std::make_unique<AfaSystem>(*sim, params);
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<AfaSystem> system;
};

TEST_F(AfaSystemTest, PaperScaleAssembly)
{
    build(64);
    EXPECT_EQ(system->ssds(), 64u);
    // 64 devices x 40 logical CPUs = 2,560 MSI-X vectors.
    EXPECT_EQ(system->irq().vectors(), 2560u);
    EXPECT_EQ(system->scheduler().topology().logicalCpus(), 40u);
    // host + root + 6 leaves + 16 carriers + 64 SSDs.
    EXPECT_EQ(system->fabric().nodes(), 88u);
}

TEST_F(AfaSystemTest, DriverRoundTrip)
{
    build(4);
    system->start();
    unsigned handler_cpu = 999;
    Tick completed_at = 0;
    afa::workload::IoRequest req;
    req.device = 2;
    req.op = afa::nvme::Op::Read;
    req.lba = 100;
    req.bytes = 4096;
    system->ioEngine().submit(
        14, req, [&](const afa::workload::IoResult &result) {
            EXPECT_TRUE(result.ok());
            handler_cpu = result.cpu;
            completed_at = sim->now();
        });
    EXPECT_EQ(system->outstandingCommands(), 1u);
    sim->run(msec(5));
    EXPECT_EQ(system->outstandingCommands(), 0u);
    // Vector default spread: handler on the submitting CPU.
    EXPECT_EQ(handler_cpu, 14u);
    // End-to-end device latency: ~20-30 us through the fabric.
    EXPECT_GT(completed_at, usec(15));
    EXPECT_LT(completed_at, usec(45));
    EXPECT_EQ(system->ssd(2).stats().readsCompleted, 1u);
}

TEST_F(AfaSystemTest, DeviceBlocksExposed)
{
    build(2);
    EXPECT_EQ(system->ioEngine().deviceBlocks(0), 262144u);
}

TEST_F(AfaSystemTest, PinnedIrqAffinityApplies)
{
    build(2, true);
    for (unsigned q = 0; q < 40; ++q)
        EXPECT_EQ(system->irq().effectiveCpu(1, q), q);
}

TEST_F(AfaSystemTest, WritesReachTheFtl)
{
    build(1);
    system->start();
    afa::workload::IoRequest req;
    req.device = 0;
    req.op = afa::nvme::Op::Write;
    req.lba = 42;
    req.bytes = 4096;
    bool done = false;
    system->ioEngine().submit(
        4, req,
        [&](const afa::workload::IoResult &) { done = true; });
    sim->run(msec(5));
    EXPECT_TRUE(done);
    EXPECT_TRUE(system->ssd(0).ftl().isMapped(42));
}

TEST_F(AfaSystemTest, ParallelSubmissionsToManySsds)
{
    build(8);
    system->start();
    unsigned completions = 0;
    for (unsigned d = 0; d < 8; ++d) {
        afa::workload::IoRequest req;
        req.device = d;
        req.lba = d;
        system->ioEngine().submit(
            4 + d, req,
            [&](const afa::workload::IoResult &) { ++completions; });
    }
    sim->run(msec(5));
    EXPECT_EQ(completions, 8u);
}

TEST_F(AfaSystemTest, ZeroSsdsIsFatal)
{
    sim = std::make_unique<Simulator>(1);
    AfaSystemParams params;
    params.ssds = 0;
    EXPECT_THROW(AfaSystem(*sim, params), afa::sim::SimError);
}

TEST_F(AfaSystemTest, BadDeviceIndexPanics)
{
    build(2);
    EXPECT_THROW(system->ssd(2), afa::sim::SimError);
    afa::workload::IoRequest req;
    req.device = 5;
    EXPECT_THROW(
        system->ioEngine().submit(
            4, req, [](const afa::workload::IoResult &) {}),
        afa::sim::SimError);
}

} // namespace
