/**
 * @file
 * Integration tests: the experiment runner end to end, and the
 * paper's qualitative results as invariants -- the tuning ladder
 * must improve tail latency and convergence in the right order, the
 * SMART spikes must appear/disappear with firmware, and the geometry
 * sweep must be insensitive at low utilisation.
 *
 * These use a reduced array (fewer SSDs / shorter runs) so the whole
 * file stays test-suite fast; the bench harnesses run paper scale.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/report.hh"
#include "sim/logging.hh"

using namespace afa::core;
using afa::sim::msec;
using afa::sim::usec;

namespace {

class ExperimentTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    ExperimentParams
    baseParams(TuningProfile profile)
    {
        ExperimentParams p;
        p.profile = profile;
        p.ssds = 16;
        p.runtime = msec(800);
        p.smartPeriod = msec(300);
        p.irqBalanceInterval = msec(300);
        p.seed = 2026;
        return p;
    }

    static double
    maxIdx(const afa::stats::LadderAggregate &agg, std::size_t p)
    {
        return agg.meanUs[p];
    }
};

TEST_F(ExperimentTest, ProducesPerDeviceSummaries)
{
    auto result = ExperimentRunner::run(baseParams(
        TuningProfile::Default));
    ASSERT_EQ(result.perDevice.size(), 16u);
    for (const auto &dev : result.perDevice) {
        EXPECT_GT(dev.samples, 1000u);
        EXPECT_GT(dev.meanUs, 20.0);
        EXPECT_LT(dev.meanUs, 80.0);
    }
    EXPECT_GT(result.totalIos, 16u * 1000u);
    EXPECT_GT(result.aggregateGBps, 0.1);
    EXPECT_EQ(result.runs, 1u);
    EXPECT_TRUE(result.bootCmdline.empty());
}

TEST_F(ExperimentTest, TuningLadderImprovesTailInOrder)
{
    const std::size_t kMax = afa::stats::NinesLadder::kPoints - 1;
    auto def =
        ExperimentRunner::run(baseParams(TuningProfile::Default));
    auto chrt = ExperimentRunner::run(baseParams(TuningProfile::Chrt));
    auto irq = ExperimentRunner::run(
        baseParams(TuningProfile::IrqAffinity));
    auto fw = ExperimentRunner::run(
        baseParams(TuningProfile::ExpFirmware));

    // Fig. 7: chrt removes the millisecond scheduler tail.
    EXPECT_GT(def.aggregate.maxUs[kMax], 900.0);
    EXPECT_LT(chrt.aggregate.maxUs[kMax],
              def.aggregate.maxUs[kMax]);
    // Fig. 9: with pinned IRQs the max is the SMART stall (~550 us).
    EXPECT_GT(irq.aggregate.meanUs[kMax], 300.0);
    EXPECT_LT(irq.aggregate.meanUs[kMax], 700.0);
    // Fig. 12 bottom: convergence improves monotonically at p99.9.
    EXPECT_LT(irq.aggregate.stddevUs[2],
              def.aggregate.stddevUs[2] + 1.0);
    // Fig. 11: experimental firmware kills the SMART tail.
    EXPECT_LT(fw.aggregate.meanUs[kMax],
              irq.aggregate.meanUs[kMax] / 3.0);
    EXPECT_LT(fw.aggregate.maxUs[kMax], 150.0);
}

TEST_F(ExperimentTest, SmartSpikesVisibleInScatter)
{
    auto params = baseParams(TuningProfile::IrqAffinity);
    params.scatterDevices = 8;
    auto result = ExperimentRunner::run(params);
    EXPECT_GT(result.scatter.size(), 10000u);
    auto clusters =
        result.scatter.clusters(usec(150), msec(20));
    // 8 devices x ~2-3 SMART windows in 800 ms at a 300 ms period.
    EXPECT_GT(clusters.size(), 4u);
}

TEST_F(ExperimentTest, GeometryVariantsAgreeWhenTuned)
{
    auto params = baseParams(TuningProfile::IrqAffinity);
    params.variant = GeometryVariant::FourPerCore;
    auto four = ExperimentRunner::run(params);
    params.variant = GeometryVariant::OnePerCore;
    auto one = ExperimentRunner::run(params);
    EXPECT_EQ(one.runs, 1u); // 16 SSDs fit one 1-per-core run
    // Fig. 14: average latency within a microsecond or two.
    EXPECT_NEAR(four.aggregate.meanUs[0], one.aggregate.meanUs[0],
                3.0);
}

TEST_F(ExperimentTest, SingleThreadVariantRunsPerDevice)
{
    auto params = baseParams(TuningProfile::IrqAffinity);
    params.ssds = 4;
    params.runtime = msec(300);
    params.variant = GeometryVariant::SingleThread;
    auto result = ExperimentRunner::run(params);
    EXPECT_EQ(result.runs, 4u);
    for (const auto &dev : result.perDevice)
        EXPECT_GT(dev.samples, 500u);
}

TEST_F(ExperimentTest, SameSeedSameResult)
{
    auto a = ExperimentRunner::run(baseParams(TuningProfile::Chrt));
    auto b = ExperimentRunner::run(baseParams(TuningProfile::Chrt));
    ASSERT_EQ(a.perDevice.size(), b.perDevice.size());
    for (std::size_t i = 0; i < a.perDevice.size(); ++i) {
        EXPECT_EQ(a.perDevice[i].samples, b.perDevice[i].samples);
        EXPECT_DOUBLE_EQ(a.perDevice[i].maxUs, b.perDevice[i].maxUs);
    }
    EXPECT_EQ(a.totalIos, b.totalIos);
}

TEST_F(ExperimentTest, DifferentSeedsDiffer)
{
    auto a = ExperimentRunner::run(baseParams(TuningProfile::Chrt));
    auto p = baseParams(TuningProfile::Chrt);
    p.seed = 9999;
    auto b = ExperimentRunner::run(p);
    EXPECT_NE(a.totalIos, b.totalIos);
}

TEST_F(ExperimentTest, ReportsRenderNonEmpty)
{
    auto result =
        ExperimentRunner::run(baseParams(TuningProfile::Default));
    EXPECT_GT(perDeviceTable(result).rows(), 0u);
    EXPECT_EQ(envelopeTable(result).rows(), 7u);
    EXPECT_FALSE(describeExperiment(result).empty());
    Geometry geo(afa::host::CpuTopology{}, 16);
    auto table = geometryTable(
        geo, {GeometryVariant::FourPerCore,
              GeometryVariant::SingleThread});
    EXPECT_EQ(table.rows(), 2u);
}

} // namespace
