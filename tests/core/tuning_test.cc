/**
 * @file
 * Tuning-ladder tests: each profile applies exactly its cumulative
 * set of changes, and the isolcpus step reproduces the paper's boot
 * command line verbatim.
 */

#include <gtest/gtest.h>

#include "core/tuning.hh"
#include "sim/logging.hh"

using namespace afa::core;
using afa::host::CpuTopology;

namespace {

class TuningTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    Geometry geo{CpuTopology{}, 64, 4};
};

TEST_F(TuningTest, DefaultIsStock)
{
    auto cfg = TuningConfig::forProfile(TuningProfile::Default, geo);
    EXPECT_EQ(cfg.fioRtPriority, 0);
    EXPECT_TRUE(cfg.kernel.isolcpus.empty());
    EXPECT_TRUE(cfg.kernel.irq.irqBalanceEnabled);
    EXPECT_FALSE(cfg.pinIrqAffinity);
    EXPECT_TRUE(cfg.firmware.smart.enabled);
    EXPECT_FALSE(cfg.kernel.cstate.idlePoll);
    EXPECT_EQ(cfg.kernel.cstate.maxCstate, 6u);
}

TEST_F(TuningTest, ChrtAddsOnlyRtPriority)
{
    auto cfg = TuningConfig::forProfile(TuningProfile::Chrt, geo);
    EXPECT_EQ(cfg.fioRtPriority, 99);
    EXPECT_TRUE(cfg.kernel.isolcpus.empty());
    EXPECT_FALSE(cfg.pinIrqAffinity);
    EXPECT_TRUE(cfg.firmware.smart.enabled);
}

TEST_F(TuningTest, IsolcpusAddsBootOptions)
{
    auto cfg = TuningConfig::forProfile(TuningProfile::Isolcpus, geo);
    EXPECT_EQ(cfg.fioRtPriority, 99); // cumulative
    EXPECT_EQ(cfg.kernel.bootCommandLine(),
              "isolcpus=4-19,24-39 nohz_full=4-19,24-39 "
              "rcu_nocbs=4-19,24-39 processor.max_cstate=1 idle=poll");
    EXPECT_FALSE(cfg.pinIrqAffinity);
    EXPECT_TRUE(cfg.kernel.irq.irqBalanceEnabled);
    EXPECT_TRUE(cfg.firmware.smart.enabled);
}

TEST_F(TuningTest, IrqAffinityPinsAndStopsBalancer)
{
    auto cfg =
        TuningConfig::forProfile(TuningProfile::IrqAffinity, geo);
    EXPECT_EQ(cfg.fioRtPriority, 99);
    EXPECT_FALSE(cfg.kernel.isolcpus.empty());
    EXPECT_TRUE(cfg.pinIrqAffinity);
    EXPECT_FALSE(cfg.kernel.irq.irqBalanceEnabled);
    EXPECT_TRUE(cfg.firmware.smart.enabled);
}

TEST_F(TuningTest, ExpFirmwareDisablesSmartOnly)
{
    auto cfg =
        TuningConfig::forProfile(TuningProfile::ExpFirmware, geo);
    EXPECT_FALSE(cfg.firmware.smart.enabled);
    // Everything below it still applies.
    EXPECT_TRUE(cfg.pinIrqAffinity);
    EXPECT_EQ(cfg.fioRtPriority, 99);
    EXPECT_FALSE(cfg.kernel.isolcpus.empty());
}

TEST_F(TuningTest, NamesRoundTrip)
{
    for (TuningProfile p :
         {TuningProfile::Default, TuningProfile::Chrt,
          TuningProfile::Isolcpus, TuningProfile::IrqAffinity,
          TuningProfile::ExpFirmware})
        EXPECT_EQ(parseTuningProfile(tuningProfileName(p)), p);
    EXPECT_THROW(parseTuningProfile("bogus"), afa::sim::SimError);
}

} // namespace
