/**
 * @file
 * Tests for the run-plan expansion and the parallel experiment
 * runner, including the determinism regression: a run's per-SSD
 * latency summaries must be bit-identical whether the plan executes
 * serially, on one worker, or on eight, regardless of completion
 * order.
 */

#include <gtest/gtest.h>

#include "core/run_plan.hh"

using namespace afa::core;

namespace {

ExperimentParams
smallParams()
{
    ExperimentParams params;
    params.ssds = 8;
    params.runtime = afa::sim::msec(40);
    params.smartPeriod = afa::sim::msec(20);
    params.irqBalanceInterval = afa::sim::msec(20);
    params.job =
        afa::workload::FioJob::parse("rw=randread bs=4k iodepth=1");
    return params;
}

void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    ASSERT_EQ(a.perDevice.size(), b.perDevice.size());
    for (std::size_t d = 0; d < a.perDevice.size(); ++d) {
        const auto &lhs = a.perDevice[d];
        const auto &rhs = b.perDevice[d];
        EXPECT_EQ(lhs.device, rhs.device);
        EXPECT_EQ(lhs.samples, rhs.samples);
        // Bit-identical, not approximately equal: the simulations
        // must not interact across worker threads.
        EXPECT_EQ(lhs.meanUs, rhs.meanUs);
        EXPECT_EQ(lhs.stddevUs, rhs.stddevUs);
        EXPECT_EQ(lhs.minUs, rhs.minUs);
        EXPECT_EQ(lhs.maxUs, rhs.maxUs);
        for (std::size_t p = 0; p < lhs.ladderUs.size(); ++p)
            EXPECT_EQ(lhs.ladderUs[p], rhs.ladderUs[p]);
    }
    EXPECT_EQ(a.totalIos, b.totalIos);
    EXPECT_EQ(a.simulatedEvents, b.simulatedEvents);
}

TEST(RunPlanTest, ExpandsProfileAxis)
{
    RunPlan plan(smallParams());
    plan.profiles({TuningProfile::Default, TuningProfile::Chrt});
    auto runs = plan.expand();
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].label, "default");
    EXPECT_EQ(runs[1].label, "chrt");
    EXPECT_EQ(runs[0].index, 0u);
    EXPECT_EQ(runs[1].index, 1u);
    EXPECT_EQ(runs[0].params.profile, TuningProfile::Default);
    EXPECT_EQ(runs[1].params.profile, TuningProfile::Chrt);
}

TEST(RunPlanTest, ExpandsCrossProductWithSeeds)
{
    RunPlan plan(smallParams());
    plan.base().seed = 10;
    plan.profiles({TuningProfile::Default, TuningProfile::Isolcpus})
        .variants({GeometryVariant::FourPerCore,
                   GeometryVariant::OnePerCore})
        .seeds(3);
    auto runs = plan.expand();
    ASSERT_EQ(runs.size(), 2u * 2u * 3u);
    // Seed is the innermost axis.
    EXPECT_EQ(runs[0].params.seed, 10u);
    EXPECT_EQ(runs[1].params.seed, 11u);
    EXPECT_EQ(runs[2].params.seed, 12u);
    EXPECT_EQ(runs[0].label, "default/4-ssds-per-core/seed10");
    EXPECT_EQ(runs[11].label, "isolcpus/1-ssd-per-core/seed12");
    for (std::size_t i = 0; i < runs.size(); ++i)
        EXPECT_EQ(runs[i].index, i);
}

TEST(RunPlanTest, ExplicitRunsOnlyNoImplicitBase)
{
    RunPlan plan;
    plan.add("a", smallParams()).add("b", smallParams());
    auto runs = plan.expand();
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].label, "a");
    EXPECT_EQ(runs[1].label, "b");
}

TEST(RunPlanTest, ExplicitRunsReplicateAcrossSeeds)
{
    auto params = smallParams();
    params.seed = 5;
    RunPlan plan;
    plan.add("case", params).seeds(2);
    auto runs = plan.expand();
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].label, "case/seed5");
    EXPECT_EQ(runs[1].label, "case/seed6");
    EXPECT_EQ(runs[0].params.seed, 5u);
    EXPECT_EQ(runs[1].params.seed, 6u);
}

TEST(RunPlanTest, EmptyPlanRunsNothing)
{
    ParallelExperimentRunner runner(4);
    auto results = runner.run({});
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(runner.metrics().finished(), 0u);
}

TEST(ParallelRunnerTest, DeterministicAcrossWorkerCounts)
{
    RunPlan plan(smallParams());
    plan.profiles({TuningProfile::Default, TuningProfile::Chrt,
                   TuningProfile::IrqAffinity});
    auto descriptors = plan.expand();

    // Reference: the serial ExperimentRunner, no pool at all.
    std::vector<ExperimentResult> serial;
    for (const auto &desc : descriptors)
        serial.push_back(ExperimentRunner::run(desc.params));

    ParallelExperimentRunner one(1);
    auto one_worker = one.run(descriptors);

    ParallelExperimentRunner eight(8);
    auto eight_workers = eight.run(descriptors);

    ASSERT_EQ(one_worker.size(), serial.size());
    ASSERT_EQ(eight_workers.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        expectIdentical(serial[i], one_worker[i]);
        expectIdentical(serial[i], eight_workers[i]);
    }
}

TEST(ParallelRunnerTest, CollectsMetricsForEveryRun)
{
    RunPlan plan(smallParams());
    plan.profiles({TuningProfile::Default, TuningProfile::Chrt});
    auto descriptors = plan.expand();

    ParallelExperimentRunner runner(2);
    auto results = runner.run(descriptors);
    ASSERT_EQ(results.size(), 2u);

    EXPECT_EQ(runner.metrics().started(), 2u);
    EXPECT_EQ(runner.metrics().finished(), 2u);
    auto metrics = runner.metrics().snapshot();
    ASSERT_EQ(metrics.size(), 2u);
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        EXPECT_EQ(metrics[i].index, i);
        EXPECT_EQ(metrics[i].label, descriptors[i].label);
        EXPECT_EQ(metrics[i].events, results[i].simulatedEvents);
        EXPECT_GT(metrics[i].events, 0u);
        EXPECT_GE(metrics[i].wallSeconds, 0.0);
    }
    EXPECT_GT(runner.suiteWallSeconds(), 0.0);
    EXPECT_EQ(runner.metrics().totalEvents(),
              results[0].simulatedEvents +
                  results[1].simulatedEvents);

    auto table = runner.metricsTable();
    EXPECT_EQ(table.rows(), 3u); // two runs + totals
    auto json = runner.metricsJson();
    EXPECT_NE(json.find("\"runs\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"per_run\""), std::string::npos);
    EXPECT_NE(json.find(descriptors[0].label), std::string::npos);
}

TEST(ParallelRunnerTest, MergeReplicasConcatenatesDevices)
{
    auto params = smallParams();
    params.ssds = 4;
    RunPlan plan(params);
    plan.seeds(2);
    auto descriptors = plan.expand();
    ASSERT_EQ(descriptors.size(), 2u);

    ParallelExperimentRunner runner(2);
    auto results = runner.run(descriptors);

    auto merged = ParallelExperimentRunner::mergeReplicas(
        {&results[0], &results[1]});
    EXPECT_EQ(merged.perDevice.size(), 8u);
    EXPECT_EQ(merged.totalIos,
              results[0].totalIos + results[1].totalIos);
    EXPECT_EQ(merged.aggregate.devices, 8u);
    // Different seeds must actually produce different runs.
    EXPECT_NE(results[0].perDevice[0].meanUs,
              results[1].perDevice[0].meanUs);
}

TEST(ParallelRunnerTest, PlacementOverrideRunsExplicitPins)
{
    auto params = smallParams();
    params.ssds = 4;
    afa::core::Run placements{{0, 10}, {1, 11}, {2, 30}, {3, 31}};
    params.placementOverride = placements;

    auto result = ExperimentRunner::run(params);
    EXPECT_EQ(result.runs, 1u);
    EXPECT_EQ(result.perDevice.size(), 4u);
    for (const auto &summary : result.perDevice)
        EXPECT_GT(summary.samples, 0u);
}

} // namespace
