/**
 * @file
 * Perfetto/Chrome trace-event exporter tests: document structure,
 * track metadata, microsecond formatting exactness, and a golden
 * round-trip — the stage durations parsed back out of the JSON must
 * equal the durations that went in.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/perfetto.hh"
#include "obs/span_log.hh"

using namespace afa::obs;

namespace {

SpanRecord
span(Stage stage, std::uint64_t io, Tick begin, Tick end,
     std::uint16_t track, std::uint8_t flags = 0,
     std::uint32_t arg = 0)
{
    SpanRecord r;
    r.begin = begin;
    r.end = end;
    r.io = io;
    r.arg = arg;
    r.track = track;
    r.stage = static_cast<std::uint8_t>(stage);
    r.flags = flags;
    return r;
}

TEST(PerfettoTest, EmptyTraceIsValidDocument)
{
    std::string json = perfettoJson({});
    EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_EQ(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(PerfettoTest, EmitsThreadNamePerTrack)
{
    std::vector<SpanRecord> spans = {
        span(Stage::Complete, 1, 0, 100, ssdTrack(2)),
        span(Stage::SchedulerWait, 1, 0, 10, cpuTrack(5)),
        span(Stage::IrqDeliver, 1, 0, 10, cpuTrack(5)),
    };
    std::string json = perfettoJson(spans);
    // One metadata record per distinct track, named for display.
    EXPECT_NE(json.find("\"args\": {\"name\": \"cpu5\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"name\": \"nvme2\"}"),
              std::string::npos);
    std::size_t meta = 0;
    for (std::size_t p = json.find("thread_name");
         p != std::string::npos; p = json.find("thread_name", p + 1))
        ++meta;
    EXPECT_EQ(meta, 2u);
}

TEST(PerfettoTest, MicrosecondFormattingIsExact)
{
    // 1,234,567 ns = 1234.567 us: three decimals, no float rounding.
    std::vector<SpanRecord> spans = {
        span(Stage::NandRead, 9, 1234567, 2469134, ssdTrack(0)),
    };
    std::string json = perfettoJson(spans);
    EXPECT_NE(json.find("\"ts\": 1234.567"), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 1234.567"), std::string::npos);
}

TEST(PerfettoTest, FlagsAndArgsAppearInArgs)
{
    std::vector<SpanRecord> spans = {
        span(Stage::FabricComplete, 7, 0, 50, ssdTrack(1),
             kSpanFlagFastPath, 4096),
    };
    std::string json = perfettoJson(spans);
    EXPECT_NE(json.find("\"io\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"flags\": \"fast_path\""),
              std::string::npos);
    EXPECT_NE(json.find("\"arg\": 4096"), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"pcie\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"fabric_complete\""),
              std::string::npos);
}

TEST(PerfettoTest, GoldenRoundTripOfDurations)
{
    // Record a known set of spans through a SpanLog, export, then
    // parse every "dur" back out of the text and compare the sum per
    // stage name against what went in.
    // Whole-microsecond durations parse back to exact doubles.
    SpanLog log(TraceParams{kAllCategories, 64});
    Tick nand_total = 0;
    Tick irq_total = 0;
    for (Tick i = 1; i <= 10; ++i) {
        log.record(Stage::NandRead, i, i * 100, i * 100 + i * 3000,
                   ssdTrack(0));
        nand_total += i * 3000;
        log.record(Stage::IrqDeliver, i, i * 200, i * 200 + i * 1000,
                   cpuTrack(1));
        irq_total += i * 1000;
    }
    std::string json = perfettoJson(log.snapshot());

    auto sum_for = [&json](const char *stage_name) {
        double total_us = 0.0;
        std::string needle =
            std::string("\"name\": \"") + stage_name + "\"";
        for (std::size_t p = json.find(needle);
             p != std::string::npos;
             p = json.find(needle, p + 1)) {
            std::size_t d = json.find("\"dur\": ", p);
            total_us += std::strtod(json.c_str() + d + 7, nullptr);
        }
        return total_us;
    };
    EXPECT_DOUBLE_EQ(sum_for("nand_read") * 1000.0,
                     static_cast<double>(nand_total));
    EXPECT_DOUBLE_EQ(sum_for("irq_deliver") * 1000.0,
                     static_cast<double>(irq_total));
}

TEST(PerfettoTest, WriteCreatesParseableFile)
{
    std::vector<SpanRecord> spans = {
        span(Stage::Complete, 1, 0, 1000, ssdTrack(0)),
    };
    std::string path = ::testing::TempDir() + "perfetto_test.json";
    ASSERT_TRUE(writePerfettoJson(path, spans));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), perfettoJson(spans));
    std::remove(path.c_str());
}

TEST(PerfettoTest, UnwritablePathReturnsFalse)
{
    EXPECT_FALSE(writePerfettoJson("/nonexistent-dir/trace.json", {}));
}

} // namespace
