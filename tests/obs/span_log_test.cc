/**
 * @file
 * SpanLog unit tests: category gating, ring growth and wrap-around
 * drop accounting, snapshot ordering, and the exactness of the
 * attribution accumulators under ring drops.
 */

#include <gtest/gtest.h>

#include "obs/span_log.hh"

using namespace afa::obs;

namespace {

TraceParams
params(std::uint32_t mask, std::size_t capacity)
{
    TraceParams p;
    p.mask = mask;
    p.capacity = capacity;
    return p;
}

TEST(SpanLogTest, DisabledMaskRecordsNothing)
{
    SpanLog log(params(0, 16));
    EXPECT_FALSE(log.wants(Category::Workload));
    log.record(Stage::Complete, 1, 0, 100, cpuTrack(0));
    EXPECT_EQ(log.recorded(), 0u);
    EXPECT_EQ(log.retained(), 0u);
    EXPECT_TRUE(log.attribution().empty());
}

TEST(SpanLogTest, CategoryGatingIsPerStage)
{
    SpanLog log(params(categoryBit(Category::Irq), 16));
    EXPECT_TRUE(log.wants(Category::Irq));
    EXPECT_FALSE(log.wants(Category::Sched));
    log.record(Stage::IrqDeliver, 1, 0, 10, cpuTrack(0));
    log.record(Stage::SchedulerWait, 1, 0, 10, cpuTrack(0));
    ASSERT_EQ(log.recorded(), 1u);
    EXPECT_EQ(log.snapshot()[0].stageId(), Stage::IrqDeliver);
}

TEST(SpanLogTest, RecordsCarryAllFields)
{
    SpanLog log(params(kAllCategories, 16));
    log.record(Stage::NandRead, 42, 100, 250, ssdTrack(3),
               kSpanFlagRemote, 7);
    auto spans = log.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].io, 42u);
    EXPECT_EQ(spans[0].begin, 100u);
    EXPECT_EQ(spans[0].end, 250u);
    EXPECT_EQ(spans[0].duration(), 150u);
    EXPECT_EQ(spans[0].track, ssdTrack(3));
    EXPECT_EQ(spans[0].flags, kSpanFlagRemote);
    EXPECT_EQ(spans[0].arg, 7u);
}

TEST(SpanLogTest, RingWrapDropsOldestAndCounts)
{
    SpanLog log(params(kAllCategories, 4));
    for (std::uint64_t i = 0; i < 10; ++i)
        log.record(Stage::Complete, i, i * 10, i * 10 + 5,
                   cpuTrack(0));
    EXPECT_EQ(log.recorded(), 10u);
    EXPECT_EQ(log.dropped(), 6u);
    EXPECT_EQ(log.retained(), 4u);
    EXPECT_EQ(log.capacity(), 4u);

    // Snapshot returns the newest 4 records, oldest first.
    auto spans = log.snapshot();
    ASSERT_EQ(spans.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(spans[i].io, 6 + i);
}

TEST(SpanLogTest, AttributionStaysExactAcrossDrops)
{
    SpanLog log(params(kAllCategories, 2));
    Tick total = 0;
    for (std::uint64_t i = 1; i <= 100; ++i) {
        log.record(Stage::MediaRead, i, 0, i, ssdTrack(0));
        total += i;
    }
    EXPECT_EQ(log.dropped(), 98u);
    const Attribution attr = log.attribution();
    const StageTotals &media = attr.stage(Stage::MediaRead);
    EXPECT_EQ(media.count, 100u);
    EXPECT_EQ(media.totalTicks, total);
    EXPECT_EQ(media.maxTicks, 100u);
}

TEST(SpanLogTest, ClearResetsEverything)
{
    SpanLog log(params(kAllCategories, 8));
    for (int i = 0; i < 20; ++i)
        log.record(Stage::Complete, 1, 0, 10, cpuTrack(0));
    log.clear();
    EXPECT_EQ(log.recorded(), 0u);
    EXPECT_EQ(log.dropped(), 0u);
    EXPECT_EQ(log.retained(), 0u);
    EXPECT_TRUE(log.attribution().empty());
    // Still usable after clear.
    log.record(Stage::Complete, 2, 0, 10, cpuTrack(0));
    EXPECT_EQ(log.recorded(), 1u);
}

TEST(SpanLogTest, GrowthPhaseKeepsEverythingUpToCapacity)
{
    // More than the initial 1024-slot allocation but under capacity:
    // nothing may drop while the ring is still growing.
    SpanLog log(params(kAllCategories, 4096));
    for (std::uint64_t i = 0; i < 3000; ++i)
        log.record(Stage::Complete, i, 0, 1, cpuTrack(0));
    EXPECT_EQ(log.recorded(), 3000u);
    EXPECT_EQ(log.dropped(), 0u);
    EXPECT_EQ(log.retained(), 3000u);
    auto spans = log.snapshot();
    EXPECT_EQ(spans.front().io, 0u);
    EXPECT_EQ(spans.back().io, 2999u);
}

TEST(SpanLogTest, StageCategoryMapCoversEveryStage)
{
    // Every stage must be recordable under the all-categories mask.
    SpanLog log(params(kAllCategories, 64));
    for (unsigned i = 0; i < kStageCount; ++i)
        log.record(static_cast<Stage>(i), 1, 0, 1, cpuTrack(0));
    EXPECT_EQ(log.recorded(), kStageCount);
}

} // namespace
