/**
 * @file
 * Attribution accumulator tests: exact totals, merge associativity,
 * the coarse log2 quantile, and the report table's share-of-IO
 * arithmetic.
 */

#include <gtest/gtest.h>

#include "obs/attribution.hh"

using namespace afa::obs;

namespace {

TEST(StageTotalsTest, AddTracksCountTotalMax)
{
    StageTotals t;
    t.add(10);
    t.add(30);
    t.add(20);
    EXPECT_EQ(t.count, 3u);
    EXPECT_EQ(t.totalTicks, 60u);
    EXPECT_EQ(t.maxTicks, 30u);
    EXPECT_DOUBLE_EQ(t.meanTicks(), 20.0);
}

TEST(StageTotalsTest, QuantileFindsTheRightBucket)
{
    StageTotals t;
    // 99 short spans (~100 ticks: bucket 7, upper bound 127) and one
    // huge one (~1e6 ticks: bucket 20, upper bound 2^20 - 1).
    for (int i = 0; i < 99; ++i)
        t.add(100);
    t.add(1000000);
    EXPECT_EQ(t.approxQuantileTicks(0.5), 127u);
    EXPECT_EQ(t.approxQuantileTicks(0.99), (Tick(1) << 20) - 1);
    EXPECT_EQ(t.approxQuantileTicks(0.0), 127u);
}

TEST(StageTotalsTest, EmptyQuantileIsZero)
{
    StageTotals t;
    EXPECT_EQ(t.approxQuantileTicks(0.99), 0u);
    EXPECT_DOUBLE_EQ(t.meanTicks(), 0.0);
}

TEST(StageTotalsTest, MergeEqualsSequentialAdds)
{
    StageTotals a;
    StageTotals b;
    StageTotals both;
    for (Tick d : {5u, 50u, 500u}) {
        a.add(d);
        both.add(d);
    }
    for (Tick d : {7u, 70u, 700000u}) {
        b.add(d);
        both.add(d);
    }
    a.merge(b);
    EXPECT_EQ(a.count, both.count);
    EXPECT_EQ(a.totalTicks, both.totalTicks);
    EXPECT_EQ(a.maxTicks, both.maxTicks);
    EXPECT_EQ(a.buckets, both.buckets);
}

TEST(AttributionTest, EmptyUntilFirstAdd)
{
    Attribution attr;
    EXPECT_TRUE(attr.empty());
    attr.add(Stage::MediaRead, 10);
    EXPECT_FALSE(attr.empty());
    EXPECT_EQ(attr.stage(Stage::MediaRead).count, 1u);
    EXPECT_EQ(attr.stage(Stage::Complete).count, 0u);
}

TEST(AttributionTest, MergeCombinesPerStage)
{
    Attribution a;
    a.add(Stage::Complete, 100);
    a.add(Stage::SchedulerWait, 40);
    Attribution b;
    b.add(Stage::Complete, 300);
    b.add(Stage::IrqDeliver, 10);
    a.merge(b);
    EXPECT_EQ(a.stage(Stage::Complete).count, 2u);
    EXPECT_EQ(a.stage(Stage::Complete).totalTicks, 400u);
    EXPECT_EQ(a.stage(Stage::SchedulerWait).totalTicks, 40u);
    EXPECT_EQ(a.stage(Stage::IrqDeliver).totalTicks, 10u);
}

TEST(AttributionTest, TableSkipsEmptyStagesAndShowsShares)
{
    Attribution attr;
    attr.add(Stage::Complete, 1000);
    attr.add(Stage::SchedulerWait, 250);
    std::string text = attr.toText();
    EXPECT_NE(text.find("complete"), std::string::npos);
    EXPECT_NE(text.find("sched_wait"), std::string::npos);
    // 250 / 1000 of the IO total.
    EXPECT_NE(text.find("25.0"), std::string::npos);
    // Untouched stages do not produce rows.
    EXPECT_EQ(text.find("nand_read"), std::string::npos);
}

} // namespace
