/**
 * @file
 * Telemetry unit tests: windowed per-stage histograms stay exact
 * across SpanLog ring wraps and drops, ACT exceed counters are exact
 * at the millisecond thresholds, counter/gauge sources sample into
 * per-window deltas on a live Simulator, timelines merge with
 * commutative rules, and the Perfetto counter tracks round-trip the
 * windowed values.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/perfetto.hh"
#include "obs/span_log.hh"
#include "obs/telemetry.hh"
#include "sim/simulator.hh"
#include "sim/types.hh"

using namespace afa::obs;
using afa::sim::msec;
using afa::sim::Tick;

namespace {

TEST(TelemetryTest, WindowedCountsExactAcrossRingWrapAndDrops)
{
    // A tiny 8-record ring wraps hundreds of times; the windowed
    // histograms are fed per record (like the Attribution
    // accumulators), so every windowed count must survive the drops.
    SpanLog log(TraceParams{kAllCategories, 8});
    Telemetry telemetry(TelemetryParams{msec(1), 1});
    log.setTelemetry(&telemetry);

    std::uint64_t expected_total[3] = {0, 0, 0};
    for (std::uint64_t i = 0; i < 300; ++i) {
        const Tick end = static_cast<Tick>(i) * 10000; // 10 us apart
        const Tick duration = 500 + i;
        log.record(Stage::Complete, i, end - duration, end, 3);
        expected_total[end / msec(1)] += duration;
    }
    EXPECT_EQ(log.recorded(), 300u);
    EXPECT_GT(log.dropped(), 0u);
    EXPECT_LT(log.retained(), 300u);

    const TelemetryTimeline tl = telemetry.timeline();
    ASSERT_EQ(tl.stages.size(), 3u);
    const auto stage_id =
        static_cast<std::uint8_t>(Stage::Complete);
    for (std::uint64_t w = 0; w < 3; ++w) {
        const auto &cell = tl.stages.at(w).at(stage_id);
        EXPECT_EQ(cell.count, 100u) << "window " << w;
        EXPECT_EQ(cell.totalTicks, expected_total[w]) << "window "
                                                      << w;
    }
}

TEST(TelemetryTest, ActExceedCountersAreExactAtThresholds)
{
    // Millisecond thresholds are not log2 boundaries in ticks, so
    // exceed[] must come from exact comparisons: a duration of
    // exactly 1 ms is NOT an excess, 1 ms + 1 tick is.
    WindowStageCell cell;
    cell.add(actThresholdTicks(0));     // == 1 ms: no bucket
    cell.add(actThresholdTicks(0) + 1); // > 1 ms only
    cell.add(actThresholdTicks(2) + 1); // > 1, 2, 4 ms
    cell.add(msec(300));                // > every threshold

    EXPECT_EQ(cell.count, 4u);
    EXPECT_EQ(cell.exceed[0], 3u); // > 1 ms
    EXPECT_EQ(cell.exceed[1], 2u); // > 2 ms
    EXPECT_EQ(cell.exceed[2], 2u); // > 4 ms
    for (unsigned k = 3; k < kActThresholds; ++k)
        EXPECT_EQ(cell.exceed[k], 1u) << "threshold " << k;
}

TEST(TelemetryTest, QuantilesLandInTheRightLog2Bucket)
{
    // 90 fast ops (bit_width 7: [64, 127]) and 10 slow ones
    // (bit_width 14): p50 must interpolate inside the fast bucket,
    // p99/p999 inside the slow one, capped by the observed max.
    WindowStageCell cell;
    for (int i = 0; i < 90; ++i)
        cell.add(100);
    for (int i = 0; i < 10; ++i)
        cell.add(10000);

    const Tick p50 = cell.quantileTicks(0.50);
    const Tick p99 = cell.quantileTicks(0.99);
    const Tick p999 = cell.quantileTicks(0.999);
    EXPECT_GE(p50, 64u);
    EXPECT_LE(p50, 127u);
    EXPECT_GE(p99, 8192u);
    EXPECT_LE(p99, 10000u);
    EXPECT_LE(p99, p999);
    EXPECT_EQ(cell.maxTicks, 10000u);
    EXPECT_EQ(cell.quantileTicks(1.0), 10000u);
}

TEST(TelemetryTest, CounterDeltasAndGaugesSampleOnTheSimulator)
{
    // Window boundaries at 1000-tick cadence; a model counter bumps
    // at known ticks; the timeline must report per-window deltas,
    // instantaneous gauge values, and a trailing partial window from
    // finish().
    afa::sim::Simulator sim(1, 1);
    Telemetry telemetry(TelemetryParams{1000, 1});
    std::uint64_t ops = 0;
    telemetry.addCounter("test.ops", [&ops] { return ops; });
    telemetry.addGauge("test.depth",
                       [&ops] { return static_cast<double>(ops); });

    sim.scheduleAt(100, [&ops] { ops += 1; });
    sim.scheduleAt(1100, [&ops] { ops += 2; });
    sim.scheduleAt(2100, [&ops] { ops += 4; });
    sim.scheduleAt(3500, [] {}); // advances the clock past window 3
    telemetry.start(sim);
    sim.run(3600);
    telemetry.finish();

    const TelemetryTimeline tl = telemetry.timeline();
    ASSERT_NE(tl.seriesPoint("test.ops", 0), nullptr);
    EXPECT_EQ(tl.seriesPoint("test.ops", 0)->delta, 1u);
    EXPECT_EQ(tl.seriesPoint("test.ops", 1)->delta, 2u);
    EXPECT_EQ(tl.seriesPoint("test.ops", 2)->delta, 4u);
    // The trailing partial window sampled by finish(): no new ops.
    ASSERT_NE(tl.seriesPoint("test.ops", 3), nullptr);
    EXPECT_EQ(tl.seriesPoint("test.ops", 3)->delta, 0u);

    EXPECT_DOUBLE_EQ(tl.seriesPoint("test.depth", 0)->value, 1.0);
    EXPECT_DOUBLE_EQ(tl.seriesPoint("test.depth", 1)->value, 3.0);
    EXPECT_DOUBLE_EQ(tl.seriesPoint("test.depth", 2)->value, 7.0);
    EXPECT_DOUBLE_EQ(tl.seriesPoint("test.depth", 3)->value, 7.0);

    EXPECT_EQ(tl.seriesPoint("test.ops", 99), nullptr);
    EXPECT_EQ(tl.seriesPoint("absent", 0), nullptr);

    // The self-profiling stream: window 0 executed exactly one model
    // event (the tick-100 bump); sampling events are plumbing.
    ASSERT_TRUE(tl.sim.count(0));
    ASSERT_EQ(tl.sim.at(0).shards.size(), 1u);
    EXPECT_EQ(tl.sim.at(0).shards[0].executedEvents, 1u);
    EXPECT_GT(tl.sim.at(0).shards[0].plumbingEvents, 0u);
}

TEST(TelemetryTest, SamplingEventsDoNotCountAsExecuted)
{
    // With no model events at all, a telemetry-only run must report
    // zero executed events in every window.
    afa::sim::Simulator sim(1, 1);
    Telemetry telemetry(TelemetryParams{1000, 1});
    telemetry.start(sim);
    sim.run(5000);
    telemetry.finish();
    EXPECT_EQ(sim.executedEvents(), 0u);
    for (const auto &[w, sw] : telemetry.timeline().sim)
        for (const auto &st : sw.shards)
            EXPECT_EQ(st.executedEvents, 0u) << "window " << w;
}

TEST(TelemetryTest, MergeAddsCellsAndCountersAndKeepsGaugeMax)
{
    TelemetryTimeline a;
    a.window = msec(1);
    a.stages[0][0].add(100);
    a.series["ops"].kind = MetricKind::Counter;
    a.series["ops"].points[0].delta = 5;
    a.series["depth"].kind = MetricKind::Gauge;
    a.series["depth"].points[0].value = 2.0;
    a.sim[0].shards.resize(1);
    a.sim[0].shards[0].executedEvents = 10;

    TelemetryTimeline b;
    b.window = msec(1);
    b.stages[0][0].add(300);
    b.stages[1][0].add(50);
    b.series["ops"].kind = MetricKind::Counter;
    b.series["ops"].points[0].delta = 7;
    b.series["depth"].kind = MetricKind::Gauge;
    b.series["depth"].points[0].value = 9.0;
    b.sim[0].shards.resize(1);
    b.sim[0].shards[0].executedEvents = 4;

    a.merge(b);
    EXPECT_EQ(a.stages[0][0].count, 2u);
    EXPECT_EQ(a.stages[0][0].totalTicks, 400u);
    EXPECT_EQ(a.stages[1][0].count, 1u);
    EXPECT_EQ(a.series["ops"].points[0].delta, 12u);
    EXPECT_DOUBLE_EQ(a.series["depth"].points[0].value, 9.0);
    EXPECT_EQ(a.sim[0].shards[0].executedEvents, 14u);

    // Merge is usable on a default-constructed accumulator too.
    TelemetryTimeline fresh;
    fresh.merge(a);
    EXPECT_EQ(fresh.window, msec(1));
    EXPECT_EQ(fresh.stages[0][0].count, 2u);
}

TEST(TelemetryTest, ExportsShareOneRowSetAcrossFormats)
{
    TelemetryTimeline tl;
    tl.window = msec(1);
    tl.stages[0][static_cast<std::uint8_t>(Stage::Complete)].add(
        50000);
    tl.series["ops"].kind = MetricKind::Counter;
    tl.series["ops"].points[0].delta = 5;

    const std::string jsonl = tl.toJsonLines();
    EXPECT_NE(jsonl.find("\"kind\":\"header\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"window_ms\":1.000"), std::string::npos);
    EXPECT_NE(jsonl.find("\"stage\":\"complete\",\"count\":1"),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"name\":\"ops\",\"delta\":5"),
              std::string::npos);

    // The CSV carries the same three rows under its fixed header.
    const std::string csv = tl.toCsv();
    EXPECT_EQ(csv.find("window,end_ms,kind,name,count,"), 0u);
    EXPECT_NE(csv.find("exceed_128ms"), std::string::npos);
    const auto lines = [](const std::string &s) {
        std::size_t n = 0;
        for (char c : s)
            n += c == '\n';
        return n;
    };
    EXPECT_EQ(lines(csv), 3u);   // header + stage + counter
    EXPECT_EQ(lines(jsonl), 3u); // header row + the same two

    // toJson wraps the same rows as an array for --metrics-json.
    const std::string json = tl.toJson("  ");
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"kind\":\"stage\""), std::string::npos);
}

TEST(TelemetryTest, PerfettoCounterTracksGoldenRoundTrip)
{
    // Windowed series become "C" (counter) events stamped at the
    // window's end; the values parsed back out of the JSON must sum
    // to the deltas that went in.
    TelemetryTimeline tl;
    tl.window = msec(1);
    tl.series["io.done"].kind = MetricKind::Counter;
    tl.series["io.done"].points[0].delta = 5;
    tl.series["io.done"].points[1].delta = 7;
    tl.series["queue.depth"].kind = MetricKind::Gauge;
    tl.series["queue.depth"].points[0].value = 3.5;
    auto &cell = tl.stages[0][static_cast<std::uint8_t>(
        Stage::Complete)];
    for (int i = 0; i < 3; ++i)
        cell.add(20000);

    const std::string json = perfettoJson({}, &tl);

    // Window 0 ends at 1 ms = 1000.000 us; window 1 at 2000.000 us.
    EXPECT_NE(json.find("\"ph\": \"C\", \"pid\": 1, \"name\": "
                        "\"io.done\", \"ts\": 1000.000, "
                        "\"args\": {\"value\": 5}"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"io.done\", \"ts\": 2000.000, "
                        "\"args\": {\"value\": 7}"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"queue.depth\", "
                        "\"ts\": 1000.000, "
                        "\"args\": {\"value\": 3.5}"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"stage.complete.ops\", "
                        "\"ts\": 1000.000, \"args\": {\"value\": 3}"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"stage.complete.p99_us\""),
              std::string::npos);

    // Round-trip: every io.done counter sample parsed back, summed.
    std::uint64_t total = 0;
    const std::string needle = "\"name\": \"io.done\"";
    const std::string vkey = "\"value\": ";
    for (std::size_t p = json.find(needle); p != std::string::npos;
         p = json.find(needle, p + 1)) {
        const std::size_t v = json.find(vkey, p);
        ASSERT_NE(v, std::string::npos);
        total += std::strtoull(json.c_str() + v + vkey.size(),
                               nullptr, 10);
    }
    EXPECT_EQ(total, 12u);

    // A null timeline or an empty one adds no counter events.
    EXPECT_EQ(perfettoJson({}).find("\"ph\": \"C\""),
              std::string::npos);
    TelemetryTimeline empty;
    EXPECT_EQ(perfettoJson({}, &empty).find("\"ph\": \"C\""),
              std::string::npos);
}

} // namespace
