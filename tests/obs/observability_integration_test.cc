/**
 * @file
 * Observability end-to-end invariants on a reduced testbed:
 *  - enabling tracing must not change simulation results (the
 *    determinism contract: only telemetry differs);
 *  - attribution and system metrics are identical at any --jobs
 *    worker count;
 *  - the per-stage decomposition reflects the paper's narrative —
 *    the default kernel's tail comes from scheduler/IRQ stages.
 */

#include <gtest/gtest.h>

#include "core/run_plan.hh"
#include "obs/span_log.hh"
#include "sim/logging.hh"

using namespace afa::core;
using afa::sim::msec;

namespace {

ExperimentParams
smallParams(std::uint32_t trace_mask)
{
    ExperimentParams p;
    p.profile = TuningProfile::Default;
    p.ssds = 8;
    p.runtime = msec(400);
    p.smartPeriod = msec(200);
    p.irqBalanceInterval = msec(200);
    p.seed = 99;
    p.traceMask = trace_mask;
    return p;
}

std::string
ladder(const ExperimentResult &r)
{
    std::string out;
    for (const auto &dev : r.perDevice)
        for (double us : dev.ladderUs)
            out += afa::sim::strfmt("%.6f,", us);
    return out;
}

TEST(ObservabilityIntegrationTest, TracingDoesNotChangeResults)
{
    auto off = ExperimentRunner::run(smallParams(0));
    auto on = ExperimentRunner::run(
        smallParams(afa::obs::kAllCategories));
    EXPECT_EQ(off.totalIos, on.totalIos);
    EXPECT_EQ(off.simulatedEvents, on.simulatedEvents);
    EXPECT_EQ(ladder(off), ladder(on));
    // Only the traced run carries telemetry.
    EXPECT_TRUE(off.attribution.empty());
    EXPECT_TRUE(off.systemMetrics.empty());
    EXPECT_FALSE(on.attribution.empty());
    EXPECT_GT(on.systemMetrics.counter("obs.spans_recorded"), 0u);
}

TEST(ObservabilityIntegrationTest, AttributionIdenticalAcrossJobs)
{
    RunPlan plan(smallParams(afa::obs::kAllCategories));
    plan.seeds(2);
    auto descriptors = plan.expand();

    ParallelExperimentRunner serial(1);
    ParallelExperimentRunner parallel(4);
    auto r1 = serial.run(descriptors);
    auto r4 = parallel.run(descriptors);
    ASSERT_EQ(r1.size(), r4.size());
    for (std::size_t i = 0; i < r1.size(); ++i) {
        EXPECT_EQ(ladder(r1[i]), ladder(r4[i]));
        for (unsigned s = 0; s < afa::obs::kStageCount; ++s) {
            const auto &a = r1[i].attribution.stages[s];
            const auto &b = r4[i].attribution.stages[s];
            EXPECT_EQ(a.count, b.count);
            EXPECT_EQ(a.totalTicks, b.totalTicks);
            EXPECT_EQ(a.maxTicks, b.maxTicks);
        }
        EXPECT_EQ(r1[i].systemMetrics.toJson(),
                  r4[i].systemMetrics.toJson());
    }
}

TEST(ObservabilityIntegrationTest, MergeReplicasCombinesTelemetry)
{
    auto a = ExperimentRunner::run(smallParams(
        afa::obs::kAllCategories));
    auto b_params = smallParams(afa::obs::kAllCategories);
    b_params.seed = 100;
    auto b = ExperimentRunner::run(b_params);

    auto merged = ParallelExperimentRunner::mergeReplicas({&a, &b});
    using afa::obs::Stage;
    EXPECT_EQ(merged.attribution.stage(Stage::Complete).count,
              a.attribution.stage(Stage::Complete).count +
                  b.attribution.stage(Stage::Complete).count);
    EXPECT_EQ(merged.systemMetrics.counter("irq.delivered"),
              a.systemMetrics.counter("irq.delivered") +
                  b.systemMetrics.counter("irq.delivered"));
}

TEST(ObservabilityIntegrationTest, KeepSpansRetainsFirstRunTimeline)
{
    auto p = smallParams(afa::obs::kAllCategories);
    p.keepSpans = true;
    p.traceCapacity = 1 << 16;
    auto result = ExperimentRunner::run(p);
    ASSERT_FALSE(result.spans.empty());
    // Every span window is well-formed and every Complete span has a
    // non-zero IO tag.
    for (const auto &s : result.spans) {
        EXPECT_LE(s.begin, s.end);
        if (s.stageId() == afa::obs::Stage::Complete) {
            EXPECT_NE(s.io, 0u);
        }
    }

    auto no_keep = smallParams(afa::obs::kAllCategories);
    auto without = ExperimentRunner::run(no_keep);
    EXPECT_TRUE(without.spans.empty());
    EXPECT_EQ(result.totalIos, without.totalIos);
}

TEST(ObservabilityIntegrationTest, DefaultKernelTailLivesInHostStages)
{
    // The paper's Section IV diagnosis: under the default kernel the
    // multi-millisecond tail comes from scheduler wait and IRQ
    // delivery, not the SSDs. The per-stage max must show a host-side
    // stage (sched/irq) excursion far above the device-side maxima.
    // Needs enough devices that fio threads contend per core; with 8
    // SSDs on this reduced testbed the scheduler stays quiet.
    auto p = smallParams(afa::obs::kAllCategories);
    p.ssds = 16;
    auto result = ExperimentRunner::run(p);
    using afa::obs::Stage;
    const auto &attr = result.attribution;
    afa::sim::Tick host_max =
        std::max(attr.stage(Stage::SchedulerWait).maxTicks,
                 attr.stage(Stage::IrqDeliver).maxTicks);
    afa::sim::Tick device_max =
        std::max(attr.stage(Stage::MediaRead).maxTicks,
                 attr.stage(Stage::DeviceXfer).maxTicks);
    EXPECT_GT(attr.stage(Stage::Complete).maxTicks,
              afa::sim::usec(300));
    EXPECT_GT(host_max, device_max);
}

} // namespace
