/**
 * @file
 * MetricsRegistry / MetricsSnapshot unit tests: cell kinds, ordered
 * snapshots, merge semantics (counters add, gauges keep max,
 * histograms combine), and the JSON emission with label escaping.
 */

#include <gtest/gtest.h>

#include "obs/metrics.hh"
#include "sim/logging.hh"

using namespace afa::obs;

namespace {

TEST(MetricsRegistryTest, CountersAccumulate)
{
    MetricsRegistry reg;
    reg.addCounter("fabric.packets", 3);
    reg.addCounter("fabric.packets", 4);
    auto snap = reg.snapshot();
    EXPECT_EQ(snap.counter("fabric.packets"), 7u);
    EXPECT_EQ(snap.counter("absent"), 0u);
}

TEST(MetricsRegistryTest, GaugesKeepLastValue)
{
    MetricsRegistry reg;
    reg.setGauge("sched.load", 1.5);
    reg.setGauge("sched.load", 0.25);
    auto snap = reg.snapshot();
    const MetricSample *s = snap.find("sched.load");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, MetricKind::Gauge);
    EXPECT_DOUBLE_EQ(s->value, 0.25);
}

TEST(MetricsRegistryTest, HistogramsBucketByLog2)
{
    MetricsRegistry reg;
    reg.recordValue("lat", 0);
    reg.recordValue("lat", 1);
    reg.recordValue("lat", 3);
    reg.recordValue("lat", 1000);
    auto snap = reg.snapshot();
    const MetricSample *s = snap.find("lat");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, MetricKind::Histogram);
    EXPECT_EQ(s->count, 4u);
    EXPECT_DOUBLE_EQ(s->value, 1004.0);
    EXPECT_EQ(s->histMax, 1000u);
    // bit_width: 0->0, 1->1, 3->2, 1000->10.
    ASSERT_EQ(s->buckets.size(), 4u);
    EXPECT_EQ(s->buckets[0], std::make_pair(0u, std::uint64_t(1)));
    EXPECT_EQ(s->buckets[3], std::make_pair(10u, std::uint64_t(1)));
}

TEST(MetricsRegistryTest, SnapshotIsNameOrdered)
{
    MetricsRegistry reg;
    reg.addCounter("z.last", 1);
    reg.addCounter("a.first", 1);
    reg.addCounter("m.middle", 1);
    auto snap = reg.snapshot();
    ASSERT_EQ(snap.samples.size(), 3u);
    EXPECT_EQ(snap.samples[0].name, "a.first");
    EXPECT_EQ(snap.samples[1].name, "m.middle");
    EXPECT_EQ(snap.samples[2].name, "z.last");
}

TEST(MetricsRegistryTest, KindMismatchPanics)
{
    afa::sim::setThrowOnError(true);
    MetricsRegistry reg;
    reg.addCounter("x", 1);
    EXPECT_THROW(reg.setGauge("x", 1.0), std::runtime_error);
    afa::sim::setThrowOnError(false);
}

TEST(MetricsSnapshotTest, MergeAddsCountersKeepsMaxGauge)
{
    MetricsRegistry a;
    a.addCounter("c", 10);
    a.setGauge("g", 2.0);
    a.recordValue("h", 4);
    MetricsRegistry b;
    b.addCounter("c", 5);
    b.addCounter("only_b", 1);
    b.setGauge("g", 1.0);
    b.recordValue("h", 4);

    MetricsSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.counter("c"), 15u);
    EXPECT_EQ(merged.counter("only_b"), 1u);
    EXPECT_DOUBLE_EQ(merged.find("g")->value, 2.0);
    const MetricSample *h = merged.find("h");
    EXPECT_EQ(h->count, 2u);
    ASSERT_EQ(h->buckets.size(), 1u);
    EXPECT_EQ(h->buckets[0].second, 2u);
}

TEST(MetricsSnapshotTest, MergeIsCommutativeOnDisjointSets)
{
    MetricsRegistry a;
    a.addCounter("a.n", 1);
    MetricsRegistry b;
    b.addCounter("b.n", 2);
    MetricsSnapshot ab = a.snapshot();
    ab.merge(b.snapshot());
    MetricsSnapshot ba = b.snapshot();
    ba.merge(a.snapshot());
    ASSERT_EQ(ab.samples.size(), 2u);
    ASSERT_EQ(ba.samples.size(), 2u);
    EXPECT_EQ(ab.samples[0].name, ba.samples[0].name);
    EXPECT_EQ(ab.samples[1].name, ba.samples[1].name);
}

TEST(MetricsSnapshotTest, AbsorbFoldsBackIntoRegistry)
{
    MetricsRegistry a;
    a.addCounter("c", 3);
    MetricsRegistry total;
    total.addCounter("c", 4);
    total.absorb(a.snapshot());
    EXPECT_EQ(total.snapshot().counter("c"), 7u);
}

TEST(MetricsSnapshotTest, ToJsonEscapesLabels)
{
    MetricsRegistry reg;
    reg.addCounter("weird\"name\\with\nstuff", 1);
    std::string json = reg.snapshot().toJson();
    // The label reaches the document with every special escaped, so
    // no raw quote/backslash/newline can break the JSON string.
    EXPECT_NE(json.find("weird\\\"name\\\\with\\nstuff"),
              std::string::npos);
}

TEST(MetricsSnapshotTest, ToJsonIsWellFormedForAllKinds)
{
    MetricsRegistry reg;
    reg.addCounter("c", 1);
    reg.setGauge("g", 1.25);
    reg.recordValue("h", 9);
    std::string json = reg.snapshot().toJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"c\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"g\": 1.25"), std::string::npos);
    EXPECT_NE(json.find("\"h\""), std::string::npos);
}

} // namespace
