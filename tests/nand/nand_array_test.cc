/**
 * @file
 * NAND package tests: operation timing, die/channel serialisation,
 * parallelism across dies, and address checking.
 */

#include <gtest/gtest.h>

#include <vector>

#include "nand/nand_array.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using afa::nand::NandArray;
using afa::nand::NandParams;
using afa::nand::PageAddr;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::sim::usec;

namespace {

NandParams
tightParams()
{
    NandParams p;
    p.readSigma = 0.0;    // deterministic timing for the tests
    p.programSigma = 0.0;
    p.eraseSigma = 0.0;
    return p;
}

class NandArrayTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    Simulator sim{3};
};

TEST_F(NandArrayTest, ReadTimingIsTrPlusTransfer)
{
    NandArray nand(sim, "nand", tightParams());
    Tick done = 0;
    nand.read(PageAddr{0, 0, 0, 0}, 4096, [&] { done = sim.now(); });
    sim.run();
    const auto &p = nand.params();
    Tick xfer = static_cast<Tick>(4096.0 / (p.channelMBps * 1e6) * 1e9);
    EXPECT_EQ(done, p.readLatency + xfer);
    EXPECT_EQ(nand.stats().reads, 1u);
}

TEST_F(NandArrayTest, SameDieReadsSerialise)
{
    NandArray nand(sim, "nand", tightParams());
    std::vector<Tick> done;
    for (int i = 0; i < 3; ++i)
        nand.read(PageAddr{0, 0, 0, static_cast<std::uint32_t>(i)},
                  4096, [&] { done.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(done.size(), 3u);
    const Tick t_r = nand.params().readLatency;
    EXPECT_EQ(done[1] - done[0], t_r);
    EXPECT_EQ(done[2] - done[1], t_r);
}

TEST_F(NandArrayTest, DifferentDiesReadInParallel)
{
    NandArray nand(sim, "nand", tightParams());
    std::vector<Tick> done;
    // Same channel, different dies: tR overlaps, transfers serialise.
    nand.read(PageAddr{0, 0, 0, 0}, 4096,
              [&] { done.push_back(sim.now()); });
    nand.read(PageAddr{0, 1, 0, 0}, 4096,
              [&] { done.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(done.size(), 2u);
    Tick xfer = static_cast<Tick>(
        4096.0 / (nand.params().channelMBps * 1e6) * 1e9);
    EXPECT_EQ(done[1] - done[0], xfer);
}

TEST_F(NandArrayTest, DifferentChannelsFullyParallel)
{
    NandArray nand(sim, "nand", tightParams());
    std::vector<Tick> done;
    nand.read(PageAddr{0, 0, 0, 0}, 4096,
              [&] { done.push_back(sim.now()); });
    nand.read(PageAddr{1, 0, 0, 0}, 4096,
              [&] { done.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], done[1]);
}

TEST_F(NandArrayTest, ProgramOccupiesChannelThenDie)
{
    NandArray nand(sim, "nand", tightParams());
    Tick done = 0;
    nand.program(PageAddr{0, 0, 0, 0}, 16384, [&] { done = sim.now(); });
    sim.run();
    const auto &p = nand.params();
    Tick xfer = static_cast<Tick>(16384.0 / (p.channelMBps * 1e6) * 1e9);
    EXPECT_EQ(done, xfer + p.programLatency);
    EXPECT_EQ(nand.stats().programs, 1u);
}

TEST_F(NandArrayTest, EraseTiming)
{
    NandArray nand(sim, "nand", tightParams());
    Tick done = 0;
    nand.erase(PageAddr{2, 1, 7, 0}, [&] { done = sim.now(); });
    sim.run();
    EXPECT_EQ(done, nand.params().eraseLatency);
    EXPECT_EQ(nand.stats().erases, 1u);
}

TEST_F(NandArrayTest, ReadBehindEraseWaits)
{
    NandArray nand(sim, "nand", tightParams());
    Tick erase_done = 0, read_done = 0;
    nand.erase(PageAddr{0, 0, 1, 0}, [&] { erase_done = sim.now(); });
    nand.read(PageAddr{0, 0, 0, 0}, 4096, [&] { read_done = sim.now(); });
    sim.run();
    EXPECT_GT(read_done, erase_done);
}

TEST_F(NandArrayTest, AddrForDieMapsLinearly)
{
    NandArray nand(sim, "nand", tightParams());
    const auto &p = nand.params();
    auto a = nand.addrForDie(0, 3, 4);
    EXPECT_EQ(a.channel, 0u);
    EXPECT_EQ(a.die, 0u);
    auto b = nand.addrForDie(p.diesPerChannel, 3, 4);
    EXPECT_EQ(b.channel, 1u);
    EXPECT_EQ(b.die, 0u);
    auto c = nand.addrForDie(p.diesPerChannel + 1, 3, 4);
    EXPECT_EQ(c.channel, 1u);
    EXPECT_EQ(c.die, 1u);
    EXPECT_EQ(c.block, 3u);
    EXPECT_EQ(c.page, 4u);
}

TEST_F(NandArrayTest, BadAddressPanics)
{
    NandArray nand(sim, "nand", tightParams());
    const auto &p = nand.params();
    EXPECT_THROW(nand.read(PageAddr{p.channels, 0, 0, 0}, 4096, [] {}),
                 afa::sim::SimError);
    EXPECT_THROW(nand.read(PageAddr{0, p.diesPerChannel, 0, 0}, 4096,
                           [] {}),
                 afa::sim::SimError);
    EXPECT_THROW(
        nand.read(PageAddr{0, 0, p.blocksPerDie, 0}, 4096, [] {}),
        afa::sim::SimError);
    EXPECT_THROW(
        nand.read(PageAddr{0, 0, 0, p.pagesPerBlock}, 4096, [] {}),
        afa::sim::SimError);
}

TEST_F(NandArrayTest, BadGeometryFatal)
{
    NandParams p = tightParams();
    p.channels = 0;
    EXPECT_THROW(NandArray(sim, "nand", p), afa::sim::SimError);
}

TEST_F(NandArrayTest, ReadLatencyJitterWithSigma)
{
    NandParams p = tightParams();
    p.readSigma = 0.1;
    NandArray nand(sim, "nand", p);
    std::vector<Tick> done;
    Tick prev = 0;
    // Sequential (dependent) reads so each sample is independent of
    // queueing.
    std::function<void(int)> issue = [&](int remaining) {
        if (remaining == 0)
            return;
        nand.read(PageAddr{0, 0, 0, 0}, 4096, [&, remaining] {
            done.push_back(sim.now() - prev);
            prev = sim.now();
            issue(remaining - 1);
        });
    };
    issue(50);
    sim.run();
    ASSERT_EQ(done.size(), 50u);
    bool varied = false;
    for (std::size_t i = 1; i < done.size(); ++i)
        if (done[i] != done[0])
            varied = true;
    EXPECT_TRUE(varied);
    for (Tick t : done) {
        EXPECT_GT(t, usec(30));
        EXPECT_LT(t, usec(120));
    }
}

TEST_F(NandArrayTest, UtilisationCountersAdvance)
{
    NandArray nand(sim, "nand", tightParams());
    nand.read(PageAddr{0, 0, 0, 0}, 4096, [] {});
    nand.program(PageAddr{1, 0, 0, 0}, 16384, [] {});
    sim.run();
    EXPECT_GT(nand.stats().dieBusyTime, 0u);
    EXPECT_GT(nand.stats().channelBusyTime, 0u);
}

} // namespace
