/**
 * @file
 * Stress and property tests for the event queue: long interleaved
 * schedule/cancel churn checked against a reference model, same-tick
 * FIFO stability under slot recycling, and generation safety of
 * handles across many recycle epochs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

using afa::sim::EventHandle;
using afa::sim::EventQueue;
using afa::sim::Tick;

namespace {

/**
 * Reference model: pending events keyed by (when, global scheduling
 * sequence). The queue must always pop the model's minimum.
 */
class ModelChecker
{
  public:
    int
    schedule(EventQueue &q, Tick when, std::vector<int> &fired)
    {
        int id = nextId++;
        EventHandle handle =
            q.schedule(when, [&fired, id] { fired.push_back(id); });
        pendingEvents.emplace(std::make_pair(when, nextSeq++),
                              Entry{id, handle});
        return id;
    }

    /** Cancel the model entry with the given id; returns success. */
    bool
    cancel(EventQueue &q, int id)
    {
        for (auto it = pendingEvents.begin();
             it != pendingEvents.end(); ++it) {
            if (it->second.id != id)
                continue;
            bool ok = q.cancel(it->second.handle);
            EXPECT_TRUE(ok) << "live handle failed to cancel";
            retired.push_back(it->second.handle);
            pendingEvents.erase(it);
            return ok;
        }
        return false;
    }

    /** Pop one event from the queue and check it against the model. */
    void
    popAndCheck(EventQueue &q, std::vector<int> &fired)
    {
        Tick when = 0;
        bool popped = q.runNext(when);
        ASSERT_EQ(popped, !pendingEvents.empty());
        if (!popped)
            return;
        auto expect = pendingEvents.begin();
        EXPECT_EQ(when, expect->first.first);
        ASSERT_FALSE(fired.empty());
        EXPECT_EQ(fired.back(), expect->second.id);
        retired.push_back(expect->second.handle);
        pendingEvents.erase(expect);
    }

    std::size_t livePending() const { return pendingEvents.size(); }

    /** Some id of a currently pending event, or -1. */
    int
    anyPendingId(std::size_t pick) const
    {
        if (pendingEvents.empty())
            return -1;
        auto it = pendingEvents.begin();
        std::advance(it, pick % pendingEvents.size());
        return it->second.id;
    }

    /** A handle whose event already fired or was cancelled. */
    EventHandle
    anyRetiredHandle(std::size_t pick) const
    {
        if (retired.empty())
            return {};
        return retired[pick % retired.size()];
    }

  private:
    struct Entry
    {
        int id;
        EventHandle handle;
    };

    std::map<std::pair<Tick, std::uint64_t>, Entry> pendingEvents;
    std::vector<EventHandle> retired;
    int nextId = 0;
    std::uint64_t nextSeq = 0;
};

TEST(EventStressTest, InterleavedChurnMatchesReferenceModel)
{
    EventQueue q;
    ModelChecker model;
    std::vector<int> fired;
    std::mt19937_64 rng(0xafa5eedull);

    // Ticks collide on purpose (range << event count) so the FIFO
    // tie-break is exercised constantly, not just by the dedicated
    // same-tick test below.
    for (int iter = 0; iter < 20000; ++iter) {
        unsigned op = static_cast<unsigned>(rng() % 100);
        if (op < 50) {
            model.schedule(q, static_cast<Tick>(rng() % 512), fired);
        } else if (op < 70) {
            int id = model.anyPendingId(static_cast<std::size_t>(rng()));
            if (id >= 0)
                model.cancel(q, id);
        } else if (op < 80) {
            // Stale handles must stay dead no matter how often their
            // slot has been recycled since.
            EventHandle stale =
                model.anyRetiredHandle(static_cast<std::size_t>(rng()));
            if (stale.valid()) {
                EXPECT_FALSE(q.cancel(stale));
                EXPECT_FALSE(q.pending(stale));
            }
        } else {
            model.popAndCheck(q, fired);
        }
        ASSERT_EQ(q.size(), model.livePending());
    }
    while (!q.empty())
        model.popAndCheck(q, fired);
    EXPECT_EQ(model.livePending(), 0u);
    Tick when;
    EXPECT_FALSE(q.runNext(when));
}

TEST(EventStressTest, SameTickFifoSurvivesCancellationHoles)
{
    EventQueue q;
    std::vector<int> fired;
    std::vector<EventHandle> handles;

    // 512 events on one tick; punch holes in a scattered pattern so
    // cancelled entries go stale at every heap depth.
    constexpr Tick kTick = 77;
    for (int i = 0; i < 512; ++i)
        handles.push_back(
            q.schedule(kTick, [&fired, i] { fired.push_back(i); }));
    std::vector<int> survivors;
    for (int i = 0; i < 512; ++i) {
        if (i % 3 == 0 || i % 7 == 0)
            EXPECT_TRUE(q.cancel(handles[i]));
        else
            survivors.push_back(i);
    }

    Tick when;
    while (q.runNext(when))
        EXPECT_EQ(when, kTick);
    EXPECT_EQ(fired, survivors);
}

TEST(EventStressTest, GenerationsProtectHeavilyRecycledSlots)
{
    EventQueue q;
    std::vector<int> fired;

    // With a single live event at a time, the same slot is reused for
    // every schedule; each epoch's handle must only ever see its own
    // incarnation.
    EventHandle previous;
    for (int epoch = 0; epoch < 1000; ++epoch) {
        EventHandle h = q.schedule(
            static_cast<Tick>(epoch),
            [&fired, epoch] { fired.push_back(epoch); });
        if (previous.valid()) {
            EXPECT_EQ(h.slot, previous.slot);
            EXPECT_NE(h.gen, previous.gen);
            EXPECT_FALSE(q.cancel(previous));
            EXPECT_FALSE(q.pending(previous));
        }
        EXPECT_TRUE(q.pending(h));
        if (epoch % 2 == 0) {
            Tick when;
            EXPECT_TRUE(q.runNext(when));
        } else {
            EXPECT_TRUE(q.cancel(h));
        }
        previous = h;
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(fired.size(), 500u);
    EXPECT_EQ(q.executed(), 500u);
}

TEST(EventStressTest, FillDrainEpochsKeepCountersConsistent)
{
    EventQueue q;
    std::uint64_t total_fired = 0;

    for (int epoch = 0; epoch < 4; ++epoch) {
        std::uint64_t fired_this_epoch = 0;
        for (int i = 0; i < 10000; ++i) {
            q.schedule(static_cast<Tick>((i * 2654435761u) % 100000),
                       [&fired_this_epoch] { ++fired_this_epoch; });
        }
        EXPECT_EQ(q.size(), 10000u);
        Tick prev = 0;
        Tick when;
        while (q.runNext(when)) {
            EXPECT_GE(when, prev);
            prev = when;
        }
        EXPECT_EQ(fired_this_epoch, 10000u);
        total_fired += fired_this_epoch;
        EXPECT_TRUE(q.empty());
        EXPECT_EQ(q.executed(), total_fired);
    }
}

TEST(EventStressTest, ScheduleDuringDrainInterleavesCorrectly)
{
    EventQueue q;
    std::vector<Tick> fired_at;

    // Each event schedules a follow-up two ticks later while earlier
    // siblings are still pending; pops must interleave the cohorts in
    // global time order.
    for (Tick t = 0; t < 64; t += 4) {
        q.schedule(t, [&q, &fired_at, t] {
            fired_at.push_back(t);
            q.schedule(t + 2, [&fired_at, t] {
                fired_at.push_back(t + 2);
            });
        });
    }
    Tick when;
    while (q.runNext(when)) {
    }
    ASSERT_EQ(fired_at.size(), 32u);
    for (std::size_t i = 1; i < fired_at.size(); ++i)
        EXPECT_GT(fired_at[i], fired_at[i - 1]);
}

} // namespace
