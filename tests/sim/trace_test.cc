/**
 * @file
 * Tests for the Tracer (the simulator's LTTng analogue).
 */

#include <gtest/gtest.h>

#include "sim/trace.hh"

using afa::sim::Tracer;

namespace {

TEST(TracerTest, DisabledCategoriesAreDropped)
{
    Tracer t;
    t.record(10, "sched", "switch");
    EXPECT_TRUE(t.records().empty());
}

TEST(TracerTest, EnabledCategoryIsKept)
{
    Tracer t;
    t.enable("sched");
    t.record(10, "sched", "switch");
    ASSERT_EQ(t.records().size(), 1u);
    EXPECT_EQ(t.records()[0].when, 10u);
    EXPECT_EQ(t.records()[0].message, "switch");
}

TEST(TracerTest, PrefixMatchingAtDotBoundary)
{
    Tracer t;
    t.enable("irq");
    EXPECT_TRUE(t.enabled("irq"));
    EXPECT_TRUE(t.enabled("irq.balance"));
    EXPECT_FALSE(t.enabled("irqstorm")); // not a dot boundary
    EXPECT_FALSE(t.enabled("irqx"));     // one-char overhang
    EXPECT_FALSE(t.enabled("ir"));       // shorter than the prefix
    EXPECT_FALSE(t.enabled("sched"));
}

TEST(TracerTest, ChildEnableDoesNotCoverParentOrSiblings)
{
    Tracer t;
    t.enable("irq.balance");
    EXPECT_TRUE(t.enabled("irq.balance"));
    EXPECT_TRUE(t.enabled("irq.balance.scan"));
    EXPECT_FALSE(t.enabled("irq"));
    EXPECT_FALSE(t.enabled("irq.deliver"));
    EXPECT_FALSE(t.enabled("irq.balancer")); // shares the spelling
}

TEST(TracerTest, AnyEnabledGatesTheHotPath)
{
    Tracer t;
    EXPECT_FALSE(t.anyEnabled());
    t.enable("sched");
    EXPECT_TRUE(t.anyEnabled());
    t.disable("sched");
    EXPECT_FALSE(t.anyEnabled());
    t.enableAll();
    EXPECT_TRUE(t.anyEnabled());
}

TEST(TracerTest, StringViewLookupDoesNotRequireAllocation)
{
    // enabled()/record() take string_view: a category assembled on
    // the stack must match entries enabled from std::string.
    Tracer t;
    t.enable(std::string("nvme.hiccup"));
    char buf[] = {'n', 'v', 'm', 'e', '.', 'h', 'i', 'c',
                  'c', 'u', 'p'};
    EXPECT_TRUE(t.enabled(std::string_view(buf, sizeof(buf))));
    t.record(5, std::string_view(buf, sizeof(buf)), "x");
    ASSERT_EQ(t.records().size(), 1u);
    EXPECT_EQ(t.records()[0].category, "nvme.hiccup");
}

TEST(TracerTest, EnableAllCapturesEverything)
{
    Tracer t;
    t.enableAll();
    t.record(1, "a", "x");
    t.record(2, "b.c", "y");
    EXPECT_EQ(t.records().size(), 2u);
}

TEST(TracerTest, DisableStopsCapture)
{
    Tracer t;
    t.enable("sched");
    t.record(1, "sched", "a");
    t.disable("sched");
    t.record(2, "sched", "b");
    EXPECT_EQ(t.records().size(), 1u);
}

TEST(TracerTest, FilteredSelectsByCategory)
{
    Tracer t;
    t.enableAll();
    t.record(1, "sched", "a");
    t.record(2, "irq.balance", "b");
    t.record(3, "irq", "c");
    auto irq = t.filtered("irq");
    ASSERT_EQ(irq.size(), 2u);
    EXPECT_EQ(irq[0].message, "b");
    EXPECT_EQ(irq[1].message, "c");
}

TEST(TracerTest, CapacityBoundDropsOldest)
{
    Tracer t(3);
    t.enableAll();
    for (int i = 0; i < 5; ++i)
        t.record(i, "c", std::to_string(i));
    EXPECT_EQ(t.records().size(), 3u);
    EXPECT_EQ(t.dropped(), 2u);
    EXPECT_EQ(t.records().front().message, "2");
}

TEST(TracerTest, ClearResets)
{
    Tracer t;
    t.enableAll();
    t.record(1, "c", "x");
    t.clear();
    EXPECT_TRUE(t.records().empty());
    EXPECT_EQ(t.dropped(), 0u);
}

} // namespace
