/**
 * @file
 * Tests for the Config store and its argv parser.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/logging.hh"

using afa::sim::Config;

namespace {

class ConfigTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    Config cfg;
};

TEST_F(ConfigTest, MissingKeysYieldDefaults)
{
    EXPECT_EQ(cfg.getString("a", "dflt"), "dflt");
    EXPECT_EQ(cfg.getInt("b", -3), -3);
    EXPECT_EQ(cfg.getUint("c", 9), 9u);
    EXPECT_TRUE(cfg.getBool("d", true));
    EXPECT_DOUBLE_EQ(cfg.getDouble("e", 2.5), 2.5);
}

TEST_F(ConfigTest, SetAndGetRoundTrip)
{
    cfg.set("s", "hello");
    cfg.set("i", std::int64_t(-42));
    cfg.set("u", std::uint64_t(42));
    cfg.set("b", true);
    cfg.set("d", 3.25);
    EXPECT_EQ(cfg.getString("s", ""), "hello");
    EXPECT_EQ(cfg.getInt("i", 0), -42);
    EXPECT_EQ(cfg.getUint("u", 0), 42u);
    EXPECT_TRUE(cfg.getBool("b", false));
    EXPECT_DOUBLE_EQ(cfg.getDouble("d", 0.0), 3.25);
}

TEST_F(ConfigTest, BoolAcceptsCommonSpellings)
{
    for (const char *t : {"true", "1", "yes", "on", "TRUE", "Yes"}) {
        cfg.set("k", t);
        EXPECT_TRUE(cfg.getBool("k", false)) << t;
    }
    for (const char *f : {"false", "0", "no", "off", "FALSE"}) {
        cfg.set("k", f);
        EXPECT_FALSE(cfg.getBool("k", true)) << f;
    }
}

TEST_F(ConfigTest, MalformedValuesAreFatal)
{
    cfg.set("k", "not-a-number");
    EXPECT_THROW(cfg.getInt("k", 0), afa::sim::SimError);
    EXPECT_THROW(cfg.getDouble("k", 0.0), afa::sim::SimError);
    EXPECT_THROW(cfg.getBool("k", false), afa::sim::SimError);
}

TEST_F(ConfigTest, NegativeRejectedForUint)
{
    cfg.set("k", "-5");
    EXPECT_THROW(cfg.getUint("k", 0), afa::sim::SimError);
}

TEST_F(ConfigTest, RequireFailsWhenMissing)
{
    EXPECT_THROW(cfg.requireString("nope"), afa::sim::SimError);
    EXPECT_THROW(cfg.requireInt("nope"), afa::sim::SimError);
    EXPECT_THROW(cfg.requireDouble("nope"), afa::sim::SimError);
}

TEST_F(ConfigTest, HexIntegersParse)
{
    cfg.set("k", "0x20");
    EXPECT_EQ(cfg.getInt("k", 0), 32);
}

TEST_F(ConfigTest, ParseArgsEqualsForm)
{
    const char *argv[] = {"--runtime-ms=500", "--seed=7"};
    auto pos = cfg.parseArgs(2, argv);
    EXPECT_TRUE(pos.empty());
    EXPECT_EQ(cfg.getInt("runtime_ms", 0), 500);
    EXPECT_EQ(cfg.getInt("seed", 0), 7);
}

TEST_F(ConfigTest, ParseArgsSpaceForm)
{
    const char *argv[] = {"--ssds", "32", "file.txt"};
    auto pos = cfg.parseArgs(3, argv);
    ASSERT_EQ(pos.size(), 1u);
    EXPECT_EQ(pos[0], "file.txt");
    EXPECT_EQ(cfg.getInt("ssds", 0), 32);
}

TEST_F(ConfigTest, ParseArgsBareFlag)
{
    const char *argv[] = {"--csv", "--verbose"};
    cfg.parseArgs(2, argv);
    EXPECT_TRUE(cfg.getBool("csv", false));
    EXPECT_TRUE(cfg.getBool("verbose", false));
}

TEST_F(ConfigTest, DashesNormaliseToUnderscores)
{
    const char *argv[] = {"--smart-period-s=30"};
    cfg.parseArgs(1, argv);
    EXPECT_EQ(cfg.getInt("smart_period_s", 0), 30);
}

TEST_F(ConfigTest, MergePrefersOther)
{
    cfg.set("a", 1);
    cfg.set("b", 2);
    Config other;
    other.set("b", 20);
    other.set("c", 30);
    cfg.merge(other);
    EXPECT_EQ(cfg.getInt("a", 0), 1);
    EXPECT_EQ(cfg.getInt("b", 0), 20);
    EXPECT_EQ(cfg.getInt("c", 0), 30);
}

TEST_F(ConfigTest, KeysWithPrefix)
{
    cfg.set("ssd.nand.read_us", 20);
    cfg.set("ssd.nand.prog_us", 600);
    cfg.set("ssd.smart.period_s", 30);
    cfg.set("host.cpus", 40);
    auto keys = cfg.keysWithPrefix("ssd.nand.");
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "ssd.nand.prog_us");
    EXPECT_EQ(keys[1], "ssd.nand.read_us");
}

TEST_F(ConfigTest, EraseAndHas)
{
    cfg.set("k", 1);
    EXPECT_TRUE(cfg.has("k"));
    EXPECT_TRUE(cfg.erase("k"));
    EXPECT_FALSE(cfg.has("k"));
    EXPECT_FALSE(cfg.erase("k"));
}

TEST_F(ConfigTest, ToStringListsSortedEntries)
{
    cfg.set("b", 2);
    cfg.set("a", 1);
    EXPECT_EQ(cfg.toString(), "a = 1\nb = 2\n");
}

} // namespace
