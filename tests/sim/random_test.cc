/**
 * @file
 * Tests for the deterministic RNG: reproducibility, stream
 * independence, and statistical sanity of every distribution
 * (parameterised property-style sweeps).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/random.hh"

using afa::sim::Rng;

namespace {

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, ForkByTagIsDeterministic)
{
    Rng root(7);
    Rng a = root.fork("ssd0");
    Rng b = Rng(7).fork("ssd0");
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, ForkedStreamsAreIndependent)
{
    Rng root(7);
    Rng a = root.fork("ssd0");
    Rng b = root.fork("ssd1");
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, ForkByIndexDiffersFromNeighbours)
{
    Rng root(7);
    Rng a = root.fork(std::uint64_t(0));
    Rng b = root.fork(std::uint64_t(1));
    EXPECT_NE(a.next(), b.next());
}

TEST(RngTest, ForkDoesNotAdvanceParent)
{
    Rng a(99), b(99);
    (void)a.fork("child");
    EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, UniformIsInHalfOpenUnitInterval)
{
    Rng r(5);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform(10.0, 20.0);
        EXPECT_GE(u, 10.0);
        EXPECT_LT(u, 20.0);
    }
}

TEST(RngTest, UniformIntInclusiveBoundsAndCoverage)
{
    Rng r(5);
    std::vector<int> seen(6, 0);
    for (int i = 0; i < 6000; ++i) {
        auto v = r.uniformInt(10, 15);
        ASSERT_GE(v, 10u);
        ASSERT_LE(v, 15u);
        seen[v - 10]++;
    }
    for (int c : seen)
        EXPECT_GT(c, 800); // each of 6 values ~1000 expected
}

TEST(RngTest, UniformIntDegenerateRange)
{
    Rng r(5);
    EXPECT_EQ(r.uniformInt(42, 42), 42u);
}

TEST(RngTest, UniformIntReversedRangePanics)
{
    afa::sim::setThrowOnError(true);
    Rng r(5);
    EXPECT_THROW(r.uniformInt(10, 5), afa::sim::SimError);
    afa::sim::setThrowOnError(false);
}

TEST(RngTest, ChanceExtremes)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(RngTest, ChanceFrequencyTracksP)
{
    Rng r(5);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (r.chance(0.3))
            ++hits;
    EXPECT_NEAR(hits / double(n), 0.3, 0.01);
}

/** Parameterised moment checks for the continuous distributions. */
struct DistCase
{
    const char *name;
    double expectedMean;
    double expectedStddev;
    double sample(Rng &r) const { return sampler(r); }
    double (*sampler)(Rng &);
    double meanTol;
    double stddevTol;
};

class DistributionMoments : public ::testing::TestWithParam<DistCase>
{
};

TEST_P(DistributionMoments, MeanAndStddevMatchTheory)
{
    const auto &tc = GetParam();
    Rng r(2026);
    const int n = 200000;
    double sum = 0.0, sumsq = 0.0;
    for (int i = 0; i < n; ++i) {
        double v = tc.sample(r);
        sum += v;
        sumsq += v * v;
    }
    double mean = sum / n;
    double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, tc.expectedMean, tc.meanTol) << tc.name;
    EXPECT_NEAR(std::sqrt(var), tc.expectedStddev, tc.stddevTol)
        << tc.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionMoments,
    ::testing::Values(
        DistCase{"normal01", 0.0, 1.0,
                 [](Rng &r) { return r.normal(); }, 0.02, 0.02},
        DistCase{"normal_5_2", 5.0, 2.0,
                 [](Rng &r) { return r.normal(5.0, 2.0); }, 0.04, 0.04},
        // lognormal(median m, sigma s): mean = m*exp(s^2/2),
        // stddev = mean*sqrt(exp(s^2)-1)
        DistCase{"lognormal", 25.0 * std::exp(0.125),
                 25.0 * std::exp(0.125) *
                     std::sqrt(std::exp(0.25) - 1.0),
                 [](Rng &r) { return r.lognormal(25.0, 0.5); },
                 0.3, 0.4},
        DistCase{"exponential", 10.0, 10.0,
                 [](Rng &r) { return r.exponential(10.0); }, 0.15, 0.2},
        // pareto(xm=1, a=3): mean = a*xm/(a-1) = 1.5,
        // stddev = xm*sqrt(a/((a-1)^2(a-2))) = sqrt(3)/2
        DistCase{"pareto", 1.5, std::sqrt(3.0) / 2.0,
                 [](Rng &r) { return r.pareto(1.0, 3.0); }, 0.05, 0.25}),
    [](const ::testing::TestParamInfo<DistCase> &info) {
        return info.param.name;
    });

TEST(RngTest, LognormalMedianIsMedian)
{
    Rng r(11);
    const int n = 100001;
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = r.lognormal(42.0, 0.7);
    std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
    EXPECT_NEAR(xs[n / 2], 42.0, 1.5);
}

TEST(RngTest, ParetoNeverBelowMinimum)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(r.pareto(3.0, 1.5), 3.0);
}

TEST(RngTest, ExponentialIsNonNegative)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(r.exponential(5.0), 0.0);
}

TEST(RngTest, InvalidParametersPanic)
{
    afa::sim::setThrowOnError(true);
    Rng r(1);
    EXPECT_THROW(r.lognormal(0.0, 1.0), afa::sim::SimError);
    EXPECT_THROW(r.exponential(-1.0), afa::sim::SimError);
    EXPECT_THROW(r.pareto(0.0, 1.0), afa::sim::SimError);
    EXPECT_THROW(r.pareto(1.0, 0.0), afa::sim::SimError);
    afa::sim::setThrowOnError(false);
}

TEST(RngTest, HashTagSpreadsSimilarStrings)
{
    auto a = afa::sim::hashTag("nvme0");
    auto b = afa::sim::hashTag("nvme1");
    EXPECT_NE(a, b);
    // Rough avalanche check: many differing bits.
    int bits = __builtin_popcountll(a ^ b);
    EXPECT_GT(bits, 10);
}

} // namespace
