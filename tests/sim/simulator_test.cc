/**
 * @file
 * Unit tests for the Simulator: clock semantics, run bounds, stop
 * requests, and scheduling helpers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/logging.hh"
#include "sim/simulator.hh"

using afa::sim::Simulator;
using afa::sim::Tick;

namespace {

class SimulatorTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    Simulator sim{42};
};

TEST_F(SimulatorTest, ClockStartsAtZero)
{
    EXPECT_EQ(sim.now(), 0u);
}

TEST_F(SimulatorTest, RunAdvancesClockToEventTimes)
{
    std::vector<Tick> seen;
    sim.scheduleAt(100, [&] { seen.push_back(sim.now()); });
    sim.scheduleAt(250, [&] { seen.push_back(sim.now()); });
    sim.run();
    EXPECT_EQ(seen, (std::vector<Tick>{100, 250}));
    EXPECT_EQ(sim.now(), 250u);
}

TEST_F(SimulatorTest, ScheduleAfterIsRelative)
{
    Tick fired_at = 0;
    sim.scheduleAt(100, [&] {
        sim.scheduleAfter(50, [&] { fired_at = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(fired_at, 150u);
}

TEST_F(SimulatorTest, RunUntilStopsClockAtBound)
{
    int fired = 0;
    sim.scheduleAt(100, [&] { ++fired; });
    sim.scheduleAt(300, [&] { ++fired; });
    sim.run(200);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 200u);
    // Remaining event still pending and runs on the next call.
    sim.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), 300u);
}

TEST_F(SimulatorTest, EventExactlyAtBoundRuns)
{
    int fired = 0;
    sim.scheduleAt(200, [&] { ++fired; });
    sim.run(200);
    EXPECT_EQ(fired, 1);
}

TEST_F(SimulatorTest, RequestStopEndsRun)
{
    int fired = 0;
    sim.scheduleAt(10, [&] {
        ++fired;
        sim.requestStop();
    });
    sim.scheduleAt(20, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    // A later run() resumes.
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST_F(SimulatorTest, SchedulingInPastPanics)
{
    sim.scheduleAt(100, [&] {
        EXPECT_THROW(sim.scheduleAt(50, [] {}), afa::sim::SimError);
    });
    sim.run();
}

TEST_F(SimulatorTest, RunStepsLimitsExecution)
{
    int fired = 0;
    for (int i = 1; i <= 10; ++i)
        sim.scheduleAt(i, [&] { ++fired; });
    EXPECT_EQ(sim.runSteps(4), 4u);
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(sim.now(), 4u);
}

TEST_F(SimulatorTest, CancelStopsScheduledEvent)
{
    int fired = 0;
    auto h = sim.scheduleAt(10, [&] { ++fired; });
    EXPECT_TRUE(sim.pending(h));
    EXPECT_TRUE(sim.cancel(h));
    sim.run();
    EXPECT_EQ(fired, 0);
}

TEST_F(SimulatorTest, RunReturnsExecutedCount)
{
    for (int i = 1; i <= 5; ++i)
        sim.scheduleAt(i, [] {});
    EXPECT_EQ(sim.run(), 5u);
    EXPECT_EQ(sim.executedEvents(), 5u);
}

TEST_F(SimulatorTest, SeedIsExposed)
{
    EXPECT_EQ(sim.seed(), 42u);
}

TEST_F(SimulatorTest, RecurringEventChainTerminatesAtBound)
{
    // A self-rescheduling event (like a timer tick) must stop at the
    // run bound without draining the queue.
    int ticks = 0;
    std::function<void()> tick = [&] {
        ++ticks;
        sim.scheduleAfter(10, tick);
    };
    sim.scheduleAt(0, tick);
    sim.run(100);
    EXPECT_EQ(ticks, 11); // t = 0, 10, ..., 100
    EXPECT_EQ(sim.now(), 100u);
}

} // namespace
