/**
 * @file
 * Unit tests for the sharded simulator core: the inter-shard mailbox
 * (post, cancel, reclaim, lookahead contract), the internal-event
 * discount that keeps executedEvents() bit-identical across shard
 * counts, same-tick ordering bands, and determinism of a cross-shard
 * ping-pong workload at every shard count.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/shard.hh"
#include "sim/simulator.hh"

using afa::sim::EventHandle;
using afa::sim::ShardScope;
using afa::sim::Simulator;
using afa::sim::Tick;

namespace {

class ShardedSimulatorTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }
};

TEST_F(ShardedSimulatorTest, ShardCountAndClamp)
{
    Simulator one(1, 0);
    EXPECT_EQ(one.shards(), 1u);
    Simulator four(1, 4);
    EXPECT_EQ(four.shards(), 4u);
    EXPECT_THROW(Simulator(1, Simulator::kMaxShards + 1),
                 afa::sim::SimError);
}

TEST_F(ShardedSimulatorTest, ShardedRunRequiresLookahead)
{
    Simulator sim(1, 2);
    sim.scheduleAt(10, [] {});
    EXPECT_THROW(sim.run(), afa::sim::SimError);
}

TEST_F(ShardedSimulatorTest, CrossPostDeliversOnTargetShard)
{
    Simulator sim(1, 2);
    sim.setLookahead(afa::sim::TickDelta{10});
    unsigned fired_on = 99;
    Tick fired_at = 0;
    sim.scheduleAt(5, [&] {
        sim.scheduleOnShard(1, 50, [&] {
            fired_on = afa::sim::currentShard();
            fired_at = sim.now();
        });
    });
    sim.run();
    EXPECT_EQ(fired_on, 1u);
    EXPECT_EQ(fired_at, 50u);
}

TEST_F(ShardedSimulatorTest, CrossPostInsideWindowPanics)
{
    Simulator sim(1, 2);
    sim.setLookahead(afa::sim::TickDelta{100});
    bool threw = false;
    sim.scheduleAt(5, [&] {
        // 5 + 99 < 5 + lookahead: violates the conservative horizon.
        try {
            sim.scheduleOnShard(1, 104, [] {});
        } catch (const afa::sim::SimError &) {
            threw = true;
            sim.requestStop();
        }
    });
    sim.run();
    EXPECT_TRUE(threw);
}

TEST_F(ShardedSimulatorTest, SetupTimePostsBypassTheHorizon)
{
    // Outside the parallel phase the direct path applies: posts may
    // be arbitrarily near (the windows haven't started).
    Simulator sim(1, 4);
    sim.setLookahead(afa::sim::TickDelta{1000});
    bool fired = false;
    sim.scheduleOnShard(3, 1, [&] { fired = true; });
    sim.run();
    EXPECT_TRUE(fired);
}

TEST_F(ShardedSimulatorTest, InternalEventsAreNotCounted)
{
    Simulator sim(1, 2);
    sim.setLookahead(afa::sim::TickDelta{10});
    int fired = 0;
    sim.scheduleAt(5, [&] {
        ++fired;
        sim.scheduleOnShard(1, 50, [&] { ++fired; },
                            /*internal=*/true);
        sim.scheduleOnShard(1, 60, [&] { ++fired; });
    });
    const std::uint64_t executed = sim.run();
    EXPECT_EQ(fired, 3);
    // The internal cross post is plumbing: only the poster and the
    // non-internal post count as model events.
    EXPECT_EQ(executed, 2u);
    EXPECT_EQ(sim.executedEvents(), 2u);
}

TEST_F(ShardedSimulatorTest, InternalDiscountMatchesSerial)
{
    // A serial-direct internal post is discounted exactly like a
    // mailbox one, so counts agree between shard counts.
    Simulator sim(1, 1);
    int fired = 0;
    sim.scheduleAt(5, [&] {
        sim.scheduleOnShard(0, 50, [&] { ++fired; },
                            /*internal=*/true);
    });
    EXPECT_EQ(sim.run(), 1u);
    EXPECT_EQ(fired, 1);
}

TEST_F(ShardedSimulatorTest, CrossCancelBeforeDelivery)
{
    Simulator sim(1, 2);
    sim.setLookahead(afa::sim::TickDelta{10});
    bool fired = false;
    sim.scheduleAt(5, [&] {
        EventHandle h = sim.scheduleOnShard(1, 200, [&] {
            fired = true;
        });
        EXPECT_TRUE(sim.pending(h));
        EXPECT_TRUE(sim.cancel(h));
        EXPECT_FALSE(sim.pending(h));
        EXPECT_FALSE(sim.cancel(h));
    });
    sim.run();
    EXPECT_FALSE(fired);
}

TEST_F(ShardedSimulatorTest, ReclaimReturnsTheCallback)
{
    Simulator sim(1, 2);
    sim.setLookahead(afa::sim::TickDelta{10});
    int where = 0;
    sim.scheduleAt(5, [&] {
        EventHandle h = sim.scheduleOnShard(1, 200, [&] { where = 1; });
        afa::sim::EventFn fn = sim.reclaim(h);
        fn(); // runs here, not on shard 1
        EXPECT_EQ(where, 1);
        where = 2;
    });
    sim.run();
    EXPECT_EQ(where, 2);
}

TEST_F(ShardedSimulatorTest, ReclaimWorksOnPlainHandles)
{
    Simulator sim(1, 1);
    int fired = 0;
    sim.scheduleAt(5, [&] {
        EventHandle h = sim.scheduleOnShard(0, 50, [&] { ++fired; });
        afa::sim::EventFn fn = sim.reclaim(h);
        fn();
    });
    sim.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST_F(ShardedSimulatorTest, OrderingBandsRunAfterPlainEvents)
{
    // Same tick: band-0 events in FIFO order first, then ascending
    // bands. Bands posted out of numeric order still sort.
    Simulator sim(1, 1);
    std::string order;
    sim.scheduleOnShard(0, 10, [&] { order += 'c'; }, false, 7);
    sim.scheduleAt(10, [&] { order += 'a'; });
    sim.scheduleOnShard(0, 10, [&] { order += 'b'; }, false, 3);
    sim.scheduleAt(10, [&] { order += 'A'; });
    sim.run();
    EXPECT_EQ(order, "aAbc");
}

TEST_F(ShardedSimulatorTest, BandOrderIsIdenticalAcrossShardCounts)
{
    // Two posters on different shards hit shard 0 at the same tick
    // with different bands; the firing order must be the band order
    // at any shard count, regardless of which mailbox drained first.
    for (unsigned shards : {1u, 2u, 3u}) {
        Simulator sim(1, shards);
        sim.setLookahead(afa::sim::TickDelta{10});
        std::string order;
        {
            ShardScope scope(sim, shards > 1 ? 1 : 0);
            sim.scheduleAt(5, [&, shards] {
                sim.scheduleOnShard(0, 50, [&] { order += 'y'; },
                                    false, 9);
            });
        }
        {
            ShardScope scope(sim, shards > 2 ? 2 : 0);
            sim.scheduleAt(6, [&, shards] {
                sim.scheduleOnShard(0, 50, [&] { order += 'x'; },
                                    false, 4);
            });
        }
        sim.run();
        EXPECT_EQ(order, "xy") << shards << " shards";
    }
}

TEST_F(ShardedSimulatorTest, ClockEqualisedAfterBoundedRun)
{
    Simulator sim(1, 3);
    sim.setLookahead(afa::sim::TickDelta{10});
    {
        ShardScope scope(sim, 1);
        sim.scheduleAt(100, [] {});
        sim.scheduleAt(900, [] {});
    }
    sim.run(500);
    // Events remain beyond the bound: every shard's clock rests at
    // the bound, like the serial core.
    EXPECT_EQ(sim.now(), 500u);
    {
        ShardScope scope(sim, 2);
        EXPECT_EQ(sim.now(), 500u);
    }
    EXPECT_EQ(sim.pendingEvents(), 1u);
}

/**
 * Cross-shard ping-pong: shard A posts to shard B, which posts back,
 * with a deterministic per-bounce record of (shard, tick). The log
 * must be identical at every shard count.
 */
std::vector<std::pair<unsigned, Tick>>
pingPong(unsigned shard_count)
{
    Simulator sim(7, shard_count);
    sim.setLookahead(afa::sim::TickDelta{25});
    std::vector<std::pair<unsigned, Tick>> log;
    const unsigned a = 0;
    const unsigned b = shard_count > 1 ? 1 : 0;
    // Self-referential bouncing closure, bounded by hop count.
    struct Bouncer
    {
        Simulator &sim;
        std::vector<std::pair<unsigned, Tick>> &log;
        unsigned a, b;
        void
        bounce(unsigned hops)
        {
            log.emplace_back(afa::sim::currentShard(), sim.now());
            if (hops == 0)
                return;
            const unsigned target =
                afa::sim::currentShard() == a ? b : a;
            sim.scheduleOnShard(target, sim.now() + 25,
                                [this, hops] { bounce(hops - 1); },
                                false, 1);
        }
    } bouncer{sim, log, a, b};
    sim.scheduleAt(0, [&] { bouncer.bounce(12); });
    sim.run();
    return log;
}

TEST_F(ShardedSimulatorTest, PingPongIsDeterministicAcrossShardCounts)
{
    auto serial = pingPong(1);
    ASSERT_EQ(serial.size(), 13u);
    for (unsigned k : {2u, 3u, 4u}) {
        auto sharded = pingPong(k);
        ASSERT_EQ(sharded.size(), serial.size()) << k << " shards";
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(sharded[i].second, serial[i].second)
                << "hop " << i << " at " << k << " shards";
    }
}

TEST_F(ShardedSimulatorTest, RunStepsAgreesWithRunOnEventTimes)
{
    auto build = [](Simulator &sim, std::vector<Tick> &ticks) {
        sim.setLookahead(afa::sim::TickDelta{10});
        ShardScope scope(sim, 1);
        sim.scheduleAt(5, [&sim, &ticks] {
            ticks.push_back(sim.now());
            sim.scheduleOnShard(0, 20, [&sim, &ticks] {
                ticks.push_back(sim.now());
            });
        });
    };
    Simulator run_sim(1, 2);
    std::vector<Tick> run_ticks;
    build(run_sim, run_ticks);
    run_sim.run();

    Simulator step_sim(1, 2);
    std::vector<Tick> step_ticks;
    build(step_sim, step_ticks);
    EXPECT_EQ(step_sim.runSteps(100), 2u);
    EXPECT_EQ(step_ticks, run_ticks);
}

} // namespace
