/**
 * @file
 * Unit tests for the discrete-event queue: ordering, FIFO stability,
 * cancellation, handle safety, and stale-entry handling.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

using afa::sim::EventHandle;
using afa::sim::EventQueue;
using afa::sim::Tick;

namespace {

class EventQueueTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    EventQueue q;
    std::vector<int> order;

    Tick
    drainOne()
    {
        Tick when = 0;
        EXPECT_TRUE(q.runNext(when));
        return when;
    }
};

TEST_F(EventQueueTest, EmptyQueueReportsEmpty)
{
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.nextTime(), afa::sim::kMaxTick);
    Tick when = 0;
    EXPECT_FALSE(q.runNext(when));
}

TEST_F(EventQueueTest, EventsRunInTimeOrder)
{
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(drainOne(), 10u);
    EXPECT_EQ(drainOne(), 20u);
    EXPECT_EQ(drainOne(), 30u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(EventQueueTest, SameTickEventsRunFifo)
{
    for (int i = 0; i < 16; ++i)
        q.schedule(100, [this, i] { order.push_back(i); });
    Tick when;
    while (q.runNext(when))
        EXPECT_EQ(when, 100u);
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST_F(EventQueueTest, NextTimeReportsEarliestPending)
{
    q.schedule(50, [] {});
    q.schedule(40, [] {});
    EXPECT_EQ(q.nextTime(), 40u);
}

TEST_F(EventQueueTest, CancelPreventsExecution)
{
    auto h = q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(q.cancel(h));
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(drainOne(), 20u);
    EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST_F(EventQueueTest, CancelTwiceFails)
{
    auto h = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(h));
    EXPECT_FALSE(q.cancel(h));
}

TEST_F(EventQueueTest, CancelAfterExecutionFails)
{
    auto h = q.schedule(10, [] {});
    drainOne();
    EXPECT_FALSE(q.cancel(h));
}

TEST_F(EventQueueTest, NullHandleCancelIsNoop)
{
    EventHandle null_handle;
    EXPECT_FALSE(null_handle.valid());
    EXPECT_FALSE(q.cancel(null_handle));
}

TEST_F(EventQueueTest, PendingTracksLifecycle)
{
    auto h = q.schedule(10, [] {});
    EXPECT_TRUE(q.pending(h));
    drainOne();
    EXPECT_FALSE(q.pending(h));
}

TEST_F(EventQueueTest, StaleHandleCannotCancelRecycledSlot)
{
    auto h1 = q.schedule(10, [&] { order.push_back(1); });
    EXPECT_TRUE(q.cancel(h1));
    // The slot is recycled for a new event; the old handle must not
    // be able to touch it.
    auto h2 = q.schedule(20, [&] { order.push_back(2); });
    EXPECT_FALSE(q.cancel(h1));
    EXPECT_TRUE(q.pending(h2));
    EXPECT_EQ(drainOne(), 20u);
    EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST_F(EventQueueTest, NextTimeSkipsCancelledTop)
{
    auto h = q.schedule(10, [] {});
    q.schedule(50, [] {});
    q.cancel(h);
    EXPECT_EQ(q.nextTime(), 50u);
}

TEST_F(EventQueueTest, ClearDropsEverything)
{
    for (int i = 0; i < 10; ++i)
        q.schedule(i, [&] { order.push_back(0); });
    q.clear();
    EXPECT_TRUE(q.empty());
    Tick when;
    EXPECT_FALSE(q.runNext(when));
    EXPECT_TRUE(order.empty());
}

TEST_F(EventQueueTest, ScheduleFromWithinEvent)
{
    q.schedule(10, [&] {
        order.push_back(1);
        q.schedule(15, [&] { order.push_back(2); });
    });
    Tick when;
    while (q.runNext(when)) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(EventQueueTest, ExecutedCounterAdvances)
{
    q.schedule(1, [] {});
    q.schedule(2, [] {});
    Tick when;
    while (q.runNext(when)) {
    }
    EXPECT_EQ(q.executed(), 2u);
}

TEST_F(EventQueueTest, NullCallbackPanics)
{
    EXPECT_THROW(q.schedule(1, afa::sim::EventFn{}), afa::sim::SimError);
}

TEST_F(EventQueueTest, ManyEventsStressOrdering)
{
    // Interleave schedules and cancellations; verify global ordering.
    std::vector<EventHandle> handles;
    for (int i = 0; i < 1000; ++i)
        handles.push_back(
            q.schedule((i * 37) % 500, [this, i] { order.push_back(i); }));
    for (int i = 0; i < 1000; i += 3)
        q.cancel(handles[i]);
    Tick prev = 0;
    Tick when;
    std::size_t executed = 0;
    while (q.runNext(when)) {
        EXPECT_GE(when, prev);
        prev = when;
        ++executed;
    }
    EXPECT_EQ(executed, order.size());
    EXPECT_EQ(executed, 1000u - 334u);
}

} // namespace
