/**
 * @file
 * Tests for logging helpers: formatting and throw-on-error behaviour.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace {

TEST(LoggingTest, StrfmtFormats)
{
    EXPECT_EQ(afa::sim::strfmt("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
    EXPECT_EQ(afa::sim::strfmt("%s", "plain"), "plain");
    EXPECT_EQ(afa::sim::strfmt("empty"), "empty");
}

TEST(LoggingTest, PanicThrowsWhenConfigured)
{
    afa::sim::setThrowOnError(true);
    try {
        afa::sim::panic("broken %d", 7);
        FAIL() << "panic returned";
    } catch (const afa::sim::SimError &e) {
        EXPECT_EQ(e.message, "panic: broken 7");
    }
    afa::sim::setThrowOnError(false);
}

TEST(LoggingTest, FatalThrowsWhenConfigured)
{
    afa::sim::setThrowOnError(true);
    try {
        afa::sim::fatal("bad config '%s'", "x");
        FAIL() << "fatal returned";
    } catch (const afa::sim::SimError &e) {
        EXPECT_EQ(e.message, "fatal: bad config 'x'");
    }
    afa::sim::setThrowOnError(false);
}

TEST(LoggingTest, LogLevelRoundTrip)
{
    auto prev = afa::sim::logLevel();
    afa::sim::setLogLevel(afa::sim::LogLevel::Debug);
    EXPECT_EQ(afa::sim::logLevel(), afa::sim::LogLevel::Debug);
    afa::sim::setLogLevel(prev);
}

TEST(TypesTest, DurationHelpers)
{
    using namespace afa::sim;
    EXPECT_EQ(usec(1), 1000u);
    EXPECT_EQ(msec(1), 1000u * 1000u);
    EXPECT_EQ(sec(1), 1000u * 1000u * 1000u);
    EXPECT_EQ(usec(2.5), 2500u);
    EXPECT_DOUBLE_EQ(toUsec(usec(30)), 30.0);
    EXPECT_DOUBLE_EQ(toMsec(msec(5)), 5.0);
    EXPECT_DOUBLE_EQ(toSec(sec(2)), 2.0);
}

} // namespace
