/**
 * @file
 * Tests for logging helpers: formatting, throw-on-error behaviour,
 * and the concurrency contract of the global logger (relaxed-atomic
 * configuration + mutex-serialised sink). The concurrency tests are
 * the workload the TSan CI job runs to prove log() is race-free
 * during parallel sweeps.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace {

TEST(LoggingTest, StrfmtFormats)
{
    EXPECT_EQ(afa::sim::strfmt("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
    EXPECT_EQ(afa::sim::strfmt("%s", "plain"), "plain");
    EXPECT_EQ(afa::sim::strfmt("empty"), "empty");
}

TEST(LoggingTest, PanicThrowsWhenConfigured)
{
    afa::sim::setThrowOnError(true);
    try {
        afa::sim::panic("broken %d", 7);
        FAIL() << "panic returned";
    } catch (const afa::sim::SimError &e) {
        EXPECT_EQ(e.message, "panic: broken 7");
    }
    afa::sim::setThrowOnError(false);
}

TEST(LoggingTest, FatalThrowsWhenConfigured)
{
    afa::sim::setThrowOnError(true);
    try {
        afa::sim::fatal("bad config '%s'", "x");
        FAIL() << "fatal returned";
    } catch (const afa::sim::SimError &e) {
        EXPECT_EQ(e.message, "fatal: bad config 'x'");
    }
    afa::sim::setThrowOnError(false);
}

TEST(LoggingTest, LogLevelRoundTrip)
{
    auto prev = afa::sim::logLevel();
    afa::sim::setLogLevel(afa::sim::LogLevel::Debug);
    EXPECT_EQ(afa::sim::logLevel(), afa::sim::LogLevel::Debug);
    afa::sim::setLogLevel(prev);
}

// Workers log concurrently while the main thread flips the level,
// mirroring a parallel experiment sweep. TSan must see no race on
// g_level/g_throw (relaxed atomics) or the shared sink, and every
// emitted line must arrive whole: the sink writes prefix, message and
// newline under one lock, so a torn line means the mutex contract
// broke.
TEST(LoggingTest, ConcurrentLoggingIsRaceFreeAndLineAtomic)
{
    constexpr unsigned kThreads = 4;
    constexpr unsigned kMessages = 200;

    auto prev = afa::sim::logLevel();
    afa::sim::setLogLevel(afa::sim::LogLevel::Warn);

    testing::internal::CaptureStderr();
    {
        std::vector<std::jthread> workers;
        workers.reserve(kThreads);
        for (unsigned t = 0; t < kThreads; ++t) {
            workers.emplace_back([t] {
                for (unsigned i = 0; i < kMessages; ++i) {
                    afa::sim::warn("worker-%u-msg-%u", t, i);
                    // Exercised concurrently with warn(); mostly
                    // suppressed by the level, sometimes racing a
                    // setLogLevel() below.
                    afa::sim::debug("debug-%u-%u", t, i);
                }
            });
        }
        // Concurrent reconfiguration: the relaxed-atomic contract
        // says this may delay/advance message visibility but must
        // never tear state or crash.
        for (unsigned flip = 0; flip < 50; ++flip) {
            afa::sim::setLogLevel(afa::sim::LogLevel::Quiet);
            afa::sim::setLogLevel(afa::sim::LogLevel::Warn);
        }
    }
    std::string err = testing::internal::GetCapturedStderr();
    afa::sim::setLogLevel(prev);

    // Every line present must be a complete "warn: worker-T-msg-I"
    // (no interleaved fragments). The flips may legitimately drop
    // some messages, so count <= threads * messages.
    std::istringstream lines(err);
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        ++count;
        EXPECT_TRUE(line.rfind("warn: worker-", 0) == 0 &&
                    line.find("-msg-") != std::string::npos)
            << "torn or foreign log line: '" << line << "'";
    }
    EXPECT_LE(count, std::size_t{kThreads} * kMessages);
    EXPECT_GT(count, std::size_t{0});
}

// setThrowOnError raced with panicking workers: each worker sees
// either the throwing or aborting contract, atomically. Keep the
// flag fixed at true while workers panic to assert the throw path is
// thread-safe.
TEST(LoggingTest, ConcurrentPanicThrowsAreIsolated)
{
    afa::sim::setThrowOnError(true);
    std::vector<std::jthread> workers;
    for (unsigned t = 0; t < 4; ++t) {
        workers.emplace_back([t] {
            for (unsigned i = 0; i < 50; ++i) {
                try {
                    afa::sim::panic("boom-%u-%u", t, i);
                    ADD_FAILURE() << "panic returned";
                } catch (const afa::sim::SimError &e) {
                    EXPECT_EQ(e.message,
                              afa::sim::strfmt("panic: boom-%u-%u",
                                               t, i));
                }
            }
        });
    }
    workers.clear();
    afa::sim::setThrowOnError(false);
}

TEST(TypesTest, DurationHelpers)
{
    using namespace afa::sim;
    EXPECT_EQ(usec(1), 1000u);
    EXPECT_EQ(msec(1), 1000u * 1000u);
    EXPECT_EQ(sec(1), 1000u * 1000u * 1000u);
    EXPECT_EQ(usec(2.5), 2500u);
    EXPECT_DOUBLE_EQ(toUsec(usec(30)), 30.0);
    EXPECT_DOUBLE_EQ(toMsec(msec(5)), 5.0);
    EXPECT_DOUBLE_EQ(toSec(sec(2)), 2.0);
}

} // namespace
