/**
 * @file
 * RebuildEngine tests: chunked streaming (read survivors, write the
 * spare), completion bookkeeping, pacing, and determinism of the
 * rebuild timeline.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "raid/rebuild.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace afa::raid;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::sim::usec;
using afa::workload::IoRequest;
using afa::workload::IoResult;

namespace {

/** Mock engine with per-device fixed latencies. */
class MockEngine : public afa::workload::IoEngine
{
  public:
    explicit MockEngine(Simulator &simulator) : sim(simulator) {}

    void
    submit(unsigned cpu, const IoRequest &request,
           CompleteFn on_complete) override
    {
        (void)cpu;
        requests.push_back(request);
        Tick latency = usec(20);
        if (request.device < perDeviceLatency.size() &&
            perDeviceLatency[request.device] != 0)
            latency = perDeviceLatency[request.device];
        sim.scheduleAfter(latency, [fn = std::move(on_complete)] {
            fn(IoResult{});
        });
    }

    std::uint64_t
    deviceBlocks(unsigned) const override
    {
        return 262144;
    }

    Simulator &sim;
    std::vector<Tick> perDeviceLatency;
    std::vector<IoRequest> requests;
};

class RebuildTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        afa::sim::setThrowOnError(true);
        sim = std::make_unique<Simulator>(11);
        engine = std::make_unique<MockEngine>(*sim);
    }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<MockEngine> engine;
};

TEST_F(RebuildTest, StreamsEveryChunkThroughTheEngine)
{
    RebuildParams params;
    params.sources = {0, 1, 2};
    params.target = 3;
    params.blocks = 1000;
    params.chunkBlocks = 256;
    RebuildEngine rebuild(*sim, "rebuild", *engine, params);
    bool completed = false;
    rebuild.setOnComplete([&] { completed = true; });
    rebuild.start(0);
    sim->run();

    EXPECT_TRUE(completed);
    const auto &stats = rebuild.stats();
    EXPECT_TRUE(stats.done);
    EXPECT_FALSE(stats.running);
    EXPECT_EQ(stats.blocksDone, 1000u);
    EXPECT_EQ(stats.chunks, 4u); // 256+256+256+232
    EXPECT_DOUBLE_EQ(rebuild.progress(), 1.0);
    // Per chunk: one read per source plus one target write.
    ASSERT_EQ(engine->requests.size(), 4u * 4u);
    std::uint64_t reads = 0, writes = 0;
    for (const auto &req : engine->requests) {
        if (req.op == afa::nvme::Op::Write) {
            EXPECT_EQ(req.device, 3u);
            ++writes;
        } else {
            EXPECT_NE(req.device, 3u);
            ++reads;
        }
    }
    EXPECT_EQ(reads, 12u);
    EXPECT_EQ(writes, 4u);
    // The last (short) chunk covers exactly the remaining extent.
    EXPECT_EQ(engine->requests.back().bytes, 232u * 4096u);
    EXPECT_EQ(engine->requests.back().lba, 768u);
}

TEST_F(RebuildTest, ChunkWaitsForSlowestSource)
{
    engine->perDeviceLatency = {usec(20), usec(300), usec(20),
                                usec(20)};
    RebuildParams params;
    params.sources = {0, 1, 2};
    params.target = 3;
    params.blocks = 256;
    params.chunkBlocks = 256;
    RebuildEngine rebuild(*sim, "rebuild", *engine, params);
    rebuild.start(0);
    sim->run();
    // One chunk: slowest source read (300 us) + target write (20 us).
    EXPECT_EQ(rebuild.stats().finishedAt, usec(320));
}

TEST_F(RebuildTest, InterChunkDelayPacesTheRebuild)
{
    RebuildParams params;
    params.sources = {0, 1};
    params.target = 2;
    params.blocks = 512;
    params.chunkBlocks = 256;
    RebuildEngine fast(*sim, "fast", *engine, params);
    fast.start(0);
    sim->run();
    Tick unpaced = fast.stats().finishedAt;

    auto sim2 = std::make_unique<Simulator>(11);
    MockEngine engine2(*sim2);
    params.interChunkDelay = usec(500);
    RebuildEngine paced(*sim2, "paced", engine2, params);
    paced.start(0);
    sim2->run();
    EXPECT_EQ(paced.stats().finishedAt, unpaced + usec(500));
}

TEST_F(RebuildTest, RebuildTimelineIsDeterministic)
{
    auto runOnce = [] {
        Simulator local_sim(42);
        MockEngine local_engine(local_sim);
        RebuildParams params;
        params.sources = {0, 1, 2};
        params.target = 3;
        params.blocks = 700;
        params.chunkBlocks = 128;
        RebuildEngine rebuild(local_sim, "rebuild", local_engine,
                              params);
        rebuild.start(usec(100));
        local_sim.run();
        return rebuild.stats().finishedAt;
    };
    Tick first = runOnce();
    EXPECT_EQ(first, runOnce());
    EXPECT_GT(first, usec(100));
}

TEST_F(RebuildTest, BadParamsAreFatal)
{
    RebuildParams params;
    params.target = 0;
    params.blocks = 10;
    EXPECT_THROW(RebuildEngine(*sim, "r", *engine, params),
                 afa::sim::SimError);
    params.sources = {0, 1};
    EXPECT_THROW(RebuildEngine(*sim, "r", *engine, params),
                 afa::sim::SimError); // target is also a source
    params.sources = {1, 2};
    params.chunkBlocks = 0;
    EXPECT_THROW(RebuildEngine(*sim, "r", *engine, params),
                 afa::sim::SimError);
}

TEST_F(RebuildTest, ZeroExtentCompletesImmediately)
{
    RebuildParams params;
    params.sources = {1};
    params.target = 0;
    params.blocks = 0;
    RebuildEngine rebuild(*sim, "rebuild", *engine, params);
    bool completed = false;
    rebuild.setOnComplete([&] { completed = true; });
    rebuild.start(0);
    sim->run();
    EXPECT_TRUE(completed);
    EXPECT_TRUE(rebuild.stats().done);
    EXPECT_EQ(rebuild.stats().chunks, 0u);
    EXPECT_TRUE(engine->requests.empty());
}

} // namespace
