/**
 * @file
 * Volume tests: striping address math, fan-out/join semantics (the
 * tail-at-scale property: a client I/O is as slow as its slowest
 * member), mirroring policies, and capacity arithmetic.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "raid/volume.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace afa::raid;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::sim::usec;
using afa::workload::IoRequest;
using afa::workload::IoResult;

namespace {

/** Mock engine with per-device fixed latencies. */
class MockEngine : public afa::workload::IoEngine
{
  public:
    explicit MockEngine(Simulator &simulator) : sim(simulator) {}

    void
    submit(unsigned cpu, const IoRequest &request,
           CompleteFn on_complete) override
    {
        (void)cpu;
        requests.push_back(request);
        Tick latency = usec(20);
        if (request.device < perDeviceLatency.size() &&
            perDeviceLatency[request.device] != 0)
            latency = perDeviceLatency[request.device];
        IoResult result;
        if (request.device < failDevices.size() &&
            failDevices[request.device])
            result.status = afa::nvme::Status::TimedOut;
        sim.scheduleAfter(latency, [fn = std::move(on_complete),
                                    result] { fn(result); });
    }

    std::uint64_t
    deviceBlocks(unsigned device) const override
    {
        return device == 3 ? 1000 : 2048; // device 3 is smaller
    }

    Simulator &sim;
    std::vector<Tick> perDeviceLatency;
    std::vector<bool> failDevices; ///< devices answering with errors
    std::vector<IoRequest> requests;
};

class VolumeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        afa::sim::setThrowOnError(true);
        sim = std::make_unique<Simulator>(9);
        engine = std::make_unique<MockEngine>(*sim);
    }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<MockEngine> engine;
};

TEST_F(VolumeTest, StripeMappingRotatesMembers)
{
    StripedVolume vol(*sim, "vol", *engine, {0, 1, 2}, 1);
    EXPECT_EQ(vol.mapBlock(0), (std::pair<unsigned, std::uint64_t>{0, 0}));
    EXPECT_EQ(vol.mapBlock(1), (std::pair<unsigned, std::uint64_t>{1, 0}));
    EXPECT_EQ(vol.mapBlock(2), (std::pair<unsigned, std::uint64_t>{2, 0}));
    EXPECT_EQ(vol.mapBlock(3), (std::pair<unsigned, std::uint64_t>{0, 1}));
}

TEST_F(VolumeTest, WideStripsKeepRunsTogether)
{
    StripedVolume vol(*sim, "vol", *engine, {0, 1}, 4);
    EXPECT_EQ(vol.mapBlock(3),
              (std::pair<unsigned, std::uint64_t>{0, 3}));
    EXPECT_EQ(vol.mapBlock(4),
              (std::pair<unsigned, std::uint64_t>{1, 0}));
    EXPECT_EQ(vol.mapBlock(8),
              (std::pair<unsigned, std::uint64_t>{0, 4}));
}

TEST_F(VolumeTest, StripedCapacityIsSumOfSmallest)
{
    StripedVolume vol(*sim, "vol", *engine, {0, 3}, 1);
    // Smallest member (1000 blocks) x 2 members.
    EXPECT_EQ(vol.deviceBlocks(0), 2000u);
}

TEST_F(VolumeTest, LargeIoFansOutAcrossMembers)
{
    StripedVolume vol(*sim, "vol", *engine, {0, 1, 2, 3}, 1);
    IoRequest req;
    req.device = 0;
    req.lba = 0;
    req.bytes = 4096 * 8; // 8 blocks over 4 members
    bool done = false;
    vol.submit(0, req, [&](const IoResult &) { done = true; });
    sim->run();
    EXPECT_TRUE(done);
    EXPECT_EQ(engine->requests.size(), 4u); // coalesced per member
    for (const auto &child : engine->requests)
        EXPECT_EQ(child.bytes, 4096u * 2);
    EXPECT_EQ(vol.stats().clientIos, 1u);
    EXPECT_EQ(vol.stats().memberIos, 4u);
}

TEST_F(VolumeTest, ClientCompletesWithSlowestMember)
{
    // The tail-at-scale join: member 2 is 10x slower.
    engine->perDeviceLatency = {usec(20), usec(20), usec(200),
                                usec(20)};
    StripedVolume vol(*sim, "vol", *engine, {0, 1, 2, 3}, 1);
    IoRequest req;
    req.device = 0;
    req.lba = 0;
    req.bytes = 4096 * 4;
    Tick done_at = 0;
    vol.submit(0, req, [&](const IoResult &) { done_at = sim->now(); });
    sim->run();
    EXPECT_EQ(done_at, usec(200));
}

TEST_F(VolumeTest, SmallIoTouchesOneMember)
{
    StripedVolume vol(*sim, "vol", *engine, {0, 1, 2, 3}, 1);
    IoRequest req;
    req.device = 0;
    req.lba = 5; // member 1, lba 1
    req.bytes = 4096;
    bool done = false;
    vol.submit(0, req, [&](const IoResult &) { done = true; });
    sim->run();
    EXPECT_TRUE(done);
    ASSERT_EQ(engine->requests.size(), 1u);
    EXPECT_EQ(engine->requests[0].device, 1u);
    EXPECT_EQ(engine->requests[0].lba, 1u);
}

TEST_F(VolumeTest, NonZeroDevicePanics)
{
    StripedVolume vol(*sim, "vol", *engine, {0, 1}, 1);
    IoRequest req;
    req.device = 1;
    EXPECT_THROW(vol.submit(0, req, [](const IoResult &) {}),
                 afa::sim::SimError);
    EXPECT_THROW(vol.deviceBlocks(1), afa::sim::SimError);
}

TEST_F(VolumeTest, EmptyMemberListIsFatal)
{
    EXPECT_THROW(StripedVolume(*sim, "vol", *engine, {}, 1),
                 afa::sim::SimError);
    EXPECT_THROW(StripedVolume(*sim, "vol", *engine, {0}, 0),
                 afa::sim::SimError);
    EXPECT_THROW(MirroredVolume(*sim, "vol", *engine, {}),
                 afa::sim::SimError);
}

TEST_F(VolumeTest, MirrorWritesReplicate)
{
    MirroredVolume vol(*sim, "vol", *engine, {0, 1, 2});
    IoRequest req;
    req.device = 0;
    req.op = afa::nvme::Op::Write;
    req.lba = 7;
    req.bytes = 4096;
    bool done = false;
    vol.submit(0, req, [&](const IoResult &) { done = true; });
    sim->run();
    EXPECT_TRUE(done);
    EXPECT_EQ(engine->requests.size(), 3u);
    for (unsigned m = 0; m < 3; ++m)
        EXPECT_EQ(engine->requests[m].device, m);
}

TEST_F(VolumeTest, MirrorWriteWaitsForSlowestReplica)
{
    engine->perDeviceLatency = {usec(20), usec(500)};
    MirroredVolume vol(*sim, "vol", *engine, {0, 1});
    IoRequest req;
    req.device = 0;
    req.op = afa::nvme::Op::Write;
    Tick done_at = 0;
    vol.submit(0, req, [&](const IoResult &) { done_at = sim->now(); });
    sim->run();
    EXPECT_EQ(done_at, usec(500));
}

TEST_F(VolumeTest, MirrorRoundRobinSpreadsReads)
{
    MirroredVolume vol(*sim, "vol", *engine, {0, 1});
    IoRequest req;
    req.device = 0;
    for (int i = 0; i < 10; ++i)
        vol.submit(0, req, [](const IoResult &) {});
    sim->run();
    EXPECT_EQ(vol.readsPerMember()[0], 5u);
    EXPECT_EQ(vol.readsPerMember()[1], 5u);
}

TEST_F(VolumeTest, MirrorPrimaryPolicyPinsReads)
{
    MirroredVolume vol(*sim, "vol", *engine, {0, 1},
                       ReadPolicy::Primary);
    IoRequest req;
    req.device = 0;
    for (int i = 0; i < 6; ++i)
        vol.submit(0, req, [](const IoResult &) {});
    sim->run();
    EXPECT_EQ(vol.readsPerMember()[0], 6u);
    EXPECT_EQ(vol.readsPerMember()[1], 0u);
}

TEST_F(VolumeTest, MirrorCapacityIsSmallestMember)
{
    MirroredVolume vol(*sim, "vol", *engine, {0, 3});
    EXPECT_EQ(vol.deviceBlocks(0), 1000u);
}

TEST_F(VolumeTest, MirrorReadFailsOverToSurvivor)
{
    engine->failDevices = {true, false};
    MirroredVolume vol(*sim, "vol", *engine, {0, 1},
                       ReadPolicy::Primary);
    IoRequest req;
    req.device = 0;
    bool done = false;
    IoResult seen;
    vol.submit(0, req, [&](const IoResult &r) {
        done = true;
        seen = r;
    });
    sim->run();
    // Primary errored; the read retried on the mirror and succeeded.
    EXPECT_TRUE(done);
    EXPECT_TRUE(seen.ok());
    EXPECT_EQ(engine->requests.size(), 2u);
    EXPECT_TRUE(vol.memberFailed(0));
    EXPECT_FALSE(vol.memberFailed(1));
    EXPECT_EQ(vol.stats().degradedReads, 1u);
    // Subsequent reads avoid the failed primary entirely.
    vol.submit(0, req, [](const IoResult &) {});
    sim->run();
    EXPECT_EQ(engine->requests.back().device, 1u);
}

TEST_F(VolumeTest, MirrorAllMembersFailedAborts)
{
    MirroredVolume vol(*sim, "vol", *engine, {0, 1});
    vol.setMemberFailed(0, true);
    vol.setMemberFailed(1, true);
    IoRequest req;
    req.device = 0;
    IoResult seen;
    vol.submit(0, req, [&](const IoResult &r) { seen = r; });
    sim->run();
    EXPECT_FALSE(seen.ok());
    EXPECT_EQ(vol.stats().failedIos, 1u);
    // Writes to an all-failed mirror abort too.
    req.op = afa::nvme::Op::Write;
    seen = IoResult{};
    vol.submit(0, req, [&](const IoResult &r) { seen = r; });
    sim->run();
    EXPECT_FALSE(seen.ok());
    EXPECT_EQ(vol.stats().failedIos, 2u);
    EXPECT_TRUE(engine->requests.empty());
}

TEST_F(VolumeTest, MirrorWritesSkipFailedMembers)
{
    MirroredVolume vol(*sim, "vol", *engine, {0, 1, 2});
    vol.setMemberFailed(1, true);
    IoRequest req;
    req.device = 0;
    req.op = afa::nvme::Op::Write;
    bool done = false;
    vol.submit(0, req, [&](const IoResult &) { done = true; });
    sim->run();
    EXPECT_TRUE(done);
    ASSERT_EQ(engine->requests.size(), 2u);
    EXPECT_EQ(engine->requests[0].device, 0u);
    EXPECT_EQ(engine->requests[1].device, 2u);
}

TEST_F(VolumeTest, ParityMappingRotatesParity)
{
    ParityVolume vol(*sim, "vol", *engine, {0, 1, 2}, 1);
    // Stripe 0: parity on member 0, data on members 1 and 2.
    auto m0 = vol.mapBlock(0);
    EXPECT_EQ(m0.dataMember, 1u);
    EXPECT_EQ(m0.parityMember, 0u);
    EXPECT_EQ(m0.memberLba, 0u);
    auto m1 = vol.mapBlock(1);
    EXPECT_EQ(m1.dataMember, 2u);
    EXPECT_EQ(m1.parityMember, 0u);
    // Stripe 1: parity rotates to member 1.
    auto m2 = vol.mapBlock(2);
    EXPECT_EQ(m2.dataMember, 0u);
    EXPECT_EQ(m2.parityMember, 1u);
    EXPECT_EQ(m2.memberLba, 1u);
    // Capacity: two data shares of the smallest member.
    ParityVolume small(*sim, "vol2", *engine, {0, 1, 3}, 1);
    EXPECT_EQ(small.deviceBlocks(0), 2000u);
}

TEST_F(VolumeTest, ParityHealthyReadTouchesDataMemberOnly)
{
    ParityVolume vol(*sim, "vol", *engine, {0, 1, 2}, 1);
    IoRequest req;
    req.device = 0;
    req.lba = 0;
    bool done = false;
    vol.submit(0, req, [&](const IoResult &) { done = true; });
    sim->run();
    EXPECT_TRUE(done);
    ASSERT_EQ(engine->requests.size(), 1u);
    EXPECT_EQ(engine->requests[0].device, 1u);
    EXPECT_EQ(vol.stats().degradedReads, 0u);
}

TEST_F(VolumeTest, ParityDegradedReadReconstructsFromSurvivors)
{
    ParityVolume vol(*sim, "vol", *engine, {0, 1, 2, 3}, 1);
    vol.setMemberFailed(1, true);
    IoRequest req;
    req.device = 0;
    req.lba = 0; // data member 1 in stripe 0
    bool done = false;
    vol.submit(0, req, [&](const IoResult &r) {
        done = true;
        EXPECT_TRUE(r.ok());
    });
    sim->run();
    EXPECT_TRUE(done);
    // Reconstruction read every survivor (members 0, 2, 3).
    ASSERT_EQ(engine->requests.size(), 3u);
    for (const auto &child : engine->requests)
        EXPECT_NE(child.device, 1u);
    EXPECT_EQ(vol.stats().degradedReads, 1u);
}

TEST_F(VolumeTest, ParityDegradedReadWaitsForSlowestSurvivor)
{
    engine->perDeviceLatency = {usec(20), usec(20), usec(300),
                                usec(20)};
    ParityVolume vol(*sim, "vol", *engine, {0, 1, 2, 3}, 1);
    vol.setMemberFailed(1, true);
    IoRequest req;
    req.device = 0;
    req.lba = 0;
    Tick done_at = 0;
    vol.submit(0, req,
               [&](const IoResult &) { done_at = sim->now(); });
    sim->run();
    EXPECT_EQ(done_at, usec(300));
}

TEST_F(VolumeTest, ParityReadFailsOverOnMemberError)
{
    engine->failDevices = {false, true, false};
    ParityVolume vol(*sim, "vol", *engine, {0, 1, 2}, 1);
    IoRequest req;
    req.device = 0;
    req.lba = 0; // data member 1
    IoResult seen;
    seen.status = afa::nvme::Status::Aborted;
    vol.submit(0, req, [&](const IoResult &r) { seen = r; });
    sim->run();
    // Direct read errored, then the reconstruction succeeded.
    EXPECT_TRUE(seen.ok());
    EXPECT_TRUE(vol.memberFailed(1));
    EXPECT_EQ(vol.stats().degradedReads, 1u);
}

TEST_F(VolumeTest, ParityWritePaysSmallWritePenalty)
{
    ParityVolume vol(*sim, "vol", *engine, {0, 1, 2}, 1);
    IoRequest req;
    req.device = 0;
    req.lba = 0;
    req.op = afa::nvme::Op::Write;
    bool done = false;
    vol.submit(0, req, [&](const IoResult &) { done = true; });
    sim->run();
    EXPECT_TRUE(done);
    // Read-modify-write: read old data + parity, write both back.
    ASSERT_EQ(engine->requests.size(), 4u);
    EXPECT_EQ(engine->requests[0].op, afa::nvme::Op::Read);
    EXPECT_EQ(engine->requests[1].op, afa::nvme::Op::Read);
    EXPECT_EQ(engine->requests[2].op, afa::nvme::Op::Write);
    EXPECT_EQ(engine->requests[3].op, afa::nvme::Op::Write);
}

TEST_F(VolumeTest, ParityDegradedWriteUpdatesSurvivorDirectly)
{
    ParityVolume vol(*sim, "vol", *engine, {0, 1, 2}, 1);
    vol.setMemberFailed(0, true); // parity of stripe 0
    IoRequest req;
    req.device = 0;
    req.lba = 0; // data member 1, parity member 0
    req.op = afa::nvme::Op::Write;
    bool done = false;
    vol.submit(0, req, [&](const IoResult &) { done = true; });
    sim->run();
    EXPECT_TRUE(done);
    // Parity lost: the data member absorbs the write, no RMW.
    ASSERT_EQ(engine->requests.size(), 1u);
    EXPECT_EQ(engine->requests[0].device, 1u);
    EXPECT_EQ(engine->requests[0].op, afa::nvme::Op::Write);
}

TEST_F(VolumeTest, ParityNeedsThreeMembers)
{
    EXPECT_THROW(ParityVolume(*sim, "vol", *engine, {0, 1}, 1),
                 afa::sim::SimError);
}

TEST_F(VolumeTest, VolumesCompose)
{
    // RAID-10: a stripe over two mirrors.
    MirroredVolume m0(*sim, "m0", *engine, {0, 1});
    MirroredVolume m1(*sim, "m1", *engine, {2, 3});
    // A tiny adapter engine exposing the two mirrors as devices 0/1.
    struct TwoMirrors : afa::workload::IoEngine
    {
        MirroredVolume &a, &b;
        TwoMirrors(MirroredVolume &x, MirroredVolume &y) : a(x), b(y)
        {
        }
        void
        submit(unsigned cpu, const IoRequest &request,
               CompleteFn fn) override
        {
            IoRequest child = request;
            child.device = 0;
            (request.device == 0 ? a : b)
                .submit(cpu, child, std::move(fn));
        }
        std::uint64_t
        deviceBlocks(unsigned device) const override
        {
            return (device == 0 ? a : b).deviceBlocks(0);
        }
    } pair_engine(m0, m1);
    StripedVolume raid10(*sim, "raid10", pair_engine, {0, 1}, 1);
    IoRequest req;
    req.device = 0;
    req.op = afa::nvme::Op::Write;
    req.bytes = 4096 * 2;
    bool done = false;
    raid10.submit(0, req, [&](const IoResult &) { done = true; });
    sim->run();
    EXPECT_TRUE(done);
    EXPECT_EQ(engine->requests.size(), 4u); // 2 strips x 2 replicas
}

} // namespace
