/**
 * @file
 * FaultPlan spec parsing: directives, defaults, validation errors,
 * deterministic event ordering, and the summary rendering.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "fault/fault_plan.hh"
#include "sim/logging.hh"

using namespace afa::fault;
using afa::sim::msec;

namespace {

class FaultPlanTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }
};

TEST_F(FaultPlanTest, DefaultsWithoutDirectives)
{
    auto plan = FaultPlan::parseText("");
    EXPECT_EQ(plan.nvmeTimeout, msec(10));
    EXPECT_EQ(plan.maxRetries, 3u);
    EXPECT_EQ(plan.retryBackoff, msec(1));
    EXPECT_TRUE(plan.events.empty());
}

TEST_F(FaultPlanTest, ParsesEveryDirective)
{
    auto plan = FaultPlan::parseText(
        "# driver policy\n"
        "timeout_ms 5\n"
        "max_retries 2\n"
        "retry_backoff_ms 0.5\n"
        "\n"
        "limp       ssd=3 at_ms=20 dur_ms=40 factor=8\n"
        "dropout    ssd=5 at_ms=10 dur_ms=15\n"
        "link_error ssd=2 at_ms=5  dur_ms=30 rate=0.2\n"
        "ctrl_stall ssd=0 at_ms=12 dur_ms=2  # trailing comment\n");
    EXPECT_EQ(plan.nvmeTimeout, msec(5));
    EXPECT_EQ(plan.maxRetries, 2u);
    EXPECT_EQ(plan.retryBackoff, msec(0.5));
    ASSERT_EQ(plan.events.size(), 4u);
    // Events come back sorted by onset, not by spec order.
    EXPECT_EQ(plan.events[0].kind, FaultKind::LinkError);
    EXPECT_EQ(plan.events[0].ssd, 2u);
    EXPECT_EQ(plan.events[0].at, msec(5));
    EXPECT_EQ(plan.events[0].duration, msec(30));
    EXPECT_DOUBLE_EQ(plan.events[0].rate, 0.2);
    EXPECT_EQ(plan.events[1].kind, FaultKind::Dropout);
    EXPECT_EQ(plan.events[2].kind, FaultKind::CtrlStall);
    EXPECT_EQ(plan.events[3].kind, FaultKind::Limp);
    EXPECT_DOUBLE_EQ(plan.events[3].factor, 8.0);
}

TEST_F(FaultPlanTest, RejectsBadSpecs)
{
    // Unknown directive.
    EXPECT_THROW(FaultPlan::parseText("limpp ssd=0 at_ms=0 dur_ms=1"),
                 afa::sim::SimError);
    // Missing required field.
    EXPECT_THROW(FaultPlan::parseText("limp ssd=0 at_ms=0 factor=2"),
                 afa::sim::SimError);
    // Limp factor below 1 would speed the device up.
    EXPECT_THROW(
        FaultPlan::parseText("limp ssd=0 at_ms=0 dur_ms=1 factor=0.5"),
        afa::sim::SimError);
    // Certain-corruption links would replay forever.
    EXPECT_THROW(
        FaultPlan::parseText(
            "link_error ssd=0 at_ms=0 dur_ms=1 rate=1.0"),
        afa::sim::SimError);
    // Negative and non-numeric values.
    EXPECT_THROW(FaultPlan::parseText("timeout_ms -4"),
                 afa::sim::SimError);
    EXPECT_THROW(FaultPlan::parseText("timeout_ms ten"),
                 afa::sim::SimError);
    EXPECT_THROW(FaultPlan::parseText("timeout_ms 1 2"),
                 afa::sim::SimError);
}

TEST_F(FaultPlanTest, FileRoundTrip)
{
    const char *path = "fault_plan_test.plan";
    {
        std::ofstream out(path);
        out << "dropout ssd=7 at_ms=3 dur_ms=9\n";
    }
    auto plan = FaultPlan::parseFile(path);
    std::remove(path);
    ASSERT_EQ(plan.events.size(), 1u);
    EXPECT_EQ(plan.events[0].kind, FaultKind::Dropout);
    EXPECT_EQ(plan.events[0].ssd, 7u);
    EXPECT_THROW(FaultPlan::parseFile("no_such_plan_file"),
                 afa::sim::SimError);
}

TEST_F(FaultPlanTest, SummaryNamesEveryEvent)
{
    auto plan = FaultPlan::parseText(
        "limp ssd=3 at_ms=20 dur_ms=40 factor=8\n"
        "link_error ssd=2 at_ms=5 dur_ms=30 rate=0.25\n");
    std::string text = plan.summary();
    EXPECT_NE(text.find("2 event(s)"), std::string::npos);
    EXPECT_NE(text.find("limp"), std::string::npos);
    EXPECT_NE(text.find("link_error"), std::string::npos);
    EXPECT_NE(text.find("factor=8.0"), std::string::npos);
    EXPECT_NE(text.find("rate=0.250"), std::string::npos);
    EXPECT_EQ(faultKindName(FaultKind::CtrlStall),
              std::string("ctrl_stall"));
}

} // namespace
