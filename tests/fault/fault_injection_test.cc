/**
 * @file
 * End-to-end fault injection through the full AFA stack: each fault
 * kind produces its signature (inflated tails, driver timeouts, link
 * replays, pipeline stalls), healthy runs are untouched by the
 * subsystem's presence, and faulted runs replay deterministically
 * across repeats and worker counts.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/run_plan.hh"
#include "fault/fault_plan.hh"
#include "sim/logging.hh"

using namespace afa::core;
using afa::fault::FaultPlan;

namespace {

ExperimentParams
smallParams()
{
    ExperimentParams params;
    params.ssds = 8;
    params.runtime = afa::sim::msec(40);
    params.smartPeriod = afa::sim::msec(20);
    params.irqBalanceInterval = afa::sim::msec(20);
    params.job =
        afa::workload::FioJob::parse("rw=randread bs=4k iodepth=1");
    return params;
}

ExperimentParams
faultedParams(const char *spec)
{
    auto params = smallParams();
    params.faults = std::make_shared<FaultPlan>(
        FaultPlan::parseText(spec));
    return params;
}

void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    ASSERT_EQ(a.perDevice.size(), b.perDevice.size());
    for (std::size_t d = 0; d < a.perDevice.size(); ++d) {
        const auto &lhs = a.perDevice[d];
        const auto &rhs = b.perDevice[d];
        EXPECT_EQ(lhs.samples, rhs.samples);
        EXPECT_EQ(lhs.meanUs, rhs.meanUs);
        EXPECT_EQ(lhs.maxUs, rhs.maxUs);
        for (std::size_t p = 0; p < lhs.ladderUs.size(); ++p)
            EXPECT_EQ(lhs.ladderUs[p], rhs.ladderUs[p]);
    }
    EXPECT_EQ(a.totalIos, b.totalIos);
    // The fault counters are part of the replay contract too.
    for (const char *name :
         {"driver.timeouts", "driver.retries", "driver.aborts",
          "driver.stale_completions", "nvme.dropped_commands",
          "nvme.fault_stall_ticks", "fabric.link_replays",
          "fault.events_applied", "fault.events_reverted"})
        EXPECT_EQ(a.systemMetrics.counter(name),
                  b.systemMetrics.counter(name))
            << name;
}

class FaultInjectionTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }
};

TEST_F(FaultInjectionTest, LimpInflatesTheTargetsTail)
{
    auto healthy = ExperimentRunner::run(smallParams());
    auto limped = ExperimentRunner::run(faultedParams(
        "limp ssd=3 at_ms=10 dur_ms=20 factor=50\n"));

    // The limping device's worst-case inflates far beyond anything a
    // healthy run produces; the window closes again before the end.
    EXPECT_GT(limped.perDevice[3].maxUs, healthy.perDevice[3].maxUs);
    EXPECT_GT(limped.systemMetrics.counter("nvme.fault_stall_ticks"),
              0u);
    EXPECT_EQ(limped.systemMetrics.counter("fault.events_applied"),
              1u);
    EXPECT_EQ(limped.systemMetrics.counter("fault.events_reverted"),
              1u);
    EXPECT_GT(limped.totalIos, 0u);
}

TEST_F(FaultInjectionTest, DropoutDrivesTimeoutRetryAbort)
{
    auto result = ExperimentRunner::run(faultedParams(
        "timeout_ms 1\n"
        "max_retries 1\n"
        "retry_backoff_ms 0.2\n"
        "dropout ssd=5 at_ms=10 dur_ms=15\n"));

    // Commands sent into the dead window are silently dropped; the
    // driver times out, retries, and finally aborts them.
    EXPECT_GT(result.systemMetrics.counter("nvme.dropped_commands"),
              0u);
    EXPECT_GT(result.systemMetrics.counter("driver.timeouts"), 0u);
    EXPECT_GT(result.systemMetrics.counter("driver.retries"), 0u);
    EXPECT_GT(result.systemMetrics.counter("driver.aborts"), 0u);
    // The device recovers: it still completed IOs over the run.
    EXPECT_GT(result.perDevice[5].samples, 0u);
}

TEST_F(FaultInjectionTest, SlowDeviceCompletionsAfterTimeoutAreStale)
{
    // A limping device with a too-tight timeout answers *after* the
    // driver gave up on the command: the late completion must be
    // swallowed as stale, not crash the completion path.
    auto result = ExperimentRunner::run(faultedParams(
        "timeout_ms 0.05\n"
        "max_retries 2\n"
        "retry_backoff_ms 0.05\n"
        "limp ssd=2 at_ms=10 dur_ms=20 factor=50\n"));
    EXPECT_GT(result.systemMetrics.counter("driver.timeouts"), 0u);
    EXPECT_GT(
        result.systemMetrics.counter("driver.stale_completions"), 0u);
    EXPECT_GT(result.totalIos, 0u);
}

TEST_F(FaultInjectionTest, LinkErrorsReplayTransfers)
{
    auto result = ExperimentRunner::run(faultedParams(
        "link_error ssd=0 at_ms=5 dur_ms=30 rate=0.3\n"));
    EXPECT_GT(result.systemMetrics.counter("fabric.link_replays"),
              0u);
    // Replays delay but never lose commands: no driver involvement.
    EXPECT_EQ(result.systemMetrics.counter("driver.timeouts"), 0u);
    EXPECT_GT(result.perDevice[0].samples, 0u);
}

TEST_F(FaultInjectionTest, CtrlStallFreezesThePipeline)
{
    auto result = ExperimentRunner::run(faultedParams(
        "ctrl_stall ssd=1 at_ms=10 dur_ms=2\n"));
    EXPECT_GT(result.systemMetrics.counter("nvme.fault_stall_ticks"),
              0u);
    EXPECT_GT(result.perDevice[1].maxUs, 1000.0); // >= the 2 ms freeze
}

TEST_F(FaultInjectionTest, EmptyPlanIsTickIdenticalToNoPlan)
{
    // Loading a plan with no events arms the subsystem (timeouts,
    // metrics) but must not move a single completion by one tick.
    auto without = ExperimentRunner::run(smallParams());
    auto with = ExperimentRunner::run(faultedParams("timeout_ms 50\n"));
    ASSERT_EQ(without.perDevice.size(), with.perDevice.size());
    for (std::size_t d = 0; d < without.perDevice.size(); ++d) {
        EXPECT_EQ(without.perDevice[d].samples,
                  with.perDevice[d].samples);
        EXPECT_EQ(without.perDevice[d].meanUs,
                  with.perDevice[d].meanUs);
        EXPECT_EQ(without.perDevice[d].maxUs,
                  with.perDevice[d].maxUs);
    }
    EXPECT_EQ(without.totalIos, with.totalIos);
    // The healthy run publishes no fault counters at all; the armed
    // one does (all zero here).
    EXPECT_FALSE(without.systemMetrics.find("driver.timeouts"));
    ASSERT_TRUE(with.systemMetrics.find("driver.timeouts"));
    EXPECT_EQ(with.systemMetrics.counter("driver.timeouts"), 0u);
}

TEST_F(FaultInjectionTest, FaultedRunsReplayAcrossWorkerCounts)
{
    auto params = faultedParams(
        "timeout_ms 1\n"
        "dropout ssd=5 at_ms=10 dur_ms=10\n"
        "limp ssd=3 at_ms=5 dur_ms=20 factor=20\n"
        "link_error ssd=0 at_ms=0 dur_ms=40 rate=0.25\n");
    RunPlan plan(params);
    plan.profiles({TuningProfile::Default, TuningProfile::IrqAffinity});
    auto descriptors = plan.expand();

    std::vector<ExperimentResult> serial;
    for (const auto &desc : descriptors)
        serial.push_back(ExperimentRunner::run(desc.params));

    ParallelExperimentRunner one(1);
    auto one_worker = one.run(descriptors);
    ParallelExperimentRunner four(4);
    auto four_workers = four.run(descriptors);

    ASSERT_EQ(one_worker.size(), serial.size());
    ASSERT_EQ(four_workers.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        expectIdentical(serial[i], one_worker[i]);
        expectIdentical(serial[i], four_workers[i]);
    }
    // The faults actually fired in this configuration.
    EXPECT_GT(serial[0].systemMetrics.counter("driver.timeouts"), 0u);
    EXPECT_GT(serial[0].systemMetrics.counter("fabric.link_replays"),
              0u);
}

TEST_F(FaultInjectionTest, DeviceFastPathIsExactUnderEveryFaultKind)
{
    // The device command fast path must not move a faulted run by one
    // tick: every fault hook (limp, pipeline stall, dropout) demotes
    // in-flight fast commands back onto the chained model at their
    // reference ticks, so --device-fastpath {0,1} are tick-identical.
    for (const char *spec :
         {"limp ssd=3 at_ms=10 dur_ms=20 factor=50\n",
          "ctrl_stall ssd=1 at_ms=10 dur_ms=2\n",
          "timeout_ms 1\n"
          "max_retries 1\n"
          "retry_backoff_ms 0.2\n"
          "dropout ssd=5 at_ms=10 dur_ms=15\n"}) {
        auto on = faultedParams(spec);
        auto off = faultedParams(spec);
        off.deviceFastPath = false;
        auto a = ExperimentRunner::run(on);
        auto b = ExperimentRunner::run(off);
        expectIdentical(a, b);
        // The healthy majority fast-paths; the fault windows fall
        // back. The disabled run is all-chained by construction.
        EXPECT_GT(a.systemMetrics.counter("nvme.fast_path_commands"),
                  0u)
            << spec;
        EXPECT_GT(a.systemMetrics.counter("nvme.fallback_commands"),
                  0u)
            << spec;
        EXPECT_EQ(b.systemMetrics.counter("nvme.fast_path_commands"),
                  0u)
            << spec;
        // Fewer executed events for the same simulated run is the
        // entire point of the fast path.
        EXPECT_LT(a.simulatedEvents, b.simulatedEvents) << spec;
    }
}

TEST_F(FaultInjectionTest, PlanTargetingMissingSsdIsFatal)
{
    EXPECT_THROW(ExperimentRunner::run(faultedParams(
                     "limp ssd=99 at_ms=0 dur_ms=1 factor=2\n")),
                 afa::sim::SimError);
    EXPECT_THROW(ExperimentRunner::run(faultedParams(
                     "link_error ssd=99 at_ms=0 dur_ms=1 rate=0.1\n")),
                 afa::sim::SimError);
}

} // namespace
