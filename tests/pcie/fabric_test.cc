/**
 * @file
 * Tests for PCIe links, the switch fabric, and the AFA topology:
 * serialization timing, FIFO contention, routing, and the paper's
 * ~5 us fabric adder anchor.
 */

#include <gtest/gtest.h>

#include "pcie/afa_topology.hh"
#include "pcie/fabric.hh"
#include "pcie/link.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace afa::pcie;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::sim::usec;

namespace {

class LinkTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }
};

TEST_F(LinkTest, SerializationScalesWithBytesAndLanes)
{
    Link x4("x4", LinkParams{4, Gen::Gen3, 0});
    Link x16("x16", LinkParams{16, Gen::Gen3, 0});
    // x16 carries the same payload 4x faster.
    EXPECT_NEAR(static_cast<double>(x4.serialization(afa::sim::Bytes{4096})),
                4.0 * static_cast<double>(x16.serialization(afa::sim::Bytes{4096})),
                2.0);
    // 4 KiB on x4 Gen3 (~3.2 GB/s effective) ~ 1.28 us.
    EXPECT_NEAR(afa::sim::toUsec(x4.serialization(afa::sim::Bytes{4096})), 1.28, 0.05);
}

TEST_F(LinkTest, TransfersQueueFifo)
{
    Link l("l", LinkParams{4, Gen::Gen3, 100});
    Tick ser = l.serialization(afa::sim::Bytes{4096});
    Tick first = l.transfer(0, afa::sim::Bytes{4096});
    EXPECT_EQ(first, ser + 100);
    // Second transfer issued at t=0 queues behind the first.
    Tick second = l.transfer(0, afa::sim::Bytes{4096});
    EXPECT_EQ(second, 2 * ser + 100);
    EXPECT_EQ(l.queueDelay(), ser);
    EXPECT_EQ(l.bytesCarried(), 8192u);
    EXPECT_EQ(l.transfers(), 2u);
}

TEST_F(LinkTest, IdleLinkDoesNotQueue)
{
    Link l("l", LinkParams{4, Gen::Gen3, 100});
    l.transfer(0, afa::sim::Bytes{4096});
    Tick later = l.busyUntil() + usec(5);
    Tick arrive = l.transfer(later, afa::sim::Bytes{4096});
    EXPECT_EQ(arrive, later + l.serialization(afa::sim::Bytes{4096}) + 100);
    EXPECT_EQ(l.queueDelay(), 0u);
}

TEST_F(LinkTest, InvalidLanesFatal)
{
    EXPECT_THROW(Link("bad", LinkParams{0, Gen::Gen3, 0}),
                 afa::sim::SimError);
    EXPECT_THROW(Link("bad", LinkParams{32, Gen::Gen3, 0}),
                 afa::sim::SimError);
}

class FabricTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    Simulator sim{1};
};

TEST_F(FabricTest, DirectDelivery)
{
    Fabric f(sim, "f");
    NodeId a = f.addEndpoint("a");
    NodeId b = f.addEndpoint("b");
    f.connect(a, b, LinkParams{4, Gen::Gen3, 100});
    f.finalize();
    Tick delivered = 0;
    f.send(a, b, 4096, [&] { delivered = sim.now(); });
    sim.run();
    EXPECT_GT(delivered, 0u);
    EXPECT_EQ(delivered, f.unloadedLatency(a, b, 4096));
}

TEST_F(FabricTest, RoutesThroughSwitches)
{
    Fabric f(sim, "f");
    NodeId a = f.addEndpoint("a");
    NodeId s1 = f.addSwitch("s1", 300);
    NodeId s2 = f.addSwitch("s2", 300);
    NodeId b = f.addEndpoint("b");
    f.connect(a, s1, LinkParams{16, Gen::Gen3, 100});
    f.connect(s1, s2, LinkParams{16, Gen::Gen3, 100});
    f.connect(s2, b, LinkParams{4, Gen::Gen3, 100});
    f.finalize();
    EXPECT_EQ(f.hopCount(a, b), 3u);
    Tick delivered = 0;
    f.send(a, b, 4096, [&] { delivered = sim.now(); });
    sim.run();
    EXPECT_EQ(delivered, f.unloadedLatency(a, b, 4096));
    // Store-and-forward: both switch forward latencies included.
    Tick expect = 0;
    expect += f.linkBetween(a, s1)->serialization(afa::sim::Bytes{4096}) + 100 + 300;
    expect += f.linkBetween(s1, s2)->serialization(afa::sim::Bytes{4096}) + 100 + 300;
    expect += f.linkBetween(s2, b)->serialization(afa::sim::Bytes{4096}) + 100;
    EXPECT_EQ(delivered, expect);
}

TEST_F(FabricTest, SendToSelfIsImmediate)
{
    Fabric f(sim, "f");
    NodeId a = f.addEndpoint("a");
    NodeId b = f.addEndpoint("b");
    f.connect(a, b, LinkParams{4, Gen::Gen3, 100});
    f.finalize();
    bool delivered = false;
    f.send(a, a, 64, [&] { delivered = true; });
    sim.run();
    EXPECT_TRUE(delivered);
    EXPECT_EQ(sim.now(), 0u);
}

TEST_F(FabricTest, SendBeforeFinalizeIsFatal)
{
    Fabric f(sim, "f");
    NodeId a = f.addEndpoint("a");
    NodeId b = f.addEndpoint("b");
    f.connect(a, b, LinkParams{4, Gen::Gen3, 100});
    EXPECT_THROW(f.send(a, b, 64, [] {}), afa::sim::SimError);
}

TEST_F(FabricTest, DisconnectedRouteIsFatal)
{
    Fabric f(sim, "f");
    NodeId a = f.addEndpoint("a");
    NodeId b = f.addEndpoint("b");
    (void)b;
    NodeId c = f.addEndpoint("c");
    f.connect(a, b, LinkParams{4, Gen::Gen3, 100});
    f.finalize();
    EXPECT_THROW(f.send(a, c, 64, [] {}), afa::sim::SimError);
}

TEST_F(FabricTest, SelfLinkIsFatal)
{
    Fabric f(sim, "f");
    NodeId a = f.addEndpoint("a");
    EXPECT_THROW(f.connect(a, a, LinkParams{4, Gen::Gen3, 100}),
                 afa::sim::SimError);
}

TEST_F(FabricTest, SharedUplinkContentionDelaysSecondFlow)
{
    // Two endpoints funnel through one switch and one uplink; two
    // simultaneous 4 KiB returns must serialise on the shared link.
    Fabric f(sim, "f");
    NodeId host = f.addEndpoint("host");
    NodeId sw = f.addSwitch("sw", 300);
    NodeId d0 = f.addEndpoint("d0");
    NodeId d1 = f.addEndpoint("d1");
    f.connect(host, sw, LinkParams{16, Gen::Gen3, 100});
    f.connect(sw, d0, LinkParams{4, Gen::Gen3, 100});
    f.connect(sw, d1, LinkParams{4, Gen::Gen3, 100});
    f.finalize();
    std::vector<Tick> arrivals;
    f.send(d0, host, 4096, [&] { arrivals.push_back(sim.now()); });
    f.send(d1, host, 4096, [&] { arrivals.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(arrivals.size(), 2u);
    const Link *up = f.linkBetween(sw, host);
    EXPECT_EQ(arrivals[1] - arrivals[0], up->serialization(afa::sim::Bytes{4096}));
    EXPECT_GT(f.stats().totalQueueDelay, 0u);
}

class AfaTopologyTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }

    Simulator sim{1};
};

TEST_F(AfaTopologyTest, DefaultShape)
{
    Fabric f(sim, "afa");
    auto topo = buildAfaTopology(f, AfaTopologyParams{});
    EXPECT_EQ(topo.ssds.size(), 64u);
    EXPECT_EQ(topo.carrierSwitches.size(), 16u); // 64 / 4 per carrier
    EXPECT_EQ(topo.leafSwitches.size(), 6u);     // ceil(16 / 3)
    // host + root + 6 leaves + 16 carriers + 64 ssds
    EXPECT_EQ(f.nodes(), 1u + 1u + 6u + 16u + 64u);
    // Every SSD is 4 hops from the host: uplink, leaf, carrier, M.2.
    for (NodeId ssd : topo.ssds)
        EXPECT_EQ(f.hopCount(topo.host, ssd), 4u);
}

TEST_F(AfaTopologyTest, FabricAdderNearFiveMicroseconds)
{
    // The paper: a read through the switch fabric costs ~5 us more
    // than direct attach. Check the unloaded round trip of a 64 B
    // command down plus 4 KiB + CQE up.
    Fabric f(sim, "afa");
    auto topo = buildAfaTopology(f, AfaTopologyParams{});
    Tick down = f.unloadedLatency(topo.host, topo.ssds[0], 64);
    Tick up = f.unloadedLatency(topo.ssds[0], topo.host, 4096 + 16);
    double rtt_us = afa::sim::toUsec(down + up);
    EXPECT_GT(rtt_us, 3.5);
    EXPECT_LT(rtt_us, 7.0);
}

TEST_F(AfaTopologyTest, SmallConfigurations)
{
    Fabric f(sim, "afa");
    AfaTopologyParams p;
    p.ssds = 5; // partial carrier
    auto topo = buildAfaTopology(f, p);
    EXPECT_EQ(topo.ssds.size(), 5u);
    EXPECT_EQ(topo.carrierSwitches.size(), 2u);
    EXPECT_EQ(topo.leafSwitches.size(), 1u);
    for (NodeId ssd : topo.ssds)
        EXPECT_EQ(f.hopCount(topo.host, ssd), 4u);
}

TEST_F(AfaTopologyTest, ZeroSsdsIsFatal)
{
    Fabric f(sim, "afa");
    AfaTopologyParams p;
    p.ssds = 0;
    EXPECT_THROW(buildAfaTopology(f, p), afa::sim::SimError);
}

TEST_F(AfaTopologyTest, NodeNamesAreMeaningful)
{
    Fabric f(sim, "afa");
    auto topo = buildAfaTopology(f, AfaTopologyParams{});
    EXPECT_EQ(f.nodeName(topo.host), "host");
    EXPECT_EQ(f.nodeName(topo.ssds[17]), "nvme17");
    EXPECT_EQ(f.nodeName(topo.rootSwitch), "sw.root");
}

} // namespace
