/**
 * @file
 * Differential tests for the fabric transit fast path: the same
 * randomized traffic is driven through a fast-path fabric and a
 * reference fabric forced onto the per-hop event model
 * (setFastPath(false)), and every observable — delivery ticks,
 * fabric-wide stats, per-link stats — must match exactly.
 *
 * Plus regression tests for the send() edge cases (self-send,
 * unreachable destination) under both models.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pcie/afa_topology.hh"
#include "pcie/fabric.hh"
#include "pcie/link.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using namespace afa::pcie;
using afa::sim::Rng;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::sim::usec;

namespace {

/** One scripted packet of the differential workload. */
struct SendOp
{
    Tick when;
    NodeId src;
    NodeId dst;
    std::uint32_t bytes;
};

/**
 * Replay @p ops against @p fabric and return the delivery tick of
 * every packet, in op order.
 */
std::vector<Tick>
replay(Simulator &sim, Fabric &fabric, const std::vector<SendOp> &ops)
{
    std::vector<Tick> delivered(ops.size(), 0);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const SendOp &op = ops[i];
        sim.scheduleAt(op.when, [&sim, &fabric, &delivered, op, i] {
            fabric.send(op.src, op.dst, op.bytes,
                        [&sim, &delivered, i] {
                            delivered[i] = sim.now();
                        });
        });
    }
    sim.run();
    return delivered;
}

/** Assert fast-path and reference fabrics observed identical traffic. */
void
expectSameObservables(const Fabric &fast, const Fabric &ref)
{
    EXPECT_EQ(fast.stats().packets, ref.stats().packets);
    EXPECT_EQ(fast.stats().bytes, ref.stats().bytes);
    EXPECT_EQ(fast.stats().totalQueueDelay, ref.stats().totalQueueDelay);
    ASSERT_EQ(fast.linkCount(), ref.linkCount());
    for (std::size_t i = 0; i < fast.linkCount(); ++i) {
        const Link &a = fast.linkAt(i);
        const Link &b = ref.linkAt(i);
        EXPECT_EQ(a.bytesCarried(), b.bytesCarried()) << a.name();
        EXPECT_EQ(a.transfers(), b.transfers()) << a.name();
        EXPECT_EQ(a.busyTime(), b.busyTime()) << a.name();
        EXPECT_EQ(a.queueDelay(), b.queueDelay()) << a.name();
        EXPECT_EQ(a.busyUntil(), b.busyUntil()) << a.name();
    }
}

class FabricFastPathTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }
};

TEST_F(FabricFastPathTest, AfaTopologyRandomTrafficMatchesReference)
{
    // Host<->SSD traffic over the paper's two-level switch tree:
    // bursts force queueing on the shared carrier/leaf/root links,
    // quiet gaps keep a large uncontended share, so both the
    // single-event fast path and the per-hop fallback are exercised.
    AfaTopologyParams params;
    params.ssds = 16;
    Simulator fast_sim(1), ref_sim(1);
    Fabric fast(fast_sim, "fast"), ref(ref_sim, "ref");
    auto fast_topo = buildAfaTopology(fast, params);
    auto ref_topo = buildAfaTopology(ref, params);
    ref.setFastPath(false);

    Rng rng(1234);
    std::vector<SendOp> ops;
    Tick when = 0;
    for (int burst = 0; burst < 200; ++burst) {
        // Alternate dense bursts (heavy uplink contention) with
        // spaced-out singletons (uncontended fast-path deliveries).
        bool dense = rng.uniformInt(0, 1) == 0;
        unsigned count = dense
            ? static_cast<unsigned>(rng.uniformInt(4, 12)) : 1;
        when += dense ? rng.uniformInt(0, 500)
                      : usec(5) + rng.uniformInt(0, 2000);
        for (unsigned p = 0; p < count; ++p) {
            unsigned dev = static_cast<unsigned>(
                rng.uniformInt(0, params.ssds - 1));
            bool up = rng.uniformInt(0, 2) != 0; // mostly data returns
            if (up)
                ops.push_back(SendOp{when, fast_topo.ssds[dev],
                                     fast_topo.host, 4096 + 16});
            else
                ops.push_back(
                    SendOp{when, fast_topo.host, fast_topo.ssds[dev], 64});
        }
    }
    // The two fabrics are built identically, so node ids coincide.
    ASSERT_EQ(fast_topo.host, ref_topo.host);
    ASSERT_EQ(fast_topo.ssds, ref_topo.ssds);

    auto fast_ticks = replay(fast_sim, fast, ops);
    auto ref_ticks = replay(ref_sim, ref, ops);

    ASSERT_EQ(fast_ticks.size(), ref_ticks.size());
    for (std::size_t i = 0; i < ops.size(); ++i)
        EXPECT_EQ(fast_ticks[i], ref_ticks[i]) << "packet " << i;
    expectSameObservables(fast, ref);

    // The workload must genuinely exercise both delivery models.
    EXPECT_GT(fast.stats().fastPathPackets, 0u);
    EXPECT_GT(fast.stats().fallbackPackets, 0u);
    EXPECT_EQ(ref.stats().fastPathPackets, 0u);
    EXPECT_EQ(ref.stats().fallbackPackets, ref.stats().packets);
    // Contention must actually have occurred, or the equivalence
    // check proves nothing about queue-delay accounting.
    EXPECT_GT(fast.stats().totalQueueDelay, 0u);
}

TEST_F(FabricFastPathTest, DeepLineTopologyBackToBackMatchesReference)
{
    // A 5-hop line a - s1 - s2 - s3 - s4 - b with back-to-back sends:
    // every packet after the first hits contention at hop 0 or deeper,
    // covering the "fall back mid-path at the first contended link"
    // branch repeatedly.
    auto build = [](Fabric &f, std::vector<NodeId> &nodes) {
        nodes.push_back(f.addEndpoint("a"));
        for (int s = 1; s <= 4; ++s)
            nodes.push_back(
                f.addSwitch("s" + std::to_string(s), 150 * s));
        nodes.push_back(f.addEndpoint("b"));
        for (std::size_t i = 0; i + 1 < nodes.size(); ++i)
            f.connect(nodes[i], nodes[i + 1],
                      LinkParams{static_cast<unsigned>(1 + i % 4),
                                 Gen::Gen3, 40 + 10 * i});
    };
    Simulator fast_sim(1), ref_sim(1);
    Fabric fast(fast_sim, "fast"), ref(ref_sim, "ref");
    std::vector<NodeId> fast_nodes, ref_nodes;
    build(fast, fast_nodes);
    build(ref, ref_nodes);
    fast.finalize();
    ref.finalize();
    ref.setFastPath(false);

    Rng rng(99);
    std::vector<SendOp> ops;
    Tick when = 0;
    for (int i = 0; i < 300; ++i) {
        when += rng.uniformInt(0, 900);
        ops.push_back(SendOp{when, fast_nodes.front(),
                             fast_nodes.back(),
                             static_cast<std::uint32_t>(
                                 rng.uniformInt(64, 8192))});
    }
    auto fast_ticks = replay(fast_sim, fast, ops);
    auto ref_ticks = replay(ref_sim, ref, ops);
    for (std::size_t i = 0; i < ops.size(); ++i)
        EXPECT_EQ(fast_ticks[i], ref_ticks[i]) << "packet " << i;
    expectSameObservables(fast, ref);
    EXPECT_GT(fast.stats().fastPathPackets, 0u);
    EXPECT_GT(fast.stats().fallbackPackets, 0u);
}

/**
 * Build the reviewer's displacement repro: a - s1 - s2 - b plus
 * c - s2. Source a is two hops from the shared directed link s2->b
 * while c is one hop away, so a packet from c sent *after* one from a
 * reaches the shared link *earlier* — the reference model serves c
 * first, so a's fast-path reservation must be revoked.
 */
struct UnequalPrefixTopo
{
    NodeId a, b, c, s1, s2;
};

UnequalPrefixTopo
buildUnequalPrefixTopo(Fabric &f)
{
    UnequalPrefixTopo t;
    t.a = f.addEndpoint("a");
    t.b = f.addEndpoint("b");
    t.c = f.addEndpoint("c");
    t.s1 = f.addSwitch("s1", 300);
    t.s2 = f.addSwitch("s2", 300);
    f.connect(t.a, t.s1, LinkParams{4, Gen::Gen3, 100});
    f.connect(t.s1, t.s2, LinkParams{4, Gen::Gen3, 100});
    f.connect(t.s2, t.b, LinkParams{4, Gen::Gen3, 100});
    f.connect(t.c, t.s2, LinkParams{4, Gen::Gen3, 100});
    f.finalize();
    return t;
}

TEST_F(FabricFastPathTest, EarlierEntrantDisplacesFastPathReservation)
{
    // a->b is sent first and fast-paths, reserving s2->b at a future
    // entry tick; c->b is sent later but reaches s2->b first, and its
    // serialization runs past a's reserved start, so a's delivery
    // must be pushed back — exactly as the per-hop reference model
    // computes it.
    Simulator fast_sim(1), ref_sim(1);
    Fabric fast(fast_sim, "fast"), ref(ref_sim, "ref");
    auto ft = buildUnequalPrefixTopo(fast);
    auto rt = buildUnequalPrefixTopo(ref);
    ref.setFastPath(false);
    std::vector<SendOp> ops{
        SendOp{0, ft.a, ft.b, 4096},
        SendOp{101, ft.c, ft.b, 8192},
    };
    ASSERT_EQ(ft.b, rt.b);

    auto fast_ticks = replay(fast_sim, fast, ops);
    auto ref_ticks = replay(ref_sim, ref, ops);

    ASSERT_EQ(fast_ticks.size(), ref_ticks.size());
    for (std::size_t i = 0; i < ops.size(); ++i)
        EXPECT_EQ(fast_ticks[i], ref_ticks[i]) << "packet " << i;
    expectSameObservables(fast, ref);
    // c (sent later) must be delivered first, and a must have been
    // queued behind it at the shared link.
    EXPECT_LT(fast_ticks[1], fast_ticks[0]);
    EXPECT_GT(fast.stats().totalQueueDelay, 0u);
    // a was displaced off the fast path: both packets end up
    // accounted as fallback deliveries.
    EXPECT_EQ(fast.stats().fastPathPackets, 0u);
    EXPECT_EQ(fast.stats().fallbackPackets, 2u);
}

TEST_F(FabricFastPathTest, UnequalPrefixRandomTrafficMatchesReference)
{
    // Randomized mixed-size bidirectional traffic over the asymmetric
    // topology: sources at unequal distances keep racing for the
    // shared s2->b and s2->s1 links, so fast-path reservations are
    // repeatedly displaced (including cascades where a displaced
    // packet's own reservations had traffic queued behind them).
    Simulator fast_sim(1), ref_sim(1);
    Fabric fast(fast_sim, "fast"), ref(ref_sim, "ref");
    auto ft = buildUnequalPrefixTopo(fast);
    auto rt = buildUnequalPrefixTopo(ref);
    ref.setFastPath(false);
    ASSERT_EQ(ft.b, rt.b);

    Rng rng(4242);
    std::vector<SendOp> ops;
    const NodeId eps[3] = {ft.a, ft.b, ft.c};
    Tick when = 0;
    for (int i = 0; i < 400; ++i) {
        when += rng.uniformInt(0, 2500);
        NodeId src = eps[rng.uniformInt(0, 2)];
        NodeId dst = eps[rng.uniformInt(0, 2)];
        if (src == dst)
            dst = eps[(rng.uniformInt(0, 2) + 1) % 3];
        if (src == dst)
            continue;
        ops.push_back(SendOp{when, src, dst,
                             static_cast<std::uint32_t>(
                                 rng.uniformInt(64, 8192))});
    }
    auto fast_ticks = replay(fast_sim, fast, ops);
    auto ref_ticks = replay(ref_sim, ref, ops);
    ASSERT_EQ(fast_ticks.size(), ref_ticks.size());
    for (std::size_t i = 0; i < ops.size(); ++i)
        EXPECT_EQ(fast_ticks[i], ref_ticks[i]) << "packet " << i;
    expectSameObservables(fast, ref);
    EXPECT_GT(fast.stats().fastPathPackets, 0u);
    EXPECT_GT(fast.stats().fallbackPackets, 0u);
    EXPECT_GT(fast.stats().totalQueueDelay, 0u);
}

TEST_F(FabricFastPathTest, SameTickDeliveryCascadeMatchesReference)
{
    // Two equal-latency disjoint first legs (a->b and c->d) deliver
    // at the same tick; each delivery callback immediately issues a
    // follow-on send into a shared uplink (b->sw->e, d->sw->e). The
    // follow-ons' FIFO slots on sw->e are decided by same-tick
    // callback order, so this pins that collapsing deliveries into
    // single send-time events preserves the reference cascade when
    // same-tick deliveries were sent in entry order (the equal-prefix
    // property all real traffic has; see DESIGN.md "Same-tick
    // ordering").
    auto build = [](Fabric &f, std::vector<NodeId> &n) {
        NodeId a = f.addEndpoint("a");
        NodeId b = f.addEndpoint("b");
        NodeId c = f.addEndpoint("c");
        NodeId d = f.addEndpoint("d");
        NodeId e = f.addEndpoint("e");
        NodeId sw = f.addSwitch("sw", 300);
        f.connect(a, b, LinkParams{4, Gen::Gen3, 100});
        f.connect(c, d, LinkParams{4, Gen::Gen3, 100});
        f.connect(b, sw, LinkParams{4, Gen::Gen3, 100});
        f.connect(d, sw, LinkParams{4, Gen::Gen3, 100});
        f.connect(sw, e, LinkParams{16, Gen::Gen3, 100});
        f.finalize();
        n = {a, b, c, d, e, sw};
    };
    auto run = [&](bool fast_path, std::vector<Tick> &ticks) {
        Simulator sim(1);
        Fabric f(sim, "f");
        std::vector<NodeId> n;
        build(f, n);
        f.setFastPath(fast_path);
        ticks.assign(4, 0);
        f.send(n[0], n[1], 64, [&] {
            ticks[0] = sim.now();
            f.send(n[1], n[4], 4096, [&] { ticks[2] = sim.now(); });
        });
        f.send(n[2], n[3], 64, [&] {
            ticks[1] = sim.now();
            f.send(n[3], n[4], 4096, [&] { ticks[3] = sim.now(); });
        });
        sim.run();
    };
    std::vector<Tick> fast_ticks, ref_ticks;
    run(true, fast_ticks);
    run(false, ref_ticks);
    EXPECT_EQ(fast_ticks, ref_ticks);
    // The first legs really did deliver at the same tick, and the
    // follow-ons really did contend: their gap is the shared uplink
    // serialization.
    EXPECT_EQ(fast_ticks[0], fast_ticks[1]);
    EXPECT_GT(fast_ticks[3], fast_ticks[2]);
}

TEST_F(FabricFastPathTest, MidPathContentionFallsBackAtSharedUplink)
{
    // Two devices with private first links funnel into one shared
    // uplink. Simultaneous sends are both uncontended at hop 0, so the
    // second packet must fall back mid-path (at the shared link), and
    // the delivery gap must equal the uplink serialization — the same
    // contract FabricTest.SharedUplinkContentionDelaysSecondFlow pins
    // for the per-hop model.
    Simulator sim(1);
    Fabric f(sim, "f");
    NodeId host = f.addEndpoint("host");
    NodeId sw = f.addSwitch("sw", 300);
    NodeId d0 = f.addEndpoint("d0");
    NodeId d1 = f.addEndpoint("d1");
    f.connect(host, sw, LinkParams{16, Gen::Gen3, 100});
    f.connect(sw, d0, LinkParams{4, Gen::Gen3, 100});
    f.connect(sw, d1, LinkParams{4, Gen::Gen3, 100});
    f.finalize();
    std::vector<Tick> arrivals;
    f.send(d0, host, 4096, [&] { arrivals.push_back(sim.now()); });
    f.send(d1, host, 4096, [&] { arrivals.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(arrivals.size(), 2u);
    const Link *up = f.linkBetween(sw, host);
    EXPECT_EQ(arrivals[1] - arrivals[0], up->serialization(afa::sim::Bytes{4096}));
    EXPECT_EQ(f.stats().fastPathPackets, 1u);
    EXPECT_EQ(f.stats().fallbackPackets, 1u);
    EXPECT_GT(f.stats().totalQueueDelay, 0u);
}

TEST_F(FabricFastPathTest, UncontendedSendMatchesUnloadedLatency)
{
    Simulator sim(1);
    Fabric f(sim, "f");
    auto topo = buildAfaTopology(f, AfaTopologyParams{});
    Tick delivered = 0;
    f.send(topo.ssds[5], topo.host, 4096, [&] { delivered = sim.now(); });
    std::uint64_t events = sim.run();
    EXPECT_EQ(delivered, f.unloadedLatency(topo.ssds[5], topo.host, 4096));
    // The whole 4-hop transfer must cost exactly one delivery event.
    EXPECT_EQ(events, 1u);
    EXPECT_EQ(f.stats().fastPathPackets, 1u);
    EXPECT_EQ(f.stats().totalQueueDelay, 0u);
}

TEST_F(FabricFastPathTest, SelfSendDeliversAtCurrentTickBothModels)
{
    for (bool enable_fast : {true, false}) {
        Simulator sim(1);
        Fabric f(sim, "f");
        NodeId a = f.addEndpoint("a");
        NodeId b = f.addEndpoint("b");
        f.connect(a, b, LinkParams{4, Gen::Gen3, 100});
        f.finalize();
        f.setFastPath(enable_fast);
        Tick delivered = afa::sim::kMaxTick;
        sim.scheduleAt(usec(3), [&] {
            f.send(a, a, 64, [&] { delivered = sim.now(); });
        });
        sim.run();
        EXPECT_EQ(delivered, usec(3));
        EXPECT_EQ(f.stats().packets, 1u);
        EXPECT_EQ(f.stats().fastPathPackets, 0u);
        EXPECT_EQ(f.stats().fallbackPackets, 0u);
    }
}

TEST_F(FabricFastPathTest, UnreachableDestinationIsFatalBothModels)
{
    for (bool enable_fast : {true, false}) {
        Simulator sim(1);
        Fabric f(sim, "f");
        NodeId a = f.addEndpoint("a");
        NodeId b = f.addEndpoint("b");
        NodeId island = f.addEndpoint("island");
        f.connect(a, b, LinkParams{4, Gen::Gen3, 100});
        f.finalize();
        f.setFastPath(enable_fast);
        EXPECT_THROW(f.send(a, island, 64, [] {}),
                     afa::sim::SimError);
        EXPECT_THROW(f.unloadedLatency(a, island, 64),
                     afa::sim::SimError);
        EXPECT_EQ(f.hopCount(a, island), 0u);
    }
}

} // namespace
