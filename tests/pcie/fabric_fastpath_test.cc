/**
 * @file
 * Differential tests for the fabric transit fast path: the same
 * randomized traffic is driven through a fast-path fabric and a
 * reference fabric forced onto the per-hop event model
 * (setFastPath(false)), and every observable — delivery ticks,
 * fabric-wide stats, per-link stats — must match exactly.
 *
 * Plus regression tests for the send() edge cases (self-send,
 * unreachable destination) under both models.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pcie/afa_topology.hh"
#include "pcie/fabric.hh"
#include "pcie/link.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using namespace afa::pcie;
using afa::sim::Rng;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::sim::usec;

namespace {

/** One scripted packet of the differential workload. */
struct SendOp
{
    Tick when;
    NodeId src;
    NodeId dst;
    std::uint32_t bytes;
};

/**
 * Replay @p ops against @p fabric and return the delivery tick of
 * every packet, in op order.
 */
std::vector<Tick>
replay(Simulator &sim, Fabric &fabric, const std::vector<SendOp> &ops)
{
    std::vector<Tick> delivered(ops.size(), 0);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const SendOp &op = ops[i];
        sim.scheduleAt(op.when, [&sim, &fabric, &delivered, op, i] {
            fabric.send(op.src, op.dst, op.bytes,
                        [&sim, &delivered, i] {
                            delivered[i] = sim.now();
                        });
        });
    }
    sim.run();
    return delivered;
}

/** Assert fast-path and reference fabrics observed identical traffic. */
void
expectSameObservables(const Fabric &fast, const Fabric &ref)
{
    EXPECT_EQ(fast.stats().packets, ref.stats().packets);
    EXPECT_EQ(fast.stats().bytes, ref.stats().bytes);
    EXPECT_EQ(fast.stats().totalQueueDelay, ref.stats().totalQueueDelay);
    ASSERT_EQ(fast.linkCount(), ref.linkCount());
    for (std::size_t i = 0; i < fast.linkCount(); ++i) {
        const Link &a = fast.linkAt(i);
        const Link &b = ref.linkAt(i);
        EXPECT_EQ(a.bytesCarried(), b.bytesCarried()) << a.name();
        EXPECT_EQ(a.transfers(), b.transfers()) << a.name();
        EXPECT_EQ(a.busyTime(), b.busyTime()) << a.name();
        EXPECT_EQ(a.queueDelay(), b.queueDelay()) << a.name();
        EXPECT_EQ(a.busyUntil(), b.busyUntil()) << a.name();
    }
}

class FabricFastPathTest : public ::testing::Test
{
  protected:
    void SetUp() override { afa::sim::setThrowOnError(true); }
    void TearDown() override { afa::sim::setThrowOnError(false); }
};

TEST_F(FabricFastPathTest, AfaTopologyRandomTrafficMatchesReference)
{
    // Host<->SSD traffic over the paper's two-level switch tree:
    // bursts force queueing on the shared carrier/leaf/root links,
    // quiet gaps keep a large uncontended share, so both the
    // single-event fast path and the per-hop fallback are exercised.
    AfaTopologyParams params;
    params.ssds = 16;
    Simulator fast_sim(1), ref_sim(1);
    Fabric fast(fast_sim, "fast"), ref(ref_sim, "ref");
    auto fast_topo = buildAfaTopology(fast, params);
    auto ref_topo = buildAfaTopology(ref, params);
    ref.setFastPath(false);

    Rng rng(1234);
    std::vector<SendOp> ops;
    Tick when = 0;
    for (int burst = 0; burst < 200; ++burst) {
        // Alternate dense bursts (heavy uplink contention) with
        // spaced-out singletons (uncontended fast-path deliveries).
        bool dense = rng.uniformInt(0, 1) == 0;
        unsigned count = dense
            ? static_cast<unsigned>(rng.uniformInt(4, 12)) : 1;
        when += dense ? rng.uniformInt(0, 500)
                      : usec(5) + rng.uniformInt(0, 2000);
        for (unsigned p = 0; p < count; ++p) {
            unsigned dev = static_cast<unsigned>(
                rng.uniformInt(0, params.ssds - 1));
            bool up = rng.uniformInt(0, 2) != 0; // mostly data returns
            if (up)
                ops.push_back(SendOp{when, fast_topo.ssds[dev],
                                     fast_topo.host, 4096 + 16});
            else
                ops.push_back(
                    SendOp{when, fast_topo.host, fast_topo.ssds[dev], 64});
        }
    }
    // The two fabrics are built identically, so node ids coincide.
    ASSERT_EQ(fast_topo.host, ref_topo.host);
    ASSERT_EQ(fast_topo.ssds, ref_topo.ssds);

    auto fast_ticks = replay(fast_sim, fast, ops);
    auto ref_ticks = replay(ref_sim, ref, ops);

    ASSERT_EQ(fast_ticks.size(), ref_ticks.size());
    for (std::size_t i = 0; i < ops.size(); ++i)
        EXPECT_EQ(fast_ticks[i], ref_ticks[i]) << "packet " << i;
    expectSameObservables(fast, ref);

    // The workload must genuinely exercise both delivery models.
    EXPECT_GT(fast.stats().fastPathPackets, 0u);
    EXPECT_GT(fast.stats().fallbackPackets, 0u);
    EXPECT_EQ(ref.stats().fastPathPackets, 0u);
    EXPECT_EQ(ref.stats().fallbackPackets, ref.stats().packets);
    // Contention must actually have occurred, or the equivalence
    // check proves nothing about queue-delay accounting.
    EXPECT_GT(fast.stats().totalQueueDelay, 0u);
}

TEST_F(FabricFastPathTest, DeepLineTopologyBackToBackMatchesReference)
{
    // A 5-hop line a - s1 - s2 - s3 - s4 - b with back-to-back sends:
    // every packet after the first hits contention at hop 0 or deeper,
    // covering the "fall back mid-path at the first contended link"
    // branch repeatedly.
    auto build = [](Fabric &f, std::vector<NodeId> &nodes) {
        nodes.push_back(f.addEndpoint("a"));
        for (int s = 1; s <= 4; ++s)
            nodes.push_back(
                f.addSwitch("s" + std::to_string(s), 150 * s));
        nodes.push_back(f.addEndpoint("b"));
        for (std::size_t i = 0; i + 1 < nodes.size(); ++i)
            f.connect(nodes[i], nodes[i + 1],
                      LinkParams{static_cast<unsigned>(1 + i % 4),
                                 Gen::Gen3, 40 + 10 * i});
    };
    Simulator fast_sim(1), ref_sim(1);
    Fabric fast(fast_sim, "fast"), ref(ref_sim, "ref");
    std::vector<NodeId> fast_nodes, ref_nodes;
    build(fast, fast_nodes);
    build(ref, ref_nodes);
    fast.finalize();
    ref.finalize();
    ref.setFastPath(false);

    Rng rng(99);
    std::vector<SendOp> ops;
    Tick when = 0;
    for (int i = 0; i < 300; ++i) {
        when += rng.uniformInt(0, 900);
        ops.push_back(SendOp{when, fast_nodes.front(),
                             fast_nodes.back(),
                             static_cast<std::uint32_t>(
                                 rng.uniformInt(64, 8192))});
    }
    auto fast_ticks = replay(fast_sim, fast, ops);
    auto ref_ticks = replay(ref_sim, ref, ops);
    for (std::size_t i = 0; i < ops.size(); ++i)
        EXPECT_EQ(fast_ticks[i], ref_ticks[i]) << "packet " << i;
    expectSameObservables(fast, ref);
    EXPECT_GT(fast.stats().fastPathPackets, 0u);
    EXPECT_GT(fast.stats().fallbackPackets, 0u);
}

TEST_F(FabricFastPathTest, MidPathContentionFallsBackAtSharedUplink)
{
    // Two devices with private first links funnel into one shared
    // uplink. Simultaneous sends are both uncontended at hop 0, so the
    // second packet must fall back mid-path (at the shared link), and
    // the delivery gap must equal the uplink serialization — the same
    // contract FabricTest.SharedUplinkContentionDelaysSecondFlow pins
    // for the per-hop model.
    Simulator sim(1);
    Fabric f(sim, "f");
    NodeId host = f.addEndpoint("host");
    NodeId sw = f.addSwitch("sw", 300);
    NodeId d0 = f.addEndpoint("d0");
    NodeId d1 = f.addEndpoint("d1");
    f.connect(host, sw, LinkParams{16, Gen::Gen3, 100});
    f.connect(sw, d0, LinkParams{4, Gen::Gen3, 100});
    f.connect(sw, d1, LinkParams{4, Gen::Gen3, 100});
    f.finalize();
    std::vector<Tick> arrivals;
    f.send(d0, host, 4096, [&] { arrivals.push_back(sim.now()); });
    f.send(d1, host, 4096, [&] { arrivals.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(arrivals.size(), 2u);
    const Link *up = f.linkBetween(sw, host);
    EXPECT_EQ(arrivals[1] - arrivals[0], up->serialization(4096));
    EXPECT_EQ(f.stats().fastPathPackets, 1u);
    EXPECT_EQ(f.stats().fallbackPackets, 1u);
    EXPECT_GT(f.stats().totalQueueDelay, 0u);
}

TEST_F(FabricFastPathTest, UncontendedSendMatchesUnloadedLatency)
{
    Simulator sim(1);
    Fabric f(sim, "f");
    auto topo = buildAfaTopology(f, AfaTopologyParams{});
    Tick delivered = 0;
    f.send(topo.ssds[5], topo.host, 4096, [&] { delivered = sim.now(); });
    std::uint64_t events = sim.run();
    EXPECT_EQ(delivered, f.unloadedLatency(topo.ssds[5], topo.host, 4096));
    // The whole 4-hop transfer must cost exactly one delivery event.
    EXPECT_EQ(events, 1u);
    EXPECT_EQ(f.stats().fastPathPackets, 1u);
    EXPECT_EQ(f.stats().totalQueueDelay, 0u);
}

TEST_F(FabricFastPathTest, SelfSendDeliversAtCurrentTickBothModels)
{
    for (bool enable_fast : {true, false}) {
        Simulator sim(1);
        Fabric f(sim, "f");
        NodeId a = f.addEndpoint("a");
        NodeId b = f.addEndpoint("b");
        f.connect(a, b, LinkParams{4, Gen::Gen3, 100});
        f.finalize();
        f.setFastPath(enable_fast);
        Tick delivered = afa::sim::kMaxTick;
        sim.scheduleAt(usec(3), [&] {
            f.send(a, a, 64, [&] { delivered = sim.now(); });
        });
        sim.run();
        EXPECT_EQ(delivered, usec(3));
        EXPECT_EQ(f.stats().packets, 1u);
        EXPECT_EQ(f.stats().fastPathPackets, 0u);
        EXPECT_EQ(f.stats().fallbackPackets, 0u);
    }
}

TEST_F(FabricFastPathTest, UnreachableDestinationIsFatalBothModels)
{
    for (bool enable_fast : {true, false}) {
        Simulator sim(1);
        Fabric f(sim, "f");
        NodeId a = f.addEndpoint("a");
        NodeId b = f.addEndpoint("b");
        NodeId island = f.addEndpoint("island");
        f.connect(a, b, LinkParams{4, Gen::Gen3, 100});
        f.finalize();
        f.setFastPath(enable_fast);
        EXPECT_THROW(f.send(a, island, 64, [] {}),
                     afa::sim::SimError);
        EXPECT_THROW(f.unloadedLatency(a, island, 64),
                     afa::sim::SimError);
        EXPECT_EQ(f.hopCount(a, island), 0u);
    }
}

} // namespace
