/**
 * @file
 * Tests for the ASCII table / CSV writers.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "stats/table.hh"

using afa::stats::Table;

namespace {

TEST(TableTest, RendersHeaderAndRows)
{
    Table t({"device", "avg", "max"});
    t.addRow({"nvme0", "30.1", "612.0"});
    t.addRow({"nvme1", "29.8", "598.3"});
    std::string s = t.toString();
    EXPECT_NE(s.find("device"), std::string::npos);
    EXPECT_NE(s.find("nvme0"), std::string::npos);
    EXPECT_NE(s.find("612.0"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.columns(), 3u);
}

TEST(TableTest, ShortRowsArePadded)
{
    Table t({"a", "b", "c"});
    t.addRow({"x"});
    EXPECT_EQ(t.rows(), 1u);
    // No crash rendering a padded row.
    EXPECT_FALSE(t.toString().empty());
}

TEST(TableTest, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.0, 0), "3");
    EXPECT_EQ(Table::num(std::uint64_t(42)), "42");
}

TEST(TableTest, CsvEscapesSpecialCells)
{
    Table t({"k", "v"});
    t.addRow({"a,b", "he said \"hi\""});
    std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, CsvPlainRow)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.toCsv(), "a,b\n1,2\n");
}

TEST(TableTest, EmptyHeadersAreFatal)
{
    afa::sim::setThrowOnError(true);
    EXPECT_THROW(Table({}), afa::sim::SimError);
    afa::sim::setThrowOnError(false);
}

TEST(TableTest, ColumnsAlign)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "100"});
    std::string s = t.toString();
    // All lines equal length for aligned single-width columns.
    std::size_t pos = 0, prev_len = 0;
    int line = 0;
    while (pos < s.size()) {
        auto nl = s.find('\n', pos);
        std::size_t len = nl - pos;
        if (line > 0) {
            EXPECT_EQ(len, prev_len) << "line " << line;
        }
        prev_len = len;
        pos = nl + 1;
        ++line;
    }
    EXPECT_EQ(line, 4); // header + rule + 2 rows
}

} // namespace
