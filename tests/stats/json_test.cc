/**
 * @file
 * Tests for the shared JSON string escaper.
 */

#include <gtest/gtest.h>

#include "stats/json.hh"

using afa::stats::jsonEscape;

namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("fig06/seed3"), "fig06/seed3");
    EXPECT_EQ(jsonEscape(""), "");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
}

TEST(JsonEscapeTest, EscapesNamedControls)
{
    EXPECT_EQ(jsonEscape("a\nb\tc\rd\be\ff"),
              "a\\nb\\tc\\rd\\be\\ff");
}

TEST(JsonEscapeTest, EscapesOtherControlsAsUnicode)
{
    EXPECT_EQ(jsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
    EXPECT_EQ(jsonEscape(std::string("\x1f", 1)), "\\u001f");
}

TEST(JsonEscapeTest, LeavesHighBytesAlone)
{
    // UTF-8 multibyte sequences pass through untouched.
    EXPECT_EQ(jsonEscape("\xc3\xa9"), "\xc3\xa9");
}

} // namespace
