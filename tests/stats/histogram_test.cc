/**
 * @file
 * Histogram tests: exactness of extremes/mean, bounded quantile error
 * versus exact sorted-sample quantiles (property sweeps over several
 * distributions), merging, and edge cases.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "stats/histogram.hh"

using afa::sim::Rng;
using afa::sim::Tick;
using afa::stats::Histogram;

namespace {

TEST(HistogramTest, EmptyHistogram)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(HistogramTest, SingleSample)
{
    Histogram h;
    h.record(12345);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 12345u);
    EXPECT_EQ(h.max(), 12345u);
    EXPECT_DOUBLE_EQ(h.mean(), 12345.0);
    EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
    EXPECT_EQ(h.quantile(0.0), 12345u);
    EXPECT_EQ(h.quantile(0.5), 12345u);
    EXPECT_EQ(h.quantile(1.0), 12345u);
}

TEST(HistogramTest, ExactRegionIsExact)
{
    // Values below 2^subBits are stored with one-tick resolution.
    Histogram h(6);
    for (Tick v = 0; v < 64; ++v)
        h.record(v);
    for (int i = 1; i <= 9; ++i) {
        double q = i / 10.0;
        Tick exact = static_cast<Tick>(std::ceil(q * 64.0)) - 1;
        EXPECT_EQ(h.quantile(q), exact) << "q=" << q;
    }
}

TEST(HistogramTest, MinMaxMeanExact)
{
    Histogram h;
    std::vector<Tick> vals = {5, 100, 100000, 77, 3141592};
    double sum = 0;
    for (Tick v : vals) {
        h.record(v);
        sum += static_cast<double>(v);
    }
    EXPECT_EQ(h.min(), 5u);
    EXPECT_EQ(h.max(), 3141592u);
    EXPECT_DOUBLE_EQ(h.mean(), sum / vals.size());
}

TEST(HistogramTest, StddevMatchesDirectComputation)
{
    Histogram h;
    std::vector<Tick> vals = {10, 20, 30, 40, 50};
    for (Tick v : vals)
        h.record(v);
    // population stddev of {10..50 step 10} = sqrt(200)
    EXPECT_NEAR(h.stddev(), std::sqrt(200.0), 1e-9);
}

TEST(HistogramTest, WeightedRecord)
{
    Histogram h;
    h.record(100, 9);
    h.record(1000, 1);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), (9 * 100 + 1000) / 10.0);
    EXPECT_LE(h.quantile(0.9), 101u);
    EXPECT_EQ(h.quantile(1.0), 1000u);
}

TEST(HistogramTest, CountAbove)
{
    Histogram h;
    for (Tick v : {10u, 20u, 30u, 40u, 50u})
        h.record(v);
    EXPECT_EQ(h.countAbove(30), 2u);
    EXPECT_EQ(h.countAbove(50), 0u);
    EXPECT_EQ(h.countAbove(0), 5u);
    // threshold above max
    EXPECT_EQ(h.countAbove(1000), 0u);
}

TEST(HistogramTest, MergeCombinesEverything)
{
    Histogram a, b;
    a.record(10);
    a.record(1000);
    b.record(5);
    b.record(100000);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.min(), 5u);
    EXPECT_EQ(a.max(), 100000u);
}

TEST(HistogramTest, MergeGeometryMismatchIsFatal)
{
    afa::sim::setThrowOnError(true);
    Histogram a(6), b(7);
    EXPECT_THROW(a.merge(b), afa::sim::SimError);
    afa::sim::setThrowOnError(false);
}

TEST(HistogramTest, MergeIntoEmpty)
{
    Histogram a, b;
    b.record(42);
    a.merge(b);
    EXPECT_EQ(a.min(), 42u);
    EXPECT_EQ(a.max(), 42u);
    EXPECT_EQ(a.count(), 1u);
}

TEST(HistogramTest, ClearResets)
{
    Histogram h;
    h.record(100);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
    h.record(7);
    EXPECT_EQ(h.min(), 7u);
}

TEST(HistogramTest, InvalidSubBucketBitsFatal)
{
    afa::sim::setThrowOnError(true);
    EXPECT_THROW(Histogram(0), afa::sim::SimError);
    EXPECT_THROW(Histogram(17), afa::sim::SimError);
    afa::sim::setThrowOnError(false);
}

TEST(HistogramTest, HugeValuesDoNotOverflow)
{
    Histogram h;
    h.record(afa::sim::kMaxTick);
    h.record(afa::sim::kMaxTick - 1);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.max(), afa::sim::kMaxTick);
    EXPECT_GE(h.quantile(0.5), afa::sim::kMaxTick / 2);
}

/**
 * Property: for a variety of sample distributions, every histogram
 * quantile is within the documented relative error of the exact
 * (sorted-sample) quantile.
 */
struct QuantileCase
{
    const char *name;
    double (*sampler)(Rng &);
};

class QuantileAccuracy : public ::testing::TestWithParam<QuantileCase>
{
};

TEST_P(QuantileAccuracy, BoundedRelativeError)
{
    Rng r(77);
    Histogram h(6);
    const int n = 50000;
    std::vector<Tick> vals;
    vals.reserve(n);
    for (int i = 0; i < n; ++i) {
        double x = GetParam().sampler(r);
        Tick v = static_cast<Tick>(std::max(x, 1.0));
        vals.push_back(v);
        h.record(v);
    }
    std::sort(vals.begin(), vals.end());
    for (double q : {0.5, 0.9, 0.99, 0.999, 0.9999}) {
        auto rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(n)));
        rank = std::max<std::size_t>(rank, 1);
        Tick exact = vals[rank - 1];
        Tick approx = h.quantile(q);
        double rel_err =
            std::abs(static_cast<double>(approx) -
                     static_cast<double>(exact)) /
            static_cast<double>(exact);
        // Interpolation within the bucket can add at most one bucket
        // width; allow 2x the nominal bound.
        EXPECT_LE(rel_err, 2.0 * h.relativeError())
            << GetParam().name << " q=" << q;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, QuantileAccuracy,
    ::testing::Values(
        QuantileCase{"uniform",
                     [](Rng &r) { return r.uniform(1000.0, 100000.0); }},
        QuantileCase{"lognormal",
                     [](Rng &r) { return r.lognormal(30000.0, 0.4); }},
        QuantileCase{"exponential",
                     [](Rng &r) { return r.exponential(25000.0); }},
        QuantileCase{"pareto",
                     [](Rng &r) { return r.pareto(20000.0, 2.0); }},
        QuantileCase{"bimodal",
                     [](Rng &r) {
                         return r.chance(0.95) ? r.normal(30000.0, 2000.0)
                                               : r.normal(600000.0,
                                                          20000.0);
                     }}),
    [](const ::testing::TestParamInfo<QuantileCase> &info) {
        return info.param.name;
    });

TEST(HistogramTest, QuantileMonotoneInQ)
{
    Rng r(9);
    Histogram h;
    for (int i = 0; i < 20000; ++i)
        h.record(static_cast<Tick>(r.lognormal(30000.0, 0.6)));
    Tick prev = 0;
    for (double q = 0.0; q <= 1.0; q += 0.01) {
        Tick v = h.quantile(q);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

} // namespace
