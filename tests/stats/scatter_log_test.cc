/**
 * @file
 * Tests for the raw-sample scatter log and spike-cluster detection
 * (the Fig. 10 analysis pipeline).
 */

#include <gtest/gtest.h>

#include "sim/types.hh"
#include "stats/scatter_log.hh"

using afa::sim::msec;
using afa::sim::sec;
using afa::sim::usec;
using afa::stats::ScatterLog;

namespace {

TEST(ScatterLogTest, RecordsInOrder)
{
    ScatterLog log;
    log.record(100, usec(30), 0);
    log.record(200, usec(31), 1);
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log.samples()[0].index, 0u);
    EXPECT_EQ(log.samples()[1].index, 1u);
    EXPECT_EQ(log.samples()[1].device, 1u);
}

TEST(ScatterLogTest, CapacityBoundCountsDrops)
{
    ScatterLog log(2);
    for (int i = 0; i < 5; ++i)
        log.record(i, usec(30), 0);
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(log.dropped(), 3u);
}

TEST(ScatterLogTest, OutliersAboveThreshold)
{
    ScatterLog log;
    log.record(1, usec(30), 0);
    log.record(2, usec(600), 0);
    log.record(3, usec(29), 0);
    auto out = log.outliers(usec(100));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].latency, usec(600));
}

TEST(ScatterLogTest, ClustersGroupNearbyOutliers)
{
    ScatterLog log;
    // Two spike bursts 30s apart, each with 3 outliers 10us apart.
    for (int burst = 0; burst < 2; ++burst) {
        auto base = sec(10) + burst * sec(30);
        for (int i = 0; i < 3; ++i)
            log.record(base + i * usec(10), usec(550 + i), 0);
        // quiet samples in between
        log.record(base + sec(1), usec(30), 0);
    }
    auto cs = log.clusters(usec(100), msec(1));
    ASSERT_EQ(cs.size(), 2u);
    EXPECT_EQ(cs[0].samples, 3u);
    EXPECT_EQ(cs[0].peakLatency, usec(552));
    EXPECT_EQ(cs[1].samples, 3u);
}

TEST(ScatterLogTest, ClusterPeriodIsMedianInterval)
{
    ScatterLog log;
    // Spikes every ~30 s.
    for (int k = 0; k < 5; ++k)
        log.record(sec(5) + k * sec(30), usec(600), 0);
    auto period = log.clusterPeriod(usec(100), msec(1));
    EXPECT_EQ(period, sec(30));
}

TEST(ScatterLogTest, ClusterPeriodRequiresTwoClusters)
{
    ScatterLog log;
    log.record(sec(5), usec(600), 0);
    EXPECT_EQ(log.clusterPeriod(usec(100), msec(1)), 0u);
}

TEST(ScatterLogTest, ToTextStride)
{
    ScatterLog log;
    for (int i = 0; i < 10; ++i)
        log.record(i, usec(30), 2);
    std::string txt = log.toText(5);
    // Two lines expected (indices 0 and 5).
    EXPECT_EQ(std::count(txt.begin(), txt.end(), '\n'), 2);
    EXPECT_NE(txt.find("nvme2"), std::string::npos);
}

TEST(ScatterLogTest, ClearResets)
{
    ScatterLog log;
    log.record(1, usec(30), 0);
    log.clear();
    EXPECT_EQ(log.size(), 0u);
    log.record(2, usec(30), 0);
    EXPECT_EQ(log.samples()[0].index, 0u);
}

} // namespace
