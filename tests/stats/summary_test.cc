/**
 * @file
 * Tests for the FIO-style latency summary and the cross-device
 * aggregation used by Figs. 12 and 14.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hh"
#include "sim/types.hh"
#include "stats/summary.hh"

using afa::sim::usec;
using afa::stats::Histogram;
using afa::stats::LadderAggregate;
using afa::stats::LatencySummary;
using afa::stats::NinesLadder;

namespace {

TEST(NinesLadderTest, LadderShape)
{
    const auto &q = NinesLadder::quantiles();
    ASSERT_EQ(q.size(), 7u);
    EXPECT_LT(q[0], 0.0); // avg sentinel
    EXPECT_DOUBLE_EQ(q[1], 0.99);
    EXPECT_DOUBLE_EQ(q[5], 0.999999);
    EXPECT_DOUBLE_EQ(q[6], 1.0);
    EXPECT_STREQ(NinesLadder::labels()[1], "99%");
    EXPECT_STREQ(NinesLadder::shortLabels()[5], "6-nines");
    EXPECT_STREQ(NinesLadder::shortLabels()[6], "max");
}

TEST(LatencySummaryTest, FromHistogramBasics)
{
    Histogram h;
    // 999 fast samples at 30us, one slow at 5ms.
    h.record(usec(30), 999);
    h.record(afa::sim::msec(5), 1);
    auto s = LatencySummary::fromHistogram("nvme0", h);
    EXPECT_EQ(s.device, "nvme0");
    EXPECT_EQ(s.samples, 1000u);
    EXPECT_NEAR(s.meanUs, (999 * 30.0 + 5000.0) / 1000.0, 0.5);
    EXPECT_NEAR(s.maxUs, 5000.0, 1.0);
    EXPECT_NEAR(s.minUs, 30.0, 0.1);
    // avg slot mirrors the mean
    EXPECT_DOUBLE_EQ(s.ladderUs[0], s.meanUs);
    // p99 must be fast, max slot must be the outlier
    EXPECT_LT(s.ladderUs[1], 40.0);
    EXPECT_NEAR(s.ladderUs[6], 5000.0, 1.0);
}

TEST(LatencySummaryTest, LadderIsMonotone)
{
    Histogram h;
    afa::sim::Rng r(3);
    for (int i = 0; i < 100000; ++i)
        h.record(static_cast<afa::sim::Tick>(r.lognormal(30000.0, 0.5)));
    auto s = LatencySummary::fromHistogram("d", h);
    for (std::size_t i = 2; i < NinesLadder::kPoints; ++i)
        EXPECT_GE(s.ladderUs[i], s.ladderUs[i - 1]) << i;
}

TEST(LatencySummaryTest, EmptyHistogram)
{
    Histogram h;
    auto s = LatencySummary::fromHistogram("d", h);
    EXPECT_EQ(s.samples, 0u);
    EXPECT_DOUBLE_EQ(s.meanUs, 0.0);
    EXPECT_DOUBLE_EQ(s.maxUs, 0.0);
}

TEST(LadderAggregateTest, EmptyInput)
{
    auto agg = LadderAggregate::across({});
    EXPECT_EQ(agg.devices, 0u);
}

TEST(LadderAggregateTest, SingleDeviceHasZeroStddev)
{
    Histogram h;
    h.record(usec(30), 100);
    auto s = LatencySummary::fromHistogram("d", h);
    auto agg = LadderAggregate::across({s});
    EXPECT_EQ(agg.devices, 1u);
    for (std::size_t p = 0; p < NinesLadder::kPoints; ++p) {
        EXPECT_DOUBLE_EQ(agg.stddevUs[p], 0.0);
        EXPECT_DOUBLE_EQ(agg.meanUs[p], s.ladderUs[p]);
    }
}

TEST(LadderAggregateTest, MeanAndStddevAcrossDevices)
{
    // Two devices with max latencies 100us and 300us:
    // mean 200, population stddev 100.
    LatencySummary a, b;
    a.ladderUs.fill(100.0);
    b.ladderUs.fill(300.0);
    auto agg = LadderAggregate::across({a, b});
    EXPECT_EQ(agg.devices, 2u);
    EXPECT_DOUBLE_EQ(agg.meanUs[6], 200.0);
    EXPECT_DOUBLE_EQ(agg.stddevUs[6], 100.0);
    EXPECT_DOUBLE_EQ(agg.minUs[6], 100.0);
    EXPECT_DOUBLE_EQ(agg.maxUs[6], 300.0);
}

TEST(LadderAggregateTest, ConvergedDevicesHaveTinyStddev)
{
    // The paper's Fig. 12 bottom: convergence across devices shows up
    // as small stddev at every ladder point.
    std::vector<LatencySummary> devs;
    for (int d = 0; d < 64; ++d) {
        LatencySummary s;
        for (std::size_t p = 0; p < NinesLadder::kPoints; ++p)
            s.ladderUs[p] = 30.0 + static_cast<double>(p);
        devs.push_back(s);
    }
    auto agg = LadderAggregate::across(devs);
    for (std::size_t p = 0; p < NinesLadder::kPoints; ++p)
        EXPECT_DOUBLE_EQ(agg.stddevUs[p], 0.0);
}

} // namespace
