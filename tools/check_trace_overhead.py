#!/usr/bin/env python3
"""Gate the cost of compiled-in-but-disabled span tracing.

Compares a google-benchmark JSON run of bench/micro_simcore against a
baseline and fails when the geometric-mean time ratio across shared
benchmarks exceeds the tolerance (default 2%). The instrumentation
contract (DESIGN.md "Observability contract") is that a disabled
SpanLog site costs one predictable branch, so the tracing-enabled
build must sit on top of the tracing-free numbers to within noise.

Two baseline formats are accepted:

  * another google-benchmark JSON file -- the same-host A/B CI uses:
    one micro_simcore built normally (tracing compiled in, disabled at
    runtime) against one built with -DAFA_OBS_COMPILED_CATEGORIES=0;

  * BENCH_simcore.json, the repo's tracked medians (the `new` value
    per benchmark). Only meaningful on the machine that recorded them;
    use it locally, not on shared CI runners.

Shared hosts drift by tens of percent between back-to-back runs of
the *same* binary (memory-bound benches especially), so both sides
accept several interleaved rounds and compare per-benchmark medians
across rounds -- the BENCH_simcore.json methodology.

Benchmarks that *actively* record (the telemetry A/B pair
BM_SpanLogRecordTelemetry / BM_TelemetryWindowedRun) are excluded
from the cross-build ratio with --exclude: in the compiled-out
baseline their instrumentation sites no-op, so their ratio would
measure tracing itself rather than its disabled cost. The disabled
telemetry path is gated instead by --require-ing the benchmarks that
exercise the always-on simulator self-profiling code
(BM_ShardedEventThroughput, BM_ShardedFig06Throughput): a silent
drop of either from the comparison fails the gate.

Usage:
    micro_simcore --benchmark_out=run.json --benchmark_out_format=json
    tools/check_trace_overhead.py a1.json a2.json \
        --baseline b1.json --baseline b2.json \
        --exclude 'BM_SpanLogRecordTelemetry|BM_TelemetryWindowedRun' \
        --require BM_ShardedEventThroughput/4
"""

import argparse
import json
import math
import re
import statistics
import sys


def load_times(path):
    """Return {benchmark name: ns/op} from either supported format."""
    with open(path) as f:
        doc = json.load(f)

    if "micro_simcore" in doc:  # BENCH_simcore.json
        return {name: rec["new"]
                for name, rec in doc["micro_simcore"]["benchmarks"].items()}

    # google-benchmark: prefer the median aggregate when repetitions
    # were requested, else the plain iteration entries.
    times = {}
    medians = {}
    for b in doc.get("benchmarks", []):
        name = b["name"]
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[b.get("run_name", name)] = b["real_time"]
        else:
            times[name] = b["real_time"]
    return medians or times


def median_times(paths):
    """Per-benchmark median ns/op across several rounds."""
    rounds = [load_times(p) for p in paths]
    names = set.intersection(*(set(r) for r in rounds))
    return {name: statistics.median(r[name] for r in rounds)
            for name in names}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("measured", nargs="+",
                        help="google-benchmark JSON run(s)")
    parser.add_argument("--baseline", action="append",
                        help="baseline JSON (google-benchmark or "
                             "BENCH_simcore.json format); repeat for "
                             "several rounds [default: "
                             "BENCH_simcore.json]")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="max geomean slowdown, percent (default 2)")
    parser.add_argument("--exclude", default=None,
                        help="regex of benchmark names to drop from "
                             "the comparison (benchmarks that "
                             "actively record)")
    parser.add_argument("--require", action="append", default=[],
                        help="benchmark name that must be present in "
                             "the comparison; repeatable. Guards "
                             "against a gated code path silently "
                             "disappearing from the A/B.")
    args = parser.parse_args()

    measured = median_times(args.measured)
    baseline = median_times(args.baseline or ["BENCH_simcore.json"])
    shared = sorted(set(measured) & set(baseline))
    if args.exclude:
        pattern = re.compile(args.exclude)
        dropped = [n for n in shared if pattern.search(n)]
        if dropped:
            print("excluded from the ratio: %s" % ", ".join(dropped))
        shared = [n for n in shared if not pattern.search(n)]
    missing = [name for name in args.require if name not in shared]
    if missing:
        print("FAIL: required benchmark(s) missing from the "
              "comparison: %s" % ", ".join(missing))
        return 1
    if not shared:
        print("check_trace_overhead: no common benchmarks between "
              "%s and %s" % (args.measured, args.baseline))
        return 1

    log_sum = 0.0
    print("%-36s %12s %12s %8s" % ("benchmark", "measured", "baseline",
                                   "ratio"))
    for name in shared:
        ratio = measured[name] / baseline[name]
        log_sum += math.log(ratio)
        print("%-36s %12.2f %12.2f %8.3f"
              % (name, measured[name], baseline[name], ratio))
    geomean = math.exp(log_sum / len(shared))
    limit = 1.0 + args.tolerance / 100.0
    print("geomean time ratio: %.4f (limit %.4f, %d benchmarks)"
          % (geomean, limit, len(shared)))

    if geomean > limit:
        print("FAIL: tracing overhead %.1f%% exceeds %.1f%%"
              % ((geomean - 1.0) * 100.0, args.tolerance))
        return 1
    print("OK: tracing overhead %.1f%% within %.1f%%"
          % ((geomean - 1.0) * 100.0, args.tolerance))
    return 0


if __name__ == "__main__":
    sys.exit(main())
