#!/usr/bin/env python3
"""detlint — determinism linter for the AFASim simulator tree.

The reproduction's headline claim is bit-identical figures for a given
--seed at any --jobs count. That only holds while simulator code draws
every random number from the seeded afa::sim::Rng tree, never reads
wall-clock time into simulation state, and keeps no hidden mutable
globals. detlint statically bans the constructs that break that
contract:

  rand                 C PRNG (std::rand/srand/rand()) — unseeded,
                       process-global, not reproducible.
  wall-clock           std::chrono::*_clock::now, time(), gettimeofday,
                       clock_gettime, clock() — host time must never
                       reach simulation state; sim time is Tick.
  random-device        std::random_device — hardware entropy defeats
                       --seed by design.
  unseeded-rng         std::mt19937 & friends default-constructed —
                       fixed seed by accident, and a parallel stream
                       that ignores the experiment seed. Use
                       afa::sim::Rng::fork().
  unordered-iteration  iterating a std::unordered_{map,set}: iteration
                       order depends on libstdc++ version, hasher seed
                       and insertion history, so anything order-
                       sensitive becomes build-dependent. Use std::map
                       or a vector, or iterate a sorted key copy.
  mutable-static       mutable namespace-scope state: shared across
                       concurrently running simulations, so one run
                       can leak into another.
  fault-rng            (fault sources only) constructing a fresh
                       afa::sim::Rng in fault code: all fault
                       randomness must flow from the FaultEngine's
                       per-object stream ("afa.faults") or faulted
                       replays stop being replayable.
  arrival-rng          (arrival/open-loop workload sources only)
                       constructing a fresh afa::sim::Rng in the
                       open-loop traffic engine: every arrival-clock,
                       device, LBA and mix draw must flow from the
                       engine's named per-stream forks or the offered
                       load stops being byte-identical across
                       --shards/--jobs.
  shard-state          calling a controller's cross-shard mutators
                       (setLimpFactor/setOffline/stallUntil) outside a
                       scheduleOnShard() post: in a sharded run the
                       controller's state belongs to its own shard, so
                       mutating it directly from another shard is a
                       data race and breaks bit-identical replay. Post
                       the mutation to the owning shard through the
                       mailbox API, or annotate code that provably
                       runs on the owning shard.
  telemetry-internal   (telemetry sources only) scheduling a sampling
                       event without internal=true: the telemetry
                       contract (DESIGN.md §14) is that canonical
                       reports are byte-identical with --telemetry on
                       and off, which only holds while every sampling
                       event is engine plumbing. A scheduleOnShard()
                       whose internal argument is not the literal
                       `true` — including the 3-argument form, whose
                       default is false — and any scheduleAt()/
                       scheduleAfter() (which cannot mark events
                       internal at all) make the sample model-visible.

Escape hatch: a trailing or immediately preceding comment
`// detlint:allow(<rule>[,<rule>...])` suppresses a diagnostic; every
allow is expected to carry a justification nearby (logging.cc's
audited globals are the template).

Usage:
  detlint.py [--root DIR] [--list-rules] [paths...]

Paths default to the whole simulator tree: every library directory
under src/ plus bench/ (the figure drivers feed published results, so
they obey the same determinism contract). Diagnostics are
`file:line: rule: message`; exit status is 1 if any fire.

detlint is the fast no-toolchain fallback; detlint_ast.py (same rules
plus semantic-only ones, same allow grammar) is the authoritative
analyzer when libclang is available. See DESIGN.md "Static-analysis
contract".
"""

import argparse
import os
import re
import sys

DEFAULT_PATHS = [
    "src/sim",
    "src/core",
    "src/fault",
    "src/nvme",
    "src/pcie",
    "src/host",
    "src/obs",
    "src/raid",
    "src/stats",
    "src/workload",
    "src/nand",
    "bench",
]

SOURCE_EXTENSIONS = (".cc", ".hh", ".cpp", ".hpp", ".h")

ALLOW_RE = re.compile(r"detlint:allow\(([\w\-, ]+)\)")

RULES = {
    "rand": "C PRNG is process-global and unseeded; draw from the "
            "experiment's afa::sim::Rng instead",
    "wall-clock": "host wall-clock must not reach simulation state; "
                  "simulated time is afa::sim::Tick",
    "random-device": "hardware entropy defeats --seed reproducibility",
    "unseeded-rng": "default-constructed engine ignores the experiment "
                    "seed; use afa::sim::Rng::fork()",
    "unordered-iteration": "unordered container iteration order is "
                           "implementation-defined; iterate a sorted "
                           "copy or use an ordered container",
    "mutable-static": "mutable namespace-scope state is shared across "
                      "concurrent simulations; move it into a "
                      "simulation-owned object or justify with "
                      "detlint:allow",
    "fault-rng": "fault code must draw randomness from the "
                 "FaultEngine's seeded per-object stream, not a "
                 "freshly constructed Rng",
    "arrival-rng": "open-loop arrival code must draw randomness from "
                   "the engine's named per-stream Rng forks, not a "
                   "freshly constructed Rng",
    "shard-state": "cross-shard SimObject state must be mutated via a "
                   "scheduleOnShard() post to the owning shard, not "
                   "touched directly; annotate shard-affine call "
                   "sites with detlint:allow(shard-state)",
    "telemetry-internal": "telemetry sampling events must be posted "
                          "with scheduleOnShard(..., /*internal=*/"
                          "true, ...) or canonical reports stop being "
                          "byte-identical with telemetry on/off; "
                          "scheduleAt/scheduleAfter cannot mark "
                          "events internal",
}

SIMPLE_PATTERNS = [
    ("rand", re.compile(
        r"std\s*::\s*s?rand\b|(?<![\w:.>])s?rand\s*\(")),
    ("wall-clock", re.compile(
        r"(?:system|steady|high_resolution)_clock\s*::\s*now"
        r"|std\s*::\s*(?:time|clock)\s*\("
        r"|(?<![\w:.>])time\s*\("
        r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
        r"|(?<![\w:.>])clock\s*\(\s*\)"
        r"|\blocaltime\s*\(|\bgmtime\s*\(")),
    ("random-device", re.compile(r"std\s*::\s*random_device\b")),
    ("unseeded-rng", re.compile(
        r"std\s*::\s*(?:mt19937(?:_64)?|default_random_engine"
        r"|minstd_rand0?|ranlux(?:24|48)(?:_base)?)"
        r"\s+\w+\s*(?:;|\{\s*\}|\(\s*\))")),
]

# Fresh-Rng construction, reported as fault-rng in paths containing
# "fault" and as arrival-rng in the open-loop workload sources
# ("arrival"/"openloop" paths): either way it is a second randomness
# stream outside the object's seeded fork.
FRESH_RNG_RE = re.compile(
    r"\bRng\s+\w+\s*[({=;]"
    r"|\bnew\s+(?:afa\s*::\s*sim\s*::\s*)?Rng\b")


def fresh_rng_rule_for(display_path):
    """The fresh-Rng rule a path is scoped under, or None."""
    if "fault" in display_path:
        return "fault-rng"
    if "arrival" in display_path or "openloop" in display_path:
        return "arrival-rng"
    return None

# Cross-shard controller mutators: legal only inside a
# scheduleOnShard() post (the mailbox routes it to the owning shard)
# or at an annotated shard-affine call site. Member-access spelling
# only, so declarations/definitions of the mutators don't fire.
SHARD_STATE_RE = re.compile(
    r"(?:\.|->)\s*(?:setLimpFactor|setOffline|stallUntil)\s*\(")

SCHEDULE_ON_SHARD_RE = re.compile(r"\bscheduleOnShard\s*\(")

# Scoped to paths containing "telemetry": local-shard scheduling has
# no internal flag, so sampling code must never use it.
LOCAL_SCHEDULE_RE = re.compile(r"\bscheduleA(?:t|fter)\s*\(")

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*?>\s*&?\s*"
    r"(\w+)\s*[;={(,)]")

RANGE_FOR_RE = re.compile(r"for\s*\([^;()]*?:\s*&?([\w.>\-]+)\s*\)")

BEGIN_CALL_RE = re.compile(r"(\w+)\s*\.\s*(?:begin|cbegin)\s*\(\s*\)")


RAW_STRING_OPEN_RE = re.compile(r'R"([^ ()\\\t\v\f\n]{0,16})\(')


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving the
    character count and line structure so offsets keep mapping to the
    original file.

    Two constructs need care beyond the classic four-state scanner:

      - C++14 digit separators: the apostrophe in 1'000'000 is part
        of the number, not a char literal. Treating it as one flips
        the scanner into char-literal state mid-number; the state
        desync then blanks real code and un-blanks real comments,
        producing both false negatives and false positives (a comment
        mentioning std::rand() after such a literal used to fire the
        rand rule -- see fixtures/clean_separators.cc).

      - Raw string literals: R"(...)" contents follow no escape rules
        and may span lines; a backslash before the closing quote must
        not be treated as an escape, and the terminator is )delim",
        not a bare quote.
    """
    out = []
    i, n = 0, len(text)
    state = "code"
    raw_term = ""  # the )delim" terminator of the open raw string
    prev_code = ""  # last non-blanked character emitted in code state
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
            elif c == "R" and nxt == '"' and \
                    not (prev_code.isalnum() or prev_code == "_"):
                m = RAW_STRING_OPEN_RE.match(text, i)
                if m:
                    state = "raw-string"
                    raw_term = ')%s"' % m.group(1)
                    out.append(" " * len(m.group(0)))
                    i = m.end()
                else:
                    out.append(c)
                    prev_code = c
                    i += 1
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                # A digit separator (1'000'000, 0xff'ff) continues the
                # preceding pp-number: it can only follow a digit (or
                # hex digit). Any other preceding character -- incl.
                # the L/u/U encoding prefixes, which are why plain
                # isalnum() would be wrong -- opens a char literal.
                if prev_code in "0123456789abcdefABCDEF":
                    out.append(" ")
                    i += 1
                else:
                    state = "char"
                    out.append(" ")
                    i += 1
            else:
                out.append(c)
                if not c.isspace():
                    prev_code = c
                i += 1
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "raw-string":
            # No escapes inside a raw string; it ends only at its
            # )delim" terminator.
            if text.startswith(raw_term, i):
                state = "code"
                out.append(" " * len(raw_term))
                i += len(raw_term)
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            if c == "\\":
                out.append(" ")
                out.append(nxt if nxt == "\n" else " ")
                i += 2
            elif (state == "string" and c == '"') or \
                 (state == "char" and c == "'"):
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def strip_preprocessor(text):
    """Blank out preprocessor directives (including continuation
    lines) so #includes and macros don't bleed into namespace-scope
    statement tracking. Run after comment/string stripping."""
    out = []
    continuation = False
    for line in text.split("\n"):
        if continuation or line.lstrip().startswith("#"):
            continuation = line.rstrip().endswith("\\")
            out.append(" " * len(line))
        else:
            continuation = False
            out.append(line)
    return "\n".join(out)


def collect_allows(text):
    """Map 1-based line number -> set of rule names allowed there."""
    allows = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            allows[lineno] = rules
    return allows


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


class Diagnostic:
    def __init__(self, path, line, rule, detail=""):
        self.path = path
        self.line = line
        self.rule = rule
        self.detail = detail or RULES[rule]

    def __str__(self):
        return "%s:%d: %s: %s" % (self.path, self.line, self.rule,
                                  self.detail)


def classify_block(prefix):
    """Classify the block opened by '{' from the statement text that
    precedes it."""
    p = prefix.strip()
    if re.search(r"\bnamespace\b", p):
        return "namespace"
    if re.search(r"\b(class|struct|union|enum)\b", p):
        return "type"
    if p.endswith(")") or re.search(r"\)\s*(const|noexcept|->.*)?$", p):
        return "function"
    if p.endswith("=") or not p:
        return "init"
    # `Foo bar{...}` brace-initialiser of a declaration.
    if re.search(r"[\w>\]]$", p):
        return "init"
    return "other"


STATIC_SKIP_RE = re.compile(
    r"\b(const|constexpr|constinit|using|typedef|extern|template|"
    r"operator|friend|static_assert|return)\b")


def is_mutable_static_stmt(stmt):
    """True when a namespace-scope statement defines a mutable
    variable (flag regardless of the `static` keyword: a non-const
    namespace-scope definition has static storage either way)."""
    s = " ".join(stmt.split())
    if not s or s.endswith(")"):
        return False
    if STATIC_SKIP_RE.search(s):
        return False
    # `class Foo;` / `struct Foo;` is a forward declaration, not state.
    if re.match(r"(class|struct|union|enum(\s+(class|struct))?)\s+"
                r"[\w:]+$", s):
        return False
    # A '(' before any '=' means a function declaration/definition
    # (variable ctor-call initialisers are rare here and a miss is
    # cheaper than flagging every function).
    paren = s.find("(")
    eq = s.find("=")
    if paren != -1 and (eq == -1 or paren < eq):
        return False
    # Must look like "Type name ...;" — at least two identifier-ish
    # tokens before the initialiser/semicolon.
    head = re.split(r"[={]", s, 1)[0].strip()
    if not re.search(r"[\w>&*\]]\s+[\w:]+(\s*\[\s*\d*\s*\])?$", head):
        return False
    return True


def check_mutable_static(path, text, diags):
    """Scan namespace-scope statements for mutable static state."""
    stack = []  # classifications of open blocks
    stmt_start = 0
    stmt = []
    i, n = 0, len(text)
    in_init_depth = 0

    def at_namespace_scope():
        return all(b == "namespace" for b in stack)

    while i < n:
        c = text[i]
        if c == "{":
            if at_namespace_scope():
                kind = classify_block("".join(stmt))
                if kind == "init":
                    in_init_depth += 1
                    stack.append("init-group")
                    stmt.append("{")
                else:
                    stack.append(kind)
                    if kind != "namespace":
                        pass  # keep stmt; discarded at close
                    else:
                        stmt = []
                        stmt_start = i + 1
            else:
                stack.append("inner")
            i += 1
            continue
        if c == "}":
            if stack:
                kind = stack.pop()
                if kind == "init-group":
                    in_init_depth -= 1
                    stmt.append("}")
                elif at_namespace_scope():
                    # Closed a function/type/namespace at namespace
                    # scope: statement text was its head, drop it.
                    stmt = []
                    stmt_start = i + 1
            i += 1
            continue
        if c == ";" and at_namespace_scope() and in_init_depth == 0:
            statement = "".join(stmt)
            if is_mutable_static_stmt(statement):
                # Report at the first non-blank line of the statement.
                first = statement.lstrip()
                off = stmt_start + (len(statement) - len(first))
                diags.append(Diagnostic(path, line_of(text, off),
                                        "mutable-static"))
            stmt = []
            stmt_start = i + 1
            i += 1
            continue
        if at_namespace_scope():
            stmt.append(c)
        i += 1


def schedule_on_shard_spans(text):
    """Character ranges of every scheduleOnShard(...) call, from the
    opening parenthesis to its balanced close. Mutator calls inside
    such a span execute on the owning shard by construction."""
    spans = []
    for m in SCHEDULE_ON_SHARD_RE.finditer(text):
        depth = 0
        i = m.end() - 1  # the opening '('
        n = len(text)
        while i < n:
            c = text[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        spans.append((m.start(), i))
    return spans


def top_level_call_args(text, start, end):
    """Top-level argument substrings of the call whose name match
    begins at @p start and whose balanced close is at @p end (the
    schedule_on_shard_spans convention). Nested parentheses, brackets
    and braces — lambda arguments especially — do not split."""
    open_paren = text.index("(", start)
    args = []
    depth = 0
    arg_start = open_paren + 1
    for i in range(open_paren, end + 1):
        c = text[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                args.append(text[arg_start:i])
                break
        elif c == "," and depth == 1:
            args.append(text[arg_start:i])
            arg_start = i + 1
    return args


def check_telemetry_internal(path, text, diags):
    """Telemetry sampling must ride internal events: every
    scheduleOnShard() in a telemetry source needs the literal `true`
    as its 4th (internal) argument, and the local-shard schedulers
    (no internal flag) are banned outright."""
    for m in LOCAL_SCHEDULE_RE.finditer(text):
        diags.append(Diagnostic(
            path, line_of(text, m.start()), "telemetry-internal",
            "scheduleAt/scheduleAfter cannot mark the event internal; "
            "post the sample with scheduleOnShard(..., /*internal=*/"
            "true, ...)"))
    for start, end in schedule_on_shard_spans(text):
        args = top_level_call_args(text, start, end)
        internal = args[3].strip() if len(args) > 3 else ""
        if internal != "true":
            diags.append(Diagnostic(path, line_of(text, start),
                                    "telemetry-internal"))


def check_shard_state(path, text, diags):
    spans = None
    for m in SHARD_STATE_RE.finditer(text):
        if spans is None:
            spans = schedule_on_shard_spans(text)
        if any(start <= m.start() <= end for start, end in spans):
            continue
        diags.append(Diagnostic(path, line_of(text, m.start()),
                                "shard-state"))


def check_unordered_iteration(path, text, diags):
    names = set(UNORDERED_DECL_RE.findall(text))
    if not names:
        return
    for regex in (RANGE_FOR_RE, BEGIN_CALL_RE):
        for m in regex.finditer(text):
            target = m.group(1)
            leaf = re.split(r"[.>]|->", target)[-1]
            if leaf in names:
                diags.append(Diagnostic(path, line_of(text, m.start()),
                                        "unordered-iteration"))


def check_file(path, display_path):
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    allows = collect_allows(raw)
    text = strip_preprocessor(strip_comments_and_strings(raw))

    diags = []
    for rule, regex in SIMPLE_PATTERNS:
        for m in regex.finditer(text):
            diags.append(Diagnostic(display_path,
                                    line_of(text, m.start()), rule))
    fresh_rng_rule = fresh_rng_rule_for(display_path)
    if fresh_rng_rule:
        for m in FRESH_RNG_RE.finditer(text):
            diags.append(Diagnostic(display_path,
                                    line_of(text, m.start()),
                                    fresh_rng_rule))
    if "telemetry" in display_path:
        check_telemetry_internal(display_path, text, diags)
    check_shard_state(display_path, text, diags)
    check_unordered_iteration(display_path, text, diags)
    check_mutable_static(display_path, text, diags)

    kept = []
    for d in diags:
        allowed = allows.get(d.line, set()) | allows.get(d.line - 1,
                                                        set())
        if d.rule in allowed:
            continue
        kept.append(d)
    return kept


def iter_sources(root, paths):
    for path in paths:
        full = os.path.join(root, path)
        if os.path.isfile(full):
            yield full, path
            continue
        for dirpath, _, filenames in os.walk(full):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    fp = os.path.join(dirpath, name)
                    yield fp, os.path.relpath(fp, root)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="determinism linter for simulator sources")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and rationale, then exit")
    parser.add_argument("paths", nargs="*",
                        help="files or directories relative to --root "
                             "(default: the simulator dirs)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-20s %s" % (rule, RULES[rule]))
        return 0

    paths = args.paths or DEFAULT_PATHS
    total = 0
    files = 0
    for full, display in iter_sources(args.root, paths):
        files += 1
        for diag in check_file(full, display):
            print(diag)
            total += 1
    if total:
        print("detlint: %d issue(s) in %d file(s) scanned"
              % (total, files), file=sys.stderr)
        return 1
    print("detlint: clean (%d files scanned)" % files, file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
