#!/usr/bin/env python3
"""Fixture & parity tests for detlint_ast.py (requires libclang).

Two suites:

  1. fixtures_ast/: each AST-only rule must fire exactly the expected
     number of times, and clean_ast.cc (the sanctioned idioms plus the
     allow escape hatch) must lint clean.

  2. parity: for every shared regex fixture under fixtures/, the SET
     of rules the AST analyzer fires must equal the set the regex
     linter fires. Counts may legitimately differ (e.g. the most
     vexing parse hides one regex hit from the AST), rule coverage
     must not.

Exits 77 (the ctest skip code) when libclang is unavailable, so the
suite degrades gracefully on toolchain-less hosts; CI installs
python3-clang and runs it for real.
"""

import collections
import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
DETLINT = os.path.join(HERE, "detlint.py")
DETLINT_AST = os.path.join(HERE, "detlint_ast.py")
FIXTURES = os.path.join(HERE, "fixtures")
FIXTURES_AST = os.path.join(HERE, "fixtures_ast")

EXIT_SKIP = 77

DIAG_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): (?P<rule>[\w-]+): ")

# fixture -> {rule: exact diagnostic count}
AST_EXPECTATIONS = {
    "bad_shard_capture.cc": {"shard-capture": 2},
    "bad_tick_units.cc": {"tick-units": 3},
    "bad_unordered_accumulate.cc": {"unordered-accumulate": 1,
                                    "unordered-iteration": 2},
    "bad_span_pairing.cc": {"span-pairing": 2},
    "clean_ast.cc": {},
}


def run_linter(script, root, fixture, extra_args=()):
    cmd = [sys.executable, script, "--root", root]
    for a in extra_args:
        cmd += ["--extra-arg", a]
    cmd.append(fixture)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    counts = collections.Counter()
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            counts[m.group("rule")] += 1
    return proc.returncode, dict(counts), proc.stderr


def main():
    probe = subprocess.run(
        [sys.executable, DETLINT_AST, "--probe"],
        capture_output=True, text=True)
    if probe.returncode == EXIT_SKIP:
        print("detlint_ast_test: SKIP — %s"
              % probe.stderr.strip().splitlines()[-1])
        return EXIT_SKIP
    if probe.returncode != 0:
        print("FAIL: probe exited %d: %s"
              % (probe.returncode, probe.stderr))
        return 1

    failures = []
    include_src = "-I" + os.path.join(ROOT, "src")

    # --- suite 1: AST-only rule fixtures -----------------------------
    present = {f for f in os.listdir(FIXTURES_AST) if f.endswith(".cc")}
    missing = present.symmetric_difference(AST_EXPECTATIONS)
    if missing:
        failures.append("fixtures_ast and expectations out of sync: %s"
                        % sorted(missing))

    for fixture, expected in sorted(AST_EXPECTATIONS.items()):
        rc, counts, err = run_linter(DETLINT_AST, FIXTURES_AST, fixture,
                                     [include_src])
        expected_rc = 1 if expected else 0
        if rc != expected_rc:
            failures.append("%s: exit %d, expected %d (diags: %s; "
                            "stderr: %s)"
                            % (fixture, rc, expected_rc, counts,
                               err.strip()))
        if counts != expected:
            failures.append("%s: diagnostics %s, expected %s"
                            % (fixture, counts, expected))

    # --- suite 2: regex/AST parity over the shared fixtures ----------
    sys.path.insert(0, HERE)
    import detlint_test
    for fixture, expected in sorted(detlint_test.EXPECTATIONS.items()):
        rx_rc, rx_counts = detlint_test.run_detlint(fixture)
        ast_rc, ast_counts, err = run_linter(
            DETLINT_AST, FIXTURES, fixture, [include_src])
        if ast_rc not in (0, 1):
            failures.append("parity %s: analyzer exited %d (%s)"
                            % (fixture, ast_rc, err.strip()))
            continue
        if set(rx_counts) != set(ast_counts):
            failures.append("parity %s: regex rules %s != AST rules %s"
                            % (fixture, sorted(rx_counts),
                               sorted(ast_counts)))
        if rx_rc in (0, 1) and (ast_rc == 1) != (rx_rc == 1):
            failures.append("parity %s: regex exit %d vs AST exit %d"
                            % (fixture, rx_rc, ast_rc))

    # --- every AST-only rule is both documented and proven -----------
    list_rules = subprocess.run(
        [sys.executable, DETLINT_AST, "--list-rules"],
        capture_output=True, text=True)
    documented = {line.split()[0]
                  for line in list_rules.stdout.splitlines() if line}
    fired = set()
    for expected in AST_EXPECTATIONS.values():
        fired.update(expected)
    for expected in detlint_test.EXPECTATIONS.values():
        fired.update(expected)
    unproven = documented - fired
    if unproven:
        failures.append("rules with no firing fixture: %s"
                        % sorted(unproven))

    if failures:
        for f in failures:
            print("FAIL: %s" % f)
        return 1
    print("detlint_ast_test: %d AST fixtures ok, %d parity fixtures "
          "ok, %d rules proven"
          % (len(AST_EXPECTATIONS), len(detlint_test.EXPECTATIONS),
             len(documented)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
