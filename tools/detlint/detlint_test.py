#!/usr/bin/env python3
"""Regression tests for detlint.

Each fixture file under fixtures/ either must trigger an exact set of
rules (proving every rule fires) or must lint clean (proving the
escape hatch and the non-triggering idioms are respected). Run
directly or through ctest; exits non-zero on any mismatch.
"""

import collections
import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DETLINT = os.path.join(HERE, "detlint.py")
FIXTURES = os.path.join(HERE, "fixtures")

DIAG_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): (?P<rule>[\w-]+): ")

# fixture -> {rule: exact diagnostic count}
EXPECTATIONS = {
    "bad_rand.cc": {"rand": 3},
    "bad_wall_clock.cc": {"wall-clock": 6},
    "bad_wall_clock_span.cc": {"wall-clock": 2},
    "bad_random_device.cc": {"random-device": 1},
    "bad_unseeded_rng.cc": {"unseeded-rng": 4},
    "bad_unordered_iteration.cc": {"unordered-iteration": 3},
    "bad_mutable_static.cc": {"mutable-static": 4},
    "bad_fault_rng.cc": {"fault-rng": 2},
    "bad_arrival_rng.cc": {"arrival-rng": 2},
    "bad_shard_state.cc": {"shard-state": 3},
    "bad_telemetry_event.cc": {"telemetry-internal": 3},
    "allowed.cc": {},
    "clean.cc": {},
    "clean_arrival.cc": {},
    "clean_separators.cc": {},
    "clean_telemetry.cc": {},
}


def run_detlint(fixture):
    proc = subprocess.run(
        [sys.executable, DETLINT, "--root", FIXTURES, fixture],
        capture_output=True, text=True)
    counts = collections.Counter()
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            counts[m.group("rule")] += 1
    return proc.returncode, dict(counts)


def main():
    failures = []

    present = {f for f in os.listdir(FIXTURES) if f.endswith(".cc")}
    missing = present.symmetric_difference(EXPECTATIONS)
    if missing:
        failures.append("fixtures and expectations out of sync: %s"
                        % sorted(missing))

    for fixture, expected in sorted(EXPECTATIONS.items()):
        rc, counts = run_detlint(fixture)
        expected_rc = 1 if expected else 0
        if rc != expected_rc:
            failures.append("%s: exit %d, expected %d (diagnostics: %s)"
                            % (fixture, rc, expected_rc, counts))
        if counts != expected:
            failures.append("%s: diagnostics %s, expected %s"
                            % (fixture, counts, expected))

    # Every documented rule must be proven to fire by some fixture.
    list_rules = subprocess.run(
        [sys.executable, DETLINT, "--list-rules"],
        capture_output=True, text=True)
    documented = {line.split()[0]
                  for line in list_rules.stdout.splitlines() if line}
    fired = set()
    for expected in EXPECTATIONS.values():
        fired.update(expected)
    unproven = documented - fired
    if unproven:
        failures.append("rules with no firing fixture: %s"
                        % sorted(unproven))

    if failures:
        for f in failures:
            print("FAIL: %s" % f)
        return 1
    print("detlint_test: %d fixtures ok, %d rules proven"
          % (len(EXPECTATIONS), len(documented)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
