#!/usr/bin/env python3
"""detlint-ast — semantic determinism & units analyzer for AFASim.

The regex linter (detlint.py) token-matches; this analyzer parses real
clang ASTs through the libclang python bindings, driven by the
compile_commands.json that CMake exports (CMAKE_EXPORT_COMPILE_COMMANDS
is always on for this tree). Working on the AST fixes the regex
linter's structural blind spots — type aliases hiding unordered
containers, macro-expanded rand() calls, qualified-name lookalikes —
and admits rules that tokens cannot express at all.

Ported rules (same names, same rationale as detlint.py):
  rand, wall-clock, random-device, unseeded-rng, unordered-iteration,
  mutable-static, fault-rng, arrival-rng, shard-state,
  telemetry-internal

AST-only rules:
  shard-capture        a lambda passed to scheduleOnShard() capturing
                       anything by reference: the post fires in a
                       later barrier window, possibly on another
                       thread, so by-reference captures are both a
                       dangling-stack hazard and a cross-shard
                       mutation channel. Capture state by value (the
                       [this, e] idiom: pointers to shard-affine or
                       immutable state are fine and are policed by the
                       shard-state rule at the use site).
  tick-units           arithmetic mixing a Tick-typed expression with
                       a floating-point operand, or initialising a
                       floating variable straight from a Tick, outside
                       the sanctioned conversion helpers in
                       src/sim/types.hh (nsec/usec/msec/sec, toUsec/
                       toMsec/toSec, delta, transferTicks). An
                       explicit cast is an opt-out: it states the
                       author crossed the unit domain on purpose.
  unordered-accumulate floating-point reduction (compound assignment)
                       inside a range-for over an unordered container:
                       float addition is not associative, so the
                       result depends on hash-order.
  span-pairing         a span-begin tick (a local initialised from
                       now()) that reaches a SpanLog::record() call on
                       some control-flow path but not on all of them:
                       the uncovered paths silently drop the span.
                       Branches conditioned on the span log itself
                       (if (spanLog ...), ...wants(...)) are the
                       tracing-enabled idiom and count as covered.

Shares the `// detlint:allow(<rule>[, <rule>...])` escape hatch (same
line or the line above) and the fixture harness with the regex linter,
which remains the fast no-toolchain fallback.

Usage:
  detlint_ast.py [--root DIR] [-p BUILD_DIR] [--sarif OUT]
                 [--extra-arg ARG]... [--list-rules] [--probe]
                 [paths...]

With -p, paths select compile_commands.json entries (default: the
regex linter's scan roots). Without -p, paths are parsed standalone
with --extra-arg flags (the fixture harness mode). Diagnostics are
`file:line: rule: message`; exit status is 1 if any fire, 0 when
clean, 77 when libclang is unavailable, 2 on usage errors.
"""

import argparse
import json
import os
import re
import shlex
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)
import detlint as rxlint  # noqa: E402  (allow grammar + scan roots)

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_NO_TOOLCHAIN = 77  # ctest SKIP_RETURN_CODE

RULES = dict(rxlint.RULES)
RULES.update({
    "shard-capture": "a lambda posted via scheduleOnShard() runs in a "
                     "later window, possibly on another thread: "
                     "capture state by value, never by reference",
    "tick-units": "Tick arithmetic mixed with floating-point outside "
                  "the src/sim/types.hh conversion helpers; use "
                  "nsec()/toUsec()/transferTicks() or an explicit "
                  "cast",
    "unordered-accumulate": "floating-point accumulation over an "
                            "unordered container is hash-order "
                            "dependent; accumulate over a sorted copy "
                            "or an ordered container",
    "span-pairing": "span begin tick reaches SpanLog::record() on "
                    "some paths but not all: the other paths drop the "
                    "span; record on every path or guard on the span "
                    "log",
})

RAND_QNAMES = {"rand", "srand", "std::rand", "std::srand"}

WALL_CLOCK_QNAMES = {
    "std::chrono::system_clock::now",
    "std::chrono::steady_clock::now",
    "std::chrono::high_resolution_clock::now",
    "time", "std::time",
    "clock", "std::clock",
    "gettimeofday", "clock_gettime",
    "localtime", "std::localtime",
    "gmtime", "std::gmtime",
    "timespec_get", "std::timespec_get",
}

ENGINE_QNAMES = {
    "std::mersenne_twister_engine",
    "std::linear_congruential_engine",
    "std::subtract_with_carry_engine",
    "std::discard_block_engine",
    "std::independent_bits_engine",
    "std::shuffle_order_engine",
}

SHARD_MUTATORS = {"setLimpFactor", "setOffline", "stallUntil"}

# Local-shard schedulers have no internal flag; banned in telemetry
# sources (the telemetry-internal rule).
LOCAL_SCHEDULERS = {"scheduleAt", "scheduleAfter"}

# Functions allowed to cross the Tick <-> floating unit boundary: the
# conversion helpers defined in src/sim/types.hh, plus the fast-path
# horizon helpers (DESIGN.md §9) whose whole job is converting
# floating latency draws into busy-horizon claims at submit time
# (NandArray::readAt, Ftl::readMappedAt, Controller::sampleHiccup).
TICK_HELPER_FNS = {"nsec", "usec", "msec", "sec",
                   "toUsec", "toMsec", "toSec",
                   "delta", "transferTicks",
                   "readAt", "readMappedAt", "sampleHiccup"}
TICK_HELPER_FILE = os.path.join("src", "sim", "types.hh")

TICK_RE = re.compile(r"(?<![\w:])(?:afa::sim::)?Tick(?![\w])")

FLOAT_KINDS = {"FLOAT", "DOUBLE", "LONGDOUBLE", "FLOAT128", "HALF"}

CAST_KINDS = {"CXX_STATIC_CAST_EXPR", "CXX_FUNCTIONAL_CAST_EXPR",
              "CSTYLE_CAST_EXPR", "CXX_REINTERPRET_CAST_EXPR",
              "CXX_CONST_CAST_EXPR"}

FUNCTION_KINDS = {"FUNCTION_DECL", "CXX_METHOD", "CONSTRUCTOR",
                  "DESTRUCTOR", "FUNCTION_TEMPLATE",
                  "CONVERSION_FUNCTION"}

LOOP_KINDS = {"FOR_STMT", "WHILE_STMT", "DO_STMT", "CXX_FOR_RANGE_STMT"}

WRAPPER_KINDS = {"UNEXPOSED_EXPR", "PAREN_EXPR"}


# ---------------------------------------------------------------------
# Small cursor helpers. Everything goes through kind *names* so the
# unit tests can exercise the rule logic with duck-typed fakes and the
# code stays independent of cindex enum identity across LLVM versions.
# ---------------------------------------------------------------------

def kname(cursor):
    try:
        return cursor.kind.name
    except ValueError:
        return "UNKNOWN"


def children(cursor):
    return list(cursor.get_children())


def qualified_name(decl):
    """Fully qualified name of a declaration, with implementation
    namespaces (std::chrono::_V2, std::__1, __cxx11) dropped so
    matching works across standard libraries."""
    parts = []
    c = decl
    while c is not None:
        k = kname(c)
        if k in ("TRANSLATION_UNIT", "UNKNOWN", "INVALID_FILE"):
            break
        spelling = c.spelling
        if spelling and not spelling.startswith("_"):
            parts.append(spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def strip_refs(type_obj):
    """Peel references and pointers off a canonical type."""
    t = type_obj
    for _ in range(8):
        k = t.kind.name
        if k in ("LVALUEREFERENCE", "RVALUEREFERENCE", "POINTER"):
            t = t.get_pointee()
        else:
            break
    return t


def unwrap(expr):
    """Descend through implicit-cast / parenthesis wrappers to the
    expression that carries the interesting sugar."""
    c = expr
    for _ in range(16):
        if kname(c) in WRAPPER_KINDS:
            kids = children(c)
            if len(kids) == 1:
                c = kids[0]
                continue
        break
    return c


def canonical_record_qname(type_obj):
    """Qualified name of the canonical declaration behind a type,
    looking through aliases, references and pointers ('' if none)."""
    try:
        t = strip_refs(type_obj.get_canonical())
        d = t.get_declaration()
    except (AttributeError, ValueError):
        return ""
    if d is None:
        return ""
    return qualified_name(d)


def is_unordered_type(type_obj):
    qn = canonical_record_qname(type_obj)
    return qn.startswith("std::unordered_")


def is_floating(expr):
    e = unwrap(expr)
    if kname(e) == "FLOATING_LITERAL":
        return True
    try:
        return e.type.get_canonical().kind.name in FLOAT_KINDS
    except (AttributeError, ValueError):
        return False


def is_tickish(expr):
    """True when the expression's *sugared* type is the Tick alias
    (not TickDelta, whose wrapper already enforces units) and the
    author has not explicitly cast the units away."""
    e = unwrap(expr)
    if kname(e) in CAST_KINDS:
        return False
    try:
        spelling = e.type.spelling
    except (AttributeError, ValueError):
        return False
    return bool(TICK_RE.search(spelling))


def location_of(cursor):
    loc = cursor.location
    f = getattr(loc, "file", None)
    return (f.name if f else None, getattr(loc, "line", 0))


def subtree(cursor):
    stack = [cursor]
    while stack:
        c = stack.pop()
        yield c
        stack.extend(children(c))


def parse_capture_tokens(spellings):
    """Parse a lambda's capture-list token spellings (starting at the
    opening '[') and return the captures seen, as a list of (mode,
    name) with mode one of 'ref', 'value', 'ref-default',
    'value-default', 'this'. Init-captures report the introduced name.
    """
    if not spellings or spellings[0] != "[":
        return []
    depth = 0
    items, cur = [], []
    for tok in spellings:
        if tok == "[":
            depth += 1
            if depth == 1:
                continue
        elif tok == "]":
            depth -= 1
            if depth == 0:
                if cur:
                    items.append(cur)
                break
        elif tok == "," and depth == 1:
            items.append(cur)
            cur = []
            continue
        if depth >= 1:
            cur.append(tok)
    captures = []
    for item in items:
        if not item:
            continue
        if item == ["&"]:
            captures.append(("ref-default", ""))
        elif item == ["="]:
            captures.append(("value-default", ""))
        elif item[0] == "this" or item[:2] == ["*", "this"]:
            captures.append(("this", "this"))
        elif item[0] == "&":
            name = item[1] if len(item) > 1 else ""
            captures.append(("ref", name))
        else:
            captures.append(("value", item[0]))
    return captures


class Diagnostic:
    def __init__(self, path, line, rule, detail=""):
        self.path = path
        self.line = line
        self.rule = rule
        self.detail = detail or RULES[rule]

    def key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return "%s:%d: %s: %s" % (self.path, self.line, self.rule,
                                  self.detail)


# ---------------------------------------------------------------------
# span-pairing path analysis (pure statement-tree logic; unit-tested
# with fake cursors).
# ---------------------------------------------------------------------

def _mentions_span_log(expr):
    for c in subtree(expr):
        k = kname(c)
        if k in ("DECL_REF_EXPR", "MEMBER_REF_EXPR", "CALL_EXPR"):
            try:
                t = strip_refs(c.type.get_canonical())
                d = t.get_declaration()
            except (AttributeError, ValueError):
                continue
            if d is not None and d.spelling == "SpanLog":
                return True
    return False


def _is_record_call(cursor):
    if kname(cursor) != "CALL_EXPR":
        return False
    ref = cursor.referenced
    if ref is None or ref.spelling != "record":
        return False
    parent = ref.semantic_parent
    return parent is not None and parent.spelling == "SpanLog"


def _record_uses_in(stmt, begin_vars):
    """Hashes of begin vars referenced inside record() calls in the
    subtree of @p stmt."""
    used = set()
    for c in subtree(stmt):
        if not _is_record_call(c):
            continue
        for d in subtree(c):
            if kname(d) == "DECL_REF_EXPR":
                ref = d.referenced
                if ref is not None and ref.hash in begin_vars:
                    used.add(ref.hash)
    return used


class SpanPathChecker:
    """Checks that every begin-var that reaches a record() does so on
    every path. Conservative: loops and switches are treated
    optimistically (assumed to execute), so only the unambiguous
    "early return drops the span" and "only one branch records"
    shapes fire."""

    def __init__(self, begin_vars, recorded_vars):
        self.begin_vars = begin_vars      # hash -> (name, file, line)
        self.recorded_vars = recorded_vars
        self.flagged = set()
        self.diags = []

    def _flag(self, var_hash, where):
        if var_hash in self.flagged:
            return
        self.flagged.add(var_hash)
        name, _, _ = self.begin_vars[var_hash]
        path, line = location_of(where)
        self.diags.append((path, line, (
            "begin tick '%s' reaches SpanLog::record() on some paths "
            "but not this one" % name)))

    def _check_exit(self, declared, state, where):
        for v in self.recorded_vars:
            if v in declared and v not in state:
                self._flag(v, where)

    def run_body(self, body):
        declared, state = set(), set()
        self._stmt_seq(children(body), declared, state)
        # Implicit end-of-function exit.
        self._check_exit(declared, state, body)

    def _stmt_seq(self, stmts, declared, state):
        """Process a statement sequence; returns True when the
        sequence definitely terminated (returned)."""
        for stmt in stmts:
            if self._stmt(stmt, declared, state):
                return True
        return False

    def _stmt(self, stmt, declared, state):
        k = kname(stmt)
        if k == "DECL_STMT":
            for c in children(stmt):
                if kname(c) == "VAR_DECL" and c.hash in self.begin_vars:
                    declared.add(c.hash)
            # An initializer can itself contain a record call.
            state |= _record_uses_in(stmt, self.begin_vars)
            return False
        if k == "COMPOUND_STMT":
            return self._stmt_seq(children(stmt), declared, state)
        if k == "RETURN_STMT":
            state |= _record_uses_in(stmt, self.begin_vars)
            self._check_exit(declared, state, stmt)
            return True
        if k == "IF_STMT":
            kids = children(stmt)
            if not kids:
                return False
            cond, branches = kids[0], kids[1:]
            exempt = _mentions_span_log(cond)
            state |= _record_uses_in(cond, self.begin_vars)
            branch_states = []
            terminated_all = bool(branches)
            for br in branches:
                bs = set(state)
                bd = set(declared)
                term = self._stmt(br, bd, bs)
                if not term:
                    branch_states.append(bs)
                    terminated_all = False
            if exempt:
                # Tracing-enabled guard: the untraced path is meant to
                # skip the record; count the traced branch's records.
                for bs in branch_states:
                    state |= bs
            else:
                if branch_states and len(branches) > 1:
                    merged = set.intersection(*branch_states)
                    state |= merged
                # A lone if (no else) leaves the fall-through path
                # unrecorded: no state update.
            return terminated_all and len(branches) > 1
        if k in LOOP_KINDS or k == "SWITCH_STMT":
            # Optimistic: assume the body runs and its records count,
            # but still surface early returns inside.
            bd = set(declared)
            bs = set(state)
            self._stmt_seq(children(stmt), bd, bs)
            state |= bs
            return False
        # Plain statement (expression stmt, etc.): records inside are
        # unconditional at this nesting level.
        state |= _record_uses_in(stmt, self.begin_vars)
        return False


# ---------------------------------------------------------------------
# The analyzer.
# ---------------------------------------------------------------------

class Analyzer:
    def __init__(self, root):
        self.root = os.path.realpath(root)
        self.diags = {}
        self._allow_cache = {}
        self._scan_files = None  # realpath set or None = root filter

    def set_scan_files(self, files):
        self._scan_files = {os.path.realpath(f) for f in files}

    # -- reporting ----------------------------------------------------

    def _display_path(self, path):
        rp = os.path.realpath(path)
        if rp.startswith(self.root + os.sep):
            return os.path.relpath(rp, self.root)
        return path

    def _in_scope(self, path):
        if path is None:
            return False
        rp = os.path.realpath(path)
        if self._scan_files is not None:
            return rp in self._scan_files
        return rp.startswith(self.root + os.sep)

    def _allows(self, path):
        rp = os.path.realpath(path)
        if rp not in self._allow_cache:
            try:
                with open(rp, encoding="utf-8", errors="replace") as f:
                    self._allow_cache[rp] = rxlint.collect_allows(
                        f.read())
            except OSError:
                self._allow_cache[rp] = {}
        return self._allow_cache[rp]

    def report(self, cursor_or_loc, rule, detail=""):
        if isinstance(cursor_or_loc, tuple):
            path, line = cursor_or_loc
        else:
            path, line = location_of(cursor_or_loc)
        if not self._in_scope(path):
            return
        allows = self._allows(path)
        allowed = allows.get(line, set()) | allows.get(line - 1, set())
        if rule in allowed:
            return
        d = Diagnostic(self._display_path(path), line, rule, detail)
        self.diags.setdefault(d.key(), d)

    def results(self):
        return sorted(self.diags.values(),
                      key=lambda d: (d.path, d.line, d.rule))

    # -- per-TU entry -------------------------------------------------

    def analyze_tu(self, tu_cursor):
        ctx = {
            "in_sched": False,
            "in_sched_lambda": False,
            "unordered_loop_depth": 0,
        }
        self._walk(tu_cursor, ctx)

    # -- the walk -----------------------------------------------------

    def _walk(self, cursor, ctx):
        for child in children(cursor):
            self._visit(child, ctx)

    def _visit(self, cursor, ctx):
        k = kname(cursor)
        path, _ = location_of(cursor)
        # fault-rng in fault sources, arrival-rng in the open-loop
        # workload sources, None elsewhere (shared scoping with the
        # regex tier).
        fresh_rng_rule = rxlint.fresh_rng_rule_for(
            self._display_path(path)) if path else None
        telemetry_file = bool(path) and \
            "telemetry" in self._display_path(path)

        if k == "CALL_EXPR":
            self._check_call(cursor, ctx, telemetry_file)
            ref = cursor.referenced
            if ref is not None and ref.spelling == "scheduleOnShard":
                sub = dict(ctx, in_sched=True, in_sched_lambda=False)
                self._walk(cursor, sub)
                return
        elif k == "VAR_DECL":
            self._check_var_decl(cursor, ctx, fresh_rng_rule)
        elif k == "LAMBDA_EXPR":
            if ctx["in_sched"] and not ctx["in_sched_lambda"]:
                self._check_shard_capture(cursor)
                sub = dict(ctx, in_sched_lambda=True)
                self._walk(cursor, sub)
                return
        elif k == "CXX_NEW_EXPR":
            self._check_new_expr(cursor, fresh_rng_rule)
        elif k == "CXX_FOR_RANGE_STMT":
            if self._check_range_for(cursor, ctx):
                sub = dict(ctx, unordered_loop_depth=(
                    ctx["unordered_loop_depth"] + 1))
                self._walk(cursor, sub)
                return
        elif k in ("BINARY_OPERATOR", "COMPOUND_ASSIGNMENT_OPERATOR"):
            self._check_operator(cursor, ctx)
        if k in FUNCTION_KINDS or k == "LAMBDA_EXPR":
            self._check_span_pairing(cursor)
        self._walk(cursor, ctx)

    # -- ported rules -------------------------------------------------

    def _check_call(self, cursor, ctx, telemetry_file=False):
        ref = cursor.referenced
        if ref is None:
            return
        qn = qualified_name(ref)
        spelling = ref.spelling
        if qn in RAND_QNAMES:
            self.report(cursor, "rand")
        elif qn in WALL_CLOCK_QNAMES or \
                (spelling == "now" and qn.endswith("_clock::now")):
            self.report(cursor, "wall-clock")
        elif spelling in SHARD_MUTATORS and \
                kname(ref) == "CXX_METHOD" and not ctx["in_sched"]:
            self.report(cursor, "shard-state")
        elif spelling in ("begin", "cbegin") and \
                kname(ref) == "CXX_METHOD":
            parent = ref.semantic_parent
            if parent is not None and \
                    parent.spelling.startswith("unordered_"):
                self.report(cursor, "unordered-iteration")
        if telemetry_file:
            self._check_telemetry_schedule(cursor, spelling)

    def _check_telemetry_schedule(self, cursor, spelling):
        """telemetry-internal: in telemetry sources every
        scheduleOnShard() must pass the literal `true` as its internal
        argument (the 4th; libclang surfaces the defaulted `false` of
        the 3-argument form as an argument cursor too, which the
        literal check rejects just the same), and the local-shard
        schedulers are banned because they cannot mark events
        internal."""
        if spelling in LOCAL_SCHEDULERS:
            self.report(cursor, "telemetry-internal",
                        "scheduleAt/scheduleAfter cannot mark the "
                        "event internal; post the sample with "
                        "scheduleOnShard(..., /*internal=*/true, ...)")
        elif spelling == "scheduleOnShard":
            args = self._call_args(cursor)
            if len(args) < 4 or not self._is_true_literal(args[3]):
                self.report(cursor, "telemetry-internal")

    def _is_true_literal(self, expr):
        e = unwrap(expr)
        if kname(e) != "CXX_BOOL_LITERAL_EXPR":
            return False
        try:
            tokens = [t.spelling for t in e.get_tokens()]
        except (AttributeError, ValueError):
            return False
        return tokens[:1] == ["true"]

    def _check_var_decl(self, cursor, ctx, fresh_rng_rule):
        try:
            canonical = cursor.type.get_canonical()
        except (AttributeError, ValueError):
            return
        qn = canonical_record_qname(cursor.type)
        if qn == "std::random_device":
            self.report(cursor, "random-device")
            return
        # Engine aliases (std::mt19937 = mersenne_twister_engine<...>)
        # canonicalise to the underlying template.
        base = qn.split("<")[0] if qn else ""
        if base in ENGINE_QNAMES and canonical.kind.name == "RECORD":
            if self._ctor_args(cursor) == 0:
                self.report(cursor, "unseeded-rng")
        if fresh_rng_rule and qn == "afa::sim::Rng" and \
                canonical.kind.name == "RECORD":
            if self._is_fresh_rng_init(cursor):
                self.report(cursor, fresh_rng_rule)
        self._check_mutable_static(cursor)
        self._check_tick_var_init(cursor, ctx)

    def _ctor_args(self, var_decl):
        """Number of constructor/initializer argument expressions of a
        variable declaration (0 = default-constructed)."""
        init = self._var_init(var_decl)
        if init is None:
            return 0
        k = kname(init)
        if k == "CALL_EXPR":
            ref = init.referenced
            if ref is not None and kname(ref) == "CONSTRUCTOR":
                return len(self._call_args(init))
            return 1  # seeded/derived from a factory call
        if k == "INIT_LIST_EXPR":
            return len(children(init))
        return 1

    def _var_init(self, var_decl):
        exprs = [c for c in children(var_decl)
                 if kname(c) not in ("TYPE_REF", "NAMESPACE_REF",
                                     "TEMPLATE_REF", "ANNOTATE_ATTR")]
        return exprs[-1] if exprs else None

    def _call_args(self, call):
        try:
            args = list(call.get_arguments())
        except (AttributeError, ValueError):
            args = []
        if args:
            return args
        return [c for c in children(call)
                if kname(c) not in ("TYPE_REF", "NAMESPACE_REF",
                                    "TEMPLATE_REF", "MEMBER_REF_EXPR",
                                    "DECL_REF_EXPR")]

    def _is_fresh_rng_init(self, var_decl):
        init = self._var_init(var_decl)
        if init is None:
            return True  # default-constructed
        init = unwrap(init)
        if kname(init) == "CALL_EXPR":
            ref = init.referenced
            if ref is not None and kname(ref) == "CONSTRUCTOR":
                args = self._call_args(init)
                for a in args:
                    if canonical_record_qname(
                            unwrap(a).type) == "afa::sim::Rng":
                        return False  # copy/move of an engine stream
                return True
            return False  # derived via fork()/factory
        return False

    def _check_mutable_static(self, cursor):
        lex = cursor.lexical_parent
        if lex is None or kname(lex) not in ("TRANSLATION_UNIT",
                                             "NAMESPACE"):
            return
        if not cursor.is_definition():
            return
        try:
            t = cursor.type.get_canonical()
            for _ in range(4):
                if t.kind.name in ("CONSTANTARRAY", "INCOMPLETEARRAY"):
                    t = t.get_array_element_type()
                else:
                    break
            if t.is_const_qualified():
                return
        except (AttributeError, ValueError):
            return
        self.report(cursor, "mutable-static")

    def _check_new_expr(self, cursor, fresh_rng_rule):
        if not fresh_rng_rule:
            return
        qn = canonical_record_qname(cursor.type)
        if qn == "afa::sim::Rng":
            self.report(cursor, fresh_rng_rule)

    def _check_range_for(self, cursor, ctx):
        """Report unordered-iteration; returns True when the loop
        ranges over an unordered container (for accumulate ctx)."""
        range_expr = None
        for c in children(cursor):
            k = kname(c)
            if k in ("DECL_STMT", "VAR_DECL"):
                continue
            try:
                is_expr = c.kind.is_expression()
            except (AttributeError, ValueError):
                is_expr = False
            if is_expr:
                range_expr = c
                break
        if range_expr is None:
            return False
        if is_unordered_type(unwrap(range_expr).type):
            self.report(cursor, "unordered-iteration")
            return True
        return False

    # -- AST-only rules -----------------------------------------------

    def _check_shard_capture(self, lambda_cursor):
        try:
            spellings = [t.spelling for t in lambda_cursor.get_tokens()]
        except (AttributeError, ValueError):
            return
        for mode, name in parse_capture_tokens(spellings):
            if mode == "ref-default":
                self.report(lambda_cursor, "shard-capture",
                            "lambda posted to scheduleOnShard() "
                            "captures by reference by default ([&])")
            elif mode == "ref":
                self.report(lambda_cursor, "shard-capture",
                            "lambda posted to scheduleOnShard() "
                            "captures '%s' by reference" % name)

    def _tick_units_exempt(self, cursor):
        path, _ = location_of(cursor)
        if path and os.path.realpath(path).endswith(TICK_HELPER_FILE):
            return True
        c = cursor.semantic_parent
        for _ in range(8):
            if c is None:
                break
            if kname(c) in FUNCTION_KINDS and \
                    c.spelling in TICK_HELPER_FNS:
                return True
            c = c.semantic_parent
        return False

    def _check_operator(self, cursor, ctx):
        kids = children(cursor)
        if len(kids) != 2:
            return
        lhs, rhs = kids
        # tick-units: Tick op floating (either side).
        if (is_tickish(lhs) and is_floating(rhs)) or \
                (is_tickish(rhs) and is_floating(lhs)):
            if not self._tick_units_exempt(cursor):
                self.report(cursor, "tick-units")
        # unordered-accumulate: floating compound assignment inside a
        # range-for over an unordered container.
        if kname(cursor) == "COMPOUND_ASSIGNMENT_OPERATOR" and \
                ctx["unordered_loop_depth"] > 0 and is_floating(lhs):
            self.report(cursor, "unordered-accumulate")

    def _check_tick_var_init(self, cursor, ctx):
        """double d = someTick; -- implicit unit erasure."""
        try:
            if cursor.type.get_canonical().kind.name not in FLOAT_KINDS:
                return
        except (AttributeError, ValueError):
            return
        init = self._var_init(cursor)
        if init is None:
            return
        if is_tickish(init):
            if not self._tick_units_exempt(cursor):
                self.report(cursor, "tick-units")

    def _check_span_pairing(self, fn_cursor):
        body = None
        for c in children(fn_cursor):
            if kname(c) == "COMPOUND_STMT":
                body = c
        if body is None:
            return
        begin_vars = {}
        for c in subtree(body):
            if kname(c) != "VAR_DECL":
                continue
            init = self._var_init(c)
            if init is None:
                continue
            for d in subtree(init):
                if kname(d) == "CALL_EXPR":
                    ref = d.referenced
                    if ref is not None and ref.spelling == "now":
                        pathline = location_of(c)
                        begin_vars[c.hash] = (c.spelling,) + pathline
                        break
        if not begin_vars:
            return
        recorded = _record_uses_in(body, begin_vars)
        if not recorded:
            return
        checker = SpanPathChecker(begin_vars, recorded)
        checker.run_body(body)
        for path, line, detail in checker.diags:
            self.report((path, line), "span-pairing", detail)


# ---------------------------------------------------------------------
# Compile database handling.
# ---------------------------------------------------------------------

STRIP_ARGS = {"-c", "-MMD", "-MD", "-MP", "--"}
STRIP_NEXT = {"-o", "-MF", "-MT", "-MQ"}


def extract_args(entry):
    """Compiler flags from one compile_commands.json entry, with the
    compiler, the source file, and output bookkeeping removed and
    relative include paths anchored to the entry's directory."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry.get("command", ""))
    directory = entry.get("directory", ".")
    src = entry.get("file", "")
    src_real = os.path.realpath(os.path.join(directory, src))
    out = []
    skip = False
    for a in argv[1:]:
        if skip:
            skip = False
            continue
        if a in STRIP_NEXT:
            skip = True
            continue
        if a in STRIP_ARGS:
            continue
        if os.path.realpath(os.path.join(directory, a)) == src_real:
            continue
        if a.startswith("-I") and len(a) > 2 and \
                not os.path.isabs(a[2:]):
            a = "-I" + os.path.join(directory, a[2:])
        out.append(a)
    return out


def load_compdb(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(db_path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        raise SystemExit("detlint-ast: cannot read %s: %s "
                         "(configure with CMake first; "
                         "CMAKE_EXPORT_COMPILE_COMMANDS is on by "
                         "default for this tree)" % (db_path, e))


def select_entries(entries, root, paths):
    """Compile-db entries whose source file lives under one of the
    scan paths (relative to root)."""
    wanted = [os.path.realpath(os.path.join(root, p)) for p in paths]
    selected = []
    for entry in entries:
        src = os.path.realpath(os.path.join(entry.get("directory", "."),
                                            entry.get("file", "")))
        for w in wanted:
            if src == w or src.startswith(w + os.sep):
                selected.append(entry)
                break
    return selected


# ---------------------------------------------------------------------
# SARIF output.
# ---------------------------------------------------------------------

def to_sarif(diagnostics, root):
    rules = sorted({d.rule for d in diagnostics} | set(RULES))
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "detlint-ast",
                    "informationUri":
                        "https://github.com/afasim/afasim",
                    "rules": [{
                        "id": r,
                        "shortDescription": {"text": RULES.get(r, r)},
                    } for r in rules],
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file://%s/" % root},
            },
            "results": [{
                "ruleId": d.rule,
                "level": "error",
                "message": {"text": d.detail},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": d.path.replace(os.sep, "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": d.line},
                    },
                }],
            } for d in diagnostics],
        }],
    }


# ---------------------------------------------------------------------
# libclang loading & driver.
# ---------------------------------------------------------------------

def load_cindex(libclang=None):
    """Returns (cindex module, None) or (None, reason)."""
    try:
        from clang import cindex
    except ImportError as e:
        return None, "python clang bindings unavailable (%s); " \
                     "install python3-clang" % e
    if libclang:
        try:
            cindex.Config.set_library_file(libclang)
        except Exception as e:  # pragma: no cover - config is sticky
            return None, str(e)
    elif os.environ.get("DETLINT_LIBCLANG"):
        try:
            cindex.Config.set_library_file(
                os.environ["DETLINT_LIBCLANG"])
        except Exception:
            pass
    try:
        cindex.Index.create()
    except Exception as e:
        return None, "libclang shared library not loadable: %s" % e
    return cindex, None


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="AST-grade determinism & units analyzer")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("-p", "--build-dir",
                        help="build dir containing compile_commands"
                             ".json; paths then select entries")
    parser.add_argument("--extra-arg", action="append", default=[],
                        help="extra compiler arg for standalone "
                             "(no-compdb) parsing; repeatable")
    parser.add_argument("--libclang",
                        help="explicit path to the libclang shared "
                             "library")
    parser.add_argument("--sarif", metavar="OUT",
                        help="also write SARIF 2.1.0 to OUT")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and rationale, then "
                             "exit")
    parser.add_argument("--probe", action="store_true",
                        help="exit 0 if libclang is usable, %d "
                             "otherwise" % EXIT_NO_TOOLCHAIN)
    parser.add_argument("paths", nargs="*",
                        help="files or directories relative to --root "
                             "(default: the detlint scan roots)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-22s %s" % (rule, RULES[rule]))
        return EXIT_CLEAN

    cindex, reason = load_cindex(args.libclang)
    if args.probe:
        if cindex is None:
            print("detlint-ast: %s" % reason, file=sys.stderr)
            return EXIT_NO_TOOLCHAIN
        print("detlint-ast: libclang usable", file=sys.stderr)
        return EXIT_CLEAN
    if cindex is None:
        print("detlint-ast: %s" % reason, file=sys.stderr)
        print("detlint-ast: skipping AST analysis (the regex "
              "detlint.py fallback still applies)", file=sys.stderr)
        return EXIT_NO_TOOLCHAIN

    root = os.path.realpath(args.root)
    analyzer = Analyzer(root)
    index = cindex.Index.create()

    units = []  # (display name, path, args)
    if args.build_dir:
        entries = load_compdb(args.build_dir)
        paths = args.paths or rxlint.DEFAULT_PATHS
        selected = select_entries(entries, root, paths)
        if not selected:
            print("detlint-ast: no compile_commands.json entries "
                  "match %s" % paths, file=sys.stderr)
            return EXIT_USAGE
        for entry in selected:
            src = os.path.realpath(
                os.path.join(entry.get("directory", "."),
                             entry.get("file", "")))
            units.append((src, src, extract_args(entry)))
    else:
        if not args.paths:
            parser.error("without -p/--build-dir, pass explicit files")
        base = ["-x", "c++", "-std=c++20"] + args.extra_arg
        files = []
        for p in args.paths:
            full = p if os.path.isabs(p) else os.path.join(root, p)
            units.append((full, full, list(base)))
            files.append(full)
        analyzer.set_scan_files(files)

    parse_errors = 0
    for display, path, unit_args in units:
        try:
            tu = index.parse(path, args=unit_args)
        except cindex.TranslationUnitLoadError as e:
            print("detlint-ast: failed to parse %s: %s"
                  % (display, e), file=sys.stderr)
            parse_errors += 1
            continue
        hard_errors = [d for d in tu.diagnostics if d.severity >= 3]
        if hard_errors:
            print("detlint-ast: %s: %d parse error(s), first: %s"
                  % (display, len(hard_errors),
                     hard_errors[0].spelling), file=sys.stderr)
            parse_errors += 1
        analyzer.analyze_tu(tu.cursor)

    results = analyzer.results()
    for d in results:
        print(d)
    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as f:
            json.dump(to_sarif(results, root), f, indent=2)
            f.write("\n")
    if parse_errors:
        print("detlint-ast: %d translation unit(s) had parse errors"
              % parse_errors, file=sys.stderr)
        return EXIT_USAGE
    if results:
        print("detlint-ast: %d issue(s) in %d translation unit(s)"
              % (len(results), len(units)), file=sys.stderr)
        return EXIT_FINDINGS
    print("detlint-ast: clean (%d translation units)" % len(units),
          file=sys.stderr)
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
