// AST fixture: a span-begin tick (a local initialised from now())
// that reaches SpanLog::record() on some control-flow paths but not
// on all of them must trigger `span-pairing` (twice here): the
// uncovered paths silently drop the span from the trace.

#include <cstdint>

namespace afa::sim {
using Tick = std::uint64_t;
Tick now();
} // namespace afa::sim

namespace afa::obs {

enum class Stage { SmartStall, RetryWait };

struct SpanLog
{
    void record(Stage stage, std::uint64_t io, afa::sim::Tick begin,
                afa::sim::Tick end, int track);
    bool wants(int category) const;
};

} // namespace afa::obs

namespace afa::fixture {

// Early return drops the span: fires at the `return 1`.
int
earlyReturnDrops(afa::obs::SpanLog *log, std::uint64_t io, bool fast)
{
    const afa::sim::Tick begin = afa::sim::now();
    if (fast)
        return 1;
    log->record(afa::obs::Stage::SmartStall, io, begin,
                afa::sim::now(), 0);
    return 0;
}

// Only the taken branch records; the fall-through path drops the
// span: fires at the end of the function body.
void
oneBranchRecords(afa::obs::SpanLog *log, std::uint64_t io, bool hit)
{
    const afa::sim::Tick begin = afa::sim::now();
    if (hit)
        log->record(afa::obs::Stage::RetryWait, io, begin,
                    afa::sim::now(), 1);
}

} // namespace afa::fixture
