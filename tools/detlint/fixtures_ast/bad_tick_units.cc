// AST fixture: arithmetic mixing the Tick alias with floating-point
// operands, and floating variables initialised straight from a Tick,
// must trigger `tick-units` (three times here). Explicit casts and
// the conversion-helper function names are the sanctioned crossings
// and must not fire.

#include <cstdint>

namespace afa::sim {
using Tick = std::uint64_t;
} // namespace afa::sim

namespace afa::fixture {

double
leakyLatency(afa::sim::Tick completion, afa::sim::Tick submit)
{
    // Implicit Tick -> double initialisation: fires.
    double started = submit;

    // Tick multiplied by a floating literal: fires.
    double weighted = completion * 0.5;

    double drift = 1.25;
    // Floating compound assignment onto a Tick-valued RHS... the
    // other direction: Tick-typed LHS accumulated with a double RHS
    // also mixes domains: fires.
    afa::sim::Tick padded = completion;
    padded += drift;

    return started + weighted + static_cast<double>(padded);
}

// The explicit-cast opt-out: the author states the unit crossing on
// purpose, so none of these fire.
double
sanctioned(afa::sim::Tick t)
{
    double usec = static_cast<double>(t) / 1000.0;
    double scaled = double(t) * 0.001;
    return usec + scaled;
}

// Conversion helpers mirroring src/sim/types.hh are allowlisted by
// name: must not fire even though they mix domains without a cast.
constexpr double
toUsec(afa::sim::Tick t)
{
    return t / 1000.0;
}

double
useHelper(afa::sim::Tick t)
{
    return toUsec(t);
}

} // namespace afa::fixture
