// AST fixture: the sanctioned idioms next to each AST-only rule, plus
// the shared detlint:allow escape hatch on an AST-only diagnostic.
// The file must lint clean.

#include <cstdint>
#include <map>
#include <utility>

namespace afa::sim {
using Tick = std::uint64_t;
Tick now();
} // namespace afa::sim

namespace afa::obs {

enum class Stage { SmartStall };

struct SpanLog
{
    void record(Stage stage, std::uint64_t io, afa::sim::Tick begin,
                afa::sim::Tick end, int track);
    bool wants(int category) const;
};

} // namespace afa::obs

namespace afa::fixture {

struct Controller
{
    void poke(int v);
};

struct Simulator
{
    template <typename Fn>
    void scheduleOnShard(unsigned shard, std::uint64_t when, Fn &&fn)
    {
        pending = static_cast<bool>(shard + when);
        std::forward<Fn>(fn)();
    }
    bool pending = false;
};

// shard-capture: value captures only.
void
post(Simulator &sim, Controller *ctrl)
{
    int burst = 2;
    sim.scheduleOnShard(1, 1000, [ctrl, burst] { ctrl->poke(burst); });
    sim.scheduleOnShard(1, 2000, [c = ctrl] { c->poke(0); });
}

// tick-units: explicit casts state the unit crossing on purpose, and
// the escape hatch works for AST-only rules too.
double
latencyUsec(afa::sim::Tick begin, afa::sim::Tick end)
{
    double span = static_cast<double>(end - begin) / 1000.0;
    afa::sim::Tick padded = end;
    // Justification: exercising the shared allow grammar.
    padded += 1.5; // detlint:allow(tick-units)
    return span + static_cast<double>(padded);
}

// tick-units: the fast-path horizon helpers (readAt, readMappedAt,
// sampleHiccup) are sanctioned unit-boundary functions -- converting
// a floating latency draw into a busy-horizon claim is their job.
afa::sim::Tick
readAt(afa::sim::Tick start_floor, double draw, double sigma)
{
    // Tick + floating would trip tick-units anywhere else.
    return static_cast<afa::sim::Tick>(start_floor +
                                       draw * (1.0 + sigma));
}

// unordered-accumulate: ordered containers accumulate freely.
double
orderedSum(const std::map<std::uint64_t, double> &latencies)
{
    double total = 0.0;
    for (const auto &entry : latencies)
        total += entry.second;
    return total;
}

// span-pairing: the tracing-enabled guard (a condition mentioning the
// span log) marks the untraced path as intentional, and recording on
// every branch covers all paths.
void
guardedRecord(afa::obs::SpanLog *spanLog, std::uint64_t io)
{
    const afa::sim::Tick begin = afa::sim::now();
    if (spanLog != nullptr && spanLog->wants(0))
        spanLog->record(afa::obs::Stage::SmartStall, io, begin,
                        afa::sim::now(), 0);
}

void
bothBranchesRecord(afa::obs::SpanLog &log, std::uint64_t io, bool hit)
{
    const afa::sim::Tick begin = afa::sim::now();
    if (hit)
        log.record(afa::obs::Stage::SmartStall, io, begin,
                   afa::sim::now(), 0);
    else
        log.record(afa::obs::Stage::SmartStall, io, begin,
                   afa::sim::now(), 1);
}

void
unconditionalRecord(afa::obs::SpanLog &log, std::uint64_t io)
{
    const afa::sim::Tick begin = afa::sim::now();
    log.record(afa::obs::Stage::SmartStall, io, begin,
               afa::sim::now(), 0);
}

} // namespace afa::fixture
