// AST fixture: floating-point reduction inside a range-for over an
// unordered container must trigger `unordered-accumulate` (once).
// Float addition is not associative, so the sum depends on
// hash-order. The unordered range-fors themselves also trigger the
// ported `unordered-iteration` rule (twice) — the integer reduction
// proves the accumulate rule itself stays quiet for exact arithmetic.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace afa::fixture {

using LatencyMap = std::unordered_map<std::uint64_t, double>;

double
hashOrderSum(const LatencyMap &latencies)
{
    double total = 0.0;
    // Fires unordered-accumulate (and unordered-iteration).
    for (const auto &entry : latencies)
        total += entry.second;
    return total;
}

std::uint64_t
integerSum(const LatencyMap &latencies)
{
    std::uint64_t count = 0;
    // Integer accumulation is exact, hence order-insensitive: only
    // the ported unordered-iteration rule fires here.
    for (const auto &entry : latencies)
        count += static_cast<std::uint64_t>(entry.first);
    return count;
}

double
sortedCopySum(const LatencyMap &latencies)
{
    // The sanctioned idiom: accumulate over a sorted key copy. Must
    // not fire anything.
    std::vector<std::uint64_t> keys;
    keys.reserve(latencies.size());
    for (std::uint64_t k = 0; k < 4; ++k)
        if (latencies.count(k) != 0)
            keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    double total = 0.0;
    for (std::uint64_t k : keys)
        total += latencies.at(k);
    return total;
}

} // namespace afa::fixture
