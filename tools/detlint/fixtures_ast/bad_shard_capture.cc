// AST fixture: lambdas posted through scheduleOnShard() that capture
// by reference must trigger `shard-capture` (twice here). The post
// fires in a later barrier window, possibly on another thread, so a
// by-reference capture is both a dangling-stack hazard and a
// cross-shard mutation channel. Value captures (including captured
// pointers, whose *uses* are policed by shard-state) are the idiom
// and must not fire.

#include <cstdint>
#include <utility>

namespace afa::fixture {

struct Controller
{
    void poke(int v);
};

struct Simulator
{
    template <typename Fn>
    void scheduleOnShard(unsigned shard, std::uint64_t when, Fn &&fn)
    {
        pending = static_cast<bool>(shard + when);
        std::forward<Fn>(fn)();
    }
    bool pending = false;
};

void
post(Simulator &sim, Controller *ctrl)
{
    int burst = 4;

    // Named by-reference capture: fires.
    sim.scheduleOnShard(1, 1000, [&burst] { (void)burst; });

    // Default by-reference capture: fires.
    sim.scheduleOnShard(1, 2000, [&] { ctrl->poke(burst); });

    // Value captures, captured this-pointers and init-captures of
    // pointers are the sanctioned idiom: none of these fire.
    sim.scheduleOnShard(1, 3000, [ctrl, burst] { ctrl->poke(burst); });
    sim.scheduleOnShard(1, 4000, [c = ctrl] { c->poke(0); });
}

struct Engine
{
    Simulator *sim = nullptr;
    Controller *ctrl = nullptr;

    void
    apply()
    {
        // [this, ...] value captures: must not fire.
        sim->scheduleOnShard(2, 5000, [this] { ctrl->poke(1); });
    }
};

} // namespace afa::fixture
