// Fixture: the sanctioned telemetry sampling idiom — an internal
// event posted to shard 0 in the top ordering band — lints clean.
// Mirrors the real scheduling site in src/obs/telemetry.cc.

#include "sim/simulator.hh"

namespace afa::fixture {

inline constexpr std::uint32_t kSampleOrderBand = 0xffffffffu;

void
scheduleSample(afa::sim::Simulator &sim, afa::sim::Tick when)
{
    sim.scheduleOnShard(0, when, [] {}, /*internal=*/true,
                        kSampleOrderBand);
}

} // namespace afa::fixture
