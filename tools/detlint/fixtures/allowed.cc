// Fixture: every banned construct here carries a detlint:allow escape
// (same line or the line above), so the file must lint clean.
#include <atomic>
#include <chrono>
#include <cstdlib>

// Justification: wall time used for progress display only, never fed
// into simulation state.
// detlint:allow(wall-clock)
static_assert(true, "");

double
progressSeconds()
{
    auto t = std::chrono::steady_clock::now(); // detlint:allow(wall-clock)
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

// Justification: audited configuration flag, never feeds sim state.
std::atomic<int> g_verbosity{0}; // detlint:allow(mutable-static)

int
legacyShim()
{
    // Justification: exercising the multi-rule spelling.
    // detlint:allow(rand, wall-clock)
    return std::rand() + static_cast<int>(time(nullptr));
}
