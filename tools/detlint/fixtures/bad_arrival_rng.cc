// Fixture: constructing a fresh Rng in open-loop arrival code (the
// "arrival" in this filename puts it in scope) must trigger
// `arrival-rng`.
namespace afa::sim {
class Rng
{
  public:
    explicit Rng(unsigned long long seed);
    double exponential(double mean);
};
} // namespace afa::sim

double
privateArrivalClock()
{
    afa::sim::Rng local(42);
    auto *heap = new afa::sim::Rng(7);
    double gap = local.exponential(100.0) + heap->exponential(100.0);
    delete heap;
    return gap;
}

// Drawing from a borrowed engine stream is the sanctioned pattern:
// this must NOT fire.
double
borrowedStream(afa::sim::Rng &rng)
{
    afa::sim::Rng *alias = &rng;
    return alias->exponential(250.0);
}
