// Fixture: default-constructed engines must trigger `unseeded-rng`.
#include <random>

int
defaultEngines()
{
    std::mt19937 gen;
    std::mt19937_64 gen64{};
    std::default_random_engine fallback();
    std::minstd_rand lcg;
    return static_cast<int>(gen() + gen64() + lcg());
}

// Seeding from the experiment seed is fine: this must NOT fire.
unsigned
seededEngine(unsigned seed)
{
    std::mt19937 gen(seed);
    return gen();
}
