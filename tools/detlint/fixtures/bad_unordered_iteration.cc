// Fixture: iterating unordered containers must trigger
// `unordered-iteration`.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

struct DieState
{
    std::unordered_map<std::uint64_t, int> inFlight;
};

int
orderSensitive(const DieState &state)
{
    std::unordered_set<std::string> seen;
    int total = 0;
    for (const auto &entry : state.inFlight)
        total += entry.second;
    for (const auto &name : seen)
        total += static_cast<int>(name.size());
    auto it = seen.begin();
    (void)it;
    return total;
}

// Lookup (not iteration) is order-independent: this must NOT fire.
bool
lookupOnly(const DieState &state, std::uint64_t id)
{
    return state.inFlight.find(id) != state.inFlight.end();
}
