// Fixture: hardware entropy must trigger the `random-device` rule.
#include <random>

unsigned
entropySeed()
{
    std::random_device rd;
    return rd();
}
