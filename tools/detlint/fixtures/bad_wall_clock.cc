// Fixture: host-time reads that must trigger the `wall-clock` rule.
#include <chrono>
#include <ctime>
#include <sys/time.h>

long
hostTimeLeaks()
{
    auto a = std::chrono::steady_clock::now();
    auto b = std::chrono::system_clock::now();
    auto c = std::chrono::high_resolution_clock::now();
    std::time_t t = time(nullptr);
    timeval tv;
    gettimeofday(&tv, nullptr);
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    (void)a;
    (void)b;
    (void)c;
    return static_cast<long>(t) + tv.tv_sec + ts.tv_sec;
}
