// Fixture: constructing a fresh Rng in fault code (the "fault" in
// this filename puts it in scope) must trigger `fault-rng`.
namespace afa::sim {
class Rng
{
  public:
    explicit Rng(unsigned long long seed);
    double chance(double p);
};
} // namespace afa::sim

double
privateFaultStream()
{
    afa::sim::Rng local(99);
    auto *heap = new afa::sim::Rng(7);
    double v = local.chance(0.5) + heap->chance(0.5);
    delete heap;
    return v;
}

// Borrowing the engine's stream by reference is the sanctioned
// pattern: this must NOT fire.
double
borrowedStream(afa::sim::Rng &rng)
{
    afa::sim::Rng *alias = &rng;
    return alias->chance(0.25);
}
