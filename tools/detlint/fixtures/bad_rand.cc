// Fixture: every line here must trigger the `rand` rule.
#include <cstdlib>

int
noisyLatency()
{
    std::srand(42);
    int jitter = std::rand() % 100;
    int more = rand() % 7;
    return jitter + more;
}
