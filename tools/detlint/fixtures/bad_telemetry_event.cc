// Fixture: telemetry sampling events scheduled without internal=true.
// The telemetry contract (DESIGN.md §14) makes canonical reports
// byte-identical with --telemetry on and off, which only holds while
// every sampling event is engine plumbing. Three wrong shapes must
// each fire once; the sanctioned idiom and the audited allow must
// not. The file name carries "telemetry" on purpose: the rule is
// scoped to telemetry sources.

#include "sim/simulator.hh"

namespace afa::fixture {

inline constexpr std::uint32_t kSampleOrderBand = 0xffffffffu;

void
scheduleSamples(afa::sim::Simulator &sim, afa::sim::Tick period)
{
    const afa::sim::Tick when = sim.now() + period;

    // Defaulted internal=false: the sample is a model-visible event,
    // so enabling telemetry perturbs the canonical reports.
    sim.scheduleOnShard(0, when, [] {});

    // An explicit false is just as wrong.
    sim.scheduleOnShard(0, when, [] {}, false, kSampleOrderBand);

    // Local-shard scheduling cannot mark the event internal at all.
    sim.scheduleAfter(period, [] {});

    // The sanctioned idiom: internal, in the top ordering band so the
    // sample runs after every model event of its tick.
    sim.scheduleOnShard(0, when, [] {}, /*internal=*/true,
                        kSampleOrderBand);

    // Audited exception: a debug probe meant to appear in the trace.
    // detlint:allow(telemetry-internal)
    sim.scheduleAt(when, [] {});
}

} // namespace afa::fixture
