// Fixture: the sanctioned open-loop randomness idioms ("arrival" in
// the filename scopes the arrival-rng rule here) must lint clean in
// both tiers: every draw flows through a borrowed Rng reference or a
// stream forked off the engine's seeded tree, never a fresh
// construction.
namespace afa::sim {
class Rng
{
  public:
    explicit Rng(unsigned long long seed);
    // Trailing return type on purpose: a leading-return `Rng fork(...)`
    // declaration would token-match the fresh-construction pattern in
    // the regex tier.
    auto fork(unsigned long long salt) const -> Rng;
    double exponential(double mean);
};
} // namespace afa::sim

namespace {

// An arrival clock borrows its stream per call: no owned Rng member,
// so the process itself carries no randomness state.
class ArrivalClock
{
  public:
    double nextGap(afa::sim::Rng &rng)
    {
        return rng.exponential(gapMean);
    }

  private:
    double gapMean = 1000.0;
};

} // namespace

double
forkedStreams(afa::sim::Rng &engineRng)
{
    // Per-stream state assigned from named forks of the engine's
    // seeded tree: the storage idiom OpenLoopEngine uses.
    ArrivalClock arrivals;
    double total = 0.0;
    for (int s = 0; s < 4; ++s) {
        auto stream =
            engineRng.fork(static_cast<unsigned long long>(s));
        total += arrivals.nextGap(stream);
    }
    return total;
}
