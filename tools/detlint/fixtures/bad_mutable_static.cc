// Fixture: mutable namespace-scope state must trigger
// `mutable-static` (with or without the `static` keyword — both have
// static storage duration).
#include <atomic>
#include <cstdint>

static int g_callCount = 0;

std::uint64_t g_lastSeed = 0;

namespace {

std::atomic<bool> g_initialised{false};

double g_drift;

} // namespace

// Constants and functions must NOT fire.
static const int kTableSize = 64;
constexpr double kScale = 1.5;

static int
bumpCounter()
{
    // Function-local state is out of scope for this rule (reviewed
    // case by case instead).
    return ++g_callCount;
}

int
useAll()
{
    g_lastSeed += kTableSize;
    g_initialised.store(true);
    g_drift += kScale;
    return bumpCounter();
}
