// Regression fixture for the literal-scanner bugs fixed alongside the
// AST analyzer (PR 7). Every construct here previously desynchronised
// strip_comments_and_strings() and produced a false diagnostic; the
// file must lint clean.
//
// Compiled by the AST parity test too, so it must be valid C++.

#include <cstdint>

namespace afa::sim {

unsigned long use(unsigned long v);

void
pace()
{
    // A digit separator used to flip the scanner into char-literal
    // state; the comment on the next line was then parsed as code and
    // its std::rand() mention fired the rand rule.
    unsigned long budget = 1'000;
    // it's a paced budget: std::rand() stays banned in sim code
    use(budget);

    // Separators in hex literals, and more than one per line.
    unsigned long mask = 0xff'ff'ff'ffUL;
    unsigned long window = 1'000'000 + mask;
    use(window);
}

// Raw strings follow no escape rules: the trailing backslash below is
// a literal character, not an escape over the closing quote. Both
// banned-token mentions inside raw strings must stay invisible.
constexpr const char *kHelp =
    R"(wall-clock words like system_clock::now and std::rand( are fine here)";
constexpr const char *kPath = R"(C:\sim\)";
constexpr const char *kDelim = R"x(quote " and )" inside)x";

// A wide char literal after an identifier-like prefix must still open
// a char literal (L is not a digit separator context); the paren in
// it must not unbalance anything.
constexpr wchar_t kParen = L'(';

} // namespace afa::sim
