// Fixture: idiomatic simulator code that must lint clean — seeded
// randomness, sim-time only, ordered containers, constant globals.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace {

constexpr std::uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ULL;

const std::map<std::string, int> kLatencyClasses = {
    {"read", 1},
    {"write", 2},
};

// Comments may mention std::rand(), time(nullptr) or
// steady_clock::now() without tripping the linter, and so may
// strings:
const char *const kBanner = "no rand() or clock() here";

std::uint64_t
splitmix(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return z ^ (z >> 31);
}

} // namespace

struct Rng
{
    explicit Rng(std::uint64_t seed) : state(seed) {}
    std::uint64_t next() { return splitmix(state); }
    std::uint64_t state;
};

std::uint64_t
deterministicDraws(std::uint64_t seed)
{
    Rng rng(seed == 0 ? kDefaultSeed : seed);
    std::vector<std::uint64_t> draws;
    for (int i = 0; i < 8; ++i)
        draws.push_back(rng.next());
    std::uint64_t total = 0;
    for (const auto &entry : kLatencyClasses)
        total += static_cast<std::uint64_t>(entry.second);
    for (std::uint64_t d : draws)
        total += d;
    return total + static_cast<std::uint64_t>(kBanner[0]);
}
