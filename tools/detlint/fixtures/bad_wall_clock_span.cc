// Fixture: span instrumentation fed from host wall-clock time. The
// observability contract (DESIGN.md) requires span begin/end to be
// simulated Ticks; stamping them from a host clock makes traces (and
// anything derived from them) nondeterministic, so the `wall-clock`
// rule must fire on each read even inside telemetry-only code.
#include <chrono>
#include <cstdint>

struct FakeSpanLog
{
    void record(std::uint64_t begin, std::uint64_t end);
};

void
recordSpanFromHostClock(FakeSpanLog &log)
{
    auto begin = std::chrono::steady_clock::now();
    // ... simulated work ...
    auto end = std::chrono::steady_clock::now();
    log.record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            begin.time_since_epoch())
            .count(),
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            end.time_since_epoch())
            .count());
}
