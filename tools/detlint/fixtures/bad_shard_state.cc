// Fixture: direct cross-shard controller mutations outside the
// mailbox API. Each of the three mutators must fire once; the calls
// routed through scheduleOnShard() (and the annotated one) must not.

#include "nvme/controller.hh"
#include "sim/simulator.hh"

namespace afa::fixture {

void
bad(afa::nvme::Controller *ctrl, afa::nvme::Controller &ref,
    afa::sim::Simulator &sim)
{
    // Direct mutations from whatever shard happens to be running:
    // races with the owning shard and breaks bit-identical replay.
    ctrl->setLimpFactor(8.0);
    ref.setOffline(true);
    ctrl->stallUntil(1000);

    // Posted to the owning shard through the mailbox API: legal.
    sim.scheduleOnShard(2, 5000,
                        [ctrl] { ctrl->setLimpFactor(1.0); },
                        /*internal=*/true, /*order=*/1);
    sim.scheduleOnShard(
        2, 6000,
        [r = &ref] {
            r->setOffline(false);
        });

    // Provably shard-affine call site, audited by hand:
    // detlint:allow(shard-state) — runs on the owning shard
    ctrl->stallUntil(2000);
}

} // namespace afa::fixture
