#!/usr/bin/env python3
"""Toolchain-free unit tests for detlint_ast.py.

detlint_ast deliberately reaches the clang AST only through
duck-typed cursor attributes (kind.name, get_children(), referenced,
type.get_canonical(), ...), so its rule logic can be exercised with
fake cursors on hosts without libclang — this suite is what ctest
runs everywhere; detlint_ast_test.py adds the real-parser fixtures
when python3-clang is present.
"""

import json
import os
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import detlint_ast as da  # noqa: E402


# ---------------------------------------------------------------------
# Duck-typed stand-ins for cindex objects.
# ---------------------------------------------------------------------

class FakeKind:
    def __init__(self, name, is_expr=False):
        self.name = name
        self._is_expr = is_expr

    def is_expression(self):
        return self._is_expr


class FakeFile:
    def __init__(self, name):
        self.name = name


class FakeLocation:
    def __init__(self, path, line):
        self.file = FakeFile(path) if path else None
        self.line = line


class FakeType:
    def __init__(self, spelling="", kind_name="RECORD", decl=None,
                 pointee=None, const=False, canonical=None,
                 element=None):
        self.spelling = spelling
        self.kind = FakeKind(kind_name)
        self._decl = decl
        self._pointee = pointee
        self._const = const
        self._canonical = canonical
        self._element = element

    def get_canonical(self):
        return self._canonical or self

    def get_declaration(self):
        return self._decl

    def get_pointee(self):
        return self._pointee

    def is_const_qualified(self):
        return self._const

    def get_array_element_type(self):
        return self._element


_next_hash = [0]


class FakeCursor:
    def __init__(self, kind, spelling="", children=(), referenced=None,
                 semantic_parent=None, lexical_parent=None, type=None,
                 path="fake.cc", line=1, tokens=(), definition=True,
                 is_expr=False):
        self.kind = FakeKind(kind, is_expr)
        self.spelling = spelling
        self._children = list(children)
        self.referenced = referenced
        self.semantic_parent = semantic_parent
        self.lexical_parent = lexical_parent
        self.type = type if type is not None else FakeType()
        self.location = FakeLocation(path, line)
        self._tokens = tokens
        self._definition = definition
        _next_hash[0] += 1
        self.hash = _next_hash[0]

    def get_children(self):
        return list(self._children)

    def get_tokens(self):
        class Tok:
            def __init__(self, s):
                self.spelling = s
        return [Tok(s) for s in self._tokens]

    def is_definition(self):
        return self._definition


def decl_ref(var):
    return FakeCursor("DECL_REF_EXPR", spelling=var.spelling,
                      referenced=var, type=var.type, is_expr=True)


def record_call(*begin_refs, path="fake.cc", line=1):
    span_log = FakeCursor("STRUCT_DECL", spelling="SpanLog")
    record_decl = FakeCursor("CXX_METHOD", spelling="record",
                             semantic_parent=span_log)
    return FakeCursor("CALL_EXPR", spelling="record",
                      children=list(begin_refs),
                      referenced=record_decl, path=path, line=line,
                      is_expr=True)


def span_log_guard():
    """An expression whose type resolves to SpanLog (a guard on the
    span log pointer)."""
    decl = FakeCursor("STRUCT_DECL", spelling="SpanLog")
    record_t = FakeType(spelling="SpanLog", decl=decl)
    ptr_t = FakeType(spelling="SpanLog *", kind_name="POINTER",
                     pointee=record_t)
    return FakeCursor("MEMBER_REF_EXPR", spelling="spanLog",
                      type=ptr_t, is_expr=True)


def begin_var(name="begin", line=2):
    t = FakeType(spelling="afa::sim::Tick", kind_name="ULONGLONG")
    return FakeCursor("VAR_DECL", spelling=name, type=t, line=line)


class CaptureParsing(unittest.TestCase):
    def parse(self, *tokens):
        return da.parse_capture_tokens(list(tokens))

    def test_default_ref(self):
        self.assertEqual(self.parse("[", "&", "]"),
                         [("ref-default", "")])

    def test_default_value(self):
        self.assertEqual(self.parse("[", "=", "]"),
                         [("value-default", "")])

    def test_named_ref_and_value(self):
        self.assertEqual(
            self.parse("[", "&", "a", ",", "b", "]"),
            [("ref", "a"), ("value", "b")])

    def test_this_forms(self):
        self.assertEqual(self.parse("[", "this", "]"),
                         [("this", "this")])
        self.assertEqual(self.parse("[", "*", "this", "]"),
                         [("this", "this")])

    def test_init_capture_value(self):
        self.assertEqual(self.parse("[", "c", "=", "ptr", "]"),
                         [("value", "c")])

    def test_init_capture_ref(self):
        self.assertEqual(self.parse("[", "&", "r", "=", "obj", "]"),
                         [("ref", "r")])

    def test_nested_brackets_in_init(self):
        self.assertEqual(
            self.parse("[", "y", "=", "arr", "[", "0", "]", "]"),
            [("value", "y")])

    def test_not_a_capture_list(self):
        self.assertEqual(self.parse("(", "int", ")"), [])


class QualifiedNames(unittest.TestCase):
    def test_skips_inline_version_namespaces(self):
        tu = FakeCursor("TRANSLATION_UNIT")
        std = FakeCursor("NAMESPACE", spelling="std",
                         semantic_parent=tu)
        chrono = FakeCursor("NAMESPACE", spelling="chrono",
                            semantic_parent=std)
        v2 = FakeCursor("NAMESPACE", spelling="_V2",
                        semantic_parent=chrono)
        clock = FakeCursor("CLASS_DECL", spelling="system_clock",
                           semantic_parent=v2)
        now = FakeCursor("CXX_METHOD", spelling="now",
                         semantic_parent=clock)
        self.assertEqual(da.qualified_name(now),
                         "std::chrono::system_clock::now")


class CompileArgs(unittest.TestCase):
    def test_command_form(self):
        entry = {
            "directory": "/b/build",
            "command": "/usr/bin/c++ -Isrc -I/abs/inc -std=gnu++20 "
                       "-O2 -MD -MF dep.d -o obj/x.o -c ../src/x.cc",
            "file": "../src/x.cc",
        }
        args = da.extract_args(entry)
        self.assertEqual(args, ["-I/b/build/src", "-I/abs/inc",
                                "-std=gnu++20", "-O2"])

    def test_arguments_form(self):
        entry = {
            "directory": "/b",
            "arguments": ["c++", "-DX=1", "-c", "a.cc", "-o", "a.o"],
            "file": "a.cc",
        }
        self.assertEqual(da.extract_args(entry), ["-DX=1"])

    def test_select_entries(self):
        entries = [
            {"directory": "/r/build", "file": "../src/sim/a.cc"},
            {"directory": "/r/build", "file": "../tests/t.cc"},
        ]
        chosen = da.select_entries(entries, "/r", ["src/sim"])
        self.assertEqual(len(chosen), 1)
        self.assertIn("a.cc", chosen[0]["file"])


class SarifOutput(unittest.TestCase):
    def test_shape(self):
        diags = [da.Diagnostic("src/sim/a.cc", 12, "rand")]
        doc = da.to_sarif(diags, "/r")
        run = doc["runs"][0]
        self.assertEqual(doc["version"], "2.1.0")
        result = run["results"][0]
        self.assertEqual(result["ruleId"], "rand")
        loc = result["locations"][0]["physicalLocation"]
        self.assertEqual(loc["artifactLocation"]["uri"],
                         "src/sim/a.cc")
        self.assertEqual(loc["region"]["startLine"], 12)
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        self.assertLessEqual(set(da.RULES), rule_ids)
        json.dumps(doc)  # must be serialisable


class TelemetryInternal(unittest.TestCase):
    """Rule logic for telemetry-internal on fake call cursors."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.analyzer = da.Analyzer(self.tmp.name)
        self.path = os.path.join(self.tmp.name, "obs", "telemetry.cc")

    def tearDown(self):
        self.tmp.cleanup()

    def sched_call(self, name, args, line=1):
        decl = FakeCursor("CXX_METHOD", spelling=name)
        # Args as children; _call_args falls back to child filtering
        # on fakes (no get_arguments), mirroring the dependent-call
        # path of the real analyzer.
        return FakeCursor("CALL_EXPR", spelling=name, children=args,
                          referenced=decl, path=self.path, line=line,
                          is_expr=True)

    def bool_lit(self, spelling):
        return FakeCursor("CXX_BOOL_LITERAL_EXPR", tokens=(spelling,),
                          path=self.path, is_expr=True)

    def fired(self):
        return [(d.rule, d.line) for d in self.analyzer.results()]

    def base_args(self):
        return [FakeCursor("INTEGER_LITERAL", path=self.path,
                           is_expr=True),
                FakeCursor("INTEGER_LITERAL", path=self.path,
                           is_expr=True),
                FakeCursor("LAMBDA_EXPR", path=self.path,
                           is_expr=True)]

    def test_three_arg_form_fires(self):
        call = self.sched_call("scheduleOnShard", self.base_args(),
                               line=7)
        self.analyzer._check_telemetry_schedule(call, "scheduleOnShard")
        self.assertEqual(self.fired(), [("telemetry-internal", 7)])

    def test_explicit_false_fires(self):
        args = self.base_args() + [self.bool_lit("false"),
                                   FakeCursor("INTEGER_LITERAL",
                                              path=self.path,
                                              is_expr=True)]
        call = self.sched_call("scheduleOnShard", args, line=9)
        self.analyzer._check_telemetry_schedule(call, "scheduleOnShard")
        self.assertEqual(self.fired(), [("telemetry-internal", 9)])

    def test_explicit_true_is_clean(self):
        args = self.base_args() + [self.bool_lit("true"),
                                   FakeCursor("INTEGER_LITERAL",
                                              path=self.path,
                                              is_expr=True)]
        call = self.sched_call("scheduleOnShard", args)
        self.analyzer._check_telemetry_schedule(call, "scheduleOnShard")
        self.assertEqual(self.fired(), [])

    def test_local_schedulers_fire(self):
        for line, name in enumerate(("scheduleAt", "scheduleAfter"), 1):
            call = self.sched_call(name, self.base_args()[:2],
                                   line=line)
            self.analyzer._check_telemetry_schedule(call, name)
        self.assertEqual(self.fired(), [("telemetry-internal", 1),
                                        ("telemetry-internal", 2)])

    def test_non_telemetry_file_not_checked(self):
        # _check_call only consults the rule for telemetry sources.
        call = self.sched_call("scheduleAfter", self.base_args()[:2])
        call.location = FakeLocation(
            os.path.join(self.tmp.name, "obs", "span_log.cc"), 1)
        ctx = {"in_sched": False}
        self.analyzer._check_call(call, ctx, telemetry_file=False)
        self.assertEqual(self.fired(), [])


class AllowFiltering(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.root = self.tmp.name
        self.path = os.path.join(self.root, "x.cc")
        with open(self.path, "w", encoding="utf-8") as f:
            f.write("int a;\n"
                    "int b; // detlint:allow(mutable-static)\n"
                    "// detlint:allow(rand)\n"
                    "int c = bad();\n")

    def tearDown(self):
        self.tmp.cleanup()

    def test_allow_same_line_and_line_above(self):
        an = da.Analyzer(self.root)
        an.report((self.path, 1), "mutable-static")
        an.report((self.path, 2), "mutable-static")  # allowed
        an.report((self.path, 4), "rand")            # allowed above
        an.report((self.path, 1), "mutable-static")  # dedup
        results = an.results()
        self.assertEqual([(d.path, d.line, d.rule) for d in results],
                         [("x.cc", 1, "mutable-static")])

    def test_out_of_scope_paths_ignored(self):
        an = da.Analyzer(self.root)
        an.report(("/usr/include/ctime", 3), "wall-clock")
        self.assertEqual(an.results(), [])


class TickUnitsOperator(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.root = self.tmp.name
        self.path = os.path.join(self.root, "y.cc")
        with open(self.path, "w", encoding="utf-8") as f:
            f.write("// nothing\n" * 20)
        self.an = da.Analyzer(self.root)
        self.ctx = {"in_sched": False, "in_sched_lambda": False,
                    "unordered_loop_depth": 0}

    def tearDown(self):
        self.tmp.cleanup()

    def tick_ref(self):
        t = FakeType(spelling="afa::sim::Tick",
                     kind_name="ULONGLONG",
                     canonical=FakeType(spelling="unsigned long long",
                                        kind_name="ULONGLONG"))
        return FakeCursor("DECL_REF_EXPR", spelling="t", type=t,
                          path=self.path, line=5, is_expr=True)

    def float_lit(self):
        t = FakeType(spelling="double", kind_name="DOUBLE")
        return FakeCursor("FLOATING_LITERAL", type=t, path=self.path,
                          line=5, is_expr=True)

    def test_tick_times_double_fires(self):
        op = FakeCursor("BINARY_OPERATOR",
                        children=[self.tick_ref(), self.float_lit()],
                        path=self.path, line=5)
        self.an._check_operator(op, self.ctx)
        self.assertEqual([d.rule for d in self.an.results()],
                         ["tick-units"])

    def test_cast_is_exempt(self):
        cast = FakeCursor("CXX_STATIC_CAST_EXPR",
                          children=[self.tick_ref()],
                          type=FakeType(spelling="double",
                                        kind_name="DOUBLE"),
                          path=self.path, line=6, is_expr=True)
        op = FakeCursor("BINARY_OPERATOR",
                        children=[cast, self.float_lit()],
                        path=self.path, line=6)
        self.an._check_operator(op, self.ctx)
        self.assertEqual(self.an.results(), [])

    def test_unordered_accumulate_needs_loop_ctx(self):
        lhs = FakeCursor(
            "DECL_REF_EXPR", spelling="total",
            type=FakeType(spelling="double", kind_name="DOUBLE"),
            path=self.path, line=7, is_expr=True)
        op = FakeCursor("COMPOUND_ASSIGNMENT_OPERATOR",
                        children=[lhs, self.float_lit()],
                        path=self.path, line=7)
        self.an._check_operator(op, self.ctx)
        self.assertEqual(self.an.results(), [])
        self.an._check_operator(
            op, dict(self.ctx, unordered_loop_depth=1))
        self.assertEqual([d.rule for d in self.an.results()],
                         ["unordered-accumulate"])


class SpanPaths(unittest.TestCase):
    """Statement-tree shapes for the span-pairing path checker."""

    def run_checker(self, body, begin):
        begin_vars = {begin.hash: (begin.spelling, "fake.cc", 2)}
        recorded = da._record_uses_in(body, begin_vars)
        checker = da.SpanPathChecker(begin_vars, recorded)
        if not recorded:
            return []
        checker.run_body(body)
        return checker.diags

    def decl_stmt(self, var):
        return FakeCursor("DECL_STMT", children=[var])

    def test_early_return_fires(self):
        begin = begin_var()
        body = FakeCursor("COMPOUND_STMT", children=[
            self.decl_stmt(begin),
            FakeCursor("IF_STMT", children=[
                FakeCursor("DECL_REF_EXPR", spelling="fast",
                           is_expr=True),
                FakeCursor("RETURN_STMT", line=4),
            ]),
            record_call(decl_ref(begin), line=6),
        ])
        diags = self.run_checker(body, begin)
        self.assertEqual(len(diags), 1)
        self.assertEqual(diags[0][1], 4)  # at the early return

    def test_one_branch_records_fires_at_end(self):
        begin = begin_var()
        body = FakeCursor("COMPOUND_STMT", line=1, children=[
            self.decl_stmt(begin),
            FakeCursor("IF_STMT", children=[
                FakeCursor("DECL_REF_EXPR", spelling="hit",
                           is_expr=True),
                record_call(decl_ref(begin), line=5),
            ]),
        ])
        diags = self.run_checker(body, begin)
        self.assertEqual(len(diags), 1)

    def test_guarded_by_span_log_is_exempt(self):
        begin = begin_var()
        body = FakeCursor("COMPOUND_STMT", children=[
            self.decl_stmt(begin),
            FakeCursor("IF_STMT", children=[
                span_log_guard(),
                record_call(decl_ref(begin), line=5),
            ]),
        ])
        self.assertEqual(self.run_checker(body, begin), [])

    def test_both_branches_record_is_clean(self):
        begin = begin_var()
        body = FakeCursor("COMPOUND_STMT", children=[
            self.decl_stmt(begin),
            FakeCursor("IF_STMT", children=[
                FakeCursor("DECL_REF_EXPR", spelling="hit",
                           is_expr=True),
                record_call(decl_ref(begin), line=5),
                record_call(decl_ref(begin), line=7),
            ]),
        ])
        self.assertEqual(self.run_checker(body, begin), [])

    def test_unconditional_record_is_clean(self):
        begin = begin_var()
        body = FakeCursor("COMPOUND_STMT", children=[
            self.decl_stmt(begin),
            record_call(decl_ref(begin), line=3),
            FakeCursor("RETURN_STMT", line=4),
        ])
        self.assertEqual(self.run_checker(body, begin), [])

    def test_never_recorded_var_is_ignored(self):
        begin = begin_var()
        body = FakeCursor("COMPOUND_STMT", children=[
            self.decl_stmt(begin),
            FakeCursor("RETURN_STMT", line=3),
        ])
        self.assertEqual(self.run_checker(body, begin), [])

    def test_record_inside_loop_is_optimistic(self):
        begin = begin_var()
        body = FakeCursor("COMPOUND_STMT", children=[
            self.decl_stmt(begin),
            FakeCursor("WHILE_STMT", children=[
                FakeCursor("DECL_REF_EXPR", spelling="more",
                           is_expr=True),
                record_call(decl_ref(begin), line=5),
            ]),
        ])
        self.assertEqual(self.run_checker(body, begin), [])


class FreshRngRule(unittest.TestCase):
    """Path scoping and init classification of the fault-rng /
    arrival-rng fresh-Rng rules on fake cursors."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.an = da.Analyzer(self.tmp.name)
        self.ctx = {"in_sched": False, "in_sched_lambda": False,
                    "unordered_loop_depth": 0}

    def tearDown(self):
        self.tmp.cleanup()

    def test_path_scoping(self):
        rule = da.rxlint.fresh_rng_rule_for
        self.assertEqual(rule("src/fault/fault_engine.cc"),
                         "fault-rng")
        self.assertEqual(rule("src/workload/arrival.cc"),
                         "arrival-rng")
        self.assertEqual(rule("src/workload/openloop.hh"),
                         "arrival-rng")
        self.assertIsNone(rule("src/workload/fio_thread.cc"))
        self.assertIsNone(rule("src/sim/random.cc"))

    def rng_type(self):
        tu = FakeCursor("TRANSLATION_UNIT")
        afa = FakeCursor("NAMESPACE", spelling="afa",
                         semantic_parent=tu)
        sim = FakeCursor("NAMESPACE", spelling="sim",
                         semantic_parent=afa)
        decl = FakeCursor("CLASS_DECL", spelling="Rng",
                          semantic_parent=sim)
        return FakeType(spelling="afa::sim::Rng", kind_name="RECORD",
                        decl=decl)

    def rng_var(self, path, init=None, line=3):
        children = [init] if init is not None else []
        return FakeCursor("VAR_DECL", spelling="r",
                          children=children, type=self.rng_type(),
                          path=path, line=line)

    def ctor_init(self):
        ctor = FakeCursor("CONSTRUCTOR", spelling="Rng")
        seed = FakeCursor("INTEGER_LITERAL", is_expr=True)
        return FakeCursor("CALL_EXPR", children=[seed],
                          referenced=ctor, is_expr=True)

    def fork_init(self):
        fork = FakeCursor("CXX_METHOD", spelling="fork")
        return FakeCursor("CALL_EXPR", referenced=fork, is_expr=True)

    def fired(self):
        return [(d.rule, d.line) for d in self.an.results()]

    def test_fresh_ctor_fires_scoped_rule(self):
        path = os.path.join(self.tmp.name, "workload", "arrival.cc")
        var = self.rng_var(path, self.ctor_init(), line=11)
        self.an._check_var_decl(var, self.ctx, "arrival-rng")
        self.assertEqual(self.fired(), [("arrival-rng", 11)])

    def test_default_ctor_fires(self):
        path = os.path.join(self.tmp.name, "workload", "openloop.cc")
        var = self.rng_var(path, None, line=4)
        self.an._check_var_decl(var, self.ctx, "arrival-rng")
        self.assertEqual(self.fired(), [("arrival-rng", 4)])

    def test_fault_path_reports_fault_rng(self):
        path = os.path.join(self.tmp.name, "fault", "engine.cc")
        var = self.rng_var(path, self.ctor_init(), line=8)
        self.an._check_var_decl(var, self.ctx, "fault-rng")
        self.assertEqual(self.fired(), [("fault-rng", 8)])

    def test_fork_derived_is_clean(self):
        path = os.path.join(self.tmp.name, "workload", "arrival.cc")
        var = self.rng_var(path, self.fork_init())
        self.an._check_var_decl(var, self.ctx, "arrival-rng")
        self.assertEqual(self.fired(), [])

    def test_unscoped_path_is_clean(self):
        path = os.path.join(self.tmp.name, "workload", "fio.cc")
        var = self.rng_var(path, self.ctor_init())
        self.an._check_var_decl(var, self.ctx, None)
        self.assertEqual(self.fired(), [])

    def test_new_expr_fires_passed_rule(self):
        path = os.path.join(self.tmp.name, "workload", "arrival.cc")
        new = FakeCursor("CXX_NEW_EXPR", type=self.rng_type(),
                         path=path, line=6)
        self.an._check_new_expr(new, "arrival-rng")
        self.assertEqual(self.fired(), [("arrival-rng", 6)])

    def test_new_expr_without_rule_is_clean(self):
        path = os.path.join(self.tmp.name, "workload", "fio.cc")
        new = FakeCursor("CXX_NEW_EXPR", type=self.rng_type(),
                         path=path, line=6)
        self.an._check_new_expr(new, None)
        self.assertEqual(self.fired(), [])


class ShardCaptureRule(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.root = self.tmp.name
        self.path = os.path.join(self.root, "z.cc")
        with open(self.path, "w", encoding="utf-8") as f:
            f.write("// nothing\n" * 10)
        self.an = da.Analyzer(self.root)

    def tearDown(self):
        self.tmp.cleanup()

    def lam(self, tokens):
        return FakeCursor("LAMBDA_EXPR", tokens=tokens,
                          path=self.path, line=3)

    def test_ref_captures_fire(self):
        self.an._check_shard_capture(
            self.lam(["[", "&", "x", "]", "{", "}"]))
        self.assertEqual([d.rule for d in self.an.results()],
                         ["shard-capture"])
        self.assertIn("'x'", self.an.results()[0].detail)

    def test_value_captures_clean(self):
        self.an._check_shard_capture(
            self.lam(["[", "this", ",", "e", "]", "{", "}"]))
        self.an._check_shard_capture(
            self.lam(["[", "c", "=", "ptr", "]", "{", "}"]))
        self.assertEqual(self.an.results(), [])


if __name__ == "__main__":
    unittest.main(verbosity=1)
