# Empty dependencies file for fig08_isolcpus.
# This may be replaced when dependencies are built.
