file(REMOVE_RECURSE
  "CMakeFiles/fig08_isolcpus.dir/fig08_isolcpus.cpp.o"
  "CMakeFiles/fig08_isolcpus.dir/fig08_isolcpus.cpp.o.d"
  "fig08_isolcpus"
  "fig08_isolcpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_isolcpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
