# Empty compiler generated dependencies file for fig12_config_comparison.
# This may be replaced when dependencies are built.
