file(REMOVE_RECURSE
  "CMakeFiles/fig12_config_comparison.dir/fig12_config_comparison.cpp.o"
  "CMakeFiles/fig12_config_comparison.dir/fig12_config_comparison.cpp.o.d"
  "fig12_config_comparison"
  "fig12_config_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_config_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
