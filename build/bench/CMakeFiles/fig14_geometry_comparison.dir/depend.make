# Empty dependencies file for fig14_geometry_comparison.
# This may be replaced when dependencies are built.
