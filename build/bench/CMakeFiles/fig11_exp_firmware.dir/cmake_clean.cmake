file(REMOVE_RECURSE
  "CMakeFiles/fig11_exp_firmware.dir/fig11_exp_firmware.cpp.o"
  "CMakeFiles/fig11_exp_firmware.dir/fig11_exp_firmware.cpp.o.d"
  "fig11_exp_firmware"
  "fig11_exp_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_exp_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
