# Empty dependencies file for fig11_exp_firmware.
# This may be replaced when dependencies are built.
