file(REMOVE_RECURSE
  "CMakeFiles/ablation_gc_aging.dir/ablation_gc_aging.cpp.o"
  "CMakeFiles/ablation_gc_aging.dir/ablation_gc_aging.cpp.o.d"
  "ablation_gc_aging"
  "ablation_gc_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gc_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
