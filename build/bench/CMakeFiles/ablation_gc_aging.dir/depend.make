# Empty dependencies file for ablation_gc_aging.
# This may be replaced when dependencies are built.
