# Empty dependencies file for fig07_chrt.
# This may be replaced when dependencies are built.
