file(REMOVE_RECURSE
  "CMakeFiles/fig07_chrt.dir/fig07_chrt.cpp.o"
  "CMakeFiles/fig07_chrt.dir/fig07_chrt.cpp.o.d"
  "fig07_chrt"
  "fig07_chrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_chrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
