# Empty compiler generated dependencies file for pts_steady_state.
# This may be replaced when dependencies are built.
