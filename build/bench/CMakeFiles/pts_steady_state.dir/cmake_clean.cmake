file(REMOVE_RECURSE
  "CMakeFiles/pts_steady_state.dir/pts_steady_state.cpp.o"
  "CMakeFiles/pts_steady_state.dir/pts_steady_state.cpp.o.d"
  "pts_steady_state"
  "pts_steady_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pts_steady_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
