# Empty dependencies file for ablation_boot_options.
# This may be replaced when dependencies are built.
