file(REMOVE_RECURSE
  "CMakeFiles/ablation_boot_options.dir/ablation_boot_options.cpp.o"
  "CMakeFiles/ablation_boot_options.dir/ablation_boot_options.cpp.o.d"
  "ablation_boot_options"
  "ablation_boot_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_boot_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
