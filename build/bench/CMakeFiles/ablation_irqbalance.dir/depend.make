# Empty dependencies file for ablation_irqbalance.
# This may be replaced when dependencies are built.
