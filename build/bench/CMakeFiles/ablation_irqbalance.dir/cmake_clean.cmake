file(REMOVE_RECURSE
  "CMakeFiles/ablation_irqbalance.dir/ablation_irqbalance.cpp.o"
  "CMakeFiles/ablation_irqbalance.dir/ablation_irqbalance.cpp.o.d"
  "ablation_irqbalance"
  "ablation_irqbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_irqbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
