# Empty dependencies file for fig10_smart_scatter.
# This may be replaced when dependencies are built.
