file(REMOVE_RECURSE
  "CMakeFiles/fig10_smart_scatter.dir/fig10_smart_scatter.cpp.o"
  "CMakeFiles/fig10_smart_scatter.dir/fig10_smart_scatter.cpp.o.d"
  "fig10_smart_scatter"
  "fig10_smart_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_smart_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
