file(REMOVE_RECURSE
  "CMakeFiles/fig09_irq_affinity.dir/fig09_irq_affinity.cpp.o"
  "CMakeFiles/fig09_irq_affinity.dir/fig09_irq_affinity.cpp.o.d"
  "fig09_irq_affinity"
  "fig09_irq_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_irq_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
