# Empty dependencies file for fig13_ssd_per_core.
# This may be replaced when dependencies are built.
