file(REMOVE_RECURSE
  "CMakeFiles/fig13_ssd_per_core.dir/fig13_ssd_per_core.cpp.o"
  "CMakeFiles/fig13_ssd_per_core.dir/fig13_ssd_per_core.cpp.o.d"
  "fig13_ssd_per_core"
  "fig13_ssd_per_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ssd_per_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
