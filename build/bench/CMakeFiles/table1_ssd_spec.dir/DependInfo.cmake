
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_ssd_spec.cpp" "bench/CMakeFiles/table1_ssd_spec.dir/table1_ssd_spec.cpp.o" "gcc" "bench/CMakeFiles/table1_ssd_spec.dir/table1_ssd_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/afa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/afa_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/afa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/afa_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/afa_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/afa_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/afa_host.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/afa_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
