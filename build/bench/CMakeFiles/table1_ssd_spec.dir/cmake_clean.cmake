file(REMOVE_RECURSE
  "CMakeFiles/table1_ssd_spec.dir/table1_ssd_spec.cpp.o"
  "CMakeFiles/table1_ssd_spec.dir/table1_ssd_spec.cpp.o.d"
  "table1_ssd_spec"
  "table1_ssd_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ssd_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
