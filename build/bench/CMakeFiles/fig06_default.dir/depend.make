# Empty dependencies file for fig06_default.
# This may be replaced when dependencies are built.
