file(REMOVE_RECURSE
  "CMakeFiles/fig06_default.dir/fig06_default.cpp.o"
  "CMakeFiles/fig06_default.dir/fig06_default.cpp.o.d"
  "fig06_default"
  "fig06_default.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_default.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
