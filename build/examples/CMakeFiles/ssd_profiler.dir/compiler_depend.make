# Empty compiler generated dependencies file for ssd_profiler.
# This may be replaced when dependencies are built.
