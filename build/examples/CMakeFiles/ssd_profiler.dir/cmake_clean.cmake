file(REMOVE_RECURSE
  "CMakeFiles/ssd_profiler.dir/ssd_profiler.cpp.o"
  "CMakeFiles/ssd_profiler.dir/ssd_profiler.cpp.o.d"
  "ssd_profiler"
  "ssd_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
