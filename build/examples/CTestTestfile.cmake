# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--ssds" "4" "--runtime-ms" "150")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ssd_profiler "/root/repo/build/examples/ssd_profiler" "--ssds" "4" "--runtime-ms" "150")
set_tests_properties(example_ssd_profiler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tuning_advisor "/root/repo/build/examples/tuning_advisor" "--ssds" "4" "--runtime-ms" "150")
set_tests_properties(example_tuning_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planner "/root/repo/build/examples/capacity_planner" "--ssds" "8" "--runtime-ms" "150")
set_tests_properties(example_capacity_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
