file(REMOVE_RECURSE
  "CMakeFiles/test_nand.dir/nand/nand_array_test.cc.o"
  "CMakeFiles/test_nand.dir/nand/nand_array_test.cc.o.d"
  "test_nand"
  "test_nand.pdb"
  "test_nand[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
