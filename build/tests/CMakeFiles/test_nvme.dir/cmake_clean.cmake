file(REMOVE_RECURSE
  "CMakeFiles/test_nvme.dir/nvme/controller_test.cc.o"
  "CMakeFiles/test_nvme.dir/nvme/controller_test.cc.o.d"
  "CMakeFiles/test_nvme.dir/nvme/ftl_property_test.cc.o"
  "CMakeFiles/test_nvme.dir/nvme/ftl_property_test.cc.o.d"
  "CMakeFiles/test_nvme.dir/nvme/ftl_test.cc.o"
  "CMakeFiles/test_nvme.dir/nvme/ftl_test.cc.o.d"
  "CMakeFiles/test_nvme.dir/nvme/smart_test.cc.o"
  "CMakeFiles/test_nvme.dir/nvme/smart_test.cc.o.d"
  "test_nvme"
  "test_nvme.pdb"
  "test_nvme[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
