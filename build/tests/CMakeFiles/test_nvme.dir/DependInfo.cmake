
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nvme/controller_test.cc" "tests/CMakeFiles/test_nvme.dir/nvme/controller_test.cc.o" "gcc" "tests/CMakeFiles/test_nvme.dir/nvme/controller_test.cc.o.d"
  "/root/repo/tests/nvme/ftl_property_test.cc" "tests/CMakeFiles/test_nvme.dir/nvme/ftl_property_test.cc.o" "gcc" "tests/CMakeFiles/test_nvme.dir/nvme/ftl_property_test.cc.o.d"
  "/root/repo/tests/nvme/ftl_test.cc" "tests/CMakeFiles/test_nvme.dir/nvme/ftl_test.cc.o" "gcc" "tests/CMakeFiles/test_nvme.dir/nvme/ftl_test.cc.o.d"
  "/root/repo/tests/nvme/smart_test.cc" "tests/CMakeFiles/test_nvme.dir/nvme/smart_test.cc.o" "gcc" "tests/CMakeFiles/test_nvme.dir/nvme/smart_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nvme/CMakeFiles/afa_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/afa_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/afa_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
