
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/host/background_test.cc" "tests/CMakeFiles/test_host.dir/host/background_test.cc.o" "gcc" "tests/CMakeFiles/test_host.dir/host/background_test.cc.o.d"
  "/root/repo/tests/host/cpu_topology_test.cc" "tests/CMakeFiles/test_host.dir/host/cpu_topology_test.cc.o" "gcc" "tests/CMakeFiles/test_host.dir/host/cpu_topology_test.cc.o.d"
  "/root/repo/tests/host/irq_test.cc" "tests/CMakeFiles/test_host.dir/host/irq_test.cc.o" "gcc" "tests/CMakeFiles/test_host.dir/host/irq_test.cc.o.d"
  "/root/repo/tests/host/kernel_config_test.cc" "tests/CMakeFiles/test_host.dir/host/kernel_config_test.cc.o" "gcc" "tests/CMakeFiles/test_host.dir/host/kernel_config_test.cc.o.d"
  "/root/repo/tests/host/scheduler_test.cc" "tests/CMakeFiles/test_host.dir/host/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/test_host.dir/host/scheduler_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/host/CMakeFiles/afa_host.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/afa_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
