file(REMOVE_RECURSE
  "CMakeFiles/afa_nvme.dir/controller.cc.o"
  "CMakeFiles/afa_nvme.dir/controller.cc.o.d"
  "CMakeFiles/afa_nvme.dir/ftl.cc.o"
  "CMakeFiles/afa_nvme.dir/ftl.cc.o.d"
  "CMakeFiles/afa_nvme.dir/smart.cc.o"
  "CMakeFiles/afa_nvme.dir/smart.cc.o.d"
  "libafa_nvme.a"
  "libafa_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afa_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
