file(REMOVE_RECURSE
  "libafa_nvme.a"
)
