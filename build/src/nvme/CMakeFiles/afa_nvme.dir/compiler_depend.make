# Empty compiler generated dependencies file for afa_nvme.
# This may be replaced when dependencies are built.
