file(REMOVE_RECURSE
  "CMakeFiles/afa_stats.dir/histogram.cc.o"
  "CMakeFiles/afa_stats.dir/histogram.cc.o.d"
  "CMakeFiles/afa_stats.dir/scatter_log.cc.o"
  "CMakeFiles/afa_stats.dir/scatter_log.cc.o.d"
  "CMakeFiles/afa_stats.dir/summary.cc.o"
  "CMakeFiles/afa_stats.dir/summary.cc.o.d"
  "CMakeFiles/afa_stats.dir/table.cc.o"
  "CMakeFiles/afa_stats.dir/table.cc.o.d"
  "libafa_stats.a"
  "libafa_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afa_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
