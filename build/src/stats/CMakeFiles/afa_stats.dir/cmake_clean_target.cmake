file(REMOVE_RECURSE
  "libafa_stats.a"
)
