# Empty dependencies file for afa_stats.
# This may be replaced when dependencies are built.
