file(REMOVE_RECURSE
  "CMakeFiles/afa_core.dir/afa_system.cc.o"
  "CMakeFiles/afa_core.dir/afa_system.cc.o.d"
  "CMakeFiles/afa_core.dir/experiment.cc.o"
  "CMakeFiles/afa_core.dir/experiment.cc.o.d"
  "CMakeFiles/afa_core.dir/geometry.cc.o"
  "CMakeFiles/afa_core.dir/geometry.cc.o.d"
  "CMakeFiles/afa_core.dir/report.cc.o"
  "CMakeFiles/afa_core.dir/report.cc.o.d"
  "CMakeFiles/afa_core.dir/system_report.cc.o"
  "CMakeFiles/afa_core.dir/system_report.cc.o.d"
  "CMakeFiles/afa_core.dir/tuning.cc.o"
  "CMakeFiles/afa_core.dir/tuning.cc.o.d"
  "libafa_core.a"
  "libafa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
