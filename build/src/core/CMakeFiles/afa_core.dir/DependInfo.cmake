
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/afa_system.cc" "src/core/CMakeFiles/afa_core.dir/afa_system.cc.o" "gcc" "src/core/CMakeFiles/afa_core.dir/afa_system.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/afa_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/afa_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/geometry.cc" "src/core/CMakeFiles/afa_core.dir/geometry.cc.o" "gcc" "src/core/CMakeFiles/afa_core.dir/geometry.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/afa_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/afa_core.dir/report.cc.o.d"
  "/root/repo/src/core/system_report.cc" "src/core/CMakeFiles/afa_core.dir/system_report.cc.o" "gcc" "src/core/CMakeFiles/afa_core.dir/system_report.cc.o.d"
  "/root/repo/src/core/tuning.cc" "src/core/CMakeFiles/afa_core.dir/tuning.cc.o" "gcc" "src/core/CMakeFiles/afa_core.dir/tuning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/afa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/afa_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/afa_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/afa_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/afa_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/afa_host.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/afa_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
