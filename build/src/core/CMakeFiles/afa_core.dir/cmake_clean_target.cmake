file(REMOVE_RECURSE
  "libafa_core.a"
)
