# Empty compiler generated dependencies file for afa_core.
# This may be replaced when dependencies are built.
