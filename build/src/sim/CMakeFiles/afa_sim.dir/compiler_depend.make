# Empty compiler generated dependencies file for afa_sim.
# This may be replaced when dependencies are built.
