file(REMOVE_RECURSE
  "libafa_sim.a"
)
