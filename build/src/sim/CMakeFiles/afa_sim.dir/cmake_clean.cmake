file(REMOVE_RECURSE
  "CMakeFiles/afa_sim.dir/config.cc.o"
  "CMakeFiles/afa_sim.dir/config.cc.o.d"
  "CMakeFiles/afa_sim.dir/event_queue.cc.o"
  "CMakeFiles/afa_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/afa_sim.dir/logging.cc.o"
  "CMakeFiles/afa_sim.dir/logging.cc.o.d"
  "CMakeFiles/afa_sim.dir/random.cc.o"
  "CMakeFiles/afa_sim.dir/random.cc.o.d"
  "CMakeFiles/afa_sim.dir/simulator.cc.o"
  "CMakeFiles/afa_sim.dir/simulator.cc.o.d"
  "CMakeFiles/afa_sim.dir/trace.cc.o"
  "CMakeFiles/afa_sim.dir/trace.cc.o.d"
  "libafa_sim.a"
  "libafa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
