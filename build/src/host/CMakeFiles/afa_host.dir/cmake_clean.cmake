file(REMOVE_RECURSE
  "CMakeFiles/afa_host.dir/background.cc.o"
  "CMakeFiles/afa_host.dir/background.cc.o.d"
  "CMakeFiles/afa_host.dir/cpu_topology.cc.o"
  "CMakeFiles/afa_host.dir/cpu_topology.cc.o.d"
  "CMakeFiles/afa_host.dir/irq.cc.o"
  "CMakeFiles/afa_host.dir/irq.cc.o.d"
  "CMakeFiles/afa_host.dir/kernel_config.cc.o"
  "CMakeFiles/afa_host.dir/kernel_config.cc.o.d"
  "CMakeFiles/afa_host.dir/scheduler.cc.o"
  "CMakeFiles/afa_host.dir/scheduler.cc.o.d"
  "libafa_host.a"
  "libafa_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afa_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
