# Empty compiler generated dependencies file for afa_host.
# This may be replaced when dependencies are built.
