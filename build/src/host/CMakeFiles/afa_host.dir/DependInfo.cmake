
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/background.cc" "src/host/CMakeFiles/afa_host.dir/background.cc.o" "gcc" "src/host/CMakeFiles/afa_host.dir/background.cc.o.d"
  "/root/repo/src/host/cpu_topology.cc" "src/host/CMakeFiles/afa_host.dir/cpu_topology.cc.o" "gcc" "src/host/CMakeFiles/afa_host.dir/cpu_topology.cc.o.d"
  "/root/repo/src/host/irq.cc" "src/host/CMakeFiles/afa_host.dir/irq.cc.o" "gcc" "src/host/CMakeFiles/afa_host.dir/irq.cc.o.d"
  "/root/repo/src/host/kernel_config.cc" "src/host/CMakeFiles/afa_host.dir/kernel_config.cc.o" "gcc" "src/host/CMakeFiles/afa_host.dir/kernel_config.cc.o.d"
  "/root/repo/src/host/scheduler.cc" "src/host/CMakeFiles/afa_host.dir/scheduler.cc.o" "gcc" "src/host/CMakeFiles/afa_host.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/afa_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
