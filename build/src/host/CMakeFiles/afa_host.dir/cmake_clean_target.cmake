file(REMOVE_RECURSE
  "libafa_host.a"
)
