# Empty dependencies file for afa_workload.
# This may be replaced when dependencies are built.
