file(REMOVE_RECURSE
  "libafa_workload.a"
)
