file(REMOVE_RECURSE
  "CMakeFiles/afa_workload.dir/fio_job.cc.o"
  "CMakeFiles/afa_workload.dir/fio_job.cc.o.d"
  "CMakeFiles/afa_workload.dir/fio_thread.cc.o"
  "CMakeFiles/afa_workload.dir/fio_thread.cc.o.d"
  "CMakeFiles/afa_workload.dir/pts.cc.o"
  "CMakeFiles/afa_workload.dir/pts.cc.o.d"
  "libafa_workload.a"
  "libafa_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
