# Empty dependencies file for afa_pcie.
# This may be replaced when dependencies are built.
