
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcie/afa_topology.cc" "src/pcie/CMakeFiles/afa_pcie.dir/afa_topology.cc.o" "gcc" "src/pcie/CMakeFiles/afa_pcie.dir/afa_topology.cc.o.d"
  "/root/repo/src/pcie/fabric.cc" "src/pcie/CMakeFiles/afa_pcie.dir/fabric.cc.o" "gcc" "src/pcie/CMakeFiles/afa_pcie.dir/fabric.cc.o.d"
  "/root/repo/src/pcie/link.cc" "src/pcie/CMakeFiles/afa_pcie.dir/link.cc.o" "gcc" "src/pcie/CMakeFiles/afa_pcie.dir/link.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/afa_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
