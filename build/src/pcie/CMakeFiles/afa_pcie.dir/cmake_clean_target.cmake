file(REMOVE_RECURSE
  "libafa_pcie.a"
)
