file(REMOVE_RECURSE
  "CMakeFiles/afa_pcie.dir/afa_topology.cc.o"
  "CMakeFiles/afa_pcie.dir/afa_topology.cc.o.d"
  "CMakeFiles/afa_pcie.dir/fabric.cc.o"
  "CMakeFiles/afa_pcie.dir/fabric.cc.o.d"
  "CMakeFiles/afa_pcie.dir/link.cc.o"
  "CMakeFiles/afa_pcie.dir/link.cc.o.d"
  "libafa_pcie.a"
  "libafa_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afa_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
