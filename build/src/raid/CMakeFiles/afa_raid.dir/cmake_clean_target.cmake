file(REMOVE_RECURSE
  "libafa_raid.a"
)
