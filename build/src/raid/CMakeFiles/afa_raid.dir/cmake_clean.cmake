file(REMOVE_RECURSE
  "CMakeFiles/afa_raid.dir/volume.cc.o"
  "CMakeFiles/afa_raid.dir/volume.cc.o.d"
  "libafa_raid.a"
  "libafa_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afa_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
