# Empty compiler generated dependencies file for afa_raid.
# This may be replaced when dependencies are built.
