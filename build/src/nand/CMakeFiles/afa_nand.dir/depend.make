# Empty dependencies file for afa_nand.
# This may be replaced when dependencies are built.
