file(REMOVE_RECURSE
  "CMakeFiles/afa_nand.dir/nand_array.cc.o"
  "CMakeFiles/afa_nand.dir/nand_array.cc.o.d"
  "libafa_nand.a"
  "libafa_nand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afa_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
