file(REMOVE_RECURSE
  "libafa_nand.a"
)
