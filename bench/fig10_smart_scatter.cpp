/**
 * @file
 * Fig. 10: scatter plot of raw latency samples from 32 SSDs under the
 * tuned (IRQ-affinity) configuration, exposing the periodic SMART
 * spike clusters. The paper logged 32 of the 64 SSDs because
 * per-sample logging on all 64 perturbed the measurement; we keep the
 * same workflow via --scatter-devices.
 *
 * Prints the spike-cluster analysis (count, period, peak) and a
 * strided sample dump suitable for plotting.
 */

#include "common.hh"

#include "sim/config.hh"

int
main(int argc, char **argv)
{
    afa::sim::Config cfg;
    cfg.parseArgs(argc - 1, argv + 1);
    auto opts = afa::bench::parseOptions(argc, argv);
    opts.params.profile = afa::core::TuningProfile::IrqAffinity;
    opts.params.scatterDevices = static_cast<unsigned>(
        cfg.getUint("scatter_devices", 32));
    auto result = afa::core::ExperimentRunner::run(opts.params);

    afa::bench::reportFigure(
        "Fig. 10", "latency samples from 32 SSDs (SMART spikes)",
        result, opts);

    const auto &scatter = result.scatter;
    auto threshold = afa::sim::usec(
        static_cast<double>(cfg.getUint("spike_threshold_us", 150)));
    auto clusters = scatter.clusters(threshold, afa::sim::msec(50));
    std::printf("raw samples logged: %zu (devices 0-%u)\n",
                scatter.size(), opts.params.scatterDevices - 1);
    std::printf("spike clusters above %.0f us: %zu\n",
                afa::sim::toUsec(threshold), clusters.size());
    afa::stats::Table table({"cluster", "start_ms", "samples",
                             "peak_us", "first_sample_index"});
    for (std::size_t i = 0; i < clusters.size() && i < 20; ++i) {
        const auto &c = clusters[i];
        table.addRow({afa::stats::Table::num(std::uint64_t(i)),
                      afa::stats::Table::num(afa::sim::toMsec(c.start),
                                             1),
                      afa::stats::Table::num(c.samples),
                      afa::stats::Table::num(
                          afa::sim::toUsec(c.peakLatency), 1),
                      afa::stats::Table::num(c.firstIndex)});
    }
    afa::bench::printTable(table, opts.csv);
    auto period = scatter.clusterPeriod(threshold, afa::sim::msec(50));
    std::printf("\nmedian cluster interval: %.1f ms "
                "(configured SMART period: %.1f ms per SSD, %u SSDs "
                "logged)\n",
                afa::sim::toMsec(period),
                afa::sim::toMsec(opts.params.smartPeriod),
                opts.params.scatterDevices);
    if (cfg.getBool("dump_samples", false))
        std::fputs(scatter.toText(100).c_str(), stdout);
    return 0;
}
