/**
 * @file
 * Ablation A2 (the paper's stated future work): latency in non-FOB
 * (aged) SSD states. The paper keeps every drive fresh-out-of-box so
 * reads never touch NAND and garbage collection never runs; here we
 * precondition the drives and add write pressure so mapped reads and
 * GC interleave with the measured reads.
 *
 * Three states on the fully tuned (exp-firmware) stack:
 *   FOB            - the paper's methodology (zero-fill fast path)
 *   aged, reads    - 100% preconditioned, pure random reads (NAND tR)
 *   aged, mixed    - preconditioned + 30% random writes on a low-OP
 *                    FTL: GC relocations collide with reads
 */

#include "common.hh"

using namespace afa::core;

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);
    opts.params.profile = TuningProfile::ExpFirmware;
    if (!opts.params.ssds || opts.params.ssds > 16)
        opts.params.ssds = 16; // NAND-path runs are event-heavy

    afa::core::RunPlan plan;
    auto add_case = [&](const char *name, double precondition,
                        const char *jobspec, double over_provision) {
        auto params = opts.params;
        params.preconditionFraction = precondition;
        params.job = afa::workload::FioJob::parse(jobspec);
        params.ftl.overProvision = over_provision;
        plan.add(name, params);
    };

    add_case("FOB (paper)", 0.0, "rw=randread bs=4k iodepth=1", 1.25);
    add_case("aged, read-only", 1.0, "rw=randread bs=4k iodepth=1",
             1.25);
    add_case("aged, 30% writes", 1.0,
             "rw=randrw rwmixread=70 bs=4k iodepth=1", 1.09);

    auto run = afa::bench::executePlan(plan, opts);

    const char *names[] = {"FOB (paper)", "aged, read-only",
                           "aged, 30% writes"};
    std::vector<std::pair<std::string, afa::stats::LadderAggregate>>
        rows;
    for (std::size_t i = 0; i < run.results.size(); ++i) {
        const auto &result = run.results[i];
        std::printf("--- %s: avg %.1f us, p99.99 %.1f us, max(mean) "
                    "%.1f us, ios %llu ---\n",
                    names[i], result.aggregate.meanUs[0],
                    result.aggregate.meanUs[3],
                    result.aggregate.meanUs[6],
                    (unsigned long long)result.totalIos);
        rows.emplace_back(names[i], result.aggregate);
    }

    std::printf("\n=== A2: FOB vs aged drive states (usec) ===\n");
    afa::bench::printTable(comparisonTable(rows), opts.csv);
    afa::bench::reportRunMetrics(run, opts);
    std::printf("\nExpected shape: aged reads sit on NAND tR (~50 us "
                "higher avg);\nwrite pressure adds GC die/channel "
                "contention in the tail --\nthe effect the paper "
                "deferred to future work.\n");
    return 0;
}
