/**
 * @file
 * Fig. 7: latency distributions after `chrt -f 99` on every FIO
 * process. Expected shape: converged vs Fig. 6, worst case dropping
 * from milliseconds to the SMART-stall scale (paper: ~600 us).
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);
    opts.params.profile = afa::core::TuningProfile::Chrt;
    auto result = afa::core::ExperimentRunner::run(opts.params);
    afa::bench::reportFigure(
        "Fig. 7", "after assigning the highest priority to FIO",
        result, opts);
    return 0;
}
