/**
 * @file
 * Fig. 6: latency distributions of 64 SSDs under the default Linux
 * configuration. Expected shape: tight up to 4-nines, wide spread
 * from 5-nines, worst case in the milliseconds (paper: ~5 ms).
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);
    opts.params.profile = afa::core::TuningProfile::Default;
    auto result = afa::core::ExperimentRunner::run(opts.params);
    afa::bench::reportFigure(
        "Fig. 6", "64-SSD latency distributions, default kernel",
        result, opts);
    return 0;
}
