/**
 * @file
 * Fig. 8: latency distributions after the Section IV-C boot options
 * (isolcpus, nohz_full, rcu_nocbs, processor.max_cstate=1,
 * idle=poll) on top of chrt. Expected: tighter distributions than
 * Fig. 7; per-SSD divergence from IRQ misplacement remains.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);
    opts.params.profile = afa::core::TuningProfile::Isolcpus;
    auto result = afa::core::ExperimentRunner::run(opts.params);
    afa::bench::reportFigure("Fig. 8", "after setting CPU isolation",
                             result, opts);
    return 0;
}
