/**
 * @file
 * google-benchmark microbenchmarks for the simulator hot paths: the
 * event queue, RNG, histogram, scheduler round trips, and fabric
 * transfers. These bound the wall-clock cost of the figure benches
 * (a Fig. 6 run executes ~10^8 events).
 */

#include <benchmark/benchmark.h>

#include "core/experiment.hh"
#include "host/scheduler.hh"
#include "nand/nand_array.hh"
#include "nvme/controller.hh"
#include "obs/span_log.hh"
#include "obs/telemetry.hh"
#include "pcie/afa_topology.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/shard.hh"
#include "sim/simulator.hh"
#include "stats/histogram.hh"
#include "stats/scatter_log.hh"
#include "workload/arrival.hh"

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    afa::sim::EventQueue q;
    afa::sim::Tick when = 0;
    std::uint64_t t = 0;
    for (auto _ : state) {
        q.schedule(++t, [] {});
        q.runNext(when);
    }
    benchmark::DoNotOptimize(when);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_EventQueueDeepHeap(benchmark::State &state)
{
    // Schedule/run against a standing population of pending events.
    afa::sim::EventQueue q;
    const std::int64_t depth = state.range(0);
    afa::sim::Rng rng(1);
    for (std::int64_t i = 0; i < depth; ++i)
        q.schedule(rng.uniformInt(1, 1u << 30), [] {});
    afa::sim::Tick when = 0;
    for (auto _ : state) {
        q.schedule(rng.uniformInt(1, 1u << 30), [] {});
        q.runNext(when);
    }
    benchmark::DoNotOptimize(when);
}
BENCHMARK(BM_EventQueueDeepHeap)->Arg(1024)->Arg(65536);

void
BM_EventQueueCapturingEvent(benchmark::State &state)
{
    // The shape of a real simulator event: an object pointer plus a
    // few words of arguments (24-40 bytes) -- past std::function's
    // 16-byte inline buffer, inside EventFn's.
    afa::sim::EventQueue q;
    afa::sim::Tick when = 0;
    std::uint64_t t = 0;
    struct Target
    {
        std::uint64_t acc = 0;
    } target;
    std::uint64_t cmd_id = 7, bytes = 4096, cpu = 3;
    for (auto _ : state) {
        q.schedule(++t, [&target, cmd_id, bytes, cpu] {
            target.acc += cmd_id + bytes + cpu;
        });
        q.runNext(when);
    }
    benchmark::DoNotOptimize(target.acc);
    benchmark::DoNotOptimize(when);
}
BENCHMARK(BM_EventQueueCapturingEvent);

void
BM_EventQueueCancel(benchmark::State &state)
{
    afa::sim::EventQueue q;
    std::uint64_t t = 0;
    for (auto _ : state) {
        auto h = q.schedule(++t, [] {});
        q.cancel(h);
    }
}
BENCHMARK(BM_EventQueueCancel);

void
BM_RngNext(benchmark::State &state)
{
    afa::sim::Rng rng(42);
    std::uint64_t acc = 0;
    for (auto _ : state)
        acc ^= rng.next();
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngNext);

void
BM_RngLognormal(benchmark::State &state)
{
    afa::sim::Rng rng(42);
    double acc = 0;
    for (auto _ : state)
        acc += rng.lognormal(30000.0, 0.1);
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngLognormal);

void
BM_HistogramRecord(benchmark::State &state)
{
    afa::stats::Histogram h;
    afa::sim::Rng rng(42);
    for (auto _ : state)
        h.record(static_cast<afa::sim::Tick>(
            rng.lognormal(30000.0, 0.3)));
    benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void
BM_HistogramQuantile(benchmark::State &state)
{
    afa::stats::Histogram h;
    afa::sim::Rng rng(42);
    for (int i = 0; i < 100000; ++i)
        h.record(static_cast<afa::sim::Tick>(
            rng.lognormal(30000.0, 0.3)));
    double q = 0.9;
    afa::sim::Tick acc = 0;
    for (auto _ : state) {
        acc ^= h.quantile(q);
        q = q >= 0.9999 ? 0.9 : q + 0.00001;
    }
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_HistogramQuantile);

void
BM_SchedulerRunForRoundTrip(benchmark::State &state)
{
    // One task executing back-to-back 2 us segments: the FIO
    // submit/reap hot path.
    afa::sim::Simulator sim(1);
    afa::host::KernelConfig cfg;
    cfg.sched.rcuCallbackInterval = afa::sim::sec(100000);
    afa::host::Scheduler sched(sim, "sched",
                               afa::host::CpuTopology{}, cfg);
    afa::host::TaskParams tp;
    tp.name = "t";
    auto task = sched.createTask(tp);
    for (auto _ : state) {
        bool done = false;
        sched.runFor(task, afa::sim::usec(2), [&] { done = true; });
        while (!done)
            sim.runSteps(1);
    }
}
BENCHMARK(BM_SchedulerRunForRoundTrip);

void
BM_FabricFourHopTransfer(benchmark::State &state)
{
    afa::sim::Simulator sim(1);
    afa::pcie::Fabric fabric(sim, "fabric");
    auto topo = buildAfaTopology(fabric, {});
    unsigned dev = 0;
    for (auto _ : state) {
        bool done = false;
        fabric.send(topo.ssds[dev % 64], topo.host, 4096,
                    [&] { done = true; });
        while (!done)
            sim.runSteps(1);
        ++dev;
    }
}
BENCHMARK(BM_FabricFourHopTransfer);

void
BM_FabricSendUncontended(benchmark::State &state)
{
    // QD1 data return over the idle four-hop path: the fabric's
    // single-event fast path (one delivery event, no chain lambdas).
    afa::sim::Simulator sim(1);
    afa::pcie::Fabric fabric(sim, "fabric");
    auto topo = buildAfaTopology(fabric, {});
    for (auto _ : state) {
        bool done = false;
        fabric.send(topo.ssds[0], topo.host, 4096, [&] { done = true; });
        while (!done)
            sim.runSteps(1);
    }
}
BENCHMARK(BM_FabricSendUncontended);

void
BM_FabricSendContended(benchmark::State &state)
{
    // A burst of 8 data returns funnelling into the shared uplink:
    // after the first packet the rest take the per-hop fallback, so
    // this bounds the cost of the contended chain model. One
    // iteration = 8 sends + drain.
    afa::sim::Simulator sim(1);
    afa::pcie::Fabric fabric(sim, "fabric");
    auto topo = buildAfaTopology(fabric, {});
    for (auto _ : state) {
        unsigned pending = 8;
        for (unsigned d = 0; d < 8; ++d)
            fabric.send(topo.ssds[d * 8], topo.host, 4096,
                        [&] { --pending; });
        while (pending != 0)
            sim.runSteps(1);
    }
}
BENCHMARK(BM_FabricSendContended);

/**
 * One SSD stack driven directly (no fabric, loopback transport): the
 * device command path that the fast path collapses. Arg(1) runs the
 * single-event fast path, Arg(0) forces the chained reference model,
 * so the Arg(1)/Arg(0) ratio is the in-binary A/B -- both sides are
 * tick-identical by the differential tests, only event count moves.
 */
struct DeviceBench
{
    afa::sim::Simulator sim{7};
    afa::nand::NandArray nand;
    afa::nvme::Controller ctrl;
    bool done = false;
    unsigned pending = 0;

    explicit DeviceBench(bool fast_path)
        : nand(sim, "nand", afa::nand::NandParams{}),
          ctrl(sim, "nvme0",
               [] {
                   afa::nvme::FirmwareConfig fw;
                   fw.smart.enabled = false;
                   return fw;
               }(),
               nand, afa::nvme::FtlParams{})
    {
        ctrl.setFastPath(fast_path);
        ctrl.setTransport([this](std::uint32_t, std::uint64_t,
                                 afa::sim::EventFn fn) {
            sim.scheduleAfter(afa::sim::usec(2), std::move(fn));
        });
        ctrl.setCompletionHandler([this](
                                      const afa::nvme::NvmeCompletion &) {
            done = true;
            if (pending != 0)
                --pending;
        });
        ctrl.start();
        ctrl.ftl().precondition(0.5);
    }

    void
    drain()
    {
        while (!done)
            sim.runSteps(1);
    }
};

void
BM_DeviceReadCommand(benchmark::State &state)
{
    // QD1 mapped 4 KiB reads: the uncontended hot path of every
    // random-read figure.
    DeviceBench d(state.range(0) != 0);
    const std::uint64_t mapped = d.ctrl.ftl().logicalBlocks() / 2;
    std::uint64_t id = 1;
    for (auto _ : state) {
        afa::nvme::NvmeCommand cmd;
        cmd.cmdId = id;
        cmd.tag = id;
        cmd.op = afa::nvme::Op::Read;
        cmd.lba = (id * 7919) % mapped;
        cmd.bytes = afa::nvme::kLogicalBlockBytes;
        ++id;
        d.done = false;
        d.ctrl.submit(cmd);
        d.drain();
    }
}
BENCHMARK(BM_DeviceReadCommand)->Arg(0)->Arg(1);

void
BM_DeviceWriteCommand(benchmark::State &state)
{
    // QD1 random 4 KiB writes: the collapsed write-buffer triple when
    // the placement is inert, the chained model when it is not (page
    // programs, GC).
    DeviceBench d(state.range(0) != 0);
    std::uint64_t id = 1;
    for (auto _ : state) {
        afa::nvme::NvmeCommand cmd;
        cmd.cmdId = id;
        cmd.tag = id;
        cmd.op = afa::nvme::Op::Write;
        cmd.lba = (id * 31) % 256;
        cmd.bytes = afa::nvme::kLogicalBlockBytes;
        ++id;
        d.done = false;
        d.ctrl.submit(cmd);
        d.drain();
    }
}
BENCHMARK(BM_DeviceWriteCommand)->Arg(0)->Arg(1);

void
BM_DeviceCommandContended(benchmark::State &state)
{
    // An 8-deep same-tick burst ending in a flush: the flush is
    // always chained and demotes every in-flight fast command, so
    // this bounds the demotion + fallback cost the fast path adds to
    // contended traffic. One iteration = 8 commands + full drain.
    DeviceBench d(state.range(0) != 0);
    const std::uint64_t mapped = d.ctrl.ftl().logicalBlocks() / 2;
    std::uint64_t id = 1;
    for (auto _ : state) {
        d.pending = 8;
        for (unsigned b = 0; b < 8; ++b) {
            afa::nvme::NvmeCommand cmd;
            cmd.cmdId = id;
            cmd.tag = id;
            if (b == 7)
                cmd.op = afa::nvme::Op::Flush;
            else if (b == 6) {
                cmd.op = afa::nvme::Op::Write;
                cmd.lba = (id * 31) % 256;
                cmd.bytes = afa::nvme::kLogicalBlockBytes;
            } else {
                cmd.op = afa::nvme::Op::Read;
                cmd.lba = (id * 7919) % mapped;
                cmd.bytes = afa::nvme::kLogicalBlockBytes;
            }
            ++id;
            d.ctrl.submit(cmd);
        }
        while (d.pending != 0)
            d.sim.runSteps(1);
    }
}
BENCHMARK(BM_DeviceCommandContended)->Arg(0)->Arg(1);

void
BM_ShardedEventThroughput(benchmark::State &state)
{
    // The parallel core's raw event rate at K shards: every shard
    // runs a self-rescheduling chain (50-tick period) and every
    // fourth event posts across to the next shard through the
    // mailbox. Arg(1) is the serial baseline; the ratio Arg(K)/Arg(1)
    // is the barrier + mailbox overhead (a win needs >= K cores, a
    // 1-core host only measures the overhead).
    const unsigned shards = static_cast<unsigned>(state.range(0));
    constexpr afa::sim::Tick kHorizon = 200000;
    constexpr afa::sim::Tick kPeriod = 50;
    std::uint64_t events = 0;
    for (auto _ : state) {
        afa::sim::Simulator sim(42, shards);
        sim.setLookahead(afa::sim::TickDelta{100});
        struct Chain
        {
            afa::sim::Simulator &sim;
            unsigned shards;
            unsigned n = 0;
            void
            step()
            {
                ++n;
                if (sim.now() + kPeriod > kHorizon)
                    return;
                if (n % 4 == 0) {
                    const unsigned next =
                        (afa::sim::currentShard() + 1) % shards;
                    sim.scheduleOnShard(next, sim.now() + 100,
                                        [this] { step(); },
                                        /*internal=*/false,
                                        /*order=*/1);
                } else {
                    sim.scheduleAfter(kPeriod, [this] { step(); });
                }
            }
        };
        std::vector<std::unique_ptr<Chain>> chains;
        for (unsigned s = 0; s < shards; ++s) {
            chains.push_back(
                std::make_unique<Chain>(Chain{sim, shards}));
            afa::sim::ShardScope scope(sim, s);
            Chain *c = chains.back().get();
            sim.scheduleAt(0, [c] { c->step(); });
        }
        events += sim.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ShardedEventThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_ShardedFig06Throughput(benchmark::State &state)
{
    // End-to-end sharded run of a reduced Fig. 6 config (8 SSDs,
    // 50 ms). items/s is model events per wall second -- the number
    // BENCH_simcore.json tracks for serial vs --shards={2,4}. The
    // result is bit-identical at every Arg; only the rate moves.
    afa::core::ExperimentParams params;
    params.profile = afa::core::TuningProfile::Default;
    params.ssds = 8;
    params.runtime = afa::sim::msec(50);
    params.smartPeriod = afa::sim::msec(25);
    params.irqBalanceInterval = afa::sim::msec(25);
    params.seed = 7;
    params.shards = static_cast<unsigned>(state.range(0));
    std::uint64_t events = 0;
    for (auto _ : state)
        events += afa::core::ExperimentRunner::run(params)
                      .simulatedEvents;
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ShardedFig06Throughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_SpanLogRecordTelemetry(benchmark::State &state)
{
    // SpanLog::record() with the telemetry stage feed detached
    // (Arg 0) versus attached (Arg 1): the Arg(1)/Arg(0) ratio is
    // the per-span cost of the windowed histograms + ACT counters.
    // Both Args actively record, so the cross-build overhead gate
    // excludes this benchmark (tools/check_trace_overhead.py
    // --exclude) -- in the compiled-out baseline the sites no-op and
    // the ratio would measure tracing itself, not its disabled cost.
    afa::obs::TraceParams tp;
    tp.mask = afa::obs::kAllCategories;
    afa::obs::SpanLog log(tp);
    afa::obs::TelemetryParams telp;
    telp.window = afa::sim::msec(1);
    afa::obs::Telemetry telemetry(telp);
    if (state.range(0) != 0)
        log.setTelemetry(&telemetry);
    afa::sim::Tick t = 0;
    std::uint64_t io = 0;
    for (auto _ : state) {
        t += 1000;
        log.record(afa::obs::Stage::Complete, ++io, t - 900, t,
                   /*track=*/3);
    }
    benchmark::DoNotOptimize(log.recorded());
}
BENCHMARK(BM_SpanLogRecordTelemetry)->Arg(0)->Arg(1);

void
BM_TelemetryWindowedRun(benchmark::State &state)
{
    // End-to-end cost of an enabled timeline: the reduced Fig. 6 run
    // with --telemetry 5 (internal span log, every window sampled).
    // Compare against BM_ShardedFig06Throughput/1 in the same binary
    // for the enabled-vs-off ratio; the cross-build gate excludes it
    // like BM_SpanLogRecordTelemetry. The telemetry-off cost is
    // gated instead through the always-on self-profiling code that
    // BM_ShardedEventThroughput and BM_ShardedFig06Throughput
    // exercise (scheduleOnShard, barriers, planRound).
    afa::core::ExperimentParams params;
    params.profile = afa::core::TuningProfile::Default;
    params.ssds = 8;
    params.runtime = afa::sim::msec(50);
    params.smartPeriod = afa::sim::msec(25);
    params.irqBalanceInterval = afa::sim::msec(25);
    params.seed = 7;
    params.telemetryWindow = afa::sim::msec(5);
    std::uint64_t events = 0;
    for (auto _ : state)
        events += afa::core::ExperimentRunner::run(params)
                      .simulatedEvents;
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_TelemetryWindowedRun)->Unit(benchmark::kMillisecond);

void
BM_ScatterLogRecord(benchmark::State &state)
{
    afa::stats::ScatterLog log(1u << 20);
    afa::sim::Rng rng(42);
    afa::sim::Tick when = 0;
    for (auto _ : state) {
        if (log.size() == (1u << 20))
            log.clear();
        when += 10000;
        log.record(when,
                   static_cast<afa::sim::Tick>(
                       rng.lognormal(90000.0, 0.3)),
                   static_cast<std::uint32_t>(when >> 14 & 31));
    }
    benchmark::DoNotOptimize(log.size());
}
BENCHMARK(BM_ScatterLogRecord);

void
BM_OpenLoopArrival(benchmark::State &state)
{
    // The per-arrival draw sequence of the open-loop engine: one
    // inter-arrival gap (Arg 0 = Poisson, Arg 1 = bursty MMPP), one
    // zipfian device pick and one LBA/op-mix draw. Bounds the
    // generation overhead fig_frontier adds on top of the I/O path.
    afa::workload::ArrivalParams ap;
    ap.kind = state.range(0) ? afa::workload::ArrivalKind::Bursty
                             : afa::workload::ArrivalKind::Poisson;
    ap.ratePerSec = 400000.0;
    afa::workload::ArrivalProcess arrivals(ap);
    afa::workload::ZipfGenerator zipf(64, 0.9);
    afa::sim::Rng rng(42);
    afa::sim::Tick when = 0;
    std::uint64_t acc = 0;
    for (auto _ : state) {
        when += arrivals.nextGap(rng);
        acc ^= zipf.next(rng);
        acc ^= rng.uniformInt(0, 262143);
        acc ^= rng.chance(0.7);
    }
    benchmark::DoNotOptimize(when);
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_OpenLoopArrival)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
