# Re-runs the pinned fig_fault_tail telemetry configuration and fails
# when the windowed timeline JSONL drifts from the committed golden.
# The artifact is fully deterministic (DESIGN.md §14): a serial run at
# a fixed seed emits no wall-clock fields, so any diff is a real model
# or format change. To regenerate after an intentional change:
#
#   build/bench/fig_fault_tail --width 8 --runtime-ms 300 --seed 7 \
#       --telemetry 25 \
#       --telemetry-out bench/golden/fig_fault_tail_telemetry.jsonl
#
# Invoked by ctest with -DBIN=, -DGOLDEN=, -DOUT= (see
# bench/CMakeLists.txt).
execute_process(
    COMMAND ${BIN} --width 8 --runtime-ms 300 --seed 7
            --telemetry 25 --telemetry-out ${OUT}
    RESULT_VARIABLE run_rc
    OUTPUT_QUIET)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "fig_fault_tail exited with ${run_rc}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${GOLDEN} ${OUT}
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "telemetry timeline ${OUT} drifted from golden ${GOLDEN}; "
        "regenerate the golden if the change is intentional (command "
        "in bench/golden/run_and_compare.cmake)")
endif()
