# Re-runs a pinned bench telemetry configuration and fails when the
# windowed timeline JSONL drifts from the committed golden. The
# artifacts are fully deterministic (DESIGN.md §14): a serial run at a
# fixed seed emits no wall-clock fields, so any diff is a real model
# or format change. To regenerate after an intentional change, run the
# bench with the ARGS below plus --telemetry-out <golden path>:
#
#   build/bench/fig_fault_tail --width 8 --runtime-ms 300 --seed 7 \
#       --telemetry 25 \
#       --telemetry-out bench/golden/fig_fault_tail_telemetry.jsonl
#
#   build/bench/fig_frontier --rates 80000,240000 --runtime-ms 200 \
#       --seed 7 --streams 2 --telemetry 25 \
#       --telemetry-out bench/golden/fig_frontier_telemetry.jsonl
#
# Invoked by ctest with -DBIN=, -DARGS=, -DGOLDEN=, -DOUT= (see
# bench/CMakeLists.txt).
separate_arguments(bench_args UNIX_COMMAND "${ARGS}")
execute_process(
    COMMAND ${BIN} ${bench_args} --telemetry-out ${OUT}
    RESULT_VARIABLE run_rc
    OUTPUT_QUIET)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "${BIN} exited with ${run_rc}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${GOLDEN} ${OUT}
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "telemetry timeline ${OUT} drifted from golden ${GOLDEN}; "
        "regenerate the golden if the change is intentional (command "
        "in bench/golden/run_and_compare.cmake)")
endif()
