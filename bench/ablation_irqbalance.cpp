/**
 * @file
 * Ablation A3: sensitivity to the irqbalance rescan interval. The
 * paper stops irqbalance entirely (Section IV-D); this sweep shows
 * how the per-SSD divergence scales with how often the daemon
 * shuffles busy vectors, from an aggressive 250 ms to fully off.
 */

#include "common.hh"

using namespace afa::core;

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);
    opts.params.profile = TuningProfile::Isolcpus;

    Geometry geometry(afa::host::CpuTopology(opts.params.topology),
                      opts.params.ssds);
    std::vector<std::pair<std::string, afa::stats::LadderAggregate>>
        rows;

    struct Case
    {
        const char *name;
        afa::sim::Tick interval; // 0 = disabled
        bool pinned;
    };
    const Case cases[] = {
        {"rescan 250ms", afa::sim::msec(250), false},
        {"rescan 1s", afa::sim::sec(1), false},
        {"rescan 4s", afa::sim::sec(4), false},
        {"irqbalance off", 0, false},
        {"pinned (paper)", 0, true},
    };

    afa::core::RunPlan plan;
    for (const Case &c : cases) {
        TuningConfig cfg = TuningConfig::forProfile(
            c.pinned ? TuningProfile::IrqAffinity
                     : TuningProfile::Isolcpus,
            geometry);
        if (!c.pinned)
            cfg.kernel.irq.irqBalanceEnabled = c.interval > 0;
        auto params = opts.params;
        params.tuningOverride = cfg;
        params.irqBalanceInterval =
            c.interval > 0 ? c.interval : afa::sim::sec(1);
        plan.add(c.name, params);
    }
    auto run = afa::bench::executePlan(plan, opts);

    for (std::size_t i = 0; i < run.results.size(); ++i) {
        const auto &result = run.results[i];
        std::printf("--- %s: stddev(avg) %.2f us, stddev(p99.99) "
                    "%.1f us ---\n",
                    cases[i].name, result.aggregate.stddevUs[0],
                    result.aggregate.stddevUs[3]);
        rows.emplace_back(cases[i].name, result.aggregate);
    }
    std::printf("\n=== A3: irqbalance interval sweep (usec) ===\n");
    afa::bench::printTable(comparisonTable(rows), opts.csv);
    afa::bench::reportRunMetrics(run, opts);
    std::printf("\nNote: 'irqbalance off' keeps the driver's default "
                "queue-to-CPU\nspread, so it converges like pinning; "
                "the daemon is what breaks\nthe affinity.\n");
    return 0;
}
