/**
 * @file
 * Shared plumbing for the figure benches: option parsing into
 * ExperimentParams and the standard report block.
 *
 * Common flags:
 *   --ssds N          devices (default 64, the paper's host slice)
 *   --runtime-ms M    per-run measurement (default 4000; the paper
 *                     ran 120000 -- pass it for full fidelity)
 *   --seed S          root random seed
 *   --smart-period-ms SMART cadence (default 1000; paper ~30000,
 *                     scaled so spikes-per-run matches 120s/30s)
 *   --irqbalance-ms   irqbalance rescan cadence (default 1000;
 *                     daemon default 10000, same scaling)
 *   --csv             emit CSV instead of aligned tables
 *   --per-device      also print the full 64-row per-device ladder
 *   --report          append the system attribution report
 */

#ifndef AFA_BENCH_COMMON_HH
#define AFA_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "core/experiment.hh"
#include "core/report.hh"
#include "sim/config.hh"

namespace afa::bench {

struct BenchOptions
{
    afa::core::ExperimentParams params;
    bool csv = false;
    bool perDevice = false;
};

inline BenchOptions
parseOptions(int argc, char **argv)
{
    afa::sim::Config cfg;
    cfg.parseArgs(argc - 1, argv + 1);
    BenchOptions opts;
    auto &p = opts.params;
    p.ssds = static_cast<unsigned>(cfg.getUint("ssds", 64));
    p.runtime = afa::sim::msec(
        static_cast<double>(cfg.getUint("runtime_ms", 4000)));
    p.seed = cfg.getUint("seed", 1);
    p.smartPeriod = afa::sim::msec(
        static_cast<double>(cfg.getUint("smart_period_ms", 1000)));
    p.irqBalanceInterval = afa::sim::msec(
        static_cast<double>(cfg.getUint("irqbalance_ms", 1000)));
    p.job = afa::workload::FioJob::parse(
        cfg.getString("job", "rw=randread bs=4k iodepth=1"));
    opts.csv = cfg.getBool("csv", false);
    opts.perDevice = cfg.getBool("per_device", false);
    p.captureSystemReport = cfg.getBool("report", false);
    return opts;
}

inline void
printTable(const afa::stats::Table &table, bool csv)
{
    if (csv)
        std::fputs(table.toCsv().c_str(), stdout);
    else
        table.print();
}

/** The standard block every figure bench prints. */
inline void
reportFigure(const char *figure, const char *caption,
             const afa::core::ExperimentResult &result,
             const BenchOptions &opts)
{
    std::printf("=== %s: %s ===\n", figure, caption);
    std::fputs(afa::core::describeExperiment(result).c_str(), stdout);
    std::printf("\nlatency envelope across %zu devices (usec):\n",
                result.perDevice.size());
    printTable(afa::core::envelopeTable(result), opts.csv);
    if (opts.perDevice) {
        std::printf("\nper-device ladder (usec):\n");
        printTable(afa::core::perDeviceTable(result), opts.csv);
    }
    if (!result.systemReportText.empty())
        std::printf("\n%s", result.systemReportText.c_str());
    std::printf("\n");
}

} // namespace afa::bench

#endif // AFA_BENCH_COMMON_HH
