/**
 * @file
 * Shared plumbing for the figure benches: option parsing into
 * ExperimentParams and the standard report block.
 *
 * Common flags:
 *   --ssds N          devices (default 64, the paper's host slice)
 *   --runtime-ms M    per-run measurement (default 4000; the paper
 *                     ran 120000 -- pass it for full fidelity)
 *   --seed S          root random seed
 *   --smart-period-ms SMART cadence (default 1000; paper ~30000,
 *                     scaled so spikes-per-run matches 120s/30s)
 *   --irqbalance-ms   irqbalance rescan cadence (default 1000;
 *                     daemon default 10000, same scaling)
 *   --csv             emit CSV instead of aligned tables
 *   --per-device      also print the full 64-row per-device ladder
 *   --report          append the system attribution report
 *   --jobs N          worker threads for the run plan (default 1;
 *                     0 = all hardware threads). Results are
 *                     bit-identical to a serial run.
 *   --shards N        event-core shards inside every run (default 1).
 *                     Partitions the SSD subtrees over N conservative
 *                     shards; results are bit-identical to --shards 1,
 *                     only faster. Composes with --jobs (threads used
 *                     = jobs * shards).
 *   --seeds N         replicate every run with seeds S..S+N-1 and
 *                     aggregate the ladders across replicas
 *   --metrics-json F  also write the per-run metrics JSON to file F
 *                     (includes the system metrics when tracing is on)
 *   --trace C[,C...]  enable span tracing for the listed categories
 *                     (workload,sched,pcie,nvme,smart,ftl,nand,irq,
 *                     fault or "all"); results stay bit-identical,
 *                     only telemetry is added
 *   --faults F        load a fault plan from spec file F and inject
 *                     it into every run (see src/fault/fault_plan.hh
 *                     for the spec format); arms the driver
 *                     timeout/retry policy and publishes the fault
 *                     counters in --metrics-json
 *   --fault-summary   print the parsed fault plan before running
 *   --trace-out F     write a Chrome/Perfetto trace-event JSON of the
 *                     last reported figure's first run to file F
 *                     (implies --trace all when --trace is absent)
 *   --attribution     print the per-stage latency attribution table
 *                     under every figure (implies --trace all when
 *                     --trace is absent)
 *   --device-fastpath B  single-event device command fast path
 *                     (default 1). 0 forces the chained event model;
 *                     results are bit-identical, only slower -- the
 *                     A/B is the exactness check (DESIGN.md §9)
 *   --telemetry W     sample a windowed telemetry timeline every W
 *                     simulated milliseconds (DESIGN.md §14): per-
 *                     stage latency histograms with ACT-style
 *                     exceed counters, counter/gauge series, and
 *                     the simulator self-profile. Figures stay
 *                     byte-identical with or without it
 *   --telemetry-out F write the timeline as JSON lines to file F
 *                     (implies --telemetry 100 when absent)
 *   --telemetry-csv F write the timeline as tidy CSV to file F
 *                     (implies --telemetry 100 when absent)
 *
 * Open-loop traffic flags (DESIGN.md §15). A non-zero --rate switches
 * the run from closed-loop FIO threads to the arrival-driven
 * OpenLoopEngine:
 *   --rate R          aggregate offered load in ops/sec (0 = closed
 *                     loop, the default)
 *   --duration-ms M   open-loop measurement duration (alias of
 *                     --runtime-ms; the latter wins when both given)
 *   --mix P           read percentage of the mixed workload
 *                     (default 100 = pure reads)
 *   --zipf T          zipfian theta in [0, 1) for hot-spot device
 *                     addressing (default 0 = uniform)
 *   --burst B         burst factor: arrivals come from an on/off
 *                     process firing at B x the mean rate with duty
 *                     cycle 1/B (default 1 = plain Poisson)
 *   --streams N       independent submitter streams (default 4)
 */

#ifndef AFA_BENCH_COMMON_HH
#define AFA_BENCH_COMMON_HH

#include <cstdio>
#include <memory>
#include <string>

#include "core/experiment.hh"
#include "core/report.hh"
#include "core/run_plan.hh"
#include "fault/fault_plan.hh"
#include "obs/perfetto.hh"
#include "sim/config.hh"

namespace afa::bench {

struct BenchOptions
{
    afa::core::ExperimentParams params;
    bool csv = false;
    bool perDevice = false;
    unsigned jobs = 1;
    unsigned seeds = 1;
    std::string metricsJsonPath;
    std::string traceOutPath;
    bool attribution = false;
    std::string telemetryOutPath;
    std::string telemetryCsvPath;
};

inline BenchOptions
parseOptions(int argc, char **argv)
{
    afa::sim::Config cfg;
    cfg.parseArgs(argc - 1, argv + 1);
    BenchOptions opts;
    auto &p = opts.params;
    p.ssds = static_cast<unsigned>(cfg.getUint("ssds", 64));
    p.runtime = afa::sim::msec(
        static_cast<double>(cfg.getUint("runtime_ms", 4000)));
    p.seed = cfg.getUint("seed", 1);
    p.smartPeriod = afa::sim::msec(
        static_cast<double>(cfg.getUint("smart_period_ms", 1000)));
    p.irqBalanceInterval = afa::sim::msec(
        static_cast<double>(cfg.getUint("irqbalance_ms", 1000)));
    p.job = afa::workload::FioJob::parse(
        cfg.getString("job", "rw=randread bs=4k iodepth=1"));
    // --duration-ms is the open-loop spelling of the measurement
    // length; an explicit --runtime-ms still wins.
    const std::uint64_t duration_ms = cfg.getUint("duration_ms", 0);
    if (duration_ms > 0 && cfg.getUint("runtime_ms", 0) == 0)
        p.runtime = afa::sim::msec(static_cast<double>(duration_ms));
    const double rate = cfg.getDouble("rate", 0.0);
    if (rate > 0.0) {
        afa::workload::OpenLoopParams ol;
        ol.arrival.ratePerSec = rate;
        const double burst = cfg.getDouble("burst", 1.0);
        if (burst > 1.0) {
            ol.arrival.kind = afa::workload::ArrivalKind::Bursty;
            ol.arrival.burstFactor = burst;
        }
        ol.readFraction = cfg.getDouble("mix", 100.0) / 100.0;
        ol.zipfTheta = cfg.getDouble("zipf", 0.0);
        ol.streams = static_cast<unsigned>(cfg.getUint("streams", 4));
        p.openLoop = ol;
    }
    opts.csv = cfg.getBool("csv", false);
    opts.perDevice = cfg.getBool("per_device", false);
    p.captureSystemReport = cfg.getBool("report", false);
    p.shards = static_cast<unsigned>(cfg.getUint("shards", 1));
    if (p.shards == 0)
        p.shards = 1;
    opts.jobs = static_cast<unsigned>(cfg.getUint("jobs", 1));
    opts.seeds = static_cast<unsigned>(cfg.getUint("seeds", 1));
    if (opts.seeds == 0)
        opts.seeds = 1;
    opts.metricsJsonPath = cfg.getString("metrics_json", "");
    std::string trace = cfg.getString("trace", "");
    if (!trace.empty())
        p.traceMask = afa::obs::parseCategories(trace);
    opts.traceOutPath = cfg.getString("trace_out", "");
    opts.attribution = cfg.getBool("attribution", false);
    p.deviceFastPath = cfg.getBool("device_fastpath", true);
    std::string fault_path = cfg.getString("faults", "");
    if (!fault_path.empty())
        p.faults = std::make_shared<afa::fault::FaultPlan>(
            afa::fault::FaultPlan::parseFile(fault_path));
    if (cfg.getBool("fault_summary", false)) {
        if (!p.faults)
            std::printf("fault plan: none (pass --faults=<file>)\n");
        else
            std::fputs(p.faults->summary().c_str(), stdout);
    }
    // A trace consumer without an explicit category list gets all of
    // them; the Perfetto export additionally needs the raw records.
    if ((!opts.traceOutPath.empty() || opts.attribution) &&
        p.traceMask == 0)
        p.traceMask = afa::obs::kAllCategories;
    p.keepSpans = !opts.traceOutPath.empty();
    p.telemetryWindow = afa::sim::msec(
        static_cast<double>(cfg.getUint("telemetry", 0)));
    opts.telemetryOutPath = cfg.getString("telemetry_out", "");
    opts.telemetryCsvPath = cfg.getString("telemetry_csv", "");
    // A timeline consumer without an explicit window gets the 100 ms
    // default cadence.
    if ((!opts.telemetryOutPath.empty() ||
         !opts.telemetryCsvPath.empty()) &&
        p.telemetryWindow == 0)
        p.telemetryWindow = afa::sim::msec(100);
    return opts;
}

inline void
printTable(const afa::stats::Table &table, bool csv)
{
    if (csv)
        std::fputs(table.toCsv().c_str(), stdout);
    else
        table.print();
}

/** Results and execution metrics of one figure-bench run plan. */
struct PlanRun
{
    /** One result per planned case, seed replicas merged, in order. */
    std::vector<afa::core::ExperimentResult> results;
    afa::stats::Table metricsTable{{"run"}};
    std::string metricsJson;
    double wallSeconds = 0.0;
    unsigned jobs = 1;
    std::size_t runs = 0;

    /** System metrics merged over every case (empty unless --trace). */
    afa::obs::MetricsSnapshot systemMetrics;

    /** Telemetry timeline merged over every case (empty unless
     *  --telemetry). */
    afa::obs::TelemetryTimeline telemetry;
};

/**
 * Expand @p plan with the --seeds replication, execute it on a
 * --jobs-wide worker pool, and fold the seed replicas of each case
 * back into one result.
 */
inline PlanRun
executePlan(afa::core::RunPlan &plan, const BenchOptions &opts)
{
    plan.seeds(opts.seeds);
    auto descriptors = plan.expand();

    afa::core::ParallelExperimentRunner runner(opts.jobs);
    runner.setProgress(true);
    auto raw = runner.run(descriptors);

    PlanRun out;
    out.jobs = runner.jobs();
    out.runs = descriptors.size();
    out.wallSeconds = runner.suiteWallSeconds();
    out.metricsTable = runner.metricsTable();
    out.metricsJson = runner.metricsJson();
    for (std::size_t base = 0; base < raw.size();
         base += opts.seeds) {
        std::vector<const afa::core::ExperimentResult *> group;
        for (unsigned rep = 0;
             rep < opts.seeds && base + rep < raw.size(); ++rep)
            group.push_back(&raw[base + rep]);
        out.results.push_back(
            afa::core::ParallelExperimentRunner::mergeReplicas(
                group));
        out.systemMetrics.merge(out.results.back().systemMetrics);
        out.telemetry.merge(out.results.back().telemetry);
    }
    return out;
}

/** Write @p text to @p path (binary, whole-file). */
inline bool
writeTextFile(const std::string &path, const std::string &text,
              const char *what)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr, "cannot write %s to %s\n", what,
                     path.c_str());
        return false;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

/** Print the per-run metrics block (and write --metrics-json). */
inline void
reportRunMetrics(const PlanRun &run, const BenchOptions &opts)
{
    std::printf("\n=== run metrics: %zu runs, %u workers, %.2f s "
                "wall ===\n",
                run.runs, run.jobs, run.wallSeconds);
    printTable(run.metricsTable, opts.csv);
    if (!run.systemMetrics.empty()) {
        std::printf("\nsystem metrics (summed over %zu runs):\n",
                    run.runs);
        printTable(run.systemMetrics.table(), opts.csv);
    }
    if (!opts.metricsJsonPath.empty()) {
        std::FILE *f = std::fopen(opts.metricsJsonPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write metrics JSON to %s\n",
                         opts.metricsJsonPath.c_str());
            return;
        }
        // The artifact nests the execution metrics next to the system
        // metrics so one file captures a whole bench invocation.
        std::string json = "{\n\"run_metrics\": ";
        json += run.metricsJson;
        json += ",\n\"system_metrics\": ";
        json += run.systemMetrics.toJson("  ");
        if (!run.telemetry.empty()) {
            json += ",\n\"telemetry\": ";
            json += run.telemetry.toJson("  ");
        }
        json += "\n}\n";
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("run metrics JSON written to %s\n",
                    opts.metricsJsonPath.c_str());
    }
    if (!opts.telemetryOutPath.empty() && !run.telemetry.empty() &&
        writeTextFile(opts.telemetryOutPath,
                      run.telemetry.toJsonLines(), "telemetry JSONL"))
        std::printf("telemetry timeline written to %s\n",
                    opts.telemetryOutPath.c_str());
    if (!opts.telemetryCsvPath.empty() && !run.telemetry.empty() &&
        writeTextFile(opts.telemetryCsvPath, run.telemetry.toCsv(),
                      "telemetry CSV"))
        std::printf("telemetry CSV written to %s\n",
                    opts.telemetryCsvPath.c_str());
}

/** The standard block every figure bench prints. */
inline void
reportFigure(const char *figure, const char *caption,
             const afa::core::ExperimentResult &result,
             const BenchOptions &opts)
{
    std::printf("=== %s: %s ===\n", figure, caption);
    std::fputs(afa::core::describeExperiment(result).c_str(), stdout);
    std::printf("\nlatency envelope across %zu devices (usec):\n",
                result.perDevice.size());
    printTable(afa::core::envelopeTable(result), opts.csv);
    if (opts.perDevice) {
        std::printf("\nper-device ladder (usec):\n");
        printTable(afa::core::perDeviceTable(result), opts.csv);
    }
    if (!result.systemReportText.empty())
        std::printf("\n%s", result.systemReportText.c_str());
    if (opts.attribution && !result.attribution.empty()) {
        std::printf("\nlatency attribution (all runs):\n");
        printTable(result.attribution.table(), opts.csv);
        const auto &m = result.systemMetrics;
        if (!m.empty()) {
            std::printf("fabric: %llu fast-path / %llu fallback "
                        "packets; %llu span drops\n",
                        (unsigned long long)m.counter(
                            "fabric.fast_path_packets"),
                        (unsigned long long)m.counter(
                            "fabric.fallback_packets"),
                        (unsigned long long)result.spanDrops);
            std::printf("nvme: %llu fast-path / %llu fallback "
                        "commands\n",
                        (unsigned long long)m.counter(
                            "nvme.fast_path_commands"),
                        (unsigned long long)m.counter(
                            "nvme.fallback_commands"));
        }
    }
    if (!opts.traceOutPath.empty() && !result.spans.empty()) {
        // Benches reporting several figures overwrite the file; the
        // last figure's timeline wins, matching the common one-figure
        // use of --trace-out. Telemetry windows (when sampled) ride
        // along as counter tracks.
        if (afa::obs::writePerfettoJson(
                opts.traceOutPath, result.spans,
                result.telemetry.empty() ? nullptr
                                         : &result.telemetry))
            std::printf("perfetto trace (%zu spans) written to %s\n",
                        result.spans.size(),
                        opts.traceOutPath.c_str());
    }
    // Like --trace-out, multi-figure benches overwrite: the last
    // reported figure's timeline wins.
    if (!result.telemetry.empty()) {
        if (!opts.telemetryOutPath.empty() &&
            writeTextFile(opts.telemetryOutPath,
                          result.telemetry.toJsonLines(),
                          "telemetry JSONL"))
            std::printf("telemetry timeline written to %s\n",
                        opts.telemetryOutPath.c_str());
        if (!opts.telemetryCsvPath.empty() &&
            writeTextFile(opts.telemetryCsvPath,
                          result.telemetry.toCsv(), "telemetry CSV"))
            std::printf("telemetry CSV written to %s\n",
                        opts.telemetryCsvPath.c_str());
    }
    std::printf("\n");
}

} // namespace afa::bench

#endif // AFA_BENCH_COMMON_HH
