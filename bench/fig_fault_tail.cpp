/**
 * @file
 * Fault-injection companion to Fig. 6: the fig06-style scatter with
 * one limping SSD, split into the three lives of an array.
 *
 * A client drives random reads against a RAID-5 volume over W SSDs.
 * The timeline has three phases of equal length:
 *
 *   healthy   [0, T/3)      every member serves at full speed
 *   limping   [T/3, 2T/3)   one SSD's service time inflates by
 *                           --limp-factor; the volume still routes
 *                           reads to it, so every Wth block rides the
 *                           limping tail (the gray-failure regime the
 *                           driver timeout cannot see)
 *   rebuild   [2T/3, T]     the admin kicks the bad disk: reads of
 *                           its blocks reconstruct from the W-1
 *                           survivors while the rebuild engine
 *                           streams the spare back through the same
 *                           fabric; when the rebuild finishes the
 *                           member rejoins and the tail collapses
 *
 * Run with --trace fault --attribution to see the new span stages
 * (fault_stall / rebuild_io) attribute the inflated tail.
 *
 * Run with --telemetry W to watch the three lives as a time series:
 * a per-window table of whole-IO p99 and ACT >1ms counts prints
 * under the phase table (healthy flat, limping elevated, rebuild
 * spiking then collapsing), and --telemetry-out/--telemetry-csv
 * write the full windowed timeline. The phase table itself is
 * byte-identical with telemetry on or off.
 *
 * Extra flags over the common set:
 *   --width W           volume members (default 8)
 *   --limp-ssd D        which member limps (default width/2)
 *   --limp-factor F     latency multiplier while limping (default 8)
 *   --rebuild-blocks N  extent rebuilt, 4 KiB blocks (default 2048)
 *   --faults F          replace the built-in limp plan entirely
 */

#include "common.hh"

#include <memory>
#include <vector>

#include "obs/metrics.hh"
#include "obs/span_log.hh"
#include "raid/rebuild.hh"
#include "raid/volume.hh"
#include "sim/logging.hh"
#include "stats/histogram.hh"
#include "workload/fio_thread.hh"

using namespace afa::core;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::workload::FioJob;
using afa::workload::FioThread;

namespace {

afa::stats::LatencySummary
phaseSummary(const char *phase, const afa::stats::ScatterLog &scatter,
             Tick from, Tick to)
{
    afa::stats::Histogram hist;
    for (const auto &s : scatter.samples())
        if (s.when >= from && s.when < to)
            hist.record(s.latency);
    return afa::stats::LatencySummary::fromHistogram(phase, hist);
}

} // namespace

int
main(int argc, char **argv)
{
    afa::sim::Config cfg;
    cfg.parseArgs(argc - 1, argv + 1);
    auto opts = afa::bench::parseOptions(argc, argv);

    const unsigned width =
        static_cast<unsigned>(cfg.getUint("width", 8));
    const unsigned limp_ssd = static_cast<unsigned>(
        cfg.getUint("limp_ssd", width / 2));
    const double limp_factor =
        static_cast<double>(cfg.getUint("limp_factor", 8));
    const std::uint64_t rebuild_blocks =
        cfg.getUint("rebuild_blocks", 2048);
    const Tick runtime = opts.params.runtime;
    const Tick phase_len = runtime / 3;

    if (width < 3)
        afa::sim::fatal("fig_fault_tail: --width must be >= 3 "
                        "(RAID-5)");
    if (limp_ssd >= width)
        afa::sim::fatal("fig_fault_tail: --limp-ssd out of range");

    // The built-in plan: one SSD limps for the middle third. A
    // --faults file replaces it wholesale (same driver policy rules).
    auto plan = opts.params.faults;
    if (!plan) {
        auto p = std::make_shared<afa::fault::FaultPlan>();
        afa::fault::FaultEvent limp;
        limp.kind = afa::fault::FaultKind::Limp;
        limp.ssd = limp_ssd;
        limp.at = phase_len;
        limp.duration = phase_len;
        limp.factor = limp_factor;
        p->events.push_back(limp);
        plan = p;
    }

    Simulator sim(opts.params.seed);
    AfaSystemParams sys_params;
    sys_params.ssds = width;
    Geometry geometry(afa::host::CpuTopology{}, width);
    TuningConfig tuning =
        TuningConfig::forProfile(TuningProfile::IrqAffinity, geometry);
    sys_params.kernel = tuning.kernel;
    sys_params.firmware = tuning.firmware;
    sys_params.pinIrqAffinity = tuning.pinIrqAffinity;
    sys_params.firmware.smart.period = opts.params.smartPeriod;
    sys_params.kernel.irq.irqBalanceInterval =
        opts.params.irqBalanceInterval;
    sys_params.faults = plan;
    sys_params.deviceFastPath = opts.params.deviceFastPath;
    AfaSystem system(sim, sys_params);

    std::unique_ptr<afa::obs::SpanLog> spanLog;
    // As in ExperimentRunner: an internal span log only feeds the
    // telemetry histograms, and its attribution never prints, so the
    // phase table is byte-identical with telemetry on or off.
    bool internalTrace = false;
    if (opts.params.traceMask != 0) {
        afa::obs::TraceParams trace;
        trace.mask = opts.params.traceMask;
        trace.capacity = opts.params.traceCapacity;
        spanLog = std::make_unique<afa::obs::SpanLog>(trace);
        system.setSpanLog(spanLog.get());
    }
    std::unique_ptr<afa::obs::Telemetry> telemetry;
    if (opts.params.telemetryWindow > 0) {
        afa::obs::TelemetryParams tp;
        tp.window = opts.params.telemetryWindow;
        telemetry = std::make_unique<afa::obs::Telemetry>(tp);
        if (!spanLog) {
            afa::obs::TraceParams trace;
            trace.mask = afa::obs::kAllCategories;
            trace.capacity = opts.params.traceCapacity;
            spanLog = std::make_unique<afa::obs::SpanLog>(trace);
            system.setSpanLog(spanLog.get());
            internalTrace = true;
        }
        spanLog->setTelemetry(telemetry.get());
        system.attachTelemetry(*telemetry);
    }

    std::vector<unsigned> members;
    for (unsigned d = 0; d < width; ++d)
        members.push_back(d);
    afa::raid::ParityVolume volume(sim, "vol0", system.ioEngine(),
                                   members, 1);

    FioJob job;
    job.rw = afa::workload::RwMode::RandRead;
    job.blockSize = 4096;
    job.runtime = runtime;
    job.cpusAllowed = afa::host::CpuMask(1) << geometry.fioCpus()[0];
    job.rtPriority = tuning.fioRtPriority;
    job.name = "client";
    FioThread client(sim, "client", system.scheduler(), volume, 0,
                     job);
    afa::stats::ScatterLog scatter;
    client.attachScatterLog(&scatter);
    if (spanLog)
        client.attachSpanLog(spanLog.get());

    // The rebuild: read every survivor, write the replaced member,
    // through the same driver/fabric as the client's IO.
    afa::raid::RebuildParams reb;
    for (unsigned d = 0; d < width; ++d)
        if (d != limp_ssd)
            reb.sources.push_back(d);
    reb.target = limp_ssd;
    reb.blocks = rebuild_blocks;
    reb.cpu = geometry.fioCpus()[0];
    afa::raid::RebuildEngine rebuild(sim, "rebuild0",
                                     system.ioEngine(), reb);
    if (spanLog)
        rebuild.attachSpanLog(spanLog.get());
    rebuild.setOnComplete([&] {
        volume.setMemberFailed(limp_ssd, false);
    });
    if (telemetry) {
        // Rebuild progress and the volume's degraded-read rate make
        // the kick -> refill -> rejoin arc legible in the timeline.
        telemetry->addGauge("rebuild.blocks_done", [&rebuild] {
            return static_cast<double>(rebuild.stats().blocksDone);
        });
        telemetry->addCounter("volume.degraded_reads", [&volume] {
            return volume.stats().degradedReads;
        });
    }

    // At 2T/3 the admin pulls the limping disk: reads reconstruct
    // from the survivors while the spare refills in the background.
    sim.scheduleAt(2 * phase_len, [&] {
        volume.setMemberFailed(limp_ssd, true);
        rebuild.start(sim.now());
    });

    system.start();
    client.start(0);
    if (telemetry)
        telemetry->start(sim);
    sim.run(runtime + afa::sim::msec(200));
    if (telemetry)
        telemetry->finish();

    std::printf("=== fault tail: RAID-5 over %u SSDs, member %u "
                "limping x%.0f for the middle third ===\n",
                width, limp_ssd, limp_factor);
    std::fputs(plan->summary().c_str(), stdout);

    afa::stats::Table table({"phase", "ios", "avg_us", "p99_us",
                             "p99.9_us", "max_us"});
    struct PhaseDef { const char *name; Tick from, to; };
    const PhaseDef phases[] = {
        {"healthy", 0, phase_len},
        {"limping", phase_len, 2 * phase_len},
        {"rebuild+recovered", 2 * phase_len,
         runtime + afa::sim::msec(200)},
    };
    for (const auto &ph : phases) {
        auto s = phaseSummary(ph.name, scatter, ph.from, ph.to);
        table.addRow({ph.name, afa::stats::Table::num(s.samples),
                      afa::stats::Table::num(s.ladderUs[0], 1),
                      afa::stats::Table::num(s.ladderUs[1], 1),
                      afa::stats::Table::num(s.ladderUs[2], 1),
                      afa::stats::Table::num(s.maxUs, 1)});
    }
    afa::bench::printTable(table, opts.csv);

    if (telemetry) {
        // The same three lives as a time series: whole-IO windowed
        // p99 plus the ACT >1ms count per window. Healthy windows sit
        // flat, limping windows lift the p99, the rebuild windows
        // spike it, and the tail collapses once the spare rejoins.
        const auto timeline = telemetry->timeline();
        std::printf("\ntelemetry timeline (%.0f ms windows, whole-IO "
                    "latency):\n",
                    afa::sim::toMsec(timeline.window));
        afa::stats::Table tl({"end_ms", "ios", "p50_us", "p99_us",
                              "gt_1ms", "degraded", "rebuilt_blocks"});
        for (const auto &[w, row] : timeline.stages) {
            const auto it = row.find(
                static_cast<std::uint8_t>(afa::obs::Stage::Complete));
            if (it == row.end())
                continue;
            const auto &cell = it->second;
            std::uint64_t degraded = 0;
            double rebuilt = 0.0;
            if (const auto *s = timeline.seriesPoint(
                    "volume.degraded_reads", w))
                degraded = s->delta;
            if (const auto *s =
                    timeline.seriesPoint("rebuild.blocks_done", w))
                rebuilt = s->value;
            tl.addRow({afa::stats::Table::num(
                           afa::sim::toMsec((w + 1) *
                                            timeline.window), 0),
                       afa::stats::Table::num(cell.count),
                       afa::stats::Table::num(
                           cell.quantileTicks(0.50) / 1e3, 1),
                       afa::stats::Table::num(
                           cell.quantileTicks(0.99) / 1e3, 1),
                       afa::stats::Table::num(cell.exceed[0]),
                       afa::stats::Table::num(degraded),
                       afa::stats::Table::num(rebuilt, 0)});
        }
        afa::bench::printTable(tl, opts.csv);
        if (!opts.telemetryOutPath.empty() &&
            afa::bench::writeTextFile(opts.telemetryOutPath,
                                      timeline.toJsonLines(),
                                      "telemetry JSONL"))
            std::printf("telemetry timeline written to %s\n",
                        opts.telemetryOutPath.c_str());
        if (!opts.telemetryCsvPath.empty() &&
            afa::bench::writeTextFile(opts.telemetryCsvPath,
                                      timeline.toCsv(),
                                      "telemetry CSV"))
            std::printf("telemetry CSV written to %s\n",
                        opts.telemetryCsvPath.c_str());
    }

    const auto &vs = volume.stats();
    const auto &rs = rebuild.stats();
    std::printf("\nvolume: %llu client IOs, %llu member IOs, "
                "%llu degraded reads, %llu failed\n",
                (unsigned long long)vs.clientIos,
                (unsigned long long)vs.memberIos,
                (unsigned long long)vs.degradedReads,
                (unsigned long long)vs.failedIos);
    std::printf("rebuild: %llu/%llu blocks in %llu chunks%s\n",
                (unsigned long long)rs.blocksDone,
                (unsigned long long)rebuild_blocks,
                (unsigned long long)rs.chunks,
                rs.done
                    ? afa::sim::strfmt(
                          ", done at %.1f ms",
                          afa::sim::toMsec(rs.finishedAt)).c_str()
                    : " (still running at end of run)");
    const auto &ds = system.driverStats();
    std::printf("driver: %llu timeouts, %llu retries, %llu aborts\n",
                (unsigned long long)ds.timeouts,
                (unsigned long long)ds.retries,
                (unsigned long long)ds.aborts);

    if (spanLog && !internalTrace && opts.attribution) {
        std::printf("\nlatency attribution:\n");
        afa::bench::printTable(spanLog->attribution().table(),
                               opts.csv);
    }
    if (spanLog && !internalTrace && !opts.traceOutPath.empty()) {
        auto spans = spanLog->snapshot();
        afa::obs::TelemetryTimeline counters;
        if (telemetry)
            counters = telemetry->timeline();
        if (afa::obs::writePerfettoJson(
                opts.traceOutPath, spans,
                counters.empty() ? nullptr : &counters))
            std::printf("perfetto trace (%zu spans) written to %s\n",
                        spans.size(), opts.traceOutPath.c_str());
    }
    if (!opts.metricsJsonPath.empty()) {
        afa::obs::MetricsRegistry registry;
        system.publishMetrics(registry);
        auto snapshot = registry.snapshot();
        std::FILE *f = std::fopen(opts.metricsJsonPath.c_str(), "w");
        if (f) {
            std::fputs(snapshot.toJson("  ").c_str(), f);
            std::fclose(f);
            std::printf("metrics JSON written to %s\n",
                        opts.metricsJsonPath.c_str());
        }
    }

    std::printf(
        "\nReading: the limping member drags every ~1/%uth read into "
        "its\ninflated service time -- the gray failure a driver "
        "timeout cannot\nsee. Kicking the disk trades that for "
        "reconstruction reads plus\nrebuild contention, and once the "
        "spare is rebuilt the tail\ncollapses back to the healthy "
        "profile.\n", width);
    return 0;
}
