/**
 * @file
 * Fig. 12: mean and standard deviation of every latency-ladder point
 * across the 64 SSDs, for the four system configurations (default,
 * chrt, isolcpus, irq). The paper's headline: with all host-side
 * optimizations, the mean of the max latency improves ~x8 and its
 * standard deviation ~x400 (1,644 -> 4).
 *
 * The four configurations are independent simulations, so they run
 * as a plan on the parallel experiment engine: --jobs N executes
 * them concurrently with bit-identical results, --seeds N replicates
 * each configuration across seeds.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);
    using afa::core::TuningProfile;

    const std::vector<TuningProfile> profiles{
        TuningProfile::Default, TuningProfile::Chrt,
        TuningProfile::Isolcpus, TuningProfile::IrqAffinity};

    afa::core::RunPlan plan(opts.params);
    plan.profiles(profiles);
    auto run = afa::bench::executePlan(plan, opts);

    std::vector<std::pair<std::string, afa::stats::LadderAggregate>>
        rows;
    afa::stats::LadderAggregate def_agg, irq_agg;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        TuningProfile profile = profiles[i];
        const auto &result = run.results[i];
        std::printf("--- %s ---\n%s\n",
                    afa::core::tuningProfileName(profile),
                    afa::core::describeExperiment(result).c_str());
        rows.emplace_back(afa::core::tuningProfileName(profile),
                          result.aggregate);
        if (profile == TuningProfile::Default)
            def_agg = result.aggregate;
        if (profile == TuningProfile::IrqAffinity)
            irq_agg = result.aggregate;
    }

    std::printf("=== Fig. 12: comparison of four system "
                "configurations (usec) ===\n");
    afa::bench::printTable(afa::core::comparisonTable(rows), opts.csv);

    const std::size_t max_idx = afa::stats::NinesLadder::kPoints - 1;
    double mean_ratio = irq_agg.meanUs[max_idx] > 0
        ? def_agg.meanUs[max_idx] / irq_agg.meanUs[max_idx]
        : 0.0;
    double stddev_ratio = irq_agg.stddevUs[max_idx] > 0
        ? def_agg.stddevUs[max_idx] / irq_agg.stddevUs[max_idx]
        : 0.0;
    std::printf("\nmax-latency improvement, default -> irq:\n");
    std::printf("  mean   %.0f -> %.0f us  (x%.1f; paper: ~x8)\n",
                def_agg.meanUs[max_idx], irq_agg.meanUs[max_idx],
                mean_ratio);
    std::printf("  stddev %.0f -> %.0f us  (x%.0f; paper: 1644 -> 4, "
                "~x400)\n",
                def_agg.stddevUs[max_idx], irq_agg.stddevUs[max_idx],
                stddev_ratio);
    afa::bench::reportRunMetrics(run, opts);
    return 0;
}
