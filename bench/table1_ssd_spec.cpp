/**
 * @file
 * Table I: the M.2 NVMe SSD specification, validated against the
 * device model. Measures random 4 KiB read/write IOPS at high queue
 * depth and sequential 128 KiB read/write bandwidth on a single SSD
 * (tuned host, no background load), plus the paper's ~25/30 us QD1
 * FOB read anchors.
 *
 *   Random Read/Write (IOPS):     160,000 / 30,000
 *   Sequential Read/Write (MB/s): 1,700 / 750
 *
 * Capacity is simulation-scaled (1 GiB logical instead of 960 GB) to
 * keep 64 drives' mapping tables in memory; timing is unaffected.
 */

#include "common.hh"

#include <memory>
#include <vector>

#include "sim/logging.hh"

#include "workload/fio_thread.hh"

using namespace afa::core;
using afa::sim::Simulator;
using afa::sim::Tick;
using afa::workload::FioJob;
using afa::workload::FioThread;

namespace {

struct Measurement
{
    double value;
    double perDeviceAvgUs;
};

/**
 * Run one single-SSD workload and return its rate. Spec-style
 * measurements use several jobs (@p threads) because one submitting
 * thread saturates its CPU near ~125k IOPS -- same as real fio.
 */
Measurement
measure(const std::string &jobspec, Tick runtime, bool precondition,
        std::uint64_t seed, unsigned threads = 1)
{
    Simulator sim(seed);
    AfaSystemParams sys_params;
    sys_params.ssds = 1;
    // Tuned host, quiet background: we are measuring the device.
    afa::host::CpuTopology topo;
    Geometry geometry(topo, 1);
    TuningConfig tuning =
        TuningConfig::forProfile(TuningProfile::IrqAffinity, geometry);
    sys_params.kernel = tuning.kernel;
    sys_params.firmware = tuning.firmware;
    sys_params.pinIrqAffinity = true;
    sys_params.background = afa::host::BackgroundParams::none();
    AfaSystem system(sim, sys_params);

    if (precondition)
        system.ssd(0).ftl().precondition(1.0);

    std::vector<std::unique_ptr<FioThread>> workers;
    for (unsigned i = 0; i < threads; ++i) {
        FioJob job = FioJob::parse(jobspec);
        job.runtime = runtime;
        job.cpusAllowed = afa::host::CpuMask(1)
            << geometry.fioCpus()[i % geometry.fioCpus().size()];
        job.rtPriority = tuning.fioRtPriority;
        job.name = afa::sim::strfmt("fio-spec%u", i);
        workers.push_back(std::make_unique<FioThread>(
            sim, job.name, system.scheduler(), system.ioEngine(), 0,
            job));
    }
    system.start();
    for (auto &w : workers)
        w->start(0);
    sim.run(runtime + afa::sim::msec(200));
    for (int i = 0; i < 100; ++i) {
        bool all_done = true;
        for (auto &w : workers)
            if (!w->finished())
                all_done = false;
        if (all_done)
            break;
        sim.run(sim.now() + afa::sim::msec(10));
    }

    double seconds = afa::sim::toSec(runtime);
    Measurement m{0.0, 0.0};
    afa::stats::Histogram merged;
    for (auto &w : workers) {
        m.value += static_cast<double>(w->stats().completed) / seconds;
        merged.merge(w->histogram());
    }
    m.perDeviceAvgUs = merged.mean() / afa::sim::kUsec;
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    afa::sim::Config cfg;
    cfg.parseArgs(argc - 1, argv + 1);
    Tick runtime = afa::sim::msec(
        static_cast<double>(cfg.getUint("runtime_ms", 2000)));
    std::uint64_t seed = cfg.getUint("seed", 1);
    bool csv = cfg.getBool("csv", false);

    std::printf("=== Table I: NVMe SSD specification vs model ===\n");
    std::printf("(single SSD, tuned host, runtime %.1fs per row; "
                "capacity sim-scaled)\n\n",
                afa::sim::toSec(runtime));

    // Random 4 KiB, deep queue, reads on preconditioned media.
    // Four jobs of QD8, like a fio spec run with numjobs=4.
    auto rr = measure("rw=randread bs=4k iodepth=8", runtime, true,
                      seed, 4);
    auto rw = measure("rw=randwrite bs=4k iodepth=8", runtime, false,
                      seed + 1, 4);
    // Sequential 128 KiB.
    auto sr = measure("rw=read bs=128k iodepth=8", runtime, true,
                      seed + 2);
    auto sw = measure("rw=write bs=128k iodepth=8", runtime, false,
                      seed + 3);
    // The QD1 FOB anchors from Section IV-A.
    auto qd1 = measure("rw=randread bs=4k iodepth=1", runtime, false,
                       seed + 4);

    afa::stats::Table table(
        {"metric", "spec", "measured", "unit"});
    table.addRow({"random read", "160000",
                  afa::stats::Table::num(rr.value, 0), "IOPS"});
    table.addRow({"random write", "30000",
                  afa::stats::Table::num(rw.value, 0), "IOPS"});
    table.addRow({"sequential read", "1700",
                  afa::stats::Table::num(sr.value * 131072 / 1e6, 0),
                  "MB/s"});
    table.addRow({"sequential write", "750",
                  afa::stats::Table::num(sw.value * 131072 / 1e6, 0),
                  "MB/s"});
    table.addRow({"QD1 FOB read latency (through AFA)", "~30",
                  afa::stats::Table::num(qd1.perDeviceAvgUs, 1),
                  "usec"});
    if (csv)
        std::fputs(table.toCsv().c_str(), stdout);
    else
        table.print();
    return 0;
}
