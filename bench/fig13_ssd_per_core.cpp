/**
 * @file
 * Fig. 13 (a-d) + Table II: latency distributions by SSDs per
 * physical CPU core under the tuned (IRQ-affinity) configuration:
 * 4 / 2 / 1 SSDs per physical core and a single FIO thread, split
 * into 1 / 2 / 4 / 64 runs over disjoint SSD sets. Expected: nearly
 * identical distributions, with 4-per-core showing a higher 6-nines.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);
    opts.params.profile = afa::core::TuningProfile::IrqAffinity;
    using afa::core::GeometryVariant;

    const std::vector<GeometryVariant> variants = {
        GeometryVariant::FourPerCore, GeometryVariant::TwoPerCore,
        GeometryVariant::OnePerCore, GeometryVariant::SingleThread};

    afa::core::Geometry geometry(
        afa::host::CpuTopology(opts.params.topology),
        opts.params.ssds);
    std::printf("=== Table II: varying number of SSDs / CPU core "
                "===\n");
    afa::bench::printTable(
        afa::core::geometryTable(geometry, variants), opts.csv);
    std::printf("\n");

    const char *fig_names[] = {"Fig. 13(a)", "Fig. 13(b)",
                               "Fig. 13(c)", "Fig. 13(d)"};
    int idx = 0;
    for (GeometryVariant variant : variants) {
        opts.params.variant = variant;
        auto result = afa::core::ExperimentRunner::run(opts.params);
        afa::bench::reportFigure(
            fig_names[idx++],
            afa::core::geometryVariantName(variant), result, opts);
    }
    return 0;
}
