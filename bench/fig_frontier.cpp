/**
 * @file
 * The throughput–latency frontier: open-loop arrival-driven traffic
 * swept over offered load, default vs tuned host.
 *
 * Closed-loop figures (one request per thread in flight) can only
 * show the unloaded latency floor. This bench drives the array with
 * the OpenLoopEngine instead: Poisson (or bursty) arrivals at each
 * rung of a rate ladder, submitted through the same scheduler/IRQ/
 * fabric/device path, measuring *response time* — arrival to reap.
 * As the offered load approaches the array's capacity, queueing
 * delay blows up the tail: the p99-vs-offered-load curve bends at
 * the knee, and it bends earlier on the default host than on the
 * tuned one, because scheduler preemption and IRQ migration steal
 * submission capacity before the devices themselves saturate.
 *
 * Each rung runs twice — TuningProfile::Default and ::IrqAffinity —
 * and the table reports offered vs completed rate (their gap plus
 * the final backlog is the saturation signature), the response-time
 * ladder, the >1 ms ACT count, and exact drop accounting.
 *
 * The frontier table is byte-identical at any --shards x --jobs
 * combination and with --telemetry on or off; the windowed digest
 * (per-window p99 and >1 ms counts) prints only under --telemetry.
 *
 * Extra flags over the common set (see common.hh for --mix/--zipf/
 * --burst/--streams and the rest):
 *   --rates R1,R2,...   offered-load ladder in ops/sec
 *                       (default 100k..800k, past device saturation)
 */

#include "common.hh"

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/logging.hh"

using namespace afa::core;

namespace {

std::vector<double>
parseRates(const std::string &spec)
{
    std::vector<double> rates;
    const char *s = spec.c_str();
    while (*s) {
        char *end = nullptr;
        const double r = std::strtod(s, &end);
        if (end == s || r <= 0.0)
            afa::sim::fatal("fig_frontier: bad --rates entry in '%s'",
                            spec.c_str());
        rates.push_back(r);
        s = end;
        if (*s == ',')
            ++s;
        else if (*s)
            afa::sim::fatal("fig_frontier: bad --rates separator in "
                            "'%s'", spec.c_str());
    }
    if (rates.empty())
        afa::sim::fatal("fig_frontier: --rates is empty");
    return rates;
}

} // namespace

int
main(int argc, char **argv)
{
    afa::sim::Config cfg;
    cfg.parseArgs(argc - 1, argv + 1);
    auto opts = afa::bench::parseOptions(argc, argv);

    const auto rates = parseRates(cfg.getString(
        "rates", "100000,200000,400000,600000,800000"));

    // The common --rate flag seeds the mix/zipf/burst/streams shape;
    // without it the same knobs are read here so the bench works
    // stand-alone. The ladder overrides ratePerSec per rung.
    afa::workload::OpenLoopParams shape;
    if (opts.params.openLoop) {
        shape = *opts.params.openLoop;
    } else {
        const double burst = cfg.getDouble("burst", 1.0);
        if (burst > 1.0) {
            shape.arrival.kind = afa::workload::ArrivalKind::Bursty;
            shape.arrival.burstFactor = burst;
        }
        shape.readFraction = cfg.getDouble("mix", 100.0) / 100.0;
        shape.zipfTheta = cfg.getDouble("zipf", 0.0);
        shape.streams =
            static_cast<unsigned>(cfg.getUint("streams", 4));
    }

    const TuningProfile profiles[] = {TuningProfile::Default,
                                      TuningProfile::IrqAffinity};

    RunPlan plan(opts.params);
    std::vector<std::string> labels;
    for (TuningProfile profile : profiles) {
        for (double rate : rates) {
            ExperimentParams params = opts.params;
            params.profile = profile;
            afa::workload::OpenLoopParams ol = shape;
            ol.arrival.ratePerSec = rate;
            params.openLoop = ol;
            labels.push_back(afa::sim::strfmt(
                "%s/r%.0fk", tuningProfileName(profile),
                rate / 1000.0));
            plan.add(labels.back(), std::move(params));
        }
    }

    auto run = afa::bench::executePlan(plan, opts);

    std::printf("=== throughput-latency frontier: open-loop %s "
                "arrivals, %u streams, %.0f%% reads, zipf %.2f ===\n",
                shape.arrival.kind ==
                        afa::workload::ArrivalKind::Bursty
                    ? afa::sim::strfmt(
                          "bursty (x%.0f)",
                          shape.arrival.burstFactor).c_str()
                    : "poisson",
                shape.streams, shape.readFraction * 100.0,
                shape.zipfTheta);

    afa::stats::Table table({"config", "offered/s", "completed/s",
                             "p50_us", "p99_us", "p99.9_us",
                             "gt_1ms", "dropped", "backlog"});
    std::size_t idx = 0;
    for (TuningProfile profile : profiles) {
        (void)profile;
        for (std::size_t r = 0; r < rates.size(); ++r, ++idx) {
            const auto &res = run.results[idx];
            const auto &ol = res.openLoop;
            const auto &h = ol.responseHist;
            table.addRow(
                {labels[idx],
                 afa::stats::Table::num(ol.offeredPerSec(), 0),
                 afa::stats::Table::num(ol.completedPerSec(), 0),
                 afa::stats::Table::num(h.quantile(0.50) / 1e3, 1),
                 afa::stats::Table::num(h.quantile(0.99) / 1e3, 1),
                 afa::stats::Table::num(h.quantile(0.999) / 1e3, 1),
                 afa::stats::Table::num(ol.totals.exceed[0]),
                 afa::stats::Table::num(ol.totals.dropped),
                 afa::stats::Table::num(ol.totals.finalBacklog)});
        }
    }
    afa::bench::printTable(table, opts.csv);

    if (opts.params.telemetryWindow > 0 && !run.telemetry.empty()) {
        // The merged per-window view across every rung: whole-op
        // response-time p99 plus the >1 ms ACT count per window.
        const auto &timeline = run.telemetry;
        std::printf("\ntelemetry timeline (%.0f ms windows, "
                    "response time, all rungs merged):\n",
                    afa::sim::toMsec(timeline.window));
        afa::stats::Table tl({"end_ms", "ops", "p50_us", "p99_us",
                              "gt_1ms"});
        for (const auto &[w, row] : timeline.stages) {
            const auto it = row.find(
                static_cast<std::uint8_t>(afa::obs::Stage::Complete));
            if (it == row.end())
                continue;
            const auto &cell = it->second;
            tl.addRow({afa::stats::Table::num(
                           afa::sim::toMsec((w + 1) *
                                            timeline.window), 0),
                       afa::stats::Table::num(cell.count),
                       afa::stats::Table::num(
                           cell.quantileTicks(0.50) / 1e3, 1),
                       afa::stats::Table::num(
                           cell.quantileTicks(0.99) / 1e3, 1),
                       afa::stats::Table::num(cell.exceed[0])});
        }
        afa::bench::printTable(tl, opts.csv);
    }

    afa::bench::reportRunMetrics(run, opts);

    std::printf(
        "\nReading: each rung offers a fixed arrival rate; while the "
        "host\nkeeps up, completed/s tracks offered/s and the tail "
        "stays near the\nclosed-loop floor. Past the knee the backlog "
        "grows for the whole\nrun, response time is dominated by "
        "queueing, and the >1 ms count\nexplodes. The default host "
        "bends first: preempted submitters and\nmigrating IRQs cap "
        "its service rate below the tuned host's, which\nrides "
        "closer to the device limit before folding.\n");
    return 0;
}
