/**
 * @file
 * Ablation A1: the Section IV-C boot line bundles five options --
 * which one does what? Starting from the chrt profile, each option is
 * enabled alone, then all together (= the isolcpus profile), and the
 * envelope compared.
 */

#include "common.hh"

using namespace afa::core;

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);
    opts.params.profile = TuningProfile::Chrt; // recorded label

    Geometry geometry(afa::host::CpuTopology(opts.params.topology),
                      opts.params.ssds);
    TuningConfig base =
        TuningConfig::forProfile(TuningProfile::Chrt, geometry);
    auto iso = geometry.isolationSet();

    struct Variant
    {
        const char *name;
        TuningConfig cfg;
    };
    std::vector<Variant> variants;
    variants.push_back({"chrt-only", base});
    {
        TuningConfig c = base;
        c.kernel.isolcpus = iso;
        variants.push_back({"+isolcpus", c});
    }
    {
        TuningConfig c = base;
        c.kernel.nohzFull = iso;
        variants.push_back({"+nohz_full", c});
    }
    {
        TuningConfig c = base;
        c.kernel.rcuNocbs = iso;
        variants.push_back({"+rcu_nocbs", c});
    }
    {
        TuningConfig c = base;
        c.kernel.cstate.maxCstate = 1;
        variants.push_back({"+max_cstate=1", c});
    }
    {
        TuningConfig c = base;
        c.kernel.cstate.idlePoll = true;
        variants.push_back({"+idle=poll", c});
    }
    variants.push_back(
        {"all (isolcpus profile)",
         TuningConfig::forProfile(TuningProfile::Isolcpus, geometry)});

    afa::core::RunPlan plan;
    for (const auto &variant : variants) {
        auto params = opts.params;
        params.tuningOverride = variant.cfg;
        plan.add(variant.name, params);
    }
    auto run = afa::bench::executePlan(plan, opts);

    std::vector<std::pair<std::string, afa::stats::LadderAggregate>>
        rows;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const auto &result = run.results[i];
        std::printf("--- %s: avg %.1f us, p99.99 %.1f us, max(mean) "
                    "%.1f us ---\n",
                    variants[i].name, result.aggregate.meanUs[0],
                    result.aggregate.meanUs[3],
                    result.aggregate.meanUs[6]);
        rows.emplace_back(variants[i].name, result.aggregate);
    }
    std::printf("\n=== A1: boot-option ablation on top of chrt "
                "(usec) ===\n");
    afa::bench::printTable(afa::core::comparisonTable(rows), opts.csv);
    afa::bench::reportRunMetrics(run, opts);
    return 0;
}
