/**
 * @file
 * Ablation A5 (stated future work): NUMA placement of FIO threads.
 * The AFA uplink hangs off socket 1 (the paper's CPU2); threads on
 * socket 0 pay a QPI crossing on every interrupt and IPI. Runs the
 * same 16-SSD workload pinned to uplink-local vs remote cores.
 */

#include "common.hh"

#include <memory>
#include <vector>

#include "sim/logging.hh"
#include "workload/fio_thread.hh"

using namespace afa::core;
using afa::sim::Simulator;
using afa::workload::FioJob;
using afa::workload::FioThread;

namespace {

afa::stats::LadderAggregate
runPinned(const afa::bench::BenchOptions &opts,
          const std::vector<unsigned> &cpus, const char *label)
{
    Simulator sim(opts.params.seed);
    AfaSystemParams sys_params;
    sys_params.ssds = static_cast<unsigned>(cpus.size());
    Geometry geometry(afa::host::CpuTopology{}, sys_params.ssds);
    TuningConfig tuning = TuningConfig::forProfile(
        TuningProfile::ExpFirmware, geometry);
    sys_params.kernel = tuning.kernel;
    sys_params.firmware = tuning.firmware;
    sys_params.pinIrqAffinity = true;
    sys_params.background = afa::host::BackgroundParams::none();
    AfaSystem system(sim, sys_params);

    std::vector<std::unique_ptr<FioThread>> threads;
    for (unsigned i = 0; i < cpus.size(); ++i) {
        FioJob job = opts.params.job;
        job.runtime = opts.params.runtime;
        job.cpusAllowed = afa::host::CpuMask(1) << cpus[i];
        job.rtPriority = tuning.fioRtPriority;
        job.name = afa::sim::strfmt("fio-%s-%u", label, i);
        threads.push_back(std::make_unique<FioThread>(
            sim, job.name, system.scheduler(), system.ioEngine(), i,
            job));
    }
    system.start();
    for (auto &t : threads)
        t->start(0);
    sim.run(opts.params.runtime + afa::sim::msec(200));

    std::vector<afa::stats::LatencySummary> summaries;
    for (unsigned i = 0; i < threads.size(); ++i)
        summaries.push_back(afa::stats::LatencySummary::fromHistogram(
            afa::sim::strfmt("nvme%u", i), threads[i]->histogram()));
    return afa::stats::LadderAggregate::across(summaries);
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);
    afa::host::CpuTopology topo;

    // 16 threads on uplink-local physical cores vs remote ones.
    std::vector<unsigned> local, remote;
    for (unsigned cpu = 10; cpu < 20; ++cpu)
        local.push_back(cpu); // socket 1, thread 0
    for (unsigned cpu = 30; cpu < 36; ++cpu)
        local.push_back(cpu); // socket 1, thread 1
    for (unsigned cpu = 0; cpu < 10; ++cpu)
        remote.push_back(cpu); // socket 0
    for (unsigned cpu = 20; cpu < 26; ++cpu)
        remote.push_back(cpu);

    auto local_agg = runPinned(opts, local, "local");
    auto remote_agg = runPinned(opts, remote, "remote");

    std::vector<std::pair<std::string, afa::stats::LadderAggregate>>
        rows{{"uplink-local (socket 1)", local_agg},
             {"uplink-remote (socket 0)", remote_agg}};
    std::printf("=== A5: NUMA placement of FIO threads (usec) ===\n");
    afa::bench::printTable(comparisonTable(rows), opts.csv);
    std::printf("\navg penalty for remote-socket threads: %.2f us "
                "per IO\n",
                remote_agg.meanUs[0] - local_agg.meanUs[0]);
    return 0;
}
