/**
 * @file
 * Ablation A5 (stated future work): NUMA placement of FIO threads.
 * The AFA uplink hangs off socket 1 (the paper's CPU2); threads on
 * socket 0 pay a QPI crossing on every interrupt and IPI. Runs the
 * same 16-SSD workload pinned to uplink-local vs remote cores, as an
 * explicit-placement run plan on the parallel experiment engine.
 */

#include "common.hh"

using namespace afa::core;

namespace {

ExperimentParams
pinnedParams(const afa::bench::BenchOptions &opts,
             const std::vector<unsigned> &cpus)
{
    ExperimentParams params = opts.params;
    params.ssds = static_cast<unsigned>(cpus.size());
    params.backgroundLoad = false;
    // Keep the firmware/kernel cadence defaults of the original
    // hand-rolled harness rather than the figure-bench scaling.
    params.smartPeriod = 0;
    params.irqBalanceInterval = 0;

    Geometry geometry(afa::host::CpuTopology{}, params.ssds);
    TuningConfig tuning =
        TuningConfig::forProfile(TuningProfile::ExpFirmware, geometry);
    tuning.pinIrqAffinity = true;
    params.profile = TuningProfile::ExpFirmware;
    params.tuningOverride = tuning;

    Run placements;
    for (unsigned i = 0; i < cpus.size(); ++i)
        placements.push_back(Placement{i, cpus[i]});
    params.placementOverride = placements;
    return params;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);

    // 16 threads on uplink-local physical cores vs remote ones.
    std::vector<unsigned> local, remote;
    for (unsigned cpu = 10; cpu < 20; ++cpu)
        local.push_back(cpu); // socket 1, thread 0
    for (unsigned cpu = 30; cpu < 36; ++cpu)
        local.push_back(cpu); // socket 1, thread 1
    for (unsigned cpu = 0; cpu < 10; ++cpu)
        remote.push_back(cpu); // socket 0
    for (unsigned cpu = 20; cpu < 26; ++cpu)
        remote.push_back(cpu);

    RunPlan plan;
    plan.add("uplink-local (socket 1)", pinnedParams(opts, local));
    plan.add("uplink-remote (socket 0)", pinnedParams(opts, remote));
    auto run = afa::bench::executePlan(plan, opts);

    const auto &local_agg = run.results[0].aggregate;
    const auto &remote_agg = run.results[1].aggregate;

    std::vector<std::pair<std::string, afa::stats::LadderAggregate>>
        rows{{"uplink-local (socket 1)", local_agg},
             {"uplink-remote (socket 0)", remote_agg}};
    std::printf("=== A5: NUMA placement of FIO threads (usec) ===\n");
    afa::bench::printTable(comparisonTable(rows), opts.csv);
    std::printf("\navg penalty for remote-socket threads: %.2f us "
                "per IO\n",
                remote_agg.meanUs[0] - local_agg.meanUs[0]);
    afa::bench::reportRunMetrics(run, opts);
    return 0;
}
