/**
 * @file
 * Fig. 14: mean and standard deviation of the latency-ladder points
 * across devices for each Fig. 13 geometry. Expected: all four
 * geometries agree closely, confirming that profiling many SSDs in
 * parallel is valid while CPU utilisation stays low -- the basis of
 * the paper's "x10-x100 faster SSD profiling" claim.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);
    opts.params.profile = afa::core::TuningProfile::IrqAffinity;
    using afa::core::GeometryVariant;

    std::vector<std::pair<std::string, afa::stats::LadderAggregate>>
        rows;
    for (GeometryVariant variant :
         {GeometryVariant::FourPerCore, GeometryVariant::TwoPerCore,
          GeometryVariant::OnePerCore,
          GeometryVariant::SingleThread}) {
        opts.params.variant = variant;
        auto result = afa::core::ExperimentRunner::run(opts.params);
        std::printf("--- %s: runs=%u ios=%llu ---\n",
                    afa::core::geometryVariantName(variant),
                    result.runs,
                    (unsigned long long)result.totalIos);
        rows.emplace_back(afa::core::geometryVariantName(variant),
                          result.aggregate);
    }
    std::printf("\n=== Fig. 14: comparison of SSDs per physical core "
                "(usec) ===\n");
    afa::bench::printTable(afa::core::comparisonTable(rows), opts.csv);
    return 0;
}
