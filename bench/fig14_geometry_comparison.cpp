/**
 * @file
 * Fig. 14: mean and standard deviation of the latency-ladder points
 * across devices for each Fig. 13 geometry. Expected: all four
 * geometries agree closely, confirming that profiling many SSDs in
 * parallel is valid while CPU utilisation stays low -- the basis of
 * the paper's "x10-x100 faster SSD profiling" claim.
 *
 * The four geometries execute as a plan on the parallel experiment
 * engine (--jobs / --seeds, see common.hh).
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);
    opts.params.profile = afa::core::TuningProfile::IrqAffinity;
    using afa::core::GeometryVariant;

    const std::vector<GeometryVariant> variants{
        GeometryVariant::FourPerCore, GeometryVariant::TwoPerCore,
        GeometryVariant::OnePerCore, GeometryVariant::SingleThread};

    afa::core::RunPlan plan(opts.params);
    plan.variants(variants);
    auto run = afa::bench::executePlan(plan, opts);

    std::vector<std::pair<std::string, afa::stats::LadderAggregate>>
        rows;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const auto &result = run.results[i];
        std::printf("--- %s: runs=%u ios=%llu ---\n",
                    afa::core::geometryVariantName(variants[i]),
                    result.runs,
                    (unsigned long long)result.totalIos);
        rows.emplace_back(
            afa::core::geometryVariantName(variants[i]),
            result.aggregate);
    }
    std::printf("\n=== Fig. 14: comparison of SSDs per physical core "
                "(usec) ===\n");
    afa::bench::printTable(afa::core::comparisonTable(rows), opts.csv);
    afa::bench::reportRunMetrics(run, opts);
    return 0;
}
