/**
 * @file
 * Ablation A4: polling vs interrupt completion (the Section V
 * discussion of Yang et al.'s "When poll is better than interrupt").
 * Polling removes the hardirq/softirq/context-switch path from the
 * latency but burns the submitting CPU, so the dense 4-SSDs-per-core
 * geometry loses throughput -- the trade-off the paper describes.
 */

#include "common.hh"

#include <algorithm>

using namespace afa::core;

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);
    opts.params.profile = TuningProfile::ExpFirmware;
    // Polling simulates every poll quantum as a scheduler segment
    // (~10x the events of interrupt mode); cap the sweep cost while
    // keeping the comparison statistically meaningful.
    opts.params.runtime =
        std::min<afa::sim::Tick>(opts.params.runtime,
                                 afa::sim::msec(1200));

    struct Case
    {
        const char *name;
        bool polled;
        GeometryVariant variant;
    };
    const Case cases[] = {
        {"interrupt, 1 SSD/core", false, GeometryVariant::OnePerCore},
        {"polling, 1 SSD/core", true, GeometryVariant::OnePerCore},
        {"interrupt, 4 SSD/core", false,
         GeometryVariant::FourPerCore},
        {"polling, 4 SSD/core", true, GeometryVariant::FourPerCore},
    };

    afa::core::RunPlan plan;
    for (const Case &c : cases) {
        auto params = opts.params;
        params.polledCompletions = c.polled;
        params.variant = c.variant;
        plan.add(c.name, params);
    }
    auto run = afa::bench::executePlan(plan, opts);

    std::vector<std::pair<std::string, afa::stats::LadderAggregate>>
        rows;
    for (std::size_t i = 0; i < run.results.size(); ++i) {
        const auto &result = run.results[i];
        double kiops = result.totalIos /
            afa::sim::toSec(opts.params.runtime) / 1000.0 /
            result.runs;
        std::printf("--- %s: avg %.1f us, p99.99 %.1f us, %.0f kIOPS "
                    "aggregate ---\n",
                    cases[i].name, result.aggregate.meanUs[0],
                    result.aggregate.meanUs[3], kiops);
        rows.emplace_back(cases[i].name, result.aggregate);
    }
    std::printf("\n=== A4: polling vs interrupt (usec) ===\n");
    afa::bench::printTable(comparisonTable(rows), opts.csv);
    afa::bench::reportRunMetrics(run, opts);
    std::printf("\nExpected: polling trims several microseconds of "
                "IRQ/wakeup path\nat 1 SSD/core, but at 4 SSDs/core "
                "two polling threads contend for\neach logical CPU "
                "and throughput/latency degrade -- poll is only\n"
                "better when CPUs are plentiful (the paper's open "
                "question).\n");
    return 0;
}
