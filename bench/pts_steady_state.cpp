/**
 * @file
 * SNIA PTS-E style steady-state check (the methodology the paper
 * follows, Section III-B): rounds of 4 KiB random reads on one SSD
 * with the PTS window/excursion arithmetic. FOB random reads settle
 * immediately -- which is precisely why the paper measures in the FOB
 * state -- and the rounds report shows it.
 */

#include "common.hh"

#include <memory>

#include "sim/logging.hh"
#include "workload/pts.hh"

using namespace afa::core;
using afa::sim::Simulator;

int
main(int argc, char **argv)
{
    afa::sim::Config cfg;
    cfg.parseArgs(argc - 1, argv + 1);
    auto rounds = cfg.getUint("rounds", 8);
    auto round_ms = cfg.getUint("round_ms", 250);
    bool csv = cfg.getBool("csv", false);

    Simulator sim(cfg.getUint("seed", 1));
    AfaSystemParams sys_params;
    sys_params.ssds = 1;
    Geometry geometry(afa::host::CpuTopology{}, 1);
    TuningConfig tuning =
        TuningConfig::forProfile(TuningProfile::IrqAffinity, geometry);
    sys_params.kernel = tuning.kernel;
    sys_params.firmware = tuning.firmware;
    sys_params.pinIrqAffinity = true;
    sys_params.background = afa::host::BackgroundParams::none();
    AfaSystem system(sim, sys_params);

    afa::workload::FioJob job = afa::workload::FioJob::parse(
        afa::sim::strfmt("rw=randread bs=4k iodepth=1 runtime=%llums",
                         (unsigned long long)round_ms));
    job.cpusAllowed = afa::host::CpuMask(1)
        << geometry.cpuForDevice(0);
    job.rtPriority = tuning.fioRtPriority;

    afa::workload::PtsRunner runner(sim, "pts", system.scheduler(),
                                    system.ioEngine(), 0, job,
                                    rounds);
    system.start();
    runner.start();
    sim.run(afa::sim::msec(
        static_cast<double>((round_ms + 50) * (rounds + 1))));
    if (!runner.finished())
        afa::sim::fatal("PTS rounds did not finish; raise the bound");

    std::printf("=== PTS-E steady-state rounds (1 SSD, FOB, 4k "
                "randread QD1) ===\n");
    afa::stats::Table table(
        {"round", "iops", "mean_us", "p99.9_us"});
    for (std::size_t i = 0; i < runner.rounds().size(); ++i) {
        const auto &round = runner.rounds()[i];
        table.addRow({afa::stats::Table::num(std::uint64_t(i)),
                      afa::stats::Table::num(round.iops, 0),
                      afa::stats::Table::num(round.meanLatencyUs, 2),
                      afa::stats::Table::num(round.p999LatencyUs,
                                             2)});
    }
    if (csv)
        std::fputs(table.toCsv().c_str(), stdout);
    else
        table.print();

    auto iops_ss = runner.iopsSteadyState();
    auto lat_ss = runner.latencySteadyState();
    std::printf("\nsteady state (PTS window=5, excursion 20%%, slope "
                "10%%):\n");
    std::printf("  IOPS   : %s (window avg %.0f, slope %.2f/round)\n",
                iops_ss.steady ? "reached" : "NOT reached",
                iops_ss.windowAverage, iops_ss.windowSlope);
    std::printf("  latency: %s (window avg %.2f us)\n",
                lat_ss.steady ? "reached" : "NOT reached",
                lat_ss.windowAverage);
    return 0;
}
