/**
 * @file
 * Fig. 11: latency distributions with the experimental SSD firmware
 * (SMART data update/save disabled) on top of the fully tuned host.
 * Expected: worst case drops from the SMART-stall scale (~600 us) to
 * tens of microseconds (paper: ~90 us), while the *range* of max
 * latency across SSDs stays wide (per-device firmware hiccups).
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);
    opts.params.profile = afa::core::TuningProfile::ExpFirmware;
    auto result = afa::core::ExperimentRunner::run(opts.params);
    afa::bench::reportFigure(
        "Fig. 11", "experimental firmware (SMART disabled)", result,
        opts);
    std::printf("max-latency range across SSDs: %.1f .. %.1f us\n",
                result.aggregate.minUs[6], result.aggregate.maxUs[6]);
    return 0;
}
