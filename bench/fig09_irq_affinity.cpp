/**
 * @file
 * Fig. 9: latency distributions after pinning all 2,560 NVMe MSI-X
 * vectors to their queue CPUs (procfs/tuna) on top of Fig. 8's
 * configuration. Expected: the 64 curves converge; the residual
 * 6-nines/max tail is the SMART housekeeping stall.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);
    opts.params.profile = afa::core::TuningProfile::IrqAffinity;
    auto result = afa::core::ExperimentRunner::run(opts.params);
    afa::bench::reportFigure("Fig. 9", "after setting CPU affinity",
                             result, opts);
    return 0;
}
