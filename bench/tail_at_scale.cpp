/**
 * @file
 * Ablation A6: the tail-at-scale motivation of Section I, measured.
 * "One request from a client is divided into multiple I/Os ... even
 * if one SSD out of many shows long tail latency, the entire I/O
 * from the client is delayed by the same amount."
 *
 * A client read is striped across W member SSDs (RAID-0, 4 KiB
 * strips) and completes with the slowest member. Sweeping W under
 * the default and the tuned host shows why the paper's host tuning
 * matters more the wider the array: the client's p99 approaches the
 * members' tail as W grows.
 *
 * With --telemetry W_ms the sweep also prints a windowed view: per
 * tuning profile, one row per sampling window with the client's
 * whole-IO p99 at every stripe width — the SMART-spike windows that
 * a whole-run p99 averages away stand out as rows. The sweep table
 * itself stays byte-identical with telemetry on or off.
 */

#include "common.hh"

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "obs/span_log.hh"
#include "raid/volume.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "workload/fio_thread.hh"

using namespace afa::core;
using afa::sim::Simulator;
using afa::workload::FioJob;
using afa::workload::FioThread;

namespace {

afa::stats::LatencySummary
runClient(const afa::bench::BenchOptions &opts, TuningProfile profile,
          unsigned width,
          afa::obs::TelemetryTimeline *timeline_out = nullptr)
{
    // Per-width simulator seed via a named fork of the experiment
    // seed: additive seed+width arithmetic would make width W at
    // --seed S replay as width W-1 at --seed S+1; the fork keys each
    // width into its own independent stream.
    Simulator sim(afa::sim::Rng(opts.params.seed)
                      .fork(afa::sim::strfmt("tail_at_scale.width%u",
                                             width))
                      .seed());
    AfaSystemParams sys_params;
    sys_params.ssds = width;
    Geometry geometry(afa::host::CpuTopology{}, width);
    TuningConfig tuning = TuningConfig::forProfile(profile, geometry);
    sys_params.kernel = tuning.kernel;
    sys_params.firmware = tuning.firmware;
    sys_params.pinIrqAffinity = tuning.pinIrqAffinity;
    sys_params.firmware.smart.period = opts.params.smartPeriod;
    sys_params.kernel.irq.irqBalanceInterval =
        opts.params.irqBalanceInterval;
    AfaSystem system(sim, sys_params);

    std::vector<unsigned> members;
    for (unsigned d = 0; d < width; ++d)
        members.push_back(d);
    afa::raid::StripedVolume volume(sim, "vol0", system.ioEngine(),
                                    members, 1);

    FioJob job;
    job.rw = afa::workload::RwMode::RandRead;
    job.blockSize = 4096 * width; // one strip per member
    job.runtime = opts.params.runtime;
    job.cpusAllowed = afa::host::CpuMask(1)
        << geometry.fioCpus()[0];
    job.rtPriority = tuning.fioRtPriority;
    job.name = "client";
    FioThread client(sim, "client", system.scheduler(),
                     volume, 0, job);
    // Windowed mode rides an internal span log (the telemetry stage
    // feed); nothing of it reaches the sweep table, which therefore
    // stays byte-identical with telemetry on or off.
    std::unique_ptr<afa::obs::SpanLog> spanLog;
    std::unique_ptr<afa::obs::Telemetry> telemetry;
    if (opts.params.telemetryWindow > 0 && timeline_out != nullptr) {
        afa::obs::TelemetryParams tp;
        tp.window = opts.params.telemetryWindow;
        telemetry = std::make_unique<afa::obs::Telemetry>(tp);
        afa::obs::TraceParams trace;
        trace.mask = afa::obs::kAllCategories;
        spanLog = std::make_unique<afa::obs::SpanLog>(trace);
        system.setSpanLog(spanLog.get());
        client.attachSpanLog(spanLog.get());
        spanLog->setTelemetry(telemetry.get());
        system.attachTelemetry(*telemetry);
    }
    system.start();
    client.start(0);
    if (telemetry)
        telemetry->start(sim);
    sim.run(opts.params.runtime + afa::sim::msec(200));
    if (telemetry) {
        telemetry->finish();
        *timeline_out = telemetry->timeline();
    }
    return afa::stats::LatencySummary::fromHistogram(
        afa::sim::strfmt("stripe-%u", width), client.histogram());
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);

    afa::stats::Table table({"config", "width", "client_ios",
                             "avg_us", "p99_us", "p99.9_us",
                             "max_us"});
    const bool windowed = opts.params.telemetryWindow > 0;
    // profile -> width -> windowed timeline (only in --telemetry runs).
    std::map<TuningProfile, std::map<unsigned,
                                     afa::obs::TelemetryTimeline>>
        timelines;
    for (TuningProfile profile :
         {TuningProfile::Default, TuningProfile::IrqAffinity}) {
        for (unsigned width : {1u, 4u, 16u, 64u}) {
            auto s = runClient(opts, profile, width,
                               windowed
                                   ? &timelines[profile][width]
                                   : nullptr);
            table.addRow({tuningProfileName(profile),
                          afa::stats::Table::num(
                              std::uint64_t(width)),
                          afa::stats::Table::num(s.samples),
                          afa::stats::Table::num(s.ladderUs[0], 1),
                          afa::stats::Table::num(s.ladderUs[1], 1),
                          afa::stats::Table::num(s.ladderUs[2], 1),
                          afa::stats::Table::num(s.ladderUs[6], 1)});
        }
    }
    std::printf("=== A6: tail at scale -- striped client reads "
                "(Section I motivation) ===\n");
    afa::bench::printTable(table, opts.csv);
    if (windowed) {
        // The same sweep sliced into sampling windows: one row per
        // window, the client's whole-IO p99 at every stripe width.
        const auto stage_id =
            static_cast<std::uint8_t>(afa::obs::Stage::Complete);
        for (auto &[profile, byWidth] : timelines) {
            std::printf("\nwindowed client p99 (usec), %s profile "
                        "(%.0f ms windows):\n",
                        tuningProfileName(profile),
                        afa::sim::toMsec(
                            opts.params.telemetryWindow));
            std::vector<std::string> cols{"end_ms"};
            for (const auto &[width, tl] : byWidth)
                cols.push_back(afa::sim::strfmt("w%u", width));
            afa::stats::Table wt(cols);
            std::set<std::uint64_t> windows;
            for (const auto &[width, tl] : byWidth)
                for (const auto &[w, row] : tl.stages)
                    if (row.count(stage_id))
                        windows.insert(w);
            for (std::uint64_t w : windows) {
                std::vector<std::string> cells{afa::stats::Table::num(
                    afa::sim::toMsec(
                        (w + 1) * opts.params.telemetryWindow), 0)};
                for (const auto &[width, tl] : byWidth) {
                    std::string text = "-";
                    const auto row = tl.stages.find(w);
                    if (row != tl.stages.end()) {
                        const auto c = row->second.find(stage_id);
                        if (c != row->second.end())
                            text = afa::stats::Table::num(
                                c->second.quantileTicks(0.99) / 1e3,
                                1);
                    }
                    cells.push_back(text);
                }
                wt.addRow(cells);
            }
            afa::bench::printTable(wt, opts.csv);
        }
    }
    std::printf(
        "\nReading: the client completes with the *slowest* of W "
        "members.\nUnder the default kernel the per-member tail is "
        "long, so the\nclient p99 degrades sharply with W and the "
        "max rides the\nmillisecond scheduler tail; on the tuned "
        "host the client tail is\npinned to the SMART ceiling "
        "regardless of W -- the reason AFA\ndeployments must care "
        "about per-SSD tails.\n\nNuance the sweep also exposes: "
        "pinning every vector to the\nsubmitting CPU serialises all "
        "W completion interrupts of a fan-out\nread onto one core "
        "(higher avg at W=64), while irqbalance's\nspreading "
        "parallelises them -- affinity tuning is per-workload, "
        "not\nuniversally optimal.\n");
    return 0;
}
