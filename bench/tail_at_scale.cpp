/**
 * @file
 * Ablation A6: the tail-at-scale motivation of Section I, measured.
 * "One request from a client is divided into multiple I/Os ... even
 * if one SSD out of many shows long tail latency, the entire I/O
 * from the client is delayed by the same amount."
 *
 * A client read is striped across W member SSDs (RAID-0, 4 KiB
 * strips) and completes with the slowest member. Sweeping W under
 * the default and the tuned host shows why the paper's host tuning
 * matters more the wider the array: the client's p99 approaches the
 * members' tail as W grows.
 */

#include "common.hh"

#include <memory>
#include <vector>

#include "raid/volume.hh"
#include "sim/logging.hh"
#include "workload/fio_thread.hh"

using namespace afa::core;
using afa::sim::Simulator;
using afa::workload::FioJob;
using afa::workload::FioThread;

namespace {

afa::stats::LatencySummary
runClient(const afa::bench::BenchOptions &opts, TuningProfile profile,
          unsigned width)
{
    Simulator sim(opts.params.seed + width);
    AfaSystemParams sys_params;
    sys_params.ssds = width;
    Geometry geometry(afa::host::CpuTopology{}, width);
    TuningConfig tuning = TuningConfig::forProfile(profile, geometry);
    sys_params.kernel = tuning.kernel;
    sys_params.firmware = tuning.firmware;
    sys_params.pinIrqAffinity = tuning.pinIrqAffinity;
    sys_params.firmware.smart.period = opts.params.smartPeriod;
    sys_params.kernel.irq.irqBalanceInterval =
        opts.params.irqBalanceInterval;
    AfaSystem system(sim, sys_params);

    std::vector<unsigned> members;
    for (unsigned d = 0; d < width; ++d)
        members.push_back(d);
    afa::raid::StripedVolume volume(sim, "vol0", system.ioEngine(),
                                    members, 1);

    FioJob job;
    job.rw = afa::workload::RwMode::RandRead;
    job.blockSize = 4096 * width; // one strip per member
    job.runtime = opts.params.runtime;
    job.cpusAllowed = afa::host::CpuMask(1)
        << geometry.fioCpus()[0];
    job.rtPriority = tuning.fioRtPriority;
    job.name = "client";
    FioThread client(sim, "client", system.scheduler(),
                     volume, 0, job);
    system.start();
    client.start(0);
    sim.run(opts.params.runtime + afa::sim::msec(200));
    return afa::stats::LatencySummary::fromHistogram(
        afa::sim::strfmt("stripe-%u", width), client.histogram());
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = afa::bench::parseOptions(argc, argv);

    afa::stats::Table table({"config", "width", "client_ios",
                             "avg_us", "p99_us", "p99.9_us",
                             "max_us"});
    for (TuningProfile profile :
         {TuningProfile::Default, TuningProfile::IrqAffinity}) {
        for (unsigned width : {1u, 4u, 16u, 64u}) {
            auto s = runClient(opts, profile, width);
            table.addRow({tuningProfileName(profile),
                          afa::stats::Table::num(
                              std::uint64_t(width)),
                          afa::stats::Table::num(s.samples),
                          afa::stats::Table::num(s.ladderUs[0], 1),
                          afa::stats::Table::num(s.ladderUs[1], 1),
                          afa::stats::Table::num(s.ladderUs[2], 1),
                          afa::stats::Table::num(s.ladderUs[6], 1)});
        }
    }
    std::printf("=== A6: tail at scale -- striped client reads "
                "(Section I motivation) ===\n");
    afa::bench::printTable(table, opts.csv);
    std::printf(
        "\nReading: the client completes with the *slowest* of W "
        "members.\nUnder the default kernel the per-member tail is "
        "long, so the\nclient p99 degrades sharply with W and the "
        "max rides the\nmillisecond scheduler tail; on the tuned "
        "host the client tail is\npinned to the SMART ceiling "
        "regardless of W -- the reason AFA\ndeployments must care "
        "about per-SSD tails.\n\nNuance the sweep also exposes: "
        "pinning every vector to the\nsubmitting CPU serialises all "
        "W completion interrupts of a fan-out\nread onto one core "
        "(higher avg at W=64), while irqbalance's\nspreading "
        "parallelises them -- affinity tuning is per-workload, "
        "not\nuniversally optimal.\n");
    return 0;
}
