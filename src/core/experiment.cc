#include "core/experiment.hh"

#include <algorithm>
#include <memory>

#include "core/system_report.hh"
#include "obs/span_log.hh"
#include "sim/logging.hh"
#include "workload/fio_thread.hh"

namespace afa::core {

using afa::sim::Simulator;
using afa::workload::FioThread;
using afa::workload::OpenLoopEngine;

namespace {

/**
 * The open-loop variant: one arrival-driven engine over every SSD
 * instead of closed-loop FIO threads. Single run — Table II geometry
 * variants are a closed-loop concept — but the trace/telemetry
 * plumbing is byte-for-byte the closed-loop pattern, so canonical
 * reports stay identical with telemetry on or off. The end protocol
 * drains in-flight IOs with a bounded grace, never the backlog: at
 * saturation the backlog cannot drain by design, and its depth is
 * part of the measurement (openLoop.totals.finalBacklog).
 */
ExperimentResult
runOpenLoop(const ExperimentParams &params)
{
    afa::host::CpuTopology topo(params.topology);
    Geometry geometry(topo, params.ssds);
    TuningConfig tuning = params.tuningOverride
        ? *params.tuningOverride
        : TuningConfig::forProfile(params.profile, geometry);

    ExperimentResult result;
    result.params = params;
    result.tuning = tuning;
    result.bootCmdline = tuning.kernel.bootCommandLine();
    result.perDevice.resize(params.ssds);
    result.runs = 1;

    Simulator sim(params.seed, std::max(1u, params.shards));

    AfaSystemParams sys_params;
    sys_params.ssds = params.ssds;
    sys_params.topology = params.topology;
    sys_params.kernel = tuning.kernel;
    sys_params.firmware = tuning.firmware;
    sys_params.pinIrqAffinity = tuning.pinIrqAffinity;
    sys_params.ftl = params.ftl;
    sys_params.faults = params.faults;
    sys_params.deviceFastPath = params.deviceFastPath;
    if (!params.backgroundLoad)
        sys_params.background = afa::host::BackgroundParams::none();
    if (params.smartPeriod > 0)
        sys_params.firmware.smart.period = params.smartPeriod;
    if (params.irqBalanceInterval > 0)
        sys_params.kernel.irq.irqBalanceInterval =
            params.irqBalanceInterval;

    AfaSystem system(sim, sys_params);
    std::unique_ptr<afa::obs::SpanLog> spanLog;
    bool internalTrace = false;
    if (params.traceMask != 0) {
        afa::obs::TraceParams trace;
        trace.mask = params.traceMask;
        trace.capacity = params.traceCapacity;
        trace.shards = std::max(1u, params.shards);
        spanLog = std::make_unique<afa::obs::SpanLog>(trace);
        system.setSpanLog(spanLog.get());
    }
    std::unique_ptr<afa::obs::Telemetry> telemetry;
    if (params.telemetryWindow > 0) {
        afa::obs::TelemetryParams tp;
        tp.window = params.telemetryWindow;
        tp.shards = std::max(1u, params.shards);
        telemetry = std::make_unique<afa::obs::Telemetry>(tp);
        if (!spanLog) {
            afa::obs::TraceParams trace;
            trace.mask = afa::obs::kAllCategories;
            trace.capacity = params.traceCapacity;
            trace.shards = std::max(1u, params.shards);
            spanLog = std::make_unique<afa::obs::SpanLog>(trace);
            system.setSpanLog(spanLog.get());
            internalTrace = true;
        }
        spanLog->setTelemetry(telemetry.get());
        system.attachTelemetry(*telemetry);
    }
    if (params.preconditionFraction > 0.0)
        for (unsigned d = 0; d < params.ssds; ++d)
            system.ssd(d).ftl().precondition(
                params.preconditionFraction);
    if (params.polledCompletions)
        afa::sim::warn("experiment: open-loop mode ignores polled "
                       "completions");

    afa::workload::OpenLoopParams ol = *params.openLoop;
    ol.duration = params.runtime;
    ol.rtPriority = tuning.fioRtPriority;
    if (ol.cpus.empty())
        ol.cpus = geometry.fioCpus();
    auto engine = std::make_unique<OpenLoopEngine>(
        sim, "openloop", system.scheduler(), system.ioEngine(),
        params.ssds, ol);
    if (spanLog)
        engine->attachSpanLog(spanLog.get());
    if (telemetry)
        engine->registerTelemetry(*telemetry);

    system.start();
    engine->start(0);
    if (telemetry)
        telemetry->start(sim);

    // Run the measurement, then drain in-flight IOs (only): the
    // grace is bounded so a saturated backlog ends the run with
    // exact finalBacklog/inflightAtEnd accounting instead of
    // stalling forever.
    sim.run(params.runtime + afa::sim::msec(100));
    bool drained = false;
    for (int rounds = 0; rounds < 100 && !drained; ++rounds) {
        drained = engine->finished();
        if (!drained)
            sim.run(sim.now() + afa::sim::msec(10));
    }
    if (!drained)
        afa::sim::warn("experiment: open-loop run did not drain "
                       "in-flight IOs within grace");
    if (telemetry) {
        telemetry->finish();
        result.telemetry.merge(telemetry->timeline());
    }

    for (unsigned d = 0; d < params.ssds; ++d)
        result.perDevice[d] =
            afa::stats::LatencySummary::fromHistogram(
                afa::sim::strfmt("nvme%u", d),
                engine->deviceHistogram(d));
    result.openLoop = engine->result();
    result.totalIos = result.openLoop.totals.completed;
    const double total_bytes =
        static_cast<double>(result.openLoop.totals.readBytes) +
        static_cast<double>(result.openLoop.totals.writeBytes);
    const double measured_seconds = afa::sim::toSec(params.runtime);
    if (measured_seconds > 0.0)
        result.aggregateGBps = total_bytes / measured_seconds / 1e9;
    result.simulatedEvents = sim.executedEvents();
    if (params.captureSystemReport)
        result.systemReportText = systemReport(system);
    const bool artifactTrace = spanLog && !internalTrace;
    if (artifactTrace) {
        result.attribution.merge(spanLog->attribution());
        result.spanDrops += spanLog->dropped();
        if (params.keepSpans)
            result.spans = spanLog->snapshot();
    }
    if (artifactTrace || params.faults) {
        afa::obs::MetricsRegistry registry;
        system.publishMetrics(registry);
        engine->publishMetrics(registry);
        if (artifactTrace) {
            registry.addCounter("obs.spans_recorded",
                                spanLog->recorded());
            registry.addCounter("obs.span_drops",
                                spanLog->dropped());
        }
        result.systemMetrics.merge(registry.snapshot());
    }

    result.aggregate =
        afa::stats::LadderAggregate::across(result.perDevice);
    return result;
}

} // namespace

ExperimentResult
ExperimentRunner::run(const ExperimentParams &params)
{
    if (params.openLoop)
        return runOpenLoop(params);

    afa::host::CpuTopology topo(params.topology);
    Geometry geometry(topo, params.ssds);
    TuningConfig tuning = params.tuningOverride
        ? *params.tuningOverride
        : TuningConfig::forProfile(params.profile, geometry);

    ExperimentResult result;
    result.params = params;
    result.tuning = tuning;
    result.bootCmdline = tuning.kernel.bootCommandLine();
    result.perDevice.resize(params.ssds);

    auto runs = params.placementOverride
        ? std::vector<Run>{*params.placementOverride}
        : geometry.runsFor(params.variant);
    result.runs = static_cast<unsigned>(runs.size());

    double total_bytes = 0.0;
    double measured_seconds = 0.0;

    for (std::size_t run_idx = 0; run_idx < runs.size(); ++run_idx) {
        const Run &placements = runs[run_idx];

        Simulator sim(params.seed + run_idx * 7919,
                      std::max(1u, params.shards));

        AfaSystemParams sys_params;
        sys_params.ssds = params.ssds;
        sys_params.topology = params.topology;
        sys_params.kernel = tuning.kernel;
        sys_params.firmware = tuning.firmware;
        sys_params.pinIrqAffinity = tuning.pinIrqAffinity;
        sys_params.ftl = params.ftl;
        sys_params.faults = params.faults;
        sys_params.deviceFastPath = params.deviceFastPath;
        if (!params.backgroundLoad)
            sys_params.background = afa::host::BackgroundParams::none();
        if (params.smartPeriod > 0)
            sys_params.firmware.smart.period = params.smartPeriod;
        if (params.irqBalanceInterval > 0)
            sys_params.kernel.irq.irqBalanceInterval =
                params.irqBalanceInterval;

        AfaSystem system(sim, sys_params);
        std::unique_ptr<afa::obs::SpanLog> spanLog;
        // An internal span log exists only to feed telemetry's
        // windowed histograms when no trace artifact was requested;
        // its attribution/metrics never reach the result, so reports
        // stay byte-identical with telemetry on or off.
        bool internalTrace = false;
        if (params.traceMask != 0) {
            afa::obs::TraceParams trace;
            trace.mask = params.traceMask;
            trace.capacity = params.traceCapacity;
            trace.shards = std::max(1u, params.shards);
            spanLog = std::make_unique<afa::obs::SpanLog>(trace);
            system.setSpanLog(spanLog.get());
        }
        std::unique_ptr<afa::obs::Telemetry> telemetry;
        if (params.telemetryWindow > 0) {
            afa::obs::TelemetryParams tp;
            tp.window = params.telemetryWindow;
            tp.shards = std::max(1u, params.shards);
            telemetry = std::make_unique<afa::obs::Telemetry>(tp);
            if (!spanLog) {
                afa::obs::TraceParams trace;
                trace.mask = afa::obs::kAllCategories;
                trace.capacity = params.traceCapacity;
                trace.shards = std::max(1u, params.shards);
                spanLog = std::make_unique<afa::obs::SpanLog>(trace);
                system.setSpanLog(spanLog.get());
                internalTrace = true;
            }
            spanLog->setTelemetry(telemetry.get());
            system.attachTelemetry(*telemetry);
        }
        if (params.polledCompletions)
            system.setPolledCompletions(true);
        if (params.preconditionFraction > 0.0)
            for (unsigned d = 0; d < params.ssds; ++d)
                system.ssd(d).ftl().precondition(
                    params.preconditionFraction);

        std::vector<std::unique_ptr<FioThread>> threads;
        for (const Placement &p : placements) {
            afa::workload::FioJob job = params.job;
            job.runtime = params.runtime;
            job.cpusAllowed = afa::host::CpuMask(1) << p.cpu;
            job.rtPriority = tuning.fioRtPriority;
            job.polling = params.polledCompletions;
            job.name = afa::sim::strfmt("fio-nvme%u", p.device);
            threads.push_back(std::make_unique<FioThread>(
                sim, job.name, system.scheduler(), system.ioEngine(),
                p.device, job));
            if (p.device < params.scatterDevices)
                threads.back()->attachScatterLog(&result.scatter);
            if (spanLog)
                threads.back()->attachSpanLog(spanLog.get());
        }

        system.start();
        for (auto &t : threads)
            t->start(0);
        if (telemetry)
            telemetry->start(sim);

        // Run to the end of the measurement, then drain stragglers.
        sim.run(params.runtime + afa::sim::msec(100));
        bool drained = false;
        for (int rounds = 0; rounds < 100 && !drained; ++rounds) {
            drained = true;
            for (auto &t : threads)
                if (!t->finished())
                    drained = false;
            if (!drained)
                sim.run(sim.now() + afa::sim::msec(10));
        }
        if (!drained)
            afa::sim::warn("experiment: run %zu did not drain cleanly",
                           run_idx);
        if (telemetry) {
            telemetry->finish();
            result.telemetry.merge(telemetry->timeline());
        }

        for (std::size_t i = 0; i < placements.size(); ++i) {
            unsigned device = placements[i].device;
            result.perDevice[device] =
                afa::stats::LatencySummary::fromHistogram(
                    afa::sim::strfmt("nvme%u", device),
                    threads[i]->histogram());
            result.totalIos += threads[i]->stats().completed;
            total_bytes +=
                static_cast<double>(threads[i]->stats().readBytes) +
                static_cast<double>(threads[i]->stats().writeBytes);
        }
        measured_seconds += afa::sim::toSec(params.runtime);
        result.simulatedEvents += sim.executedEvents();
        if (params.captureSystemReport)
            result.systemReportText = systemReport(system);
        const bool artifactTrace = spanLog && !internalTrace;
        if (artifactTrace) {
            result.attribution.merge(spanLog->attribution());
            result.spanDrops += spanLog->dropped();
            if (params.keepSpans && run_idx == 0)
                result.spans = spanLog->snapshot();
        }
        if (artifactTrace || params.faults) {
            afa::obs::MetricsRegistry registry;
            system.publishMetrics(registry);
            if (artifactTrace) {
                registry.addCounter("obs.spans_recorded",
                                    spanLog->recorded());
                registry.addCounter("obs.span_drops",
                                    spanLog->dropped());
            }
            result.systemMetrics.merge(registry.snapshot());
        }
    }

    result.aggregate =
        afa::stats::LadderAggregate::across(result.perDevice);
    if (measured_seconds > 0.0) {
        // Aggregate throughput of one run's worth of wall time.
        double per_run_seconds =
            measured_seconds / static_cast<double>(runs.size());
        (void)per_run_seconds;
        result.aggregateGBps =
            total_bytes / measured_seconds / 1e9 *
            static_cast<double>(runs.size());
    }
    return result;
}

} // namespace afa::core
