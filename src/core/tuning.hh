/**
 * @file
 * The paper's cumulative tuning ladder (Section IV):
 *
 *   Default     - stock CentOS 7 / Linux 4.7.2 behaviour (Fig. 6)
 *   Chrt        - + FIO at SCHED_FIFO priority 99 (Fig. 7)
 *   Isolcpus    - + isolcpus/nohz_full/rcu_nocbs/max_cstate=1/
 *                   idle=poll boot options (Fig. 8)
 *   IrqAffinity - + all 2,560 NVMe vectors pinned to their queue's
 *                   CPU, irqbalance stopped (Fig. 9)
 *   ExpFirmware - + experimental SSD firmware with SMART data
 *                   update/save disabled (Fig. 11)
 *
 * Each step includes every previous step, exactly as measured in the
 * paper.
 */

#ifndef AFA_CORE_TUNING_HH
#define AFA_CORE_TUNING_HH

#include <string>

#include "core/geometry.hh"
#include "host/kernel_config.hh"
#include "nvme/firmware_config.hh"

namespace afa::core {

/** The five system configurations of the paper. */
enum class TuningProfile : std::uint8_t {
    Default,
    Chrt,
    Isolcpus,
    IrqAffinity,
    ExpFirmware,
};

/** Printable name ("default", "chrt", "isolcpus", "irq", "exp-fw"). */
const char *tuningProfileName(TuningProfile profile);

/** Parse a profile name (as printed above). */
TuningProfile parseTuningProfile(const std::string &text);

/** The concrete settings a profile expands to. */
struct TuningConfig
{
    TuningProfile profile = TuningProfile::Default;

    /** FIO threads run SCHED_FIFO at this priority (0 = CFS). */
    int fioRtPriority = 0;

    /** Kernel configuration (boot options + policies). */
    afa::host::KernelConfig kernel;

    /** Pin every NVMe vector to its queue CPU and stop irqbalance. */
    bool pinIrqAffinity = false;

    /** SSD firmware configuration. */
    afa::nvme::FirmwareConfig firmware;

    /**
     * Expand a profile against a geometry (the isolation set is the
     * geometry's FIO CPU list, as in the paper's boot line).
     */
    static TuningConfig forProfile(TuningProfile profile,
                                   const Geometry &geometry);
};

} // namespace afa::core

#endif // AFA_CORE_TUNING_HH
