/**
 * @file
 * Report formatting shared by the bench harnesses: the per-device
 * percentile-ladder table (the data behind Figs. 6-9/11/13), the
 * cross-device mean/stddev comparison (Figs. 12/14), and Table II.
 */

#ifndef AFA_CORE_REPORT_HH
#define AFA_CORE_REPORT_HH

#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "stats/table.hh"

namespace afa::core {

/** Per-device ladder table (one row per SSD), values in usec. */
afa::stats::Table perDeviceTable(const ExperimentResult &result);

/**
 * Compact distribution view: for each ladder point, the min / mean /
 * max across devices -- the visual envelope of the figure's 64
 * curves.
 */
afa::stats::Table envelopeTable(const ExperimentResult &result);

/** Mean and stddev per ladder point for several configurations. */
afa::stats::Table comparisonTable(
    const std::vector<std::pair<std::string,
                                afa::stats::LadderAggregate>> &rows);

/** The Table II row describing a geometry variant. */
afa::stats::Table geometryTable(const Geometry &geometry,
                                const std::vector<GeometryVariant>
                                    &variants);

/** One-paragraph run header (profile, boot line, workload, runs). */
std::string describeExperiment(const ExperimentResult &result);

} // namespace afa::core

#endif // AFA_CORE_REPORT_HH
