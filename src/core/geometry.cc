#include "core/geometry.hh"

#include "sim/logging.hh"

namespace afa::core {

const char *
geometryVariantName(GeometryVariant variant)
{
    switch (variant) {
      case GeometryVariant::FourPerCore:
        return "4-ssds-per-core";
      case GeometryVariant::TwoPerCore:
        return "2-ssds-per-core";
      case GeometryVariant::OnePerCore:
        return "1-ssd-per-core";
      case GeometryVariant::SingleThread:
        return "single-fio-thread";
    }
    return "?";
}

Geometry::Geometry(const afa::host::CpuTopology &topology, unsigned ssds,
                   unsigned reserved_cores)
    : topo(topology), numSsds(ssds)
{
    if (ssds == 0)
        afa::sim::fatal("geometry: need at least one SSD");
    if (reserved_cores >= topo.physicalCores())
        afa::sim::fatal("geometry: %u reserved cores leave no FIO "
                        "cores on a %u-core host",
                        reserved_cores, topo.physicalCores());
    // Reserve the first N physical cores of socket 0 (all threads).
    for (unsigned core = 0; core < reserved_cores; ++core)
        for (unsigned t = 0; t < topo.parameters().threadsPerCore; ++t)
            reserved.insert(topo.logicalCpu(core, t));
    // FIO CPUs in Fig. 5 order: thread 0 of the remaining physical
    // cores first (cpu 4-19), then thread 1 (cpu 24-39).
    for (unsigned t = 0; t < topo.parameters().threadsPerCore; ++t)
        for (unsigned core = reserved_cores; core < topo.physicalCores();
             ++core)
            fio.push_back(topo.logicalCpu(core, t));
}

unsigned
Geometry::cpuForDevice(unsigned device) const
{
    if (device >= numSsds)
        afa::sim::panic("geometry: device %u out of range", device);
    return fio[device % fio.size()];
}

unsigned
Geometry::threadsPerRun(GeometryVariant variant) const
{
    unsigned fio_physical = static_cast<unsigned>(fio.size()) /
        topo.parameters().threadsPerCore;
    switch (variant) {
      case GeometryVariant::FourPerCore:
        return numSsds;
      case GeometryVariant::TwoPerCore:
        return std::min<unsigned>(numSsds,
                                  static_cast<unsigned>(fio.size()));
      case GeometryVariant::OnePerCore:
        return std::min<unsigned>(numSsds, fio_physical);
      case GeometryVariant::SingleThread:
        return 1;
    }
    return 1;
}

std::vector<Run>
Geometry::runsFor(GeometryVariant variant) const
{
    unsigned per_run = threadsPerRun(variant);
    std::vector<Run> runs;
    for (unsigned first = 0; first < numSsds; first += per_run) {
        Run run;
        unsigned count = std::min(per_run, numSsds - first);
        for (unsigned i = 0; i < count; ++i) {
            unsigned device = first + i;
            run.push_back(Placement{device, fio[i % fio.size()]});
        }
        runs.push_back(std::move(run));
    }
    return runs;
}

afa::host::CpuSet
Geometry::isolationSet() const
{
    afa::host::CpuSet set;
    for (unsigned cpu : fio)
        set.insert(cpu);
    return set;
}

} // namespace afa::core
