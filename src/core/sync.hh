/**
 * @file
 * Annotated synchronisation primitives.
 *
 * std::mutex carries no thread-safety attributes under libstdc++, so
 * Clang Thread Safety Analysis cannot reason about code that locks it
 * directly. Mutex wraps std::mutex as an AFA_CAPABILITY and MutexLock
 * replaces std::lock_guard as an AFA_SCOPED_CAPABILITY; together they
 * let the analysis prove that AFA_GUARDED_BY data is only touched
 * under its lock. Every mutex in concurrent simulator infrastructure
 * (RunMetricsLog, ParallelExperimentRunner progress, the log sink)
 * must be one of these — see DESIGN.md "Determinism & thread-safety
 * contract".
 */

#ifndef AFA_CORE_SYNC_HH
#define AFA_CORE_SYNC_HH

#include <mutex>

#include "core/thread_annotations.hh"

namespace afa::sync {

/**
 * A std::mutex annotated as a thread-safety capability.
 *
 * Lock through MutexLock so acquisition and release stay visible to
 * the analysis; the raw lock()/unlock() are annotated for the rare
 * caller that needs manual control.
 */
class AFA_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() AFA_ACQUIRE() { impl.lock(); }
    void unlock() AFA_RELEASE() { impl.unlock(); }
    bool try_lock() AFA_TRY_ACQUIRE(true) { return impl.try_lock(); }

  private:
    std::mutex impl;
};

/**
 * RAII lock for Mutex, annotated so the analysis knows the capability
 * is held between construction and destruction (std::lock_guard
 * itself is invisible to it).
 */
class AFA_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) AFA_ACQUIRE(mutex) : held(mutex)
    {
        held.lock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    ~MutexLock() AFA_RELEASE() { held.unlock(); }

  private:
    Mutex &held;
};

} // namespace afa::sync

#endif // AFA_CORE_SYNC_HH
