#include "core/report.hh"

#include <sstream>

#include "sim/logging.hh"
#include "stats/summary.hh"

namespace afa::core {

using afa::stats::LadderAggregate;
using afa::stats::NinesLadder;
using afa::stats::Table;

Table
perDeviceTable(const ExperimentResult &result)
{
    std::vector<std::string> headers{"device", "ios"};
    for (auto *label : NinesLadder::labels())
        headers.push_back(label);
    Table table(std::move(headers));
    for (const auto &dev : result.perDevice) {
        std::vector<std::string> row{dev.device,
                                     Table::num(dev.samples)};
        for (double v : dev.ladderUs)
            row.push_back(Table::num(v, 1));
        table.addRow(std::move(row));
    }
    return table;
}

Table
envelopeTable(const ExperimentResult &result)
{
    Table table({"percentile", "min_us", "mean_us", "max_us",
                 "stddev_us"});
    const auto &agg = result.aggregate;
    for (std::size_t p = 0; p < NinesLadder::kPoints; ++p) {
        table.addRow({NinesLadder::labels()[p],
                      Table::num(agg.minUs[p], 1),
                      Table::num(agg.meanUs[p], 1),
                      Table::num(agg.maxUs[p], 1),
                      Table::num(agg.stddevUs[p], 1)});
    }
    return table;
}

Table
comparisonTable(
    const std::vector<std::pair<std::string, LadderAggregate>> &rows)
{
    std::vector<std::string> headers{"metric", "config"};
    for (auto *label : NinesLadder::labels())
        headers.push_back(label);
    Table table(std::move(headers));
    for (const char *metric : {"mean", "stddev"}) {
        for (const auto &[name, agg] : rows) {
            std::vector<std::string> row{metric, name};
            bool mean = std::string(metric) == "mean";
            for (std::size_t p = 0; p < NinesLadder::kPoints; ++p)
                row.push_back(Table::num(
                    mean ? agg.meanUs[p] : agg.stddevUs[p], 1));
            table.addRow(std::move(row));
        }
    }
    return table;
}

Table
geometryTable(const Geometry &geometry,
              const std::vector<GeometryVariant> &variants)
{
    Table table({"config", "ssds/phys-core", "fio-threads/run",
                 "runs"});
    for (GeometryVariant v : variants) {
        unsigned per_run = geometry.threadsPerRun(v);
        unsigned runs = (geometry.ssds() + per_run - 1) / per_run;
        double per_core = 0.0;
        switch (v) {
          case GeometryVariant::FourPerCore:
            per_core = 4;
            break;
          case GeometryVariant::TwoPerCore:
            per_core = 2;
            break;
          case GeometryVariant::OnePerCore:
            per_core = 1;
            break;
          case GeometryVariant::SingleThread:
            per_core = 1;
            break;
        }
        table.addRow({geometryVariantName(v), Table::num(per_core, 0),
                      Table::num(std::uint64_t(per_run)),
                      Table::num(std::uint64_t(runs))});
    }
    return table;
}

std::string
describeExperiment(const ExperimentResult &result)
{
    std::ostringstream os;
    os << "profile=" << tuningProfileName(result.params.profile)
       << " geometry="
       << geometryVariantName(result.params.variant)
       << " ssds=" << result.params.ssds
       << " runs=" << result.runs
       << " runtime=" << afa::sim::toSec(result.params.runtime) << "s"
       << " seed=" << result.params.seed << "\n";
    os << "workload: rw=" << rwModeName(result.params.job.rw)
       << " bs=" << result.params.job.blockSize
       << " iodepth=" << result.params.job.ioDepth
       << (result.tuning.fioRtPriority > 0
               ? afa::sim::strfmt(" chrt -f %d",
                                  result.tuning.fioRtPriority)
               : std::string())
       << "\n";
    os << "boot cmdline: "
       << (result.bootCmdline.empty() ? "(default)"
                                      : result.bootCmdline)
       << "\n";
    if (result.tuning.pinIrqAffinity)
        os << "irq: all vectors pinned to queue CPUs; irqbalance off\n";
    if (!result.tuning.firmware.smart.enabled)
        os << "firmware: experimental (SMART update/save disabled)\n";
    os << "ios=" << result.totalIos << " throughput="
       << afa::sim::strfmt("%.2f GB/s", result.aggregateGBps)
       << " events=" << result.simulatedEvents << "\n";
    return os.str();
}

} // namespace afa::core
