#include "core/afa_system.hh"

#include "obs/metrics.hh"
#include "obs/span_log.hh"
#include "obs/telemetry.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"

namespace afa::core {

using afa::nvme::NvmeCommand;
using afa::nvme::NvmeCompletion;
using afa::sim::Simulator;
using afa::sim::Tracer;

AfaSystem::AfaSystem(Simulator &simulator, const AfaSystemParams &params,
                     Tracer *tracer)
    : sim(simulator), sysParams(params)
{
    if (params.ssds == 0)
        afa::sim::fatal("AfaSystem: need at least one SSD");

    // Fabric first (Fig. 2/4).
    pcieFabric = std::make_unique<afa::pcie::Fabric>(sim, "fabric");
    afa::pcie::AfaTopologyParams ft = params.fabric;
    ft.ssds = params.ssds;
    fabricTopo = buildAfaTopology(*pcieFabric, ft);

    // Shard partition: host + fabric + fault books on shard 0, the
    // SSD subtrees block-partitioned across shards 1..K-1 in device
    // order. The lookahead horizon is the fabric's minimum link
    // propagation: no cross-shard interaction can happen sooner than
    // one wire traversal. The horizon, the endpoint delivery bands,
    // and the shipped completion sends are set up in serial runs too:
    // the schedule is then the same deterministic function of the
    // model at every shard count, which is what makes the figures
    // bit-identical under --shards (see DESIGN.md "Sharded execution
    // contract").
    const unsigned shard_count = sim.shards();
    ssdShards.assign(params.ssds, 0);
    sim.setLookahead(pcieFabric->minPropagation());
    for (unsigned d = 0; d < params.ssds; ++d)
        pcieFabric->markEndpoint(fabricTopo.ssds[d]);
    if (shard_count > 1) {
        if (tracer)
            afa::sim::fatal("AfaSystem: the debug tracer is not "
                            "shard-safe; run with shards=1");
        if (sim.lookahead() == afa::sim::TickDelta{})
            afa::sim::fatal("AfaSystem: sharded run needs a positive "
                            "minimum link propagation for lookahead");
        for (unsigned d = 0; d < params.ssds; ++d) {
            unsigned s = 1 + (d * (shard_count - 1)) / params.ssds;
            ssdShards[d] = s;
            pcieFabric->setNodeShard(fabricTopo.ssds[d], s);
        }
    }

    // Host side.
    sched = std::make_unique<afa::host::Scheduler>(
        sim, "sched", afa::host::CpuTopology(params.topology),
        params.kernel, tracer);
    irqSub = std::make_unique<afa::host::IrqSubsystem>(
        sim, "irq", *sched, params.ssds, tracer);
    bg = std::make_unique<afa::host::BackgroundLoad>(
        sim, "bg", *sched, params.background);
    driver = std::make_unique<Driver>(*this);

    // SSDs. Each device subtree is built (and later started) under
    // its own ShardScope so every event it schedules lands on its
    // shard's queue.
    for (unsigned d = 0; d < params.ssds; ++d) {
        afa::sim::ShardScope shard_scope(sim, ssdShards[d]);
        nands.push_back(std::make_unique<afa::nand::NandArray>(
            sim, afa::sim::strfmt("nvme%u.nand", d), params.nand));
        ctrls.push_back(std::make_unique<afa::nvme::Controller>(
            sim, afa::sim::strfmt("nvme%u", d), params.firmware,
            *nands.back(), params.ftl, tracer));
        afa::nvme::Controller &ctrl = *ctrls.back();
        ctrl.setFastPath(params.deviceFastPath);
        ctrl.setQueuePairs(sched->topology().logicalCpus());
        afa::pcie::NodeId dev_node = fabricTopo.ssds[d];
        afa::pcie::NodeId host_node = fabricTopo.host;
        ctrl.setTransport([this, dev_node, host_node, d](
                              std::uint32_t bytes, std::uint64_t io,
                              afa::sim::EventFn fn) {
            // Device -> fabric: "ship" the send to the fabric's shard
            // one lookahead later, backdating the fabric entry to the
            // device-side tick. Exact because the device's edge link
            // carries no through-traffic or reservations, so nothing
            // can have touched it in the interim, and link arithmetic
            // already includes >= one propagation delay. Serial runs
            // take the same path (lookahead = min propagation) with
            // the same ordering band, so simultaneous completions
            // from different devices walk the fabric in the same
            // canonical ascending-endpoint order at any shard count.
            const afa::sim::Tick entry = sim.now();
            sim.scheduleOnShard(
                0, entry + sim.lookahead(),
                [this, entry, dev_node, host_node, bytes, io, d,
                 fn = std::move(fn)]() mutable {
                    pcieFabric->sendSpannedAt(
                        entry, dev_node, host_node, bytes, io,
                        afa::obs::ssdTrack(d),
                        afa::obs::Stage::FabricComplete,
                        std::move(fn));
                },
                /*internal=*/true,
                /*order=*/2 + dev_node);
        });
        ctrl.setCompletionHandler(
            [this, d](const NvmeCompletion &completion) {
                driver->onCompletion(d, completion);
            });
    }

    if (params.pinIrqAffinity)
        irqSub->pinAllToQueueCpus();

    if (params.faults) {
        std::vector<afa::nvme::Controller *> ctrl_ptrs;
        for (auto &ctrl : ctrls)
            ctrl_ptrs.push_back(ctrl.get());
        faults = std::make_unique<afa::fault::FaultEngine>(
            sim, params.faults, std::move(ctrl_ptrs),
            pcieFabric.get(), fabricTopo.ssds, ssdShards);
    }
}

void
AfaSystem::start()
{
    if (startedFlag)
        return;
    startedFlag = true;
    sched->start();
    irqSub->start();
    bg->start();
    for (unsigned d = 0; d < ctrls.size(); ++d) {
        afa::sim::ShardScope shard_scope(sim, ssdShards[d]);
        ctrls[d]->start();
    }
    if (faults)
        faults->start();
}

afa::workload::IoEngine &
AfaSystem::ioEngine()
{
    return *driver;
}

afa::nvme::Controller &
AfaSystem::ssd(unsigned index)
{
    if (index >= ctrls.size())
        afa::sim::panic("AfaSystem: ssd index %u out of range", index);
    return *ctrls[index];
}

std::size_t
AfaSystem::outstandingCommands() const
{
    return driver->outstanding();
}

const DriverStats &
AfaSystem::driverStats() const
{
    return driver->stats();
}

void
AfaSystem::addMetricsSource(
    std::function<void(afa::obs::MetricsRegistry &)> source)
{
    extraMetricsSources.push_back(std::move(source));
}

void
AfaSystem::setSpanLog(afa::obs::SpanLog *log)
{
    spanLogPtr = log;
    pcieFabric->setSpanLog(log);
    sched->setSpanLog(log);
    irqSub->setSpanLog(log);
    for (unsigned d = 0; d < ctrls.size(); ++d)
        ctrls[d]->setSpanLog(log, afa::obs::ssdTrack(d));
}

void
AfaSystem::attachTelemetry(afa::obs::Telemetry &telemetry)
{
    if (!telemetry.enabled())
        return;
    // Every source below reads state that only shard-0 events mutate
    // (the host, the fabric walks — device sends are shipped to shard
    // 0 — and the fault books), so a boundary sample on shard 0 is
    // race-free and shard-count-invariant.
    telemetry.addCounter("fabric.packets", [this] {
        return pcieFabric->stats().packets;
    });
    telemetry.addCounter("fabric.bytes", [this] {
        return pcieFabric->stats().bytes;
    });
    telemetry.addCounter("fabric.fast_path_packets", [this] {
        return pcieFabric->stats().fastPathPackets;
    });
    telemetry.addCounter("fabric.fallback_packets", [this] {
        return pcieFabric->stats().fallbackPackets;
    });
    telemetry.addCounter("fabric.link_replays", [this] {
        return pcieFabric->stats().linkReplays;
    });
    telemetry.addCounter("irq.delivered", [this] {
        return irqSub->stats().delivered;
    });
    telemetry.addCounter("sched.switches", [this] {
        std::uint64_t switches = 0;
        const unsigned cpus = sched->topology().logicalCpus();
        for (unsigned c = 0; c < cpus; ++c)
            switches += sched->cpuStats(c).switches;
        return switches;
    });
    telemetry.addGauge("driver.in_flight", [this] {
        return static_cast<double>(driver->outstanding());
    });
    if (sysParams.faults) {
        // Fault-run series only appear in faulted timelines, the
        // same gate publishMetrics() applies to --metrics-json.
        telemetry.addCounter("driver.timeouts", [this] {
            return driver->stats().timeouts;
        });
        telemetry.addCounter("driver.retries", [this] {
            return driver->stats().retries;
        });
        telemetry.addCounter("driver.aborts", [this] {
            return driver->stats().aborts;
        });
        telemetry.addCounter("fault.events_applied", [this] {
            return faults->stats().applied;
        });
        telemetry.addCounter("fault.events_reverted", [this] {
            return faults->stats().reverted;
        });
        telemetry.addGauge("fault.active", [this] {
            return static_cast<double>(faults->stats().active);
        });
    }
}

void
AfaSystem::publishMetrics(afa::obs::MetricsRegistry &registry) const
{
    const afa::pcie::FabricStats &fs = pcieFabric->stats();
    registry.addCounter("fabric.packets", fs.packets);
    registry.addCounter("fabric.bytes", fs.bytes);
    registry.addCounter("fabric.fast_path_packets", fs.fastPathPackets);
    registry.addCounter("fabric.fallback_packets", fs.fallbackPackets);
    registry.addCounter("fabric.queue_delay_ticks", fs.totalQueueDelay);
    registry.addCounter("fabric.link_replays", fs.linkReplays);

    const afa::host::IrqStats &is = irqSub->stats();
    registry.addCounter("irq.delivered", is.delivered);
    registry.addCounter("irq.remote_deliveries", is.remoteDeliveries);
    registry.addCounter("irq.cross_socket", is.crossSocket);
    registry.addCounter("irq.rebalances", is.rebalances);
    registry.addCounter("irq.vector_moves", is.vectorMoves);

    afa::host::CpuStats cpu;
    unsigned cpus = sched->topology().logicalCpus();
    for (unsigned c = 0; c < cpus; ++c) {
        const afa::host::CpuStats &s = sched->cpuStats(c);
        cpu.busyTime += s.busyTime;
        cpu.irqTime += s.irqTime;
        cpu.switches += s.switches;
        cpu.interrupts += s.interrupts;
        cpu.pulls += s.pulls;
        cpu.cstateWakes += s.cstateWakes;
        cpu.cstateExitDelay += s.cstateExitDelay;
    }
    registry.addCounter("sched.busy_ticks", cpu.busyTime);
    registry.addCounter("sched.irq_ticks", cpu.irqTime);
    registry.addCounter("sched.switches", cpu.switches);
    registry.addCounter("sched.interrupts", cpu.interrupts);
    registry.addCounter("sched.pulls", cpu.pulls);
    registry.addCounter("sched.cstate_wakes", cpu.cstateWakes);
    registry.addCounter("sched.cstate_exit_ticks", cpu.cstateExitDelay);

    afa::nvme::ControllerStats ssd;
    afa::nvme::FtlStats ftl;
    afa::nand::NandStats nand;
    std::uint64_t smart_collections = 0;
    std::uint64_t smart_saves = 0;
    for (std::size_t d = 0; d < ctrls.size(); ++d) {
        const afa::nvme::ControllerStats &cs = ctrls[d]->stats();
        ssd.readsCompleted += cs.readsCompleted;
        ssd.writesCompleted += cs.writesCompleted;
        ssd.bytesRead += cs.bytesRead;
        ssd.bytesWritten += cs.bytesWritten;
        ssd.hiccups += cs.hiccups;
        ssd.smartStallDelay += cs.smartStallDelay;
        ssd.droppedCommands += cs.droppedCommands;
        ssd.faultStallDelay += cs.faultStallDelay;
        ssd.fastPathCommands += cs.fastPathCommands;
        ssd.fallbackCommands += cs.fallbackCommands;
        const afa::nvme::FtlStats &fls = ctrls[d]->ftl().stats();
        ftl.hostReadsMapped += fls.hostReadsMapped;
        ftl.hostWrites += fls.hostWrites;
        ftl.gcRuns += fls.gcRuns;
        const afa::nand::NandStats &ns = nands[d]->stats();
        nand.reads += ns.reads;
        nand.programs += ns.programs;
        nand.erases += ns.erases;
        nand.dieBusyTime += ns.dieBusyTime;
        nand.channelBusyTime += ns.channelBusyTime;
        const afa::nvme::SmartEngine &se = ctrls[d]->smart();
        smart_collections += se.collections();
        smart_saves += se.saves();
    }
    registry.addCounter("nvme.reads_completed", ssd.readsCompleted);
    registry.addCounter("nvme.writes_completed", ssd.writesCompleted);
    registry.addCounter("nvme.bytes_read", ssd.bytesRead);
    registry.addCounter("nvme.bytes_written", ssd.bytesWritten);
    registry.addCounter("nvme.hiccups", ssd.hiccups);
    registry.addCounter("nvme.smart_stall_ticks", ssd.smartStallDelay);
    registry.addCounter("nvme.fast_path_commands", ssd.fastPathCommands);
    registry.addCounter("nvme.fallback_commands", ssd.fallbackCommands);
    registry.addCounter("smart.collections", smart_collections);
    registry.addCounter("smart.saves", smart_saves);
    registry.addCounter("ftl.host_reads_mapped", ftl.hostReadsMapped);
    registry.addCounter("ftl.host_writes", ftl.hostWrites);
    registry.addCounter("ftl.gc_runs", ftl.gcRuns);
    registry.addCounter("nand.reads", nand.reads);
    registry.addCounter("nand.programs", nand.programs);
    registry.addCounter("nand.erases", nand.erases);
    registry.addCounter("nand.die_busy_ticks", nand.dieBusyTime);
    registry.addCounter("nand.channel_busy_ticks",
                        nand.channelBusyTime);

    if (sysParams.faults) {
        // Fault-run counters only appear in faulted artifacts, so
        // healthy --metrics-json output is byte-identical to before.
        registry.addCounter("nvme.dropped_commands",
                            ssd.droppedCommands);
        registry.addCounter("nvme.fault_stall_ticks",
                            ssd.faultStallDelay);
        const DriverStats &ds = driver->stats();
        registry.addCounter("driver.timeouts", ds.timeouts);
        registry.addCounter("driver.retries", ds.retries);
        registry.addCounter("driver.aborts", ds.aborts);
        registry.addCounter("driver.stale_completions",
                            ds.staleCompletions);
        const afa::fault::FaultEngineStats &es = faults->stats();
        registry.addCounter("fault.events_applied", es.applied);
        registry.addCounter("fault.events_reverted", es.reverted);
    }

    for (const auto &source : extraMetricsSources)
        source(registry);
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

void
AfaSystem::Driver::submit(unsigned cpu,
                          const afa::workload::IoRequest &request,
                          CompleteFn on_device_complete)
{
    if (request.device >= sys.ctrls.size())
        afa::sim::panic("driver: device %u out of range",
                        request.device);
    std::uint64_t id = nextCmdId++;
    inFlight.emplace(id, Pending{std::move(on_device_complete),
                                 request.tag, request, cpu, 0, {}});
    startAttempt(id);
}

void
AfaSystem::Driver::startAttempt(std::uint64_t id)
{
    auto it = inFlight.find(id);
    Pending &pending = it->second;
    const afa::workload::IoRequest &request = pending.req;
    const unsigned cpu = pending.cpu;

    // Timeouts are armed only when a fault plan is loaded: on a
    // healthy run the driver schedules no extra events at all.
    if (sys.sysParams.faults)
        pending.timeout = sys.sim.scheduleAfter(
            sys.sysParams.faults->nvmeTimeout,
            [this, id] { onTimeout(id); });

    NvmeCommand cmd;
    cmd.op = request.op;
    cmd.lba = request.lba;
    cmd.bytes = request.bytes;
    cmd.queueId = static_cast<std::uint16_t>(cpu);
    cmd.cmdId = id;
    cmd.submitted = sys.sim.now();
    cmd.tag = request.tag;

    afa::nvme::Controller *ctrl = sys.ctrls[request.device].get();
    sys.pcieFabric->sendSpanned(sys.fabricTopo.host,
                                sys.fabricTopo.ssds[request.device],
                                sys.sysParams.sqeBytes, cmd.tag,
                                afa::obs::cpuTrack(cpu),
                                afa::obs::Stage::FabricSubmit,
                                [ctrl, cmd] { ctrl->submit(cmd); });
}

void
AfaSystem::Driver::onTimeout(std::uint64_t id)
{
    auto it = inFlight.find(id);
    if (it == inFlight.end())
        afa::sim::panic("driver: timeout for unknown command %llu",
                        (unsigned long long)id);
    ++drvStats.timeouts;
    Pending pending = std::move(it->second);
    inFlight.erase(it);
    const afa::fault::FaultPlan &plan = *sys.sysParams.faults;
    if (pending.attempts >= plan.maxRetries) {
        // Retry budget exhausted: fail the IO back to the submitter
        // on its own CPU (no interrupt fires for an abort).
        ++drvStats.aborts;
        pending.fn(afa::workload::IoResult{
            pending.cpu, afa::nvme::Status::TimedOut});
        return;
    }
    ++drvStats.retries;
    afa::sim::Tick backoff = plan.retryBackoff << pending.attempts;
    if (sys.spanLogPtr && pending.tag &&
        sys.spanLogPtr->wants(afa::obs::Category::Fault))
        sys.spanLogPtr->record(afa::obs::Stage::RetryWait, pending.tag,
                               sys.sim.now(), sys.sim.now() + backoff,
                               afa::obs::cpuTrack(pending.cpu));
    ++backoffWaits;
    sys.sim.scheduleAfter(
        backoff, [this, pending = std::move(pending)]() mutable {
            --backoffWaits;
            // Resubmit under a fresh command id so a late completion
            // of the timed-out attempt can be told apart (it counts
            // as stale in onCompletion()).
            std::uint64_t id = nextCmdId++;
            ++pending.attempts;
            inFlight.emplace(id, std::move(pending));
            startAttempt(id);
        });
}

std::uint64_t
AfaSystem::Driver::deviceBlocks(unsigned device) const
{
    if (device >= sys.ctrls.size())
        afa::sim::panic("driver: device %u out of range", device);
    return sys.ctrls[device]->ftl().logicalBlocks();
}

void
AfaSystem::Driver::onCompletion(unsigned device,
                                const NvmeCompletion &completion)
{
    auto it = inFlight.find(completion.cmdId);
    if (it == inFlight.end()) {
        if (sys.sysParams.faults) {
            // The driver already timed this attempt out (and retried
            // or aborted the IO); the device's late answer is dropped
            // like a CQE for a recycled tag.
            ++drvStats.staleCompletions;
            return;
        }
        afa::sim::panic("driver: completion for unknown command %llu",
                        (unsigned long long)completion.cmdId);
    }
    Pending pending = std::move(it->second);
    inFlight.erase(it);
    if (sys.sysParams.faults)
        sys.sim.cancel(pending.timeout);
    const afa::nvme::Status status = completion.status;
    if (sys.polledMode) {
        // Polled queues: the CQE sits in host memory; the submitting
        // thread's poll loop will find it. No interrupt is raised.
        pending.fn(afa::workload::IoResult{completion.queueId, status});
        return;
    }
    // Deliver through the MSI-X vector of (device, submit queue);
    // its affinity decides which CPU pays the hardirq/softirq cost.
    sys.irqSub->raise(device, completion.queueId,
                      [fn = std::move(pending.fn),
                       status](unsigned handler_cpu) {
                          fn(afa::workload::IoResult{handler_cpu,
                                                     status});
                      },
                      pending.tag);
}

} // namespace afa::core
