#include "core/afa_system.hh"

#include "sim/logging.hh"

namespace afa::core {

using afa::nvme::NvmeCommand;
using afa::nvme::NvmeCompletion;
using afa::sim::Simulator;
using afa::sim::Tracer;

AfaSystem::AfaSystem(Simulator &simulator, const AfaSystemParams &params,
                     Tracer *tracer)
    : sim(simulator), sysParams(params)
{
    if (params.ssds == 0)
        afa::sim::fatal("AfaSystem: need at least one SSD");

    // Fabric first (Fig. 2/4).
    pcieFabric = std::make_unique<afa::pcie::Fabric>(sim, "fabric");
    afa::pcie::AfaTopologyParams ft = params.fabric;
    ft.ssds = params.ssds;
    fabricTopo = buildAfaTopology(*pcieFabric, ft);

    // Host side.
    sched = std::make_unique<afa::host::Scheduler>(
        sim, "sched", afa::host::CpuTopology(params.topology),
        params.kernel, tracer);
    irqSub = std::make_unique<afa::host::IrqSubsystem>(
        sim, "irq", *sched, params.ssds, tracer);
    bg = std::make_unique<afa::host::BackgroundLoad>(
        sim, "bg", *sched, params.background);
    driver = std::make_unique<Driver>(*this);

    // SSDs.
    for (unsigned d = 0; d < params.ssds; ++d) {
        nands.push_back(std::make_unique<afa::nand::NandArray>(
            sim, afa::sim::strfmt("nvme%u.nand", d), params.nand));
        ctrls.push_back(std::make_unique<afa::nvme::Controller>(
            sim, afa::sim::strfmt("nvme%u", d), params.firmware,
            *nands.back(), params.ftl, tracer));
        afa::nvme::Controller &ctrl = *ctrls.back();
        ctrl.setQueuePairs(sched->topology().logicalCpus());
        afa::pcie::NodeId dev_node = fabricTopo.ssds[d];
        afa::pcie::NodeId host_node = fabricTopo.host;
        ctrl.setTransport([this, dev_node, host_node](
                              std::uint32_t bytes,
                              afa::sim::EventFn fn) {
            pcieFabric->send(dev_node, host_node, bytes,
                             std::move(fn));
        });
        ctrl.setCompletionHandler(
            [this, d](const NvmeCompletion &completion) {
                driver->onCompletion(d, completion);
            });
    }

    if (params.pinIrqAffinity)
        irqSub->pinAllToQueueCpus();
}

void
AfaSystem::start()
{
    if (startedFlag)
        return;
    startedFlag = true;
    sched->start();
    irqSub->start();
    bg->start();
    for (auto &ctrl : ctrls)
        ctrl->start();
}

afa::workload::IoEngine &
AfaSystem::ioEngine()
{
    return *driver;
}

afa::nvme::Controller &
AfaSystem::ssd(unsigned index)
{
    if (index >= ctrls.size())
        afa::sim::panic("AfaSystem: ssd index %u out of range", index);
    return *ctrls[index];
}

std::size_t
AfaSystem::outstandingCommands() const
{
    return driver->outstanding();
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

void
AfaSystem::Driver::submit(unsigned cpu,
                          const afa::workload::IoRequest &request,
                          CompleteFn on_device_complete)
{
    if (request.device >= sys.ctrls.size())
        afa::sim::panic("driver: device %u out of range",
                        request.device);
    std::uint64_t id = nextCmdId++;
    inFlight.emplace(id, std::move(on_device_complete));

    NvmeCommand cmd;
    cmd.op = request.op;
    cmd.lba = request.lba;
    cmd.bytes = request.bytes;
    cmd.queueId = static_cast<std::uint16_t>(cpu);
    cmd.cmdId = id;
    cmd.submitted = sys.sim.now();

    afa::nvme::Controller *ctrl = sys.ctrls[request.device].get();
    sys.pcieFabric->send(sys.fabricTopo.host,
                         sys.fabricTopo.ssds[request.device],
                         sys.sysParams.sqeBytes,
                         [ctrl, cmd] { ctrl->submit(cmd); });
}

std::uint64_t
AfaSystem::Driver::deviceBlocks(unsigned device) const
{
    if (device >= sys.ctrls.size())
        afa::sim::panic("driver: device %u out of range", device);
    return sys.ctrls[device]->ftl().logicalBlocks();
}

void
AfaSystem::Driver::onCompletion(unsigned device,
                                const NvmeCompletion &completion)
{
    auto it = inFlight.find(completion.cmdId);
    if (it == inFlight.end())
        afa::sim::panic("driver: completion for unknown command %llu",
                        (unsigned long long)completion.cmdId);
    CompleteFn fn = std::move(it->second);
    inFlight.erase(it);
    if (sys.polledMode) {
        // Polled queues: the CQE sits in host memory; the submitting
        // thread's poll loop will find it. No interrupt is raised.
        fn(completion.queueId);
        return;
    }
    // Deliver through the MSI-X vector of (device, submit queue);
    // its affinity decides which CPU pays the hardirq/softirq cost.
    sys.irqSub->raise(device, completion.queueId,
                      [fn = std::move(fn)](unsigned handler_cpu) {
                          fn(handler_cpu);
                      });
}

} // namespace afa::core
