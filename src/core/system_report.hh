/**
 * @file
 * System-wide activity report: where did the time go?
 *
 * Aggregates the per-component counters (CPU busy/irq time, scheduler
 * pulls, c-state wakes, IRQ placement, fabric utilisation, SSD SMART
 * stalls and hiccups) into the attribution tables an engineer would
 * build from LTTng + /proc on the real testbed. Used by the figure
 * benches' --report flag and the ssd_profiler example.
 */

#ifndef AFA_CORE_SYSTEM_REPORT_HH
#define AFA_CORE_SYSTEM_REPORT_HH

#include <string>

#include "core/afa_system.hh"

namespace afa::core {

/** Render the full attribution report for a (finished) system. */
std::string systemReport(AfaSystem &system);

} // namespace afa::core

#endif // AFA_CORE_SYSTEM_REPORT_HH
