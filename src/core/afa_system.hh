/**
 * @file
 * The assembled all-flash-array system under test: host CPUs +
 * scheduler + IRQ subsystem + background load, the PCIe switch
 * fabric, 64 NVMe SSD models, and the NVMe driver glue that turns it
 * all into an async I/O engine for FIO threads.
 *
 * This mirrors the paper's Fig. 4 testbed: a dual-socket Xeon host
 * whose second socket owns a Gen3 x16 uplink into the 2OU AFA.
 */

#ifndef AFA_CORE_AFA_SYSTEM_HH
#define AFA_CORE_AFA_SYSTEM_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fault/fault_engine.hh"
#include "host/background.hh"
#include "host/irq.hh"
#include "host/scheduler.hh"
#include "nand/nand_array.hh"
#include "nvme/controller.hh"
#include "pcie/afa_topology.hh"
#include "pcie/fabric.hh"
#include "workload/io_engine.hh"

namespace afa::obs {
class MetricsRegistry;
class Telemetry;
} // namespace afa::obs

namespace afa::core {

/** Everything configurable about the assembled system. */
struct AfaSystemParams
{
    unsigned ssds = 64;

    afa::host::CpuTopologyParams topology;
    afa::host::KernelConfig kernel;
    afa::host::BackgroundParams background =
        afa::host::BackgroundParams::centos7Defaults();

    afa::nvme::FirmwareConfig firmware;
    afa::nand::NandParams nand = simScaledNand();
    afa::nvme::FtlParams ftl;

    afa::pcie::AfaTopologyParams fabric;

    /** Section IV-D tuning: pin vectors, stop irqbalance. */
    bool pinIrqAffinity = false;

    /**
     * Single-event device command fast path (DESIGN.md §9). Off
     * forces every command through the chained event model; results
     * are tick-identical either way (the A/B is the exactness check),
     * only the executed-event count differs.
     */
    bool deviceFastPath = true;

    /** Bytes of a submission (SQE fetch + doorbell) on the fabric. */
    std::uint32_t sqeBytes = 72;

    /**
     * Optional fault plan (nullptr = healthy run). Loading a plan
     * arms the driver's command timeout/retry path and schedules the
     * plan's events via a FaultEngine; without one, every fault hook
     * is idle and the run is tick-identical to a build without them.
     * Shared so parallel sweep workers can reference one parse.
     */
    std::shared_ptr<const afa::fault::FaultPlan> faults;

    /**
     * NAND geometry scaled to the simulated 1 GiB logical space
     * (keeps 64 drives' FTL memory small); bandwidth and latency
     * parameters stay production-like.
     */
    static afa::nand::NandParams
    simScaledNand()
    {
        afa::nand::NandParams p;
        p.diesPerChannel = 8;
        p.blocksPerDie = 16;
        return p;
    }
};

/** Host NVMe driver recovery counters (all zero without faults). */
struct DriverStats
{
    std::uint64_t timeouts = 0;  ///< command timeouts fired
    std::uint64_t retries = 0;   ///< resubmissions after backoff
    std::uint64_t aborts = 0;    ///< IOs failed with Status::TimedOut
    /** Completions for commands the driver had already timed out
     *  (e.g. a limping device answering after the retry fired). */
    std::uint64_t staleCompletions = 0;
};

/** The system. Owns every component except the Simulator. */
class AfaSystem
{
  public:
    AfaSystem(afa::sim::Simulator &simulator,
              const AfaSystemParams &params,
              afa::sim::Tracer *tracer = nullptr);

    /** Start ticks, balancers, background load and SSD firmware. */
    void start();

    /** The async I/O engine FIO threads drive (the NVMe driver). */
    afa::workload::IoEngine &ioEngine();

    /**
     * Deliver completions without raising MSI-X interrupts: the
     * submitting thread discovers them by polling (Section V's
     * poll-vs-interrupt discussion). Pair with FioJob::polling.
     */
    void setPolledCompletions(bool polled) { polledMode = polled; }

    /** True when completions bypass the IRQ subsystem. */
    bool polledCompletions() const { return polledMode; }

    /**
     * Attach the obs span log to every instrumented layer (fabric,
     * scheduler, IRQ subsystem, each SSD's controller/FTL/NAND);
     * nullptr detaches. FIO threads attach themselves separately via
     * FioThread::attachSpanLog().
     */
    void setSpanLog(afa::obs::SpanLog *log);

    /**
     * Register this system's shard-0-resident sources on a telemetry
     * collector (DESIGN.md §14): fabric packet/byte/fast-path/
     * fallback counters, IRQ deliveries, context switches, a driver
     * in-flight gauge, and — on fault runs only, mirroring
     * publishMetrics() — driver recovery and fault bookkeeping
     * series, so healthy timelines never change when fault support
     * is compiled in. Device-resident state (nvme/ftl/nand) is
     * deliberately absent: sampling it live from shard 0 would race
     * with the device shards; per-device behaviour reaches the
     * timeline through the windowed stage histograms instead.
     */
    void attachTelemetry(afa::obs::Telemetry &telemetry);

    /**
     * Publish end-of-run component counters (fabric, IRQ, scheduler,
     * controllers, FTL, NAND, SMART) into @p registry under the
     * "<component>.<metric>" naming convention. Per-SSD counters are
     * summed across devices.
     */
    void publishMetrics(afa::obs::MetricsRegistry &registry) const;

    /**
     * Register an extra publisher that publishMetrics() invokes after
     * the built-in counters — how components the system does not own
     * (e.g. a raid::RebuildEngine) land in --metrics-json artifacts.
     */
    void addMetricsSource(
        std::function<void(afa::obs::MetricsRegistry &)> source);

    afa::host::Scheduler &scheduler() { return *sched; }
    afa::host::IrqSubsystem &irq() { return *irqSub; }
    afa::host::BackgroundLoad &background() { return *bg; }
    afa::pcie::Fabric &fabric() { return *pcieFabric; }
    afa::nvme::Controller &ssd(unsigned index);
    unsigned ssds() const { return static_cast<unsigned>(ctrls.size()); }
    const AfaSystemParams &params() const { return sysParams; }

    /** Driver recovery counters (timeouts/retries/aborts). */
    const DriverStats &driverStats() const;

    /** The fault engine, or nullptr when no plan is loaded. */
    afa::fault::FaultEngine *faultEngine() { return faults.get(); }

    /**
     * Which simulator shard each SSD subtree executes on (indexed by
     * device). All zeros in a serial run; under a sharded Simulator
     * the devices are block-partitioned over shards 1..K-1 while the
     * host, fabric and fault books stay on shard 0.
     */
    const std::vector<unsigned> &ssdShardMap() const { return ssdShards; }

    /** Outstanding driver commands, including retries waiting out
     *  their backoff (0 when quiescent). */
    std::size_t outstandingCommands() const;

  private:
    /** The NVMe driver: submission via the fabric, completion via
     *  MSI-X vectors into the IRQ subsystem. */
    class Driver : public afa::workload::IoEngine
    {
      public:
        explicit Driver(AfaSystem &system) : sys(system) {}

        void submit(unsigned cpu,
                    const afa::workload::IoRequest &request,
                    CompleteFn on_device_complete) override;
        std::uint64_t deviceBlocks(unsigned device) const override;

        void onCompletion(unsigned device,
                          const afa::nvme::NvmeCompletion &completion);

        std::size_t outstanding() const
        {
            return inFlight.size() + backoffWaits;
        }

        const DriverStats &stats() const { return drvStats; }

      private:
        /** One submitted-not-yet-completed command attempt. */
        struct Pending
        {
            CompleteFn fn;
            std::uint64_t tag = 0; ///< observability tag
            afa::workload::IoRequest req; ///< kept for resubmission
            unsigned cpu = 0;             ///< submitting CPU
            unsigned attempts = 0;        ///< retries so far
            afa::sim::EventHandle timeout;///< armed only with a plan
        };

        void startAttempt(std::uint64_t id);
        void onTimeout(std::uint64_t id);

        AfaSystem &sys;
        std::uint64_t nextCmdId = 1;
        std::unordered_map<std::uint64_t, Pending> inFlight;
        /** IOs between a timeout and their backed-off resubmission
         *  (in neither inFlight nor the device). */
        std::size_t backoffWaits = 0;
        DriverStats drvStats;
    };

    afa::sim::Simulator &sim;
    AfaSystemParams sysParams;

    std::unique_ptr<afa::pcie::Fabric> pcieFabric;
    afa::pcie::AfaTopology fabricTopo;
    std::vector<std::unique_ptr<afa::nand::NandArray>> nands;
    std::vector<std::unique_ptr<afa::nvme::Controller>> ctrls;
    std::unique_ptr<afa::host::Scheduler> sched;
    std::unique_ptr<afa::host::IrqSubsystem> irqSub;
    std::unique_ptr<afa::host::BackgroundLoad> bg;
    std::unique_ptr<Driver> driver;
    std::unique_ptr<afa::fault::FaultEngine> faults;
    std::vector<unsigned> ssdShards;
    std::vector<std::function<void(afa::obs::MetricsRegistry &)>>
        extraMetricsSources;
    afa::obs::SpanLog *spanLogPtr = nullptr;
    bool startedFlag = false;
    bool polledMode = false;
};

} // namespace afa::core

#endif // AFA_CORE_AFA_SYSTEM_HH
