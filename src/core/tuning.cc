#include "core/tuning.hh"

#include "sim/logging.hh"

namespace afa::core {

const char *
tuningProfileName(TuningProfile profile)
{
    switch (profile) {
      case TuningProfile::Default:
        return "default";
      case TuningProfile::Chrt:
        return "chrt";
      case TuningProfile::Isolcpus:
        return "isolcpus";
      case TuningProfile::IrqAffinity:
        return "irq";
      case TuningProfile::ExpFirmware:
        return "exp-fw";
    }
    return "?";
}

TuningProfile
parseTuningProfile(const std::string &text)
{
    if (text == "default")
        return TuningProfile::Default;
    if (text == "chrt")
        return TuningProfile::Chrt;
    if (text == "isolcpus")
        return TuningProfile::Isolcpus;
    if (text == "irq" || text == "irq-affinity")
        return TuningProfile::IrqAffinity;
    if (text == "exp-fw" || text == "firmware")
        return TuningProfile::ExpFirmware;
    afa::sim::fatal("unknown tuning profile '%s' (want default, chrt, "
                    "isolcpus, irq, exp-fw)",
                    text.c_str());
}

TuningConfig
TuningConfig::forProfile(TuningProfile profile, const Geometry &geometry)
{
    TuningConfig cfg;
    cfg.profile = profile;
    // The ladder is cumulative; fall-through expresses inclusion.
    switch (profile) {
      case TuningProfile::ExpFirmware:
        cfg.firmware.smart.enabled = false;
        [[fallthrough]];
      case TuningProfile::IrqAffinity:
        cfg.pinIrqAffinity = true;
        cfg.kernel.irq.irqBalanceEnabled = false;
        [[fallthrough]];
      case TuningProfile::Isolcpus:
        cfg.kernel.isolcpus = geometry.isolationSet();
        cfg.kernel.nohzFull = cfg.kernel.isolcpus;
        cfg.kernel.rcuNocbs = cfg.kernel.isolcpus;
        cfg.kernel.cstate.maxCstate = 1;
        cfg.kernel.cstate.idlePoll = true;
        [[fallthrough]];
      case TuningProfile::Chrt:
        cfg.fioRtPriority = 99;
        [[fallthrough]];
      case TuningProfile::Default:
        break;
    }
    return cfg;
}

} // namespace afa::core
