/**
 * @file
 * The parallel experiment engine.
 *
 * A RunPlan expands a base ExperimentParams over sweep axes (tuning
 * profile x geometry variant x seed replicas) into an ordered list of
 * RunDescriptors. A ParallelExperimentRunner executes the descriptors
 * on a pool of worker threads; every run owns a private Simulator
 * seeded from its own descriptor, so results are bit-identical to a
 * serial execution regardless of worker count or completion order.
 * Results land in plan order and per-run metrics (events executed,
 * wall time, events/sec) are collected through a thread-safe log.
 */

#ifndef AFA_CORE_RUN_PLAN_HH
#define AFA_CORE_RUN_PLAN_HH

#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/sync.hh"
#include "core/thread_annotations.hh"
#include "stats/run_metrics.hh"

namespace afa::core {

/** One planned experiment: a label and its full parameter set. */
struct RunDescriptor
{
    std::size_t index = 0; ///< slot in the result vector
    std::string label;     ///< e.g. "isolcpus" or "default/seed3"
    ExperimentParams params;
};

/**
 * Builder that expands sweep axes into run descriptors.
 *
 * Axes compose as a cross product: profiles x variants x seed
 * replicas. An axis left empty contributes the base value only.
 * Explicitly added runs (add()) are appended after the expansion.
 */
class RunPlan
{
  public:
    explicit RunPlan(ExperimentParams base_params = {})
        : baseParams(std::move(base_params))
    {
    }

    /** The parameter set every expanded run starts from. */
    ExperimentParams &base() { return baseParams; }
    const ExperimentParams &base() const { return baseParams; }

    /** Sweep the tuning-profile axis. */
    RunPlan &profiles(std::vector<TuningProfile> values);

    /** Sweep the geometry-variant axis. */
    RunPlan &variants(std::vector<GeometryVariant> values);

    /**
     * Replicate every run @p count times with seeds base.seed,
     * base.seed + 1, ... (labels gain a "/seedN" suffix when
     * count > 1).
     */
    RunPlan &seeds(unsigned count);

    /** Append one explicit run outside the sweep axes. */
    RunPlan &add(std::string label, ExperimentParams params);

    /** Expand the axes into ordered descriptors. */
    std::vector<RunDescriptor> expand() const;

  private:
    ExperimentParams baseParams;
    std::vector<TuningProfile> profileAxis;
    std::vector<GeometryVariant> variantAxis;
    unsigned seedReplicas = 1;
    std::vector<RunDescriptor> extraRuns;
};

/**
 * Executes a run plan on a worker pool.
 *
 * Work distribution is a single atomic cursor over the descriptor
 * list; each run writes its result into the slot reserved by its
 * index, so the output order is the plan order independent of which
 * worker finished first.
 *
 * Concurrency contract (checked by -Wthread-safety where it can be,
 * by the TSan CI job where it cannot):
 *  - result slots: each descriptor index is claimed by exactly one
 *    worker via the atomic cursor, so slot writes are disjoint and
 *    need no lock; the joins at the end of run() publish them to the
 *    caller. This disjointness is invisible to static analysis and
 *    is covered by the parallel-determinism suite under TSan.
 *  - metricsLog: internally synchronised (see RunMetricsLog).
 *  - progress lines: serialised by progressMutex so "[i/n]" lines
 *    from different workers cannot interleave mid-line.
 */
class ParallelExperimentRunner
{
  public:
    /** @param jobs worker threads; 0 = hardware concurrency. */
    explicit ParallelExperimentRunner(unsigned jobs = 0);

    /** Execute every descriptor; results are in plan order. */
    std::vector<ExperimentResult>
    run(const std::vector<RunDescriptor> &plan);

    /** Worker threads the runner will use. */
    unsigned jobs() const { return numJobs; }

    /** Print "run i/n finished" lines to stderr while running. */
    void setProgress(bool enabled) { progress = enabled; }

    /** Per-run metrics of the last run() call. */
    const afa::stats::RunMetricsLog &metrics() const
    {
        return metricsLog;
    }

    /** Elapsed wall seconds of the last run() call. */
    double suiteWallSeconds() const { return suiteSeconds; }

    /** Metrics table of the last run() call (with totals row). */
    afa::stats::Table metricsTable() const
    {
        return metricsLog.table(suiteSeconds);
    }

    /** Metrics JSON of the last run() call. */
    std::string metricsJson() const
    {
        return metricsLog.toJson(suiteSeconds, numJobs);
    }

    /**
     * Merge seed-replicated results back into one result per label
     * prefix: per-device summaries are concatenated across replicas
     * and the ladder aggregate recomputed over all of them.
     */
    static ExperimentResult
    mergeReplicas(const std::vector<const ExperimentResult *> &group);

  private:
    unsigned numJobs;
    bool progress = false;
    afa::stats::RunMetricsLog metricsLog;
    double suiteSeconds = 0.0;
    /** Serialises progress output from concurrent workers. */
    mutable afa::sync::Mutex progressMutex;
};

} // namespace afa::core

#endif // AFA_CORE_RUN_PLAN_HH
