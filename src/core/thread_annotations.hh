/**
 * @file
 * Clang Thread Safety Analysis annotation macros.
 *
 * These macros attach compile-time lock-discipline contracts to
 * mutexes, guarded data and locking functions. Under clang with
 * -Wthread-safety the analysis proves, per translation unit, that
 * every access to AFA_GUARDED_BY data happens with the named
 * capability held; under GCC (or clang without the attribute) every
 * macro expands to nothing, so annotated headers stay portable.
 *
 * The vocabulary follows the Clang Thread Safety Analysis docs (and
 * abseil's thread_annotations.h, which popularised it):
 *
 *   AFA_CAPABILITY(x)    - the annotated type IS a lockable capability
 *   AFA_SCOPED_CAPABILITY - RAII type that acquires/releases in
 *                           ctor/dtor (std::lock_guard shape)
 *   AFA_GUARDED_BY(m)    - data member readable/writable only with m
 *   AFA_PT_GUARDED_BY(m) - pointee (not the pointer) guarded by m
 *   AFA_REQUIRES(m)      - caller must hold m before calling
 *   AFA_ACQUIRE(m)/AFA_RELEASE(m) - function takes/drops m
 *   AFA_EXCLUDES(m)      - caller must NOT hold m (anti-deadlock)
 *   AFA_RETURN_CAPABILITY(m) - accessor returning a reference to m
 *   AFA_NO_THREAD_SAFETY_ANALYSIS - opt a function out (justify why!)
 *
 * See DESIGN.md "Determinism & thread-safety contract" for how to
 * annotate a new mutex, and src/core/sync.hh for the annotated
 * Mutex/MutexLock wrappers these macros are designed around.
 */

#ifndef AFA_CORE_THREAD_ANNOTATIONS_HH
#define AFA_CORE_THREAD_ANNOTATIONS_HH

#if defined(__clang__)
#define AFA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AFA_THREAD_ANNOTATION(x) // no-op outside clang
#endif

#define AFA_CAPABILITY(x) AFA_THREAD_ANNOTATION(capability(x))

#define AFA_SCOPED_CAPABILITY AFA_THREAD_ANNOTATION(scoped_lockable)

#define AFA_GUARDED_BY(x) AFA_THREAD_ANNOTATION(guarded_by(x))

#define AFA_PT_GUARDED_BY(x) AFA_THREAD_ANNOTATION(pt_guarded_by(x))

#define AFA_REQUIRES(...) \
    AFA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define AFA_ACQUIRE(...) \
    AFA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define AFA_RELEASE(...) \
    AFA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define AFA_TRY_ACQUIRE(...) \
    AFA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define AFA_EXCLUDES(...) \
    AFA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define AFA_RETURN_CAPABILITY(x) \
    AFA_THREAD_ANNOTATION(lock_returned(x))

#define AFA_ACQUIRED_BEFORE(...) \
    AFA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define AFA_ACQUIRED_AFTER(...) \
    AFA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define AFA_NO_THREAD_SAFETY_ANALYSIS \
    AFA_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // AFA_CORE_THREAD_ANNOTATIONS_HH
