/**
 * @file
 * The CPU-SSD geometry of Fig. 5 and its Table II variants.
 *
 * The paper reserves logical CPUs 0-3 and 20-23 for "other system
 * tasks" and spreads FIO threads over the remaining 32 logical CPUs:
 * nvme(n) runs on fio-cpu (n mod 32), so cpu(4) hosts nvme(0) and
 * nvme(32), ..., cpu(39) hosts nvme(31) and nvme(63). Table II then
 * varies the number of SSDs per physical core (4 / 2 / 1 / a single
 * FIO thread), splitting the 64 SSDs into disjoint sets measured in
 * consecutive runs.
 */

#ifndef AFA_CORE_GEOMETRY_HH
#define AFA_CORE_GEOMETRY_HH

#include <cstdint>
#include <vector>

#include "host/cpu_topology.hh"
#include "host/kernel_config.hh"

namespace afa::core {

/** SSDs per physical core (the Table II rows). */
enum class GeometryVariant : std::uint8_t {
    FourPerCore,  ///< Fig. 13(a): 64 FIO threads, 1 run
    TwoPerCore,   ///< Fig. 13(b): 32 FIO threads, 2 runs
    OnePerCore,   ///< Fig. 13(c): 16 FIO threads, 4 runs
    SingleThread, ///< Fig. 13(d): 1 FIO thread, 64 runs
};

/** Printable name of a variant. */
const char *geometryVariantName(GeometryVariant variant);

/** One FIO thread placement. */
struct Placement
{
    unsigned device; ///< nvme index
    unsigned cpu;    ///< logical CPU it is pinned to
};

/** One measurement run: a disjoint set of devices and their CPUs. */
using Run = std::vector<Placement>;

/** The Fig. 5 geometry resolver. */
class Geometry
{
  public:
    /**
     * @param topology host CPU shape (default: the paper's host)
     * @param ssds devices in the array
     * @param reserved_per_socket_cores physical cores per socket kept
     *        for system tasks (the paper reserves 4 on socket 0,
     *        i.e. logical 0-3 and 20-23)
     */
    explicit Geometry(
        const afa::host::CpuTopology &topology = afa::host::CpuTopology(),
        unsigned ssds = 64,
        unsigned reserved_cores = 4);

    /** Logical CPUs reserved for system tasks (0-3, 20-23). */
    const afa::host::CpuSet &reservedCpus() const { return reserved; }

    /** Logical CPUs available to FIO, in Fig. 5 order (4-19, 24-39). */
    const std::vector<unsigned> &fioCpus() const { return fio; }

    /** Fig. 5 mapping: the CPU that nvme(@p device) is pinned to. */
    unsigned cpuForDevice(unsigned device) const;

    /**
     * The runs of a Table II variant: each run is a disjoint device
     * set with its placements; run counts are 1 / 2 / 4 / 64.
     */
    std::vector<Run> runsFor(GeometryVariant variant) const;

    /** Number of FIO threads per run for a variant (Table II). */
    unsigned threadsPerRun(GeometryVariant variant) const;

    /** The paper's isolcpus list: exactly the FIO CPUs. */
    afa::host::CpuSet isolationSet() const;

    unsigned ssds() const { return numSsds; }

  private:
    afa::host::CpuTopology topo;
    unsigned numSsds;
    afa::host::CpuSet reserved;
    std::vector<unsigned> fio;
};

} // namespace afa::core

#endif // AFA_CORE_GEOMETRY_HH
