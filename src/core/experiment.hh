/**
 * @file
 * The experiment runner: builds a fresh simulated testbed for a
 * tuning profile + geometry variant, drives the paper's FIO workload
 * over it, and collects the per-SSD latency summaries the figures
 * plot. Table II variants that need multiple runs over disjoint SSD
 * sets are executed back to back and merged, like the paper did.
 */

#ifndef AFA_CORE_EXPERIMENT_HH
#define AFA_CORE_EXPERIMENT_HH

#include <optional>
#include <string>
#include <vector>

#include "core/afa_system.hh"
#include "core/geometry.hh"
#include "core/tuning.hh"
#include "obs/attribution.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/telemetry.hh"
#include "stats/scatter_log.hh"
#include "stats/summary.hh"
#include "workload/fio_job.hh"
#include "workload/openloop.hh"

namespace afa::core {

using afa::sim::Tick;

/** Parameters of one figure-style experiment. */
struct ExperimentParams
{
    TuningProfile profile = TuningProfile::Default;
    GeometryVariant variant = GeometryVariant::FourPerCore;
    unsigned ssds = 64;
    std::uint64_t seed = 1;

    /**
     * Simulator shards for the run (1 = classic serial execution).
     * The partition is per-SSD-subtree with the host and fabric on
     * shard 0; results are bit-identical at any shard count — shards
     * only change how fast the answer arrives.
     */
    unsigned shards = 1;

    /** Per-thread measurement duration (the paper used 120 s). */
    Tick runtime = afa::sim::sec(4);

    /**
     * Time compression: the paper's SMART fired every ~30 s over a
     * 120 s run; short simulations scale the period to keep the same
     * spikes-per-run ratio. 0 keeps the firmware default.
     */
    Tick smartPeriod = afa::sim::sec(1);

    /** Scaled irqbalance rescan interval (daemon default 10 s). */
    Tick irqBalanceInterval = afa::sim::sec(1);

    /** The workload (runtime/cpus_allowed/rtprio filled per thread). */
    afa::workload::FioJob job;

    /** Log raw samples for the first N devices (Fig. 10). */
    unsigned scatterDevices = 0;

    /** Run the CentOS 7 background zoo (off for calibration). */
    bool backgroundLoad = true;

    /** Override the number of host CPUs etc. when non-default. */
    afa::host::CpuTopologyParams topology;

    /**
     * Ablation hook: use this exact tuning configuration instead of
     * expanding `profile` (profile is still recorded for reports).
     */
    std::optional<TuningConfig> tuningOverride;

    /** Pre-map this fraction of every drive (0 = FOB, the paper). */
    double preconditionFraction = 0.0;

    /** FTL geometry/policy for aged-drive experiments. */
    afa::nvme::FtlParams ftl;

    /**
     * Deliver completions by polling instead of MSI-X interrupts
     * (the Section V discussion / Yang et al. comparison). Requires
     * iodepth=1 jobs.
     */
    bool polledCompletions = false;

    /** Capture the systemReport() of each run into the result. */
    bool captureSystemReport = false;

    /**
     * Explicit thread placements (device -> CPU) instead of the
     * Table II expansion of `variant`. Used by the NUMA ablation to
     * pin threads to uplink-local or remote sockets.
     */
    std::optional<Run> placementOverride;

    /**
     * Single-event device command fast path (DESIGN.md §9). Off
     * forces the chained event model on every controller; results
     * are bit-identical either way, only the executed-event count
     * (and wall time) differ. The regression suites A/B this knob.
     */
    bool deviceFastPath = true;

    /**
     * Span-tracing category mask (obs::Category bits). 0 keeps every
     * instrumentation site disabled: no SpanLog is even constructed,
     * so the run is bit-identical to an untraced build.
     */
    std::uint32_t traceMask = 0;

    /** Span ring capacity per run (records; 32 bytes each). */
    std::size_t traceCapacity = std::size_t(1) << 20;

    /**
     * Keep the raw span records of the *first* geometry run in the
     * result (for Perfetto export). Attribution totals always cover
     * every run; raw records of one run are plenty for a timeline
     * and keep result sizes bounded.
     */
    bool keepSpans = false;

    /**
     * Optional fault plan applied to every geometry run (nullptr =
     * healthy). Shared because ExperimentParams is copied into each
     * parallel-sweep RunDescriptor; all replicas reference one parse.
     * Loading a plan also publishes component metrics into the
     * result even when tracing is off.
     */
    std::shared_ptr<const afa::fault::FaultPlan> faults;

    /**
     * Open-loop arrival-driven traffic (DESIGN.md §15) instead of
     * the closed-loop FIO threads when set. One run over all SSDs:
     * geometry variants and placement overrides do not apply; the
     * engine duration is `runtime`, and empty `cpus` expands to the
     * geometry's FIO CPU list. The result's openLoop slice carries
     * the offered/completed rates, backlog accounting and the
     * whole-run response histogram.
     */
    std::optional<afa::workload::OpenLoopParams> openLoop;

    /**
     * Telemetry sampling window in ticks (0 = off). Non-zero slices
     * the run into simulated-time windows of per-stage latency
     * histograms, sampled counter/gauge series, and the simulator's
     * self-profile (DESIGN.md §14). Sampling rides internal shard-0
     * events, so every canonical report is byte-identical with
     * telemetry on or off.
     */
    afa::sim::Tick telemetryWindow = 0;
};

/** Result of one experiment (merged across geometry runs). */
struct ExperimentResult
{
    ExperimentParams params;
    TuningConfig tuning;

    /** Per-device summaries in device order (one line per Fig. curve). */
    std::vector<afa::stats::LatencySummary> perDevice;

    /** Mean/stddev per ladder point across devices (Figs. 12/14). */
    afa::stats::LadderAggregate aggregate;

    /** Raw samples when scatterDevices > 0. */
    afa::stats::ScatterLog scatter;

    std::uint64_t totalIos = 0;
    double aggregateGBps = 0.0;
    std::string bootCmdline;
    std::uint64_t simulatedEvents = 0;

    /** Attribution report of the last run (captureSystemReport). */
    std::string systemReportText;

    /** Runs executed (Table II's right column). */
    unsigned runs = 0;

    /** Per-stage latency attribution (traceMask != 0). */
    afa::obs::Attribution attribution;

    /** Raw span records of the first run (keepSpans). */
    std::vector<afa::obs::SpanRecord> spans;

    /** Span records overwritten by ring wrap, summed over runs. */
    std::uint64_t spanDrops = 0;

    /** End-of-run component counters (traceMask != 0). */
    afa::obs::MetricsSnapshot systemMetrics;

    /** Windowed telemetry timeline (telemetryWindow != 0), merged
     *  across geometry runs and seed replicas. */
    afa::obs::TelemetryTimeline telemetry;

    /** Open-loop counters/histogram (params.openLoop set), merged
     *  across seed replicas. */
    afa::workload::OpenLoopResult openLoop;
};

/** Runs experiments. */
class ExperimentRunner
{
  public:
    /** Execute the experiment (possibly several geometry runs). */
    static ExperimentResult run(const ExperimentParams &params);
};

} // namespace afa::core

#endif // AFA_CORE_EXPERIMENT_HH
