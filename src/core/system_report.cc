#include "core/system_report.hh"

#include <sstream>

#include "stats/table.hh"

namespace afa::core {

using afa::stats::Table;

std::string
systemReport(AfaSystem &system)
{
    std::ostringstream os;
    afa::sim::Tick now = system.scheduler().now();
    double elapsed_s = afa::sim::toSec(now);
    if (now == 0)
        return "(no simulated time elapsed)\n";

    // --- CPUs: busy/irq utilisation grouped by role ----------------
    const auto &topo = system.scheduler().topology();
    const auto &kernel = system.scheduler().config();
    Table cpus({"cpu group", "cpus", "busy%", "irq%", "switches",
                "pulls", "cstate wakes"});
    struct Group
    {
        const char *name;
        bool isolated;
    };
    for (const Group &group :
         {Group{"housekeeping", false}, Group{"isolated/fio", true}}) {
        double busy = 0, irq_time = 0;
        std::uint64_t switches = 0, pulls = 0, wakes = 0;
        unsigned count = 0;
        for (unsigned cpu = 0; cpu < topo.logicalCpus(); ++cpu) {
            bool isolated = kernel.isolcpus.count(cpu) != 0;
            if (isolated != group.isolated)
                continue;
            const auto &s = system.scheduler().cpuStats(cpu);
            busy += afa::sim::toSec(s.busyTime);
            irq_time += afa::sim::toSec(s.irqTime);
            switches += s.switches;
            pulls += s.pulls;
            wakes += s.cstateWakes;
            ++count;
        }
        if (count == 0)
            continue;
        double denom = elapsed_s * count;
        cpus.addRow({group.name, Table::num(std::uint64_t(count)),
                     Table::num(100.0 * busy / denom, 1),
                     Table::num(100.0 * irq_time / denom, 2),
                     Table::num(switches), Table::num(pulls),
                     Table::num(wakes)});
    }
    os << "CPU utilisation by group:\n" << cpus.toString() << "\n";

    // --- IRQ placement ----------------------------------------------
    const auto &irq = system.irq().stats();
    Table irqs({"irq metric", "value"});
    irqs.addRow({"interrupts delivered", Table::num(irq.delivered)});
    double remote_pct = irq.delivered
        ? 100.0 * static_cast<double>(irq.remoteDeliveries) /
            static_cast<double>(irq.delivered)
        : 0.0;
    irqs.addRow({"remote (handler != queue cpu) %",
                 Table::num(remote_pct, 1)});
    irqs.addRow({"cross-socket deliveries",
                 Table::num(irq.crossSocket)});
    irqs.addRow({"irqbalance scans", Table::num(irq.rebalances)});
    irqs.addRow({"vector affinity moves",
                 Table::num(irq.vectorMoves)});
    os << "IRQ subsystem:\n" << irqs.toString() << "\n";

    // --- Fabric -----------------------------------------------------
    const auto &fabric_stats = system.fabric().stats();
    Table fab({"fabric metric", "value"});
    fab.addRow({"packets", Table::num(fabric_stats.packets)});
    fab.addRow({"gigabytes",
                Table::num(static_cast<double>(fabric_stats.bytes) /
                               1e9,
                           2)});
    fab.addRow({"mean queue delay per packet (ns)",
                Table::num(fabric_stats.packets
                               ? static_cast<double>(
                                     fabric_stats.totalQueueDelay) /
                                   static_cast<double>(
                                       fabric_stats.packets)
                               : 0.0,
                           0)});
    os << "PCIe fabric:\n" << fab.toString() << "\n";

    // --- SSDs -------------------------------------------------------
    std::uint64_t reads = 0, writes = 0, hiccups = 0, collections = 0;
    afa::sim::Tick smart_delay = 0;
    for (unsigned d = 0; d < system.ssds(); ++d) {
        const auto &s = system.ssd(d).stats();
        reads += s.readsCompleted;
        writes += s.writesCompleted;
        hiccups += s.hiccups;
        smart_delay += s.smartStallDelay;
        collections += system.ssd(d).smart().collections();
    }
    Table ssds({"ssd metric", "value"});
    ssds.addRow({"reads completed", Table::num(reads)});
    ssds.addRow({"writes completed", Table::num(writes)});
    ssds.addRow({"SMART collections", Table::num(collections)});
    ssds.addRow({"total SMART stall delay (ms)",
                 Table::num(afa::sim::toMsec(smart_delay), 2)});
    ssds.addRow({"firmware hiccups", Table::num(hiccups)});
    os << "SSDs (aggregate over " << system.ssds() << "):\n"
       << ssds.toString();
    return os.str();
}

} // namespace afa::core
