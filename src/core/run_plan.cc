#include "core/run_plan.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "sim/logging.hh"

namespace afa::core {

RunPlan &
RunPlan::profiles(std::vector<TuningProfile> values)
{
    profileAxis = std::move(values);
    return *this;
}

RunPlan &
RunPlan::variants(std::vector<GeometryVariant> values)
{
    variantAxis = std::move(values);
    return *this;
}

RunPlan &
RunPlan::seeds(unsigned count)
{
    if (count == 0)
        count = 1;
    seedReplicas = count;
    return *this;
}

RunPlan &
RunPlan::add(std::string label, ExperimentParams params)
{
    RunDescriptor desc;
    desc.label = std::move(label);
    desc.params = std::move(params);
    extraRuns.push_back(std::move(desc));
    return *this;
}

std::vector<RunDescriptor>
RunPlan::expand() const
{
    // Empty axes contribute the base value with no label segment.
    const bool sweep_profiles = !profileAxis.empty();
    const bool sweep_variants = !variantAxis.empty();
    std::vector<TuningProfile> profs = sweep_profiles
        ? profileAxis
        : std::vector<TuningProfile>{baseParams.profile};
    std::vector<GeometryVariant> vars = sweep_variants
        ? variantAxis
        : std::vector<GeometryVariant>{baseParams.variant};

    std::vector<RunDescriptor> plan;
    // A plan made only of explicit runs has no implicit base run.
    if (!sweep_profiles && !sweep_variants && !extraRuns.empty()) {
        profs.clear();
        vars.clear();
    }
    for (TuningProfile profile : profs) {
        for (GeometryVariant variant : vars) {
            for (unsigned rep = 0; rep < seedReplicas; ++rep) {
                RunDescriptor desc;
                desc.params = baseParams;
                desc.params.profile = profile;
                desc.params.variant = variant;
                desc.params.seed = baseParams.seed + rep;

                std::string label;
                if (sweep_profiles)
                    label = tuningProfileName(profile);
                if (sweep_variants) {
                    if (!label.empty())
                        label += '/';
                    label += geometryVariantName(variant);
                }
                if (seedReplicas > 1) {
                    if (!label.empty())
                        label += '/';
                    label += afa::sim::strfmt(
                        "seed%llu",
                        (unsigned long long)desc.params.seed);
                }
                if (label.empty())
                    label = "run";
                desc.label = std::move(label);
                plan.push_back(std::move(desc));
            }
        }
    }
    // Explicit runs replicate across seeds too, each keeping its own
    // base seed.
    for (const RunDescriptor &extra : extraRuns) {
        for (unsigned rep = 0; rep < seedReplicas; ++rep) {
            RunDescriptor desc = extra;
            desc.params.seed = extra.params.seed + rep;
            if (seedReplicas > 1)
                desc.label += afa::sim::strfmt(
                    "/seed%llu",
                    (unsigned long long)desc.params.seed);
            plan.push_back(std::move(desc));
        }
    }
    for (std::size_t i = 0; i < plan.size(); ++i)
        plan[i].index = i;
    return plan;
}

ParallelExperimentRunner::ParallelExperimentRunner(unsigned jobs)
    : numJobs(jobs)
{
    if (numJobs == 0) {
        numJobs = std::thread::hardware_concurrency();
        if (numJobs == 0)
            numJobs = 1;
    }
}

std::vector<ExperimentResult>
ParallelExperimentRunner::run(const std::vector<RunDescriptor> &plan)
{
    using Clock = std::chrono::steady_clock;

    metricsLog.reset();
    std::vector<ExperimentResult> results(plan.size());
    if (plan.empty()) {
        suiteSeconds = 0.0;
        return results;
    }

    // Wall-clock reads below are runner telemetry only (wallSeconds /
    // events-per-second in the run-metrics block); they never reach
    // simulation state, which advances on Tick alone.
    const auto suite_start = Clock::now(); // detlint:allow(wall-clock)
    std::atomic<std::size_t> cursor{0};
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(numJobs, plan.size()));

    auto work = [&](unsigned worker_id) {
        for (;;) {
            std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= plan.size())
                return;
            metricsLog.noteStarted();
            const auto run_start = Clock::now(); // detlint:allow(wall-clock)
            results[i] = ExperimentRunner::run(plan[i].params);
            const std::chrono::duration<double> elapsed =
                Clock::now() - run_start; // detlint:allow(wall-clock)

            afa::stats::RunMetrics metrics;
            metrics.index = plan[i].index;
            metrics.label = plan[i].label;
            metrics.events = results[i].simulatedEvents;
            metrics.ios = results[i].totalIos;
            metrics.wallSeconds = elapsed.count();
            metrics.worker = worker_id;
            metricsLog.record(metrics);
            if (progress) {
                afa::sync::MutexLock lock(progressMutex);
                std::fprintf(
                    stderr,
                    "[%zu/%zu] %s: %llu events in %.2f s "
                    "(%.0f events/s, worker %u)\n",
                    metricsLog.finished(), plan.size(),
                    plan[i].label.c_str(),
                    (unsigned long long)metrics.events,
                    metrics.wallSeconds, metrics.eventsPerSec(),
                    worker_id);
            }
        }
    };

    if (workers <= 1) {
        // Run inline: identical code path, no thread overhead.
        work(0);
    } else {
        std::vector<std::jthread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(work, w);
        // jthread joins on destruction.
        pool.clear();
    }

    const std::chrono::duration<double> suite_elapsed =
        Clock::now() - suite_start; // detlint:allow(wall-clock)
    suiteSeconds = suite_elapsed.count();
    return results;
}

ExperimentResult
ParallelExperimentRunner::mergeReplicas(
    const std::vector<const ExperimentResult *> &group)
{
    if (group.empty())
        return ExperimentResult();
    ExperimentResult merged = *group.front();
    for (std::size_t i = 1; i < group.size(); ++i) {
        const ExperimentResult &r = *group[i];
        merged.perDevice.insert(merged.perDevice.end(),
                                r.perDevice.begin(),
                                r.perDevice.end());
        merged.totalIos += r.totalIos;
        merged.simulatedEvents += r.simulatedEvents;
        merged.runs += r.runs;
        merged.attribution.merge(r.attribution);
        merged.spanDrops += r.spanDrops;
        merged.systemMetrics.merge(r.systemMetrics);
        merged.telemetry.merge(r.telemetry);
        merged.openLoop.merge(r.openLoop);
        // Raw spans stay those of the first replica: one run's
        // timeline is what Perfetto export wants.
    }
    if (group.size() > 1) {
        double gbps = 0.0;
        for (const ExperimentResult *r : group)
            gbps += r->aggregateGBps;
        merged.aggregateGBps =
            gbps / static_cast<double>(group.size());
    }
    merged.aggregate =
        afa::stats::LadderAggregate::across(merged.perDevice);
    return merged;
}

} // namespace afa::core
