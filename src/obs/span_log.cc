#include "obs/span_log.hh"

#include <algorithm>
#include <tuple>

#include "obs/telemetry.hh"
#include "sim/shard.hh"

namespace afa::obs {

namespace {

/** Initial ring allocation; doubles until the capacity is reached. */
constexpr std::size_t kInitialRing = 1024;

} // namespace

SpanLog::SpanLog(const TraceParams &params) : mask_(params.mask)
{
    const unsigned n = std::max(1u, params.shards);
    // Split the configured capacity evenly; every lane keeps at least
    // one slot so record() never divides by zero on tiny budgets.
    const std::size_t per_lane =
        std::max<std::size_t>(params.capacity / n, 1);
    lanes.resize(n);
    for (Lane &lane : lanes) {
        lane.cap = per_lane;
        if (mask_ != 0)
            lane.ring.reserve(std::min(kInitialRing, lane.cap));
    }
}

void
SpanLog::record(Stage stage, std::uint64_t io, Tick begin, Tick end,
                std::uint16_t track, std::uint8_t flags,
                std::uint32_t arg)
{
    if (!wants(categoryOf(stage)))
        return;

    const unsigned shard = afa::sim::currentShard();
    Lane &lane = lanes[shard < lanes.size() ? shard : 0];

    ++lane.numRecorded;
    lane.accum.add(stage, end - begin);
    if (telemetry_ != nullptr)
        telemetry_->recordSpan(stage, end, end - begin);

    SpanRecord rec;
    rec.begin = begin;
    rec.end = end;
    rec.io = io;
    rec.arg = arg;
    rec.track = track;
    rec.stage = static_cast<std::uint8_t>(stage);
    rec.flags = flags;

    if (lane.ring.size() < lane.cap) {
        // Growth phase: push_back doubles the allocation
        // geometrically; clamp the final step to the capacity so the
        // ring never holds more than cap records.
        if (lane.ring.size() == lane.ring.capacity())
            lane.ring.reserve(
                std::min(lane.cap, lane.ring.capacity() * 2));
        lane.ring.push_back(rec);
        return;
    }
    // Wrap phase: overwrite the oldest record.
    lane.ring[lane.head] = rec;
    lane.head = (lane.head + 1) % lane.cap;
    ++lane.numDropped;
}

std::uint64_t
SpanLog::recorded() const
{
    std::uint64_t total = 0;
    for (const Lane &lane : lanes)
        total += lane.numRecorded;
    return total;
}

std::uint64_t
SpanLog::dropped() const
{
    std::uint64_t total = 0;
    for (const Lane &lane : lanes)
        total += lane.numDropped;
    return total;
}

std::size_t
SpanLog::retained() const
{
    std::size_t total = 0;
    for (const Lane &lane : lanes)
        total += lane.ring.size();
    return total;
}

std::size_t
SpanLog::capacity() const
{
    std::size_t total = 0;
    for (const Lane &lane : lanes)
        total += lane.cap;
    return total;
}

std::vector<SpanRecord>
SpanLog::snapshot() const
{
    std::vector<SpanRecord> out;
    out.reserve(retained());
    for (const Lane &lane : lanes) {
        // head is 0 until the ring wraps, so this is oldest-first in
        // both phases.
        out.insert(out.end(), lane.ring.begin() + lane.head,
                   lane.ring.end());
        out.insert(out.end(), lane.ring.begin(),
                   lane.ring.begin() + lane.head);
    }
    if (lanes.size() > 1) {
        // Merge order across lanes must not depend on the shard
        // partition: sort on the record contents alone.
        std::stable_sort(
            out.begin(), out.end(),
            [](const SpanRecord &a, const SpanRecord &b) {
                return std::tie(a.begin, a.end, a.track, a.stage,
                                a.io, a.arg, a.flags) <
                       std::tie(b.begin, b.end, b.track, b.stage,
                                b.io, b.arg, b.flags);
            });
    }
    return out;
}

Attribution
SpanLog::attribution() const
{
    Attribution merged = lanes[0].accum;
    for (std::size_t i = 1; i < lanes.size(); ++i)
        merged.merge(lanes[i].accum);
    return merged;
}

void
SpanLog::clear()
{
    for (Lane &lane : lanes) {
        lane.ring.clear();
        lane.head = 0;
        lane.numRecorded = 0;
        lane.numDropped = 0;
        lane.accum = Attribution{};
    }
}

} // namespace afa::obs
