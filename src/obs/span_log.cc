#include "obs/span_log.hh"

#include <algorithm>

namespace afa::obs {

namespace {

/** Initial ring allocation; doubles until the capacity is reached. */
constexpr std::size_t kInitialRing = 1024;

} // namespace

SpanLog::SpanLog(const TraceParams &params)
    : mask_(params.mask), cap(std::max<std::size_t>(params.capacity, 1))
{
    if (mask_ != 0)
        ring.reserve(std::min(kInitialRing, cap));
}

void
SpanLog::record(Stage stage, std::uint64_t io, Tick begin, Tick end,
                std::uint16_t track, std::uint8_t flags,
                std::uint32_t arg)
{
    if (!wants(categoryOf(stage)))
        return;

    ++numRecorded;
    accum.add(stage, end - begin);

    SpanRecord rec;
    rec.begin = begin;
    rec.end = end;
    rec.io = io;
    rec.arg = arg;
    rec.track = track;
    rec.stage = static_cast<std::uint8_t>(stage);
    rec.flags = flags;

    if (ring.size() < cap) {
        // Growth phase: push_back doubles the allocation
        // geometrically; clamp the final step to the capacity so the
        // ring never holds more than cap records.
        if (ring.size() == ring.capacity())
            ring.reserve(std::min(cap, ring.capacity() * 2));
        ring.push_back(rec);
        return;
    }
    // Wrap phase: overwrite the oldest record.
    ring[head] = rec;
    head = (head + 1) % cap;
    ++numDropped;
}

std::vector<SpanRecord>
SpanLog::snapshot() const
{
    std::vector<SpanRecord> out;
    out.reserve(ring.size());
    // head is 0 until the ring wraps, so this is oldest-first in both
    // phases.
    out.insert(out.end(), ring.begin() + head, ring.end());
    out.insert(out.end(), ring.begin(), ring.begin() + head);
    return out;
}

void
SpanLog::clear()
{
    ring.clear();
    head = 0;
    numRecorded = 0;
    numDropped = 0;
    accum = Attribution{};
}

} // namespace afa::obs
