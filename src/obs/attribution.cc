#include "obs/attribution.hh"

#include <algorithm>
#include <bit>

#include "sim/types.hh"

namespace afa::obs {

void
StageTotals::add(Tick duration)
{
    ++count;
    totalTicks += duration;
    maxTicks = std::max(maxTicks, duration);
    ++buckets[std::bit_width(duration)];
}

void
StageTotals::merge(const StageTotals &other)
{
    count += other.count;
    totalTicks += other.totalTicks;
    maxTicks = std::max(maxTicks, other.maxTicks);
    for (unsigned i = 0; i < kBuckets; ++i)
        buckets[i] += other.buckets[i];
}

double
StageTotals::meanTicks() const
{
    if (count == 0)
        return 0.0;
    return static_cast<double>(totalTicks) /
        static_cast<double>(count);
}

Tick
StageTotals::approxQuantileTicks(double q) const
{
    if (count == 0)
        return 0;
    auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count));
    target = std::min(target, count - 1);
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        seen += buckets[i];
        if (seen > target) {
            // Upper bound of bucket i: durations d with
            // bit_width(d) == i satisfy d <= 2^i - 1.
            if (i == 0)
                return 0;
            return (Tick(1) << i) - 1;
        }
    }
    return maxTicks;
}

void
Attribution::add(Stage stage, Tick duration)
{
    stages[static_cast<std::size_t>(stage)].add(duration);
}

void
Attribution::merge(const Attribution &other)
{
    for (unsigned i = 0; i < kStageCount; ++i)
        stages[i].merge(other.stages[i]);
}

bool
Attribution::empty() const
{
    for (const StageTotals &s : stages)
        if (s.count != 0)
            return false;
    return true;
}

afa::stats::Table
Attribution::table() const
{
    afa::stats::Table table({"stage", "spans", "total ms", "mean us",
                             "~p99 us", "max us", "% of IO"});
    const StageTotals &complete =
        stages[static_cast<std::size_t>(Stage::Complete)];
    double io_total = static_cast<double>(complete.totalTicks);
    for (unsigned i = 0; i < kStageCount; ++i) {
        const StageTotals &s = stages[i];
        if (s.count == 0)
            continue;
        double share = io_total > 0.0
            ? 100.0 * static_cast<double>(s.totalTicks) / io_total
            : 0.0;
        table.addRow(
            {stageName(static_cast<Stage>(i)),
             afa::stats::Table::num(s.count),
             afa::stats::Table::num(
                 static_cast<double>(s.totalTicks) / 1e6, 2),
             afa::stats::Table::num(s.meanTicks() / 1e3, 1),
             afa::stats::Table::num(
                 afa::sim::toUsec(s.approxQuantileTicks(0.99)), 1),
             afa::stats::Table::num(afa::sim::toUsec(s.maxTicks), 1),
             afa::stats::Table::num(share, 1)});
    }
    return table;
}

std::string
Attribution::toText() const
{
    return table().toString();
}

} // namespace afa::obs
