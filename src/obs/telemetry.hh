/**
 * @file
 * Time-series telemetry: windowed per-stage latency histograms,
 * ACT-style threshold buckets, sampled counter/gauge sources, and
 * the simulator's self-profiling stream.
 *
 * Every end-of-run surface the repo already has (MetricsRegistry
 * snapshots, Attribution totals, Perfetto spans) aggregates a whole
 * run into one number per metric. Telemetry slices the same signals
 * into fixed simulated-time windows (--telemetry=<window_ms>):
 *
 *  - Stage rows: per [w*W, (w+1)*W) window, a log2 duration histogram
 *    per span Stage, fed exactly per record from SpanLog::record()
 *    like the Attribution accumulators — windowed counts stay exact
 *    even when the span ring wraps or drops. Each cell also keeps the
 *    ACT-style exceed counters (ops with duration > 1/2/4/8/... ms),
 *    counted exactly at record time because millisecond thresholds
 *    are not log2-bucket boundaries in ticks.
 *
 *  - Counter/gauge rows: named sources registered by the model
 *    (driver in-flight, fabric fast-path/fallback packets, rebuild
 *    progress, ...) sampled at every window boundary and exported as
 *    per-window deltas (counters) or instantaneous values (gauges).
 *
 *  - Sim rows: the Simulator's self-profiling stream
 *    (Simulator::shardStats()): per-shard executed events, mailbox
 *    cross-posts, barrier windows, and barrier wall-stall time.
 *
 * Determinism contract (DESIGN.md §14): sampling happens in events
 * scheduled with internal=true on shard 0, in the highest same-tick
 * ordering band, so
 *  (a) samples never count toward executedEvents()/events-per-IO,
 *  (b) a sample at tick T observes shard-0 state after every model
 *      event of tick T, a rule that is independent of shard count,
 *  (c) every canonical report stays byte-identical with telemetry on
 *      or off at any --shards x --jobs.
 * Registered sources must be shard-0-resident (only mutated by
 * shard-0 events); per-device state is windowed through the stage
 * histograms instead of live sampling. Wall-clock self-profiling
 * fields are diagnostic only and are emitted only when non-zero, so
 * serial timelines are fully deterministic artifacts.
 */

#ifndef AFA_OBS_TELEMETRY_HH
#define AFA_OBS_TELEMETRY_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "sim/simulator.hh"

namespace afa::obs {

using afa::sim::Tick;

/** ACT-style latency thresholds: 1, 2, 4, ... 128 ms. */
constexpr unsigned kActThresholds = 8;

/** Threshold k in ticks (2^k milliseconds). */
constexpr Tick
actThresholdTicks(unsigned k)
{
    return Tick(1000000) << k;
}

/**
 * One window's histogram of one stage: exact count/total/max, log2
 * duration buckets, and the ACT exceed counters. Commutative adds
 * only, so lane/run/replica merges are order-independent.
 */
struct WindowStageCell
{
    static constexpr unsigned kBuckets = 64;

    std::uint64_t count = 0;
    std::uint64_t totalTicks = 0;
    Tick maxTicks = 0;
    /** buckets[i] counts durations with bit_width(d) == i. */
    std::array<std::uint64_t, kBuckets> buckets{};
    /** exceed[k] counts durations > actThresholdTicks(k). */
    std::array<std::uint64_t, kActThresholds> exceed{};

    void add(Tick duration);
    void merge(const WindowStageCell &other);
    double meanTicks() const;

    /** Windowed quantile, linearly interpolated inside the log2
     *  bucket that holds the target rank. */
    Tick quantileTicks(double q) const;
};

/**
 * The mergeable, plain-data timeline a Telemetry instance produces:
 * per-window stage cells, per-window counter deltas / gauge values,
 * and the per-window simulator self-profile. Merging across lanes,
 * geometry runs and seed replicas is deterministic (maps are
 * key-ordered; all combination rules are commutative).
 */
struct TelemetryTimeline
{
    /** Window length in ticks (0 = disabled/empty). */
    Tick window = 0;

    /** window index -> stage id -> cell. */
    std::map<std::uint64_t, std::map<std::uint8_t, WindowStageCell>>
        stages;

    /** One sampled point of a counter/gauge series. */
    struct Point
    {
        std::uint64_t delta = 0; ///< counter delta over the window
        double value = 0.0;      ///< gauge value at the window end
    };

    /** One registered source's series. */
    struct Series
    {
        MetricKind kind = MetricKind::Counter;
        std::map<std::uint64_t, Point> points;
    };

    /** source name -> series (name-ordered, like MetricsSnapshot). */
    std::map<std::string, Series> series;

    /** The point of series @p name at window @p w, or nullptr. */
    const Point *seriesPoint(const std::string &name,
                             std::uint64_t w) const;

    /** Per-window simulator self-profile (deltas over the window). */
    struct SimWindow
    {
        std::vector<afa::sim::ShardStat> shards;
        std::uint64_t windows = 0;        ///< barrier windows planned
        std::uint64_t mailboxDrained = 0; ///< cross messages enqueued
    };

    /** window index -> self-profile deltas. */
    std::map<std::uint64_t, SimWindow> sim;

    bool empty() const;

    /** Fold another timeline in: stage cells and counter deltas add,
     *  gauges keep the larger value, sim profiles add shard-wise. */
    void merge(const TelemetryTimeline &other);

    /** JSON-lines export: one self-describing object per row, rows
     *  ordered by (window, row kind, stage id / name / shard). */
    std::string toJsonLines() const;

    /** The same rows as one JSON array (for --metrics-json embeds). */
    std::string toJson(const std::string &indent = "") const;

    /** Tidy CSV export (one header, one row per timeline entry). */
    std::string toCsv() const;
};

/** Telemetry construction parameters. */
struct TelemetryParams
{
    /** Sampling window in ticks (0 disables everything). */
    Tick window = 0;

    /** Stage-lane count; must match the Simulator's shard count. */
    unsigned shards = 1;
};

/**
 * The telemetry collector. One instance belongs to one Simulator
 * (like a SpanLog): stage feeds index per-shard lanes, sources are
 * sampled by an internal shard-0 event every window.
 */
class Telemetry
{
  public:
    /** Same-tick ordering band of the sampling events: above every
     *  model band, so a sample at tick T runs after all of T's model
     *  events on shard 0 — at any shard count. */
    static constexpr std::uint32_t kSampleOrderBand = 0xffffffffu;

    explicit Telemetry(const TelemetryParams &params);

    /** True when a non-zero window was configured. */
    bool enabled() const { return windowTicks != 0; }

    /** The sampling window in ticks. */
    Tick window() const { return windowTicks; }

    /**
     * Stage feed, called by SpanLog::record() on the recording
     * shard's thread: bucket @p duration into the window that holds
     * @p end. Never allocates outside a window's first record; never
     * touches another lane.
     */
    void recordSpan(Stage stage, Tick end, Tick duration);

    /**
     * Register a counter source sampled at every window boundary.
     * The callback must read shard-0-resident state only and must be
     * monotonic; rows report the per-window delta.
     */
    void addCounter(const std::string &name,
                    std::function<std::uint64_t()> fn);

    /** Register a gauge source (instantaneous value per window). */
    void addGauge(const std::string &name,
                  std::function<double()> fn);

    /**
     * Begin sampling on @p sim: schedules the first window-boundary
     * event (internal, shard 0, kSampleOrderBand) and arms the
     * self-profiling stream. No-op when disabled.
     */
    void start(afa::sim::Simulator &sim);

    /**
     * Stop sampling: cancels the pending boundary event and takes a
     * final sample covering the trailing partial window. Call after
     * run() returns, from the simulation's owning thread.
     */
    void finish();

    /** Build the mergeable timeline (lanes merged, samples turned
     *  into per-window deltas). Call outside the parallel phase. */
    TelemetryTimeline timeline() const;

  private:
    /** One sampled value of every source at one window boundary. */
    struct SampleRow
    {
        std::vector<std::uint64_t> counters; ///< cumulative values
        std::vector<double> gauges;
        afa::sim::SimProfile profile; ///< cumulative self-profile
    };

    /** One shard's private stage-window map (cache-line padded; the
     *  cached row pointer makes the common same-window record a
     *  single map-free hit — std::map nodes are pointer-stable). */
    struct alignas(64) Lane
    {
        std::uint64_t cachedWindow = ~std::uint64_t{0};
        std::map<std::uint8_t, WindowStageCell> *cachedRow = nullptr;
        std::map<std::uint64_t,
                 std::map<std::uint8_t, WindowStageCell>>
            windows;
    };

    struct Source
    {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        std::function<std::uint64_t()> counterFn;
        std::function<double()> gaugeFn;
    };

    void scheduleSample(Tick when);
    void onSample();
    void sampleWindow(std::uint64_t window_idx);

    Tick windowTicks;
    std::vector<Lane> lanes;
    std::vector<Source> sources;
    /** window index -> cumulative samples (shard 0 only). */
    std::map<std::uint64_t, SampleRow> samples;
    afa::sim::Simulator *simPtr = nullptr;
    afa::sim::EventHandle sampleHandle{};
    bool stopped = false;
};

} // namespace afa::obs

#endif // AFA_OBS_TELEMETRY_HH
