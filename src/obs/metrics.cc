#include "obs/metrics.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"
#include "stats/json.hh"

namespace afa::obs {

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "unknown";
}

// ---------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    // Both sides are name-ordered; classic sorted merge.
    std::vector<MetricSample> merged;
    merged.reserve(samples.size() + other.samples.size());
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < samples.size() || b < other.samples.size()) {
        if (b >= other.samples.size() ||
            (a < samples.size() &&
             samples[a].name < other.samples[b].name)) {
            merged.push_back(samples[a++]);
            continue;
        }
        if (a >= samples.size() ||
            other.samples[b].name < samples[a].name) {
            merged.push_back(other.samples[b++]);
            continue;
        }
        // Same name: combine.
        MetricSample s = samples[a++];
        const MetricSample &o = other.samples[b++];
        switch (s.kind) {
          case MetricKind::Counter:
            s.count += o.count;
            break;
          case MetricKind::Gauge:
            s.value = std::max(s.value, o.value);
            break;
          case MetricKind::Histogram: {
            s.count += o.count;
            s.value += o.value;
            s.histMax = std::max(s.histMax, o.histMax);
            std::map<unsigned, std::uint64_t> combined(
                s.buckets.begin(), s.buckets.end());
            for (const auto &[idx, n] : o.buckets)
                combined[idx] += n;
            s.buckets.assign(combined.begin(), combined.end());
            break;
          }
        }
        merged.push_back(std::move(s));
    }
    samples = std::move(merged);
}

const MetricSample *
MetricsSnapshot::find(const std::string &name) const
{
    for (const MetricSample &s : samples)
        if (s.name == name)
            return &s;
    return nullptr;
}

std::uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    const MetricSample *s = find(name);
    return s ? s->count : 0;
}

std::string
MetricsSnapshot::toJson(const std::string &indent) const
{
    std::string json = "{\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const MetricSample &s = samples[i];
        json += indent + "  \"" +
            afa::stats::jsonEscape(s.name) + "\": ";
        switch (s.kind) {
          case MetricKind::Counter:
            json += afa::sim::strfmt("%llu",
                                     (unsigned long long)s.count);
            break;
          case MetricKind::Gauge:
            json += afa::sim::strfmt("%.6g", s.value);
            break;
          case MetricKind::Histogram: {
            json += afa::sim::strfmt(
                "{\"count\": %llu, \"sum\": %.6g, \"max\": %llu, "
                "\"log2_buckets\": [",
                (unsigned long long)s.count, s.value,
                (unsigned long long)s.histMax);
            for (std::size_t j = 0; j < s.buckets.size(); ++j)
                json += afa::sim::strfmt(
                    "%s[%u, %llu]", j ? ", " : "", s.buckets[j].first,
                    (unsigned long long)s.buckets[j].second);
            json += "]}";
            break;
          }
        }
        json += i + 1 < samples.size() ? ",\n" : "\n";
    }
    json += indent + "}";
    return json;
}

afa::stats::Table
MetricsSnapshot::table() const
{
    afa::stats::Table table({"metric", "kind", "value"});
    for (const MetricSample &s : samples) {
        std::string value;
        switch (s.kind) {
          case MetricKind::Counter:
            value = afa::stats::Table::num(s.count);
            break;
          case MetricKind::Gauge:
            value = afa::stats::Table::num(s.value, 3);
            break;
          case MetricKind::Histogram:
            value = afa::sim::strfmt(
                "n=%llu mean=%.1f max=%llu",
                (unsigned long long)s.count,
                s.count ? s.value / static_cast<double>(s.count) : 0.0,
                (unsigned long long)s.histMax);
            break;
        }
        table.addRow({s.name, metricKindName(s.kind),
                      std::move(value)});
    }
    return table;
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

MetricsRegistry::Cell &
MetricsRegistry::cell(const std::string &name, MetricKind kind)
{
    Cell &c = cells[name];
    if (c.count == 0 && c.value == 0.0 && c.buckets.empty())
        c.kind = kind;
    else if (c.kind != kind)
        afa::sim::panic("metrics: '%s' re-registered as %s (was %s)",
                        name.c_str(), metricKindName(kind),
                        metricKindName(c.kind));
    return c;
}

void
MetricsRegistry::addCounter(const std::string &name,
                            std::uint64_t delta)
{
    afa::sync::MutexLock lock(mutex);
    cell(name, MetricKind::Counter).count += delta;
}

void
MetricsRegistry::setGauge(const std::string &name, double value)
{
    afa::sync::MutexLock lock(mutex);
    cell(name, MetricKind::Gauge).value = value;
}

void
MetricsRegistry::recordValue(const std::string &name,
                             std::uint64_t value)
{
    afa::sync::MutexLock lock(mutex);
    Cell &c = cell(name, MetricKind::Histogram);
    ++c.count;
    c.value += static_cast<double>(value);
    c.histMax = std::max(c.histMax, value);
    ++c.buckets[static_cast<unsigned>(std::bit_width(value))];
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    afa::sync::MutexLock lock(mutex);
    snap.samples.reserve(cells.size());
    for (const auto &[name, c] : cells) {
        MetricSample s;
        s.name = name;
        s.kind = c.kind;
        s.count = c.count;
        s.value = c.value;
        s.histMax = c.histMax;
        s.buckets.assign(c.buckets.begin(), c.buckets.end());
        snap.samples.push_back(std::move(s));
    }
    return snap;
}

void
MetricsRegistry::absorb(const MetricsSnapshot &snap)
{
    afa::sync::MutexLock lock(mutex);
    for (const MetricSample &s : snap.samples) {
        Cell &c = cell(s.name, s.kind);
        switch (s.kind) {
          case MetricKind::Counter:
            c.count += s.count;
            break;
          case MetricKind::Gauge:
            c.value = std::max(c.value, s.value);
            break;
          case MetricKind::Histogram:
            c.count += s.count;
            c.value += s.value;
            c.histMax = std::max(c.histMax, s.histMax);
            for (const auto &[idx, n] : s.buckets)
                c.buckets[idx] += n;
            break;
        }
    }
}

void
MetricsRegistry::clear()
{
    afa::sync::MutexLock lock(mutex);
    cells.clear();
}

} // namespace afa::obs
