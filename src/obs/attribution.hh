/**
 * @file
 * LatencyAttribution: the per-stage latency decomposition report —
 * the simulator's answer to the paper's LTTng + blktrace analysis.
 *
 * Attribution totals are accumulated on every span record (not
 * derived from the ring buffer), so they are exact even when the ring
 * wraps, and they merge deterministically across geometry runs and
 * seed replicas. Each stage keeps count / total / max plus log2
 * duration buckets, enough to show where the *tail* lives: fig06's
 * multi-millisecond p99.9 sits in sched_wait + irq_deliver, and the
 * Section IV tunings collapse exactly those rows.
 */

#ifndef AFA_OBS_ATTRIBUTION_HH
#define AFA_OBS_ATTRIBUTION_HH

#include <array>
#include <cstdint>
#include <string>

#include "obs/span.hh"
#include "stats/table.hh"

namespace afa::obs {

/** Exact accumulator for one stage. */
struct StageTotals
{
    /** log2 duration buckets: bucket i holds durations with
     *  bit_width(d) == i, i.e. [2^(i-1), 2^i); bucket 0 holds 0. */
    static constexpr unsigned kBuckets = 64;

    std::uint64_t count = 0;
    std::uint64_t totalTicks = 0;
    Tick maxTicks = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    void add(Tick duration);
    void merge(const StageTotals &other);

    /** Mean duration in ticks (0 when empty). */
    double meanTicks() const;

    /**
     * Upper bound of the bucket where the cumulative count reaches
     * @p q of the total — a coarse (factor-of-two) quantile, plenty
     * to tell a 100 us stage from a 5 ms one.
     */
    Tick approxQuantileTicks(double q) const;
};

/** Per-stage attribution of everything a SpanLog saw. */
struct Attribution
{
    std::array<StageTotals, kStageCount> stages;

    void add(Stage stage, Tick duration);
    void merge(const Attribution &other);

    /** True when nothing has been recorded. */
    bool empty() const;

    const StageTotals &
    stage(Stage s) const
    {
        return stages[static_cast<std::size_t>(s)];
    }

    /**
     * The report table: one row per stage with counts, totals, mean,
     * ~p99 and max, plus each stage's share of total IO time (the
     * Complete stage's total).
     */
    afa::stats::Table table() const;

    /** The table rendered as text (for reports and examples). */
    std::string toText() const;
};

} // namespace afa::obs

#endif // AFA_OBS_ATTRIBUTION_HH
