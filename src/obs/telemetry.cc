#include "obs/telemetry.hh"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <set>

#include "sim/shard.hh"
#include "stats/json.hh"

namespace afa::obs {

// ---------------------------------------------------------------------
// WindowStageCell
// ---------------------------------------------------------------------

void
WindowStageCell::add(Tick duration)
{
    ++count;
    totalTicks += duration;
    maxTicks = std::max(maxTicks, duration);
    ++buckets[std::bit_width(duration)];
    // Millisecond thresholds are not log2 boundaries in ticks, so the
    // ACT counters are exact dedicated comparisons, not bucket sums.
    for (unsigned k = 0; k < kActThresholds; ++k)
        if (duration > actThresholdTicks(k))
            ++exceed[k];
        else
            break;
}

void
WindowStageCell::merge(const WindowStageCell &other)
{
    count += other.count;
    totalTicks += other.totalTicks;
    maxTicks = std::max(maxTicks, other.maxTicks);
    for (unsigned i = 0; i < kBuckets; ++i)
        buckets[i] += other.buckets[i];
    for (unsigned k = 0; k < kActThresholds; ++k)
        exceed[k] += other.exceed[k];
}

double
WindowStageCell::meanTicks() const
{
    if (count == 0)
        return 0.0;
    return static_cast<double>(totalTicks) /
        static_cast<double>(count);
}

Tick
WindowStageCell::quantileTicks(double q) const
{
    if (count == 0)
        return 0;
    auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(count));
    target = std::min(target, count - 1);
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        if (buckets[i] == 0)
            continue;
        if (seen + buckets[i] > target) {
            if (i == 0)
                return 0;
            // bit_width(d) == i covers [2^(i-1), 2^i - 1]; place the
            // target rank linearly inside the bucket.
            const Tick lo = Tick(1) << (i - 1);
            const Tick hi = i >= kBuckets - 1
                ? maxTicks
                : std::min(maxTicks, (Tick(1) << i) - 1);
            const std::uint64_t pos = target - seen;
            const std::uint64_t den =
                buckets[i] > 1 ? buckets[i] - 1 : 1;
            return lo +
                static_cast<Tick>(static_cast<double>(hi - lo) *
                                  static_cast<double>(pos) /
                                  static_cast<double>(den));
        }
        seen += buckets[i];
    }
    return maxTicks;
}

// ---------------------------------------------------------------------
// TelemetryTimeline
// ---------------------------------------------------------------------

bool
TelemetryTimeline::empty() const
{
    return stages.empty() && series.empty() && sim.empty();
}

const TelemetryTimeline::Point *
TelemetryTimeline::seriesPoint(const std::string &name,
                               std::uint64_t w) const
{
    const auto s = series.find(name);
    if (s == series.end())
        return nullptr;
    const auto p = s->second.points.find(w);
    return p == s->second.points.end() ? nullptr : &p->second;
}

void
TelemetryTimeline::merge(const TelemetryTimeline &other)
{
    if (window == 0)
        window = other.window;
    for (const auto &[w, row] : other.stages)
        for (const auto &[stage, cell] : row)
            stages[w][stage].merge(cell);
    for (const auto &[name, s] : other.series) {
        Series &mine = series[name];
        mine.kind = s.kind;
        for (const auto &[w, p] : s.points) {
            Point &q = mine.points[w];
            if (s.kind == MetricKind::Gauge)
                q.value = std::max(q.value, p.value);
            else
                q.delta += p.delta;
        }
    }
    for (const auto &[w, sw] : other.sim) {
        SimWindow &mine = sim[w];
        if (mine.shards.size() < sw.shards.size())
            mine.shards.resize(sw.shards.size());
        for (std::size_t s = 0; s < sw.shards.size(); ++s) {
            mine.shards[s].executedEvents +=
                sw.shards[s].executedEvents;
            mine.shards[s].plumbingEvents +=
                sw.shards[s].plumbingEvents;
            mine.shards[s].crossPosts += sw.shards[s].crossPosts;
            mine.shards[s].barrierWaitNanos +=
                sw.shards[s].barrierWaitNanos;
        }
        mine.windows += sw.windows;
        mine.mailboxDrained += sw.mailboxDrained;
    }
}

namespace {

std::string
fmt(const char *format, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, format);
    std::vsnprintf(buf, sizeof(buf), format, ap);
    va_end(ap);
    return buf;
}

double
usec(Tick t)
{
    return static_cast<double>(t) / 1e3;
}

double
msecOf(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

/** Every window index any part of the timeline touches, ascending. */
std::set<std::uint64_t>
windowSet(const TelemetryTimeline &tl)
{
    std::set<std::uint64_t> out;
    for (const auto &[w, row] : tl.stages)
        out.insert(w);
    for (const auto &[name, s] : tl.series)
        for (const auto &[w, p] : s.points)
            out.insert(w);
    for (const auto &[w, sw] : tl.sim)
        out.insert(w);
    return out;
}

/** Emit one window's rows in the canonical order: stage rows by
 *  stage id, source rows by name, sim rows by shard, then the
 *  core-global row (only when it carries information). */
void
jsonRowsForWindow(const TelemetryTimeline &tl, std::uint64_t w,
                  std::vector<std::string> &rows)
{
    const double end_ms =
        msecOf(static_cast<Tick>(w + 1) * tl.window);
    auto sit = tl.stages.find(w);
    if (sit != tl.stages.end()) {
        for (const auto &[stage, cell] : sit->second) {
            std::string row = fmt(
                "{\"kind\":\"stage\",\"window\":%" PRIu64
                ",\"end_ms\":%.3f,\"stage\":\"%s\",\"count\":%" PRIu64
                ",\"mean_us\":%.3f,\"p50_us\":%.3f,\"p99_us\":%.3f,"
                "\"p999_us\":%.3f,\"max_us\":%.3f,\"exceed\":[",
                w, end_ms,
                stageName(static_cast<Stage>(stage)), cell.count,
                cell.meanTicks() / 1e3,
                usec(cell.quantileTicks(0.50)),
                usec(cell.quantileTicks(0.99)),
                usec(cell.quantileTicks(0.999)),
                usec(cell.maxTicks));
            for (unsigned k = 0; k < kActThresholds; ++k)
                row += fmt("%s%" PRIu64, k ? "," : "",
                           cell.exceed[k]);
            row += "]}";
            rows.push_back(std::move(row));
        }
    }
    for (const auto &[name, s] : tl.series) {
        auto pit = s.points.find(w);
        if (pit == s.points.end())
            continue;
        if (s.kind == MetricKind::Gauge)
            rows.push_back(fmt(
                "{\"kind\":\"gauge\",\"window\":%" PRIu64
                ",\"end_ms\":%.3f,\"name\":\"%s\",\"value\":%g}",
                w, end_ms, afa::stats::jsonEscape(name).c_str(),
                pit->second.value));
        else
            rows.push_back(fmt(
                "{\"kind\":\"counter\",\"window\":%" PRIu64
                ",\"end_ms\":%.3f,\"name\":\"%s\",\"delta\":%" PRIu64
                "}",
                w, end_ms, afa::stats::jsonEscape(name).c_str(),
                pit->second.delta));
    }
    auto mit = tl.sim.find(w);
    if (mit != tl.sim.end()) {
        const TelemetryTimeline::SimWindow &sw = mit->second;
        for (std::size_t s = 0; s < sw.shards.size(); ++s) {
            const afa::sim::ShardStat &st = sw.shards[s];
            std::string row = fmt(
                "{\"kind\":\"sim\",\"window\":%" PRIu64
                ",\"end_ms\":%.3f,\"shard\":%zu,\"executed\":%" PRIu64
                ",\"plumbing\":%" PRIu64 ",\"cross_posts\":%" PRIu64,
                w, end_ms, s, st.executedEvents, st.plumbingEvents,
                st.crossPosts);
            // Wall time is host noise: emitted only when present so
            // serial timelines stay deterministic artifacts.
            if (st.barrierWaitNanos != 0)
                row += fmt(",\"barrier_wait_ms\":%.3f",
                           static_cast<double>(st.barrierWaitNanos) /
                               1e6);
            row += "}";
            rows.push_back(std::move(row));
        }
        if (sw.windows != 0 || sw.mailboxDrained != 0)
            rows.push_back(fmt(
                "{\"kind\":\"sim_total\",\"window\":%" PRIu64
                ",\"end_ms\":%.3f,\"windows\":%" PRIu64
                ",\"mailbox_drained\":%" PRIu64 "}",
                w, end_ms, sw.windows, sw.mailboxDrained));
    }
}

std::vector<std::string>
jsonRows(const TelemetryTimeline &tl)
{
    std::vector<std::string> rows;
    std::string header = fmt(
        "{\"kind\":\"header\",\"window_ms\":%.3f,"
        "\"act_thresholds_ms\":[",
        msecOf(tl.window));
    for (unsigned k = 0; k < kActThresholds; ++k)
        header += fmt("%s%" PRIu64, k ? "," : "",
                      static_cast<std::uint64_t>(1) << k);
    header += "]}";
    rows.push_back(std::move(header));
    for (std::uint64_t w : windowSet(tl))
        jsonRowsForWindow(tl, w, rows);
    return rows;
}

} // namespace

std::string
TelemetryTimeline::toJsonLines() const
{
    std::string out;
    for (const std::string &row : jsonRows(*this)) {
        out += row;
        out += '\n';
    }
    return out;
}

std::string
TelemetryTimeline::toJson(const std::string &indent) const
{
    std::string out = "[";
    bool first = true;
    for (const std::string &row : jsonRows(*this)) {
        out += first ? "\n" : ",\n";
        out += indent;
        out += row;
        first = false;
    }
    out += "\n";
    out += "]";
    return out;
}

std::string
TelemetryTimeline::toCsv() const
{
    // Fixed tidy schema; every row fills the cells its kind owns and
    // leaves the rest empty.
    enum Col : unsigned {
        kWindow = 0, kEndMs, kKind, kName, kCount, kMean, kP50, kP99,
        kP999, kMax, kExceed0, // ... kExceed0 + kActThresholds - 1
        kDelta = kExceed0 + kActThresholds, kValue, kExecuted,
        kPlumbing, kCrossPosts, kWindows, kMailbox, kBarrierWait,
        kCols,
    };
    std::vector<std::string> cells(kCols);
    auto flush = [&cells](std::string &out) {
        for (unsigned c = 0; c < kCols; ++c) {
            if (c)
                out += ',';
            out += cells[c];
        }
        out += '\n';
        for (std::string &cell : cells)
            cell.clear();
    };

    std::string out =
        "window,end_ms,kind,name,count,mean_us,p50_us,p99_us,"
        "p999_us,max_us";
    for (unsigned k = 0; k < kActThresholds; ++k)
        out += fmt(",exceed_%" PRIu64 "ms",
                   static_cast<std::uint64_t>(1) << k);
    out += ",delta,value,executed,plumbing,cross_posts,windows,"
           "mailbox_drained,barrier_wait_ms\n";

    for (std::uint64_t w : windowSet(*this)) {
        const std::string win = fmt("%" PRIu64, w);
        const std::string end_ms =
            fmt("%.3f", msecOf(static_cast<Tick>(w + 1) * window));
        auto sit = stages.find(w);
        if (sit != stages.end())
            for (const auto &[stage, cell] : sit->second) {
                cells[kWindow] = win;
                cells[kEndMs] = end_ms;
                cells[kKind] = "stage";
                cells[kName] =
                    stageName(static_cast<Stage>(stage));
                cells[kCount] = fmt("%" PRIu64, cell.count);
                cells[kMean] = fmt("%.3f", cell.meanTicks() / 1e3);
                cells[kP50] =
                    fmt("%.3f", usec(cell.quantileTicks(0.50)));
                cells[kP99] =
                    fmt("%.3f", usec(cell.quantileTicks(0.99)));
                cells[kP999] =
                    fmt("%.3f", usec(cell.quantileTicks(0.999)));
                cells[kMax] = fmt("%.3f", usec(cell.maxTicks));
                for (unsigned k = 0; k < kActThresholds; ++k)
                    cells[kExceed0 + k] =
                        fmt("%" PRIu64, cell.exceed[k]);
                flush(out);
            }
        for (const auto &[name, s] : series) {
            auto pit = s.points.find(w);
            if (pit == s.points.end())
                continue;
            cells[kWindow] = win;
            cells[kEndMs] = end_ms;
            cells[kName] = name;
            if (s.kind == MetricKind::Gauge) {
                cells[kKind] = "gauge";
                cells[kValue] = fmt("%g", pit->second.value);
            } else {
                cells[kKind] = "counter";
                cells[kDelta] = fmt("%" PRIu64, pit->second.delta);
            }
            flush(out);
        }
        auto mit = sim.find(w);
        if (mit != sim.end()) {
            const SimWindow &sw = mit->second;
            for (std::size_t s = 0; s < sw.shards.size(); ++s) {
                const afa::sim::ShardStat &st = sw.shards[s];
                cells[kWindow] = win;
                cells[kEndMs] = end_ms;
                cells[kKind] = "sim";
                cells[kName] = fmt("shard%zu", s);
                cells[kExecuted] =
                    fmt("%" PRIu64, st.executedEvents);
                cells[kPlumbing] =
                    fmt("%" PRIu64, st.plumbingEvents);
                cells[kCrossPosts] =
                    fmt("%" PRIu64, st.crossPosts);
                if (st.barrierWaitNanos != 0)
                    cells[kBarrierWait] = fmt(
                        "%.3f",
                        static_cast<double>(st.barrierWaitNanos) /
                            1e6);
                flush(out);
            }
            if (sw.windows != 0 || sw.mailboxDrained != 0) {
                cells[kWindow] = win;
                cells[kEndMs] = end_ms;
                cells[kKind] = "sim_total";
                cells[kName] = "core";
                cells[kWindows] = fmt("%" PRIu64, sw.windows);
                cells[kMailbox] =
                    fmt("%" PRIu64, sw.mailboxDrained);
                flush(out);
            }
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------

Telemetry::Telemetry(const TelemetryParams &params)
    : windowTicks(params.window)
{
    lanes.resize(std::max(1u, params.shards));
}

void
Telemetry::recordSpan(Stage stage, Tick end, Tick duration)
{
    if (windowTicks == 0)
        return;
    const unsigned shard = afa::sim::currentShard();
    Lane &lane = lanes[shard < lanes.size() ? shard : 0];
    const std::uint64_t w = end / windowTicks;
    if (w != lane.cachedWindow || lane.cachedRow == nullptr) {
        lane.cachedRow = &lane.windows[w];
        lane.cachedWindow = w;
    }
    (*lane.cachedRow)[static_cast<std::uint8_t>(stage)].add(duration);
}

void
Telemetry::addCounter(const std::string &name,
                      std::function<std::uint64_t()> fn)
{
    Source src;
    src.name = name;
    src.kind = MetricKind::Counter;
    src.counterFn = std::move(fn);
    sources.push_back(std::move(src));
}

void
Telemetry::addGauge(const std::string &name,
                    std::function<double()> fn)
{
    Source src;
    src.name = name;
    src.kind = MetricKind::Gauge;
    src.gaugeFn = std::move(fn);
    sources.push_back(std::move(src));
}

void
Telemetry::start(afa::sim::Simulator &sim)
{
    if (windowTicks == 0)
        return;
    simPtr = &sim;
    stopped = false;
    scheduleSample((sim.now() / windowTicks + 1) * windowTicks);
}

void
Telemetry::scheduleSample(Tick when)
{
    // The sampling event is engine plumbing: internal=true keeps it
    // out of executedEvents(), shard 0 holds every sampled source,
    // and the top ordering band puts the sample after all of the
    // tick's model events at any shard count.
    sampleHandle = simPtr->scheduleOnShard(
        0, when, [this] { onSample(); },
        /*internal=*/true, kSampleOrderBand);
}

void
Telemetry::onSample()
{
    sampleHandle = afa::sim::EventHandle{};
    const Tick now = simPtr->now();
    sampleWindow(now / windowTicks - 1);
    if (!stopped)
        scheduleSample(now + windowTicks);
}

void
Telemetry::sampleWindow(std::uint64_t window_idx)
{
    SampleRow row;
    row.counters.reserve(sources.size());
    row.gauges.reserve(sources.size());
    for (const Source &src : sources) {
        if (src.kind == MetricKind::Gauge) {
            row.counters.push_back(0);
            row.gauges.push_back(src.gaugeFn ? src.gaugeFn() : 0.0);
        } else {
            row.counters.push_back(
                src.counterFn ? src.counterFn() : 0);
            row.gauges.push_back(0.0);
        }
    }
    row.profile = simPtr->shardStats();
    samples[window_idx] = std::move(row);
}

void
Telemetry::finish()
{
    if (simPtr == nullptr || stopped) {
        stopped = true;
        return;
    }
    stopped = true;
    if (sampleHandle.valid()) {
        simPtr->cancel(sampleHandle);
        sampleHandle = afa::sim::EventHandle{};
    }
    // Cover the trailing partial window (or refresh the boundary
    // window when the run ended exactly on one).
    sampleWindow(simPtr->now() / windowTicks);
}

TelemetryTimeline
Telemetry::timeline() const
{
    TelemetryTimeline tl;
    tl.window = windowTicks;
    if (windowTicks == 0)
        return tl;
    for (const Lane &lane : lanes)
        for (const auto &[w, row] : lane.windows)
            for (const auto &[stage, cell] : row)
                tl.stages[w][stage].merge(cell);

    // Cumulative samples become per-window deltas (gauges stay
    // instantaneous); the map iterates windows in ascending order so
    // each row subtracts its predecessor.
    std::vector<std::uint64_t> prevCounters(sources.size(), 0);
    afa::sim::SimProfile prevProfile;
    for (const auto &[w, row] : samples) {
        for (std::size_t i = 0; i < sources.size(); ++i) {
            TelemetryTimeline::Series &s =
                tl.series[sources[i].name];
            s.kind = sources[i].kind;
            TelemetryTimeline::Point p;
            if (sources[i].kind == MetricKind::Gauge)
                p.value = row.gauges[i];
            else
                p.delta = row.counters[i] - prevCounters[i];
            s.points[w] = p;
        }
        TelemetryTimeline::SimWindow sw;
        sw.shards.resize(row.profile.shards.size());
        for (std::size_t s = 0; s < row.profile.shards.size(); ++s) {
            const afa::sim::ShardStat &cur = row.profile.shards[s];
            afa::sim::ShardStat prev =
                s < prevProfile.shards.size()
                    ? prevProfile.shards[s]
                    : afa::sim::ShardStat{};
            sw.shards[s].executedEvents =
                cur.executedEvents - prev.executedEvents;
            sw.shards[s].plumbingEvents =
                cur.plumbingEvents - prev.plumbingEvents;
            sw.shards[s].crossPosts =
                cur.crossPosts - prev.crossPosts;
            sw.shards[s].barrierWaitNanos =
                cur.barrierWaitNanos - prev.barrierWaitNanos;
        }
        sw.windows = row.profile.windows - prevProfile.windows;
        sw.mailboxDrained =
            row.profile.mailboxDrained - prevProfile.mailboxDrained;
        tl.sim[w] = std::move(sw);
        prevCounters = row.counters;
        prevProfile = row.profile;
    }
    return tl;
}

} // namespace afa::obs
