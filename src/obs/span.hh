/**
 * @file
 * The span taxonomy: typed per-IO latency stages, their category
 * bitmask, and the packed POD record the SpanLog ring buffer stores.
 *
 * Every stage a completed IO passes through on the simulated testbed
 * — submit-queue wait, scheduler delay, fabric transit, controller
 * queueing, FTL lookup, NAND read, SMART stall, completion IRQ
 * delivery — is one Stage value; a SpanRecord ties a [begin, end)
 * Tick window to the IO's tag and a display track (one per host CPU
 * or SSD). This is the structured replacement for the free-form
 * string Tracer: records are 32-byte PODs, recording never allocates,
 * and whole categories compile out via AFA_OBS_COMPILED_CATEGORIES.
 *
 * Determinism contract (DESIGN.md "Observability contract"): span
 * timestamps are simulated Ticks, never wall clock, and recording a
 * span must not schedule events, draw random numbers, or otherwise
 * perturb simulation state — results stay bit-identical with tracing
 * on, off, or compiled out.
 */

#ifndef AFA_OBS_SPAN_HH
#define AFA_OBS_SPAN_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/types.hh"

namespace afa::obs {

using afa::sim::Tick;

/** The per-IO latency stages (see DESIGN.md for the taxonomy). */
enum class Stage : std::uint8_t {
    Complete = 0,    ///< whole IO: submit return -> reap done (fio clat)
    SubmitQueue,     ///< wanting to submit -> submit syscall returned
    SchedulerWait,   ///< fio task runnable -> running (per dispatch)
    FabricSubmit,    ///< SQE + doorbell crossing the PCIe fabric
    FabricComplete,  ///< CQE + data crossing the fabric device->host
    ControllerQueue, ///< command arrival -> pipeline slot free
    SmartStall,      ///< pipeline slot held back by SMART housekeeping
    MediaRead,       ///< media stage: zero-fill or NAND window
    FtlRead,         ///< FTL mapped-read: lookup + NAND completion
    NandRead,        ///< die tR + channel transfer for one page read
    DeviceXfer,      ///< controller internal DMA to the host buffer
    IrqDeliver,      ///< MSI-X raise -> completion handler ran
    FaultStall,      ///< injected device fault: limp/stall extra time
    RetryWait,       ///< driver timeout -> backoff -> resubmission
    RebuildIo,       ///< one rebuild-engine chunk (read+rewrite)
};

/** Number of stages (array sizing). */
constexpr unsigned kStageCount = 15;

/** Category bits for enabling/compiling-out groups of stages. */
enum class Category : std::uint32_t {
    Workload = 1u << 0, ///< Complete, SubmitQueue
    Sched = 1u << 1,    ///< SchedulerWait
    Pcie = 1u << 2,     ///< FabricSubmit, FabricComplete
    Nvme = 1u << 3,     ///< ControllerQueue, MediaRead, DeviceXfer
    Smart = 1u << 4,    ///< SmartStall
    Ftl = 1u << 5,      ///< FtlRead
    Nand = 1u << 6,     ///< NandRead
    Irq = 1u << 7,      ///< IrqDeliver
    Fault = 1u << 8,    ///< FaultStall, RetryWait, RebuildIo
};

/** All categories enabled. */
constexpr std::uint32_t kAllCategories = 0x1ffu;

constexpr std::uint32_t
categoryBit(Category c)
{
    return static_cast<std::uint32_t>(c);
}

/**
 * Categories baked into the build. Recording sites check
 * (AFA_OBS_COMPILED_CATEGORIES & categoryBit(...)) as a constant, so
 * a category compiled out costs literally nothing at runtime.
 * Override with -DAFA_OBS_COMPILED_CATEGORIES=0 to compile all span
 * recording out of the binary.
 */
#ifndef AFA_OBS_COMPILED_CATEGORIES
#define AFA_OBS_COMPILED_CATEGORIES 0xffffffffu
#endif

/** The category a stage records under. */
constexpr Category
categoryOf(Stage stage)
{
    switch (stage) {
      case Stage::Complete:
      case Stage::SubmitQueue:
        return Category::Workload;
      case Stage::SchedulerWait:
        return Category::Sched;
      case Stage::FabricSubmit:
      case Stage::FabricComplete:
        return Category::Pcie;
      case Stage::ControllerQueue:
      case Stage::MediaRead:
      case Stage::DeviceXfer:
        return Category::Nvme;
      case Stage::SmartStall:
        return Category::Smart;
      case Stage::FtlRead:
        return Category::Ftl;
      case Stage::NandRead:
        return Category::Nand;
      case Stage::IrqDeliver:
        return Category::Irq;
      case Stage::FaultStall:
      case Stage::RetryWait:
      case Stage::RebuildIo:
        return Category::Fault;
    }
    return Category::Workload;
}

/** Stable display name of a stage ("sched_wait", "nand_read", ...). */
const char *stageName(Stage stage);

/** Display name of a category ("sched", "irq", ...). */
const char *categoryName(Category category);

/**
 * Parse a --trace category list: comma-separated category names, or
 * "all". Unknown names are a user configuration error (sim::fatal).
 */
std::uint32_t parseCategories(std::string_view list);

/** SpanRecord::flags bits. */
constexpr std::uint8_t kSpanFlagFastPath = 0x01; ///< fabric fast path
constexpr std::uint8_t kSpanFlagFallback = 0x02; ///< per-hop fallback
constexpr std::uint8_t kSpanFlagSelf = 0x04;     ///< self-send (0 hops)
constexpr std::uint8_t kSpanFlagRemote = 0x08;   ///< IRQ off-queue CPU

/**
 * One recorded span: a stage of one IO between two Ticks. Packed to
 * 32 bytes so a full ring stays cache- and memory-friendly.
 */
struct SpanRecord
{
    Tick begin = 0;         ///< stage entry tick (ns)
    Tick end = 0;           ///< stage exit tick (ns)
    std::uint64_t io = 0;   ///< IO tag (0 = not tied to one IO)
    std::uint32_t arg = 0;  ///< stage-specific detail (bytes, task...)
    std::uint16_t track = 0;///< display track (cpuTrack()/ssdTrack())
    std::uint8_t stage = 0; ///< Stage
    std::uint8_t flags = 0; ///< kSpanFlag* bits

    Tick duration() const { return end - begin; }
    Stage stageId() const { return static_cast<Stage>(stage); }
};

static_assert(sizeof(SpanRecord) == 32, "SpanRecord must stay packed");

// ---------------------------------------------------------------------
// Display tracks: one per host CPU, one per SSD.
// ---------------------------------------------------------------------

/** Track id of a host logical CPU (CPU numbers are < 64). */
constexpr std::uint16_t
cpuTrack(unsigned cpu)
{
    return static_cast<std::uint16_t>(cpu + 1);
}

/** Track id of an SSD. */
constexpr std::uint16_t
ssdTrack(unsigned ssd)
{
    return static_cast<std::uint16_t>(0x1000u + ssd);
}

/** Human-readable track name ("cpu3", "nvme17"). */
std::string trackName(std::uint16_t track);

} // namespace afa::obs

#endif // AFA_OBS_SPAN_HH
