/**
 * @file
 * SpanLog: the allocation-free typed span collector.
 *
 * Records land in a geometric-growth ring buffer of packed
 * SpanRecords: the buffer starts small, doubles up to the configured
 * capacity as traffic arrives, and past capacity wraps around
 * overwriting the oldest records (counted in dropped()). Alongside
 * the ring, per-stage accumulators (count / total / max / log2
 * duration buckets) are updated on every record, so the
 * LatencyAttribution report stays exact even when the ring wraps.
 *
 * Cost model: wants() is an inline bitmask test against both the
 * runtime mask and the compile-time AFA_OBS_COMPILED_CATEGORIES, so a
 * disabled instrumentation site costs one predictable branch (zero
 * when the category is compiled out and the compiler folds the
 * check). record() itself never allocates except when the ring grows
 * a step, and growth stops at capacity.
 *
 * Thread model: one SpanLog belongs to one Simulator (one worker
 * thread of the parallel experiment runner). Under a sharded
 * Simulator the log keeps one independent lane (ring + accumulators)
 * per shard — record() indexes the calling shard's lane, so shard
 * worker threads never touch shared state. Reading APIs (snapshot,
 * attribution, counters) merge the lanes deterministically and must
 * only be called outside the parallel phase, i.e. after run()
 * returns, like every other end-of-run read.
 */

#ifndef AFA_OBS_SPAN_LOG_HH
#define AFA_OBS_SPAN_LOG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/attribution.hh"
#include "obs/span.hh"

namespace afa::obs {

class Telemetry;

/** SpanLog construction parameters. */
struct TraceParams
{
    /** Bitmask of enabled Categories (0 disables every site). */
    std::uint32_t mask = 0;

    /** Total ring capacity in records (32 bytes each), split evenly
     *  across the shard lanes. */
    std::size_t capacity = std::size_t(1) << 20;

    /** Shard lanes (must match the Simulator's shard count). */
    unsigned shards = 1;
};

/** The span collector. */
class SpanLog
{
  public:
    explicit SpanLog(const TraceParams &params = TraceParams{});

    /**
     * True when spans of @p category should be recorded. The
     * instrumentation-site gate: `if (log && log->wants(...))`.
     */
    bool
    wants(Category category) const
    {
        return (mask_ & AFA_OBS_COMPILED_CATEGORIES &
                categoryBit(category)) != 0;
    }

    /** Runtime category mask. */
    std::uint32_t mask() const { return mask_; }

    /**
     * Record one span into the calling shard's lane. No-ops when the
     * stage's category is disabled, so callers may skip the wants()
     * pre-check on cold paths.
     */
    void record(Stage stage, std::uint64_t io, Tick begin, Tick end,
                std::uint16_t track, std::uint8_t flags = 0,
                std::uint32_t arg = 0);

    /** Spans recorded (including any the ring later overwrote),
     *  summed over lanes. */
    std::uint64_t recorded() const;

    /** Records overwritten after a lane's ring reached capacity,
     *  summed over lanes. */
    std::uint64_t dropped() const;

    /** Records currently retained across the lane rings. */
    std::size_t retained() const;

    /** Total ring capacity (sum of the lane caps). */
    std::size_t capacity() const;

    /**
     * Retained records. With one lane: oldest first, exactly the
     * recording order. With several: merged across lanes and sorted
     * by (begin, end, track, stage, io) — a deterministic order that
     * does not depend on shard interleaving.
     */
    std::vector<SpanRecord> snapshot() const;

    /** Exact per-stage totals (independent of ring drops), merged
     *  across lanes. Returned by value: totals are commutative, so
     *  the merge is shard-count-invariant. */
    Attribution attribution() const;

    /** Drop retained records and reset counters and totals. */
    void clear();

    /**
     * Attach a telemetry sink: every record() additionally feeds the
     * sink's windowed per-stage histograms (same shard lane, same
     * exactness guarantee as the Attribution accumulators — ring
     * wraps and drops never lose a windowed count). nullptr detaches;
     * the sink must outlive the log while attached.
     */
    void setTelemetry(Telemetry *sink) { telemetry_ = sink; }

  private:
    /** One shard's private ring + accumulators (cache-line padded so
     *  concurrent lanes never false-share). */
    struct alignas(64) Lane
    {
        std::size_t cap = 0;   ///< growth ceiling for this lane
        std::size_t head = 0;  ///< next overwrite slot once at capacity
        std::vector<SpanRecord> ring;
        std::uint64_t numRecorded = 0;
        std::uint64_t numDropped = 0;
        Attribution accum;
    };

    std::uint32_t mask_;
    std::vector<Lane> lanes;
    Telemetry *telemetry_ = nullptr;
};

} // namespace afa::obs

#endif // AFA_OBS_SPAN_LOG_HH
