/**
 * @file
 * Chrome/Perfetto trace-event JSON exporter.
 *
 * Serialises a SpanLog snapshot into the legacy trace-event format
 * both chrome://tracing and ui.perfetto.dev load: one process, one
 * thread ("track") per host CPU and per SSD, each span a complete
 * ("X") event with microsecond ts/dur and the IO tag, flags and
 * stage-specific detail in args. Ticks are nanoseconds, so ts/dur
 * printed with three decimals round-trip exactly.
 *
 * When a TelemetryTimeline is supplied, its windowed series are
 * merged into the same document as counter ("C") events: one track
 * per registered counter/gauge source, plus per-stage ops and p99
 * tracks derived from the windowed histograms. Counter samples are
 * stamped at the end of the window they summarise.
 */

#ifndef AFA_OBS_PERFETTO_HH
#define AFA_OBS_PERFETTO_HH

#include <string>
#include <vector>

#include "obs/span.hh"

namespace afa::obs {

struct TelemetryTimeline;

/**
 * Render @p spans as a trace-event JSON document. With a non-null
 * @p telemetry, windowed counter tracks are appended after the span
 * events in a deterministic order (source name, then window; then
 * stage tracks by window and stage id).
 */
std::string perfettoJson(const std::vector<SpanRecord> &spans,
                         const TelemetryTimeline *telemetry = nullptr);

/**
 * Write perfettoJson() to @p path. Returns false (with a warning)
 * when the file cannot be written.
 */
bool writePerfettoJson(const std::string &path,
                       const std::vector<SpanRecord> &spans,
                       const TelemetryTimeline *telemetry = nullptr);

} // namespace afa::obs

#endif // AFA_OBS_PERFETTO_HH
