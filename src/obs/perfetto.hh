/**
 * @file
 * Chrome/Perfetto trace-event JSON exporter.
 *
 * Serialises a SpanLog snapshot into the legacy trace-event format
 * both chrome://tracing and ui.perfetto.dev load: one process, one
 * thread ("track") per host CPU and per SSD, each span a complete
 * ("X") event with microsecond ts/dur and the IO tag, flags and
 * stage-specific detail in args. Ticks are nanoseconds, so ts/dur
 * printed with three decimals round-trip exactly.
 */

#ifndef AFA_OBS_PERFETTO_HH
#define AFA_OBS_PERFETTO_HH

#include <string>
#include <vector>

#include "obs/span.hh"

namespace afa::obs {

/** Render @p spans as a trace-event JSON document. */
std::string perfettoJson(const std::vector<SpanRecord> &spans);

/**
 * Write perfettoJson() to @p path. Returns false (with a warning)
 * when the file cannot be written.
 */
bool writePerfettoJson(const std::string &path,
                       const std::vector<SpanRecord> &spans);

} // namespace afa::obs

#endif // AFA_OBS_PERFETTO_HH
