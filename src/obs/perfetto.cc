#include "obs/perfetto.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/telemetry.hh"
#include "sim/logging.hh"
#include "stats/json.hh"

namespace afa::obs {

namespace {

/**
 * ts/dur are microseconds in the trace-event format; ticks are
 * nanoseconds. Three decimals represent any integer nanosecond count
 * exactly, so traces round-trip without float fuzz.
 */
std::string
usec(Tick ticks)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03u",
                  (unsigned long long)(ticks / 1000),
                  (unsigned)(ticks % 1000));
    return buf;
}

std::string
flagNames(std::uint8_t flags)
{
    std::string out;
    auto add = [&out](const char *name) {
        if (!out.empty())
            out += '|';
        out += name;
    };
    if (flags & kSpanFlagFastPath)
        add("fast_path");
    if (flags & kSpanFlagFallback)
        add("fallback");
    if (flags & kSpanFlagSelf)
        add("self");
    if (flags & kSpanFlagRemote)
        add("remote");
    return out;
}

} // namespace

std::string
perfettoJson(const std::vector<SpanRecord> &spans,
             const TelemetryTimeline *telemetry)
{
    // Metadata first: one named thread per distinct track, sorted so
    // the document is deterministic regardless of span order.
    std::vector<std::uint16_t> tracks;
    tracks.reserve(spans.size());
    for (const SpanRecord &s : spans)
        tracks.push_back(s.track);
    std::sort(tracks.begin(), tracks.end());
    tracks.erase(std::unique(tracks.begin(), tracks.end()),
                 tracks.end());

    std::string json = "{\n  \"displayTimeUnit\": \"ns\",\n"
                       "  \"traceEvents\": [\n";
    bool first = true;
    auto emit = [&json, &first](const std::string &event) {
        if (!first)
            json += ",\n";
        first = false;
        json += "    " + event;
    };

    for (std::uint16_t track : tracks)
        emit(afa::sim::strfmt(
            "{\"ph\": \"M\", \"pid\": 1, \"tid\": %u, "
            "\"name\": \"thread_name\", "
            "\"args\": {\"name\": \"%s\"}}",
            track,
            afa::stats::jsonEscape(trackName(track)).c_str()));

    for (const SpanRecord &s : spans) {
        std::string args = afa::sim::strfmt(
            "{\"io\": %llu", (unsigned long long)s.io);
        if (s.flags)
            args += afa::sim::strfmt(
                ", \"flags\": \"%s\"", flagNames(s.flags).c_str());
        if (s.arg)
            args += afa::sim::strfmt(", \"arg\": %u", s.arg);
        args += "}";
        emit(afa::sim::strfmt(
            "{\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
            "\"cat\": \"%s\", \"name\": \"%s\", "
            "\"ts\": %s, \"dur\": %s, \"args\": %s}",
            s.track, categoryName(categoryOf(s.stageId())),
            stageName(s.stageId()), usec(s.begin).c_str(),
            usec(s.duration()).c_str(), args.c_str()));
    }

    if (telemetry != nullptr && !telemetry->empty() &&
        telemetry->window != 0) {
        const Tick window = telemetry->window;
        // Counter samples summarise [w*W, (w+1)*W); stamp them at the
        // window end so the track steps where the window closes.
        auto end_ts = [window](std::uint64_t w) {
            return usec((Tick(w) + 1) * window);
        };

        for (const auto &[name, series] : telemetry->series) {
            const std::string track =
                afa::stats::jsonEscape(name);
            for (const auto &[w, point] : series.points) {
                std::string value =
                    series.kind == MetricKind::Gauge
                        ? afa::sim::strfmt("%g", point.value)
                        : afa::sim::strfmt(
                              "%llu",
                              (unsigned long long)point.delta);
                emit(afa::sim::strfmt(
                    "{\"ph\": \"C\", \"pid\": 1, \"name\": \"%s\", "
                    "\"ts\": %s, \"args\": {\"value\": %s}}",
                    track.c_str(), end_ts(w).c_str(),
                    value.c_str()));
            }
        }

        for (const auto &[w, row] : telemetry->stages) {
            for (const auto &[stage_id, cell] : row) {
                const char *stage =
                    stageName(static_cast<Stage>(stage_id));
                emit(afa::sim::strfmt(
                    "{\"ph\": \"C\", \"pid\": 1, "
                    "\"name\": \"stage.%s.ops\", "
                    "\"ts\": %s, \"args\": {\"value\": %llu}}",
                    stage, end_ts(w).c_str(),
                    (unsigned long long)cell.count));
                emit(afa::sim::strfmt(
                    "{\"ph\": \"C\", \"pid\": 1, "
                    "\"name\": \"stage.%s.p99_us\", "
                    "\"ts\": %s, \"args\": {\"value\": %s}}",
                    stage, end_ts(w).c_str(),
                    usec(cell.quantileTicks(0.99)).c_str()));
            }
        }
    }

    json += "\n  ]\n}\n";
    return json;
}

bool
writePerfettoJson(const std::string &path,
                  const std::vector<SpanRecord> &spans,
                  const TelemetryTimeline *telemetry)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        afa::sim::warn("perfetto: cannot open '%s' for writing",
                       path.c_str());
        return false;
    }
    out << perfettoJson(spans, telemetry);
    out.close();
    if (!out) {
        afa::sim::warn("perfetto: short write to '%s'", path.c_str());
        return false;
    }
    return true;
}

} // namespace afa::obs
