#include "obs/span.hh"

#include "sim/logging.hh"

namespace afa::obs {

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Complete:
        return "complete";
      case Stage::SubmitQueue:
        return "submit_queue";
      case Stage::SchedulerWait:
        return "sched_wait";
      case Stage::FabricSubmit:
        return "fabric_submit";
      case Stage::FabricComplete:
        return "fabric_complete";
      case Stage::ControllerQueue:
        return "ctrl_queue";
      case Stage::SmartStall:
        return "smart_stall";
      case Stage::MediaRead:
        return "media_read";
      case Stage::FtlRead:
        return "ftl_read";
      case Stage::NandRead:
        return "nand_read";
      case Stage::DeviceXfer:
        return "device_xfer";
      case Stage::IrqDeliver:
        return "irq_deliver";
      case Stage::FaultStall:
        return "fault_stall";
      case Stage::RetryWait:
        return "retry_wait";
      case Stage::RebuildIo:
        return "rebuild_io";
    }
    return "unknown";
}

const char *
categoryName(Category category)
{
    switch (category) {
      case Category::Workload:
        return "workload";
      case Category::Sched:
        return "sched";
      case Category::Pcie:
        return "pcie";
      case Category::Nvme:
        return "nvme";
      case Category::Smart:
        return "smart";
      case Category::Ftl:
        return "ftl";
      case Category::Nand:
        return "nand";
      case Category::Irq:
        return "irq";
      case Category::Fault:
        return "fault";
    }
    return "unknown";
}

std::uint32_t
parseCategories(std::string_view list)
{
    static constexpr Category kAll[] = {
        Category::Workload, Category::Sched, Category::Pcie,
        Category::Nvme,     Category::Smart, Category::Ftl,
        Category::Nand,     Category::Irq,   Category::Fault,
    };

    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string_view::npos)
            comma = list.size();
        std::string_view token = list.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;
        if (token == "all" || token == "true") {
            // "true" appears when --trace is passed as a bare flag.
            mask |= kAllCategories;
            continue;
        }
        bool found = false;
        for (Category c : kAll) {
            if (token == categoryName(c)) {
                mask |= categoryBit(c);
                found = true;
                break;
            }
        }
        if (!found)
            afa::sim::fatal(
                "--trace: unknown category '%.*s' (categories: "
                "workload sched pcie nvme smart ftl nand irq fault, "
                "or all)",
                static_cast<int>(token.size()), token.data());
    }
    return mask;
}

std::string
trackName(std::uint16_t track)
{
    if (track == 0)
        return "global";
    if (track >= 0x1000)
        return afa::sim::strfmt("nvme%u", track - 0x1000);
    return afa::sim::strfmt("cpu%u", track - 1);
}

} // namespace afa::obs
