/**
 * @file
 * MetricsRegistry: the central named-metrics surface.
 *
 * Components keep their cheap ad-hoc stats structs (FabricStats,
 * IrqStats, ...) for hot-path counting; at the end of a run the
 * experiment runner publishes them into one registry of named
 * counters, gauges and log2-bucket histograms. The registry is the
 * single exposure point: its snapshot embeds into the --metrics-json
 * artifacts, prints as a table, and merges deterministically across
 * geometry runs and seed replicas.
 *
 * Naming convention: "<component>.<metric>", e.g.
 * "fabric.fast_path_packets", "irq.remote_deliveries",
 * "sched.cstate_wakes", "obs.span_drops".
 *
 * Thread safety: the registry is internally synchronised (annotated
 * like RunMetricsLog) so concurrent workers may publish into a shared
 * instance; snapshots are plain copyable data ordered by name, so
 * everything downstream is deterministic.
 */

#ifndef AFA_OBS_METRICS_HH
#define AFA_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/sync.hh"
#include "core/thread_annotations.hh"
#include "stats/table.hh"

namespace afa::obs {

/** What a registry cell holds. */
enum class MetricKind : std::uint8_t {
    Counter,   ///< monotonically accumulated integer
    Gauge,     ///< last-set floating point value
    Histogram, ///< log2-bucket distribution of recorded values
};

/** The name of a metric kind. */
const char *metricKindName(MetricKind kind);

/** One metric in a snapshot (plain data, copyable). */
struct MetricSample
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t count = 0; ///< counter value / histogram count
    double value = 0.0;      ///< gauge value / histogram sum
    std::uint64_t histMax = 0;
    /** Sparse (bucket index, count) pairs, ascending by index;
     *  bucket i holds values with bit_width(v) == i. */
    std::vector<std::pair<unsigned, std::uint64_t>> buckets;
};

/** A point-in-time copy of a registry, ordered by metric name. */
struct MetricsSnapshot
{
    std::vector<MetricSample> samples;

    /** Counters and histograms add; gauges keep the larger value. */
    void merge(const MetricsSnapshot &other);

    /** Lookup by exact name (nullptr when absent). */
    const MetricSample *find(const std::string &name) const;

    /** Value of a counter (0 when absent). */
    std::uint64_t counter(const std::string &name) const;

    /** JSON object string, every label escaped via stats::jsonEscape. */
    std::string toJson(const std::string &indent = "") const;

    /** name | kind | value table. */
    afa::stats::Table table() const;

    bool empty() const { return samples.empty(); }
};

/** The registry. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Add @p delta to the named counter (created at 0). */
    void addCounter(const std::string &name, std::uint64_t delta)
        AFA_EXCLUDES(mutex);

    /** Set the named gauge. */
    void setGauge(const std::string &name, double value)
        AFA_EXCLUDES(mutex);

    /** Record @p value into the named histogram. */
    void recordValue(const std::string &name, std::uint64_t value)
        AFA_EXCLUDES(mutex);

    /** Copy out every cell, ordered by name. */
    MetricsSnapshot snapshot() const AFA_EXCLUDES(mutex);

    /** Fold a snapshot into this registry (same rules as merge). */
    void absorb(const MetricsSnapshot &snap) AFA_EXCLUDES(mutex);

    /** Remove every cell. */
    void clear() AFA_EXCLUDES(mutex);

  private:
    struct Cell
    {
        MetricKind kind = MetricKind::Counter;
        std::uint64_t count = 0;
        double value = 0.0;
        std::uint64_t histMax = 0;
        std::map<unsigned, std::uint64_t> buckets;
    };

    mutable afa::sync::Mutex mutex;
    /** std::map: deterministic name order for snapshots. */
    std::map<std::string, Cell> cells AFA_GUARDED_BY(mutex);

    Cell &cell(const std::string &name, MetricKind kind)
        AFA_REQUIRES(mutex);
};

} // namespace afa::obs

#endif // AFA_OBS_METRICS_HH
