/**
 * @file
 * Page-mapped flash translation layer.
 *
 * Logical 4 KiB blocks map onto 4 KiB slots within NAND pages.
 * Writes are buffered in controller DRAM, packed into full pages, and
 * programmed log-structured with the page stream striped round-robin
 * across dies (one open block per die) for parallelism; a greedy
 * garbage collector reclaims the emptiest blocks when the free pool
 * runs low.
 *
 * In the paper's experiments every drive is kept FOB (fresh out of
 * box, via NVMe format), so host reads never consult NAND; the FTL
 * exists to support the Table I spec benches, flush semantics, and the
 * aged-drive (non-FOB) ablation the paper lists as future work.
 */

#ifndef AFA_NVME_FTL_HH
#define AFA_NVME_FTL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "nand/nand_array.hh"
#include "nvme/command.hh"
#include "sim/sim_object.hh"

namespace afa::obs {
class SpanLog;
} // namespace afa::obs

namespace afa::nvme {

using afa::sim::Tick;

/** FTL geometry and policy. */
struct FtlParams
{
    /** Exported logical capacity in 4 KiB blocks. */
    std::uint64_t logicalBlocks = 262144; // 1 GiB

    /** Physical / logical capacity ratio. */
    double overProvision = 1.25;

    /** Start GC when the free block pool drops below this count. */
    unsigned gcFreeBlockThreshold = 4;

    /** Stop GC when the pool recovers to this count. */
    unsigned gcFreeBlockTarget = 8;

    /** Volatile write buffer capacity in 4 KiB entries. */
    unsigned writeBufferEntries = 1024;
};

/** FTL activity counters. */
struct FtlStats
{
    std::uint64_t hostWrites = 0;
    std::uint64_t hostReadsMapped = 0;
    std::uint64_t gcPageReads = 0;
    std::uint64_t gcSlotWrites = 0;
    std::uint64_t erases = 0;
    std::uint64_t programs = 0;
    std::uint64_t gcRuns = 0;
};

/**
 * The FTL. All operations are asynchronous; callbacks fire on the
 * owning simulator's event loop.
 */
class Ftl : public afa::sim::SimObject
{
  public:
    using DoneFn = std::function<void()>;

    Ftl(afa::sim::Simulator &simulator, std::string ftl_name,
        afa::nand::NandArray &nand_array, const FtlParams &ftl_params);

    /** True when @p lba has been written since the last format. */
    bool isMapped(std::uint64_t lba) const;

    /**
     * Read a mapped logical block from NAND. The caller must ensure
     * isMapped(lba); unmapped reads take the controller's zero-fill
     * fast path instead. @p io tags the obs spans this read emits.
     */
    void readMapped(std::uint64_t lba, DoneFn done,
                    std::uint64_t io = 0);

    /**
     * Claim-only variant of readMapped() for the controller's
     * single-event command fast path: same NAND horizon arithmetic,
     * RNG draw order, stats and spans as readMapped() running at
     * @p start_floor, but no completion callback is scheduled. The
     * returned tick is the NAND data-out end.
     */
    Tick readMappedAt(std::uint64_t lba, Tick start_floor,
                      std::uint64_t io = 0);

    /** Attach the span log; spans use @p track (the owning SSD's). */
    void
    setSpanLog(afa::obs::SpanLog *log, std::uint16_t track)
    {
        spanLog = log;
        spanTrack = track;
        nand.setSpanLog(log, track);
    }

    /**
     * Write a logical block. @p on_buffered fires when the data is
     * accepted into the volatile buffer (possibly delayed by buffer
     * backpressure); programming to NAND proceeds asynchronously.
     */
    void write(std::uint64_t lba, DoneFn on_buffered);

    /** Flush: @p done fires once every buffered entry is on NAND. */
    void flush(DoneFn done);

    /** Return the drive to FOB: all mappings dropped. Instant. */
    void format();

    /**
     * Instantly mark a fraction of the logical space as written
     * (page-striped across dies, like the write path would), without
     * modelling the write traffic. Used to set up aged-drive and
     * Table I read experiments.
     */
    void precondition(double mapped_fraction);

    /**
     * True when @p extra_slots logical blocks can be placed by
     * writeFast() with zero divergence from write(): structures
     * ready, no GC running or triggerable, no backpressure, and the
     * open page on the frontier die has room for the placement on
     * top of @p pending_slots earlier fast-path slots that have not
     * been placed yet. Pure query; draws nothing.
     */
    bool canFastWrite(unsigned pending_slots,
                      unsigned extra_slots) const;

    /**
     * Place one logical block immediately (fast path). Requires a
     * canFastWrite() window covering this slot; panics if admission
     * would have backpressured. Identical map/buffer mutations to
     * write(), but the buffered notification is the caller's own
     * completion -- no after(0) event.
     */
    void writeFast(std::uint64_t lba);

    /** True while the garbage collector is relocating/erasing. */
    bool gcRunning() const { return gcActive; }

    /** Entries currently buffered in DRAM. */
    unsigned buffered() const { return bufferedEntries; }

    /** Free NAND blocks remaining (across all dies). */
    std::size_t freeBlocks() const;

    /** Logical capacity in 4 KiB blocks. */
    std::uint64_t logicalBlocks() const { return params.logicalBlocks; }

    const FtlStats &stats() const { return ftlStats; }

  private:
    static constexpr std::uint64_t kUnmapped = ~std::uint64_t(0);

    /**
     * Free blocks kept back for GC relocation (write-cliff guard).
     * One per die: a relocation pass can close at most one frontier
     * block per die before its erase returns a block to the pool.
     */
    std::size_t reserveBlocks;
    unsigned gcThreshold; ///< effective, >= reserveBlocks + 2
    unsigned gcTarget;    ///< effective, >= gcThreshold + 2

    struct BlockInfo
    {
        std::uint32_t validSlots = 0;
        bool open = false; ///< currently a write frontier
        bool free = true;  ///< in the free pool
    };

    /** Per-die write frontier (one open block per die). */
    struct DieFrontier
    {
        bool valid = false;
        std::uint64_t block = 0; ///< global block id
        std::uint32_t page = 0;
        std::uint32_t slot = 0;
        unsigned stagedHostEntries = 0; ///< host slots in current page
    };

    FtlParams params;
    afa::nand::NandArray &nand;
    unsigned slotsPerPage;
    std::uint64_t totalBlocksPhys; ///< NAND blocks across all dies
    std::uint64_t slotsPerBlock;
    unsigned dies;

    std::vector<std::uint64_t> map;     ///< lba -> phys slot
    std::vector<std::uint64_t> reverse; ///< phys slot -> lba
    std::vector<BlockInfo> blockInfo;   ///< per physical block
    std::vector<std::vector<std::uint64_t>> freePerDie;
    std::vector<DieFrontier> frontier;
    unsigned nextDie;

    unsigned bufferedEntries;
    std::deque<std::pair<std::uint64_t, DoneFn>> pendingWrites;
    std::vector<DoneFn> flushWaiters;
    unsigned outstandingPrograms;
    bool gcActive;
    bool writeStructuresReady;

    FtlStats ftlStats;
    afa::obs::SpanLog *spanLog = nullptr;
    std::uint16_t spanTrack = 0;

    void ensureWriteStructures();
    bool canAdmitWrite() const;
    void admitPendingWrites();
    void placeWrite(std::uint64_t lba, DoneFn on_buffered);
    /** Allocate the next slot on the striped frontier. */
    std::uint64_t allocSlot(bool host_path);
    void openBlockOnDie(unsigned die);
    void programFrontierPage(unsigned die);
    void maybeStartGc();
    void gcStep();
    void finishProgram(unsigned host_entries);
    afa::nand::PageAddr slotToAddr(std::uint64_t slot) const;
    std::uint64_t blockOfSlot(std::uint64_t slot) const;
    void invalidate(std::uint64_t lba);
    void checkFlushWaiters();
    bool drained() const;
};

} // namespace afa::nvme

#endif // AFA_NVME_FTL_HH
