/**
 * @file
 * NVMe command representation used between the host driver model and
 * the SSD controller model. LBAs are in 4 KiB logical blocks (the
 * paper's I/O unit).
 */

#ifndef AFA_NVME_COMMAND_HH
#define AFA_NVME_COMMAND_HH

#include <cstdint>

#include "sim/types.hh"

namespace afa::nvme {

using afa::sim::Tick;

/** Logical block size all LBAs are expressed in. */
constexpr std::uint32_t kLogicalBlockBytes = 4096;

/** Operations the controller model implements. */
enum class Op : std::uint8_t {
    Read,        ///< NVM read
    Write,       ///< NVM write
    Flush,       ///< flush the volatile write buffer
    Format,      ///< NVM format: return the drive to FOB state
    GetLogPage,  ///< admin: SMART/health log query
};

/** The name of an op (for traces and tables). */
const char *opName(Op op);

/** One NVMe command. */
struct NvmeCommand
{
    Op op = Op::Read;
    std::uint64_t lba = 0;        ///< in 4 KiB blocks
    std::uint32_t bytes = kLogicalBlockBytes;
    std::uint16_t queueId = 0;    ///< submission queue (per host CPU)
    std::uint64_t cmdId = 0;      ///< host-assigned tag
    Tick submitted = 0;           ///< host submit tick (for accounting)
    std::uint64_t tag = 0;        ///< observability tag (0 = untagged)
};

/** Completion status. */
enum class Status : std::uint8_t {
    Success,
    InvalidField,
    /** Host driver gave up after its timeout/retry budget; the device
     *  never answered (dropped-out or unresponsive SSD). */
    TimedOut,
    /** Host driver aborted the command (e.g. queue teardown). */
    Aborted,
};

/** The name of a status ("success", "timed-out", ...). */
const char *statusName(Status status);

/** Completion record returned to the host. */
struct NvmeCompletion
{
    std::uint64_t cmdId = 0;
    std::uint16_t queueId = 0;
    Status status = Status::Success;
};

} // namespace afa::nvme

#endif // AFA_NVME_COMMAND_HH
