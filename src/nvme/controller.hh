/**
 * @file
 * The NVMe SSD controller model.
 *
 * A command arriving from the host passes through:
 *   1. the command pipeline, a serialising server (readProcTime per
 *      command) that is also where SMART housekeeping stalls bite;
 *   2. the media stage: zero-fill fast path for unmapped (FOB) reads,
 *      NAND via the FTL for mapped data, the write pipe for writes;
 *   3. the internal DMA engine (internalMBps) moving data to the host
 *      buffer;
 *   4. the transport (PCIe fabric, injected by the host glue), after
 *      which the completion callback fires host-side.
 *
 * One controller exposes one queue pair per host logical CPU, like
 * the Linux 4.7 NVMe driver the paper used (64 SSDs x 40 CPUs =
 * 2,560 interrupt vectors system-wide).
 */

#ifndef AFA_NVME_CONTROLLER_HH
#define AFA_NVME_CONTROLLER_HH

#include <deque>
#include <functional>

#include "nand/nand_array.hh"
#include "nvme/command.hh"
#include "nvme/firmware_config.hh"
#include "nvme/ftl.hh"
#include "nvme/smart.hh"
#include "sim/sim_object.hh"
#include "sim/trace.hh"

namespace afa::obs {
class SpanLog;
} // namespace afa::obs

namespace afa::nvme {

/** Controller activity counters. */
struct ControllerStats
{
    std::uint64_t readsCompleted = 0;
    std::uint64_t writesCompleted = 0;
    std::uint64_t flushesCompleted = 0;
    std::uint64_t formatsCompleted = 0;
    std::uint64_t logPagesCompleted = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t hiccups = 0;
    Tick smartStallDelay = 0; ///< total time commands waited on SMART
    /** Commands swallowed while the device was dropped out; only the
     *  host driver's timeout path recovers them. */
    std::uint64_t droppedCommands = 0;
    /** Total extra service time injected by limp/stall faults. */
    Tick faultStallDelay = 0;
    /** Commands served by the single-event fast path. */
    std::uint64_t fastPathCommands = 0;
    /** Commands served by (or demoted to) the chained event model. */
    std::uint64_t fallbackCommands = 0;
};

/** The SSD controller. */
class Controller : public afa::sim::SimObject
{
  public:
    /** Invoked host-side when a completion has been delivered. */
    using CompletionFn = std::function<void(const NvmeCompletion &)>;

    /**
     * Device-to-host delivery; injected by the host glue, typically
     * Fabric::sendSpanned(deviceNode, hostNode, ...). @p io is the
     * command's observability tag (0 = untagged) so the transport can
     * attribute the transfer to the IO.
     */
    using TransportFn = std::function<void(
        std::uint32_t bytes, std::uint64_t io, afa::sim::EventFn)>;

    Controller(afa::sim::Simulator &simulator,
               std::string controller_name,
               const FirmwareConfig &firmware_config,
               afa::nand::NandArray &nand_array,
               const FtlParams &ftl_params,
               afa::sim::Tracer *tracer = nullptr);

    /** Install the device-to-host transport. Required before use. */
    void setTransport(TransportFn transport);

    /** Install the host completion handler. Required before use. */
    void setCompletionHandler(CompletionFn handler);

    /** Begin background activity (the SMART schedule). */
    void start();

    /**
     * A command has arrived at the device (the host glue calls this
     * after simulating the submission-side fabric transfer).
     */
    void submit(const NvmeCommand &cmd);

    /** Number of queue pairs this controller exposes. */
    unsigned queuePairs() const { return numQueuePairs; }

    /** Configure the queue pair count (host driver does at probe). */
    void setQueuePairs(unsigned count) { numQueuePairs = count; }

    /** Attach the span log; spans use @p track (this SSD's). Also
     *  wires the FTL and NAND layers underneath. */
    void setSpanLog(afa::obs::SpanLog *log, std::uint16_t track);

    // ------------------------------------------------------------------
    // Injected fault hooks (driven by fault::FaultEngine). All default
    // to the healthy state and cost nothing while there: one compare
    // on the submit path, one max in the pipeline.
    // ------------------------------------------------------------------

    /**
     * Limping device: media service time and the write pipe scale by
     * @p factor (>= 1; 1 restores health). The added time is recorded
     * as FaultStall spans and ControllerStats::faultStallDelay.
     */
    void setLimpFactor(double factor);

    /** Current limp factor (1 = healthy). */
    double limpFactor() const { return limp; }

    /** Dropped-out device: submitted commands are silently lost. */
    void setOffline(bool offline);

    /** True while the device is dropped out. */
    bool offline() const { return isOffline; }

    /** Freeze the command pipeline until @p until (firmware stall). */
    void stallUntil(Tick until);

    /**
     * Enable/disable the single-event command fast path (default
     * on). Disabling demotes any in-flight fast commands back onto
     * the chained event model at their reference ticks, so a
     * mid-run switch stays exact. Completion ticks, RNG draw order,
     * horizons, stats and span values are identical either way; only
     * the executed-event count (and span ring order) differ.
     */
    void setFastPath(bool enabled);

    /** True when the single-event command fast path is enabled. */
    bool fastPath() const { return fastPathEnabled; }

    Ftl &ftl() { return ftlLayer; }
    const Ftl &ftl() const { return ftlLayer; }
    SmartEngine &smart() { return smartEngine; }
    const FirmwareConfig &firmware() const { return fwConfig; }
    const ControllerStats &stats() const { return ctrlStats; }

  private:
    FirmwareConfig fwConfig;
    afa::nand::NandArray &nand;
    Ftl ftlLayer;
    SmartEngine smartEngine;
    afa::sim::Tracer *tracer;

    TransportFn transport;
    CompletionFn completionHandler;
    unsigned numQueuePairs;

    // Busy horizons of the serialising stages.
    Tick procBusy;
    Tick xferBusy;
    Tick writePipeBusy;
    std::uint64_t lastWriteEndLba;

    // Injected fault state (healthy defaults).
    double limp = 1.0;
    bool isOffline = false;
    Tick faultStallUntilTick = 0;

    ControllerStats ctrlStats;
    afa::obs::SpanLog *spanLog = nullptr;
    std::uint16_t spanTrack = 0;

    // ------------------------------------------------------------------
    // Single-event command fast path (DESIGN.md §9). An eligible
    // command claims every horizon and draws every latency at submit
    // time -- in the chained model's FP operation and RNG draw order
    // -- and schedules one completion event. A FlightRecord per
    // in-flight fast command makes the claim revocable: if a later
    // command must take the chained model (or a fault hook fires)
    // before the record's reference claim tick, the record is demoted
    // -- its claim rolled back LIFO and the unchanged chained tail
    // rescheduled at the tick the reference model would run it.
    // ------------------------------------------------------------------

    /** An in-flight fast-path read. */
    struct FastRead
    {
        NvmeCommand cmd;
        Tick hiccup;     ///< sampled firmware hiccup penalty
        Tick mediaBegin; ///< pipe exit (reference media start)
        Tick mediaDone;  ///< media end (FOB draw or max NAND data-out)
        /** Tick the reference model claims the DMA engine: the pipe
         *  event for FOB reads, the last NAND callback for mapped
         *  ones. Claims must happen in this order; a violation
         *  demotes the entry. At or past this tick the claim is
         *  final. */
        Tick finishTick;
        Tick xferReady;    ///< mediaDone + hiccup (healthy window)
        Tick xferDone;     ///< completion tick
        Tick prevXferBusy; ///< xferBusy before our claim (rollback)
    };

    /** An in-flight fast-path write: placement deferred to wpbTick. */
    struct FastWrite
    {
        NvmeCommand cmd;
        std::uint64_t blocks;
        Tick wpbTick; ///< write-pipe exit = placement + completion
    };

    bool fastPathEnabled = true;
    /** Chained commands dispatched but not yet complete. Any nonzero
     *  depth disables the fast path: a chained command draws from the
     *  shared streams at its own event times, so a fast command
     *  submitted behind it would reorder draws. */
    unsigned chainDepth = 0;
    /** 4 KiB slots owed to the open frontier page by fastWrites. */
    unsigned pendingFastWriteSlots = 0;
    std::deque<FastRead> fastReads;   ///< finishTick-ordered
    std::deque<FastWrite> fastWrites; ///< wpbTick-ordered
    /** The DMA engine and the write pipe are FIFO servers, so fast
     *  completions fire in dispatch order: one pending event per
     *  deque (the front entry's) is enough. Each completion schedules
     *  the next front; demoting a whole suffix costs at most one
     *  cancel. Valid only while the matching deque is non-empty. */
    afa::sim::EventHandle fastReadEv;
    afa::sim::EventHandle fastWriteEv;

    void serveRead(const NvmeCommand &cmd);
    void serveWrite(const NvmeCommand &cmd);
    void serveFlush(const NvmeCommand &cmd);
    void serveFormat(const NvmeCommand &cmd);
    void serveLogPage(const NvmeCommand &cmd);

    /** Pass through the command pipeline; returns its exit tick.
     *  @p io tags the queue-wait and SMART-stall spans. */
    Tick throughPipeline(Tick proc_time, std::uint64_t io = 0);

    /** Reserve the internal DMA engine from @p ready; returns end. */
    Tick throughXfer(Tick ready, afa::sim::Bytes bytes);

    /** Sample an optional firmware hiccup penalty; trace lines are
     *  stamped @p when (the reference model samples at its pipe
     *  event, the fast path at submit). */
    Tick sampleHiccup(Tick when);
    Tick sampleHiccup() { return sampleHiccup(now()); }

    // Fast-path machinery ----------------------------------------------

    /** True when a read may take the fast path; sets @p all_mapped. */
    bool fastReadEligible(const NvmeCommand &cmd, std::uint64_t blocks,
                          bool &all_mapped) const;

    /** True when a write may take the fast path. */
    bool fastWriteEligible(std::uint64_t blocks) const;

    /** Claim horizons + draw latencies at submit; one event. */
    void fastRead(const NvmeCommand &cmd, std::uint64_t blocks,
                  Tick pipe_done, bool all_mapped);

    /** Chained dispatch bookkeeping: demote in-flight fast commands
     *  and raise the chain guard. */
    void fallbackDispatch();

    /** Shared chained-model read tail (the reference finish()): limp
     *  accounting, DMA claim, spans, completion event. Runs at the
     *  reference claim tick for chained and demoted reads alike. */
    void finishRead(const NvmeCommand &cmd, Tick hiccup,
                    Tick media_begin, Tick media_done);

    /** The chained write-pipe exit body (reference model). */
    void chainedWriteBody(const NvmeCommand &cmd, std::uint64_t blocks);

    /** Fast completion events (front entry is always the one due). */
    void completeFastRead();
    void completeFastWrite();

    /** Roll the newest fast read/write back onto the chained model. */
    void demoteBackFastRead();
    void demoteBackFastWrite();

    /** Demote every revocable fast command (chained dispatch, fault
     *  hook, or setFastPath(false)). */
    void demoteAllFast();

    void complete(const NvmeCommand &cmd, std::uint32_t reply_bytes,
                  Status status);
    void checkWired() const;
};

} // namespace afa::nvme

#endif // AFA_NVME_CONTROLLER_HH
