#include "nvme/ftl.hh"

#include <algorithm>
#include <memory>

#include "obs/span_log.hh"
#include "sim/logging.hh"

namespace afa::nvme {

using afa::nand::PageAddr;

Ftl::Ftl(afa::sim::Simulator &simulator, std::string ftl_name,
         afa::nand::NandArray &nand_array, const FtlParams &ftl_params)
    : SimObject(simulator, std::move(ftl_name)), params(ftl_params),
      nand(nand_array), nextDie(0), bufferedEntries(0),
      outstandingPrograms(0), gcActive(false),
      writeStructuresReady(false)
{
    const auto &np = nand.params();
    if (np.pageBytes % kLogicalBlockBytes != 0)
        afa::sim::fatal("%s: NAND page (%u B) not a multiple of 4 KiB",
                        name().c_str(), np.pageBytes);
    slotsPerPage = np.pageBytes / kLogicalBlockBytes;
    slotsPerBlock =
        static_cast<std::uint64_t>(slotsPerPage) * np.pagesPerBlock;
    dies = np.totalDies();
    totalBlocksPhys =
        static_cast<std::uint64_t>(dies) * np.blocksPerDie;

    std::uint64_t phys_slots = totalBlocksPhys * slotsPerBlock;
    std::uint64_t needed = static_cast<std::uint64_t>(
        static_cast<double>(params.logicalBlocks) * params.overProvision);
    if (phys_slots < needed)
        afa::sim::fatal(
            "%s: NAND too small: %llu phys slots < %llu needed "
            "(logical %llu x OP %.2f)",
            name().c_str(), (unsigned long long)phys_slots,
            (unsigned long long)needed,
            (unsigned long long)params.logicalBlocks,
            params.overProvision);

    map.assign(params.logicalBlocks, kUnmapped);

    reserveBlocks = dies;
    gcThreshold = std::max<unsigned>(params.gcFreeBlockThreshold,
                                     static_cast<unsigned>(
                                         reserveBlocks + 2));
    gcTarget =
        std::max<unsigned>(params.gcFreeBlockTarget, gcThreshold + 2);
    if (gcTarget >= totalBlocksPhys)
        afa::sim::fatal("%s: GC target %u >= physical blocks %llu",
                        name().c_str(), gcTarget,
                        (unsigned long long)totalBlocksPhys);
}

bool
Ftl::isMapped(std::uint64_t lba) const
{
    if (lba >= params.logicalBlocks)
        afa::sim::panic("%s: lba %llu out of range", name().c_str(),
                        (unsigned long long)lba);
    return map[lba] != kUnmapped;
}

std::uint64_t
Ftl::blockOfSlot(std::uint64_t slot) const
{
    return slot / slotsPerBlock;
}

PageAddr
Ftl::slotToAddr(std::uint64_t slot) const
{
    const auto &np = nand.params();
    std::uint64_t block = slot / slotsPerBlock;
    std::uint64_t within = slot % slotsPerBlock;
    auto page = static_cast<std::uint32_t>(within / slotsPerPage);
    auto die_linear = static_cast<unsigned>(block / np.blocksPerDie);
    auto block_in_die =
        static_cast<std::uint32_t>(block % np.blocksPerDie);
    return nand.addrForDie(die_linear, block_in_die, page);
}

std::size_t
Ftl::freeBlocks() const
{
    std::size_t total = 0;
    for (const auto &pool : freePerDie)
        total += pool.size();
    return total;
}

void
Ftl::ensureWriteStructures()
{
    if (writeStructuresReady)
        return;
    const auto &np = nand.params();
    reverse.assign(totalBlocksPhys * slotsPerBlock, kUnmapped);
    blockInfo.assign(totalBlocksPhys, BlockInfo{});
    freePerDie.assign(dies, {});
    for (unsigned d = 0; d < dies; ++d) {
        freePerDie[d].reserve(np.blocksPerDie);
        for (std::uint32_t b = np.blocksPerDie; b-- > 0;)
            freePerDie[d].push_back(
                static_cast<std::uint64_t>(d) * np.blocksPerDie + b);
    }
    frontier.assign(dies, DieFrontier{});
    nextDie = 0;
    writeStructuresReady = true;
}

void
Ftl::openBlockOnDie(unsigned die)
{
    auto &pool = freePerDie[die];
    if (pool.empty()) {
        // Steal from the richest die to stay functional under skew.
        unsigned richest = die;
        for (unsigned d = 0; d < dies; ++d)
            if (freePerDie[d].size() > freePerDie[richest].size())
                richest = d;
        if (freePerDie[richest].empty())
            afa::sim::panic("%s: free pool exhausted (GC fell behind)",
                            name().c_str());
        pool.push_back(freePerDie[richest].back());
        freePerDie[richest].pop_back();
    }
    DieFrontier &f = frontier[die];
    f.block = pool.back();
    pool.pop_back();
    f.valid = true;
    f.page = 0;
    f.slot = 0;
    f.stagedHostEntries = 0;
    blockInfo[f.block].open = true;
    blockInfo[f.block].free = false;
}

void
Ftl::programFrontierPage(unsigned die)
{
    DieFrontier &f = frontier[die];
    if (f.slot == 0)
        return; // nothing staged
    std::uint64_t first_slot = f.block * slotsPerBlock +
        static_cast<std::uint64_t>(f.page) * slotsPerPage;
    unsigned host_entries = f.stagedHostEntries;
    f.stagedHostEntries = 0;
    ++outstandingPrograms;
    ++ftlStats.programs;
    nand.program(slotToAddr(first_slot), nand.params().pageBytes,
                 [this, host_entries] { finishProgram(host_entries); });
    f.slot = 0;
    ++f.page;
    if (f.page == nand.params().pagesPerBlock) {
        blockInfo[f.block].open = false;
        f.valid = false;
    }
}

std::uint64_t
Ftl::allocSlot(bool host_path)
{
    if (!frontier[nextDie].valid)
        openBlockOnDie(nextDie);
    DieFrontier &fr = frontier[nextDie];
    std::uint64_t slot = fr.block * slotsPerBlock +
        static_cast<std::uint64_t>(fr.page) * slotsPerPage + fr.slot;
    ++fr.slot;
    if (host_path)
        ++fr.stagedHostEntries;
    if (fr.slot == slotsPerPage) {
        programFrontierPage(nextDie);
        // Rotate dies per page: consecutive pages stripe the array.
        nextDie = (nextDie + 1) % dies;
    }
    return slot;
}

void
Ftl::invalidate(std::uint64_t lba)
{
    std::uint64_t old = map[lba];
    if (old == kUnmapped)
        return;
    std::uint64_t blk = blockOfSlot(old);
    if (blockInfo[blk].validSlots == 0)
        afa::sim::panic("%s: invalidate underflow on block %llu",
                        name().c_str(), (unsigned long long)blk);
    --blockInfo[blk].validSlots;
    reverse[old] = kUnmapped;
    map[lba] = kUnmapped;
}

void
Ftl::write(std::uint64_t lba, DoneFn on_buffered)
{
    if (lba >= params.logicalBlocks)
        afa::sim::panic("%s: write lba %llu out of range",
                        name().c_str(), (unsigned long long)lba);
    ensureWriteStructures();
    if (!canAdmitWrite()) {
        pendingWrites.emplace_back(lba, std::move(on_buffered));
        maybeStartGc();
        return;
    }
    placeWrite(lba, std::move(on_buffered));
}

bool
Ftl::canAdmitWrite() const
{
    if (bufferedEntries >= params.writeBufferEntries)
        return false;
    // Write-cliff throttle: once the free pool is nearly gone, hold
    // host writes so GC relocation can still allocate frontier space.
    if (gcActive && freeBlocks() <= reserveBlocks)
        return false;
    return true;
}

void
Ftl::placeWrite(std::uint64_t lba, DoneFn on_buffered)
{
    invalidate(lba);
    ++bufferedEntries;
    std::uint64_t slot = allocSlot(true);
    map[lba] = slot;
    reverse[slot] = lba;
    ++blockInfo[blockOfSlot(slot)].validSlots;
    ++ftlStats.hostWrites;
    if (on_buffered)
        after(0, std::move(on_buffered));
    maybeStartGc();
}

void
Ftl::finishProgram(unsigned host_entries)
{
    if (bufferedEntries < host_entries)
        afa::sim::panic("%s: buffer accounting underflow",
                        name().c_str());
    bufferedEntries -= host_entries;
    --outstandingPrograms;
    admitPendingWrites();
    checkFlushWaiters();
}

void
Ftl::admitPendingWrites()
{
    while (!pendingWrites.empty() && canAdmitWrite()) {
        auto [lba, cb] = std::move(pendingWrites.front());
        pendingWrites.pop_front();
        placeWrite(lba, std::move(cb));
    }
}

bool
Ftl::drained() const
{
    return bufferedEntries == 0 && outstandingPrograms == 0 &&
        pendingWrites.empty();
}

void
Ftl::checkFlushWaiters()
{
    if (flushWaiters.empty() || !drained())
        return;
    auto waiters = std::move(flushWaiters);
    flushWaiters.clear();
    for (auto &w : waiters)
        after(0, std::move(w));
}

void
Ftl::flush(DoneFn done)
{
    if (!writeStructuresReady || drained()) {
        after(0, std::move(done));
        return;
    }
    // Force out partial pages on every die so the buffer can drain.
    for (unsigned d = 0; d < dies; ++d)
        if (frontier[d].valid)
            programFrontierPage(d);
    flushWaiters.push_back(std::move(done));
    checkFlushWaiters();
}

void
Ftl::readMapped(std::uint64_t lba, DoneFn done, std::uint64_t io)
{
    if (!isMapped(lba))
        afa::sim::panic("%s: readMapped on unmapped lba %llu",
                        name().c_str(), (unsigned long long)lba);
    ++ftlStats.hostReadsMapped;
    Tick begin = now();
    Tick nand_done = nand.read(slotToAddr(map[lba]),
                               kLogicalBlockBytes, std::move(done), io);
    if (spanLog && spanLog->wants(afa::obs::Category::Ftl))
        spanLog->record(afa::obs::Stage::FtlRead, io, begin, nand_done,
                        spanTrack);
}

Tick
Ftl::readMappedAt(std::uint64_t lba, Tick start_floor, std::uint64_t io)
{
    if (!isMapped(lba))
        afa::sim::panic("%s: readMappedAt on unmapped lba %llu",
                        name().c_str(), (unsigned long long)lba);
    ++ftlStats.hostReadsMapped;
    Tick nand_done = nand.readAt(slotToAddr(map[lba]),
                                 kLogicalBlockBytes, start_floor, io);
    if (spanLog && spanLog->wants(afa::obs::Category::Ftl))
        spanLog->record(afa::obs::Stage::FtlRead, io, start_floor,
                        nand_done, spanTrack);
    return nand_done;
}

bool
Ftl::canFastWrite(unsigned pending_slots, unsigned extra_slots) const
{
    // The fast write defers its placements to the write-pipe exit
    // tick with no event between them, so they must be provably
    // inert: every slot lands in the currently open page on the
    // current frontier die (no program, so no NAND draw), admission
    // cannot backpressure, and GC can neither be running nor be
    // triggered by the placement.
    if (!writeStructuresReady || gcActive)
        return false;
    if (!pendingWrites.empty() || !flushWaiters.empty())
        return false;
    if (bufferedEntries + pending_slots + extra_slots >
        params.writeBufferEntries)
        return false;
    if (!frontier[nextDie].valid)
        return false;
    if (frontier[nextDie].slot + pending_slots + extra_slots >=
        slotsPerPage)
        return false;
    if (freeBlocks() < gcThreshold)
        return false;
    return true;
}

void
Ftl::writeFast(std::uint64_t lba)
{
    // The fast-path placement: identical state mutations to write()
    // minus the after(0, on_buffered) hop -- the controller completes
    // the command from its own single event at the same tick.
    if (lba >= params.logicalBlocks)
        afa::sim::panic("%s: write lba %llu out of range",
                        name().c_str(), (unsigned long long)lba);
    if (!writeStructuresReady || !canAdmitWrite())
        afa::sim::panic("%s: fast write without admission (eligibility "
                        "bug)", name().c_str());
    placeWrite(lba, nullptr);
}

void
Ftl::maybeStartGc()
{
    if (gcActive || !writeStructuresReady)
        return;
    if (freeBlocks() >= gcThreshold)
        return;
    gcActive = true;
    ++ftlStats.gcRuns;
    gcStep();
}

void
Ftl::gcStep()
{
    if (freeBlocks() >= gcTarget) {
        gcActive = false;
        return;
    }
    // Greedy victim: fewest valid slots among closed, used blocks.
    std::uint64_t victim = kUnmapped;
    std::uint32_t best = ~std::uint32_t(0);
    for (std::uint64_t b = 0; b < totalBlocksPhys; ++b) {
        const BlockInfo &bi = blockInfo[b];
        if (bi.free || bi.open)
            continue;
        if (bi.validSlots < best) {
            best = bi.validSlots;
            victim = b;
        }
    }
    if (victim == kUnmapped ||
        blockInfo[victim].validSlots >= slotsPerBlock) {
        // No victim, or even the best victim is fully valid:
        // relocation cannot gain free space, so stop rather than
        // churn erases forever on a maximally packed drive.
        gcActive = false;
        return;
    }
    // Collect valid lbas and the distinct pages that hold them.
    std::vector<std::uint64_t> lbas;
    std::vector<std::uint32_t> pages_to_read;
    for (std::uint32_t pg = 0; pg < nand.params().pagesPerBlock; ++pg) {
        bool page_has_valid = false;
        for (unsigned sl = 0; sl < slotsPerPage; ++sl) {
            std::uint64_t slot = victim * slotsPerBlock +
                static_cast<std::uint64_t>(pg) * slotsPerPage + sl;
            std::uint64_t lba = reverse[slot];
            if (lba != kUnmapped && map[lba] == slot) {
                lbas.push_back(lba);
                page_has_valid = true;
            }
        }
        if (page_has_valid)
            pages_to_read.push_back(pg);
    }
    auto relocate_and_erase = [this, victim, lbas] {
        for (std::uint64_t lba : lbas) {
            invalidate(lba);
            std::uint64_t slot = allocSlot(false);
            map[lba] = slot;
            reverse[slot] = lba;
            ++blockInfo[blockOfSlot(slot)].validSlots;
            ++ftlStats.gcSlotWrites;
        }
        nand.erase(slotToAddr(victim * slotsPerBlock),
                   [this, victim] {
                       blockInfo[victim].validSlots = 0;
                       blockInfo[victim].free = true;
                       unsigned die = static_cast<unsigned>(
                           victim / nand.params().blocksPerDie);
                       freePerDie[die].push_back(victim);
                       ++ftlStats.erases;
                       admitPendingWrites();
                       checkFlushWaiters();
                       gcStep();
                   });
    };
    if (pages_to_read.empty()) {
        relocate_and_erase();
        return;
    }
    auto remaining = std::make_shared<std::size_t>(pages_to_read.size());
    for (std::uint32_t pg : pages_to_read) {
        std::uint64_t first_slot = victim * slotsPerBlock +
            static_cast<std::uint64_t>(pg) * slotsPerPage;
        ++ftlStats.gcPageReads;
        nand.read(slotToAddr(first_slot), nand.params().pageBytes,
                  [remaining, relocate_and_erase] {
                      if (--*remaining == 0)
                          relocate_and_erase();
                  });
    }
}

void
Ftl::format()
{
    std::fill(map.begin(), map.end(), kUnmapped);
    reverse.clear();
    blockInfo.clear();
    freePerDie.clear();
    frontier.clear();
    pendingWrites.clear();
    bufferedEntries = 0;
    outstandingPrograms = 0;
    gcActive = false;
    writeStructuresReady = false;
    nextDie = 0;
    checkFlushWaiters();
}

void
Ftl::precondition(double mapped_fraction)
{
    if (mapped_fraction < 0.0 || mapped_fraction > 1.0)
        afa::sim::fatal("%s: precondition fraction %.2f out of [0,1]",
                        name().c_str(), mapped_fraction);
    format();
    ensureWriteStructures();
    auto to_map = static_cast<std::uint64_t>(
        mapped_fraction * static_cast<double>(params.logicalBlocks));
    // Instant fill: stripe pages across dies the way the write path
    // would, but without NAND traffic or buffering.
    for (std::uint64_t lba = 0; lba < to_map; ++lba) {
        if (!frontier[nextDie].valid)
            openBlockOnDie(nextDie);
        DieFrontier &fr = frontier[nextDie];
        std::uint64_t slot = fr.block * slotsPerBlock +
            static_cast<std::uint64_t>(fr.page) * slotsPerPage +
            fr.slot;
        map[lba] = slot;
        reverse[slot] = lba;
        ++blockInfo[fr.block].validSlots;
        ++fr.slot;
        if (fr.slot == slotsPerPage) {
            fr.slot = 0;
            ++fr.page;
            if (fr.page == nand.params().pagesPerBlock) {
                blockInfo[fr.block].open = false;
                fr.valid = false;
            }
            nextDie = (nextDie + 1) % dies;
        }
    }
    // Close partial frontier pages cleanly: leave them open; the
    // write path continues from here.
}

} // namespace afa::nvme
