/**
 * @file
 * The SMART housekeeping engine (Section IV-E).
 *
 * Real firmware periodically collects SMART/health data and
 * occasionally saves it to NAND; on the paper's drives this stalls
 * command processing for long enough to produce the periodic ~600 us
 * spike clusters of Fig. 10. The engine here raises a "pipeline
 * stalled until T" horizon the controller honours; the experimental
 * firmware (SmartConfig::enabled = false) never raises it.
 */

#ifndef AFA_NVME_SMART_HH
#define AFA_NVME_SMART_HH

#include "nvme/firmware_config.hh"
#include "sim/sim_object.hh"
#include "sim/trace.hh"

namespace afa::nvme {

/** Periodic SMART data update/save stall generator. */
class SmartEngine : public afa::sim::SimObject
{
  public:
    SmartEngine(afa::sim::Simulator &simulator, std::string engine_name,
                const SmartConfig &smart_config,
                afa::sim::Tracer *tracer = nullptr);

    /** Begin the periodic schedule (randomised phase offset). */
    void start();

    /**
     * The tick until which the I/O pipeline is stalled by
     * housekeeping; 0 when never stalled. Controllers take
     * max(now, stalledUntil()) before serving a command.
     */
    Tick stalledUntil() const { return stallHorizon; }

    /**
     * Raise an ad-hoc stall (used by host-driven GetLogPage when
     * FirmwareConfig::logPageStallsIo is set).
     */
    void stallFor(Tick duration);

    /** Number of periodic collections performed so far. */
    std::uint64_t collections() const { return numCollections; }

    /** Number of those that were saves (NAND-backed, longer). */
    std::uint64_t saves() const { return numSaves; }

    const SmartConfig &config() const { return smartConfig; }

  private:
    SmartConfig smartConfig;
    afa::sim::Tracer *tracer;
    Tick stallHorizon;
    std::uint64_t numCollections;
    std::uint64_t numSaves;

    void collect();
};

} // namespace afa::nvme

#endif // AFA_NVME_SMART_HH
