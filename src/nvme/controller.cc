#include "nvme/controller.hh"

#include <algorithm>
#include <memory>

#include "obs/span_log.hh"
#include "sim/logging.hh"

namespace afa::nvme {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Read:
        return "read";
      case Op::Write:
        return "write";
      case Op::Flush:
        return "flush";
      case Op::Format:
        return "format";
      case Op::GetLogPage:
        return "get-log-page";
    }
    return "unknown";
}

const char *
statusName(Status status)
{
    switch (status) {
      case Status::Success:
        return "success";
      case Status::InvalidField:
        return "invalid-field";
      case Status::TimedOut:
        return "timed-out";
      case Status::Aborted:
        return "aborted";
    }
    return "unknown";
}

Controller::Controller(afa::sim::Simulator &simulator,
                       std::string controller_name,
                       const FirmwareConfig &firmware_config,
                       afa::nand::NandArray &nand_array,
                       const FtlParams &ftl_params,
                       afa::sim::Tracer *trace_sink)
    : SimObject(simulator, std::move(controller_name)),
      fwConfig(firmware_config), nand(nand_array),
      ftlLayer(simulator, name() + ".ftl", nand_array, ftl_params),
      smartEngine(simulator, name() + ".smart", firmware_config.smart,
                  trace_sink),
      tracer(trace_sink), numQueuePairs(1), procBusy(0), xferBusy(0),
      writePipeBusy(0), lastWriteEndLba(~std::uint64_t(0))
{
}

void
Controller::setTransport(TransportFn transport_fn)
{
    transport = std::move(transport_fn);
}

void
Controller::setCompletionHandler(CompletionFn handler)
{
    completionHandler = std::move(handler);
}

void
Controller::setSpanLog(afa::obs::SpanLog *log, std::uint16_t track)
{
    spanLog = log;
    spanTrack = track;
    ftlLayer.setSpanLog(log, track);
}

void
Controller::start()
{
    smartEngine.start();
}

void
Controller::setLimpFactor(double factor)
{
    if (factor < 1.0)
        afa::sim::panic("%s: limp factor %.2f < 1", name().c_str(),
                        factor);
    limp = factor;
}

void
Controller::stallUntil(Tick until)
{
    faultStallUntilTick = std::max(faultStallUntilTick, until);
}

void
Controller::checkWired() const
{
    if (!transport || !completionHandler)
        afa::sim::fatal("%s: transport/completion handler not wired",
                        name().c_str());
}

Tick
Controller::throughPipeline(Tick proc_time, std::uint64_t io)
{
    Tick ready = std::max(now(), procBusy);
    Tick stalled = std::max(ready, smartEngine.stalledUntil());
    ctrlStats.smartStallDelay += stalled - ready;
    Tick faulted = std::max(stalled, faultStallUntilTick);
    ctrlStats.faultStallDelay += faulted - stalled;
    if (spanLog) {
        if (ready > now() && spanLog->wants(afa::obs::Category::Nvme))
            spanLog->record(afa::obs::Stage::ControllerQueue, io,
                            now(), ready, spanTrack);
        if (stalled > ready &&
            spanLog->wants(afa::obs::Category::Smart))
            spanLog->record(afa::obs::Stage::SmartStall, io, ready,
                            stalled, spanTrack);
        if (faulted > stalled &&
            spanLog->wants(afa::obs::Category::Fault))
            spanLog->record(afa::obs::Stage::FaultStall, io, stalled,
                            faulted, spanTrack);
    }
    procBusy = faulted + proc_time;
    return procBusy;
}

Tick
Controller::throughXfer(Tick ready, afa::sim::Bytes bytes)
{
    Tick start = std::max(ready, xferBusy);
    xferBusy = start +
        afa::sim::transferTicks(bytes, fwConfig.internalMBps * 1e6);
    return xferBusy;
}

Tick
Controller::sampleHiccup()
{
    if (!rng().chance(fwConfig.hiccupProbability))
        return 0;
    ++ctrlStats.hiccups;
    auto penalty = static_cast<Tick>(rng().pareto(
        static_cast<double>(fwConfig.hiccupScale), fwConfig.hiccupShape));
    penalty = std::min(penalty, fwConfig.hiccupCap);
    if (tracer && tracer->enabled("nvme.hiccup"))
        tracer->record(now(), "nvme.hiccup",
                       afa::sim::strfmt("%s +%.1f us", name().c_str(),
                                        afa::sim::toUsec(penalty)));
    return penalty;
}

void
Controller::complete(const NvmeCommand &cmd, std::uint32_t reply_bytes,
                     Status status)
{
    NvmeCompletion completion{cmd.cmdId, cmd.queueId, status};
    transport(reply_bytes, cmd.tag, [this, completion] {
        completionHandler(completion);
    });
}

void
Controller::submit(const NvmeCommand &cmd)
{
    checkWired();
    if (isOffline) {
        // Dropped-out device: the command vanishes; the host driver's
        // timeout/retry path is the only recovery.
        ++ctrlStats.droppedCommands;
        return;
    }
    switch (cmd.op) {
      case Op::Read:
        serveRead(cmd);
        break;
      case Op::Write:
        serveWrite(cmd);
        break;
      case Op::Flush:
        serveFlush(cmd);
        break;
      case Op::Format:
        serveFormat(cmd);
        break;
      case Op::GetLogPage:
        serveLogPage(cmd);
        break;
    }
}

void
Controller::serveRead(const NvmeCommand &cmd)
{
    if (cmd.bytes == 0 || cmd.bytes % kLogicalBlockBytes != 0) {
        complete(cmd, 16, Status::InvalidField);
        return;
    }
    const std::uint64_t blocks = cmd.bytes / kLogicalBlockBytes;
    Tick pipe_done = throughPipeline(fwConfig.readProcTime, cmd.tag);
    at(pipe_done, [this, cmd, blocks] {
        // Determine the media path: any mapped block forces NAND.
        bool any_mapped = false;
        for (std::uint64_t b = 0; b < blocks; ++b)
            if (ftlLayer.isMapped(cmd.lba + b)) {
                any_mapped = true;
                break;
            }
        Tick hiccup = sampleHiccup();
        Tick media_begin = now();
        auto finish = [this, cmd, hiccup,
                       media_begin](Tick media_done) {
            Tick xfer_ready = media_done + hiccup;
            if (limp != 1.0) {
                // Limping device: the media stage takes `limp` times
                // as long; charge the excess after the healthy window.
                Tick extra = static_cast<Tick>(
                    static_cast<double>(media_done - media_begin) *
                    (limp - 1.0));
                ctrlStats.faultStallDelay += extra;
                if (extra && spanLog &&
                    spanLog->wants(afa::obs::Category::Fault))
                    spanLog->record(afa::obs::Stage::FaultStall,
                                    cmd.tag, xfer_ready,
                                    xfer_ready + extra, spanTrack);
                xfer_ready += extra;
            }
            Tick xfer_done = throughXfer(
                xfer_ready, afa::sim::Bytes{cmd.bytes});
            if (spanLog && spanLog->wants(afa::obs::Category::Nvme)) {
                spanLog->record(afa::obs::Stage::MediaRead, cmd.tag,
                                media_begin, media_done, spanTrack);
                spanLog->record(afa::obs::Stage::DeviceXfer, cmd.tag,
                                xfer_ready, xfer_done, spanTrack);
            }
            at(xfer_done, [this, cmd] {
                ++ctrlStats.readsCompleted;
                ctrlStats.bytesRead += cmd.bytes;
                complete(cmd, cmd.bytes + 16, Status::Success);
            });
        };
        if (!any_mapped) {
            // FOB zero-fill fast path: no NAND involved.
            Tick media = static_cast<Tick>(rng().lognormal(
                static_cast<double>(fwConfig.fobReadLatency),
                fwConfig.fobReadSigma));
            finish(now() + media);
            return;
        }
        // Mapped: fan out one FTL read per mapped logical block;
        // unmapped holes inside the range are served as zeroes.
        auto remaining = std::make_shared<std::uint64_t>(0);
        for (std::uint64_t b = 0; b < blocks; ++b)
            if (ftlLayer.isMapped(cmd.lba + b))
                ++*remaining;
        auto on_block = [this, finish, remaining] {
            if (--*remaining == 0)
                finish(now());
        };
        for (std::uint64_t b = 0; b < blocks; ++b)
            if (ftlLayer.isMapped(cmd.lba + b))
                ftlLayer.readMapped(cmd.lba + b, on_block, cmd.tag);
    });
}

void
Controller::serveWrite(const NvmeCommand &cmd)
{
    if (cmd.bytes == 0 || cmd.bytes % kLogicalBlockBytes != 0) {
        complete(cmd, 16, Status::InvalidField);
        return;
    }
    const std::uint64_t blocks = cmd.bytes / kLogicalBlockBytes;
    Tick pipe_done = throughPipeline(fwConfig.readProcTime, cmd.tag);
    // Write pipe: sequential streams pay bandwidth, random writes pay
    // the per-command FTL overhead that caps random IOPS (Table I).
    bool sequential = cmd.lba == lastWriteEndLba;
    lastWriteEndLba = cmd.lba + blocks;
    const Tick bw_ticks = afa::sim::transferTicks(
        afa::sim::Bytes{cmd.bytes}, fwConfig.writeMBps * 1e6);
    Tick service = sequential
        ? bw_ticks
        : std::max(bw_ticks, fwConfig.randomWriteOverhead);
    if (limp != 1.0) {
        Tick extra =
            static_cast<Tick>(static_cast<double>(service) *
                              (limp - 1.0));
        ctrlStats.faultStallDelay += extra;
        service += extra;
    }
    Tick start = std::max(pipe_done, writePipeBusy);
    writePipeBusy = start + service;
    at(writePipeBusy, [this, cmd, blocks] {
        auto remaining = std::make_shared<std::uint64_t>(blocks);
        for (std::uint64_t b = 0; b < blocks; ++b) {
            ftlLayer.write(cmd.lba + b, [this, cmd, remaining] {
                if (--*remaining != 0)
                    return;
                ++ctrlStats.writesCompleted;
                ctrlStats.bytesWritten += cmd.bytes;
                complete(cmd, 16, Status::Success);
            });
        }
    });
}

void
Controller::serveFlush(const NvmeCommand &cmd)
{
    // A flush drains behind every write already in the write pipe.
    Tick pipe_done =
        std::max(throughPipeline(fwConfig.readProcTime, cmd.tag),
                 writePipeBusy);
    at(pipe_done, [this, cmd] {
        ftlLayer.flush([this, cmd] {
            ++ctrlStats.flushesCompleted;
            complete(cmd, 16, Status::Success);
        });
    });
}

void
Controller::serveFormat(const NvmeCommand &cmd)
{
    // Format stalls the whole device for its duration.
    Tick pipe_done = throughPipeline(fwConfig.formatDuration, cmd.tag);
    at(pipe_done, [this, cmd] {
        ftlLayer.format();
        lastWriteEndLba = ~std::uint64_t(0);
        ++ctrlStats.formatsCompleted;
        complete(cmd, 16, Status::Success);
    });
}

void
Controller::serveLogPage(const NvmeCommand &cmd)
{
    Tick pipe_done =
        throughPipeline(fwConfig.logPageProcTime, cmd.tag);
    if (fwConfig.logPageStallsIo)
        smartEngine.stallFor(fwConfig.logPageProcTime);
    at(pipe_done, [this, cmd] {
        ++ctrlStats.logPagesCompleted;
        complete(cmd, 512 + 16, Status::Success);
    });
}

} // namespace afa::nvme
