#include "nvme/controller.hh"

#include <algorithm>
#include <memory>

#include "obs/span_log.hh"
#include "sim/logging.hh"

namespace afa::nvme {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Read:
        return "read";
      case Op::Write:
        return "write";
      case Op::Flush:
        return "flush";
      case Op::Format:
        return "format";
      case Op::GetLogPage:
        return "get-log-page";
    }
    return "unknown";
}

const char *
statusName(Status status)
{
    switch (status) {
      case Status::Success:
        return "success";
      case Status::InvalidField:
        return "invalid-field";
      case Status::TimedOut:
        return "timed-out";
      case Status::Aborted:
        return "aborted";
    }
    return "unknown";
}

Controller::Controller(afa::sim::Simulator &simulator,
                       std::string controller_name,
                       const FirmwareConfig &firmware_config,
                       afa::nand::NandArray &nand_array,
                       const FtlParams &ftl_params,
                       afa::sim::Tracer *trace_sink)
    : SimObject(simulator, std::move(controller_name)),
      fwConfig(firmware_config), nand(nand_array),
      ftlLayer(simulator, name() + ".ftl", nand_array, ftl_params),
      smartEngine(simulator, name() + ".smart", firmware_config.smart,
                  trace_sink),
      tracer(trace_sink), numQueuePairs(1), procBusy(0), xferBusy(0),
      writePipeBusy(0), lastWriteEndLba(~std::uint64_t(0))
{
}

void
Controller::setTransport(TransportFn transport_fn)
{
    transport = std::move(transport_fn);
}

void
Controller::setCompletionHandler(CompletionFn handler)
{
    completionHandler = std::move(handler);
}

void
Controller::setSpanLog(afa::obs::SpanLog *log, std::uint16_t track)
{
    spanLog = log;
    spanTrack = track;
    ftlLayer.setSpanLog(log, track);
}

void
Controller::start()
{
    smartEngine.start();
}

void
Controller::setLimpFactor(double factor)
{
    if (factor < 1.0)
        afa::sim::panic("%s: limp factor %.2f < 1", name().c_str(),
                        factor);
    // In-flight fast reads pre-computed their media window with the
    // old factor; the reference model applies limp at its finish
    // tick, so anything not yet past that tick must re-run there.
    demoteAllFast();
    limp = factor;
}

void
Controller::stallUntil(Tick until)
{
    demoteAllFast();
    faultStallUntilTick = std::max(faultStallUntilTick, until);
}

void
Controller::setOffline(bool offline)
{
    demoteAllFast();
    isOffline = offline;
}

void
Controller::setFastPath(bool enabled)
{
    if (!enabled)
        demoteAllFast();
    fastPathEnabled = enabled;
}

void
Controller::checkWired() const
{
    if (!transport || !completionHandler)
        afa::sim::fatal("%s: transport/completion handler not wired",
                        name().c_str());
}

Tick
Controller::throughPipeline(Tick proc_time, std::uint64_t io)
{
    Tick ready = std::max(now(), procBusy);
    Tick stalled = std::max(ready, smartEngine.stalledUntil());
    ctrlStats.smartStallDelay += stalled - ready;
    Tick faulted = std::max(stalled, faultStallUntilTick);
    ctrlStats.faultStallDelay += faulted - stalled;
    if (spanLog) {
        if (ready > now() && spanLog->wants(afa::obs::Category::Nvme))
            spanLog->record(afa::obs::Stage::ControllerQueue, io,
                            now(), ready, spanTrack);
        if (stalled > ready &&
            spanLog->wants(afa::obs::Category::Smart))
            spanLog->record(afa::obs::Stage::SmartStall, io, ready,
                            stalled, spanTrack);
        if (faulted > stalled &&
            spanLog->wants(afa::obs::Category::Fault))
            spanLog->record(afa::obs::Stage::FaultStall, io, stalled,
                            faulted, spanTrack);
    }
    procBusy = faulted + proc_time;
    return procBusy;
}

Tick
Controller::throughXfer(Tick ready, afa::sim::Bytes bytes)
{
    Tick start = std::max(ready, xferBusy);
    xferBusy = start +
        afa::sim::transferTicks(bytes, fwConfig.internalMBps * 1e6);
    return xferBusy;
}

Tick
Controller::sampleHiccup(Tick when)
{
    if (!rng().chance(fwConfig.hiccupProbability))
        return 0;
    ++ctrlStats.hiccups;
    auto penalty = static_cast<Tick>(rng().pareto(
        static_cast<double>(fwConfig.hiccupScale), fwConfig.hiccupShape));
    penalty = std::min(penalty, fwConfig.hiccupCap);
    if (tracer && tracer->enabled("nvme.hiccup"))
        tracer->record(when, "nvme.hiccup",
                       afa::sim::strfmt("%s +%.1f us", name().c_str(),
                                        afa::sim::toUsec(penalty)));
    return penalty;
}

void
Controller::complete(const NvmeCommand &cmd, std::uint32_t reply_bytes,
                     Status status)
{
    NvmeCompletion completion{cmd.cmdId, cmd.queueId, status};
    transport(reply_bytes, cmd.tag, [this, completion] {
        completionHandler(completion);
    });
}

void
Controller::submit(const NvmeCommand &cmd)
{
    checkWired();
    if (isOffline) {
        // Dropped-out device: the command vanishes; the host driver's
        // timeout/retry path is the only recovery.
        ++ctrlStats.droppedCommands;
        return;
    }
    switch (cmd.op) {
      case Op::Read:
        serveRead(cmd);
        break;
      case Op::Write:
        serveWrite(cmd);
        break;
      case Op::Flush:
        serveFlush(cmd);
        break;
      case Op::Format:
        serveFormat(cmd);
        break;
      case Op::GetLogPage:
        serveLogPage(cmd);
        break;
    }
}

void
Controller::finishRead(const NvmeCommand &cmd, Tick hiccup,
                       Tick media_begin, Tick media_done)
{
    Tick xfer_ready = media_done + hiccup;
    if (limp != 1.0) {
        // Limping device: the media stage takes `limp` times as
        // long; charge the excess after the healthy window.
        Tick extra = static_cast<Tick>(
            static_cast<double>(media_done - media_begin) *
            (limp - 1.0));
        ctrlStats.faultStallDelay += extra;
        if (extra && spanLog &&
            spanLog->wants(afa::obs::Category::Fault))
            spanLog->record(afa::obs::Stage::FaultStall, cmd.tag,
                            xfer_ready, xfer_ready + extra, spanTrack);
        xfer_ready += extra;
    }
    Tick xfer_done = throughXfer(xfer_ready, afa::sim::Bytes{cmd.bytes});
    if (spanLog && spanLog->wants(afa::obs::Category::Nvme)) {
        spanLog->record(afa::obs::Stage::MediaRead, cmd.tag,
                        media_begin, media_done, spanTrack);
        spanLog->record(afa::obs::Stage::DeviceXfer, cmd.tag,
                        xfer_ready, xfer_done, spanTrack);
    }
    at(xfer_done, [this, cmd] {
        ++ctrlStats.readsCompleted;
        ctrlStats.bytesRead += cmd.bytes;
        complete(cmd, cmd.bytes + 16, Status::Success);
    });
    // The DMA claim is made; later submissions may fast-path again.
    --chainDepth;
}

void
Controller::serveRead(const NvmeCommand &cmd)
{
    if (cmd.bytes == 0 || cmd.bytes % kLogicalBlockBytes != 0) {
        complete(cmd, 16, Status::InvalidField);
        return;
    }
    const std::uint64_t blocks = cmd.bytes / kLogicalBlockBytes;
    Tick pipe_done = throughPipeline(fwConfig.readProcTime, cmd.tag);
    bool all_mapped = false;
    if (fastReadEligible(cmd, blocks, all_mapped)) {
        fastRead(cmd, blocks, pipe_done, all_mapped);
        return;
    }
    fallbackDispatch();
    at(pipe_done, [this, cmd, blocks] {
        // Determine the media path: any mapped block forces NAND.
        bool any_mapped = false;
        for (std::uint64_t b = 0; b < blocks; ++b)
            if (ftlLayer.isMapped(cmd.lba + b)) {
                any_mapped = true;
                break;
            }
        Tick hiccup = sampleHiccup();
        Tick media_begin = now();
        if (!any_mapped) {
            // FOB zero-fill fast path: no NAND involved.
            Tick media = static_cast<Tick>(rng().lognormal(
                static_cast<double>(fwConfig.fobReadLatency),
                fwConfig.fobReadSigma));
            finishRead(cmd, hiccup, media_begin, now() + media);
            return;
        }
        // Mapped: fan out one FTL read per mapped logical block;
        // unmapped holes inside the range are served as zeroes.
        auto remaining = std::make_shared<std::uint64_t>(0);
        for (std::uint64_t b = 0; b < blocks; ++b)
            if (ftlLayer.isMapped(cmd.lba + b))
                ++*remaining;
        auto on_block = [this, cmd, hiccup, media_begin, remaining] {
            if (--*remaining == 0)
                finishRead(cmd, hiccup, media_begin, now());
        };
        for (std::uint64_t b = 0; b < blocks; ++b)
            if (ftlLayer.isMapped(cmd.lba + b))
                ftlLayer.readMapped(cmd.lba + b, on_block, cmd.tag);
    });
}

bool
Controller::fastReadEligible(const NvmeCommand &cmd,
                             std::uint64_t blocks,
                             bool &all_mapped) const
{
    if (!fastPathEnabled || chainDepth != 0)
        return false;
    // Fault hooks change how (or whether) the reference model would
    // serve this command at its own event times: stay chained.
    if (limp != 1.0 || faultStallUntilTick > now())
        return false;
    // A pending fast write to an overlapping range would flip this
    // range's mapped-ness between now and the reference pipe event.
    for (const FastWrite &fw : fastWrites)
        if (cmd.lba < fw.cmd.lba + fw.blocks &&
            fw.cmd.lba < cmd.lba + blocks)
            return false;
    std::uint64_t mapped = 0;
    for (std::uint64_t b = 0; b < blocks; ++b)
        if (ftlLayer.isMapped(cmd.lba + b))
            ++mapped;
    if (mapped != 0 && mapped != blocks)
        return false; // mixed range: chained fan-out with holes
    all_mapped = mapped == blocks && mapped != 0;
    // Mapped reads draw from the NAND stream and claim die/channel
    // horizons; a running GC interleaves its own claims and draws at
    // callback times we cannot pre-order against.
    if (all_mapped && ftlLayer.gcRunning())
        return false;
    return true;
}

void
Controller::fastRead(const NvmeCommand &cmd, std::uint64_t blocks,
                     Tick pipe_done, bool all_mapped)
{
    ++ctrlStats.fastPathCommands;
    // Draws happen in the reference order: hiccup first, then media.
    Tick hiccup = sampleHiccup(pipe_done);
    Tick media_begin = pipe_done;
    Tick media_done;
    if (!all_mapped) {
        Tick media = static_cast<Tick>(rng().lognormal(
            static_cast<double>(fwConfig.fobReadLatency),
            fwConfig.fobReadSigma));
        media_done = pipe_done + media;
    } else {
        media_done = 0;
        for (std::uint64_t b = 0; b < blocks; ++b)
            media_done = std::max(
                media_done,
                ftlLayer.readMappedAt(cmd.lba + b, pipe_done, cmd.tag));
    }
    // The reference model claims the DMA engine at its finish tick:
    // the pipe event for FOB reads (monotone in submit order), the
    // last NAND data-out for mapped ones (not monotone). Enforce the
    // reference claim order by demoting any in-flight entry whose
    // reference claim would land after ours.
    Tick finish_tick = all_mapped ? media_done : pipe_done;
    while (!fastReads.empty() &&
           fastReads.back().finishTick > finish_tick)
        demoteBackFastRead();
    FastRead fr;
    fr.cmd = cmd;
    fr.hiccup = hiccup;
    fr.mediaBegin = media_begin;
    fr.mediaDone = media_done;
    fr.finishTick = finish_tick;
    fr.prevXferBusy = xferBusy;
    fr.xferReady = media_done + hiccup;
    fr.xferDone = throughXfer(fr.xferReady, afa::sim::Bytes{cmd.bytes});
    if (fastReads.empty())
        fastReadEv = at(fr.xferDone, [this] { completeFastRead(); });
    fastReads.push_back(std::move(fr));
}

void
Controller::completeFastRead()
{
    if (fastReads.empty())
        afa::sim::panic("%s: fast read completion without flight",
                        name().c_str());
    FastRead fr = std::move(fastReads.front());
    fastReads.pop_front();
    if (!fastReads.empty())
        fastReadEv = at(fastReads.front().xferDone,
                        [this] { completeFastRead(); });
    // Spans carry the exact reference values; they are recorded at
    // the completion tick rather than the reference finish tick, so
    // only the ring's recording order differs (attribution and drop
    // counts are order-independent).
    if (spanLog && spanLog->wants(afa::obs::Category::Nvme)) {
        spanLog->record(afa::obs::Stage::MediaRead, fr.cmd.tag,
                        fr.mediaBegin, fr.mediaDone, spanTrack);
        spanLog->record(afa::obs::Stage::DeviceXfer, fr.cmd.tag,
                        fr.xferReady, fr.xferDone, spanTrack);
    }
    ++ctrlStats.readsCompleted;
    ctrlStats.bytesRead += fr.cmd.bytes;
    complete(fr.cmd, fr.cmd.bytes + 16, Status::Success);
}

void
Controller::demoteBackFastRead()
{
    FastRead fr = std::move(fastReads.back());
    fastReads.pop_back();
    if (fastReads.empty())
        sim().cancel(fastReadEv);
    // Claims roll back LIFO: the back entry's claim is the newest.
    xferBusy = fr.prevXferBusy;
    ++chainDepth;
    --ctrlStats.fastPathCommands;
    ++ctrlStats.fallbackCommands;
    at(fr.finishTick, [this, fr] {
        finishRead(fr.cmd, fr.hiccup, fr.mediaBegin, fr.mediaDone);
    });
}

void
Controller::chainedWriteBody(const NvmeCommand &cmd,
                             std::uint64_t blocks)
{
    auto remaining = std::make_shared<std::uint64_t>(blocks);
    for (std::uint64_t b = 0; b < blocks; ++b) {
        ftlLayer.write(cmd.lba + b, [this, cmd, remaining] {
            if (--*remaining != 0)
                return;
            ++ctrlStats.writesCompleted;
            ctrlStats.bytesWritten += cmd.bytes;
            complete(cmd, 16, Status::Success);
            // FTL placement (and any GC it started) is resolved.
            --chainDepth;
        });
    }
}

void
Controller::serveWrite(const NvmeCommand &cmd)
{
    if (cmd.bytes == 0 || cmd.bytes % kLogicalBlockBytes != 0) {
        complete(cmd, 16, Status::InvalidField);
        return;
    }
    const std::uint64_t blocks = cmd.bytes / kLogicalBlockBytes;
    Tick pipe_done = throughPipeline(fwConfig.readProcTime, cmd.tag);
    // Write pipe: sequential streams pay bandwidth, random writes pay
    // the per-command FTL overhead that caps random IOPS (Table I).
    bool sequential = cmd.lba == lastWriteEndLba;
    lastWriteEndLba = cmd.lba + blocks;
    const Tick bw_ticks = afa::sim::transferTicks(
        afa::sim::Bytes{cmd.bytes}, fwConfig.writeMBps * 1e6);
    Tick service = sequential
        ? bw_ticks
        : std::max(bw_ticks, fwConfig.randomWriteOverhead);
    if (limp != 1.0) {
        Tick extra =
            static_cast<Tick>(static_cast<double>(service) *
                              (limp - 1.0));
        ctrlStats.faultStallDelay += extra;
        service += extra;
    }
    Tick start = std::max(pipe_done, writePipeBusy);
    writePipeBusy = start + service;
    if (fastWriteEligible(blocks)) {
        ++ctrlStats.fastPathCommands;
        FastWrite fw;
        fw.cmd = cmd;
        fw.blocks = blocks;
        fw.wpbTick = writePipeBusy;
        if (fastWrites.empty())
            fastWriteEv =
                at(writePipeBusy, [this] { completeFastWrite(); });
        pendingFastWriteSlots += static_cast<unsigned>(blocks);
        fastWrites.push_back(std::move(fw));
        return;
    }
    fallbackDispatch();
    at(writePipeBusy,
       [this, cmd, blocks] { chainedWriteBody(cmd, blocks); });
}

bool
Controller::fastWriteEligible(std::uint64_t blocks) const
{
    if (!fastPathEnabled || chainDepth != 0)
        return false;
    if (limp != 1.0 || faultStallUntilTick > now())
        return false;
    // The placement must be provably inert at the write-pipe exit:
    // open-page room (no program -> no NAND draw), admission
    // headroom, no GC. Out-of-range LBAs panic either way.
    return blocks < ftlLayer.logicalBlocks() &&
        ftlLayer.canFastWrite(pendingFastWriteSlots,
                              static_cast<unsigned>(blocks));
}

void
Controller::completeFastWrite()
{
    if (fastWrites.empty())
        afa::sim::panic("%s: fast write completion without flight",
                        name().c_str());
    FastWrite fw = std::move(fastWrites.front());
    fastWrites.pop_front();
    if (!fastWrites.empty())
        fastWriteEv = at(fastWrites.front().wpbTick,
                         [this] { completeFastWrite(); });
    pendingFastWriteSlots -= static_cast<unsigned>(fw.blocks);
    // The collapsed write-buffer path: place every block directly --
    // the reference model's write() + after(0, on_buffered) per
    // block, minus the zero-delay events -- then complete at the
    // same tick.
    for (std::uint64_t b = 0; b < fw.blocks; ++b)
        ftlLayer.writeFast(fw.cmd.lba + b);
    ++ctrlStats.writesCompleted;
    ctrlStats.bytesWritten += fw.cmd.bytes;
    complete(fw.cmd, 16, Status::Success);
}

void
Controller::demoteBackFastWrite()
{
    FastWrite fw = std::move(fastWrites.back());
    fastWrites.pop_back();
    if (fastWrites.empty())
        sim().cancel(fastWriteEv);
    pendingFastWriteSlots -= static_cast<unsigned>(fw.blocks);
    ++chainDepth;
    --ctrlStats.fastPathCommands;
    ++ctrlStats.fallbackCommands;
    at(fw.wpbTick, [this, cmd = fw.cmd, blocks = fw.blocks] {
        chainedWriteBody(cmd, blocks);
    });
}

void
Controller::fallbackDispatch()
{
    demoteAllFast();
    ++chainDepth;
    ++ctrlStats.fallbackCommands;
}

void
Controller::demoteAllFast()
{
    // Reads whose reference finish tick has passed hold final claims
    // and keep their single event; the rest re-enter the chained
    // model at exactly that tick (entries are finishTick-sorted, so
    // the revocable ones form the LIFO-rollback-safe suffix).
    while (!fastReads.empty() && fastReads.back().finishTick > now())
        demoteBackFastRead();
    // A write's placement is only inert while nothing chained can
    // interleave with it; demote them all.
    while (!fastWrites.empty())
        demoteBackFastWrite();
}

void
Controller::serveFlush(const NvmeCommand &cmd)
{
    // A flush drains behind every write already in the write pipe.
    Tick pipe_done =
        std::max(throughPipeline(fwConfig.readProcTime, cmd.tag),
                 writePipeBusy);
    fallbackDispatch();
    at(pipe_done, [this, cmd] {
        ftlLayer.flush([this, cmd] {
            ++ctrlStats.flushesCompleted;
            complete(cmd, 16, Status::Success);
        });
        // The flush's synchronous work -- the forced partial-page
        // programs with their NAND draws and horizon claims -- is
        // done; the waiter it leaves behind draws nothing and claims
        // nothing, so later submissions may fast-path again even
        // while the drain is still in flight (it may never finish on
        // a drive whose last page stays partial).
        --chainDepth;
    });
}

void
Controller::serveFormat(const NvmeCommand &cmd)
{
    // Format stalls the whole device for its duration.
    Tick pipe_done = throughPipeline(fwConfig.formatDuration, cmd.tag);
    fallbackDispatch();
    at(pipe_done, [this, cmd] {
        ftlLayer.format();
        lastWriteEndLba = ~std::uint64_t(0);
        ++ctrlStats.formatsCompleted;
        complete(cmd, 16, Status::Success);
        --chainDepth;
    });
}

void
Controller::serveLogPage(const NvmeCommand &cmd)
{
    Tick pipe_done =
        throughPipeline(fwConfig.logPageProcTime, cmd.tag);
    if (fwConfig.logPageStallsIo)
        smartEngine.stallFor(fwConfig.logPageProcTime);
    fallbackDispatch();
    at(pipe_done, [this, cmd] {
        ++ctrlStats.logPagesCompleted;
        complete(cmd, 512 + 16, Status::Success);
        --chainDepth;
    });
}

} // namespace afa::nvme
