/**
 * @file
 * Firmware configuration of the modelled NVMe SSD, including the
 * paper's "experimental firmware" switch that disables SMART data
 * update/save (Section IV-E).
 *
 * Timing defaults are calibrated so a single drive reproduces the
 * Table I spec (160k/30k random IOPS, 1700/750 MB/s sequential) and
 * the paper's ~25 us QD1 FOB read anchor; see bench/table1_ssd_spec.
 */

#ifndef AFA_NVME_FIRMWARE_CONFIG_HH
#define AFA_NVME_FIRMWARE_CONFIG_HH

#include "sim/types.hh"

namespace afa::nvme {

using afa::sim::Tick;

/** SMART housekeeping behaviour (Section IV-E). */
struct SmartConfig
{
    /** Master switch; the experimental firmware sets this false. */
    bool enabled = true;

    /** Period between SMART data collections. */
    Tick period = afa::sim::sec(30);

    /** Median duration of a SMART data *update* stall. */
    Tick updateDuration = afa::sim::usec(520);

    /** Every Nth collection also *saves* to NAND (longer stall). */
    unsigned saveEvery = 4;

    /** Median duration of a SMART data *save* stall. */
    Tick saveDuration = afa::sim::usec(545);

    /** Lognormal sigma applied to stall durations. The firmware's
     *  housekeeping is near-deterministic, which is why the paper's
     *  fully tuned stddev(max) collapses to ~4 us. */
    double durationSigma = 0.01;
};

/** Controller/firmware timing model. */
struct FirmwareConfig
{
    /** Per-command pipeline (lookup, DMA setup) service time; caps
     *  random-read IOPS at 1/6.25us = 160k (Table I). */
    Tick readProcTime = afa::sim::nsec(6250);

    /** FOB (unmapped) read media latency: lognormal median. */
    Tick fobReadLatency = afa::sim::usec(10);

    /** Lognormal sigma of the FOB read latency. */
    double fobReadSigma = 0.06;

    /**
     * Probability a read hits a firmware hiccup (read-retry class
     * event); adds a Pareto-tailed penalty. This is what keeps the
     * per-SSD *range* of max latency wide even with SMART disabled
     * (Fig. 11).
     */
    double hiccupProbability = 4e-6;
    Tick hiccupScale = afa::sim::usec(20);  ///< Pareto xm
    double hiccupShape = 1.6;               ///< Pareto alpha
    Tick hiccupCap = afa::sim::usec(70);    ///< clamp

    /** Internal buffer<->host DMA engine bandwidth. */
    double internalMBps = 1700.0;

    /** Extra FTL cost serialised per *random* write. */
    Tick randomWriteOverhead = afa::sim::usec(33);

    /** Sequential write drain bandwidth (write pipe server). */
    double writeMBps = 750.0;

    /** Volatile write buffer capacity in 4 KiB entries. */
    unsigned writeBufferEntries = 1024;

    /** Admin: service time of a GetLogPage (SMART query). */
    Tick logPageProcTime = afa::sim::usec(150);

    /** True when a host GetLogPage also stalls the I/O pipeline. */
    bool logPageStallsIo = true;

    /** Duration of an NVMe format. */
    Tick formatDuration = afa::sim::msec(500);

    SmartConfig smart;

    /** The paper's experimental firmware: SMART update/save disabled. */
    static FirmwareConfig
    experimental()
    {
        FirmwareConfig cfg;
        cfg.smart.enabled = false;
        return cfg;
    }
};

} // namespace afa::nvme

#endif // AFA_NVME_FIRMWARE_CONFIG_HH
