#include "nvme/smart.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace afa::nvme {

SmartEngine::SmartEngine(afa::sim::Simulator &simulator,
                         std::string engine_name,
                         const SmartConfig &smart_config,
                         afa::sim::Tracer *trace_sink)
    : SimObject(simulator, std::move(engine_name)),
      smartConfig(smart_config), tracer(trace_sink), stallHorizon(0),
      numCollections(0), numSaves(0)
{
}

void
SmartEngine::start()
{
    if (!smartConfig.enabled)
        return;
    // Randomised phase so 64 drives do not collect in lockstep --
    // matching the paper's observation that spikes from different
    // SSDs appear at different sample indices.
    Tick phase = static_cast<Tick>(
        rng().uniform(0.0, static_cast<double>(smartConfig.period)));
    after(phase, [this] { collect(); });
}

void
SmartEngine::collect()
{
    ++numCollections;
    bool is_save = smartConfig.saveEvery != 0 &&
        (numCollections % smartConfig.saveEvery) == 0;
    Tick median = is_save ? smartConfig.saveDuration
                          : smartConfig.updateDuration;
    Tick duration = static_cast<Tick>(rng().lognormal(
        static_cast<double>(median), smartConfig.durationSigma));
    if (is_save)
        ++numSaves;
    stallFor(duration);
    if (tracer && tracer->enabled("nvme.smart"))
        tracer->record(now(), "nvme.smart",
                       afa::sim::strfmt("%s %s stall %.1f us",
                                        name().c_str(),
                                        is_save ? "save" : "update",
                                        afa::sim::toUsec(duration)));
    after(smartConfig.period, [this] { collect(); });
}

void
SmartEngine::stallFor(Tick duration)
{
    stallHorizon = std::max(stallHorizon, now() + duration);
}

} // namespace afa::nvme
