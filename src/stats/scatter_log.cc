#include "stats/scatter_log.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"

namespace afa::stats {

void
ScatterLog::record(Tick when, Tick latency, std::uint32_t device)
{
    if (buf.size() >= maxSamples) {
        ++numDropped;
        ++nextIndex;
        return;
    }
    // Grow geometrically up to the bound rather than committing the
    // full capacity up front: the default capacity is 8M samples
    // (~256 MiB), and with the parallel experiment engine several
    // scatter-enabled experiments run concurrently, so a run that logs
    // only a few samples must not pay for its ceiling. Capping the
    // final doubling at maxSamples also avoids overshooting the bound.
    if (buf.size() == buf.capacity())
        buf.reserve(std::min(maxSamples,
                             std::max<std::size_t>(4096,
                                                   buf.capacity() * 2)));
    buf.push_back(Sample{nextIndex++, when, latency, device});
}

std::vector<Sample>
ScatterLog::outliers(Tick threshold) const
{
    std::vector<Sample> out;
    for (const auto &s : buf)
        if (s.latency > threshold)
            out.push_back(s);
    return out;
}

std::vector<SpikeCluster>
ScatterLog::clusters(Tick threshold, Tick gap) const
{
    std::vector<SpikeCluster> out;
    for (const auto &s : buf) {
        if (s.latency <= threshold)
            continue;
        if (!out.empty() && s.when - out.back().end <= gap) {
            SpikeCluster &c = out.back();
            c.end = s.when;
            c.samples += 1;
            c.peakLatency = std::max(c.peakLatency, s.latency);
        } else {
            out.push_back(
                SpikeCluster{s.when, s.when, 1, s.latency, s.index});
        }
    }
    return out;
}

Tick
ScatterLog::clusterPeriod(Tick threshold, Tick gap) const
{
    auto cs = clusters(threshold, gap);
    if (cs.size() < 2)
        return 0;
    std::vector<Tick> intervals;
    intervals.reserve(cs.size() - 1);
    for (std::size_t i = 1; i < cs.size(); ++i)
        intervals.push_back(cs[i].start - cs[i - 1].start);
    std::sort(intervals.begin(), intervals.end());
    return intervals[intervals.size() / 2];
}

std::string
ScatterLog::toText(std::size_t stride) const
{
    if (stride == 0)
        afa::sim::fatal("ScatterLog::toText: stride must be > 0");
    std::string out;
    // ~32 bytes covers a typical "index latency nvmeN" line; the
    // string grows past it only for extreme indices/latencies.
    out.reserve(32 * (buf.size() / stride + 1));
    char line[96];
    for (std::size_t i = 0; i < buf.size(); i += stride) {
        const Sample &s = buf[i];
        // %g matches the std::ostream default double format the
        // scatter series was originally emitted with (fig10 output
        // must stay byte-identical).
        int len = std::snprintf(line, sizeof(line),
                                "%llu %g nvme%u\n",
                                static_cast<unsigned long long>(s.index),
                                afa::sim::toUsec(s.latency), s.device);
        if (len > 0)
            out.append(line, static_cast<std::size_t>(
                                 std::min<int>(len, sizeof(line) - 1)));
    }
    return out;
}

void
ScatterLog::clear()
{
    buf.clear();
    nextIndex = 0;
    numDropped = 0;
}

} // namespace afa::stats
