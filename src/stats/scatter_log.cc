#include "stats/scatter_log.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"

namespace afa::stats {

void
ScatterLog::record(Tick when, Tick latency, std::uint32_t device)
{
    if (buf.size() >= maxSamples) {
        ++numDropped;
        ++nextIndex;
        return;
    }
    buf.push_back(Sample{nextIndex++, when, latency, device});
}

std::vector<Sample>
ScatterLog::outliers(Tick threshold) const
{
    std::vector<Sample> out;
    for (const auto &s : buf)
        if (s.latency > threshold)
            out.push_back(s);
    return out;
}

std::vector<SpikeCluster>
ScatterLog::clusters(Tick threshold, Tick gap) const
{
    std::vector<SpikeCluster> out;
    for (const auto &s : buf) {
        if (s.latency <= threshold)
            continue;
        if (!out.empty() && s.when - out.back().end <= gap) {
            SpikeCluster &c = out.back();
            c.end = s.when;
            c.samples += 1;
            c.peakLatency = std::max(c.peakLatency, s.latency);
        } else {
            out.push_back(
                SpikeCluster{s.when, s.when, 1, s.latency, s.index});
        }
    }
    return out;
}

Tick
ScatterLog::clusterPeriod(Tick threshold, Tick gap) const
{
    auto cs = clusters(threshold, gap);
    if (cs.size() < 2)
        return 0;
    std::vector<Tick> intervals;
    intervals.reserve(cs.size() - 1);
    for (std::size_t i = 1; i < cs.size(); ++i)
        intervals.push_back(cs[i].start - cs[i - 1].start);
    std::sort(intervals.begin(), intervals.end());
    return intervals[intervals.size() / 2];
}

std::string
ScatterLog::toText(std::size_t stride) const
{
    if (stride == 0)
        afa::sim::fatal("ScatterLog::toText: stride must be > 0");
    std::ostringstream os;
    for (std::size_t i = 0; i < buf.size(); i += stride) {
        const Sample &s = buf[i];
        os << s.index << " " << afa::sim::toUsec(s.latency) << " nvme"
           << s.device << "\n";
    }
    return os.str();
}

void
ScatterLog::clear()
{
    buf.clear();
    nextIndex = 0;
    numDropped = 0;
}

} // namespace afa::stats
