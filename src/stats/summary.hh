/**
 * @file
 * The FIO-style completion-latency report used throughout the paper:
 * average latency plus the percentile ladder from 2-nines (99%) to
 * 6-nines (99.9999%) and the 100th (maximum) latency, per device.
 */

#ifndef AFA_STATS_SUMMARY_HH
#define AFA_STATS_SUMMARY_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/histogram.hh"

namespace afa::stats {

/** The percentile ladder the paper plots (Figs. 6-9, 11-14). */
struct NinesLadder
{
    /** Number of plotted points: avg, 2..6 nines, max. */
    static constexpr std::size_t kPoints = 7;

    /** Quantiles of the ladder entries (avg encoded as -1). */
    static const std::array<double, kPoints> &quantiles();

    /** Human-readable labels: "avg", "99%", ..., "99.9999%", "max". */
    static const std::array<const char *, kPoints> &labels();

    /** Short labels: "avg", "2-nines", ..., "6-nines", "max". */
    static const std::array<const char *, kPoints> &shortLabels();
};

/**
 * Per-device latency summary (values in microseconds, like FIO's
 * clat report).
 */
struct LatencySummary
{
    std::string device;          ///< e.g. "nvme17"
    std::uint64_t samples = 0;   ///< completed I/Os
    double meanUs = 0.0;
    double stddevUs = 0.0;
    double minUs = 0.0;
    double maxUs = 0.0;
    /** Ladder values: [avg, p99, p99.9, p99.99, p99.999, p99.9999, max]. */
    std::array<double, NinesLadder::kPoints> ladderUs{};

    /** Build a summary from a histogram of tick-valued samples. */
    static LatencySummary fromHistogram(const std::string &device,
                                        const Histogram &hist);
};

/** Aggregate (mean and stddev per ladder point) across devices. */
struct LadderAggregate
{
    std::size_t devices = 0;
    std::array<double, NinesLadder::kPoints> meanUs{};
    std::array<double, NinesLadder::kPoints> stddevUs{};
    std::array<double, NinesLadder::kPoints> minUs{};
    std::array<double, NinesLadder::kPoints> maxUs{};

    /** Compute across a set of per-device summaries (Figs. 12/14). */
    static LadderAggregate across(
        const std::vector<LatencySummary> &summaries);
};

} // namespace afa::stats

#endif // AFA_STATS_SUMMARY_HH
