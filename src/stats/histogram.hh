/**
 * @file
 * HDR-style log-linear histogram for latency samples.
 *
 * Values (ticks, i.e. nanoseconds) are bucketed into power-of-two
 * magnitude groups, each split into a fixed number of linear
 * sub-buckets. This gives a bounded relative error (~1/subBuckets)
 * across the full range from 1 ns to minutes while using a few KB per
 * device -- the same trade FIO and HdrHistogram make. Exact min, max,
 * mean, and standard deviation are tracked alongside.
 */

#ifndef AFA_STATS_HISTOGRAM_HH
#define AFA_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace afa::stats {

using afa::sim::Tick;

/** Log-linear latency histogram with exact extreme/mean tracking. */
class Histogram
{
  public:
    /**
     * @param sub_bucket_bits log2 of linear sub-buckets per magnitude
     *        group; 6 (64 sub-buckets) bounds quantile error to ~1.6%.
     */
    explicit Histogram(unsigned sub_bucket_bits = 6);

    /** Record one sample. */
    void record(Tick value);

    /** Record @p count identical samples. */
    void record(Tick value, std::uint64_t count);

    /** Number of recorded samples. */
    std::uint64_t count() const { return numSamples; }

    /** Exact smallest recorded value (0 when empty). */
    Tick min() const { return numSamples ? minValue : 0; }

    /** Exact largest recorded value (0 when empty). */
    Tick max() const { return numSamples ? maxValue : 0; }

    /** Exact arithmetic mean (0 when empty). */
    double mean() const;

    /** Exact population standard deviation (0 when empty). */
    double stddev() const;

    /**
     * Value at quantile @p q in [0, 1].
     *
     * Returns a representative value of the bucket containing the
     * q-th sample (linear interpolation within the bucket). q=0 gives
     * the exact min; q=1 the exact max.
     */
    Tick quantile(double q) const;

    /** Convenience: quantile from a percentile in [0, 100]. */
    Tick percentile(double p) const { return quantile(p / 100.0); }

    /** Samples strictly greater than @p threshold. */
    std::uint64_t countAbove(Tick threshold) const;

    /** Merge another histogram (same geometry required). */
    void merge(const Histogram &other);

    /** Reset to empty. */
    void clear();

    /** Sub-bucket bits this histogram was built with. */
    unsigned subBucketBits() const { return subBits; }

    /** Upper bound on relative quantile error from bucketing. */
    double relativeError() const
    {
        return 1.0 / static_cast<double>(1u << subBits);
    }

  private:
    unsigned subBits;
    std::vector<std::uint64_t> buckets;
    std::uint64_t numSamples;
    Tick minValue;
    Tick maxValue;
    double sum;
    double sumSquares;

    std::size_t bucketIndex(Tick value) const;
    Tick bucketLow(std::size_t index) const;
    Tick bucketHigh(std::size_t index) const;
};

} // namespace afa::stats

#endif // AFA_STATS_HISTOGRAM_HH
