/**
 * @file
 * ASCII table and CSV writers for the bench harnesses, which print the
 * same rows/series the paper's figures plot.
 */

#ifndef AFA_STATS_TABLE_HH
#define AFA_STATS_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace afa::stats {

/**
 * A simple column-aligned text table.
 *
 * Numeric-looking cells are right-aligned, text left-aligned. Rows may
 * be added cell-wise or whole.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a full row (padded/truncated to the column count). */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision into a cell string. */
    static std::string num(double value, int precision = 1);

    /** Format an integer cell. */
    static std::string num(std::uint64_t value);

    /** Render the table with a header rule. */
    std::string toString() const;

    /** Render as CSV (RFC-ish: quotes around cells with commas). */
    std::string toCsv() const;

    /** Print to a FILE* (default stdout). */
    void print(std::FILE *out = stdout) const;

    std::size_t rows() const { return body.size(); }
    std::size_t columns() const { return header.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;

    static bool numericLooking(const std::string &cell);
};

} // namespace afa::stats

#endif // AFA_STATS_TABLE_HH
