#include "stats/run_metrics.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "stats/json.hh"

namespace afa::stats {

double
RunMetrics::eventsPerSec() const
{
    if (wallSeconds <= 0.0)
        return 0.0;
    return static_cast<double>(events) / wallSeconds;
}

double
RunMetrics::eventsPerIo() const
{
    if (ios == 0)
        return 0.0;
    return static_cast<double>(events) / static_cast<double>(ios);
}

void
RunMetricsLog::reset()
{
    afa::sync::MutexLock lock(mutex);
    runs.clear();
    numStarted = 0;
}

void
RunMetricsLog::record(RunMetrics metrics)
{
    afa::sync::MutexLock lock(mutex);
    runs.push_back(std::move(metrics));
}

void
RunMetricsLog::noteStarted()
{
    afa::sync::MutexLock lock(mutex);
    ++numStarted;
}

std::size_t
RunMetricsLog::started() const
{
    afa::sync::MutexLock lock(mutex);
    return numStarted;
}

std::size_t
RunMetricsLog::finished() const
{
    afa::sync::MutexLock lock(mutex);
    return runs.size();
}

std::vector<RunMetrics>
RunMetricsLog::snapshot() const
{
    std::vector<RunMetrics> copy;
    {
        afa::sync::MutexLock lock(mutex);
        copy = runs;
    }
    std::sort(copy.begin(), copy.end(),
              [](const RunMetrics &a, const RunMetrics &b) {
                  return a.index < b.index;
              });
    return copy;
}

std::uint64_t
RunMetricsLog::totalEvents() const
{
    afa::sync::MutexLock lock(mutex);
    std::uint64_t total = 0;
    for (const RunMetrics &m : runs)
        total += m.events;
    return total;
}

double
RunMetricsLog::totalWallSeconds() const
{
    afa::sync::MutexLock lock(mutex);
    double total = 0.0;
    for (const RunMetrics &m : runs)
        total += m.wallSeconds;
    return total;
}

Table
RunMetricsLog::table(double suite_wall_seconds) const
{
    Table table({"run", "label", "worker", "events", "wall s",
                 "events/s", "events/io"});
    std::uint64_t total_events = 0;
    std::uint64_t total_ios = 0;
    double total_wall = 0.0;
    for (const RunMetrics &m : snapshot()) {
        total_events += m.events;
        total_ios += m.ios;
        total_wall += m.wallSeconds;
        table.addRow({Table::num(std::uint64_t(m.index)), m.label,
                      Table::num(std::uint64_t(m.worker)),
                      Table::num(m.events),
                      Table::num(m.wallSeconds, 2),
                      Table::num(m.eventsPerSec(), 0),
                      Table::num(m.eventsPerIo(), 2)});
    }
    double suite_rate = suite_wall_seconds > 0.0
        ? static_cast<double>(total_events) / suite_wall_seconds
        : 0.0;
    double suite_epio = total_ios > 0
        ? static_cast<double>(total_events)
            / static_cast<double>(total_ios)
        : 0.0;
    table.addRow({"total", "", "", Table::num(total_events),
                  Table::num(suite_wall_seconds, 2),
                  Table::num(suite_rate, 0),
                  Table::num(suite_epio, 2)});
    return table;
}

std::string
RunMetricsLog::toJson(double suite_wall_seconds, unsigned jobs) const
{
    auto all = snapshot();
    std::uint64_t total_events = 0;
    std::uint64_t total_ios = 0;
    for (const RunMetrics &m : all) {
        total_events += m.events;
        total_ios += m.ios;
    }
    double suite_rate = suite_wall_seconds > 0.0
        ? static_cast<double>(total_events) / suite_wall_seconds
        : 0.0;
    double suite_epio = total_ios > 0
        ? static_cast<double>(total_events)
            / static_cast<double>(total_ios)
        : 0.0;

    std::string json = "{\n";
    json += afa::sim::strfmt("  \"jobs\": %u,\n", jobs);
    json += afa::sim::strfmt("  \"runs\": %zu,\n", all.size());
    json += afa::sim::strfmt("  \"total_events\": %llu,\n",
                             (unsigned long long)total_events);
    json += afa::sim::strfmt("  \"total_ios\": %llu,\n",
                             (unsigned long long)total_ios);
    json += afa::sim::strfmt("  \"suite_wall_seconds\": %.3f,\n",
                             suite_wall_seconds);
    json += afa::sim::strfmt("  \"suite_events_per_sec\": %.0f,\n",
                             suite_rate);
    json += afa::sim::strfmt("  \"suite_events_per_io\": %.2f,\n",
                             suite_epio);
    json += "  \"per_run\": [\n";
    for (std::size_t i = 0; i < all.size(); ++i) {
        const RunMetrics &m = all[i];
        json += afa::sim::strfmt(
            "    {\"index\": %zu, \"label\": \"%s\", \"worker\": %u, "
            "\"events\": %llu, \"ios\": %llu, "
            "\"wall_seconds\": %.3f, \"events_per_sec\": %.0f, "
            "\"events_per_io\": %.2f}%s\n",
            m.index, jsonEscape(m.label).c_str(), m.worker,
            (unsigned long long)m.events, (unsigned long long)m.ios,
            m.wallSeconds, m.eventsPerSec(), m.eventsPerIo(),
            i + 1 < all.size() ? "," : "");
    }
    json += "  ]\n}\n";
    return json;
}

} // namespace afa::stats
