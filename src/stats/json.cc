#include "stats/json.hh"

#include <cstdio>

namespace afa::stats {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char ch : text) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
            break;
        }
    }
    return out;
}

} // namespace afa::stats
