#include "stats/histogram.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sim/logging.hh"

namespace afa::stats {

Histogram::Histogram(unsigned sub_bucket_bits)
    : subBits(sub_bucket_bits), numSamples(0), minValue(0), maxValue(0),
      sum(0.0), sumSquares(0.0)
{
    if (subBits < 1 || subBits > 16)
        afa::sim::fatal("Histogram: sub_bucket_bits %u out of [1,16]",
                        subBits);
    // Magnitude groups: values below 2^subBits land in group 0 with
    // exact (1-tick) resolution; each further power of two is one
    // group of 2^subBits sub-buckets. 64-bit values need at most
    // (64 - subBits) groups plus the base group.
    std::size_t groups = 64 - subBits + 1;
    buckets.assign((groups + 1) << subBits, 0);
}

std::size_t
Histogram::bucketIndex(Tick value) const
{
    const unsigned sub = subBits;
    if (value < (Tick(1) << sub))
        return static_cast<std::size_t>(value); // exact region
    // Magnitude = index of highest set bit. Values in
    // [2^mag, 2^(mag+1)) fall in group (mag - sub), offset past the
    // exact base region of 2^sub one-tick buckets.
    unsigned mag = 63 - std::countl_zero(value);
    unsigned group = mag - sub;
    // Linear sub-bucket within the group.
    Tick sub_idx = (value >> (mag - sub)) - (Tick(1) << sub);
    std::size_t idx = (static_cast<std::size_t>(group) << sub) +
        static_cast<std::size_t>(sub_idx) + (std::size_t(1) << sub);
    return std::min(idx, buckets.size() - 1);
}

Tick
Histogram::bucketLow(std::size_t index) const
{
    const unsigned sub = subBits;
    const std::size_t base = std::size_t(1) << sub;
    if (index < base)
        return static_cast<Tick>(index);
    std::size_t rel = index - base;
    unsigned group = static_cast<unsigned>(rel >> sub);
    std::size_t sub_idx = rel & (base - 1);
    unsigned mag = group + sub - 1;
    return (Tick(1) << (mag + 1)) +
        (static_cast<Tick>(sub_idx) << (mag + 1 - sub));
}

Tick
Histogram::bucketHigh(std::size_t index) const
{
    const unsigned sub = subBits;
    const std::size_t base = std::size_t(1) << sub;
    if (index < base)
        return static_cast<Tick>(index);
    std::size_t rel = index - base;
    unsigned group = static_cast<unsigned>(rel >> sub);
    unsigned mag = group + sub - 1;
    return bucketLow(index) + (Tick(1) << (mag + 1 - sub)) - 1;
}

void
Histogram::record(Tick value)
{
    record(value, 1);
}

void
Histogram::record(Tick value, std::uint64_t count)
{
    if (count == 0)
        return;
    if (numSamples == 0) {
        minValue = value;
        maxValue = value;
    } else {
        minValue = std::min(minValue, value);
        maxValue = std::max(maxValue, value);
    }
    numSamples += count;
    double v = static_cast<double>(value);
    double c = static_cast<double>(count);
    sum += v * c;
    sumSquares += v * v * c;
    buckets[bucketIndex(value)] += count;
}

double
Histogram::mean() const
{
    if (numSamples == 0)
        return 0.0;
    return sum / static_cast<double>(numSamples);
}

double
Histogram::stddev() const
{
    if (numSamples == 0)
        return 0.0;
    double n = static_cast<double>(numSamples);
    double m = sum / n;
    double var = sumSquares / n - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

Tick
Histogram::quantile(double q) const
{
    if (numSamples == 0)
        return 0;
    if (q <= 0.0)
        return minValue;
    if (q >= 1.0)
        return maxValue;
    // Rank of the target sample (1-based, ceil like HdrHistogram).
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(numSamples)));
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        std::uint64_t c = buckets[i];
        if (c == 0)
            continue;
        if (seen + c >= rank) {
            // Interpolate within the bucket by rank position.
            Tick lo = std::max(bucketLow(i), minValue);
            Tick hi = std::min(bucketHigh(i), maxValue);
            if (hi <= lo)
                return lo;
            double frac =
                static_cast<double>(rank - seen) / static_cast<double>(c);
            return lo + static_cast<Tick>(
                frac * static_cast<double>(hi - lo));
        }
        seen += c;
    }
    return maxValue;
}

std::uint64_t
Histogram::countAbove(Tick threshold) const
{
    if (numSamples == 0 || threshold >= maxValue)
        return 0;
    std::uint64_t total = 0;
    std::size_t from = bucketIndex(threshold) + 1;
    for (std::size_t i = from; i < buckets.size(); ++i)
        total += buckets[i];
    return total;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.subBits != subBits)
        afa::sim::fatal("Histogram::merge: geometry mismatch (%u vs %u)",
                        other.subBits, subBits);
    if (other.numSamples == 0)
        return;
    if (numSamples == 0) {
        minValue = other.minValue;
        maxValue = other.maxValue;
    } else {
        minValue = std::min(minValue, other.minValue);
        maxValue = std::max(maxValue, other.maxValue);
    }
    numSamples += other.numSamples;
    sum += other.sum;
    sumSquares += other.sumSquares;
    for (std::size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
}

void
Histogram::clear()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    numSamples = 0;
    minValue = 0;
    maxValue = 0;
    sum = 0.0;
    sumSquares = 0.0;
}

} // namespace afa::stats
