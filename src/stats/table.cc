#include "stats/table.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "sim/logging.hh"

namespace afa::stats {

Table::Table(std::vector<std::string> headers)
    : header(std::move(headers))
{
    if (header.empty())
        afa::sim::fatal("Table: at least one column required");
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(header.size());
    body.push_back(std::move(cells));
}

std::string
Table::num(double value, int precision)
{
    return afa::sim::strfmt("%.*f", precision, value);
}

std::string
Table::num(std::uint64_t value)
{
    return std::to_string(value);
}

bool
Table::numericLooking(const std::string &cell)
{
    if (cell.empty())
        return false;
    for (char c : cell) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != 'e' && c != 'x')
            return false;
    }
    return true;
}

std::string
Table::toString() const
{
    std::vector<std::size_t> width(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : body)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << "  ";
            const std::string &cell = row[c];
            bool right = numericLooking(cell);
            std::size_t pad = width[c] - cell.size();
            if (right)
                os << std::string(pad, ' ') << cell;
            else
                os << cell << std::string(pad, ' ');
        }
        os << "\n";
    };
    emit(header);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : body)
        emit(row);
    return os.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            const std::string &cell = row[c];
            if (cell.find_first_of(",\"\n") != std::string::npos) {
                os << '"';
                for (char ch : cell) {
                    if (ch == '"')
                        os << "\"\"";
                    else
                        os << ch;
                }
                os << '"';
            } else {
                os << cell;
            }
        }
        os << "\n";
    };
    emit(header);
    for (const auto &row : body)
        emit(row);
    return os.str();
}

void
Table::print(std::FILE *out) const
{
    std::string s = toString();
    std::fwrite(s.data(), 1, s.size(), out);
}

} // namespace afa::stats
