#include "stats/summary.hh"

#include <cmath>

#include "sim/types.hh"

namespace afa::stats {

const std::array<double, NinesLadder::kPoints> &
NinesLadder::quantiles()
{
    static const std::array<double, kPoints> q = {
        -1.0,       // average (not a quantile)
        0.99,       // 2-nines
        0.999,      // 3-nines
        0.9999,     // 4-nines
        0.99999,    // 5-nines
        0.999999,   // 6-nines
        1.0,        // 100th / max
    };
    return q;
}

const std::array<const char *, NinesLadder::kPoints> &
NinesLadder::labels()
{
    static const std::array<const char *, kPoints> l = {
        "avg", "99%", "99.9%", "99.99%", "99.999%", "99.9999%", "max",
    };
    return l;
}

const std::array<const char *, NinesLadder::kPoints> &
NinesLadder::shortLabels()
{
    static const std::array<const char *, kPoints> l = {
        "avg", "2-nines", "3-nines", "4-nines", "5-nines", "6-nines",
        "max",
    };
    return l;
}

LatencySummary
LatencySummary::fromHistogram(const std::string &device,
                              const Histogram &hist)
{
    LatencySummary s;
    s.device = device;
    s.samples = hist.count();
    s.meanUs = hist.mean() / afa::sim::kUsec;
    s.stddevUs = hist.stddev() / afa::sim::kUsec;
    s.minUs = afa::sim::toUsec(hist.min());
    s.maxUs = afa::sim::toUsec(hist.max());
    const auto &qs = NinesLadder::quantiles();
    for (std::size_t i = 0; i < NinesLadder::kPoints; ++i) {
        if (qs[i] < 0.0)
            s.ladderUs[i] = s.meanUs;
        else
            s.ladderUs[i] = afa::sim::toUsec(hist.quantile(qs[i]));
    }
    return s;
}

LadderAggregate
LadderAggregate::across(const std::vector<LatencySummary> &summaries)
{
    LadderAggregate agg;
    agg.devices = summaries.size();
    if (summaries.empty())
        return agg;
    const std::size_t n = summaries.size();
    for (std::size_t p = 0; p < NinesLadder::kPoints; ++p) {
        double sum = 0.0, sumsq = 0.0;
        double lo = summaries[0].ladderUs[p];
        double hi = lo;
        for (const auto &s : summaries) {
            double v = s.ladderUs[p];
            sum += v;
            sumsq += v * v;
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        double mean = sum / static_cast<double>(n);
        double var = sumsq / static_cast<double>(n) - mean * mean;
        agg.meanUs[p] = mean;
        agg.stddevUs[p] = var > 0.0 ? std::sqrt(var) : 0.0;
        agg.minUs[p] = lo;
        agg.maxUs[p] = hi;
    }
    return agg;
}

} // namespace afa::stats
