/**
 * @file
 * Raw per-sample latency logging for Fig. 10 (the scatter plot that
 * exposed the periodic SMART spikes), plus spike-cluster detection.
 *
 * The paper notes that enabling per-sample logging on all 64 SSDs
 * perturbed the measurement, so they logged 32; we keep the same
 * device-subset workflow in the bench.
 */

#ifndef AFA_STATS_SCATTER_LOG_HH
#define AFA_STATS_SCATTER_LOG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace afa::stats {

using afa::sim::Tick;

/** One logged latency sample. */
struct Sample
{
    std::uint64_t index;   ///< global sample sequence number
    Tick when;             ///< completion time
    Tick latency;          ///< completion latency
    std::uint32_t device;  ///< device id
};

/** A detected cluster of outlier samples (a latency spike). */
struct SpikeCluster
{
    Tick start;                ///< first outlier completion time
    Tick end;                  ///< last outlier completion time
    std::uint64_t samples;     ///< outliers in the cluster
    Tick peakLatency;          ///< worst latency in the cluster
    std::uint64_t firstIndex;  ///< sample index of first outlier
};

/**
 * Bounded log of raw samples with simple spike analysis.
 */
class ScatterLog
{
  public:
    explicit ScatterLog(std::size_t capacity = 8u << 20)
        : maxSamples(capacity), nextIndex(0), numDropped(0)
    {
    }

    /** Record one completion. */
    void record(Tick when, Tick latency, std::uint32_t device);

    /** All retained samples in completion order. */
    const std::vector<Sample> &samples() const { return buf; }

    /** Samples whose latency exceeds @p threshold. */
    std::vector<Sample> outliers(Tick threshold) const;

    /**
     * Group outliers into clusters: consecutive outliers closer than
     * @p gap in completion time belong to the same cluster.
     */
    std::vector<SpikeCluster> clusters(Tick threshold, Tick gap) const;

    /**
     * Median interval between cluster starts; 0 with < 2 clusters.
     * Used to verify the periodicity of SMART activity.
     */
    Tick clusterPeriod(Tick threshold, Tick gap) const;

    /** Render "index latency_us device" lines (the scatter series). */
    std::string toText(std::size_t stride = 1) const;

    std::uint64_t dropped() const { return numDropped; }
    std::size_t size() const { return buf.size(); }
    void clear();

  private:
    std::vector<Sample> buf;
    std::size_t maxSamples;
    std::uint64_t nextIndex;
    std::uint64_t numDropped;
};

} // namespace afa::stats

#endif // AFA_STATS_SCATTER_LOG_HH
