/**
 * @file
 * Shared JSON string escaping for every emitter that interpolates
 * labels (run-metrics JSON, the metrics registry, the Perfetto trace
 * exporter). One helper so no emitter ships raw quotes, backslashes
 * or control characters into an artifact a parser chokes on.
 */

#ifndef AFA_STATS_JSON_HH
#define AFA_STATS_JSON_HH

#include <string>
#include <string_view>

namespace afa::stats {

/**
 * Escape @p text for inclusion inside a JSON string literal (the
 * surrounding quotes are the caller's): ", \ and control characters
 * become their \-escapes (\uXXXX for the control characters without a
 * short form).
 */
std::string jsonEscape(std::string_view text);

} // namespace afa::stats

#endif // AFA_STATS_JSON_HH
