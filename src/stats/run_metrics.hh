/**
 * @file
 * Per-run execution metrics for the parallel experiment engine.
 *
 * Each experiment run reports how many simulated events it executed
 * and how long it took on the wall clock; the collector aggregates
 * them into the progress summary the figure benches print and the
 * JSON blob the BENCH_*.json artifacts record. The collector is
 * thread-safe: worker threads append concurrently.
 */

#ifndef AFA_STATS_RUN_METRICS_HH
#define AFA_STATS_RUN_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/sync.hh"
#include "core/thread_annotations.hh"
#include "stats/table.hh"

namespace afa::stats {

/** Execution metrics of one experiment run. */
struct RunMetrics
{
    std::size_t index = 0;     ///< position in the run plan
    std::string label;         ///< human-readable run label
    std::uint64_t events = 0;  ///< simulated events executed
    std::uint64_t ios = 0;     ///< IOs the run completed
    double wallSeconds = 0.0;  ///< host wall time of the run
    unsigned worker = 0;       ///< worker thread that executed it

    /** Simulated events per wall-clock second (0 when instant). */
    double eventsPerSec() const;

    /**
     * Model events executed per completed IO (0 when the run did no
     * IO). The event-economy figure of merit: fast paths shrink it,
     * model changes that add per-IO events show up here first.
     */
    double eventsPerIo() const;
};

/**
 * Thread-safe collector of RunMetrics plus suite-level counters.
 */
class RunMetricsLog
{
  public:
    /** Drop all recorded runs and counters. */
    void reset();

    /** Record one finished run. */
    void record(RunMetrics metrics);

    /** Note that a run started (for progress accounting). */
    void noteStarted();

    /** Runs started so far. */
    std::size_t started() const;

    /** Runs finished so far. */
    std::size_t finished() const;

    /** Snapshot of the recorded metrics, ordered by run index. */
    std::vector<RunMetrics> snapshot() const;

    /** Sum of simulated events across recorded runs. */
    std::uint64_t totalEvents() const;

    /** Sum of per-run wall seconds (CPU-time-like, not elapsed). */
    double totalWallSeconds() const;

    /**
     * Per-run metrics table: index, label, worker, events, wall
     * seconds and events/sec, followed by a totals row.
     */
    Table table(double suite_wall_seconds) const;

    /**
     * JSON object with the suite counters and a per-run array,
     * suitable for embedding into BENCH_*.json artifacts.
     */
    std::string toJson(double suite_wall_seconds,
                       unsigned jobs) const;

  private:
    mutable afa::sync::Mutex mutex;
    std::vector<RunMetrics> runs AFA_GUARDED_BY(mutex);
    std::size_t numStarted AFA_GUARDED_BY(mutex) = 0;
};

} // namespace afa::stats

#endif // AFA_STATS_RUN_METRICS_HH
