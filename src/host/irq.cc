#include "host/irq.hh"

#include <algorithm>

#include "obs/span_log.hh"
#include "sim/logging.hh"

namespace afa::host {

IrqSubsystem::IrqSubsystem(afa::sim::Simulator &simulator,
                           std::string irq_name, Scheduler &scheduler,
                           unsigned devices,
                           afa::sim::Tracer *trace_sink)
    : SimObject(simulator, std::move(irq_name)), sched(scheduler),
      numDevices(devices),
      numQueues(scheduler.topology().logicalCpus()),
      tracer(trace_sink), balancerStopped(false)
{
    if (devices == 0)
        afa::sim::fatal("%s: need at least one device", name().c_str());
    std::size_t n =
        static_cast<std::size_t>(numDevices) * numQueues;
    affinity.resize(n);
    counts.assign(n, 0);
    countsAtLastScan.assign(n, 0);
    pinned.assign(n, false);
    // Driver-default spread: queue q's vector targets CPU q.
    for (unsigned d = 0; d < numDevices; ++d)
        for (unsigned q = 0; q < numQueues; ++q)
            affinity[index(d, q)] = q;
}

std::size_t
IrqSubsystem::index(unsigned device, unsigned queue) const
{
    if (device >= numDevices || queue >= numQueues)
        afa::sim::panic("%s: bad vector (%u, %u)", name().c_str(),
                        device, queue);
    return static_cast<std::size_t>(device) * numQueues + queue;
}

unsigned
IrqSubsystem::effectiveCpu(unsigned device, unsigned queue) const
{
    return affinity[index(device, queue)];
}

std::uint64_t
IrqSubsystem::vectorCount(unsigned device, unsigned queue) const
{
    return counts[index(device, queue)];
}

void
IrqSubsystem::setAffinity(unsigned device, unsigned queue, unsigned cpu)
{
    if (cpu >= numQueues)
        afa::sim::fatal("%s: affinity cpu %u out of range",
                        name().c_str(), cpu);
    std::size_t i = index(device, queue);
    affinity[i] = cpu;
    pinned[i] = true;
}

void
IrqSubsystem::pinAllToQueueCpus()
{
    for (unsigned d = 0; d < numDevices; ++d)
        for (unsigned q = 0; q < numQueues; ++q) {
            std::size_t i = index(d, q);
            affinity[i] = q;
            pinned[i] = true;
        }
    balancerStopped = true;
}

void
IrqSubsystem::start()
{
    const auto &cfg = sched.config().irq;
    if (!cfg.irqBalanceEnabled || balancerStopped)
        return;
    // irqbalance has been running since boot: do an initial placement
    // pass promptly, then rescan periodically.
    after(afa::sim::msec(100), [this] { balancerScan(); });
}

void
IrqSubsystem::balancerScan()
{
    const auto &cfg = sched.config().irq;
    if (balancerStopped || !cfg.irqBalanceEnabled)
        return;
    ++irqStats.rebalances;
    const CpuTopology &topo = sched.topology();
    // irqbalance keeps a vector inside the NUMA node of its device;
    // the AFA hangs off the uplink socket. It spreads *busy* vectors
    // evenly over that socket's CPUs -- with no idea which CPU the
    // submitting task runs on.
    auto node_cpus = topo.cpusOnSocket(topo.uplinkSocket());
    std::size_t next = 0;
    // Deterministic shuffle of the starting offset per scan.
    next = static_cast<std::size_t>(
        rng().uniformInt(0, node_cpus.size() - 1));
    for (unsigned d = 0; d < numDevices; ++d) {
        for (unsigned q = 0; q < numQueues; ++q) {
            std::size_t i = index(d, q);
            if (pinned[i])
                continue;
            bool busy = counts[i] > countsAtLastScan[i];
            countsAtLastScan[i] = counts[i];
            if (!busy)
                continue;
            unsigned target = node_cpus[next % node_cpus.size()];
            ++next;
            if (affinity[i] != target) {
                affinity[i] = target;
                ++irqStats.vectorMoves;
                if (tracer && tracer->enabled("irq.balance"))
                    tracer->record(
                        now(), "irq.balance",
                        afa::sim::strfmt("irq(%u,%u) -> cpu%u", d, q,
                                         target));
            }
        }
    }
    after(cfg.irqBalanceInterval, [this] { balancerScan(); });
}

void
IrqSubsystem::raise(unsigned device, unsigned queue, HandlerFn handler,
                    std::uint64_t io)
{
    std::size_t i = index(device, queue);
    ++counts[i];
    ++irqStats.delivered;
    unsigned cpu = affinity[i];
    const auto &cfg = sched.config().irq;
    const CpuTopology &topo = sched.topology();

    Tick cost = cfg.hardirqCost + cfg.softirqCost;
    if (cpu != queue)
        ++irqStats.remoteDeliveries;
    // Interrupt arriving on the wrong socket pays the QPI crossing.
    if (topo.socketOf(cpu) != topo.uplinkSocket()) {
        cost += cfg.crossSocketPenalty;
        ++irqStats.crossSocket;
    }

    if (spanLog && spanLog->wants(afa::obs::Category::Irq)) {
        // Span covers raise -> handler execution: c-state exit plus
        // the hardirq/softirq work, on the handler CPU's track. The
        // Remote flag marks the paper's misplacement (handler CPU is
        // not the submission queue's CPU).
        std::uint8_t flags =
            cpu != queue ? afa::obs::kSpanFlagRemote : std::uint8_t(0);
        sched.interrupt(
            cpu, cost,
            [this, handler = std::move(handler), cpu, io, flags,
             raised = now(), device] {
                spanLog->record(afa::obs::Stage::IrqDeliver, io,
                                raised, now(), afa::obs::cpuTrack(cpu),
                                flags, device);
                handler(cpu);
            });
        return;
    }

    sched.interrupt(cpu, cost, [handler = std::move(handler), cpu] {
        handler(cpu);
    });
}

} // namespace afa::host
