/**
 * @file
 * CPU topology of the host: sockets x physical cores x hyper-threads,
 * with the paper's logical numbering (dual Xeon E5-2690 v2: logical
 * CPUs 0-19 are the 20 physical cores -- 0-9 on socket 0, 10-19 on
 * socket 1 -- and 20-39 are their hyper-thread siblings).
 */

#ifndef AFA_HOST_CPU_TOPOLOGY_HH
#define AFA_HOST_CPU_TOPOLOGY_HH

#include <string>
#include <vector>

namespace afa::host {

/** Shape of the host CPU complex. */
struct CpuTopologyParams
{
    unsigned sockets = 2;
    unsigned coresPerSocket = 10;
    unsigned threadsPerCore = 2;

    /** Socket the AFA's PCIe uplink attaches to (the paper's CPU2). */
    unsigned uplinkSocket = 1;
};

/**
 * Resolves logical CPU ids to sockets / physical cores / siblings.
 */
class CpuTopology
{
  public:
    explicit CpuTopology(const CpuTopologyParams &params = {});

    /** Number of logical CPUs. */
    unsigned logicalCpus() const { return numLogical; }

    /** Number of physical cores. */
    unsigned physicalCores() const { return numPhysical; }

    /** Socket of a logical CPU. */
    unsigned socketOf(unsigned cpu) const;

    /** Physical core (0..physicalCores-1) of a logical CPU. */
    unsigned physicalCoreOf(unsigned cpu) const;

    /** Hyper-thread index (0 or 1) of a logical CPU. */
    unsigned threadOf(unsigned cpu) const;

    /** The logical CPUs sharing a physical core with @p cpu
     *  (excluding @p cpu itself). */
    std::vector<unsigned> siblingsOf(unsigned cpu) const;

    /** Logical CPU id for (physical core, thread). */
    unsigned logicalCpu(unsigned physical_core, unsigned thread) const;

    /** All logical CPUs on a socket. */
    std::vector<unsigned> cpusOnSocket(unsigned socket) const;

    /** Socket the AFA uplink attaches to. */
    unsigned uplinkSocket() const { return params.uplinkSocket; }

    /** True when two logical CPUs share a socket. */
    bool sameSocket(unsigned a, unsigned b) const
    {
        return socketOf(a) == socketOf(b);
    }

    /** Human-readable description ("2 x 10c/20t"). */
    std::string describe() const;

    const CpuTopologyParams &parameters() const { return params; }

  private:
    CpuTopologyParams params;
    unsigned numPhysical;
    unsigned numLogical;

    void checkCpu(unsigned cpu) const;
};

} // namespace afa::host

#endif // AFA_HOST_CPU_TOPOLOGY_HH
