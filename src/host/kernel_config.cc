#include "host/kernel_config.hh"

#include <sstream>

#include "sim/logging.hh"

namespace afa::host {

CpuSet
parseCpuList(const std::string &list)
{
    CpuSet out;
    std::stringstream ss(list);
    std::string part;
    while (std::getline(ss, part, ',')) {
        if (part.empty())
            continue;
        auto dash = part.find('-');
        try {
            if (dash == std::string::npos) {
                out.insert(static_cast<unsigned>(std::stoul(part)));
            } else {
                unsigned lo = static_cast<unsigned>(
                    std::stoul(part.substr(0, dash)));
                unsigned hi = static_cast<unsigned>(
                    std::stoul(part.substr(dash + 1)));
                if (hi < lo)
                    afa::sim::fatal("bad cpu range '%s'", part.c_str());
                for (unsigned c = lo; c <= hi; ++c)
                    out.insert(c);
            }
        } catch (const std::invalid_argument &) {
            afa::sim::fatal("bad cpu list entry '%s'", part.c_str());
        } catch (const std::out_of_range &) {
            afa::sim::fatal("cpu list entry out of range '%s'",
                            part.c_str());
        }
    }
    return out;
}

std::string
formatCpuList(const CpuSet &cpus)
{
    std::ostringstream os;
    auto it = cpus.begin();
    bool first = true;
    while (it != cpus.end()) {
        unsigned lo = *it;
        unsigned hi = lo;
        auto next = std::next(it);
        while (next != cpus.end() && *next == hi + 1) {
            hi = *next;
            ++next;
        }
        if (!first)
            os << ",";
        first = false;
        if (lo == hi)
            os << lo;
        else
            os << lo << "-" << hi;
        it = next;
    }
    return os.str();
}

std::string
KernelConfig::bootCommandLine() const
{
    std::ostringstream os;
    bool first = true;
    auto emit = [&](const std::string &opt) {
        if (!first)
            os << " ";
        first = false;
        os << opt;
    };
    if (!isolcpus.empty())
        emit("isolcpus=" + formatCpuList(isolcpus));
    if (!nohzFull.empty())
        emit("nohz_full=" + formatCpuList(nohzFull));
    if (!rcuNocbs.empty())
        emit("rcu_nocbs=" + formatCpuList(rcuNocbs));
    if (cstate.maxCstate != 6)
        emit(afa::sim::strfmt("processor.max_cstate=%u",
                              cstate.maxCstate));
    if (cstate.idlePoll)
        emit("idle=poll");
    return os.str();
}

KernelConfig
KernelConfig::fromBootCommandLine(const std::string &cmdline)
{
    KernelConfig cfg;
    std::stringstream ss(cmdline);
    std::string token;
    while (ss >> token) {
        auto eq = token.find('=');
        std::string key =
            eq == std::string::npos ? token : token.substr(0, eq);
        std::string value =
            eq == std::string::npos ? "" : token.substr(eq + 1);
        if (key == "isolcpus") {
            cfg.isolcpus = parseCpuList(value);
        } else if (key == "nohz_full") {
            cfg.nohzFull = parseCpuList(value);
        } else if (key == "rcu_nocbs") {
            cfg.rcuNocbs = parseCpuList(value);
        } else if (key == "processor.max_cstate") {
            cfg.cstate.maxCstate =
                static_cast<unsigned>(std::stoul(value));
        } else if (key == "idle") {
            cfg.cstate.idlePoll = (value == "poll");
        } else {
            afa::sim::warn("ignoring unknown boot option '%s'",
                           token.c_str());
        }
    }
    return cfg;
}

} // namespace afa::host
