/**
 * @file
 * MSI-X vector routing and the irqbalance daemon model.
 *
 * Each (device, queue) pair has an interrupt vector; the NVMe driver
 * creates one queue per logical CPU per device, so a 64-SSD, 40-CPU
 * host has 2,560 vectors (the paper's irq(n,c) handlers). A vector's
 * *affinity* decides which CPU its hardirq runs on. The driver's
 * initial spread maps queue q to CPU q; the irqbalance daemon then
 * periodically reassigns busy vectors across the device's NUMA node
 * without regard for the submitting CPU -- which is exactly the
 * misplacement the paper traced with LTTng (irq(0,4) running on
 * cpu30). Section IV-D's fix pins every vector back to its queue's
 * CPU and stops the daemon.
 */

#ifndef AFA_HOST_IRQ_HH
#define AFA_HOST_IRQ_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "host/cpu_topology.hh"
#include "host/kernel_config.hh"
#include "host/scheduler.hh"
#include "sim/sim_object.hh"

namespace afa::host {

/** Statistics of the IRQ subsystem. */
struct IrqStats
{
    std::uint64_t delivered = 0;
    std::uint64_t remoteDeliveries = 0; ///< handler CPU != queue CPU
    std::uint64_t crossSocket = 0;
    std::uint64_t rebalances = 0;       ///< balancer passes
    std::uint64_t vectorMoves = 0;      ///< affinity changes applied
};

/**
 * The interrupt subsystem: vectors, affinity, delivery, and the
 * irqbalance daemon.
 */
class IrqSubsystem : public afa::sim::SimObject
{
  public:
    /** Runs in irq context once the hardirq+softirq work retired. */
    using HandlerFn = std::function<void(unsigned handler_cpu)>;

    IrqSubsystem(afa::sim::Simulator &simulator, std::string irq_name,
                 Scheduler &scheduler, unsigned devices,
                 afa::sim::Tracer *tracer = nullptr);

    /**
     * Raise the vector of (device, queue): the hardirq executes on the
     * vector's affinity CPU (paying c-state exit, stealing CPU time),
     * then the softirq completion work, then @p handler. @p io tags
     * the delivery span (0 = untagged).
     */
    void raise(unsigned device, unsigned queue, HandlerFn handler,
               std::uint64_t io = 0);

    /** Attach (or detach, with nullptr) the obs span log. */
    void setSpanLog(afa::obs::SpanLog *log) { spanLog = log; }

    /** Current affinity CPU of a vector. */
    unsigned effectiveCpu(unsigned device, unsigned queue) const;

    /** Manually pin one vector (procfs smp_affinity / tuna). */
    void setAffinity(unsigned device, unsigned queue, unsigned cpu);

    /**
     * The paper's Section IV-D tuning: pin every vector of every
     * device to its queue's CPU and disable the balancer.
     */
    void pinAllToQueueCpus();

    /** Begin the irqbalance daemon (if enabled in the config). */
    void start();

    /** Total vectors (devices x queues). */
    std::size_t vectors() const { return affinity.size(); }

    /** Interrupt counts per vector since boot. */
    std::uint64_t vectorCount(unsigned device, unsigned queue) const;

    const IrqStats &stats() const { return irqStats; }

  private:
    Scheduler &sched;
    unsigned numDevices;
    unsigned numQueues; ///< per device == logical CPUs
    afa::sim::Tracer *tracer;
    afa::obs::SpanLog *spanLog = nullptr;

    /// affinity[device * numQueues + queue] = handler CPU
    std::vector<unsigned> affinity;
    std::vector<std::uint64_t> counts;
    std::vector<std::uint64_t> countsAtLastScan;
    std::vector<bool> pinned;
    bool balancerStopped;

    IrqStats irqStats;

    std::size_t index(unsigned device, unsigned queue) const;
    void balancerScan();
};

} // namespace afa::host

#endif // AFA_HOST_IRQ_HH
