/**
 * @file
 * The host kernel's tunable behaviour: boot command-line options
 * (isolcpus / nohz_full / rcu_nocbs / processor.max_cstate / idle),
 * scheduler knobs, and the IRQ balancing policy. This is the object
 * the paper's four configurations (default, chrt, isolcpus, irq)
 * manipulate.
 */

#ifndef AFA_HOST_KERNEL_CONFIG_HH
#define AFA_HOST_KERNEL_CONFIG_HH

#include <cstdint>
#include <set>
#include <string>

#include "sim/types.hh"

namespace afa::host {

using afa::sim::Tick;

/** A set of logical CPU ids (boot-option list like "4-19,24-39"). */
using CpuSet = std::set<unsigned>;

/** Parse a kernel cpu-list string ("4-19,24-39") into a CpuSet. */
CpuSet parseCpuList(const std::string &list);

/** Render a CpuSet as a kernel cpu-list string. */
std::string formatCpuList(const CpuSet &cpus);

/**
 * CFS scheduler tunables. Base values are the Linux 4.7 defaults
 * scaled by the kernel's own CPU factor (1 + ilog2(min(ncpus, 8)) =
 * 4 is capped in reality around x2-4 on large hosts; we use x2,
 * which lands the default config's worst case at the paper's ~5 ms).
 */
struct SchedParams
{
    /** sysctl_sched_wakeup_granularity: a woken task preempts only
     *  when the running task's vruntime leads by more than this. */
    Tick wakeupGranularity = afa::sim::msec(2);

    /** sysctl_sched_min_granularity: minimum slice per task. */
    Tick minGranularity = afa::sim::usec(1500);

    /** sysctl_sched_latency: the scheduling period. */
    Tick schedLatency = afa::sim::msec(12);

    /** Sleeper credit on wakeup placement (sched_latency / 2). */
    Tick sleeperCredit = afa::sim::msec(6);

    /** Periodic (rebalance) load-balancing interval. */
    Tick balanceInterval = afa::sim::msec(64);

    /** Direct cost of a context switch. */
    Tick contextSwitchCost = afa::sim::nsec(1200);

    /** Indirect (cache/TLB pollution) cost after switching to a task
     *  whose working set was evicted by another task. */
    Tick cachePollutionCost = afa::sim::usec(2);

    /** Timer tick period on housekeeping CPUs (CONFIG_HZ=1000). */
    Tick tickPeriod = afa::sim::msec(1);

    /** Timer tick period on nohz_full CPUs (the "1 Hz" residual). */
    Tick nohzTickPeriod = afa::sim::sec(1);

    /** CPU time consumed by one timer tick. */
    Tick tickCost = afa::sim::usec(2);

    /** CPU time of an RCU-callback softirq burst. */
    Tick rcuCallbackCost = afa::sim::usec(15);

    /** Mean interval between RCU softirq bursts per CPU. */
    Tick rcuCallbackInterval = afa::sim::msec(20);

    /** Wall-time slowdown while the hyper-thread sibling is busy. */
    double htSlowdown = 1.3;
};

/** IRQ routing policy. */
struct IrqParams
{
    /** The irqbalance daemon (reassigns vectors periodically). */
    bool irqBalanceEnabled = true;

    /** irqbalance scan interval (the daemon's 10 s default). */
    Tick irqBalanceInterval = afa::sim::sec(10);

    /** Hardirq handler CPU cost (NVMe completion path). */
    Tick hardirqCost = afa::sim::nsec(1500);

    /** Post-hardirq completion work (blk-mq softirq). */
    Tick softirqCost = afa::sim::nsec(800);

    /** IPI flight + handling when waking a task on another CPU. */
    Tick ipiCost = afa::sim::nsec(1200);

    /** Extra cost when the IRQ lands on the remote NUMA socket. */
    Tick crossSocketPenalty = afa::sim::nsec(500);
};

/** C-state behaviour (processor.max_cstate / idle=poll). */
struct CstateParams
{
    /** Deepest C-state the menu governor may pick (1 or 6 here). */
    unsigned maxCstate = 6;

    /** idle=poll: never enter a C-state at all. */
    bool idlePoll = false;

    /** C1 exit latency. */
    Tick c1ExitLatency = afa::sim::nsec(2000);

    /** C6 exit latency (Ivy Bridge-EP class). */
    Tick c6ExitLatency = afa::sim::usec(40);

    /** Idle residency the governor demands before picking C6. */
    Tick c6Threshold = afa::sim::usec(400);
};

/** The complete kernel configuration. */
struct KernelConfig
{
    SchedParams sched;
    IrqParams irq;
    CstateParams cstate;

    /** isolcpus= : CPUs removed from general scheduling/balancing. */
    CpuSet isolcpus;

    /** nohz_full= : CPUs ticking at 1 Hz when single-task. */
    CpuSet nohzFull;

    /** rcu_nocbs= : CPUs whose RCU callbacks are offloaded. */
    CpuSet rcuNocbs;

    /**
     * Render the boot command line these settings correspond to,
     * in the paper's Section IV-C format.
     */
    std::string bootCommandLine() const;

    /** Apply a boot command line (the reverse of the above). */
    static KernelConfig fromBootCommandLine(const std::string &cmdline);
};

} // namespace afa::host

#endif // AFA_HOST_KERNEL_CONFIG_HH
