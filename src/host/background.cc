#include "host/background.hh"

#include "sim/logging.hh"

namespace afa::host {

BackgroundParams
BackgroundParams::centos7Defaults()
{
    BackgroundParams p;
    // llvmpipe: GNOME's software GL rasteriser -- multi-threaded,
    // CPU-hungry, bursty at frame cadence.
    p.classes.push_back(BackgroundClassParams{
        "llvmpipe", 4, 0, afa::sim::msec(12), afa::sim::msec(26),
        kAllCpus});
    // lttng-consumerd: the paper's own tracer flushing ring buffers.
    p.classes.push_back(BackgroundClassParams{
        "lttng-consumerd", 2, 0, afa::sim::msec(3), afa::sim::msec(40),
        kAllCpus});
    // sshd and friends: rare, short.
    p.classes.push_back(BackgroundClassParams{
        "sshd", 2, 0, afa::sim::usec(400), afa::sim::msec(120),
        kAllCpus});
    // kworkers: frequent small kernel work items.
    p.classes.push_back(BackgroundClassParams{
        "kworker", 4, 0, afa::sim::usec(150), afa::sim::msec(15),
        kAllCpus});
    return p;
}

BackgroundParams
BackgroundParams::none()
{
    return BackgroundParams{};
}

BackgroundLoad::BackgroundLoad(afa::sim::Simulator &simulator,
                               std::string bg_name, Scheduler &scheduler,
                               const BackgroundParams &params)
    : SimObject(simulator, std::move(bg_name)), sched(scheduler),
      bgParams(params), numBursts(0), started(false)
{
    for (const auto &cls : bgParams.classes) {
        for (unsigned i = 0; i < cls.count; ++i) {
            TaskParams tp;
            tp.name = afa::sim::strfmt("%s/%u", cls.name.c_str(), i);
            tp.klass = SchedClass::Fair;
            tp.nice = cls.nice;
            tp.affinity = cls.affinity;
            ids.push_back(sched.createTask(tp));
            classOf.push_back(&cls);
        }
    }
}

void
BackgroundLoad::start()
{
    if (started)
        return;
    started = true;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        // Desynchronised starts.
        Tick phase = static_cast<Tick>(rng().uniform(
            0.0, static_cast<double>(classOf[i]->sleepMean) + 1.0));
        after(phase, [this, i] { loop(i); });
    }
}

void
BackgroundLoad::loop(std::size_t which)
{
    const BackgroundClassParams &cls = *classOf[which];
    auto burst = static_cast<Tick>(
        rng().exponential(static_cast<double>(cls.burstMean)));
    burst = std::max<Tick>(burst, afa::sim::usec(10));
    sched.runFor(ids[which], burst, [this, which] {
        ++numBursts;
        const BackgroundClassParams &c = *classOf[which];
        auto sleep = static_cast<Tick>(
            rng().exponential(static_cast<double>(c.sleepMean)));
        sleep = std::max<Tick>(sleep, afa::sim::usec(50));
        after(sleep, [this, which] { loop(which); });
    });
}

} // namespace afa::host
