#include "host/cpu_topology.hh"

#include "sim/logging.hh"

namespace afa::host {

CpuTopology::CpuTopology(const CpuTopologyParams &topo_params)
    : params(topo_params)
{
    if (params.sockets == 0 || params.coresPerSocket == 0 ||
        params.threadsPerCore == 0)
        afa::sim::fatal("CPU topology: all dimensions must be >= 1");
    if (params.uplinkSocket >= params.sockets)
        afa::sim::fatal("CPU topology: uplink socket %u out of range",
                        params.uplinkSocket);
    numPhysical = params.sockets * params.coresPerSocket;
    numLogical = numPhysical * params.threadsPerCore;
}

void
CpuTopology::checkCpu(unsigned cpu) const
{
    if (cpu >= numLogical)
        afa::sim::panic("logical cpu %u out of range (%u)", cpu,
                        numLogical);
}

unsigned
CpuTopology::physicalCoreOf(unsigned cpu) const
{
    checkCpu(cpu);
    // Linux-style numbering: thread t of physical core p is logical
    // cpu (t * physicalCores + p).
    return cpu % numPhysical;
}

unsigned
CpuTopology::threadOf(unsigned cpu) const
{
    checkCpu(cpu);
    return cpu / numPhysical;
}

unsigned
CpuTopology::socketOf(unsigned cpu) const
{
    return physicalCoreOf(cpu) / params.coresPerSocket;
}

std::vector<unsigned>
CpuTopology::siblingsOf(unsigned cpu) const
{
    checkCpu(cpu);
    std::vector<unsigned> out;
    unsigned phys = physicalCoreOf(cpu);
    for (unsigned t = 0; t < params.threadsPerCore; ++t) {
        unsigned sib = logicalCpu(phys, t);
        if (sib != cpu)
            out.push_back(sib);
    }
    return out;
}

unsigned
CpuTopology::logicalCpu(unsigned physical_core, unsigned thread) const
{
    if (physical_core >= numPhysical || thread >= params.threadsPerCore)
        afa::sim::panic("bad (core %u, thread %u)", physical_core,
                        thread);
    return thread * numPhysical + physical_core;
}

std::vector<unsigned>
CpuTopology::cpusOnSocket(unsigned socket) const
{
    if (socket >= params.sockets)
        afa::sim::panic("socket %u out of range", socket);
    std::vector<unsigned> out;
    for (unsigned cpu = 0; cpu < numLogical; ++cpu)
        if (socketOf(cpu) == socket)
            out.push_back(cpu);
    return out;
}

std::string
CpuTopology::describe() const
{
    return afa::sim::strfmt("%u x %uc/%ut", params.sockets,
                            params.coresPerSocket,
                            params.coresPerSocket *
                                params.threadsPerCore);
}

} // namespace afa::host
