/**
 * @file
 * The background-process zoo the paper found interfering with FIO:
 * llvmpipe (GNOME's software rasteriser), lttng-consumerd (their own
 * tracing), SSH daemons, and generic kernel worker threads. Each is a
 * CPU-burst/sleep loop scheduled through the fair class, so the
 * interference emerges from scheduling, not from scripted delays.
 */

#ifndef AFA_HOST_BACKGROUND_HH
#define AFA_HOST_BACKGROUND_HH

#include <string>
#include <vector>

#include "host/scheduler.hh"
#include "sim/sim_object.hh"

namespace afa::host {

/** One class of background processes. */
struct BackgroundClassParams
{
    std::string name;
    unsigned count = 1;
    int nice = 0;
    /** Mean CPU burst length (exponential). */
    Tick burstMean = afa::sim::msec(2);
    /** Mean sleep between bursts (exponential). */
    Tick sleepMean = afa::sim::msec(10);
    CpuMask affinity = kAllCpus;
};

/** The mix of host daemons and kernel threads. */
struct BackgroundParams
{
    std::vector<BackgroundClassParams> classes;

    /** The CentOS 7 + GNOME + LTTng mix from the paper's Section
     *  IV-B, scaled to a dual-socket storage host. */
    static BackgroundParams centos7Defaults();

    /** No background load at all (for calibration runs). */
    static BackgroundParams none();
};

/** Spawns and drives the background tasks. */
class BackgroundLoad : public afa::sim::SimObject
{
  public:
    BackgroundLoad(afa::sim::Simulator &simulator, std::string bg_name,
                   Scheduler &scheduler,
                   const BackgroundParams &params);

    /** Begin all burst/sleep loops. */
    void start();

    /** Task ids of every background task (for tests). */
    const std::vector<TaskId> &taskIds() const { return ids; }

    /** Total bursts executed so far. */
    std::uint64_t bursts() const { return numBursts; }

  private:
    Scheduler &sched;
    BackgroundParams bgParams;
    std::vector<TaskId> ids;
    std::vector<const BackgroundClassParams *> classOf;
    std::uint64_t numBursts;
    bool started;

    void loop(std::size_t which);
};

} // namespace afa::host

#endif // AFA_HOST_BACKGROUND_HH
