#include "host/scheduler.hh"

#include <algorithm>
#include <cmath>

#include "obs/span_log.hh"
#include "sim/logging.hh"

namespace afa::host {

using afa::sim::EventFn;

CpuMask
maskFromSet(const CpuSet &cpus)
{
    CpuMask mask = 0;
    for (unsigned c : cpus) {
        if (c >= 64)
            afa::sim::fatal("cpu %u beyond the 64-cpu mask limit", c);
        mask |= CpuMask(1) << c;
    }
    return mask;
}

namespace {

bool
inMask(CpuMask mask, unsigned cpu)
{
    return cpu < 64 && (mask & (CpuMask(1) << cpu));
}

double
weightForNice(int nice)
{
    // The kernel's prio_to_weight table is 1024 * 1.25^(-nice).
    return 1024.0 * std::pow(1.25, -nice);
}

} // namespace

Scheduler::Scheduler(afa::sim::Simulator &simulator,
                     std::string sched_name, const CpuTopology &topology,
                     const KernelConfig &config,
                     afa::sim::Tracer *trace_sink)
    : SimObject(simulator, std::move(sched_name)), topo(topology),
      kcfg(config), tracer(trace_sink), started(false)
{
    if (topo.logicalCpus() > 64)
        afa::sim::fatal("%s: at most 64 logical CPUs supported (%u)",
                        name().c_str(), topo.logicalCpus());
    cpus.resize(topo.logicalCpus());
}

void
Scheduler::trace(const char *category, std::string message)
{
    if (tracer)
        tracer->record(now(), category, message);
}

bool
Scheduler::tracing(const char *category) const
{
    return tracer && tracer->enabled(category);
}

void
Scheduler::checkTaskId(TaskId id) const
{
    if (id >= tasks.size())
        afa::sim::panic("%s: bad task id %u", name().c_str(), id);
}

Scheduler::Task &
Scheduler::task(TaskId id)
{
    checkTaskId(id);
    return tasks[id];
}

const Scheduler::Task &
Scheduler::task(TaskId id) const
{
    checkTaskId(id);
    return tasks[id];
}

TaskId
Scheduler::createTask(const TaskParams &params)
{
    if (params.affinity == 0)
        afa::sim::fatal("%s: task '%s' has an empty affinity mask",
                        name().c_str(), params.name.c_str());
    if (params.klass == SchedClass::RealTime &&
        (params.rtPriority < 1 || params.rtPriority > 99))
        afa::sim::fatal("%s: rt priority %d out of [1,99]",
                        name().c_str(), params.rtPriority);
    Task t;
    t.params = params;
    t.weight = weightForNice(params.nice);
    tasks.push_back(std::move(t));
    return static_cast<TaskId>(tasks.size() - 1);
}

void
Scheduler::setRealTime(TaskId id, int rt_priority)
{
    if (rt_priority < 1 || rt_priority > 99)
        afa::sim::fatal("%s: rt priority %d out of [1,99]",
                        name().c_str(), rt_priority);
    Task &t = task(id);
    if (t.state != TaskState::Blocked)
        afa::sim::fatal("%s: chrt on non-blocked task '%s' unsupported",
                        name().c_str(), t.params.name.c_str());
    t.params.klass = SchedClass::RealTime;
    t.params.rtPriority = rt_priority;
}

void
Scheduler::setFair(TaskId id, int nice)
{
    Task &t = task(id);
    if (t.state != TaskState::Blocked)
        afa::sim::fatal("%s: renice on non-blocked task unsupported",
                        name().c_str());
    t.params.klass = SchedClass::Fair;
    t.params.nice = nice;
    t.weight = weightForNice(nice);
}

void
Scheduler::setAffinity(TaskId id, CpuMask mask)
{
    if (mask == 0)
        afa::sim::fatal("%s: empty affinity mask", name().c_str());
    Task &t = task(id);
    if (t.state != TaskState::Blocked)
        afa::sim::fatal(
            "%s: changing affinity of non-blocked task unsupported",
            name().c_str());
    t.params.affinity = mask;
}

TaskState
Scheduler::taskState(TaskId id) const
{
    return task(id).state;
}

unsigned
Scheduler::taskCpu(TaskId id) const
{
    return task(id).cpu;
}

const TaskStats &
Scheduler::taskStats(TaskId id) const
{
    return task(id).stats;
}

const CpuStats &
Scheduler::cpuStats(unsigned cpu) const
{
    return cpus.at(cpu).stats;
}

bool
Scheduler::cpuIdle(unsigned cpu) const
{
    const Cpu &c = cpus.at(cpu);
    return c.current == kNoTask && c.fairQueue.empty() &&
        c.rtQueue.empty();
}

unsigned
Scheduler::cpuLoad(unsigned cpu) const
{
    const Cpu &c = cpus.at(cpu);
    return static_cast<unsigned>(c.fairQueue.size() + c.rtQueue.size() +
                                 (c.current != kNoTask ? 1 : 0));
}

bool
Scheduler::isIsolated(unsigned cpu) const
{
    return kcfg.isolcpus.count(cpu) != 0;
}

double
Scheduler::vruntimeDelta(const Task &t, Tick work) const
{
    return static_cast<double>(work) * 1024.0 / t.weight;
}

double
Scheduler::execRate(unsigned cpu, const Task &t) const
{
    (void)t;
    // Hyper-threading: wall time stretches while a sibling runs.
    for (unsigned sib : topo.siblingsOf(cpu))
        if (cpus[sib].current != kNoTask)
            return kcfg.sched.htSlowdown;
    return 1.0;
}

Tick
Scheduler::sliceFor(unsigned cpu, const Task &t) const
{
    (void)t;
    const Cpu &c = cpus.at(cpu);
    std::size_t nr = c.fairQueue.size() +
        (c.current != kNoTask ? 1 : 0);
    nr = std::max<std::size_t>(nr, 1);
    Tick slice = kcfg.sched.schedLatency / nr;
    return std::max(slice, kcfg.sched.minGranularity);
}

// ---------------------------------------------------------------------
// Runqueue primitives
// ---------------------------------------------------------------------

void
Scheduler::enqueue(unsigned cpu, TaskId id, bool renormalize)
{
    Cpu &c = cpus[cpu];
    Task &t = task(id);
    t.cpu = cpu;
    if (t.params.klass == SchedClass::RealTime) {
        // Insert by priority (higher first), FIFO within priority.
        auto it = c.rtQueue.begin();
        while (it != c.rtQueue.end() &&
               task(*it).params.rtPriority >= t.params.rtPriority)
            ++it;
        c.rtQueue.insert(it, id);
    } else {
        if (renormalize) {
            double floor = c.minVruntime -
                static_cast<double>(kcfg.sched.sleeperCredit);
            t.vruntime = std::max(t.vruntime, floor);
        }
        c.fairQueue.insert({t.vruntime, id});
    }
}

void
Scheduler::dequeueFromRq(unsigned cpu, TaskId id)
{
    Cpu &c = cpus[cpu];
    Task &t = task(id);
    if (t.params.klass == SchedClass::RealTime) {
        auto it = std::find(c.rtQueue.begin(), c.rtQueue.end(), id);
        if (it == c.rtQueue.end())
            afa::sim::panic("%s: task %s not on rt rq %u",
                            name().c_str(), t.params.name.c_str(), cpu);
        c.rtQueue.erase(it);
    } else {
        auto it = c.fairQueue.find({t.vruntime, id});
        if (it == c.fairQueue.end())
            afa::sim::panic("%s: task %s not on fair rq %u",
                            name().c_str(), t.params.name.c_str(), cpu);
        c.fairQueue.erase(it);
    }
}

// ---------------------------------------------------------------------
// Placement and wakeup
// ---------------------------------------------------------------------

unsigned
Scheduler::choosePlacement(const Task &t) const
{
    // Candidates: affinity minus isolated CPUs. Only an explicit
    // affinity can land a task on an isolated CPU (the isolcpus
    // contract).
    CpuMask isolated = maskFromSet(kcfg.isolcpus);
    CpuMask candidates = t.params.affinity & ~isolated;
    if (candidates == 0)
        candidates = t.params.affinity;

    // Prefer the previous CPU when it is idle (cache affinity).
    if (t.everPlaced && inMask(candidates, t.cpu) &&
        cpuLoad(t.cpu) == 0)
        return t.cpu;

    unsigned best = 64;
    unsigned best_load = ~0u;
    for (unsigned cpu = 0; cpu < topo.logicalCpus(); ++cpu) {
        if (!inMask(candidates, cpu))
            continue;
        unsigned load = cpuLoad(cpu);
        // Least loaded wins; the previous CPU wins ties (cache
        // affinity), otherwise the lowest id (scan order).
        bool better = load < best_load ||
            (load == best_load && t.everPlaced && cpu == t.cpu);
        if (better) {
            best = cpu;
            best_load = load;
        }
    }
    if (best == 64)
        afa::sim::panic("%s: no placement for task '%s'",
                        name().c_str(), t.params.name.c_str());
    return best;
}

void
Scheduler::wake(TaskId id)
{
    Task &t = task(id);
    if (t.state != TaskState::Blocked)
        afa::sim::panic("%s: wake on non-blocked task '%s'",
                        name().c_str(), t.params.name.c_str());
    unsigned cpu = choosePlacement(t);
    if (t.everPlaced && cpu != t.cpu) {
        ++t.stats.migrations;
        // Cross-CPU wake: vruntime frames are per-runqueue, so the
        // task re-enters at the destination's min_vruntime (CFS's
        // migrate_task_rq_fair). This is what makes a migrated hog
        // "fresh" against wakeup-granularity checks.
        if (t.params.klass == SchedClass::Fair)
            t.vruntime = cpus[cpu].minVruntime;
        if (tracing("sched.migrate"))
            trace("sched.migrate",
                  afa::sim::strfmt("%s cpu%u -> cpu%u",
                                   t.params.name.c_str(), t.cpu, cpu));
    }
    t.everPlaced = true;
    t.state = TaskState::Runnable;
    t.runnableSince = now();
    enqueue(cpu, id, true);

    Cpu &c = cpus[cpu];
    if (c.current == kNoTask) {
        dispatch(cpu);
        return;
    }
    Task &curr = task(c.current);
    if (wouldPreempt(t, curr)) {
        accountRunning(cpu);
        stopRunning(cpu, true);
        dispatch(cpu);
    } else {
        if (tracing("sched.no_preempt"))
            trace("sched.no_preempt",
                  afa::sim::strfmt("%s waits behind %s on cpu%u",
                                   t.params.name.c_str(),
                                   curr.params.name.c_str(), cpu));
    }
}

bool
Scheduler::wouldPreempt(const Task &woken, const Task &curr) const
{
    if (woken.params.klass == SchedClass::RealTime) {
        if (curr.params.klass != SchedClass::RealTime)
            return true;
        return woken.params.rtPriority > curr.params.rtPriority;
    }
    if (curr.params.klass == SchedClass::RealTime)
        return false;
    // CFS wakeup preemption: only when the running task's vruntime
    // leads by more than the wakeup granularity (scaled for the woken
    // task's weight).
    double gran = static_cast<double>(kcfg.sched.wakeupGranularity) *
        1024.0 / woken.weight;
    return curr.vruntime - woken.vruntime > gran;
}

// ---------------------------------------------------------------------
// Dispatch and execution
// ---------------------------------------------------------------------

TaskId
Scheduler::pickNext(unsigned cpu)
{
    Cpu &c = cpus[cpu];
    if (!c.rtQueue.empty())
        return c.rtQueue.front();
    if (!c.fairQueue.empty())
        return c.fairQueue.begin()->second;
    return kNoTask;
}

void
Scheduler::dispatch(unsigned cpu)
{
    Cpu &c = cpus[cpu];
    if (c.current != kNoTask)
        return;
    TaskId next = pickNext(cpu);
    if (next == kNoTask) {
        enterIdle(cpu);
        idleBalance(cpu);
        return;
    }
    startRunning(cpu, next);
}

void
Scheduler::startRunning(unsigned cpu, TaskId id)
{
    Cpu &c = cpus[cpu];
    Task &t = task(id);
    dequeueFromRq(cpu, id);

    Tick wait = now() - t.runnableSince;
    t.stats.waitTime += wait;
    t.stats.worstWait = std::max(t.stats.worstWait, wait);
    if (spanLog && t.params.traceSpans && wait > 0 &&
        spanLog->wants(afa::obs::Category::Sched))
        spanLog->record(afa::obs::Stage::SchedulerWait, 0,
                        t.runnableSince, now(),
                        afa::obs::cpuTrack(cpu), 0, id);

    // Waking an idle CPU pays the c-state exit latency.
    Tick exit_delay = wakeFromIdle(cpu);

    t.state = TaskState::Running;
    c.current = id;
    c.currentStarted = now();
    ++c.stats.switches;

    // Cache pollution: resuming after someone else ran here.
    if (c.lastTask != id && c.lastTask != kNoTask)
        t.remaining += kcfg.sched.cachePollutionCost;
    c.lastTask = id;

    Tick begin = std::max(now() + exit_delay, c.irqBusyUntil) +
        kcfg.sched.contextSwitchCost;
    t.segStart = begin;
    t.segRate = execRate(cpu, t);
    Tick wall = static_cast<Tick>(
        static_cast<double>(t.remaining) * t.segRate);
    t.segEvent = at(begin + wall,
                    [this, cpu, id] { segmentComplete(cpu, id); });
}

void
Scheduler::accountRunning(unsigned cpu)
{
    Cpu &c = cpus[cpu];
    if (c.current == kNoTask)
        return;
    Task &t = task(c.current);
    if (now() <= t.segStart)
        return; // still in switch-in limbo; no work done yet
    Tick elapsed = now() - t.segStart;
    auto work = static_cast<Tick>(
        static_cast<double>(elapsed) / t.segRate);
    work = std::min(work, t.remaining);
    t.remaining -= work;
    t.stats.cpuTime += work;
    c.stats.busyTime += elapsed;
    t.vruntime += vruntimeDelta(t, work);
    t.segStart = now();
    // Advance min_vruntime monotonically.
    double floor = t.vruntime;
    if (!c.fairQueue.empty())
        floor = std::min(floor, c.fairQueue.begin()->first);
    c.minVruntime = std::max(c.minVruntime, floor);
}

void
Scheduler::rescheduleSegment(unsigned cpu, Tick not_before)
{
    Cpu &c = cpus[cpu];
    if (c.current == kNoTask)
        return;
    Task &t = task(c.current);
    sim().cancel(t.segEvent);
    Tick begin = std::max(std::max(now(), not_before), c.irqBusyUntil);
    begin = std::max(begin, t.segStart);
    t.segStart = begin;
    t.segRate = execRate(cpu, t);
    Tick wall = static_cast<Tick>(
        static_cast<double>(t.remaining) * t.segRate);
    TaskId id = c.current;
    t.segEvent = at(begin + wall,
                    [this, cpu, id] { segmentComplete(cpu, id); });
}

void
Scheduler::stopRunning(unsigned cpu, bool requeue)
{
    Cpu &c = cpus[cpu];
    if (c.current == kNoTask)
        return;
    TaskId id = c.current;
    Task &t = task(id);
    sim().cancel(t.segEvent);
    c.current = kNoTask;
    t.state = TaskState::Runnable;
    t.runnableSince = now();
    ++t.stats.preemptions;
    if (requeue)
        enqueue(cpu, id, false);
}

void
Scheduler::segmentComplete(unsigned cpu, TaskId id)
{
    Cpu &c = cpus[cpu];
    if (c.current != id)
        afa::sim::panic("%s: segment completion for non-current task",
                        name().c_str());
    accountRunning(cpu);
    Task &t = task(id);
    // Absorb sub-tick rounding residue.
    t.stats.cpuTime += t.remaining;
    t.remaining = 0;
    ++t.stats.segments;
    t.state = TaskState::Blocked;
    c.current = kNoTask;
    EventFn done = std::move(t.onDone);
    t.onDone = nullptr;
    dispatch(cpu);
    if (done)
        done();
}

void
Scheduler::runFor(TaskId id, Tick work, EventFn on_done)
{
    Task &t = task(id);
    if (t.state != TaskState::Blocked)
        afa::sim::panic("%s: runFor on non-blocked task '%s'",
                        name().c_str(), t.params.name.c_str());
    if (work == 0)
        afa::sim::panic("%s: zero-length work segment", name().c_str());
    t.remaining = work;
    t.onDone = std::move(on_done);
    wake(id);
}

// ---------------------------------------------------------------------
// Interrupts
// ---------------------------------------------------------------------

void
Scheduler::interrupt(unsigned cpu, Tick duration, EventFn handler)
{
    if (cpu >= cpus.size())
        afa::sim::panic("%s: interrupt on bad cpu %u", name().c_str(),
                        cpu);
    Cpu &c = cpus[cpu];
    Tick exit_delay = wakeFromIdle(cpu);
    Tick start = std::max(now() + exit_delay, c.irqBusyUntil);
    Tick end = start + duration;
    c.irqBusyUntil = end;
    c.stats.irqTime += duration;
    ++c.stats.interrupts;
    if (c.current != kNoTask) {
        accountRunning(cpu);
        rescheduleSegment(cpu, end);
    }
    if (handler)
        at(end, std::move(handler));
}

// ---------------------------------------------------------------------
// Ticks, RCU, and balancing
// ---------------------------------------------------------------------

void
Scheduler::start()
{
    if (started)
        return;
    started = true;
    for (unsigned cpu = 0; cpu < cpus.size(); ++cpu) {
        // Random phases avoid a lockstep tick storm.
        Tick phase = static_cast<Tick>(rng().uniform(
            0.0, static_cast<double>(kcfg.sched.tickPeriod)));
        unsigned cpu_copy = cpu;
        cpus[cpu].tickEvent =
            after(phase, [this, cpu_copy] { onTick(cpu_copy); });
        scheduleRcu(cpu);
    }
    after(kcfg.sched.balanceInterval, [this] { balance(); });
}

void
Scheduler::scheduleTick(unsigned cpu)
{
    Cpu &c = cpus[cpu];
    Tick period = kcfg.sched.tickPeriod;
    // nohz_full: a single running task and an empty queue drops the
    // tick to the residual 1 Hz.
    if (kcfg.nohzFull.count(cpu) && c.fairQueue.empty() &&
        c.rtQueue.empty())
        period = kcfg.sched.nohzTickPeriod;
    c.tickEvent = after(period, [this, cpu] { onTick(cpu); });
}

void
Scheduler::onTick(unsigned cpu)
{
    Cpu &c = cpus[cpu];
    ++c.stats.ticks;
    if (c.current != kNoTask) {
        // The tick handler steals a few microseconds from the task.
        Tick start = std::max(now(), c.irqBusyUntil);
        c.irqBusyUntil = start + kcfg.sched.tickCost;
        c.stats.irqTime += kcfg.sched.tickCost;
        accountRunning(cpu);
        rescheduleSegment(cpu, c.irqBusyUntil);

        // Slice expiry check (fair class only; FIFO runs until done).
        Task &curr = task(c.current);
        if (curr.params.klass == SchedClass::Fair &&
            !c.fairQueue.empty()) {
            Tick ran = now() - c.currentStarted;
            if (ran >= sliceFor(cpu, curr) &&
                c.fairQueue.begin()->first < curr.vruntime) {
                stopRunning(cpu, true);
                dispatch(cpu);
            }
        }
    }
    scheduleTick(cpu);
}

void
Scheduler::scheduleRcu(unsigned cpu)
{
    Tick wait = static_cast<Tick>(rng().exponential(
        static_cast<double>(kcfg.sched.rcuCallbackInterval)));
    after(std::max<Tick>(wait, 1), [this, cpu] {
        // rcu_nocbs offloads the callback to a housekeeping CPU.
        unsigned target = cpu;
        if (kcfg.rcuNocbs.count(cpu)) {
            for (unsigned hk = 0; hk < cpus.size(); ++hk) {
                if (!isIsolated(hk) && !kcfg.rcuNocbs.count(hk)) {
                    target = hk;
                    break;
                }
            }
        }
        // Callbacks only accumulate on CPUs doing work.
        if (cpus[cpu].current != kNoTask || target != cpu)
            interrupt(target, kcfg.sched.rcuCallbackCost, nullptr);
        scheduleRcu(cpu);
    });
}

void
Scheduler::balance()
{
    for (unsigned cpu = 0; cpu < cpus.size(); ++cpu) {
        if (isIsolated(cpu))
            continue;
        if (cpus[cpu].current == kNoTask &&
            cpus[cpu].fairQueue.empty() && cpus[cpu].rtQueue.empty())
            tryPull(cpu);
    }
    after(kcfg.sched.balanceInterval, [this] { balance(); });
}

void
Scheduler::idleBalance(unsigned cpu)
{
    if (!started || isIsolated(cpu))
        return;
    if (tryPull(cpu))
        dispatch(cpu);
}

bool
Scheduler::tryPull(unsigned to_cpu)
{
    // Find the busiest non-isolated CPU with a queued fair task that
    // is allowed to run here.
    unsigned busiest = 64;
    std::size_t busiest_queue = 0;
    for (unsigned cpu = 0; cpu < cpus.size(); ++cpu) {
        if (cpu == to_cpu || isIsolated(cpu))
            continue;
        std::size_t qlen = cpus[cpu].fairQueue.size();
        if (qlen > busiest_queue) {
            busiest_queue = qlen;
            busiest = cpu;
        }
    }
    if (busiest == 64)
        return false;
    Cpu &from = cpus[busiest];
    for (const auto &[vrt, tid] : from.fairQueue) {
        Task &t = task(tid);
        if (!inMask(t.params.affinity, to_cpu))
            continue;
        // dequeueFromRq erases the set node that vrt/tid alias, so
        // copy the id out first and never touch the bindings after.
        const unsigned pulled = tid;
        dequeueFromRq(busiest, pulled);
        // Renormalise vruntime into the new queue's frame.
        t.vruntime = t.vruntime - from.minVruntime +
            cpus[to_cpu].minVruntime;
        ++t.stats.migrations;
        ++cpus[to_cpu].stats.pulls;
        if (tracing("sched.balance"))
            trace("sched.balance",
                  afa::sim::strfmt("pull %s cpu%u -> cpu%u",
                                   t.params.name.c_str(), busiest,
                                   to_cpu));
        enqueue(to_cpu, pulled, false);
        if (cpus[to_cpu].current == kNoTask)
            dispatch(to_cpu);
        return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// C-states
// ---------------------------------------------------------------------

void
Scheduler::enterIdle(unsigned cpu)
{
    Cpu &c = cpus[cpu];
    c.idleSince = now();
    if (kcfg.cstate.idlePoll) {
        c.cstate = 0;
        return;
    }
    // Menu-governor-lite: predict this idle period from the last one.
    bool deep = kcfg.cstate.maxCstate >= 6 &&
        c.lastIdleLen >= kcfg.cstate.c6Threshold;
    c.cstate = deep ? 6 : 1;
}

Tick
Scheduler::wakeFromIdle(unsigned cpu)
{
    Cpu &c = cpus[cpu];
    if (c.current != kNoTask || c.cstate == 0)
        return 0;
    c.lastIdleLen = now() - c.idleSince;
    Tick delay = c.cstate == 6 ? kcfg.cstate.c6ExitLatency
                               : kcfg.cstate.c1ExitLatency;
    c.cstate = 0;
    ++c.stats.cstateWakes;
    c.stats.cstateExitDelay += delay;
    return delay;
}

} // namespace afa::host
