/**
 * @file
 * The host CPU scheduler: a CFS-like fair class plus a FIFO real-time
 * class over per-CPU runqueues, with the specific Linux 4.7-era
 * behaviours the paper's pathologies hinge on:
 *
 *  - wakeup preemption gated by sysctl_sched_wakeup_granularity: a
 *    woken I/O-bound task does NOT preempt a running CPU hog until
 *    the hog's vruntime leads by the granularity, so a freshly
 *    migrated hog can make an I/O task wait out most of a slice
 *    (the Fig. 6 multi-millisecond tail);
 *  - idle (newidle) and periodic load balancing that migrate CPU-bound
 *    tasks onto cores whose I/O-bound tasks are blocked in I/O wait
 *    (Section IV-C);
 *  - isolcpus masks removing CPUs from placement and balancing;
 *  - nohz_full reducing the 1000 Hz tick to 1 Hz on isolated cores;
 *  - rcu_nocbs offloading RCU softirq bursts to housekeeping cores;
 *  - c-state exit latency on interrupt delivery to idle cores, with
 *    processor.max_cstate / idle=poll overrides;
 *  - SCHED_FIFO (chrt) preempting any fair task immediately;
 *  - context-switch and cache-pollution costs, and hyper-thread
 *    throughput sharing between sibling logical CPUs.
 *
 * Tasks are driven through an async API: runFor(task, work, on_done)
 * makes a blocked task runnable with a CPU-work segment; on_done fires
 * once the work has actually executed (including every queueing,
 * preemption, interrupt and tick delay in between). interrupt()
 * injects hardirq work that steals the CPU from whatever runs there.
 */

#ifndef AFA_HOST_SCHEDULER_HH
#define AFA_HOST_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "host/cpu_topology.hh"
#include "host/kernel_config.hh"
#include "sim/sim_object.hh"
#include "sim/trace.hh"

namespace afa::obs {
class SpanLog;
} // namespace afa::obs

namespace afa::host {

/** Identifies a task. */
using TaskId = std::uint32_t;
constexpr TaskId kNoTask = 0xffffffffu;

/** Scheduling class. */
enum class SchedClass : std::uint8_t {
    Fair,     ///< CFS
    RealTime, ///< SCHED_FIFO
};

/** Task lifecycle state. */
enum class TaskState : std::uint8_t {
    Blocked,  ///< waiting (I/O wait or sleeping)
    Runnable, ///< on a runqueue
    Running,  ///< on a CPU
};

/** Affinity mask over logical CPUs (bit n = cpu n). */
using CpuMask = std::uint64_t;
constexpr CpuMask kAllCpus = ~CpuMask(0);

/** Build a mask from a CpuSet. */
CpuMask maskFromSet(const CpuSet &cpus);

/** Creation-time task attributes. */
struct TaskParams
{
    std::string name;
    SchedClass klass = SchedClass::Fair;
    int nice = 0;        ///< fair class: -20..19
    int rtPriority = 0;  ///< RT class: 1..99
    CpuMask affinity = kAllCpus;
    /** Record obs sched-wait spans for this task's dispatches. Set
     *  only for latency-measured tasks (the fio threads), so CPU-hog
     *  background tasks do not drown the sched_wait stage. */
    bool traceSpans = false;
};

/** Per-task statistics. */
struct TaskStats
{
    Tick cpuTime = 0;       ///< work executed
    Tick waitTime = 0;      ///< runnable-but-not-running time
    std::uint64_t segments = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t migrations = 0;
    Tick worstWait = 0;     ///< longest single runnable wait
};

/** Per-CPU statistics. */
struct CpuStats
{
    Tick busyTime = 0;
    Tick irqTime = 0;
    std::uint64_t switches = 0;
    std::uint64_t ticks = 0;
    std::uint64_t interrupts = 0;
    std::uint64_t pulls = 0;      ///< tasks pulled by balancing
    std::uint64_t cstateWakes = 0;
    Tick cstateExitDelay = 0;
};

/** The scheduler. */
class Scheduler : public afa::sim::SimObject
{
  public:
    Scheduler(afa::sim::Simulator &simulator, std::string sched_name,
              const CpuTopology &topology, const KernelConfig &config,
              afa::sim::Tracer *tracer = nullptr);

    /** Create a task (initially Blocked). */
    TaskId createTask(const TaskParams &params);

    /**
     * Give a blocked task a CPU-work segment. The task becomes
     * runnable, is placed on a CPU, executes @p work of CPU time
     * (spread across preemptions/interrupts as needed) and then
     * blocks again; @p on_done fires at that instant.
     */
    void runFor(TaskId task, Tick work, afa::sim::EventFn on_done);

    /** chrt: change scheduling class/priority at runtime. */
    void setRealTime(TaskId task, int rt_priority);
    void setFair(TaskId task, int nice);

    /** sched_setaffinity. */
    void setAffinity(TaskId task, CpuMask mask);

    /**
     * Inject hardirq work on @p cpu: wakes the CPU out of any
     * c-state, occupies it for @p duration (stealing time from the
     * running task) and then runs @p handler in irq context.
     */
    void interrupt(unsigned cpu, Tick duration,
                   afa::sim::EventFn handler);

    /** Begin ticks, RCU noise, and the periodic load balancer. */
    void start();

    /** Current state of a task. */
    TaskState taskState(TaskId task) const;

    /** CPU the task is (last) associated with. */
    unsigned taskCpu(TaskId task) const;

    /** True when the CPU runs nothing and has an empty runqueue. */
    bool cpuIdle(unsigned cpu) const;

    /** Number of runnable-or-running tasks associated with a CPU. */
    unsigned cpuLoad(unsigned cpu) const;

    const TaskStats &taskStats(TaskId task) const;
    const CpuStats &cpuStats(unsigned cpu) const;
    const CpuTopology &topology() const { return topo; }
    const KernelConfig &config() const { return kcfg; }

    /** Runtime-mutable kernel config (tests tweak knobs). */
    KernelConfig &mutableConfig() { return kcfg; }

    /** Attach (or detach, with nullptr) the obs span log. */
    void setSpanLog(afa::obs::SpanLog *log) { spanLog = log; }

  private:
    struct Task
    {
        TaskParams params;
        TaskState state = TaskState::Blocked;
        double vruntime = 0.0;
        double weight = 1024.0;
        unsigned cpu = 0;
        bool everPlaced = false;
        Tick remaining = 0;          ///< work left in the segment
        afa::sim::EventFn onDone;
        afa::sim::EventHandle segEvent;
        Tick segStart = 0;           ///< when the current burst began
        double segRate = 1.0;        ///< wall ticks per work tick
        Tick runnableSince = 0;
        TaskStats stats;
    };

    struct Cpu
    {
        TaskId current = kNoTask;
        Tick currentStarted = 0;
        /// CFS runqueue ordered by vruntime.
        std::set<std::pair<double, TaskId>> fairQueue;
        /// FIFO runqueue ordered by priority (higher first), FIFO
        /// within a priority.
        std::deque<TaskId> rtQueue;
        double minVruntime = 0.0;
        TaskId lastTask = kNoTask;   ///< for cache pollution
        Tick irqBusyUntil = 0;
        Tick idleSince = 0;
        unsigned cstate = 0;         ///< current sleep state (0/1/6)
        Tick lastIdleLen = 0;        ///< menu governor history
        afa::sim::EventHandle tickEvent;
        CpuStats stats;
    };

    CpuTopology topo;
    KernelConfig kcfg;
    afa::sim::Tracer *tracer;
    afa::obs::SpanLog *spanLog = nullptr;
    std::vector<Task> tasks;
    std::vector<Cpu> cpus;
    bool started;

    // --- core machinery -------------------------------------------
    Task &task(TaskId id);
    const Task &task(TaskId id) const;
    void enqueue(unsigned cpu, TaskId id, bool renormalize);
    void dequeueFromRq(unsigned cpu, TaskId id);
    void wake(TaskId id);
    unsigned choosePlacement(const Task &t) const;
    void dispatch(unsigned cpu);
    TaskId pickNext(unsigned cpu);
    void startRunning(unsigned cpu, TaskId id);
    void stopRunning(unsigned cpu, bool requeue);
    void accountRunning(unsigned cpu);
    void segmentComplete(unsigned cpu, TaskId id);
    void rescheduleSegment(unsigned cpu, Tick not_before);
    bool wouldPreempt(const Task &woken, const Task &curr) const;
    void checkPreemption(unsigned cpu);
    double vruntimeDelta(const Task &t, Tick work) const;
    double execRate(unsigned cpu, const Task &t) const;
    Tick sliceFor(unsigned cpu, const Task &t) const;
    bool isIsolated(unsigned cpu) const;

    // --- periodic machinery ----------------------------------------
    void scheduleTick(unsigned cpu);
    void onTick(unsigned cpu);
    void scheduleRcu(unsigned cpu);
    void balance();
    void idleBalance(unsigned cpu);
    bool tryPull(unsigned to_cpu);

    // --- c-states ---------------------------------------------------
    void enterIdle(unsigned cpu);
    Tick wakeFromIdle(unsigned cpu);

    void trace(const char *category, std::string message);
    /** Gate for strfmt at trace() call sites: build the message only
     *  when someone will keep it. */
    bool tracing(const char *category) const;
    void checkTaskId(TaskId id) const;
};

} // namespace afa::host

#endif // AFA_HOST_SCHEDULER_HH
