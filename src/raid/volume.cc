#include "raid/volume.hh"

#include <algorithm>
#include <memory>

#include "nvme/command.hh"
#include "sim/logging.hh"

namespace afa::raid {

using afa::workload::IoRequest;
using afa::workload::IoResult;

namespace {

/** Fan-out join: completes the client when the last member does,
 *  carrying the last handler CPU and the worst status seen. */
struct Join
{
    std::size_t remaining = 0;
    IoResult result;

    void
    fold(const IoResult &member_result)
    {
        result.cpu = member_result.cpu;
        if (!member_result.ok())
            result.status = member_result.status;
    }
};

} // namespace

StripedVolume::StripedVolume(afa::sim::Simulator &simulator,
                             std::string volume_name,
                             afa::workload::IoEngine &engine,
                             std::vector<unsigned> member_devices,
                             std::uint32_t strip_blocks)
    : SimObject(simulator, std::move(volume_name)), inner(engine),
      members(std::move(member_devices)), stripBlocks(strip_blocks)
{
    if (members.empty())
        afa::sim::fatal("%s: a volume needs at least one member",
                        name().c_str());
    if (stripBlocks == 0)
        afa::sim::fatal("%s: strip size must be >= 1 block",
                        name().c_str());
}

std::pair<unsigned, std::uint64_t>
StripedVolume::mapBlock(std::uint64_t volume_lba) const
{
    std::uint64_t strip = volume_lba / stripBlocks;
    std::uint64_t within = volume_lba % stripBlocks;
    unsigned member = static_cast<unsigned>(strip % members.size());
    std::uint64_t member_strip = strip / members.size();
    return {member, member_strip * stripBlocks + within};
}

std::uint64_t
StripedVolume::deviceBlocks(unsigned device) const
{
    if (device != 0)
        afa::sim::panic("%s: volumes expose a single device 0",
                        name().c_str());
    std::uint64_t smallest = inner.deviceBlocks(members[0]);
    for (unsigned m : members)
        smallest = std::min(smallest, inner.deviceBlocks(m));
    return smallest * members.size();
}

void
StripedVolume::submit(unsigned cpu, const IoRequest &request,
                      CompleteFn on_device_complete)
{
    if (request.device != 0)
        afa::sim::panic("%s: volumes expose a single device 0",
                        name().c_str());
    const std::uint64_t blocks =
        request.bytes / afa::nvme::kLogicalBlockBytes;
    if (blocks == 0)
        afa::sim::panic("%s: zero-length volume I/O", name().c_str());
    ++volStats.clientIos;
    if (request.op == afa::nvme::Op::Write)
        ++volStats.writes;
    else
        ++volStats.reads;

    // Coalesce the block run into contiguous per-member extents
    // (member LBAs ascend monotonically as the volume LBA does).
    struct SubIo
    {
        unsigned member;
        std::uint64_t lba;
        std::uint32_t blocks;
    };
    std::vector<SubIo> subs;
    std::vector<int> open(members.size(), -1); // member -> subs index
    for (std::uint64_t b = 0; b < blocks; ++b) {
        auto [member, lba] = mapBlock(request.lba + b);
        int idx = open[member];
        if (idx >= 0 &&
            subs[idx].lba + subs[idx].blocks == lba) {
            ++subs[idx].blocks;
        } else {
            open[member] = static_cast<int>(subs.size());
            subs.push_back(SubIo{member, lba, 1});
        }
    }

    // Fan out; the client completes with the slowest member (the
    // tail-at-scale join). The reported handler CPU is the last
    // completion's, matching what a reaping thread would observe.
    auto join = std::make_shared<Join>();
    join->remaining = subs.size();
    volStats.memberIos += subs.size();
    for (const SubIo &sub : subs) {
        IoRequest child;
        child.device = members[sub.member];
        child.op = request.op;
        child.lba = sub.lba;
        child.bytes = sub.blocks * afa::nvme::kLogicalBlockBytes;
        child.tag = request.tag;
        inner.submit(cpu, child,
                     [join, on_device_complete](
                         const IoResult &result) {
                         join->fold(result);
                         if (--join->remaining == 0)
                             on_device_complete(join->result);
                     });
    }
}

MirroredVolume::MirroredVolume(afa::sim::Simulator &simulator,
                               std::string volume_name,
                               afa::workload::IoEngine &engine,
                               std::vector<unsigned> member_devices,
                               ReadPolicy read_policy)
    : SimObject(simulator, std::move(volume_name)), inner(engine),
      members(std::move(member_devices)), policy(read_policy),
      nextRead(0)
{
    if (members.empty())
        afa::sim::fatal("%s: a volume needs at least one member",
                        name().c_str());
    memberReads.assign(members.size(), 0);
    failedMembers.assign(members.size(), false);
}

void
MirroredVolume::setMemberFailed(unsigned member_index, bool failed)
{
    if (member_index >= members.size())
        afa::sim::panic("%s: member %u out of range", name().c_str(),
                        member_index);
    failedMembers[member_index] = failed;
}

bool
MirroredVolume::memberFailed(unsigned member_index) const
{
    if (member_index >= members.size())
        afa::sim::panic("%s: member %u out of range", name().c_str(),
                        member_index);
    return failedMembers[member_index];
}

std::uint64_t
MirroredVolume::deviceBlocks(unsigned device) const
{
    if (device != 0)
        afa::sim::panic("%s: volumes expose a single device 0",
                        name().c_str());
    std::uint64_t smallest = inner.deviceBlocks(members[0]);
    for (unsigned m : members)
        smallest = std::min(smallest, inner.deviceBlocks(m));
    return smallest;
}

void
MirroredVolume::submit(unsigned cpu, const IoRequest &request,
                       CompleteFn on_device_complete)
{
    if (request.device != 0)
        afa::sim::panic("%s: volumes expose a single device 0",
                        name().c_str());
    ++volStats.clientIos;
    if (request.op == afa::nvme::Op::Write) {
        // Replicate to every live member; complete with the slowest.
        ++volStats.writes;
        std::size_t live = 0;
        for (unsigned m = 0; m < members.size(); ++m)
            if (!failedMembers[m])
                ++live;
        if (live == 0) {
            ++volStats.failedIos;
            after(0, [cpu, cb = std::move(on_device_complete)] {
                cb(IoResult{cpu, afa::nvme::Status::Aborted});
            });
            return;
        }
        volStats.memberIos += live;
        auto join = std::make_shared<Join>();
        join->remaining = live;
        for (unsigned m = 0; m < members.size(); ++m) {
            if (failedMembers[m])
                continue;
            IoRequest child = request;
            child.device = members[m];
            inner.submit(cpu, child,
                         [join, on_device_complete](
                             const IoResult &result) {
                             join->fold(result);
                             if (--join->remaining == 0)
                                 on_device_complete(join->result);
                         });
        }
        return;
    }
    // Read from one live member per the policy; a member that answers
    // with an error is failed on the spot and the read re-tried on a
    // survivor (degraded read).
    ++volStats.reads;
    submitRead(cpu, request, std::move(on_device_complete));
}

unsigned
MirroredVolume::pickReadMember()
{
    const unsigned n = static_cast<unsigned>(members.size());
    if (policy == ReadPolicy::Primary) {
        for (unsigned m = 0; m < n; ++m)
            if (!failedMembers[m])
                return m;
        return kNoMember;
    }
    for (unsigned tries = 0; tries < n; ++tries) {
        unsigned pick = nextRead;
        nextRead = (nextRead + 1) % n;
        if (!failedMembers[pick])
            return pick;
    }
    return kNoMember;
}

void
MirroredVolume::submitRead(unsigned cpu, const IoRequest &request,
                           CompleteFn on_device_complete)
{
    unsigned pick = pickReadMember();
    if (pick == kNoMember) {
        ++volStats.failedIos;
        after(0, [cpu, cb = std::move(on_device_complete)] {
            cb(IoResult{cpu, afa::nvme::Status::Aborted});
        });
        return;
    }
    ++volStats.memberIos;
    ++memberReads[pick];
    IoRequest child = request;
    child.device = members[pick];
    inner.submit(
        cpu, child,
        [this, cpu, request, pick,
         cb = std::move(on_device_complete)](
            const IoResult &result) mutable {
            if (result.ok()) {
                cb(result);
                return;
            }
            // The member gave up (driver timeout on a dropped-out
            // device): fail it over and re-read a survivor.
            setMemberFailed(pick, true);
            ++volStats.degradedReads;
            submitRead(cpu, request, std::move(cb));
        });
}

// ---------------------------------------------------------------------
// ParityVolume
// ---------------------------------------------------------------------

ParityVolume::ParityVolume(afa::sim::Simulator &simulator,
                           std::string volume_name,
                           afa::workload::IoEngine &engine,
                           std::vector<unsigned> member_devices,
                           std::uint32_t strip_blocks)
    : SimObject(simulator, std::move(volume_name)), inner(engine),
      members(std::move(member_devices)), stripBlocks(strip_blocks)
{
    if (members.size() < 3)
        afa::sim::fatal("%s: a parity volume needs >= 3 members",
                        name().c_str());
    if (stripBlocks == 0)
        afa::sim::fatal("%s: strip size must be >= 1 block",
                        name().c_str());
    failedMembers.assign(members.size(), false);
}

void
ParityVolume::setMemberFailed(unsigned member_index, bool failed)
{
    if (member_index >= members.size())
        afa::sim::panic("%s: member %u out of range", name().c_str(),
                        member_index);
    failedMembers[member_index] = failed;
}

bool
ParityVolume::memberFailed(unsigned member_index) const
{
    if (member_index >= members.size())
        afa::sim::panic("%s: member %u out of range", name().c_str(),
                        member_index);
    return failedMembers[member_index];
}

ParityVolume::BlockMap
ParityVolume::mapBlock(std::uint64_t volume_lba) const
{
    const std::uint64_t width = members.size();
    const std::uint64_t data_width = width - 1;
    std::uint64_t strip = volume_lba / stripBlocks;
    std::uint64_t within = volume_lba % stripBlocks;
    std::uint64_t stripe = strip / data_width;
    unsigned slot = static_cast<unsigned>(strip % data_width);
    unsigned parity = static_cast<unsigned>(stripe % width);
    unsigned data = slot < parity ? slot : slot + 1;
    return BlockMap{data, parity, stripe * stripBlocks + within};
}

std::uint64_t
ParityVolume::deviceBlocks(unsigned device) const
{
    if (device != 0)
        afa::sim::panic("%s: volumes expose a single device 0",
                        name().c_str());
    std::uint64_t smallest = inner.deviceBlocks(members[0]);
    for (unsigned m : members)
        smallest = std::min(smallest, inner.deviceBlocks(m));
    return smallest * (members.size() - 1);
}

void
ParityVolume::readBlock(unsigned cpu, const BlockMap &map,
                        std::uint64_t tag, CompleteFn on_done)
{
    IoRequest child;
    child.op = afa::nvme::Op::Read;
    child.lba = map.memberLba;
    child.bytes = afa::nvme::kLogicalBlockBytes;
    child.tag = tag;
    if (!failedMembers[map.dataMember]) {
        child.device = members[map.dataMember];
        ++volStats.memberIos;
        inner.submit(
            cpu, child,
            [this, cpu, map, tag,
             cb = std::move(on_done)](const IoResult &result) mutable {
                if (result.ok()) {
                    cb(result);
                    return;
                }
                // Fail the member over and reconstruct instead.
                setMemberFailed(map.dataMember, true);
                readBlock(cpu, map, tag, std::move(cb));
            });
        return;
    }
    // Degraded read: XOR the stripe row of every surviving member
    // (including parity) back together; the join completes with the
    // slowest survivor, which is what makes a degraded array slow.
    ++volStats.degradedReads;
    auto join = std::make_shared<Join>();
    join->remaining = members.size() - 1;
    for (unsigned m = 0; m < members.size(); ++m) {
        if (m == map.dataMember)
            continue;
        child.device = members[m];
        ++volStats.memberIos;
        inner.submit(cpu, child,
                     [join, on_done](const IoResult &result) {
                         join->fold(result);
                         if (--join->remaining == 0)
                             on_done(join->result);
                     });
    }
}

void
ParityVolume::writeBlock(unsigned cpu, const BlockMap &map,
                         std::uint64_t tag, CompleteFn on_done)
{
    IoRequest io;
    io.lba = map.memberLba;
    io.bytes = afa::nvme::kLogicalBlockBytes;
    io.tag = tag;
    const bool data_ok = !failedMembers[map.dataMember];
    const bool parity_ok = !failedMembers[map.parityMember];
    if (!data_ok || !parity_ok) {
        if (!data_ok && !parity_ok) {
            ++volStats.failedIos;
            after(0, [cpu, cb = std::move(on_done)] {
                cb(IoResult{cpu, afa::nvme::Status::Aborted});
            });
            return;
        }
        // Degraded write: no old copy to fold in; the survivor of the
        // (data, parity) pair absorbs the update directly.
        io.op = afa::nvme::Op::Write;
        io.device = members[data_ok ? map.dataMember
                                    : map.parityMember];
        ++volStats.memberIos;
        inner.submit(cpu, io, std::move(on_done));
        return;
    }
    // The RAID-5 small-write penalty: read old data + old parity,
    // then write new data + new parity (two joins back to back).
    io.op = afa::nvme::Op::Read;
    auto read_join = std::make_shared<Join>();
    read_join->remaining = 2;
    auto phase2 = [this, cpu, map, io,
                   on_done](const IoResult &read_result) mutable {
        if (!read_result.ok()) {
            on_done(read_result);
            return;
        }
        io.op = afa::nvme::Op::Write;
        auto write_join = std::make_shared<Join>();
        write_join->remaining = 2;
        for (unsigned m : {map.dataMember, map.parityMember}) {
            io.device = members[m];
            ++volStats.memberIos;
            inner.submit(cpu, io,
                         [write_join, on_done](const IoResult &result) {
                             write_join->fold(result);
                             if (--write_join->remaining == 0)
                                 on_done(write_join->result);
                         });
        }
    };
    for (unsigned m : {map.dataMember, map.parityMember}) {
        io.device = members[m];
        ++volStats.memberIos;
        inner.submit(cpu, io,
                     [read_join, phase2](const IoResult &result) mutable {
                         read_join->fold(result);
                         if (--read_join->remaining == 0)
                             phase2(read_join->result);
                     });
    }
}

void
ParityVolume::submit(unsigned cpu, const IoRequest &request,
                     CompleteFn on_device_complete)
{
    if (request.device != 0)
        afa::sim::panic("%s: volumes expose a single device 0",
                        name().c_str());
    const std::uint64_t blocks =
        request.bytes / afa::nvme::kLogicalBlockBytes;
    if (blocks == 0)
        afa::sim::panic("%s: zero-length volume I/O", name().c_str());
    ++volStats.clientIos;
    const bool is_write = request.op == afa::nvme::Op::Write;
    if (is_write)
        ++volStats.writes;
    else
        ++volStats.reads;
    auto join = std::make_shared<Join>();
    join->remaining = blocks;
    CompleteFn per_block = [join, on_device_complete =
                                      std::move(on_device_complete)](
                               const IoResult &result) {
        join->fold(result);
        if (--join->remaining == 0)
            on_device_complete(join->result);
    };
    for (std::uint64_t b = 0; b < blocks; ++b) {
        BlockMap map = mapBlock(request.lba + b);
        if (is_write)
            writeBlock(cpu, map, request.tag, per_block);
        else
            readBlock(cpu, map, request.tag, per_block);
    }
}

} // namespace afa::raid
