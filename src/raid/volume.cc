#include "raid/volume.hh"

#include <algorithm>
#include <memory>

#include "nvme/command.hh"
#include "sim/logging.hh"

namespace afa::raid {

using afa::workload::IoRequest;

StripedVolume::StripedVolume(afa::sim::Simulator &simulator,
                             std::string volume_name,
                             afa::workload::IoEngine &engine,
                             std::vector<unsigned> member_devices,
                             std::uint32_t strip_blocks)
    : SimObject(simulator, std::move(volume_name)), inner(engine),
      members(std::move(member_devices)), stripBlocks(strip_blocks)
{
    if (members.empty())
        afa::sim::fatal("%s: a volume needs at least one member",
                        name().c_str());
    if (stripBlocks == 0)
        afa::sim::fatal("%s: strip size must be >= 1 block",
                        name().c_str());
}

std::pair<unsigned, std::uint64_t>
StripedVolume::mapBlock(std::uint64_t volume_lba) const
{
    std::uint64_t strip = volume_lba / stripBlocks;
    std::uint64_t within = volume_lba % stripBlocks;
    unsigned member = static_cast<unsigned>(strip % members.size());
    std::uint64_t member_strip = strip / members.size();
    return {member, member_strip * stripBlocks + within};
}

std::uint64_t
StripedVolume::deviceBlocks(unsigned device) const
{
    if (device != 0)
        afa::sim::panic("%s: volumes expose a single device 0",
                        name().c_str());
    std::uint64_t smallest = inner.deviceBlocks(members[0]);
    for (unsigned m : members)
        smallest = std::min(smallest, inner.deviceBlocks(m));
    return smallest * members.size();
}

void
StripedVolume::submit(unsigned cpu, const IoRequest &request,
                      CompleteFn on_device_complete)
{
    if (request.device != 0)
        afa::sim::panic("%s: volumes expose a single device 0",
                        name().c_str());
    const std::uint64_t blocks =
        request.bytes / afa::nvme::kLogicalBlockBytes;
    if (blocks == 0)
        afa::sim::panic("%s: zero-length volume I/O", name().c_str());
    ++volStats.clientIos;
    if (request.op == afa::nvme::Op::Write)
        ++volStats.writes;
    else
        ++volStats.reads;

    // Coalesce the block run into contiguous per-member extents
    // (member LBAs ascend monotonically as the volume LBA does).
    struct SubIo
    {
        unsigned member;
        std::uint64_t lba;
        std::uint32_t blocks;
    };
    std::vector<SubIo> subs;
    std::vector<int> open(members.size(), -1); // member -> subs index
    for (std::uint64_t b = 0; b < blocks; ++b) {
        auto [member, lba] = mapBlock(request.lba + b);
        int idx = open[member];
        if (idx >= 0 &&
            subs[idx].lba + subs[idx].blocks == lba) {
            ++subs[idx].blocks;
        } else {
            open[member] = static_cast<int>(subs.size());
            subs.push_back(SubIo{member, lba, 1});
        }
    }

    // Fan out; the client completes with the slowest member (the
    // tail-at-scale join). The reported handler CPU is the last
    // completion's, matching what a reaping thread would observe.
    auto remaining = std::make_shared<std::size_t>(subs.size());
    volStats.memberIos += subs.size();
    for (const SubIo &sub : subs) {
        IoRequest child;
        child.device = members[sub.member];
        child.op = request.op;
        child.lba = sub.lba;
        child.bytes = sub.blocks * afa::nvme::kLogicalBlockBytes;
        inner.submit(cpu, child,
                     [remaining, on_device_complete](
                         unsigned handler_cpu) {
                         if (--*remaining == 0)
                             on_device_complete(handler_cpu);
                     });
    }
}

MirroredVolume::MirroredVolume(afa::sim::Simulator &simulator,
                               std::string volume_name,
                               afa::workload::IoEngine &engine,
                               std::vector<unsigned> member_devices,
                               ReadPolicy read_policy)
    : SimObject(simulator, std::move(volume_name)), inner(engine),
      members(std::move(member_devices)), policy(read_policy),
      nextRead(0)
{
    if (members.empty())
        afa::sim::fatal("%s: a volume needs at least one member",
                        name().c_str());
    memberReads.assign(members.size(), 0);
}

std::uint64_t
MirroredVolume::deviceBlocks(unsigned device) const
{
    if (device != 0)
        afa::sim::panic("%s: volumes expose a single device 0",
                        name().c_str());
    std::uint64_t smallest = inner.deviceBlocks(members[0]);
    for (unsigned m : members)
        smallest = std::min(smallest, inner.deviceBlocks(m));
    return smallest;
}

void
MirroredVolume::submit(unsigned cpu, const IoRequest &request,
                       CompleteFn on_device_complete)
{
    if (request.device != 0)
        afa::sim::panic("%s: volumes expose a single device 0",
                        name().c_str());
    ++volStats.clientIos;
    if (request.op == afa::nvme::Op::Write) {
        // Replicate; complete with the slowest member.
        ++volStats.writes;
        volStats.memberIos += members.size();
        auto remaining = std::make_shared<std::size_t>(members.size());
        for (unsigned m : members) {
            IoRequest child = request;
            child.device = m;
            inner.submit(cpu, child,
                         [remaining, on_device_complete](
                             unsigned handler_cpu) {
                             if (--*remaining == 0)
                                 on_device_complete(handler_cpu);
                         });
        }
        return;
    }
    // Read from one member per the policy.
    ++volStats.reads;
    ++volStats.memberIos;
    unsigned pick = 0;
    if (policy == ReadPolicy::RoundRobin) {
        pick = nextRead;
        nextRead = (nextRead + 1) % members.size();
    }
    ++memberReads[pick];
    IoRequest child = request;
    child.device = members[pick];
    inner.submit(cpu, child, std::move(on_device_complete));
}

} // namespace afa::raid
