/**
 * @file
 * Background RAID rebuild engine.
 *
 * After a member SSD is replaced, the array must reconstruct its
 * contents from the surviving members onto the spare. The rebuild is
 * not free: every chunk is a real fan-out read of the survivors plus
 * a write to the target, submitted through the same IoEngine the
 * foreground workload uses — so rebuild traffic contends for the
 * fabric, the controllers and the NAND exactly like client I/O, which
 * is what makes a rebuilding array measurably slower (the paper's
 * tail-at-scale effect with a self-inflicted background load).
 *
 * Pacing: `interChunkDelay` idles the engine between chunks, the
 * usual rebuild-rate throttle (md's sync_speed_max analogue). Zero
 * delay rebuilds as fast as the devices allow.
 */

#ifndef AFA_RAID_REBUILD_HH
#define AFA_RAID_REBUILD_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/sim_object.hh"
#include "workload/io_engine.hh"

namespace afa::obs {
class SpanLog;
} // namespace afa::obs

namespace afa::raid {

/** Rebuild configuration. */
struct RebuildParams
{
    /** Devices read to reconstruct each chunk (the survivors). */
    std::vector<unsigned> sources;

    /** Device the reconstructed data is written to (the spare). */
    unsigned target = 0;

    /** Total extent to rebuild, in 4 KiB blocks. */
    std::uint64_t blocks = 0;

    /** Blocks reconstructed per chunk (one read fan-out + write). */
    std::uint32_t chunkBlocks = 256;

    /** Idle time between chunks (rebuild-rate throttle). */
    afa::sim::Tick interChunkDelay = 0;

    /** CPU the rebuild daemon submits from. */
    unsigned cpu = 0;
};

/** Rebuild progress counters. */
struct RebuildStats
{
    std::uint64_t blocksDone = 0;
    std::uint64_t chunks = 0;
    afa::sim::Tick startedAt = 0;
    afa::sim::Tick finishedAt = 0;
    bool running = false;
    bool done = false;
};

/**
 * Streams reconstruction chunks through an IoEngine: per chunk, read
 * all sources (join on the slowest), write the target, optionally
 * idle, repeat until `blocks` are done.
 */
class RebuildEngine : public afa::sim::SimObject
{
  public:
    RebuildEngine(afa::sim::Simulator &simulator,
                  std::string engine_name,
                  afa::workload::IoEngine &engine,
                  const RebuildParams &params);

    /** Begin rebuilding at @p start_at (absolute tick). */
    void start(afa::sim::Tick start_at = 0);

    /** Invoked once when the last chunk's write completes. */
    void setOnComplete(std::function<void()> fn)
    {
        onComplete = std::move(fn);
    }

    /** Attach the obs span log; nullptr detaches. */
    void attachSpanLog(afa::obs::SpanLog *log) { spanLog = log; }

    const RebuildStats &stats() const { return rebStats; }
    const RebuildParams &params() const { return rebParams; }

    /** Rebuild progress in [0, 1]. */
    double progress() const
    {
        if (rebParams.blocks == 0)
            return 1.0;
        return static_cast<double>(rebStats.blocksDone) /
            static_cast<double>(rebParams.blocks);
    }

  private:
    afa::workload::IoEngine &inner;
    RebuildParams rebParams;
    RebuildStats rebStats;
    afa::obs::SpanLog *spanLog = nullptr;
    std::function<void()> onComplete;
    std::uint64_t nextLba = 0;
    std::uint64_t chunkSeq = 0;
    bool started = false;

    void rebuildChunk();
    void chunkDone(afa::sim::Tick chunk_begin, std::uint64_t tag,
                   std::uint32_t chunk_blocks);
};

} // namespace afa::raid

#endif // AFA_RAID_REBUILD_HH
