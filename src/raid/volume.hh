/**
 * @file
 * Striped and mirrored volumes over the AFA.
 *
 * The paper's introduction motivates why tail latency dominates AFA
 * design: "one request from a client is divided into multiple I/Os,
 * which are then distributed to many SSDs in parallel as in RAID ...
 * long tail latency of the slowest SSD decides the system's overall
 * responsiveness" (the Dean & Barroso tail-at-scale effect). These
 * volumes make that effect measurable: a StripedVolume fans a client
 * I/O out across member SSDs and completes when the *slowest* member
 * does; a MirroredVolume replicates writes and spreads reads.
 *
 * Volumes implement workload::IoEngine, so a FioThread can drive a
 * volume exactly as it drives a raw device -- composition mirrors the
 * Linux block stack (md/dm over nvme).
 */

#ifndef AFA_RAID_VOLUME_HH
#define AFA_RAID_VOLUME_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/sim_object.hh"
#include "workload/io_engine.hh"

namespace afa::raid {

/** Statistics of a volume. */
struct VolumeStats
{
    std::uint64_t clientIos = 0;
    std::uint64_t memberIos = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    /** Reads served degraded: a mirror failover re-read, or a parity
     *  reconstruction from the surviving members. */
    std::uint64_t degradedReads = 0;
    /** Client IOs that completed with an error status (every member
     *  that could serve them had failed). */
    std::uint64_t failedIos = 0;
};

/**
 * RAID-0: client LBAs striped strip-by-strip across member devices.
 * A client I/O spanning several strips completes when every member
 * sub-I/O has completed (the fan-out join that exposes the slowest
 * member's tail).
 */
class StripedVolume : public afa::sim::SimObject,
                      public afa::workload::IoEngine
{
  public:
    /**
     * @param engine the underlying device engine (the NVMe driver)
     * @param members device indices forming the volume
     * @param strip_blocks strip size in 4 KiB blocks
     */
    StripedVolume(afa::sim::Simulator &simulator,
                  std::string volume_name,
                  afa::workload::IoEngine &engine,
                  std::vector<unsigned> members,
                  std::uint32_t strip_blocks = 1);

    void submit(unsigned cpu, const afa::workload::IoRequest &request,
                CompleteFn on_device_complete) override;

    /** Volume capacity: the striped sum of member capacities. */
    std::uint64_t deviceBlocks(unsigned device) const override;

    unsigned width() const
    {
        return static_cast<unsigned>(members.size());
    }
    const VolumeStats &stats() const { return volStats; }

    /** Map a volume LBA to (member index, member LBA). */
    std::pair<unsigned, std::uint64_t>
    mapBlock(std::uint64_t volume_lba) const;

  private:
    afa::workload::IoEngine &inner;
    std::vector<unsigned> members;
    std::uint32_t stripBlocks;
    VolumeStats volStats;
};

/** Read-balancing policy of a mirrored volume. */
enum class ReadPolicy : std::uint8_t {
    RoundRobin, ///< alternate members
    Primary,    ///< always the first member
};

/**
 * RAID-1: every write goes to all members (completes with the
 * slowest); reads go to one member per the policy.
 */
class MirroredVolume : public afa::sim::SimObject,
                       public afa::workload::IoEngine
{
  public:
    MirroredVolume(afa::sim::Simulator &simulator,
                   std::string volume_name,
                   afa::workload::IoEngine &engine,
                   std::vector<unsigned> members,
                   ReadPolicy policy = ReadPolicy::RoundRobin);

    void submit(unsigned cpu, const afa::workload::IoRequest &request,
                CompleteFn on_device_complete) override;

    /** Volume capacity: the smallest member's. */
    std::uint64_t deviceBlocks(unsigned device) const override;

    const VolumeStats &stats() const { return volStats; }

    /** Reads served by each member (policy verification). */
    const std::vector<std::uint64_t> &readsPerMember() const
    {
        return memberReads;
    }

    /**
     * Mark a member failed (reads avoid it, writes skip it) or
     * restore it — called by recovery logic when a rebuild finishes.
     * A read that *hits* a failing member marks it automatically when
     * the error status comes back, then retries on a survivor
     * (degraded read).
     */
    void setMemberFailed(unsigned member_index, bool failed);

    /** True while a member is marked failed. */
    bool memberFailed(unsigned member_index) const;

  private:
    afa::workload::IoEngine &inner;
    std::vector<unsigned> members;
    ReadPolicy policy;
    unsigned nextRead;
    VolumeStats volStats;
    std::vector<std::uint64_t> memberReads;
    std::vector<bool> failedMembers;

    static constexpr unsigned kNoMember = ~0u;

    unsigned pickReadMember();
    void submitRead(unsigned cpu,
                    const afa::workload::IoRequest &request,
                    CompleteFn on_device_complete);
};

/**
 * RAID-5: data strips rotate with one parity strip per stripe.
 *
 * Healthy reads go to the data member alone; when that member is
 * failed the block is reconstructed by reading the stripe row from
 * every surviving member — the degraded fan-out whose join exposes
 * the slowest survivor, which is what makes a rebuilding array slow.
 * Writes pay the classic small-write penalty: read old data + old
 * parity, then write data + parity (degraded writes fall back to
 * updating whichever of the pair still lives).
 */
class ParityVolume : public afa::sim::SimObject,
                     public afa::workload::IoEngine
{
  public:
    ParityVolume(afa::sim::Simulator &simulator,
                 std::string volume_name,
                 afa::workload::IoEngine &engine,
                 std::vector<unsigned> members,
                 std::uint32_t strip_blocks = 1);

    void submit(unsigned cpu, const afa::workload::IoRequest &request,
                CompleteFn on_device_complete) override;

    /** Volume capacity: (width - 1) data shares of the smallest. */
    std::uint64_t deviceBlocks(unsigned device) const override;

    unsigned width() const
    {
        return static_cast<unsigned>(members.size());
    }
    const VolumeStats &stats() const { return volStats; }

    /** Mark/restore a failed member (at most one at a time). */
    void setMemberFailed(unsigned member_index, bool failed);

    /** True while a member is marked failed. */
    bool memberFailed(unsigned member_index) const;

    /**
     * Map a volume LBA to (data member index, parity member index,
     * member LBA). Member indices are positions in the member list.
     */
    struct BlockMap
    {
        unsigned dataMember;
        unsigned parityMember;
        std::uint64_t memberLba;
    };
    BlockMap mapBlock(std::uint64_t volume_lba) const;

  private:
    afa::workload::IoEngine &inner;
    std::vector<unsigned> members;
    std::uint32_t stripBlocks;
    VolumeStats volStats;
    std::vector<bool> failedMembers;

    void readBlock(unsigned cpu, const BlockMap &map,
                   std::uint64_t tag, CompleteFn on_done);
    void writeBlock(unsigned cpu, const BlockMap &map,
                    std::uint64_t tag, CompleteFn on_done);
};

} // namespace afa::raid

#endif // AFA_RAID_VOLUME_HH
