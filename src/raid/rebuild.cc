#include "raid/rebuild.hh"

#include <algorithm>
#include <memory>

#include "obs/span_log.hh"
#include "sim/logging.hh"

namespace afa::raid {

using afa::sim::Tick;
using afa::workload::IoRequest;
using afa::workload::IoResult;

namespace {

/** Tag namespace for rebuild IOs: distinguishes rebuild spans from
 *  client tags ((task+1) << 32 | seq) in merged traces. */
constexpr std::uint64_t kRebuildTagBase = 0xfee1ULL << 48;

} // namespace

RebuildEngine::RebuildEngine(afa::sim::Simulator &simulator,
                             std::string engine_name,
                             afa::workload::IoEngine &engine,
                             const RebuildParams &params)
    : SimObject(simulator, std::move(engine_name)), inner(engine),
      rebParams(params)
{
    if (rebParams.sources.empty())
        afa::sim::fatal("%s: rebuild needs at least one source",
                        name().c_str());
    if (rebParams.chunkBlocks == 0)
        afa::sim::fatal("%s: chunk size must be >= 1 block",
                        name().c_str());
    for (unsigned src : rebParams.sources)
        if (src == rebParams.target)
            afa::sim::fatal("%s: target %u is also a source",
                            name().c_str(), rebParams.target);
}

void
RebuildEngine::start(Tick start_at)
{
    if (started)
        afa::sim::panic("%s: started twice", name().c_str());
    started = true;
    at(std::max(start_at, now()), [this] {
        rebStats.running = true;
        rebStats.startedAt = now();
        rebuildChunk();
    });
}

void
RebuildEngine::rebuildChunk()
{
    if (nextLba >= rebParams.blocks) {
        rebStats.running = false;
        rebStats.done = true;
        rebStats.finishedAt = now();
        if (onComplete)
            onComplete();
        return;
    }
    const std::uint32_t chunk_blocks = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(rebParams.chunkBlocks,
                                rebParams.blocks - nextLba));
    const Tick chunk_begin = now();
    const std::uint64_t tag = kRebuildTagBase | ++chunkSeq;

    IoRequest read;
    read.op = afa::nvme::Op::Read;
    read.lba = nextLba;
    read.bytes = chunk_blocks * afa::nvme::kLogicalBlockBytes;
    read.tag = tag;
    const std::uint64_t chunk_lba = nextLba;
    nextLba += chunk_blocks;

    // Fan out the survivor reads; the chunk's reconstruction is gated
    // on the slowest one, then the result streams to the spare.
    auto remaining =
        std::make_shared<std::size_t>(rebParams.sources.size());
    for (unsigned src : rebParams.sources) {
        read.device = src;
        inner.submit(
            rebParams.cpu, read,
            [this, remaining, chunk_begin, tag, chunk_lba,
             chunk_blocks](const IoResult &) {
                if (--*remaining != 0)
                    return;
                IoRequest write;
                write.op = afa::nvme::Op::Write;
                write.device = rebParams.target;
                write.lba = chunk_lba;
                write.bytes =
                    chunk_blocks * afa::nvme::kLogicalBlockBytes;
                write.tag = tag;
                inner.submit(rebParams.cpu, write,
                             [this, chunk_begin, tag,
                              chunk_blocks](const IoResult &) {
                                 chunkDone(chunk_begin, tag,
                                           chunk_blocks);
                             });
            });
    }
}

void
RebuildEngine::chunkDone(Tick chunk_begin, std::uint64_t tag,
                         std::uint32_t chunk_blocks)
{
    rebStats.blocksDone += chunk_blocks;
    ++rebStats.chunks;
    if (spanLog && spanLog->wants(afa::obs::Category::Fault))
        spanLog->record(afa::obs::Stage::RebuildIo, tag, chunk_begin,
                        now(), afa::obs::ssdTrack(rebParams.target), 0,
                        chunk_blocks * afa::nvme::kLogicalBlockBytes);
    // The pacing delay separates chunks; the final chunk completes
    // the rebuild immediately.
    if (rebParams.interChunkDelay > 0 && nextLba < rebParams.blocks)
        after(rebParams.interChunkDelay, [this] { rebuildChunk(); });
    else
        rebuildChunk();
}

} // namespace afa::raid
